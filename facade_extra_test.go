package graphtempo_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	graphtempo "repro"
)

// TestFacadeQueryLanguage drives TGQL through the facade.
func TestFacadeQueryLanguage(t *testing.T) {
	g := graphtempo.PaperExample()
	r, err := graphtempo.Query(g, "AGG DIST gender, publications ON UNION(t0, t1)")
	if err != nil {
		t.Fatal(err)
	}
	f1, _ := r.Agg.Schema.Encode("f", "1")
	if r.Agg.NodeWeight(f1) != 3 {
		t.Fatalf("query w(f,1) = %d, want 3", r.Agg.NodeWeight(f1))
	}
	if _, err := graphtempo.Query(g, "NOT A QUERY"); err == nil {
		t.Error("invalid query should fail")
	}
	rt, err := graphtempo.Query(g, "TOP 1 GROWTH BY gender")
	if err != nil || len(rt.Top) != 1 {
		t.Fatalf("TOP result = %+v, err %v", rt, err)
	}
}

func TestFacadeMeasureAndFiltered(t *testing.T) {
	g := graphtempo.PaperExample()
	s := mustByName(t, g, "gender")
	v := graphtempo.At(g, 0)

	mg, err := graphtempo.AggregateMeasure(v, s, g.MustAttr("publications"), graphtempo.MeasureMax)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := s.Encode("m")
	if got, ok := mg.Value(m); !ok || got != 3 {
		t.Errorf("MAX(m) = %v, want 3", got)
	}

	pubs := g.MustAttr("publications")
	filtered := graphtempo.AggregateFiltered(v, s, graphtempo.Distinct,
		func(n graphtempo.NodeID, tp graphtempo.Time) bool {
			return g.ValueString(pubs, n, tp) == "1"
		})
	f, _ := s.Encode("f")
	if filtered.NodeWeight(f) != 2 {
		t.Errorf("filtered w(f) = %d, want 2 (u2, u3)", filtered.NodeWeight(f))
	}
	// Nil filter falls back to plain aggregation.
	if !graphtempo.AggregateFiltered(v, s, graphtempo.Distinct, nil).
		Equal(graphtempo.Aggregate(v, s, graphtempo.Distinct)) {
		t.Error("nil filter should equal Aggregate")
	}
}

func TestFacadeParallelAggregation(t *testing.T) {
	g := graphtempo.DBLPScaled(1, 0.02)
	tl := g.Timeline()
	v := graphtempo.Union(g, tl.All(), tl.All())
	s := mustByName(t, g, "gender", "publications")
	got := graphtempo.AggregateParallel(v, s, graphtempo.All, 4)
	want := graphtempo.Aggregate(v, s, graphtempo.All)
	if !got.Equal(want) {
		t.Fatal("facade parallel aggregation differs")
	}

	ctxGot, err := graphtempo.AggregateParallelCtx(context.Background(), v, s, graphtempo.All, 4)
	if err != nil || !ctxGot.Equal(want) {
		t.Fatalf("facade ctx aggregation: err %v, equal %v", err, ctxGot.Equal(want))
	}
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := graphtempo.AggregateParallelCtx(canceled, v, s, graphtempo.All, 4); err != context.Canceled {
		t.Fatalf("canceled ctx aggregation returned %v, want context.Canceled", err)
	}
}

func TestFacadeDOTOutput(t *testing.T) {
	g := graphtempo.PaperExample()
	tl := g.Timeline()
	s := mustByName(t, g, "gender")
	ag := graphtempo.Aggregate(graphtempo.At(g, 0), s, graphtempo.Distinct)
	var buf bytes.Buffer
	if err := graphtempo.WriteAggregateDOT(&buf, ag); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "digraph aggregate") {
		t.Error("aggregate DOT malformed")
	}
	ev := graphtempo.AggregateEvolution(g, tl.Point(0), tl.Point(1), s, graphtempo.Distinct, nil)
	buf.Reset()
	if err := graphtempo.WriteEvolutionDOT(&buf, ev); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "digraph evolution") {
		t.Error("evolution DOT malformed")
	}
}

func TestFacadeEvolutionTimelineAndTopTuples(t *testing.T) {
	g := graphtempo.PaperExample()
	s := mustByName(t, g, "gender")
	steps := graphtempo.EvolutionTimeline(g, s, graphtempo.Distinct, nil)
	if len(steps) != 2 || steps[0].NodeSt != 3 {
		t.Fatalf("timeline = %+v", steps)
	}
	ex := &graphtempo.Explorer{Graph: g, Schema: s, Kind: graphtempo.Distinct, Result: graphtempo.TotalEdges}
	top := graphtempo.TopEdgeTuples(ex, graphtempo.Growth, 1)
	if len(top) != 1 || top[0].Peak != 2 {
		t.Fatalf("top = %+v", top)
	}
}

func TestFacadeStreaming(t *testing.T) {
	series := graphtempo.NewStreamSeries(
		graphtempo.AttrSpec{Name: "kind", Kind: graphtempo.Static})
	if err := series.RegisterAggregation("k", "kind"); err != nil {
		t.Fatal(err)
	}
	snap := graphtempo.StreamSnapshot{
		Nodes: []graphtempo.StreamNode{
			{Label: "a", Static: map[string]string{"kind": "x"}},
			{Label: "b", Static: map[string]string{"kind": "y"}},
		},
		Edges: []graphtempo.StreamEdge{{U: "a", V: "b"}},
	}
	if err := series.Append("t0", snap); err != nil {
		t.Fatal(err)
	}
	nodes, edges, err := series.WindowUnionAll("k", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if nodes["x"] != 1 || edges["(x)→(y)"] != 1 {
		t.Errorf("window = %v / %v", nodes, edges)
	}
	g, err := series.Graph()
	if err != nil || g.NumNodes() != 2 {
		t.Fatalf("graph: %v, %v", g, err)
	}
}
