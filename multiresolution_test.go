package graphtempo_test

import (
	"testing"

	graphtempo "repro"
)

// TestMultiResolutionExploration composes Coarsen with the explorer — the
// paper's §3 motivation of studying evolution "in time intervals of
// different length, for example … between two months, six months or two
// years". Exploring a zoomed-out graph is equivalent to exploring the base
// graph with coarser base intervals: a coarse consecutive-pair stability
// count equals the base graph's intersection of the corresponding unions.
func TestMultiResolutionExploration(t *testing.T) {
	g := graphtempo.DBLPScaled(1, 0.05)
	tl := g.Timeline()

	// Zoom out: 21 years → 5-year periods.
	spec, err := graphtempo.UniformGroups(tl, 5)
	if err != nil {
		t.Fatal(err)
	}
	coarse, err := graphtempo.Coarsen(g, spec)
	if err != nil {
		t.Fatal(err)
	}
	if coarse.Timeline().Len() != 5 {
		t.Fatalf("coarse timeline = %d periods, want 5", coarse.Timeline().Len())
	}

	// Stability of f-f collaborations between the first two 5-year
	// periods, measured on the coarse graph…
	cs := mustByName(t, coarse, "gender")
	ffCoarse, err := graphtempo.EdgeTupleResult(cs, []string{"f"}, []string{"f"})
	if err != nil {
		t.Fatal(err)
	}
	coarseEx := &graphtempo.Explorer{
		Graph: coarse, Schema: cs, Kind: graphtempo.Distinct, Result: ffCoarse,
	}
	coarsePairs := coarseEx.Explore(graphtempo.Stability,
		graphtempo.UnionSemantics, graphtempo.ExtendNew, 1)
	if len(coarsePairs) == 0 {
		t.Fatal("no coarse stability pairs found")
	}

	// …must equal the base graph's intersection of the corresponding
	// 5-year unions (coarse existence is union existence).
	bs := mustByName(t, g, "gender")
	ff, ok := bs.Encode("f")
	if !ok {
		t.Fatal("encode failed")
	}
	baseView := graphtempo.Intersection(g, tl.Range(0, 4), tl.Range(5, 9))
	baseAgg := graphtempo.Aggregate(baseView, bs, graphtempo.Distinct)
	want := baseAgg.EdgeWeight(ff, ff)

	first := coarsePairs[0]
	if first.Result != want {
		t.Errorf("coarse stability [2000..2004]→[2005..2009] = %d, base intersection = %d",
			first.Result, want)
	}

	// On this dataset (fixed seed), the coarser resolution surfaces more
	// cross-step stability than the yearly one: the ~10% year-over-year
	// edge carry-over compounds into larger 5-year unions while the core
	// collaborations span period boundaries. (Not a theorem — an edge
	// stable only within one period is invisible across periods — but a
	// deterministic property of the synthetic DBLP.)
	yearEx := &graphtempo.Explorer{
		Graph: g, Schema: bs, Kind: graphtempo.Distinct,
	}
	yearFF, err := graphtempo.EdgeTupleResult(bs, []string{"f"}, []string{"f"})
	if err != nil {
		t.Fatal(err)
	}
	yearEx.Result = yearFF
	_, yearMax := yearEx.InitK(graphtempo.Stability)
	_, coarseMax := coarseEx.InitK(graphtempo.Stability)
	if coarseMax < yearMax {
		t.Errorf("coarse max stability %d < yearly max %d — zooming out lost events", coarseMax, yearMax)
	}
}
