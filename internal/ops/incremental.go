package ops

import (
	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/timeline"
)

// This file implements incremental interval views: the exploration fast
// path that replaces per-candidate entity scans with word-level bitset
// deltas.
//
// The operator constructors in ops.go and select.go (Union, Intersection,
// StabilityView, DifferenceView) test every node and edge timestamp against
// the interval masks — O(|V|+|E|) per call with a branch per entity. The
// exploration traversals of §3 evaluate chains of candidate pairs that
// differ by a single time point (T ∪ {t} or T ∩ semantics extended by t),
// so the entity selection of step i+1 is one OrWith/AndWith away from step
// i. A PointIndex precomputes, per base time point, the bitset of
// nodes/edges existing at that point; an IncrementalView then maintains a
// side's accumulated selection in place, and a PairView combines two sides
// into stability or difference views using only word-parallel operations
// plus an output-sized endpoint sweep.

// PointIndex holds, for each base time point of a graph, the bitset of node
// ids and edge ids existing at that point. Building it costs one pass over
// all timestamps; it is immutable afterwards and safe for concurrent use.
type PointIndex struct {
	g      *core.Graph
	nodeAt []*bitset.Set
	edgeAt []*bitset.Set
}

// NewPointIndex builds the per-time-point existence index of g.
func NewPointIndex(g *core.Graph) *PointIndex {
	n := g.Timeline().Len()
	ix := &PointIndex{
		g:      g,
		nodeAt: make([]*bitset.Set, n),
		edgeAt: make([]*bitset.Set, n),
	}
	for t := 0; t < n; t++ {
		ix.nodeAt[t] = bitset.New(g.NumNodes())
		ix.edgeAt[t] = bitset.New(g.NumEdges())
	}
	for i := 0; i < g.NumNodes(); i++ {
		g.NodeTau(core.NodeID(i)).ForEach(func(t int) { ix.nodeAt[t].Add(i) })
	}
	for e := 0; e < g.NumEdges(); e++ {
		g.EdgeTau(core.EdgeID(e)).ForEach(func(t int) { ix.edgeAt[t].Add(e) })
	}
	return ix
}

// Graph returns the indexed base graph.
func (ix *PointIndex) Graph() *core.Graph { return ix.g }

// NodesAt returns the bitset of nodes existing at t. Callers must not
// modify it.
func (ix *PointIndex) NodesAt(t timeline.Time) *bitset.Set { return ix.nodeAt[t] }

// EdgesAt returns the bitset of edges existing at t. Callers must not
// modify it.
func (ix *PointIndex) EdgesAt(t timeline.Time) *bitset.Set { return ix.edgeAt[t] }

// IncrementalView is one side of an exploration candidate pair: an interval
// together with the accumulated node/edge selection of the entities that
// exist in it under the side's semantics (at ≥1 point for union extension,
// at every point for intersection extension). Extending the interval by
// one time point updates the selection in place with a single word-level
// OrWith/AndWith pass instead of re-scanning all entities.
//
// An IncrementalView is reusable: Reset re-anchors it at a single point
// without reallocating. It is not safe for concurrent mutation.
type IncrementalView struct {
	ix    *PointIndex
	nodes *bitset.Set
	edges *bitset.Set
	times timeline.Interval
}

// NewIncrementalView returns a view anchored at the single point t.
func (ix *PointIndex) NewIncrementalView(t timeline.Time) *IncrementalView {
	iv := &IncrementalView{
		ix:    ix,
		nodes: bitset.New(ix.g.NumNodes()),
		edges: bitset.New(ix.g.NumEdges()),
	}
	iv.Reset(t)
	return iv
}

// Reset re-anchors the view at the single point t, reusing its buffers.
func (iv *IncrementalView) Reset(t timeline.Time) {
	iv.nodes.CopyFrom(iv.ix.nodeAt[t])
	iv.edges.CopyFrom(iv.ix.edgeAt[t])
	iv.times = iv.ix.g.Timeline().Point(t)
}

// ExtendUnion adds time point t under union semantics (Exists): the
// selection grows to entities existing at ≥1 point of the extended
// interval. Equivalent to rebuilding with Exists(times ∪ {t}).
func (iv *IncrementalView) ExtendUnion(t timeline.Time) {
	iv.nodes.OrWith(iv.ix.nodeAt[t])
	iv.edges.OrWith(iv.ix.edgeAt[t])
	iv.times = iv.times.Union(iv.ix.g.Timeline().Point(t))
}

// ExtendIntersect adds time point t under intersection semantics (ForAll):
// the selection shrinks to entities existing at every point of the
// extended interval. Equivalent to rebuilding with ForAll(times ∪ {t}).
func (iv *IncrementalView) ExtendIntersect(t timeline.Time) {
	iv.nodes.AndWith(iv.ix.nodeAt[t])
	iv.edges.AndWith(iv.ix.edgeAt[t])
	iv.times = iv.times.Union(iv.ix.g.Timeline().Point(t))
}

// Interval returns the accumulated interval.
func (iv *IncrementalView) Interval() timeline.Interval { return iv.times }

// Nodes returns the accumulated node selection. Callers must not modify it
// and must not retain it across Extend/Reset calls.
func (iv *IncrementalView) Nodes() *bitset.Set { return iv.nodes }

// Edges returns the accumulated edge selection, under the same aliasing
// rules as Nodes.
func (iv *IncrementalView) Edges() *bitset.Set { return iv.edges }

// View returns the selection as an ops.View over the accumulated interval.
// The view aliases the IncrementalView's bitsets: it is valid until the
// next Extend/Reset call.
func (iv *IncrementalView) View() *View {
	return newView(iv.ix.g, iv.nodes, iv.edges, iv.times)
}

// PairView combines two IncrementalViews into the stability or difference
// view of a candidate pair, reusing one set of output buffers across
// calls. The returned *View aliases those buffers: it is valid until the
// next Stability/Difference call on the same PairView. One PairView per
// worker makes candidate evaluation allocation-free.
type PairView struct {
	ix       *PointIndex
	nodes    *bitset.Set
	edges    *bitset.Set
	endpoint *bitset.Set
	view     View
}

// NewPairView returns a reusable pair combiner for the index's graph.
func (ix *PointIndex) NewPairView() *PairView {
	return &PairView{
		ix:       ix,
		nodes:    bitset.New(ix.g.NumNodes()),
		edges:    bitset.New(ix.g.NumEdges()),
		endpoint: bitset.New(ix.g.NumNodes()),
	}
}

// Stability combines the two sides into the stability view — entities
// selected by both — with timestamps restricted to the union of the two
// intervals, exactly as StabilityView(g, old, new) with the corresponding
// selectors (Definition 2.4 generalized to §3.1 semantics).
func (pv *PairView) Stability(old, new *IncrementalView) *View {
	pv.nodes.SetAnd(old.nodes, new.nodes)
	pv.edges.SetAnd(old.edges, new.edges)
	pv.view = View{g: pv.ix.g, nodes: pv.nodes, edges: pv.edges, times: old.times.Union(new.times)}
	return &pv.view
}

// Difference combines the two sides into the difference view pos − neg
// (Definition 2.5 generalized to §3.1 semantics): edges selected by pos but
// not by neg; nodes selected by pos and either not selected by neg or an
// endpoint of a kept edge; timestamps restricted to pos's interval.
// Identical to DifferenceView(g, pos, neg) with the corresponding
// selectors.
func (pv *PairView) Difference(pos, neg *IncrementalView) *View {
	pv.edges.CopyFrom(pos.edges)
	pv.edges.AndNotWith(neg.edges)
	pv.endpoint.Clear()
	g := pv.ix.g
	pv.edges.ForEach(func(e int) {
		ep := g.Edge(core.EdgeID(e))
		pv.endpoint.Add(int(ep.U))
		pv.endpoint.Add(int(ep.V))
	})
	pv.nodes.SetAndNotOr(pos.nodes, neg.nodes, pv.endpoint)
	pv.view = View{g: g, nodes: pv.nodes, edges: pv.edges, times: pos.times}
	return &pv.view
}
