package ops

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gtest"
	"repro/internal/timeline"
)

// viewsEqual compares two views entity-for-entity and interval-for-interval.
func viewsEqual(a, b *View) bool {
	return a.g == b.g && a.nodes.Equal(b.nodes) && a.edges.Equal(b.edges) &&
		a.times.Equal(b.times)
}

// TestQuickIncrementalMatchesScratch is the randomized property test of the
// incremental fast path: after N single-point extensions in a random
// direction, an IncrementalView must equal the from-scratch operator result
// — ops.Union under union semantics, the ForAll StabilityView (the §3.1
// generalization of ops.Intersection) under intersection semantics — and
// the PairView combinations of two IncrementalViews must equal
// StabilityView/DifferenceView on the equivalent selectors.
func TestQuickIncrementalMatchesScratch(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := gtest.RandomGraph(r, gtest.DefaultParams())
		tl := g.Timeline()
		ix := NewPointIndex(g)

		// Grow a contiguous interval one point at a time, extending left or
		// right at random, checking the invariant after every step.
		anchor := timeline.Time(r.Intn(tl.Len()))
		union := ix.NewIncrementalView(anchor)
		inter := ix.NewIncrementalView(anchor)
		lo, hi := anchor, anchor
		for step := 0; step < tl.Len()+2; step++ {
			// Union semantics: selection = Union(g, iv, iv) restricted sets.
			want := Union(g, union.Interval(), union.Interval())
			if !viewsEqual(union.View(), want) {
				return false
			}
			// Intersection semantics: entities existing at every point.
			fa := ForAll(inter.Interval())
			wantI := StabilityView(g, fa, fa)
			got := inter.View()
			if !got.nodes.Equal(wantI.nodes) || !got.edges.Equal(wantI.edges) {
				return false
			}
			// Extend one side at random.
			var next timeline.Time
			if r.Intn(2) == 0 && lo > 0 {
				lo--
				next = lo
			} else if hi+1 < timeline.Time(tl.Len()) {
				hi++
				next = hi
			} else if lo > 0 {
				lo--
				next = lo
			} else {
				break
			}
			union.ExtendUnion(next)
			inter.ExtendIntersect(next)
		}

		// Pair combinations against the scratch selectors, across random
		// anchored sides and both semantics per side.
		pv := ix.NewPairView()
		for trial := 0; trial < 4; trial++ {
			mkSide := func() (*IncrementalView, Sel) {
				iv := ix.NewIncrementalView(timeline.Time(r.Intn(tl.Len())))
				forAll := r.Intn(2) == 0
				for k := r.Intn(tl.Len()); k > 0; k-- {
					t := timeline.Time(r.Intn(tl.Len()))
					if forAll {
						iv.ExtendIntersect(t)
					} else {
						iv.ExtendUnion(t)
					}
				}
				if forAll {
					return iv, ForAll(iv.Interval())
				}
				return iv, Exists(iv.Interval())
			}
			oldIV, oldSel := mkSide()
			newIV, newSel := mkSide()
			if !viewsEqual(pv.Stability(oldIV, newIV), StabilityView(g, oldSel, newSel)) {
				return false
			}
			if !viewsEqual(pv.Difference(newIV, oldIV), DifferenceView(g, newSel, oldSel)) {
				return false
			}
			if !viewsEqual(pv.Difference(oldIV, newIV), DifferenceView(g, oldSel, newSel)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestIncrementalViewReset checks that Reset reuses buffers correctly after
// arbitrary extension history.
func TestIncrementalViewReset(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	g := gtest.RandomGraph(r, gtest.DefaultParams())
	tl := g.Timeline()
	ix := NewPointIndex(g)
	iv := ix.NewIncrementalView(0)
	for t := 1; t < tl.Len(); t++ {
		iv.ExtendIntersect(timeline.Time(t))
	}
	iv.Reset(0)
	fresh := ix.NewIncrementalView(0)
	if !iv.nodes.Equal(fresh.nodes) || !iv.edges.Equal(fresh.edges) || !iv.Interval().Equal(fresh.Interval()) {
		t.Fatal("Reset did not restore the single-point state")
	}
}

// TestPointIndexMasks spot-checks the index against per-entity membership.
func TestPointIndexMasks(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	g := gtest.RandomGraph(r, gtest.DefaultParams())
	ix := NewPointIndex(g)
	for t0 := 0; t0 < g.Timeline().Len(); t0++ {
		at := At(g, timeline.Time(t0))
		if ix.NodesAt(timeline.Time(t0)).Count() != at.NumNodes() {
			t.Fatalf("t=%d: node mask count %d != projection %d",
				t0, ix.NodesAt(timeline.Time(t0)).Count(), at.NumNodes())
		}
		if ix.EdgesAt(timeline.Time(t0)).Count() != at.NumEdges() {
			t.Fatalf("t=%d: edge mask count mismatch", t0)
		}
	}
}
