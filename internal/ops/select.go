package ops

import (
	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/timeline"
)

// Sel pairs an interval with the semantics under which an entity is
// considered to exist "in" it (§3.1):
//
//   - Exists (ForAll=false, union semantics): the entity exists at ≥1 time
//     point of the interval. This is how the binary operators of §2.1 test
//     membership, and how an exploration interval extended in the *union*
//     semi-lattice behaves (T_{i+1} ∪ T_{i+2} ∪ …).
//   - ForAll (ForAll=true, intersection semantics): the entity exists at
//     every time point of the interval, the behaviour of an interval
//     extended in the *intersection* semi-lattice (T_{i+1} ∩ T_{i+2} ∩ …).
type Sel struct {
	Interval timeline.Interval
	ForAll   bool
}

// Exists returns the union-semantics selector for iv.
func Exists(iv timeline.Interval) Sel { return Sel{Interval: iv} }

// ForAll returns the intersection-semantics selector for iv.
func ForAll(iv timeline.Interval) Sel { return Sel{Interval: iv, ForAll: true} }

// matches reports whether a timestamp bitset satisfies the selector.
func (s Sel) matches(tau *bitset.Set) bool {
	if s.ForAll {
		return !s.Interval.IsEmpty() && tau.ContainsAll(s.Interval.Mask())
	}
	return tau.Intersects(s.Interval.Mask())
}

// StabilityView generalizes the intersection operator (Definition 2.4) to
// selector semantics: it keeps the nodes and edges that exist in old AND in
// new, each side interpreted under its own semantics. With two Exists
// selectors it coincides with Intersection. Timestamps are restricted to
// the union of the two intervals, as in Definition 2.4.
func StabilityView(g *core.Graph, old, new Sel) *View {
	nodes := bitset.New(g.NumNodes())
	for n := 0; n < g.NumNodes(); n++ {
		tau := g.NodeTau(core.NodeID(n))
		if old.matches(tau) && new.matches(tau) {
			nodes.Add(n)
		}
	}
	edges := bitset.New(g.NumEdges())
	for e := 0; e < g.NumEdges(); e++ {
		tau := g.EdgeTau(core.EdgeID(e))
		if old.matches(tau) && new.matches(tau) {
			edges.Add(e)
		}
	}
	return newView(g, nodes, edges, old.Interval.Union(new.Interval))
}

// DifferenceView generalizes the difference operator (Definition 2.5) to
// selector semantics: it keeps the edges that exist in pos but NOT in neg,
// and the nodes that exist in pos and either do not exist in neg or are
// endpoints of a kept edge. With two Exists selectors it coincides with
// Difference. Timestamps are restricted to pos's interval.
//
// Growth between Told and Tnew is DifferenceView(g, new, old); shrinkage is
// DifferenceView(g, old, new) (§3.3, §3.4).
func DifferenceView(g *core.Graph, pos, neg Sel) *View {
	edges := bitset.New(g.NumEdges())
	endpoint := bitset.New(g.NumNodes())
	for e := 0; e < g.NumEdges(); e++ {
		tau := g.EdgeTau(core.EdgeID(e))
		if pos.matches(tau) && !neg.matches(tau) {
			edges.Add(e)
			ep := g.Edge(core.EdgeID(e))
			endpoint.Add(int(ep.U))
			endpoint.Add(int(ep.V))
		}
	}
	nodes := bitset.New(g.NumNodes())
	for n := 0; n < g.NumNodes(); n++ {
		tau := g.NodeTau(core.NodeID(n))
		if pos.matches(tau) && (!neg.matches(tau) || endpoint.Contains(n)) {
			nodes.Add(n)
		}
	}
	return newView(g, nodes, edges, pos.Interval)
}
