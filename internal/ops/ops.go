// Package ops implements the GraphTempo temporal operators (§2.1, §4.1):
// time projection, union, intersection and difference.
//
// Each operator yields a View — a selection of nodes and edges of the base
// graph together with the time mask over which attribute values are
// collected. Views avoid the row copying of the paper's Algorithm 1 (which
// package larray implements literally, for cross-validation); Materialize
// converts a View back into a standalone core.Graph when a copy is wanted.
package ops

import (
	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/timeline"
)

// View is the result of a temporal operator applied to a base graph: the
// subset of nodes and edges selected, and the interval over which their
// timestamps and attribute values are restricted (τu'(u) = τu(u) ∩ Times,
// and likewise for edges).
type View struct {
	g     *core.Graph
	nodes *bitset.Set // over node ids
	edges *bitset.Set // over edge ids
	times timeline.Interval
}

// Graph returns the base graph the view selects from.
func (v *View) Graph() *core.Graph { return v.g }

// Times returns the interval over which the view's timestamps and
// attribute values are defined.
func (v *View) Times() timeline.Interval { return v.times }

// NumNodes returns the number of selected nodes.
func (v *View) NumNodes() int { return v.nodes.Count() }

// NumEdges returns the number of selected edges.
func (v *View) NumEdges() int { return v.edges.Count() }

// ContainsNode reports whether node n is selected.
func (v *View) ContainsNode(n core.NodeID) bool { return v.nodes.Contains(int(n)) }

// ContainsEdge reports whether edge e is selected.
func (v *View) ContainsEdge(e core.EdgeID) bool { return v.edges.Contains(int(e)) }

// ForEachNode calls fn for every selected node, in id order.
func (v *View) ForEachNode(fn func(core.NodeID)) {
	v.nodes.ForEach(func(i int) { fn(core.NodeID(i)) })
}

// ForEachEdge calls fn for every selected edge, in id order.
func (v *View) ForEachEdge(fn func(core.EdgeID)) {
	v.edges.ForEach(func(i int) { fn(core.EdgeID(i)) })
}

// ForEachNodeIn calls fn for every selected node with lo ≤ id < hi, in id
// order. It lets parallel consumers shard the view by id range.
func (v *View) ForEachNodeIn(lo, hi int, fn func(core.NodeID)) {
	for i := v.nodes.Next(lo); i >= 0 && i < hi; i = v.nodes.Next(i + 1) {
		fn(core.NodeID(i))
	}
}

// ForEachEdgeIn calls fn for every selected edge with lo ≤ id < hi.
func (v *View) ForEachEdgeIn(lo, hi int, fn func(core.EdgeID)) {
	for i := v.edges.Next(lo); i >= 0 && i < hi; i = v.edges.Next(i + 1) {
		fn(core.EdgeID(i))
	}
}

// NodeTimes returns τu'(n) = τu(n) ∩ Times for a selected node.
func (v *View) NodeTimes(n core.NodeID) *bitset.Set {
	return v.g.NodeTau(n).And(v.times.Mask())
}

// EdgeTimes returns τe'(e) = τe(e) ∩ Times for a selected edge.
func (v *View) EdgeTimes(e core.EdgeID) *bitset.Set {
	return v.g.EdgeTau(e).And(v.times.Mask())
}

// NodeTimesCount returns |τu'(n)| without materializing the intersection;
// it is the appearance count ALL aggregation needs on static schemas.
func (v *View) NodeTimesCount(n core.NodeID) int {
	return v.g.NodeTau(n).CountAnd(v.times.Mask())
}

// EdgeTimesCount returns |τe'(e)| without materializing the intersection.
func (v *View) EdgeTimesCount(e core.EdgeID) int {
	return v.g.EdgeTau(e).CountAnd(v.times.Mask())
}

// Project implements the time project operator (Definition 2.2): the
// subgraph containing the nodes and edges that exist throughout T1
// (T1 ⊆ τ(x)), with timestamps restricted to T1.
func Project(g *core.Graph, t1 timeline.Interval) *View {
	mask := t1.Mask()
	nodes := bitset.New(g.NumNodes())
	for n := 0; n < g.NumNodes(); n++ {
		if g.NodeTau(core.NodeID(n)).ContainsAll(mask) {
			nodes.Add(n)
		}
	}
	edges := bitset.New(g.NumEdges())
	for e := 0; e < g.NumEdges(); e++ {
		if g.EdgeTau(core.EdgeID(e)).ContainsAll(mask) {
			edges.Add(e)
		}
	}
	return &View{g: g, nodes: nodes, edges: edges, times: t1}
}

// At is shorthand for Project on the single time point t — the per-time-
// point graphs used throughout the paper's evaluation.
func At(g *core.Graph, t timeline.Time) *View {
	return Project(g, g.Timeline().Point(t))
}

// Union implements the union operator (Definition 2.3, Algorithm 1): the
// graph containing every node and edge existing at some point of T1 or of
// T2, with timestamps restricted to T1 ∪ T2.
func Union(g *core.Graph, t1, t2 timeline.Interval) *View {
	both := t1.Union(t2)
	mask := both.Mask()
	nodes := bitset.New(g.NumNodes())
	for n := 0; n < g.NumNodes(); n++ {
		if g.NodeTau(core.NodeID(n)).Intersects(mask) {
			nodes.Add(n)
		}
	}
	edges := bitset.New(g.NumEdges())
	for e := 0; e < g.NumEdges(); e++ {
		if g.EdgeTau(core.EdgeID(e)).Intersects(mask) {
			edges.Add(e)
		}
	}
	return &View{g: g, nodes: nodes, edges: edges, times: both}
}

// Intersection implements the intersection operator (Definition 2.4): the
// stable part of the graph — nodes and edges existing at some point of T1
// and at some point of T2 — with timestamps restricted to T1 ∪ T2.
func Intersection(g *core.Graph, t1, t2 timeline.Interval) *View {
	m1, m2 := t1.Mask(), t2.Mask()
	nodes := bitset.New(g.NumNodes())
	for n := 0; n < g.NumNodes(); n++ {
		tau := g.NodeTau(core.NodeID(n))
		if tau.Intersects(m1) && tau.Intersects(m2) {
			nodes.Add(n)
		}
	}
	edges := bitset.New(g.NumEdges())
	for e := 0; e < g.NumEdges(); e++ {
		tau := g.EdgeTau(core.EdgeID(e))
		if tau.Intersects(m1) && tau.Intersects(m2) {
			edges.Add(e)
		}
	}
	return &View{g: g, nodes: nodes, edges: edges, times: t1.Union(t2)}
}

// Difference implements the difference operator (Definition 2.5) for
// T1 − T2: the part of the graph that exists in T1 but not in T2. Edges are
// selected when τe ∩ T1 ≠ ∅ and τe ∩ T2 = ∅; nodes when τu ∩ T1 ≠ ∅ and
// either τu ∩ T2 = ∅ or the node is an endpoint of a selected edge.
// Timestamps are restricted to T1. The operator is not symmetric: T2 − T1
// (with T1 preceding T2) captures growth instead of shrinkage (§2.1).
func Difference(g *core.Graph, t1, t2 timeline.Interval) *View {
	m1, m2 := t1.Mask(), t2.Mask()
	edges := bitset.New(g.NumEdges())
	endpoint := bitset.New(g.NumNodes())
	for e := 0; e < g.NumEdges(); e++ {
		tau := g.EdgeTau(core.EdgeID(e))
		if tau.Intersects(m1) && !tau.Intersects(m2) {
			edges.Add(e)
			ep := g.Edge(core.EdgeID(e))
			endpoint.Add(int(ep.U))
			endpoint.Add(int(ep.V))
		}
	}
	nodes := bitset.New(g.NumNodes())
	for n := 0; n < g.NumNodes(); n++ {
		tau := g.NodeTau(core.NodeID(n))
		if tau.Intersects(m1) && (!tau.Intersects(m2) || endpoint.Contains(n)) {
			nodes.Add(n)
		}
	}
	return &View{g: g, nodes: nodes, edges: edges, times: t1}
}

// Materialize copies a view out into a standalone graph, as the paper's
// Algorithm 1 does: node/edge timestamps are intersected with the view's
// interval and attribute values are copied for the selected nodes.
func Materialize(v *View) (*core.Graph, error) {
	g := v.g
	b := core.NewBuilder(g.Timeline(), g.Attrs()...)
	v.ForEachNode(func(n core.NodeID) {
		nn := b.AddNode(g.NodeLabel(n))
		times := v.NodeTimes(n)
		times.ForEach(func(t int) {
			b.SetNodeTime(nn, timeline.Time(t))
		})
		for a := 0; a < g.NumAttrs(); a++ {
			id := core.AttrID(a)
			if g.Attr(id).Kind == core.Static {
				b.SetStatic(id, nn, g.Dict(id).Value(g.StaticValue(id, n)))
			} else {
				times.ForEach(func(t int) {
					s := g.ValueString(id, n, timeline.Time(t))
					if s != "" {
						b.SetVarying(id, nn, timeline.Time(t), s)
					}
				})
			}
		}
	})
	v.ForEachEdge(func(e core.EdgeID) {
		ep := g.Edge(e)
		u, ok1 := b.NodeID(g.NodeLabel(ep.U))
		w, ok2 := b.NodeID(g.NodeLabel(ep.V))
		if !ok1 || !ok2 {
			// An edge of the view whose endpoint is not in the view would
			// violate the operators' definitions; Build would reject it
			// anyway, but fail fast with a clear location.
			panic("ops: view edge with endpoint outside view")
		}
		ee := b.AddEdge(u, w)
		v.EdgeTimes(e).ForEach(func(t int) {
			b.SetEdgeTime(ee, timeline.Time(t))
		})
	})
	return b.Build()
}
