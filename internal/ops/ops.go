// Package ops implements the GraphTempo temporal operators (§2.1, §4.1):
// time projection, union, intersection and difference.
//
// Each operator yields a View — a selection of nodes and edges of the base
// graph together with the time mask over which attribute values are
// collected. Views avoid the row copying of the paper's Algorithm 1 (which
// package larray implements literally, for cross-validation); Materialize
// converts a View back into a standalone core.Graph when a copy is wanted.
package ops

import (
	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/timeline"
)

// View is the result of a temporal operator applied to a base graph: the
// subset of nodes and edges selected, and the interval over which their
// timestamps and attribute values are restricted (τu'(u) = τu(u) ∩ Times,
// and likewise for edges).
type View struct {
	g     *core.Graph
	nodes *bitset.Set // over node ids
	edges *bitset.Set // over edge ids
	times timeline.Interval

	// contig/rlo/rhi cache the contiguity of times, computed once at view
	// construction: when the interval is one contiguous range [rlo, rhi),
	// per-entity timestamp work uses the Vector range fast paths (O(runs)
	// on compressed vectors) instead of mask scans.
	contig   bool
	rlo, rhi int
	// denseTaus pins this view's timestamp reads to the dense sets — the
	// planner's compressed-vs-dense escape hatch and the reference engine
	// of the equivalence suite.
	denseTaus bool
}

// newView computes the contiguity cache for the interval.
func newView(g *core.Graph, nodes, edges *bitset.Set, times timeline.Interval) *View {
	v := &View{g: g, nodes: nodes, edges: edges, times: times}
	v.rlo, v.rhi, v.contig = contigRange(times.Mask())
	return v
}

// contigRange reports whether mask is one contiguous run [lo, hi); a nil
// or empty mask is the empty range [0, 0).
func contigRange(mask *bitset.Set) (lo, hi int, ok bool) {
	if mask == nil {
		return 0, 0, true
	}
	lo = mask.Next(0)
	if lo < 0 {
		return 0, 0, true
	}
	if c := mask.Count(); mask.ContainsRange(lo, lo+c) {
		return lo, lo + c, true
	}
	return 0, 0, false
}

// intersectsPred returns the τ ∩ mask ≠ ∅ test, routed through the range
// fast path (O(runs) on compressed vectors) when mask is contiguous —
// the same dispatch Project and Union inline via the view's cache.
func intersectsPred(mask *bitset.Set) func(bitset.Vector) bool {
	if lo, hi, ok := contigRange(mask); ok {
		return func(v bitset.Vector) bool { return v.IntersectsRange(lo, hi) }
	}
	return func(v bitset.Vector) bool { return v.Intersects(mask) }
}

// ForceDenseTaus makes every timestamp read of this view use the dense
// bitsets even when the graph chose compressed forms. Call before sharing
// the view across goroutines.
func (v *View) ForceDenseTaus() { v.denseTaus = true }

// nodeVec returns node n's timestamp in the representation this view reads.
func (v *View) nodeVec(n core.NodeID) bitset.Vector {
	if v.denseTaus {
		return v.g.NodeTau(n)
	}
	return v.g.NodeTauVec(n)
}

// edgeVec returns edge e's timestamp in the representation this view reads.
func (v *View) edgeVec(e core.EdgeID) bitset.Vector {
	if v.denseTaus {
		return v.g.EdgeTau(e)
	}
	return v.g.EdgeTauVec(e)
}

// Graph returns the base graph the view selects from.
func (v *View) Graph() *core.Graph { return v.g }

// Times returns the interval over which the view's timestamps and
// attribute values are defined.
func (v *View) Times() timeline.Interval { return v.times }

// NumNodes returns the number of selected nodes.
func (v *View) NumNodes() int { return v.nodes.Count() }

// NumEdges returns the number of selected edges.
func (v *View) NumEdges() int { return v.edges.Count() }

// ContainsNode reports whether node n is selected.
func (v *View) ContainsNode(n core.NodeID) bool { return v.nodes.Contains(int(n)) }

// ContainsEdge reports whether edge e is selected.
func (v *View) ContainsEdge(e core.EdgeID) bool { return v.edges.Contains(int(e)) }

// ForEachNode calls fn for every selected node, in id order.
func (v *View) ForEachNode(fn func(core.NodeID)) {
	v.nodes.ForEach(func(i int) { fn(core.NodeID(i)) })
}

// ForEachEdge calls fn for every selected edge, in id order.
func (v *View) ForEachEdge(fn func(core.EdgeID)) {
	v.edges.ForEach(func(i int) { fn(core.EdgeID(i)) })
}

// ForEachNodeIn calls fn for every selected node with lo ≤ id < hi, in id
// order. It lets parallel consumers shard the view by id range.
func (v *View) ForEachNodeIn(lo, hi int, fn func(core.NodeID)) {
	for i := v.nodes.Next(lo); i >= 0 && i < hi; i = v.nodes.Next(i + 1) {
		fn(core.NodeID(i))
	}
}

// ForEachEdgeIn calls fn for every selected edge with lo ≤ id < hi.
func (v *View) ForEachEdgeIn(lo, hi int, fn func(core.EdgeID)) {
	for i := v.edges.Next(lo); i >= 0 && i < hi; i = v.edges.Next(i + 1) {
		fn(core.EdgeID(i))
	}
}

// NodeTimes returns τu'(n) = τu(n) ∩ Times for a selected node.
func (v *View) NodeTimes(n core.NodeID) *bitset.Set {
	return v.g.NodeTau(n).And(v.times.Mask())
}

// EdgeTimes returns τe'(e) = τe(e) ∩ Times for a selected edge.
func (v *View) EdgeTimes(e core.EdgeID) *bitset.Set {
	return v.g.EdgeTau(e).And(v.times.Mask())
}

// NodeTimesCount returns |τu'(n)| without materializing the intersection;
// it is the appearance count ALL aggregation needs on static schemas.
func (v *View) NodeTimesCount(n core.NodeID) int {
	if v.contig {
		return v.nodeVec(n).CountRange(v.rlo, v.rhi)
	}
	return v.nodeVec(n).CountAnd(v.times.Mask())
}

// EdgeTimesCount returns |τe'(e)| without materializing the intersection.
func (v *View) EdgeTimesCount(e core.EdgeID) int {
	if v.contig {
		return v.edgeVec(e).CountRange(v.rlo, v.rhi)
	}
	return v.edgeVec(e).CountAnd(v.times.Mask())
}

// ForEachNodeTime calls fn for every t ∈ τu'(n), in increasing order,
// without materializing the intersection — the per-appearance loop of ALL
// aggregation over time-varying schemas.
func (v *View) ForEachNodeTime(n core.NodeID, fn func(t int)) {
	if v.contig {
		v.nodeVec(n).ForEachInRange(v.rlo, v.rhi, fn)
		return
	}
	v.nodeVec(n).ForEachAnd(v.times.Mask(), fn)
}

// ForEachEdgeTime calls fn for every t ∈ τe'(e), in increasing order.
func (v *View) ForEachEdgeTime(e core.EdgeID, fn func(t int)) {
	if v.contig {
		v.edgeVec(e).ForEachInRange(v.rlo, v.rhi, fn)
		return
	}
	v.edgeVec(e).ForEachAnd(v.times.Mask(), fn)
}

// Project implements the time project operator (Definition 2.2): the
// subgraph containing the nodes and edges that exist throughout T1
// (T1 ⊆ τ(x)), with timestamps restricted to T1.
func Project(g *core.Graph, t1 timeline.Interval) *View {
	v := newView(g, bitset.New(g.NumNodes()), bitset.New(g.NumEdges()), t1)
	mask := t1.Mask()
	for n := 0; n < g.NumNodes(); n++ {
		tau := g.NodeTauVec(core.NodeID(n))
		if v.contig && tau.ContainsRange(v.rlo, v.rhi) || !v.contig && tau.ContainsAll(mask) {
			v.nodes.Add(n)
		}
	}
	for e := 0; e < g.NumEdges(); e++ {
		tau := g.EdgeTauVec(core.EdgeID(e))
		if v.contig && tau.ContainsRange(v.rlo, v.rhi) || !v.contig && tau.ContainsAll(mask) {
			v.edges.Add(e)
		}
	}
	return v
}

// At is shorthand for Project on the single time point t — the per-time-
// point graphs used throughout the paper's evaluation.
func At(g *core.Graph, t timeline.Time) *View {
	return Project(g, g.Timeline().Point(t))
}

// Union implements the union operator (Definition 2.3, Algorithm 1): the
// graph containing every node and edge existing at some point of T1 or of
// T2, with timestamps restricted to T1 ∪ T2.
func Union(g *core.Graph, t1, t2 timeline.Interval) *View {
	both := t1.Union(t2)
	v := newView(g, bitset.New(g.NumNodes()), bitset.New(g.NumEdges()), both)
	mask := both.Mask()
	for n := 0; n < g.NumNodes(); n++ {
		tau := g.NodeTauVec(core.NodeID(n))
		if v.contig && tau.IntersectsRange(v.rlo, v.rhi) || !v.contig && tau.Intersects(mask) {
			v.nodes.Add(n)
		}
	}
	for e := 0; e < g.NumEdges(); e++ {
		tau := g.EdgeTauVec(core.EdgeID(e))
		if v.contig && tau.IntersectsRange(v.rlo, v.rhi) || !v.contig && tau.Intersects(mask) {
			v.edges.Add(e)
		}
	}
	return v
}

// Intersection implements the intersection operator (Definition 2.4): the
// stable part of the graph — nodes and edges existing at some point of T1
// and at some point of T2 — with timestamps restricted to T1 ∪ T2.
func Intersection(g *core.Graph, t1, t2 timeline.Interval) *View {
	in1, in2 := intersectsPred(t1.Mask()), intersectsPred(t2.Mask())
	v := newView(g, bitset.New(g.NumNodes()), bitset.New(g.NumEdges()), t1.Union(t2))
	for n := 0; n < g.NumNodes(); n++ {
		tau := g.NodeTauVec(core.NodeID(n))
		if in1(tau) && in2(tau) {
			v.nodes.Add(n)
		}
	}
	for e := 0; e < g.NumEdges(); e++ {
		tau := g.EdgeTauVec(core.EdgeID(e))
		if in1(tau) && in2(tau) {
			v.edges.Add(e)
		}
	}
	return v
}

// Difference implements the difference operator (Definition 2.5) for
// T1 − T2: the part of the graph that exists in T1 but not in T2. Edges are
// selected when τe ∩ T1 ≠ ∅ and τe ∩ T2 = ∅; nodes when τu ∩ T1 ≠ ∅ and
// either τu ∩ T2 = ∅ or the node is an endpoint of a selected edge.
// Timestamps are restricted to T1. The operator is not symmetric: T2 − T1
// (with T1 preceding T2) captures growth instead of shrinkage (§2.1).
func Difference(g *core.Graph, t1, t2 timeline.Interval) *View {
	in1, in2 := intersectsPred(t1.Mask()), intersectsPred(t2.Mask())
	edges := bitset.New(g.NumEdges())
	endpoint := bitset.New(g.NumNodes())
	for e := 0; e < g.NumEdges(); e++ {
		tau := g.EdgeTauVec(core.EdgeID(e))
		if in1(tau) && !in2(tau) {
			edges.Add(e)
			ep := g.Edge(core.EdgeID(e))
			endpoint.Add(int(ep.U))
			endpoint.Add(int(ep.V))
		}
	}
	nodes := bitset.New(g.NumNodes())
	for n := 0; n < g.NumNodes(); n++ {
		tau := g.NodeTauVec(core.NodeID(n))
		if in1(tau) && (!in2(tau) || endpoint.Contains(n)) {
			nodes.Add(n)
		}
	}
	return newView(g, nodes, edges, t1)
}

// Materialize copies a view out into a standalone graph, as the paper's
// Algorithm 1 does: node/edge timestamps are intersected with the view's
// interval and attribute values are copied for the selected nodes.
func Materialize(v *View) (*core.Graph, error) {
	g := v.g
	b := core.NewBuilder(g.Timeline(), g.Attrs()...)
	v.ForEachNode(func(n core.NodeID) {
		nn := b.AddNode(g.NodeLabel(n))
		times := v.NodeTimes(n)
		times.ForEach(func(t int) {
			b.SetNodeTime(nn, timeline.Time(t))
		})
		for a := 0; a < g.NumAttrs(); a++ {
			id := core.AttrID(a)
			if g.Attr(id).Kind == core.Static {
				b.SetStatic(id, nn, g.Dict(id).Value(g.StaticValue(id, n)))
			} else {
				times.ForEach(func(t int) {
					s := g.ValueString(id, n, timeline.Time(t))
					if s != "" {
						b.SetVarying(id, nn, timeline.Time(t), s)
					}
				})
			}
		}
	})
	v.ForEachEdge(func(e core.EdgeID) {
		ep := g.Edge(e)
		u, ok1 := b.NodeID(g.NodeLabel(ep.U))
		w, ok2 := b.NodeID(g.NodeLabel(ep.V))
		if !ok1 || !ok2 {
			// An edge of the view whose endpoint is not in the view would
			// violate the operators' definitions; Build would reject it
			// anyway, but fail fast with a clear location.
			panic("ops: view edge with endpoint outside view")
		}
		ee := b.AddEdge(u, w)
		v.EdgeTimes(e).ForEach(func(t int) {
			b.SetEdgeTime(ee, timeline.Time(t))
		})
	})
	return b.Build()
}
