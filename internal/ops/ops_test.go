package ops

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/gtest"
)

// viewNodes returns the labels of a view's nodes, sorted.
func viewNodes(v *View) []string {
	var out []string
	v.ForEachNode(func(n core.NodeID) { out = append(out, v.Graph().NodeLabel(n)) })
	sort.Strings(out)
	return out
}

// viewEdges returns "u-v" labels of a view's edges, sorted.
func viewEdges(v *View) []string {
	var out []string
	v.ForEachEdge(func(e core.EdgeID) {
		ep := v.Graph().Edge(e)
		out = append(out, v.Graph().NodeLabel(ep.U)+"-"+v.Graph().NodeLabel(ep.V))
	})
	sort.Strings(out)
	return out
}

func eq(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestProjectPoint(t *testing.T) {
	g := core.PaperExample()
	tl := g.Timeline()
	v := At(g, 0)
	if got := viewNodes(v); !eq(got, []string{"u1", "u2", "u3", "u4"}) {
		t.Errorf("nodes at t0 = %v", got)
	}
	if got := viewEdges(v); !eq(got, []string{"u1-u2", "u1-u3", "u2-u4"}) {
		t.Errorf("edges at t0 = %v", got)
	}
	v2 := Project(g, tl.Point(2))
	if got := viewNodes(v2); !eq(got, []string{"u2", "u4", "u5"}) {
		t.Errorf("nodes at t2 = %v", got)
	}
	if got := viewEdges(v2); !eq(got, []string{"u2-u4", "u2-u5", "u4-u5"}) {
		t.Errorf("edges at t2 = %v", got)
	}
}

func TestProjectIntervalRequiresFullContainment(t *testing.T) {
	g := core.PaperExample()
	v := Project(g, g.Timeline().Range(0, 1))
	if got := viewNodes(v); !eq(got, []string{"u1", "u2", "u4"}) {
		t.Errorf("nodes on [t0,t1] = %v", got)
	}
	if got := viewEdges(v); !eq(got, []string{"u1-u2", "u2-u4"}) {
		t.Errorf("edges on [t0,t1] = %v", got)
	}
}

func TestUnionMatchesFig2(t *testing.T) {
	g := core.PaperExample()
	tl := g.Timeline()
	v := Union(g, tl.Point(0), tl.Point(1))
	if got := viewNodes(v); !eq(got, []string{"u1", "u2", "u3", "u4"}) {
		t.Errorf("union nodes = %v", got)
	}
	if got := viewEdges(v); !eq(got, []string{"u1-u2", "u1-u3", "u1-u4", "u2-u4"}) {
		t.Errorf("union edges = %v", got)
	}
	// τu is restricted to T1 ∪ T2: u2 exists at t0,t1,t2 but the union view
	// on (t0,t1) must only keep t0,t1.
	u2, _ := g.NodeByLabel("u2")
	if got := v.NodeTimes(u2).String(); got != "110" {
		t.Errorf("τu_∪(u2) = %s, want 110", got)
	}
}

func TestIntersectionKeepsStablePart(t *testing.T) {
	g := core.PaperExample()
	tl := g.Timeline()
	v := Intersection(g, tl.Point(0), tl.Point(1))
	if got := viewNodes(v); !eq(got, []string{"u1", "u2", "u4"}) {
		t.Errorf("intersection nodes = %v", got)
	}
	if got := viewEdges(v); !eq(got, []string{"u1-u2", "u2-u4"}) {
		t.Errorf("intersection edges = %v", got)
	}
}

func TestDifferenceShrinkage(t *testing.T) {
	g := core.PaperExample()
	tl := g.Timeline()
	// t0 − t1: deletions going into t1.
	v := Difference(g, tl.Point(0), tl.Point(1))
	if got := viewEdges(v); !eq(got, []string{"u1-u3"}) {
		t.Errorf("difference edges = %v", got)
	}
	// u3 vanished; u1 still exists at t1 but is kept as an endpoint of a
	// deleted edge (Definition 2.5's E− clause).
	if got := viewNodes(v); !eq(got, []string{"u1", "u3"}) {
		t.Errorf("difference nodes = %v", got)
	}
	// Timestamps restricted to T1 only.
	u1, _ := g.NodeByLabel("u1")
	if got := v.NodeTimes(u1).String(); got != "100" {
		t.Errorf("τu_−(u1) = %s, want 100", got)
	}
}

func TestDifferenceGrowth(t *testing.T) {
	g := core.PaperExample()
	tl := g.Timeline()
	// t1 − t0: additions at t1.
	v := Difference(g, tl.Point(1), tl.Point(0))
	if got := viewEdges(v); !eq(got, []string{"u1-u4"}) {
		t.Errorf("growth edges = %v", got)
	}
	if got := viewNodes(v); !eq(got, []string{"u1", "u4"}) {
		t.Errorf("growth nodes = %v", got)
	}
	// t2 − [t0,t1]: u5 and its edges are new.
	v2 := Difference(g, tl.Point(2), tl.Range(0, 1))
	if got := viewNodes(v2); !eq(got, []string{"u2", "u4", "u5"}) {
		t.Errorf("growth nodes at t2 = %v", got)
	}
	if got := viewEdges(v2); !eq(got, []string{"u2-u5", "u4-u5"}) {
		t.Errorf("growth edges at t2 = %v", got)
	}
}

func TestDifferenceAsymmetric(t *testing.T) {
	g := core.PaperExample()
	tl := g.Timeline()
	a := Difference(g, tl.Point(0), tl.Point(1))
	b := Difference(g, tl.Point(1), tl.Point(0))
	if eq(viewEdges(a), viewEdges(b)) {
		t.Error("difference should not be symmetric on the fixture")
	}
}

func TestMaterializeRoundTrip(t *testing.T) {
	g := core.PaperExample()
	tl := g.Timeline()
	v := Union(g, tl.Point(0), tl.Point(1))
	m, err := Materialize(v)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumNodes() != v.NumNodes() || m.NumEdges() != v.NumEdges() {
		t.Fatalf("materialized sizes %d/%d, want %d/%d",
			m.NumNodes(), m.NumEdges(), v.NumNodes(), v.NumEdges())
	}
	// Attribute values survive.
	u2, _ := m.NodeByLabel("u2")
	if got := m.ValueString(m.MustAttr("gender"), u2, 0); got != "f" {
		t.Errorf("gender(u2) = %q", got)
	}
	if got := m.ValueString(m.MustAttr("publications"), u2, 1); got != "1" {
		t.Errorf("publications(u2,t1) = %q", got)
	}
	// τ restricted: u2 must not exist at t2 in the materialized graph.
	if m.NodeTau(u2).Contains(2) {
		t.Error("materialized union on (t0,t1) should not keep t2")
	}
}

func TestQuickUnionIntersectionLaws(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := gtest.RandomGraph(r, gtest.DefaultParams())
		tl := g.Timeline()
		t1 := gtest.RandomInterval(r, tl)
		t2 := gtest.RandomInterval(r, tl)

		u12, u21 := Union(g, t1, t2), Union(g, t2, t1)
		i12, i21 := Intersection(g, t1, t2), Intersection(g, t2, t1)
		// Commutativity.
		if !eq(viewNodes(u12), viewNodes(u21)) || !eq(viewEdges(u12), viewEdges(u21)) {
			return false
		}
		if !eq(viewNodes(i12), viewNodes(i21)) || !eq(viewEdges(i12), viewEdges(i21)) {
			return false
		}
		// Intersection ⊆ each side's union selection.
		for _, n := range viewNodes(i12) {
			id, _ := g.NodeByLabel(n)
			if !u12.ContainsNode(id) {
				return false
			}
		}
		// Self union/intersection coincide.
		uSelf, iSelf := Union(g, t1, t1), Intersection(g, t1, t1)
		return eq(viewNodes(uSelf), viewNodes(iSelf)) && eq(viewEdges(uSelf), viewEdges(iSelf))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDifferencePartitionsUnion(t *testing.T) {
	// Every edge of Union(T1,T2) is in exactly one of: Intersection(T1,T2),
	// Difference(T1,T2), Difference(T2,T1). (This is the evolution-graph
	// partition property of Definition 2.7 at the operator level.)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := gtest.RandomGraph(r, gtest.DefaultParams())
		tl := g.Timeline()
		t1 := gtest.RandomInterval(r, tl)
		t2 := gtest.RandomInterval(r, tl)
		u := Union(g, t1, t2)
		i := Intersection(g, t1, t2)
		d12 := Difference(g, t1, t2)
		d21 := Difference(g, t2, t1)
		okAll := true
		u.ForEachEdge(func(e core.EdgeID) {
			in := 0
			if i.ContainsEdge(e) {
				in++
			}
			if d12.ContainsEdge(e) {
				in++
			}
			if d21.ContainsEdge(e) {
				in++
			}
			if in != 1 {
				okAll = false
			}
		})
		return okAll
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickProjectSubsetOfUnion(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := gtest.RandomGraph(r, gtest.DefaultParams())
		tl := g.Timeline()
		t1 := gtest.RandomRange(r, tl)
		p := Project(g, t1)
		u := Union(g, t1, t1)
		okAll := true
		p.ForEachNode(func(n core.NodeID) {
			if !u.ContainsNode(n) {
				okAll = false
			}
		})
		p.ForEachEdge(func(e core.EdgeID) {
			if !u.ContainsEdge(e) {
				okAll = false
			}
		})
		return okAll
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMaterializeAlwaysValid(t *testing.T) {
	// Materialize must yield a valid graph (Builder validation passes) for
	// any operator output, including difference views that keep endpoint
	// nodes existing in T2.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := gtest.RandomGraph(r, gtest.DefaultParams())
		tl := g.Timeline()
		t1 := gtest.RandomInterval(r, tl)
		t2 := gtest.RandomInterval(r, tl)
		for _, v := range []*View{
			Union(g, t1, t2),
			Intersection(g, t1, t2),
			Difference(g, t1, t2),
			Difference(g, t2, t1),
		} {
			if v.NumNodes() == 0 {
				continue
			}
			m, err := Materialize(v)
			if err != nil {
				return false
			}
			if m.NumNodes() != v.NumNodes() || m.NumEdges() != v.NumEdges() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestViewTimes(t *testing.T) {
	g := core.PaperExample()
	tl := g.Timeline()
	if got := Union(g, tl.Point(0), tl.Point(2)).Times(); !got.Equal(tl.Of(0, 2)) {
		t.Errorf("union Times = %v", got)
	}
	if got := Difference(g, tl.Point(0), tl.Point(1)).Times(); !got.Equal(tl.Point(0)) {
		t.Errorf("difference Times = %v, want t0 only", got)
	}
}

func TestEdgeTimesRestricted(t *testing.T) {
	g := core.PaperExample()
	tl := g.Timeline()
	v := Union(g, tl.Point(0), tl.Point(1))
	u2, _ := g.NodeByLabel("u2")
	u4, _ := g.NodeByLabel("u4")
	e, ok := g.EdgeByEndpoints(u2, u4)
	if !ok {
		t.Fatal("edge (u2,u4) missing")
	}
	if got := v.EdgeTimes(e).String(); got != "110" {
		t.Errorf("τe_∪(u2,u4) = %s, want 110", got)
	}
}
