package ops

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/gtest"
)

func TestExistsSelectorsMatchBinaryOperators(t *testing.T) {
	g := core.PaperExample()
	tl := g.Timeline()
	t1, t2 := tl.Point(0), tl.Point(1)

	stab := StabilityView(g, Exists(t1), Exists(t2))
	inter := Intersection(g, t1, t2)
	if !eq(viewNodes(stab), viewNodes(inter)) || !eq(viewEdges(stab), viewEdges(inter)) {
		t.Error("StabilityView with Exists selectors should equal Intersection")
	}
	if !stab.Times().Equal(inter.Times()) {
		t.Error("Times differ")
	}

	diff := DifferenceView(g, Exists(t1), Exists(t2))
	plain := Difference(g, t1, t2)
	if !eq(viewNodes(diff), viewNodes(plain)) || !eq(viewEdges(diff), viewEdges(plain)) {
		t.Error("DifferenceView with Exists selectors should equal Difference")
	}
}

func TestForAllSemantics(t *testing.T) {
	g := core.PaperExample()
	tl := g.Timeline()
	// Entities existing at every point of [t0,t2]: u2, u4 and edge u2→u4.
	v := StabilityView(g, ForAll(tl.All()), ForAll(tl.All()))
	if got := viewNodes(v); !eq(got, []string{"u2", "u4"}) {
		t.Errorf("ForAll nodes = %v", got)
	}
	if got := viewEdges(v); !eq(got, []string{"u2-u4"}) {
		t.Errorf("ForAll edges = %v", got)
	}
}

func TestForAllEmptyIntervalMatchesNothing(t *testing.T) {
	g := core.PaperExample()
	tl := g.Timeline()
	v := StabilityView(g, ForAll(tl.Empty()), Exists(tl.All()))
	if v.NumNodes() != 0 || v.NumEdges() != 0 {
		t.Errorf("ForAll(∅) should match nothing, got %d/%d", v.NumNodes(), v.NumEdges())
	}
	// Exists(∅) likewise.
	v2 := StabilityView(g, Exists(tl.Empty()), Exists(tl.All()))
	if v2.NumNodes() != 0 {
		t.Errorf("Exists(∅) should match nothing, got %d nodes", v2.NumNodes())
	}
}

func TestDifferenceViewForAllNeg(t *testing.T) {
	g := core.PaperExample()
	tl := g.Timeline()
	// Growth at t2 w.r.t. ForAll([t0,t1]): edges existing at t2 but not
	// throughout [t0,t1] — u2→u4 exists at both t0 and t1, so it is
	// excluded; u4→u5 and u2→u5 are new.
	v := DifferenceView(g, Exists(tl.Point(2)), ForAll(tl.Range(0, 1)))
	if got := viewEdges(v); !eq(got, []string{"u2-u5", "u4-u5"}) {
		t.Errorf("edges = %v", got)
	}
	// With Exists semantics on the old side, u2→u4 is also excluded (it
	// intersects [t0,t1]) — same outcome here, but under ForAll an edge
	// that existed only at t1 would be kept.
	u1, _ := g.NodeByLabel("u1")
	u4, _ := g.NodeByLabel("u4")
	if _, ok := g.EdgeByEndpoints(u1, u4); !ok {
		t.Fatal("fixture edge (u1,u4) missing")
	}
	// (u1,u4) exists only at t1: not at t2, so not part of either view.
	if v.NumEdges() != 2 {
		t.Errorf("NumEdges = %d, want 2", v.NumEdges())
	}
}

func TestQuickSelectorGeneralization(t *testing.T) {
	// With Exists selectors the generalized views must coincide with the
	// paper's binary operators on random graphs; ForAll views are always
	// subsets of their Exists counterparts.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := gtest.RandomGraph(r, gtest.DefaultParams())
		tl := g.Timeline()
		t1 := gtest.RandomInterval(r, tl)
		t2 := gtest.RandomInterval(r, tl)

		stab := StabilityView(g, Exists(t1), Exists(t2))
		inter := Intersection(g, t1, t2)
		if !eq(viewNodes(stab), viewNodes(inter)) || !eq(viewEdges(stab), viewEdges(inter)) {
			return false
		}
		diff := DifferenceView(g, Exists(t1), Exists(t2))
		plain := Difference(g, t1, t2)
		if !eq(viewNodes(diff), viewNodes(plain)) || !eq(viewEdges(diff), viewEdges(plain)) {
			return false
		}
		// ForAll ⊆ Exists on the same intervals.
		strict := StabilityView(g, ForAll(t1), ForAll(t2))
		ok := true
		strict.ForEachNode(func(n core.NodeID) {
			if !stab.ContainsNode(n) {
				ok = false
			}
		})
		strict.ForEachEdge(func(e core.EdgeID) {
			if !stab.ContainsEdge(e) {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
