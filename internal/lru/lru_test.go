package lru

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestGetPut(t *testing.T) {
	c := New[int](Config{})
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache returned a value")
	}
	c.Put("a", 1, 8)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d, %v", v, ok)
	}
	c.Put("a", 2, 8) // overwrite
	if v, _ := c.Get("a"); v != 2 {
		t.Fatalf("overwrite lost: %d", v)
	}
	if n := c.Len(); n != 1 {
		t.Fatalf("Len = %d, want 1", n)
	}
}

func TestLRUEviction(t *testing.T) {
	// One shard so the eviction order is fully observable. Each entry
	// costs 100 declared bytes + 1 key byte + overhead.
	per := int64(100 + 1 + entryOverhead)
	c := New[int](Config{MaxBytes: 3 * per, Shards: 1})
	c.Put("a", 1, 100)
	c.Put("b", 2, 100)
	c.Put("c", 3, 100)
	c.Get("a") // refresh a: b is now least recent
	c.Put("d", 4, 100)
	if _, ok := c.Get("b"); ok {
		t.Error("least-recently-used entry b survived over budget")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("entry %s evicted unexpectedly", k)
		}
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
}

func TestDoComputesOnceAndCaches(t *testing.T) {
	c := New[string](Config{})
	calls := 0
	compute := func() (string, error) { calls++; return "v", nil }
	size := func(s string) int64 { return int64(len(s)) }
	v, cached, err := c.Do("k", size, compute)
	if v != "v" || cached || err != nil {
		t.Fatalf("first Do = %q, %v, %v", v, cached, err)
	}
	v, cached, err = c.Do("k", size, compute)
	if v != "v" || !cached || err != nil {
		t.Fatalf("second Do = %q, %v, %v", v, cached, err)
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
}

func TestDoErrorNotCached(t *testing.T) {
	c := New[int](Config{})
	wantErr := fmt.Errorf("boom")
	_, _, err := c.Do("k", func(int) int64 { return 0 }, func() (int, error) { return 0, wantErr })
	if err != wantErr {
		t.Fatalf("err = %v", err)
	}
	if _, ok := c.Get("k"); ok {
		t.Fatal("error result was cached")
	}
	v, cached, err := c.Do("k", func(int) int64 { return 0 }, func() (int, error) { return 7, nil })
	if v != 7 || cached || err != nil {
		t.Fatalf("retry Do = %d, %v, %v", v, cached, err)
	}
}

func TestDoSingleflight(t *testing.T) {
	c := New[int](Config{})
	var computes atomic.Int64
	gate := make(chan struct{})
	const workers = 16
	var wg sync.WaitGroup
	results := make([]int, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := c.Do("k", func(int) int64 { return 8 }, func() (int, error) {
				computes.Add(1)
				<-gate // hold every concurrent caller in flight
				return 42, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	close(gate)
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times under concurrency, want 1", n)
	}
	for i, v := range results {
		if v != 42 {
			t.Fatalf("worker %d got %d", i, v)
		}
	}
	st := c.Stats()
	if st.Misses != 1 {
		t.Errorf("misses = %d, want 1", st.Misses)
	}
	if st.Deduped+st.Hits != workers-1 {
		t.Errorf("deduped+hits = %d, want %d", st.Deduped+st.Hits, workers-1)
	}
}

func TestPurge(t *testing.T) {
	c := New[int](Config{})
	c.Put("a", 1, 10)
	c.Put("b", 2, 10)
	c.Purge()
	if c.Len() != 0 {
		t.Fatalf("Len after purge = %d", c.Len())
	}
	if st := c.Stats(); st.Bytes != 0 || st.Entries != 0 {
		t.Fatalf("stats after purge = %+v", st)
	}
}

func TestConcurrentMixedOps(t *testing.T) {
	c := New[int](Config{MaxBytes: 1 << 16, Shards: 4})
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", (w*7+i)%64)
				switch i % 4 {
				case 0:
					c.Put(key, i, 64)
				case 1:
					c.Get(key)
				case 2:
					c.Do(key, func(int) int64 { return 64 }, func() (int, error) { return i, nil })
				default:
					c.Stats()
				}
			}
		}(w)
	}
	wg.Wait()
	// Budget respected after the dust settles.
	if st := c.Stats(); st.Bytes > 1<<16 {
		t.Errorf("resident bytes %d exceed budget", st.Bytes)
	}
}
