// Package lru implements the concurrent serving cache behind the
// materialization layer: a sharded, mutex-per-shard LRU keyed by string
// with a configurable byte budget, singleflight deduplication of
// concurrent identical computations, and atomic hit/miss/eviction
// counters.
//
// The cache is generic over the value type so the same engine backs the
// materialization catalog (aggregate graphs), the cube's query cache and
// the exploration evaluator's result memo. Keys are hashed (FNV-1a) onto
// independently locked shards, so goroutines serving different keys never
// contend on one mutex; goroutines requesting the same missing key share
// one computation through Do.
package lru

import (
	"sync"
	"sync/atomic"
)

// Config sizes a Cache. The zero value selects the defaults.
type Config struct {
	// MaxBytes is the total byte budget across all shards; entries are
	// evicted least-recently-used first once a shard exceeds its share.
	// <= 0 selects 64 MiB.
	MaxBytes int64
	// Shards is the number of independently locked shards, rounded up to a
	// power of two. <= 0 selects 16.
	Shards int
}

// Stats is an atomic snapshot of the cache counters.
type Stats struct {
	Hits      int64 // Get/Do answered from a resident entry
	Misses    int64 // Do computations performed
	Deduped   int64 // Do calls that waited on another goroutine's computation
	Evictions int64 // entries dropped to respect the byte budget
	Entries   int   // resident entries
	Bytes     int64 // resident bytes (entry sizes + key overhead)
}

// entry is one resident value on a shard's intrusive LRU ring.
type entry[V any] struct {
	key        string
	val        V
	bytes      int64
	prev, next *entry[V]
}

// call is one in-flight computation other goroutines may wait on.
type call[V any] struct {
	wg  sync.WaitGroup
	val V
	err error
}

type shard[V any] struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	items    map[string]*entry[V]
	ring     entry[V] // sentinel: ring.next is most recent, ring.prev least
	flight   map[string]*call[V]
}

// Cache is a sharded byte-budgeted LRU. The zero value is not usable; use
// New.
type Cache[V any] struct {
	shards []shard[V]
	mask   uint32

	hits, misses, deduped, evictions atomic.Int64
}

// New returns an empty cache sized by cfg.
func New[V any](cfg Config) *Cache[V] {
	maxBytes := cfg.MaxBytes
	if maxBytes <= 0 {
		maxBytes = 64 << 20
	}
	n := cfg.Shards
	if n <= 0 {
		n = 16
	}
	pow := 1
	for pow < n {
		pow <<= 1
	}
	c := &Cache[V]{shards: make([]shard[V], pow), mask: uint32(pow - 1)}
	for i := range c.shards {
		s := &c.shards[i]
		s.maxBytes = maxBytes / int64(pow)
		s.items = make(map[string]*entry[V])
		s.flight = make(map[string]*call[V])
		s.ring.next, s.ring.prev = &s.ring, &s.ring
	}
	return c
}

// fnv1a hashes the key onto a shard index.
func fnv1a(key string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return h
}

func (c *Cache[V]) shard(key string) *shard[V] {
	return &c.shards[fnv1a(key)&c.mask]
}

// entryOverhead approximates per-entry bookkeeping (map slot + ring links)
// charged against the budget in addition to the caller-declared size.
const entryOverhead = 64

func (s *shard[V]) unlink(e *entry[V]) {
	e.prev.next = e.next
	e.next.prev = e.prev
}

func (s *shard[V]) pushFront(e *entry[V]) {
	e.next = s.ring.next
	e.prev = &s.ring
	s.ring.next.prev = e
	s.ring.next = e
}

// evict drops least-recently-used entries until the shard fits its budget.
// Called with the shard lock held.
func (s *shard[V]) evict(c *Cache[V]) {
	for s.bytes > s.maxBytes && s.ring.prev != &s.ring {
		e := s.ring.prev
		s.unlink(e)
		delete(s.items, e.key)
		s.bytes -= e.bytes
		c.evictions.Add(1)
	}
}

// insert stores v under key. Called with the shard lock held.
func (s *shard[V]) insert(c *Cache[V], key string, v V, bytes int64) {
	size := bytes + int64(len(key)) + entryOverhead
	if old, ok := s.items[key]; ok {
		s.unlink(old)
		s.bytes -= old.bytes
		delete(s.items, key)
	}
	e := &entry[V]{key: key, val: v, bytes: size}
	s.items[key] = e
	s.pushFront(e)
	s.bytes += size
	s.evict(c)
}

// Get returns the resident value for key, refreshing its recency.
func (c *Cache[V]) Get(key string) (V, bool) {
	s := c.shard(key)
	s.mu.Lock()
	if e, ok := s.items[key]; ok {
		s.unlink(e)
		s.pushFront(e)
		s.mu.Unlock()
		c.hits.Add(1)
		return e.val, true
	}
	s.mu.Unlock()
	c.misses.Add(1)
	var zero V
	return zero, false
}

// Contains reports whether key is resident, without refreshing its recency
// or touching the hit/miss counters. It is a prediction primitive (would a
// Get hit?), so callers that only want to describe cache behavior — like a
// query planner's Explain — don't perturb it.
func (c *Cache[V]) Contains(key string) bool {
	s := c.shard(key)
	s.mu.Lock()
	_, ok := s.items[key]
	s.mu.Unlock()
	return ok
}

// Put stores v under key, charging bytes (plus key and entry overhead)
// against the budget.
func (c *Cache[V]) Put(key string, v V, bytes int64) {
	s := c.shard(key)
	s.mu.Lock()
	s.insert(c, key, v, bytes)
	s.mu.Unlock()
}

// Do returns the value for key, computing it at most once across
// concurrent callers: a resident entry is returned immediately (cached ==
// true); otherwise the first caller runs compute while later callers for
// the same key block until it finishes and share its result (cached ==
// false for all of them). Successful results are inserted with the size
// reported by size; errors are returned to every waiter and not cached.
func (c *Cache[V]) Do(key string, size func(V) int64, compute func() (V, error)) (v V, cached bool, err error) {
	s := c.shard(key)
	s.mu.Lock()
	if e, ok := s.items[key]; ok {
		s.unlink(e)
		s.pushFront(e)
		s.mu.Unlock()
		c.hits.Add(1)
		return e.val, true, nil
	}
	if cl, ok := s.flight[key]; ok {
		s.mu.Unlock()
		c.deduped.Add(1)
		cl.wg.Wait()
		return cl.val, false, cl.err
	}
	cl := &call[V]{}
	cl.wg.Add(1)
	s.flight[key] = cl
	s.mu.Unlock()
	c.misses.Add(1)

	cl.val, cl.err = compute()

	s.mu.Lock()
	delete(s.flight, key)
	if cl.err == nil {
		s.insert(c, key, cl.val, size(cl.val))
	}
	s.mu.Unlock()
	cl.wg.Done()
	return cl.val, false, cl.err
}

// Purge drops every resident entry (in-flight computations are untouched
// and will insert their results when they finish).
func (c *Cache[V]) Purge() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.items = make(map[string]*entry[V])
		s.ring.next, s.ring.prev = &s.ring, &s.ring
		s.bytes = 0
		s.mu.Unlock()
	}
}

// Len returns the number of resident entries.
func (c *Cache[V]) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.items)
		s.mu.Unlock()
	}
	return n
}

// Stats returns a snapshot of the counters and residency.
func (c *Cache[V]) Stats() Stats {
	st := Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Deduped:   c.deduped.Load(),
		Evictions: c.evictions.Load(),
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Entries += len(s.items)
		st.Bytes += s.bytes
		s.mu.Unlock()
	}
	return st
}
