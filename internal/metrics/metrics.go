// Package metrics implements the observability layer of the serving
// subsystem: lock-free atomic counters, fixed-bucket latency histograms
// and a registry that renders everything in the Prometheus text exposition
// format (version 0.0.4).
//
// The package has no dependencies, so the engine's hot paths — kernel
// selection in agg, candidate evaluation in explore — can carry their own
// counters without pulling serving code into the library. A server (or a
// test) registers those counters, plus pull-style CounterFunc/GaugeFunc
// collectors over existing stats snapshots (materialize.Catalog.Stats,
// lru.Cache.Stats), into one Registry and serves it at GET /metrics.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use, so package-level counters in hot paths need no init.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative n panics — counters only go up.
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic("metrics: counter decrement")
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic value that can go up and down (in-flight requests,
// queue depth). The zero value is ready to use.
type Gauge struct {
	v atomic.Int64
}

// Inc adds 1.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefBuckets are the default latency buckets in seconds: 100µs to ~16s in
// powers of four, a range that covers sub-millisecond cache hits through
// multi-second scratch aggregations on the paper-scale datasets.
var DefBuckets = []float64{0.0001, 0.0004, 0.0016, 0.0064, 0.0256, 0.1024, 0.4096, 1.6384, 6.5536, 16}

// Histogram is a fixed-bucket histogram of float64 observations (latency
// seconds by convention). Observations are lock-free; a snapshot read may
// be torn across concurrent observations but every individual observation
// is eventually counted exactly once — the standard Prometheus contract.
type Histogram struct {
	bounds []float64 // upper bounds, ascending; +Inf bucket is implicit
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// NewHistogram returns a histogram over the given ascending upper bounds;
// nil selects DefBuckets.
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("metrics: histogram bounds not ascending")
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, new) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Label is one constant key="value" pair attached to a series at
// registration time.
type Label struct {
	Key, Value string
}

// kind is the Prometheus metric type of a family.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one registered time series.
type series struct {
	labels []Label
	// exactly one of these is set
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64
}

// family groups the series sharing one metric name.
type family struct {
	name string
	help string
	kind kind
	rows []*series
}

// Registry holds registered metrics and renders them. Registration is
// expected at setup time; rendering and metric updates may run
// concurrently with it.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func validName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// register adds one series under name, creating or extending its family.
func (r *Registry) register(name, help string, k kind, s *series) {
	if !validName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: k}
		r.families[name] = f
		r.order = append(r.order, name)
	} else if f.kind != k {
		panic(fmt.Sprintf("metrics: %s registered as both %s and %s", name, f.kind, k))
	}
	key := labelKey(s.labels)
	for _, prev := range f.rows {
		if labelKey(prev.labels) == key {
			panic(fmt.Sprintf("metrics: duplicate series %s{%s}", name, key))
		}
	}
	f.rows = append(f.rows, s)
}

// Counter registers and returns a new counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	r.RegisterCounter(name, help, c, labels...)
	return c
}

// RegisterCounter adds an existing counter (e.g. a hot-path package-level
// one) as a series of name.
func (r *Registry) RegisterCounter(name, help string, c *Counter, labels ...Label) {
	r.register(name, help, kindCounter, &series{labels: labels, counter: c})
}

// Gauge registers and returns a new gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{}
	r.register(name, help, kindGauge, &series{labels: labels, gauge: g})
	return g
}

// Histogram registers and returns a new histogram with the given bounds
// (nil selects DefBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	h := NewHistogram(bounds)
	r.register(name, help, kindHistogram, &series{labels: labels, hist: h})
	return h
}

// CounterFunc registers a pull-style counter series whose value is read
// from fn at exposition time — the bridge to existing stats snapshots
// (catalog sources, LRU hit/miss) without double bookkeeping. fn must be
// monotonically non-decreasing.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, kindCounter, &series{labels: labels, fn: fn})
}

// GaugeFunc registers a pull-style gauge series read from fn at exposition
// time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, kindGauge, &series{labels: labels, fn: fn})
}

// labelKey renders labels canonically for duplicate detection and output.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// formatFloat renders a sample value the way Prometheus expects.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return strconv.FormatInt(int64(v), 10)
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

func writeSample(w io.Writer, name, labels string, v float64) {
	if labels == "" {
		fmt.Fprintf(w, "%s %s\n", name, formatFloat(v))
	} else {
		fmt.Fprintf(w, "%s{%s} %s\n", name, labels, formatFloat(v))
	}
}

// WritePrometheus renders every registered metric in registration order.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.order))
	for _, name := range r.order {
		f := r.families[name]
		fams = append(fams, &family{name: f.name, help: f.help, kind: f.kind,
			rows: append([]*series(nil), f.rows...)})
	}
	r.mu.Unlock()

	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " "))
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.rows {
			lk := labelKey(s.labels)
			switch {
			case s.counter != nil:
				writeSample(w, f.name, lk, float64(s.counter.Value()))
			case s.gauge != nil:
				writeSample(w, f.name, lk, float64(s.gauge.Value()))
			case s.fn != nil:
				writeSample(w, f.name, lk, s.fn())
			case s.hist != nil:
				writeHistogram(w, f.name, s.labels, s.hist)
			}
		}
	}
}

// writeHistogram renders the cumulative _bucket/_sum/_count triplet.
func writeHistogram(w io.Writer, name string, labels []Label, h *Histogram) {
	cum := int64(0)
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		le := append(append([]Label(nil), labels...), Label{"le", formatFloat(b)})
		writeSample(w, name+"_bucket", labelKey(le), float64(cum))
	}
	cum += h.counts[len(h.bounds)].Load()
	le := append(append([]Label(nil), labels...), Label{"le", "+Inf"})
	writeSample(w, name+"_bucket", labelKey(le), float64(cum))
	lk := labelKey(labels)
	writeSample(w, name+"_sum", lk, h.Sum())
	writeSample(w, name+"_count", lk, float64(cum))
}
