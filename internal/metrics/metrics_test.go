package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add did not panic")
		}
	}()
	var g Gauge
	g.Inc()
	g.Add(3)
	g.Dec()
	if g.Value() != 3 {
		t.Fatalf("gauge = %d, want 3", g.Value())
	}
	g.Set(-7)
	if g.Value() != -7 {
		t.Fatalf("gauge = %d, want -7", g.Value())
	}
	c.Add(-1)
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-106) > 1e-9 {
		t.Fatalf("sum = %g, want 106", h.Sum())
	}
	// Bucket occupancy: le=1 → {0.5, 1}, le=2 → {1.5}, le=4 → {3}, +Inf → {100}.
	want := []int64{2, 1, 1, 1}
	for i, n := range want {
		if got := h.counts[i].Load(); got != n {
			t.Fatalf("bucket %d = %d, want %d", i, got, n)
		}
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(nil)
	var wg sync.WaitGroup
	const goroutines, per = 8, 1000
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if h.Count() != goroutines*per {
		t.Fatalf("count = %d, want %d", h.Count(), goroutines*per)
	}
	if math.Abs(h.Sum()-goroutines*per*0.001) > 1e-6 {
		t.Fatalf("sum = %g, want %g", h.Sum(), goroutines*per*0.001)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("srv_requests_total", "Requests served.", Label{"endpoint", "aggregate"})
	c.Add(3)
	r.Counter("srv_requests_total", "Requests served.", Label{"endpoint", "explore"}).Inc()
	g := r.Gauge("srv_inflight", "In-flight requests.")
	g.Set(2)
	r.GaugeFunc("srv_cache_bytes", "Resident bytes.", func() float64 { return 1024 })
	r.CounterFunc("srv_hits_total", "Cache hits.", func() float64 { return 9 })
	h := r.Histogram("srv_latency_seconds", "Request latency.", []float64{0.01, 0.1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(5)

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# HELP srv_requests_total Requests served.",
		"# TYPE srv_requests_total counter",
		`srv_requests_total{endpoint="aggregate"} 3`,
		`srv_requests_total{endpoint="explore"} 1`,
		"# TYPE srv_inflight gauge",
		"srv_inflight 2",
		"srv_cache_bytes 1024",
		"srv_hits_total 9",
		"# TYPE srv_latency_seconds histogram",
		`srv_latency_seconds_bucket{le="0.01"} 1`,
		`srv_latency_seconds_bucket{le="0.1"} 2`,
		`srv_latency_seconds_bucket{le="+Inf"} 3`,
		"srv_latency_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// HELP/TYPE emitted once per family even with two series.
	if strings.Count(out, "# TYPE srv_requests_total counter") != 1 {
		t.Fatalf("family header repeated:\n%s", out)
	}
}

func TestRegistryPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("ok_total", "")
	for name, fn := range map[string]func(){
		"invalid name":  func() { r.Counter("bad name", "") },
		"kind mismatch": func() { r.Gauge("ok_total", "") },
		"duplicate":     func() { r.Counter("ok_total", "") },
		"bad histogram": func() { NewHistogram([]float64{2, 1}) },
		"leading digit": func() { r.Counter("0abc", "") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestFormatFloat(t *testing.T) {
	for v, want := range map[float64]string{
		3:            "3",
		0.25:         "0.25",
		math.Inf(1):  "+Inf",
		math.Inf(-1): "-Inf",
		1e18:         "1e+18",
	} {
		if got := formatFloat(v); got != want {
			t.Fatalf("formatFloat(%g) = %q, want %q", v, got, want)
		}
	}
}
