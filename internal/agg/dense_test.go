package agg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/gtest"
	"repro/internal/ops"
	"repro/internal/timeline"
)

// TestDenseMatchesMapOnRandomGraphs cross-checks the dense kernel against
// the map engine value-for-value on random temporal graphs, random views,
// both kinds, and random attribute subsets (static-only, varying-only and
// mixed schemas all occur).
func TestDenseMatchesMapOnRandomGraphs(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := gtest.RandomGraph(r, gtest.DefaultParams())
		if g.NumAttrs() == 0 {
			return true
		}
		// Random non-empty attribute subset, in random order.
		attrs := make([]core.AttrID, g.NumAttrs())
		for a := range attrs {
			attrs[a] = core.AttrID(a)
		}
		r.Shuffle(len(attrs), func(i, j int) { attrs[i], attrs[j] = attrs[j], attrs[i] })
		attrs = attrs[:1+r.Intn(len(attrs))]
		s, err := NewSchema(g, attrs...)
		if err != nil {
			return false
		}
		t1 := gtest.RandomInterval(r, g.Timeline())
		t2 := gtest.RandomInterval(r, g.Timeline())
		views := []*ops.View{
			ops.Union(g, t1, t2),
			ops.Intersection(g, t1, t2),
			ops.Difference(g, t1, t2),
			ops.Project(g, g.Timeline().Point(timeline.Time(r.Intn(g.Timeline().Len())))),
		}
		for _, v := range views {
			for _, kind := range []Kind{Distinct, All} {
				if !Aggregate(v, s, kind).Equal(AggregateMap(v, s, kind)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestDenseMatchesMapOnDatasets cross-checks dense and map engines for both
// DIST and ALL on the synthetic DBLP and school-contacts datasets, on
// static, varying and combined schemas.
func TestDenseMatchesMapOnDatasets(t *testing.T) {
	cases := []struct {
		name  string
		graph func() *core.Graph
		attrs [][]string
	}{
		{"dblp", func() *core.Graph { return dataset.DBLPScaled(1, 0.05) },
			[][]string{{"gender"}, {"publications"}, {"gender", "publications"}}},
		{"contacts", func() *core.Graph { return dataset.SchoolContacts(1, dataset.DefaultContactsParams()) },
			[][]string{{"class"}, {"grade"}, {"grade", "class"}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := tc.graph()
			tl := g.Timeline()
			views := []*ops.View{
				ops.Union(g, tl.All(), tl.All()),
				ops.Intersection(g, tl.Range(0, timeline.Time(tl.Len()/2)), tl.Range(timeline.Time(tl.Len()/2), timeline.Time(tl.Len()-1))),
				ops.Difference(g, tl.Range(0, timeline.Time(tl.Len()-2)), tl.Point(timeline.Time(tl.Len()-1))),
			}
			for _, names := range tc.attrs {
				s, err := ByName(g, names...)
				if err != nil {
					t.Fatalf("schema %v: %v", names, err)
				}
				if !s.denseEligible() {
					t.Fatalf("schema %v unexpectedly not dense-eligible (domain %d)", names, s.Domain())
				}
				for _, v := range views {
					for _, kind := range []Kind{Distinct, All} {
						dense := Aggregate(v, s, kind)
						ref := AggregateMap(v, s, kind)
						if !dense.Equal(ref) {
							t.Fatalf("%s %v %s: dense != map\ndense:\n%s\nmap:\n%s",
								tc.name, names, kind, dense, ref)
						}
					}
				}
			}
		})
	}
}

// TestDenseScratchReuse runs many aggregations through one schema to
// exercise pool round-trips, stamp generations and touched-list clearing.
func TestDenseScratchReuse(t *testing.T) {
	g := dataset.SchoolContacts(3, dataset.DefaultContactsParams())
	s, err := ByName(g, "grade", "class")
	if err != nil {
		t.Fatal(err)
	}
	tl := g.Timeline()
	var first *Graph
	for i := 0; i < 50; i++ {
		v := ops.Union(g, tl.All(), tl.All())
		ag := Aggregate(v, s, Distinct)
		if first == nil {
			first = ag
		} else if !ag.Equal(first) {
			t.Fatalf("iteration %d: result changed across scratch reuse", i)
		}
	}
}

// TestParallelDenseMatchesSerial forces the parallel path on a small graph
// (bypassing the entity-count fallback) and checks shard merging of dense
// partials.
func TestParallelDenseMatchesSerial(t *testing.T) {
	old := parallelMinEntities
	parallelMinEntities = 0
	defer func() { parallelMinEntities = old }()

	g := dataset.DBLPScaled(2, 0.05)
	tl := g.Timeline()
	v := ops.Union(g, tl.All(), tl.All())
	for _, names := range [][]string{{"gender"}, {"publications"}, {"gender", "publications"}} {
		s, err := ByName(g, names...)
		if err != nil {
			t.Fatal(err)
		}
		for _, kind := range []Kind{Distinct, All} {
			want := Aggregate(v, s, kind)
			for _, workers := range []int{2, 3, 8} {
				got := AggregateParallel(v, s, kind, workers)
				if !got.Equal(want) {
					t.Fatalf("%v %s workers=%d: parallel != serial", names, kind, workers)
				}
			}
		}
	}
}

// TestParallelFallsBackToSerialOnSmallViews checks the auto-fallback: with
// the threshold above the view size, results are still correct (and the
// path trivially matches the serial engine).
func TestParallelFallsBackToSerialOnSmallViews(t *testing.T) {
	g := dataset.SchoolContacts(1, dataset.DefaultContactsParams())
	tl := g.Timeline()
	v := ops.Union(g, tl.All(), tl.All())
	s, err := ByName(g, "grade")
	if err != nil {
		t.Fatal(err)
	}
	if v.NumNodes()+v.NumEdges() >= parallelMinEntities {
		t.Skip("fixture unexpectedly large; fallback not exercised")
	}
	if !AggregateParallel(v, s, All, 8).Equal(Aggregate(v, s, All)) {
		t.Fatal("fallback result differs from serial")
	}
}

// BenchmarkDenseVsMapKernel measures the dense kernel against the seed map
// engine on the paper-scale synthetic DBLP dataset (allocations are the
// headline: the dense path allocates only the exactly-sized result maps).
func BenchmarkDenseVsMapKernel(b *testing.B) {
	g := dataset.DBLPScaled(1, 1.0)
	tl := g.Timeline()
	v := ops.Union(g, tl.All(), tl.All())
	for _, names := range [][]string{{"gender"}, {"gender", "publications"}} {
		s, err := ByName(g, names...)
		if err != nil {
			b.Fatal(err)
		}
		label := names[0]
		if len(names) > 1 {
			label = "gender+publications"
		}
		for _, kind := range []Kind{Distinct, All} {
			b.Run(label+"-"+kind.String()+"/dense", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					Aggregate(v, s, kind)
				}
			})
			b.Run(label+"-"+kind.String()+"/map", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					AggregateMap(v, s, kind)
				}
			})
		}
	}
}
