package agg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/gtest"
	"repro/internal/ops"
	"repro/internal/timeline"
)

func fixtureSchemas(t *testing.T) (*core.Graph, *Schema, *Schema) {
	t.Helper()
	g := core.PaperExample()
	gp, err := ByName(g, "gender", "publications")
	if err != nil {
		t.Fatal(err)
	}
	gOnly, err := ByName(g, "gender")
	if err != nil {
		t.Fatal(err)
	}
	return g, gp, gOnly
}

// weight looks up an aggregate node weight by attribute values.
func weight(t *testing.T, ag *Graph, values ...string) int64 {
	t.Helper()
	tu, ok := ag.Schema.Encode(values...)
	if !ok {
		return 0
	}
	return ag.NodeWeight(tu)
}

func edgeWeight(t *testing.T, ag *Graph, from, to []string) int64 {
	t.Helper()
	f, ok1 := ag.Schema.Encode(from...)
	s, ok2 := ag.Schema.Encode(to...)
	if !ok1 || !ok2 {
		return 0
	}
	return ag.EdgeWeight(f, s)
}

func TestFig3aTimePointT0(t *testing.T) {
	g, gp, _ := fixtureSchemas(t)
	ag := Aggregate(ops.At(g, 0), gp, Distinct)
	cases := []struct {
		vals []string
		want int64
	}{
		{[]string{"m", "3"}, 1},
		{[]string{"f", "1"}, 2},
		{[]string{"f", "2"}, 1},
	}
	for _, c := range cases {
		if got := weight(t, ag, c.vals...); got != c.want {
			t.Errorf("w(%v) = %d, want %d", c.vals, got, c.want)
		}
	}
	if len(ag.Nodes) != 3 {
		t.Errorf("aggregate node count = %d, want 3", len(ag.Nodes))
	}
	if got := edgeWeight(t, ag, []string{"m", "3"}, []string{"f", "1"}); got != 2 {
		t.Errorf("w((m,3)→(f,1)) = %d, want 2", got)
	}
	if got := edgeWeight(t, ag, []string{"f", "1"}, []string{"f", "2"}); got != 1 {
		t.Errorf("w((f,1)→(f,2)) = %d, want 1", got)
	}
}

func TestFig3bcTimePointsT1T2(t *testing.T) {
	g, gp, _ := fixtureSchemas(t)
	ag1 := Aggregate(ops.At(g, 1), gp, Distinct)
	if got := weight(t, ag1, "f", "1"); got != 2 {
		t.Errorf("t1 w(f,1) = %d, want 2", got)
	}
	if got := weight(t, ag1, "m", "1"); got != 1 {
		t.Errorf("t1 w(m,1) = %d, want 1", got)
	}
	if got := edgeWeight(t, ag1, []string{"m", "1"}, []string{"f", "1"}); got != 2 {
		t.Errorf("t1 w((m,1)→(f,1)) = %d, want 2", got)
	}
	if got := edgeWeight(t, ag1, []string{"f", "1"}, []string{"f", "1"}); got != 1 {
		t.Errorf("t1 w((f,1)→(f,1)) = %d, want 1", got)
	}

	ag2 := Aggregate(ops.At(g, 2), gp, Distinct)
	if got := weight(t, ag2, "f", "1"); got != 2 {
		t.Errorf("t2 w(f,1) = %d, want 2", got)
	}
	if got := weight(t, ag2, "m", "3"); got != 1 {
		t.Errorf("t2 w(m,3) = %d, want 1", got)
	}
	if got := edgeWeight(t, ag2, []string{"f", "1"}, []string{"m", "3"}); got != 2 {
		t.Errorf("t2 w((f,1)→(m,3)) = %d, want 2", got)
	}
}

// TestFig3dDistinctUnion asserts the paper's headline example: on the union
// graph of (t0, t1), the DIST weight of (f,1) is 3 (nodes u2, u3, u4).
func TestFig3dDistinctUnion(t *testing.T) {
	g, gp, _ := fixtureSchemas(t)
	tl := g.Timeline()
	v := ops.Union(g, tl.Point(0), tl.Point(1))
	ag := Aggregate(v, gp, Distinct)
	if got := weight(t, ag, "f", "1"); got != 3 {
		t.Fatalf("DIST w(f,1) = %d, want 3 (paper Fig. 3d)", got)
	}
	if got := weight(t, ag, "f", "2"); got != 1 {
		t.Errorf("DIST w(f,2) = %d, want 1", got)
	}
	if got := weight(t, ag, "m", "3"); got != 1 {
		t.Errorf("DIST w(m,3) = %d, want 1", got)
	}
	if got := weight(t, ag, "m", "1"); got != 1 {
		t.Errorf("DIST w(m,1) = %d, want 1", got)
	}
	if got := edgeWeight(t, ag, []string{"m", "3"}, []string{"f", "1"}); got != 2 {
		t.Errorf("DIST w((m,3)→(f,1)) = %d, want 2 (edges u1→u2@t0, u1→u3@t0)", got)
	}
}

// TestFig3eAllUnion asserts the non-distinct counterpart: ALL weight of
// (f,1) is 4 (u2 twice, u3 once, u4 once).
func TestFig3eAllUnion(t *testing.T) {
	g, gp, _ := fixtureSchemas(t)
	tl := g.Timeline()
	v := ops.Union(g, tl.Point(0), tl.Point(1))
	ag := Aggregate(v, gp, All)
	if got := weight(t, ag, "f", "1"); got != 4 {
		t.Fatalf("ALL w(f,1) = %d, want 4 (paper Fig. 3e)", got)
	}
}

func TestStaticFastPathGenderUnion(t *testing.T) {
	g, _, gOnly := fixtureSchemas(t)
	if !gOnly.AllStatic() {
		t.Fatal("gender-only schema should be all-static")
	}
	tl := g.Timeline()
	v := ops.Union(g, tl.Point(0), tl.Point(1))

	dist := Aggregate(v, gOnly, Distinct)
	if got := weight(t, dist, "f"); got != 3 {
		t.Errorf("DIST w(f) = %d, want 3", got)
	}
	if got := weight(t, dist, "m"); got != 1 {
		t.Errorf("DIST w(m) = %d, want 1", got)
	}
	if got := edgeWeight(t, dist, []string{"m"}, []string{"f"}); got != 3 {
		t.Errorf("DIST w(m→f) = %d, want 3", got)
	}
	if got := edgeWeight(t, dist, []string{"f"}, []string{"f"}); got != 1 {
		t.Errorf("DIST w(f→f) = %d, want 1", got)
	}

	all := Aggregate(v, gOnly, All)
	if got := weight(t, all, "f"); got != 5 {
		t.Errorf("ALL w(f) = %d, want 5 (u2:2 + u3:1 + u4:2)", got)
	}
	if got := weight(t, all, "m"); got != 2 {
		t.Errorf("ALL w(m) = %d, want 2", got)
	}
	if got := edgeWeight(t, all, []string{"m"}, []string{"f"}); got != 4 {
		t.Errorf("ALL w(m→f) = %d, want 4", got)
	}
	if got := edgeWeight(t, all, []string{"f"}, []string{"f"}); got != 2 {
		t.Errorf("ALL w(f→f) = %d, want 2", got)
	}
}

func TestDistinctDedupsRepeatedEdgeTuple(t *testing.T) {
	// Edge (u2,u4) exists at t0,t1,t2; on gender it is (f→f) at all three.
	g, _, gOnly := fixtureSchemas(t)
	tl := g.Timeline()
	v := ops.Intersection(g, tl.Range(0, 1), tl.Range(1, 2))
	dist := Aggregate(v, gOnly, Distinct)
	all := Aggregate(v, gOnly, All)
	if got := edgeWeight(t, dist, []string{"f"}, []string{"f"}); got != 1 {
		t.Errorf("DIST w(f→f) = %d, want 1", got)
	}
	if got := edgeWeight(t, all, []string{"f"}, []string{"f"}); got != 3 {
		t.Errorf("ALL w(f→f) = %d, want 3", got)
	}

	// Definition 2.4 restricts timestamps to T1 ∪ T2: intersecting the two
	// single points t0 and t2 must collect values at {t0, t2} only, so the
	// same edge contributes 2, not 3.
	v2 := ops.Intersection(g, tl.Point(0), tl.Point(2))
	all2 := Aggregate(v2, gOnly, All)
	if got := edgeWeight(t, all2, []string{"f"}, []string{"f"}); got != 2 {
		t.Errorf("ALL w(f→f) on {t0,t2} = %d, want 2", got)
	}
}

func TestSchemaErrors(t *testing.T) {
	g := core.PaperExample()
	if _, err := NewSchema(g); err == nil {
		t.Error("empty attribute list should fail")
	}
	if _, err := NewSchema(g, core.AttrID(99)); err == nil {
		t.Error("out-of-range attribute should fail")
	}
	if _, err := NewSchema(g, 0, 0); err == nil {
		t.Error("duplicate attribute should fail")
	}
	if _, err := ByName(g, "nope"); err == nil {
		t.Error("unknown attribute name should fail")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	_, gp, _ := fixtureSchemas(t)
	tu, ok := gp.Encode("f", "2")
	if !ok {
		t.Fatal("Encode failed")
	}
	vals := gp.Decode(tu)
	if vals[0] != "f" || vals[1] != "2" {
		t.Fatalf("Decode = %v", vals)
	}
	if gp.Label(tu) != "f,2" {
		t.Fatalf("Label = %q", gp.Label(tu))
	}
	if _, ok := gp.Encode("x", "1"); ok {
		t.Error("Encode of out-of-domain value should fail")
	}
	if _, ok := gp.Encode("f"); ok {
		t.Error("Encode with wrong arity should fail")
	}
}

func TestRollupMatchesDirectAtTimePoint(t *testing.T) {
	g, gp, gOnly := fixtureSchemas(t)
	for tp := 0; tp < 3; tp++ {
		v := ops.At(g, timeline.Time(tp))
		fine := Aggregate(v, gp, Distinct)
		rolled, err := Rollup(fine, g.MustAttr("gender"))
		if err != nil {
			t.Fatal(err)
		}
		direct := Aggregate(v, gOnly, Distinct)
		if !rolled.Equal(direct) {
			t.Errorf("t%d: rollup disagrees with direct aggregation:\n%s\nvs\n%s",
				tp, rolled, direct)
		}
	}
}

func TestRollupErrors(t *testing.T) {
	g, gp, _ := fixtureSchemas(t)
	v := ops.At(g, 0)
	fine := Aggregate(v, gp, Distinct)
	if _, err := Rollup(fine); err == nil {
		t.Error("rollup on no attributes should fail")
	}
	// gender is attr 0; an id not in the source schema:
	b := core.NewBuilder(timeline.MustNew("x"))
	_ = b
	if _, err := Rollup(fine, core.AttrID(5)); err == nil {
		t.Error("rollup on attribute outside source schema should fail")
	}
}

func TestMergeCloneEqual(t *testing.T) {
	g, gp, _ := fixtureSchemas(t)
	a0 := Aggregate(ops.At(g, 0), gp, All)
	a1 := Aggregate(ops.At(g, 1), gp, All)
	merged := a0.Clone()
	merged.Merge(a1)
	for tu, w := range a0.Nodes {
		if merged.Nodes[tu] < w {
			t.Errorf("merged weight < source for %v", gp.Decode(tu))
		}
	}
	if merged.TotalNodeWeight() != a0.TotalNodeWeight()+a1.TotalNodeWeight() {
		t.Error("merged total ≠ sum of totals")
	}
	if !a0.Equal(a0.Clone()) {
		t.Error("clone should equal source")
	}
	if a0.Equal(a1) {
		t.Error("different aggregates should not be equal")
	}
}

func TestAggregatePanicsOnForeignView(t *testing.T) {
	g1 := core.PaperExample()
	g2 := core.PaperExample()
	s := MustSchema(g1, g1.MustAttr("gender"))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Aggregate(ops.At(g2, 0), s, Distinct)
}

// allSchemas returns a schema over every attribute of g, or nil if g has
// no attributes.
func allSchema(g *core.Graph) *Schema {
	if g.NumAttrs() == 0 {
		return nil
	}
	attrs := make([]core.AttrID, g.NumAttrs())
	for i := range attrs {
		attrs[i] = core.AttrID(i)
	}
	return MustSchema(g, attrs...)
}

func TestQuickDistinctAtMostAll(t *testing.T) {
	// For every tuple, DIST weight ≤ ALL weight (each distinct entity
	// appears at least once).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := gtest.RandomGraph(r, gtest.DefaultParams())
		s := allSchema(g)
		if s == nil {
			return true
		}
		tl := g.Timeline()
		v := ops.Union(g, gtest.RandomInterval(r, tl), gtest.RandomInterval(r, tl))
		dist := Aggregate(v, s, Distinct)
		all := Aggregate(v, s, All)
		for tu, w := range dist.Nodes {
			if all.Nodes[tu] < w {
				return false
			}
		}
		for k, w := range dist.Edges {
			if all.Edges[k] < w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickLemma33UnionMonotoneIncreasing(t *testing.T) {
	// Lemma 3.3: aggregation is monotonically increasing w.r.t. union —
	// with Tk fixed and Ti ⊆ Tj, every common tuple's weight on Tk ∪ Ti is
	// ≤ its weight on Tk ∪ Tj.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := gtest.RandomGraph(r, gtest.DefaultParams())
		s := allSchema(g)
		if s == nil {
			return true
		}
		tl := g.Timeline()
		tk := gtest.RandomInterval(r, tl)
		ti := gtest.RandomInterval(r, tl)
		tj := ti.Union(gtest.RandomInterval(r, tl)) // Ti ⊆ Tj
		for _, kind := range []Kind{Distinct, All} {
			gi := Aggregate(ops.Union(g, tk, ti), s, kind)
			gj := Aggregate(ops.Union(g, tk, tj), s, kind)
			for tu, w := range gi.Nodes {
				if gj.Nodes[tu] < w {
					return false
				}
			}
			for k, w := range gi.Edges {
				if gj.Edges[k] < w {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickLemma33IntersectionMonotoneDecreasing(t *testing.T) {
	// Lemma 3.3: aggregation is monotonically decreasing w.r.t.
	// intersection: extending one side can only lose weight.
	//
	// The lemma holds for static aggregation attributes (what the paper's
	// exploration experiments use). For time-varying attributes it does
	// not hold in general, because Definition 2.4 collects attribute
	// values over T1 ∪ T2: extending an interval shrinks the entity set
	// but widens each surviving entity's tuple set, so a tuple's weight
	// can move either way. The test therefore restricts the schema to
	// static attributes.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := gtest.RandomGraph(r, gtest.DefaultParams())
		var static []core.AttrID
		for a := 0; a < g.NumAttrs(); a++ {
			if g.Attr(core.AttrID(a)).Kind == core.Static {
				static = append(static, core.AttrID(a))
			}
		}
		if len(static) == 0 {
			return true
		}
		s := MustSchema(g, static...)
		tl := g.Timeline()
		tk := gtest.RandomInterval(r, tl)
		ti := gtest.RandomInterval(r, tl)
		tj := ti.Union(gtest.RandomInterval(r, tl))
		// Intersection semantics: an extended interval Tj requires
		// existence at every one of its points (ForAll), so the graph on
		// Tk · Tj can only lose entities (and weight) as Ti grows to Tj.
		gi := Aggregate(ops.StabilityView(g, ops.Exists(tk), ops.ForAll(ti)), s, Distinct)
		gj := Aggregate(ops.StabilityView(g, ops.Exists(tk), ops.ForAll(tj)), s, Distinct)
		for tu, w := range gj.Nodes {
			if gi.Nodes[tu] < w {
				return false
			}
		}
		for k, w := range gj.Edges {
			if gi.Edges[k] < w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRollupExactForAll(t *testing.T) {
	// D-distributive roll-up is exact for ALL aggregates on any view.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := gtest.RandomGraph(r, gtest.DefaultParams())
		if g.NumAttrs() < 2 {
			return true
		}
		s := allSchema(g)
		tl := g.Timeline()
		v := ops.Union(g, gtest.RandomInterval(r, tl), gtest.RandomInterval(r, tl))
		fine := Aggregate(v, s, All)
		subset := []core.AttrID{core.AttrID(r.Intn(g.NumAttrs()))}
		rolled, err := Rollup(fine, subset...)
		if err != nil {
			return false
		}
		direct := Aggregate(v, MustSchema(g, subset...), All)
		return rolled.Equal(direct)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickStaticFastPathMatchesGeneralPath(t *testing.T) {
	// The §4.2 static fast path must agree with the general per-time-point
	// path on all-static schemas.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := gtest.RandomGraph(r, gtest.DefaultParams())
		var static []core.AttrID
		for a := 0; a < g.NumAttrs(); a++ {
			if g.Attr(core.AttrID(a)).Kind == core.Static {
				static = append(static, core.AttrID(a))
			}
		}
		if len(static) == 0 {
			return true
		}
		s := MustSchema(g, static...)
		tl := g.Timeline()
		v := ops.Union(g, gtest.RandomInterval(r, tl), gtest.RandomInterval(r, tl))
		for _, kind := range []Kind{Distinct, All} {
			fast := &Graph{Schema: s, Kind: kind, Nodes: map[Tuple]int64{}, Edges: map[EdgeKey]int64{}}
			aggregateStatic(v, s, kind, fast)
			slow := &Graph{Schema: s, Kind: kind, Nodes: map[Tuple]int64{}, Edges: map[EdgeKey]int64{}}
			aggregateVarying(v, s, kind, slow)
			if !fast.Equal(slow) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
