package agg

import (
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/ops"
	"repro/internal/timeline"
)

// TestConcurrentAggregation verifies the documented contract that a built
// Graph (and a Schema over it) may be read by many goroutines without
// synchronization: run aggregations of every kind over many views in
// parallel and check each against a serially computed expectation.
// Meaningful under -race.
func TestConcurrentAggregation(t *testing.T) {
	g := dataset.DBLPScaled(1, 0.02)
	schemas := []*Schema{
		MustSchema(g, g.MustAttr("gender")),
		MustSchema(g, g.MustAttr("publications")),
		MustSchema(g, g.MustAttr("gender"), g.MustAttr("publications")),
	}
	tl := g.Timeline()

	type job struct {
		view *ops.View
		s    *Schema
		kind Kind
		want *Graph
	}
	var jobs []job
	for i := 0; i < tl.Len()-1; i++ {
		views := []*ops.View{
			ops.At(g, timeline.Time(i)),
			ops.Union(g, tl.Point(timeline.Time(i)), tl.Point(timeline.Time(i+1))),
			ops.Difference(g, tl.Point(timeline.Time(i)), tl.Point(timeline.Time(i+1))),
		}
		for _, v := range views {
			for _, s := range schemas {
				for _, kind := range []Kind{Distinct, All} {
					jobs = append(jobs, job{v, s, kind, Aggregate(v, s, kind)})
				}
			}
		}
	}

	var wg sync.WaitGroup
	errs := make(chan string, len(jobs))
	for _, j := range jobs {
		wg.Add(1)
		go func(j job) {
			defer wg.Done()
			if got := Aggregate(j.view, j.s, j.kind); !got.Equal(j.want) {
				errs <- "concurrent aggregation diverged from serial result"
			}
		}(j)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}
