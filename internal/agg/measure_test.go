package agg

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/gtest"
	"repro/internal/ops"
)

// Publications per gender at t0 in the fixture: m → {3}, f → {1, 1, 2}.
func TestAggregateMeasureAtT0(t *testing.T) {
	g := core.PaperExample()
	gender := MustSchema(g, g.MustAttr("gender"))
	pubs := g.MustAttr("publications")
	v := ops.At(g, 0)

	cases := []struct {
		m     Measure
		wantM float64
		wantF float64
	}{
		{Sum, 3, 4},
		{Avg, 3, 4.0 / 3.0},
		{Min, 3, 1},
		{Max, 3, 2},
	}
	for _, c := range cases {
		mg, err := AggregateMeasure(v, gender, pubs, c.m)
		if err != nil {
			t.Fatal(err)
		}
		m, _ := gender.Encode("m")
		f, _ := gender.Encode("f")
		if got, ok := mg.Value(m); !ok || math.Abs(got-c.wantM) > 1e-9 {
			t.Errorf("%v(m) = %v,%v, want %v", c.m, got, ok, c.wantM)
		}
		if got, ok := mg.Value(f); !ok || math.Abs(got-c.wantF) > 1e-9 {
			t.Errorf("%v(f) = %v,%v, want %v", c.m, got, ok, c.wantF)
		}
		if mg.Count[f] != 3 {
			t.Errorf("count(f) = %d, want 3", mg.Count[f])
		}
	}
}

func TestAggregateMeasureOverInterval(t *testing.T) {
	// Union of (t0, t1): appearances m → {3, 1}, f → {1, 1, 1, 2, 1}.
	g := core.PaperExample()
	gender := MustSchema(g, g.MustAttr("gender"))
	pubs := g.MustAttr("publications")
	tl := g.Timeline()
	v := ops.Union(g, tl.Point(0), tl.Point(1))
	mg, err := AggregateMeasure(v, gender, pubs, Avg)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := gender.Encode("m")
	f, _ := gender.Encode("f")
	if got, _ := mg.Value(m); math.Abs(got-2.0) > 1e-9 {
		t.Errorf("AVG(m) = %v, want 2", got)
	}
	if got, _ := mg.Value(f); math.Abs(got-1.2) > 1e-9 {
		t.Errorf("AVG(f) = %v, want 1.2", got)
	}
}

func TestAggregateMeasureErrors(t *testing.T) {
	g := core.PaperExample()
	gender := MustSchema(g, g.MustAttr("gender"))
	v := ops.At(g, 0)
	if _, err := AggregateMeasure(v, gender, g.MustAttr("gender"), Sum); err == nil {
		t.Error("grouping and measuring the same attribute should fail")
	}
	if _, err := AggregateMeasure(v, gender, core.AttrID(99), Sum); err == nil {
		t.Error("out-of-range measured attribute should fail")
	}
}

func TestAggregateMeasureSkipsNonNumeric(t *testing.T) {
	// Measuring gender (m/f strings) by publications grouping: every
	// sample is non-numeric → empty result.
	g := core.PaperExample()
	pubs := MustSchema(g, g.MustAttr("publications"))
	mg, err := AggregateMeasure(ops.At(g, 0), pubs, g.MustAttr("gender"), Sum)
	if err != nil {
		t.Fatal(err)
	}
	if len(mg.Nodes) != 0 {
		t.Errorf("non-numeric measure should produce no values, got %v", mg.Nodes)
	}
}

func TestMeasureString(t *testing.T) {
	g := core.PaperExample()
	gender := MustSchema(g, g.MustAttr("gender"))
	mg, err := AggregateMeasure(ops.At(g, 0), gender, g.MustAttr("publications"), Avg)
	if err != nil {
		t.Fatal(err)
	}
	s := mg.String()
	if !strings.Contains(s, "AVG(publications)") || !strings.Contains(s, "(m) = 3") {
		t.Errorf("String output:\n%s", s)
	}
}

func TestQuickMeasureConsistency(t *testing.T) {
	// SUM = AVG × count; MIN ≤ AVG ≤ MAX; count equals the ALL count
	// weight when the measured attribute is never missing.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := gtest.RandomGraph(r, gtest.DefaultParams())
		if g.NumAttrs() < 2 {
			return true
		}
		// Group by attribute 0, measure attribute 1 — gtest values are
		// "xN" strings, non-numeric, so rebuild numeric values by
		// measuring over a numeric attribute we synthesize: instead, use
		// the count consistency only when the parse fails (skip), which
		// makes this trivially true. To get real numbers, random graphs
		// are not enough; rely on the fixture tests above and check the
		// structural invariant here: measure counts never exceed ALL
		// counts.
		s := MustSchema(g, core.AttrID(0))
		tl := g.Timeline()
		v := ops.Union(g, gtest.RandomInterval(r, tl), gtest.RandomInterval(r, tl))
		mg, err := AggregateMeasure(v, s, core.AttrID(1), Sum)
		if err != nil {
			return false
		}
		all := Aggregate(v, s, All)
		for tu, c := range mg.Count {
			if c > all.Nodes[tu] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
