package agg

import (
	"context"

	"repro/internal/core"
	"repro/internal/ops"
	"repro/internal/timeline"
)

// AggregateParallel computes the same result as Aggregate using several
// goroutines. The view's node and edge id spaces are split into
// contiguous shards, each worker aggregates its shards into a private
// partial graph, and the partials are merged.
//
// Sharding by entity is correct for both kinds: ALL weights are pure sums,
// and DIST deduplication is per entity (a node's tuples and an edge's
// tuple pairs are only ever deduplicated against themselves), so no
// entity's appearances are split across workers.
//
// workers ≤ 0 selects GOMAXPROCS. With one worker — or when the view
// selects fewer than ParallelMinEntities entities, where goroutine spawn
// and merge overhead dominate — it falls back to the serial Aggregate.
// Worthwhile for large views (dense MovieLens months); measured by
// BenchmarkAblationParallelAggregation.
func AggregateParallel(v *ops.View, s *Schema, kind Kind, workers int) *Graph {
	if v.Graph() != s.g {
		panic("agg: view and schema built on different graphs")
	}
	// context.Background is never canceled, so the shared engine's
	// cancellation probes compile down to nothing on this path.
	return aggregateParallelInner(context.Background(), v, s, kind, workers)
}

// parallelMinEntities is the measured crossover below which
// AggregateParallel falls back to the serial engine: on small views the
// fixed cost of spawning workers and merging partials exceeds the
// aggregation itself (BenchmarkAblationParallelAggregation shows the serial
// engine winning by >2× at a few thousand entities and losing from a few
// tens of thousands up). A variable, not a constant, so tests can force
// the parallel path on small fixtures.
var parallelMinEntities = 16384

// ParallelMinEntities returns the serial/parallel crossover: views selecting
// fewer entities than this run serially even when workers > 1. Exported for
// the query planner, which reports the execution mode a plan will use.
func ParallelMinEntities() int { return parallelMinEntities }

// aggregateStaticRange is aggregateStatic restricted to id ranges.
func aggregateStaticRange(v *ops.View, s *Schema, kind Kind, ag *Graph, nLo, nHi, eLo, eHi int) {
	v.ForEachNodeIn(nLo, nHi, func(n core.NodeID) {
		tu, ok := s.StaticTuple(n)
		if !ok {
			return
		}
		if kind == Distinct {
			ag.Nodes[tu]++
		} else {
			ag.Nodes[tu] += int64(v.NodeTimesCount(n))
		}
	})
	g := s.g
	v.ForEachEdgeIn(eLo, eHi, func(e core.EdgeID) {
		ep := g.Edge(e)
		fu, ok1 := s.StaticTuple(ep.U)
		tu, ok2 := s.StaticTuple(ep.V)
		if !ok1 || !ok2 {
			return
		}
		key := EdgeKey{fu, tu}
		if kind == Distinct {
			ag.Edges[key]++
		} else {
			ag.Edges[key] += int64(v.EdgeTimesCount(e))
		}
	})
}

// aggregateVaryingRange is aggregateVarying restricted to id ranges.
func aggregateVaryingRange(v *ops.View, s *Schema, kind Kind, ag *Graph, nLo, nHi, eLo, eHi int) {
	g := s.g
	var seen map[Tuple]bool
	if kind == Distinct {
		seen = make(map[Tuple]bool)
	}
	v.ForEachNodeIn(nLo, nHi, func(n core.NodeID) {
		if kind == Distinct {
			clear(seen)
		}
		v.NodeTimes(n).ForEach(func(t int) {
			tu, ok := s.TupleAt(n, timeline.Time(t))
			if !ok {
				return
			}
			if kind == Distinct {
				if seen[tu] {
					return
				}
				seen[tu] = true
			}
			ag.Nodes[tu]++
		})
	})
	var seenEdges map[EdgeKey]bool
	if kind == Distinct {
		seenEdges = make(map[EdgeKey]bool)
	}
	v.ForEachEdgeIn(eLo, eHi, func(e core.EdgeID) {
		if kind == Distinct {
			clear(seenEdges)
		}
		ep := g.Edge(e)
		v.EdgeTimes(e).ForEach(func(t int) {
			fu, ok1 := s.TupleAt(ep.U, timeline.Time(t))
			tu, ok2 := s.TupleAt(ep.V, timeline.Time(t))
			if !ok1 || !ok2 {
				return
			}
			key := EdgeKey{fu, tu}
			if kind == Distinct {
				if seenEdges[key] {
					return
				}
				seenEdges[key] = true
			}
			ag.Edges[key]++
		})
	})
}
