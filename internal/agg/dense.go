package agg

import (
	"repro/internal/core"
	"repro/internal/ops"
	"repro/internal/timeline"
)

// This file implements the dense aggregation kernel: the hot-path engine
// behind Aggregate for schemas whose cartesian tuple domain is small.
//
// The map engine (agg.go) pays a hash insert per appearance plus a map
// allocation per entity for DIST deduplication, and materializes a
// restricted-timestamp bitset per entity on the per-time-point path. The
// tuple space of the paper's workloads is tiny and dictionary-encoded
// (gender = 2, gender×publications ≈ 40, the largest MovieLens pair
// combinations a few hundred), so the accumulators can instead be flat
// []int64 arrays indexed by the dense mixed-radix tuple code — node weights
// by tuple, edge weights by from*Domain+to — with O(1) unhashed updates,
// epoch-stamped per-entity deduplication, and word-level timestamp
// iteration (bitset.ForEachAnd) that allocates nothing. The arrays are
// pooled per schema, making repeated Aggregate calls allocation-free apart
// from the exactly-sized result maps.
//
// Exploration (internal/explore) is the workload this exists for: every
// candidate interval pair costs one aggregation, and Figs. 13–14 evaluate
// hundreds of pairs per traversal.

// DenseDomainLimit bounds the tuple domains served by the dense kernel.
// Above it (e.g. the 4-attribute MovieLens combination, domain ≈ 10k, whose
// edge space would be ~10^8 slots) Aggregate falls back to the map engine.
// 1024 caps the pooled edge array at 1024² slots = 8 MiB.
const DenseDomainLimit = 1024

// denseEligible reports whether the dense kernel serves this schema.
func (s *Schema) denseEligible() bool {
	return !s.preferMap && s.domain > 0 && s.domain <= DenseDomainLimit
}

// PreferMapKernel pins the schema to the map kernels even when the tuple
// domain is small enough for the dense flat-array kernel. The query
// planner's feedback loop calls it when observed cardinalities show the
// domain is sparsely occupied (the d² edge slot space dwarfs the data), so
// the dense arrays' allocation and clearing cost cannot amortize. Must be
// set before the schema's first Aggregate use; both kernels produce
// identical results, so the switch only ever trades performance.
func (s *Schema) PreferMapKernel() { s.preferMap = true }

// KernelName reports which aggregation kernel Aggregate would select for
// this schema: "dense" (flat-array accumulators), "static" (map kernel over
// time-invariant tuples) or "varying" (general map kernel). It mirrors the
// dispatch in aggregateRangeCtx so the query planner can name the engine a
// plan will run on without executing it.
func (s *Schema) KernelName() string {
	switch {
	case s.denseEligible():
		return "dense"
	case s.allStatic:
		return "static"
	default:
		return "varying"
	}
}

// denseScratch is one pooled set of flat accumulators for a schema.
// nodeW/edgeW hold in-flight weights; nodeSeen/edgeSeen are the DIST
// deduplication stamps (an entry equal to the current gen was seen for the
// current entity); the touched lists record which slots are non-zero so
// clearing is O(distinct tuples), not O(domain²).
type denseScratch struct {
	nodeW []int64
	edgeW []int64

	nodeSeen []int32
	edgeSeen []int32
	gen      int32

	nodeTouched []int32
	edgeTouched []int32
}

// getScratch returns a scratch with cleared weights sized for the schema.
func (s *Schema) getScratch() *denseScratch {
	d := int(s.domain)
	sc, _ := s.dense.Get().(*denseScratch)
	if sc == nil {
		sc = &denseScratch{
			nodeW:    make([]int64, d),
			edgeW:    make([]int64, d*d),
			nodeSeen: make([]int32, d),
			edgeSeen: make([]int32, d*d),
		}
	}
	if sc.gen > 1<<30 { // stamp wrap guard; effectively never taken
		clear(sc.nodeSeen)
		clear(sc.edgeSeen)
		sc.gen = 0
	}
	return sc
}

// putScratch zeroes the touched weights and returns the scratch to the pool.
func (s *Schema) putScratch(sc *denseScratch) {
	for _, c := range sc.nodeTouched {
		sc.nodeW[c] = 0
	}
	for _, c := range sc.edgeTouched {
		sc.edgeW[c] = 0
	}
	sc.nodeTouched = sc.nodeTouched[:0]
	sc.edgeTouched = sc.edgeTouched[:0]
	s.dense.Put(sc)
}

// staticTupleCodes lazily builds the per-node dense tuple codes of an
// all-static schema (-1 where any attribute value is missing). Built once
// per schema; safe for concurrent readers.
func (s *Schema) staticTupleCodes() []int32 {
	s.staticOnce.Do(func() {
		codes := make([]int32, s.g.NumNodes())
		for n := range codes {
			if tu, ok := s.StaticTuple(core.NodeID(n)); ok {
				codes[n] = int32(tu)
			} else {
				codes[n] = -1
			}
		}
		s.staticCodes = codes
	})
	return s.staticCodes
}

// aggregateDense runs the dense kernel over the view's entities with ids in
// [nLo,nHi) / [eLo,eHi) and stores exactly-sized result maps into ag. The
// id ranges let AggregateParallel shard the same kernel.
func aggregateDense(v *ops.View, s *Schema, kind Kind, ag *Graph, nLo, nHi, eLo, eHi int) {
	sc := s.getScratch()
	if s.allStatic {
		denseStatic(v, s, kind, sc, nLo, nHi, eLo, eHi)
	} else {
		denseVarying(v, s, kind, sc, nLo, nHi, eLo, eHi)
	}
	d := int64(s.domain)
	ag.Nodes = make(map[Tuple]int64, len(sc.nodeTouched))
	for _, c := range sc.nodeTouched {
		ag.Nodes[Tuple(c)] = sc.nodeW[c]
	}
	ag.Edges = make(map[EdgeKey]int64, len(sc.edgeTouched))
	for _, c := range sc.edgeTouched {
		code := int64(c)
		ag.Edges[EdgeKey{Tuple(code / d), Tuple(code % d)}] = sc.edgeW[c]
	}
	s.putScratch(sc)
}

// denseStatic is the §4.2 static fast path on flat arrays: one tuple per
// node, weights 1 (DIST) or the restricted-timestamp popcount (ALL).
func denseStatic(v *ops.View, s *Schema, kind Kind, sc *denseScratch, nLo, nHi, eLo, eHi int) {
	codes := s.staticTupleCodes()
	d := int32(s.domain)
	v.ForEachNodeIn(nLo, nHi, func(n core.NodeID) {
		c := codes[n]
		if c < 0 {
			return
		}
		w := int64(1)
		if kind == All {
			w = int64(v.NodeTimesCount(n))
			if w == 0 {
				return
			}
		}
		if sc.nodeW[c] == 0 {
			sc.nodeTouched = append(sc.nodeTouched, c)
		}
		sc.nodeW[c] += w
	})
	g := s.g
	v.ForEachEdgeIn(eLo, eHi, func(e core.EdgeID) {
		ep := g.Edge(e)
		cu, cv := codes[ep.U], codes[ep.V]
		if cu < 0 || cv < 0 {
			return
		}
		w := int64(1)
		if kind == All {
			w = int64(v.EdgeTimesCount(e))
			if w == 0 {
				return
			}
		}
		code := cu*d + cv
		if sc.edgeW[code] == 0 {
			sc.edgeTouched = append(sc.edgeTouched, code)
		}
		sc.edgeW[code] += w
	})
}

// denseVarying handles time-varying schemas: tuples are collected per time
// point of each entity's restricted timestamp through the view's
// representation-aware iteration (run walks on compressed vectors,
// word-level intersection on dense ones — no bitset materialization); DIST
// deduplicates per entity with generation stamps instead of per-entity
// maps.
func denseVarying(v *ops.View, s *Schema, kind Kind, sc *denseScratch, nLo, nHi, eLo, eHi int) {
	g := s.g
	dist := kind == Distinct
	v.ForEachNodeIn(nLo, nHi, func(n core.NodeID) {
		sc.gen++
		v.ForEachNodeTime(n, func(t int) {
			tu, ok := s.TupleAt(n, timeline.Time(t))
			if !ok {
				return
			}
			if dist {
				if sc.nodeSeen[tu] == sc.gen {
					return
				}
				sc.nodeSeen[tu] = sc.gen
			}
			if sc.nodeW[tu] == 0 {
				sc.nodeTouched = append(sc.nodeTouched, int32(tu))
			}
			sc.nodeW[tu]++
		})
	})
	d := int64(s.domain)
	v.ForEachEdgeIn(eLo, eHi, func(e core.EdgeID) {
		sc.gen++
		ep := g.Edge(e)
		v.ForEachEdgeTime(e, func(t int) {
			fu, ok1 := s.TupleAt(ep.U, timeline.Time(t))
			tu, ok2 := s.TupleAt(ep.V, timeline.Time(t))
			if !ok1 || !ok2 {
				return
			}
			code := int64(fu)*d + int64(tu)
			if dist {
				if sc.edgeSeen[code] == sc.gen {
					return
				}
				sc.edgeSeen[code] = sc.gen
			}
			if sc.edgeW[code] == 0 {
				sc.edgeTouched = append(sc.edgeTouched, int32(code))
			}
			sc.edgeW[code]++
		})
	})
}
