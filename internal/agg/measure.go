package agg

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/dict"
	"repro/internal/ops"
	"repro/internal/timeline"
)

// §2.2 fixes COUNT as the aggregate function but notes that "other
// aggregations may be supported". This file adds numeric measures over a
// node attribute: for each aggregate node (attribute tuple), aggregate a
// numeric attribute of the underlying nodes with SUM / AVG / MIN / MAX —
// e.g. the average number of publications per gender per year, or the
// total contact intensity per school grade.

// Measure selects the numeric aggregate function.
type Measure int

const (
	// Sum adds the attribute values of all appearances.
	Sum Measure = iota
	// Avg averages them.
	Avg
	// Min takes the smallest.
	Min
	// Max takes the largest.
	Max
)

// String names the measure.
func (m Measure) String() string {
	switch m {
	case Sum:
		return "SUM"
	case Avg:
		return "AVG"
	case Min:
		return "MIN"
	default:
		return "MAX"
	}
}

// MeasureGraph is an aggregate graph whose node weights are a numeric
// measure of an attribute rather than a count. Edges are not measured
// (edges carry no attributes in the model, as §2.2 notes).
type MeasureGraph struct {
	Schema  *Schema
	Measure Measure
	// Attr is the measured numeric attribute.
	Attr core.AttrID
	// Nodes maps each tuple to its measure value.
	Nodes map[Tuple]float64
	// Count maps each tuple to the number of appearances measured.
	Count map[Tuple]int64
}

// AggregateMeasure computes the measure of the numeric attribute attr per
// aggregate node of the view under schema s. Every (node, time point)
// appearance within the view contributes one sample: for static measured
// attributes the node's single value, for time-varying ones the value at
// that time point. Appearances with a missing or non-numeric value are
// skipped.
//
// The measured attribute may not be part of the grouping schema (grouping
// by a value and measuring it would always yield that value).
func AggregateMeasure(v *ops.View, s *Schema, attr core.AttrID, m Measure) (*MeasureGraph, error) {
	g := s.Graph()
	if v.Graph() != g {
		panic("agg: view and schema built on different graphs")
	}
	if int(attr) < 0 || int(attr) >= g.NumAttrs() {
		return nil, fmt.Errorf("agg: measured attribute id %d out of range", attr)
	}
	for _, a := range s.attrs {
		if a == attr {
			return nil, fmt.Errorf("agg: attribute %q cannot be both grouped and measured", g.Attr(attr).Name)
		}
	}
	out := &MeasureGraph{
		Schema:  s,
		Measure: m,
		Attr:    attr,
		Nodes:   make(map[Tuple]float64),
		Count:   make(map[Tuple]int64),
	}
	v.ForEachNode(func(n core.NodeID) {
		v.NodeTimes(n).ForEach(func(t int) {
			tu, ok := s.TupleAt(n, timeline.Time(t))
			if !ok {
				return
			}
			code := g.Value(attr, n, timeline.Time(t))
			if code == dict.None {
				return
			}
			val, err := strconv.ParseFloat(g.Dict(attr).Value(code), 64)
			if err != nil {
				return
			}
			count := out.Count[tu]
			switch m {
			case Sum, Avg:
				out.Nodes[tu] += val
			case Min:
				if count == 0 || val < out.Nodes[tu] {
					out.Nodes[tu] = val
				}
			case Max:
				if count == 0 || val > out.Nodes[tu] {
					out.Nodes[tu] = val
				}
			}
			out.Count[tu] = count + 1
		})
	})
	if m == Avg {
		for tu, c := range out.Count {
			out.Nodes[tu] /= float64(c)
		}
	}
	return out, nil
}

// Value returns the measure for tu and whether the tuple had any samples.
func (mg *MeasureGraph) Value(tu Tuple) (float64, bool) {
	v, ok := mg.Nodes[tu]
	return v, ok
}

// SortedNodes returns tuples ordered by decoded label.
func (mg *MeasureGraph) SortedNodes() []Tuple {
	out := make([]Tuple, 0, len(mg.Nodes))
	for tu := range mg.Nodes {
		out = append(out, tu)
	}
	sort.Slice(out, func(i, j int) bool {
		return mg.Schema.Label(out[i]) < mg.Schema.Label(out[j])
	})
	return out
}

// String renders the measured aggregate graph.
func (mg *MeasureGraph) String() string {
	var b strings.Builder
	g := mg.Schema.Graph()
	fmt.Fprintf(&b, "measure %s(%s) per tuple\n", mg.Measure, g.Attr(mg.Attr).Name)
	for _, tu := range mg.SortedNodes() {
		v := mg.Nodes[tu]
		if v == math.Trunc(v) {
			fmt.Fprintf(&b, "  (%s) = %.0f (n=%d)\n", mg.Schema.Label(tu), v, mg.Count[tu])
		} else {
			fmt.Fprintf(&b, "  (%s) = %.3f (n=%d)\n", mg.Schema.Label(tu), v, mg.Count[tu])
		}
	}
	return b.String()
}
