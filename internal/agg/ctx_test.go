package agg

import (
	"context"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ops"
)

// TestAggregateParallelCtxMatchesSerial checks that a live context produces
// exactly the serial result on every kernel.
func TestAggregateParallelCtxMatchesSerial(t *testing.T) {
	g := core.PaperExample()
	defer forceParallel(t)()
	v := ops.Union(g, g.Timeline().All(), g.Timeline().All())
	for _, names := range [][]string{{"gender"}, {"gender", "publications"}} {
		s, err := ByName(g, names...)
		if err != nil {
			t.Fatal(err)
		}
		for _, kind := range []Kind{Distinct, All} {
			want := Aggregate(v, s, kind)
			got, err := AggregateParallelCtx(context.Background(), v, s, kind, 4)
			if err != nil {
				t.Fatalf("%v/%v: %v", names, kind, err)
			}
			if !equalGraphs(want, got) {
				t.Fatalf("%v/%v: ctx result differs from serial", names, kind)
			}
		}
	}
}

// TestAggregateParallelCtxCanceled checks the early exit: an
// already-expired context returns its error without producing a graph.
func TestAggregateParallelCtxCanceled(t *testing.T) {
	g := core.PaperExample()
	defer forceParallel(t)()
	s, err := ByName(g, "gender")
	if err != nil {
		t.Fatal(err)
	}
	v := ops.Union(g, g.Timeline().All(), g.Timeline().All())

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if ag, err := AggregateParallelCtx(ctx, v, s, Distinct, 4); err != context.Canceled {
		t.Fatalf("canceled ctx: got (%v, %v), want context.Canceled", ag, err)
	}

	dctx, dcancel := context.WithTimeout(context.Background(), -time.Second)
	defer dcancel()
	if ag, err := AggregateParallelCtx(dctx, v, s, Distinct, 0); err != context.DeadlineExceeded {
		t.Fatalf("expired deadline: got (%v, %v), want context.DeadlineExceeded", ag, err)
	}
}

// TestKernelSelectionCounters checks the serving-layer observability hook:
// one Aggregate call moves exactly one kernel counter.
func TestKernelSelectionCounters(t *testing.T) {
	g := core.PaperExample()
	v := ops.At(g, 0)
	read := func() [3]int64 {
		return [3]int64{
			KernelSelections.Dense.Value(),
			KernelSelections.Static.Value(),
			KernelSelections.Varying.Value(),
		}
	}
	s, err := ByName(g, "gender")
	if err != nil {
		t.Fatal(err)
	}
	before := read()
	Aggregate(v, s, Distinct)
	after := read()
	moved := (after[0] - before[0]) + (after[1] - before[1]) + (after[2] - before[2])
	if moved != 1 {
		t.Fatalf("kernel counters moved by %d, want 1 (before %v, after %v)", moved, before, after)
	}
}

// forceParallel lowers the serial-fallback threshold so the tiny paper
// fixture takes the sharded path, restoring it on cleanup.
func forceParallel(t *testing.T) func() {
	t.Helper()
	old := parallelMinEntities
	parallelMinEntities = 0
	return func() { parallelMinEntities = old }
}

func equalGraphs(a, b *Graph) bool {
	if len(a.Nodes) != len(b.Nodes) || len(a.Edges) != len(b.Edges) {
		return false
	}
	for tu, w := range a.Nodes {
		if b.Nodes[tu] != w {
			return false
		}
	}
	for k, w := range a.Edges {
		if b.Edges[k] != w {
			return false
		}
	}
	return true
}
