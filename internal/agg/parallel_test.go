package agg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/gtest"
	"repro/internal/ops"
)

func TestAggregateParallelMatchesSerialOnFixture(t *testing.T) {
	g := core.PaperExample()
	tl := g.Timeline()
	v := ops.Union(g, tl.Point(0), tl.Point(1))
	for _, s := range []*Schema{
		MustSchema(g, g.MustAttr("gender")),
		MustSchema(g, g.MustAttr("gender"), g.MustAttr("publications")),
	} {
		for _, kind := range []Kind{Distinct, All} {
			for _, workers := range []int{0, 1, 2, 3, 8} {
				got := AggregateParallel(v, s, kind, workers)
				want := Aggregate(v, s, kind)
				if !got.Equal(want) {
					t.Errorf("workers=%d kind=%v: parallel result differs", workers, kind)
				}
			}
		}
	}
}

func TestAggregateParallelOnDataset(t *testing.T) {
	g := dataset.MovieLensScaled(1, 0.02)
	tl := g.Timeline()
	v := ops.Union(g, tl.All(), tl.All())
	s := MustSchema(g, g.MustAttr("gender"), g.MustAttr("rating"))
	got := AggregateParallel(v, s, All, 4)
	want := Aggregate(v, s, All)
	if !got.Equal(want) {
		t.Fatal("parallel ALL aggregation differs on MovieLens slice")
	}
	gotD := AggregateParallel(v, s, Distinct, 4)
	wantD := Aggregate(v, s, Distinct)
	if !gotD.Equal(wantD) {
		t.Fatal("parallel DIST aggregation differs on MovieLens slice")
	}
}

func TestAggregateParallelPanicsOnForeignView(t *testing.T) {
	g1 := core.PaperExample()
	g2 := core.PaperExample()
	s := MustSchema(g1, g1.MustAttr("gender"))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	AggregateParallel(ops.At(g2, 0), s, Distinct, 2)
}

func TestQuickParallelEqualsSerial(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := gtest.RandomGraph(r, gtest.DefaultParams())
		if g.NumAttrs() == 0 {
			return true
		}
		attrs := make([]core.AttrID, g.NumAttrs())
		for i := range attrs {
			attrs[i] = core.AttrID(i)
		}
		s := MustSchema(g, attrs...)
		tl := g.Timeline()
		v := ops.Union(g, gtest.RandomInterval(r, tl), gtest.RandomInterval(r, tl))
		workers := 2 + r.Intn(6)
		for _, kind := range []Kind{Distinct, All} {
			if !AggregateParallel(v, s, kind, workers).Equal(Aggregate(v, s, kind)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
