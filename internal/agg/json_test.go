package agg

import (
	"encoding/json"
	"testing"

	"repro/internal/core"
	"repro/internal/ops"
)

func TestMarshalJSON(t *testing.T) {
	g := core.PaperExample()
	s := MustSchema(g, g.MustAttr("gender"), g.MustAttr("publications"))
	tl := g.Timeline()
	ag := Aggregate(ops.Union(g, tl.Point(0), tl.Point(1)), s, Distinct)

	data, err := json.Marshal(ag)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Attributes []string `json:"attributes"`
		Kind       string   `json:"kind"`
		Nodes      []struct {
			Values []string `json:"values"`
			Weight int64    `json:"weight"`
		} `json:"nodes"`
		Edges []struct {
			From   []string `json:"from"`
			To     []string `json:"to"`
			Weight int64    `json:"weight"`
		} `json:"edges"`
	}
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Kind != "DIST" {
		t.Errorf("kind = %q", decoded.Kind)
	}
	if len(decoded.Attributes) != 2 || decoded.Attributes[0] != "gender" {
		t.Errorf("attributes = %v", decoded.Attributes)
	}
	found := false
	for _, n := range decoded.Nodes {
		if n.Values[0] == "f" && n.Values[1] == "1" {
			found = true
			if n.Weight != 3 {
				t.Errorf("JSON w(f,1) = %d, want 3", n.Weight)
			}
		}
	}
	if !found {
		t.Error("node (f,1) missing from JSON")
	}
	if len(decoded.Edges) != 4 {
		t.Errorf("edges = %d, want 4", len(decoded.Edges))
	}
}
