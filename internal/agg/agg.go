// Package agg implements GraphTempo graph aggregation (Definition 2.6 and
// §4.2 of the paper).
//
// Aggregation groups the nodes of a temporal graph (or of a View produced
// by a temporal operator) by a tuple of attribute values and builds a
// weighted aggregate graph whose nodes are the distinct tuples and whose
// edges connect tuples with at least one underlying interaction. The
// aggregate function is COUNT, in two flavours (§2.2):
//
//   - Distinct (DIST): every (entity, tuple) combination counts once, no
//     matter how many time points it appears at.
//   - All (ALL): every appearance at every time point counts.
//
// Attribute tuples are encoded as mixed-radix integers over the attribute
// dictionaries (one multiplication per attribute instead of string
// concatenation), and aggregation over static-only attribute sets takes a
// fast path that skips the per-time-point loop — the optimization §4.2
// describes for static attributes.
package agg

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/dict"
	"repro/internal/ops"
	"repro/internal/timeline"
)

// Kind selects distinct (DIST) or non-distinct (ALL) counting.
type Kind int

const (
	// Distinct counts each entity once per tuple it exhibits.
	Distinct Kind = iota
	// All counts each per-time-point appearance.
	All
)

// String returns "DIST" or "ALL", the paper's notation.
func (k Kind) String() string {
	if k == Distinct {
		return "DIST"
	}
	return "ALL"
}

// Tuple is a mixed-radix encoding of one attribute-value combination under
// a Schema.
type Tuple int64

// EdgeKey identifies an aggregate edge by its endpoint tuples.
type EdgeKey struct {
	From, To Tuple
}

// Schema fixes the attribute set of an aggregation over one base graph and
// provides tuple encoding/decoding. Create one with NewSchema; a Schema
// may be reused across many Aggregate calls on views of the same graph.
type Schema struct {
	g         *core.Graph
	attrs     []core.AttrID
	strides   []int64
	radices   []int64
	domain    int64
	allStatic bool
	preferMap bool

	// Dense-kernel state (dense.go): pooled flat accumulators, and the
	// lazily built per-node static tuple codes for all-static schemas.
	dense       sync.Pool
	staticOnce  sync.Once
	staticCodes []int32
}

// NewSchema returns a schema aggregating g's nodes on the given attributes,
// in order. At least one attribute is required (Definition 2.6: 1 ≤ n ≤ k).
func NewSchema(g *core.Graph, attrs ...core.AttrID) (*Schema, error) {
	if len(attrs) == 0 {
		return nil, fmt.Errorf("agg: at least one aggregation attribute is required")
	}
	seen := make(map[core.AttrID]bool, len(attrs))
	s := &Schema{
		g:         g,
		attrs:     append([]core.AttrID(nil), attrs...),
		strides:   make([]int64, len(attrs)),
		radices:   make([]int64, len(attrs)),
		allStatic: true,
	}
	stride := int64(1)
	for i, a := range attrs {
		if int(a) < 0 || int(a) >= g.NumAttrs() {
			return nil, fmt.Errorf("agg: attribute id %d out of range", a)
		}
		if seen[a] {
			return nil, fmt.Errorf("agg: duplicate aggregation attribute %q", g.Attr(a).Name)
		}
		seen[a] = true
		radix := int64(g.Dict(a).Len())
		if radix == 0 {
			radix = 1 // empty domain: every tuple is missing anyway
		}
		s.strides[i] = stride
		s.radices[i] = radix
		if stride > (1<<62)/radix {
			return nil, fmt.Errorf("agg: combined attribute domain too large")
		}
		stride *= radix
		if g.Attr(a).Kind == core.TimeVarying {
			s.allStatic = false
		}
	}
	s.domain = stride
	return s, nil
}

// MustSchema is NewSchema but panics on error.
func MustSchema(g *core.Graph, attrs ...core.AttrID) *Schema {
	s, err := NewSchema(g, attrs...)
	if err != nil {
		panic(err)
	}
	return s
}

// ByName builds a schema from attribute names.
func ByName(g *core.Graph, names ...string) (*Schema, error) {
	attrs := make([]core.AttrID, len(names))
	for i, name := range names {
		a, ok := g.AttrByName(name)
		if !ok {
			return nil, fmt.Errorf("agg: no attribute named %q", name)
		}
		attrs[i] = a
	}
	return NewSchema(g, attrs...)
}

// Graph returns the base graph the schema aggregates.
func (s *Schema) Graph() *core.Graph { return s.g }

// Attrs returns the aggregation attribute ids, in schema order.
func (s *Schema) Attrs() []core.AttrID { return append([]core.AttrID(nil), s.attrs...) }

// AllStatic reports whether every aggregation attribute is static, enabling
// the §4.2 fast path.
func (s *Schema) AllStatic() bool { return s.allStatic }

// Domain returns the size of the schema's full cartesian tuple space: the
// product of the attribute domain cardinalities. Every tuple code lies in
// [0, Domain).
func (s *Schema) Domain() int64 { return s.domain }

// TupleAt encodes the attribute tuple of node n at time t. The second
// result is false when any aggregation attribute has no value there (the
// node does not exist at t, or the value is missing); such contributions
// are excluded from aggregation.
func (s *Schema) TupleAt(n core.NodeID, t timeline.Time) (Tuple, bool) {
	var code int64
	for i, a := range s.attrs {
		c := s.g.Value(a, n, t)
		if c == dict.None {
			return -1, false
		}
		code += int64(c) * s.strides[i]
	}
	return Tuple(code), true
}

// StaticTuple encodes the tuple of node n for an all-static schema.
// It panics if the schema has a time-varying attribute.
func (s *Schema) StaticTuple(n core.NodeID) (Tuple, bool) {
	if !s.allStatic {
		panic("agg: StaticTuple on schema with time-varying attributes")
	}
	var code int64
	for i, a := range s.attrs {
		c := s.g.StaticValue(a, n)
		if c == dict.None {
			return -1, false
		}
		code += int64(c) * s.strides[i]
	}
	return Tuple(code), true
}

// Decode returns the attribute values of a tuple, in schema order.
func (s *Schema) Decode(tu Tuple) []string {
	out := make([]string, len(s.attrs))
	rem := int64(tu)
	for i, a := range s.attrs {
		out[i] = s.g.Dict(a).Value(dict.Code(rem % s.radices[i]))
		rem /= s.radices[i]
	}
	return out
}

// Label renders a tuple like the paper's figures, e.g. "f,1".
func (s *Schema) Label(tu Tuple) string {
	return strings.Join(s.Decode(tu), ",")
}

// Encode is the inverse of Decode: it returns the tuple for the given
// values (in schema order), or false when a value is not in an attribute's
// domain.
func (s *Schema) Encode(values ...string) (Tuple, bool) {
	if len(values) != len(s.attrs) {
		return -1, false
	}
	var code int64
	for i, a := range s.attrs {
		c := s.g.Dict(a).Code(values[i])
		if c == dict.None {
			return -1, false
		}
		code += int64(c) * s.strides[i]
	}
	return Tuple(code), true
}

// Graph is a weighted aggregate graph G'(V', E', W_V', W_E', A').
type Graph struct {
	Schema *Schema
	Kind   Kind
	Nodes  map[Tuple]int64
	Edges  map[EdgeKey]int64
}

// NodeWeight returns the weight of the aggregate node for tu (0 if absent).
func (ag *Graph) NodeWeight(tu Tuple) int64 { return ag.Nodes[tu] }

// EdgeWeight returns the weight of the aggregate edge (from, to).
func (ag *Graph) EdgeWeight(from, to Tuple) int64 { return ag.Edges[EdgeKey{from, to}] }

// TotalNodeWeight returns the sum of all aggregate node weights.
func (ag *Graph) TotalNodeWeight() int64 {
	var sum int64
	for _, w := range ag.Nodes {
		sum += w
	}
	return sum
}

// TotalEdgeWeight returns the sum of all aggregate edge weights.
func (ag *Graph) TotalEdgeWeight() int64 {
	var sum int64
	for _, w := range ag.Edges {
		sum += w
	}
	return sum
}

// SortedNodes returns the aggregate node tuples ordered by decoded label,
// for deterministic presentation.
func (ag *Graph) SortedNodes() []Tuple {
	out := make([]Tuple, 0, len(ag.Nodes))
	for tu := range ag.Nodes {
		out = append(out, tu)
	}
	sort.Slice(out, func(i, j int) bool {
		return ag.Schema.Label(out[i]) < ag.Schema.Label(out[j])
	})
	return out
}

// SortedEdges returns the aggregate edge keys ordered by decoded labels.
func (ag *Graph) SortedEdges() []EdgeKey {
	out := make([]EdgeKey, 0, len(ag.Edges))
	for k := range ag.Edges {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		li := ag.Schema.Label(out[i].From) + "→" + ag.Schema.Label(out[i].To)
		lj := ag.Schema.Label(out[j].From) + "→" + ag.Schema.Label(out[j].To)
		return li < lj
	})
	return out
}

// String renders the aggregate graph for debugging and examples.
func (ag *Graph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "aggregate graph (%s) on %d tuples\n", ag.Kind, len(ag.Nodes))
	for _, tu := range ag.SortedNodes() {
		fmt.Fprintf(&b, "  node (%s) w=%d\n", ag.Schema.Label(tu), ag.Nodes[tu])
	}
	for _, k := range ag.SortedEdges() {
		fmt.Fprintf(&b, "  edge (%s)→(%s) w=%d\n", ag.Schema.Label(k.From), ag.Schema.Label(k.To), ag.Edges[k])
	}
	return b.String()
}

// Aggregate computes the aggregate graph of a view under the schema
// (Algorithm 2 and its ALL/static variants). The view must be over the
// same base graph as the schema.
//
// When the schema's tuple domain is small (Domain ≤ DenseDomainLimit, the
// common case for the paper's dictionary-encoded attribute combinations),
// the accumulation runs on pooled flat arrays indexed by dense tuple codes
// instead of hash maps (dense.go); otherwise it falls back to the map
// engine. Both engines produce identical weights — see AggregateMap and
// the cross-check tests in dense_test.go.
func Aggregate(v *ops.View, s *Schema, kind Kind) *Graph {
	if v.Graph() != s.g {
		panic("agg: view and schema built on different graphs")
	}
	countKernel(s)
	ag := &Graph{Schema: s, Kind: kind}
	if s.denseEligible() {
		aggregateDense(v, s, kind, ag, 0, s.g.NumNodes(), 0, s.g.NumEdges())
		return ag
	}
	ag.Nodes = make(map[Tuple]int64)
	ag.Edges = make(map[EdgeKey]int64)
	if s.allStatic {
		aggregateStatic(v, s, kind, ag)
	} else {
		aggregateVarying(v, s, kind, ag)
	}
	return ag
}

// AggregateMap computes the same result as Aggregate but always uses the
// original hash-map accumulators, even when the dense kernel is eligible.
// It is the reference engine the dense kernel is cross-checked against and
// the "seed path" comparator of the fast-path benchmarks; library code
// should call Aggregate.
func AggregateMap(v *ops.View, s *Schema, kind Kind) *Graph {
	if v.Graph() != s.g {
		panic("agg: view and schema built on different graphs")
	}
	ag := &Graph{
		Schema: s,
		Kind:   kind,
		Nodes:  make(map[Tuple]int64),
		Edges:  make(map[EdgeKey]int64),
	}
	if s.allStatic {
		aggregateStatic(v, s, kind, ag)
	} else {
		aggregateVarying(v, s, kind, ag)
	}
	return ag
}

// AggregateGeneral computes the same result as Aggregate but always takes
// the general per-time-point path, even for all-static schemas. It exists
// to measure what the §4.2 static fast path buys (the static-fast-path
// ablation benchmark); library code should call Aggregate.
func AggregateGeneral(v *ops.View, s *Schema, kind Kind) *Graph {
	if v.Graph() != s.g {
		panic("agg: view and schema built on different graphs")
	}
	ag := &Graph{
		Schema: s,
		Kind:   kind,
		Nodes:  make(map[Tuple]int64),
		Edges:  make(map[EdgeKey]int64),
	}
	aggregateVarying(v, s, kind, ag)
	return ag
}

// Filter restricts which (node, time) appearances participate in a
// filtered aggregation; an edge appearance requires both endpoints to
// pass. It mirrors the evolution package's filter (the paper's Fig. 12
// high-activity restriction) for plain aggregation.
type Filter func(n core.NodeID, t timeline.Time) bool

// AggregateFiltered is Aggregate with a per-appearance filter. A nil
// filter is equivalent to Aggregate. Filtering forces the general
// per-time-point path even for all-static schemas, since the predicate
// may depend on time-varying attributes.
func AggregateFiltered(v *ops.View, s *Schema, kind Kind, filter Filter) *Graph {
	if filter == nil {
		return Aggregate(v, s, kind)
	}
	if v.Graph() != s.g {
		panic("agg: view and schema built on different graphs")
	}
	ag := &Graph{
		Schema: s,
		Kind:   kind,
		Nodes:  make(map[Tuple]int64),
		Edges:  make(map[EdgeKey]int64),
	}
	g := s.g
	var seen map[Tuple]bool
	if kind == Distinct {
		seen = make(map[Tuple]bool)
	}
	v.ForEachNode(func(n core.NodeID) {
		if kind == Distinct {
			clear(seen)
		}
		v.NodeTimes(n).ForEach(func(t int) {
			if !filter(n, timeline.Time(t)) {
				return
			}
			tu, ok := s.TupleAt(n, timeline.Time(t))
			if !ok {
				return
			}
			if kind == Distinct {
				if seen[tu] {
					return
				}
				seen[tu] = true
			}
			ag.Nodes[tu]++
		})
	})
	var seenEdges map[EdgeKey]bool
	if kind == Distinct {
		seenEdges = make(map[EdgeKey]bool)
	}
	v.ForEachEdge(func(e core.EdgeID) {
		if kind == Distinct {
			clear(seenEdges)
		}
		ep := g.Edge(e)
		v.EdgeTimes(e).ForEach(func(t int) {
			if !filter(ep.U, timeline.Time(t)) || !filter(ep.V, timeline.Time(t)) {
				return
			}
			fu, ok1 := s.TupleAt(ep.U, timeline.Time(t))
			tu, ok2 := s.TupleAt(ep.V, timeline.Time(t))
			if !ok1 || !ok2 {
				return
			}
			key := EdgeKey{fu, tu}
			if kind == Distinct {
				if seenEdges[key] {
					return
				}
				seenEdges[key] = true
			}
			ag.Edges[key]++
		})
	})
	return ag
}

// aggregateStatic is the §4.2 fast path: each node has exactly one tuple,
// so no unpivoting or per-tuple deduplication is needed. For ALL, the
// appearance count of an entity is the popcount of its restricted
// timestamp.
func aggregateStatic(v *ops.View, s *Schema, kind Kind, ag *Graph) {
	v.ForEachNode(func(n core.NodeID) {
		tu, ok := s.StaticTuple(n)
		if !ok {
			return
		}
		if kind == Distinct {
			ag.Nodes[tu]++
		} else {
			ag.Nodes[tu] += int64(v.NodeTimesCount(n))
		}
	})
	g := s.g
	v.ForEachEdge(func(e core.EdgeID) {
		ep := g.Edge(e)
		fu, ok1 := s.StaticTuple(ep.U)
		tu, ok2 := s.StaticTuple(ep.V)
		if !ok1 || !ok2 {
			return
		}
		key := EdgeKey{fu, tu}
		if kind == Distinct {
			ag.Edges[key]++
		} else {
			ag.Edges[key] += int64(v.EdgeTimesCount(e))
		}
	})
}

// aggregateVarying handles schemas with at least one time-varying
// attribute: tuples are collected per time point of each entity's
// restricted timestamp; DIST deduplicates per (entity, tuple).
func aggregateVarying(v *ops.View, s *Schema, kind Kind, ag *Graph) {
	g := s.g
	var seen map[Tuple]bool
	if kind == Distinct {
		seen = make(map[Tuple]bool)
	}
	v.ForEachNode(func(n core.NodeID) {
		if kind == Distinct {
			clear(seen)
		}
		v.NodeTimes(n).ForEach(func(t int) {
			tu, ok := s.TupleAt(n, timeline.Time(t))
			if !ok {
				return
			}
			if kind == Distinct {
				if seen[tu] {
					return
				}
				seen[tu] = true
			}
			ag.Nodes[tu]++
		})
	})
	var seenEdges map[EdgeKey]bool
	if kind == Distinct {
		seenEdges = make(map[EdgeKey]bool)
	}
	v.ForEachEdge(func(e core.EdgeID) {
		if kind == Distinct {
			clear(seenEdges)
		}
		ep := g.Edge(e)
		v.EdgeTimes(e).ForEach(func(t int) {
			fu, ok1 := s.TupleAt(ep.U, timeline.Time(t))
			tu, ok2 := s.TupleAt(ep.V, timeline.Time(t))
			if !ok1 || !ok2 {
				return
			}
			key := EdgeKey{fu, tu}
			if kind == Distinct {
				if seenEdges[key] {
					return
				}
				seenEdges[key] = true
			}
			ag.Edges[key]++
		})
	})
}

// Rollup derives the aggregate graph on a subset of the schema's
// attributes directly from an already-computed aggregate graph, without
// touching the base graph — COUNT is D-distributive w.r.t. top-down
// aggregations (§4.3): tuples of the finer aggregation are regrouped on
// the surviving attributes and their weights summed.
//
// The derivation is exact for ALL aggregates and for DIST aggregates in
// which each entity exhibits at most one tuple (a single-time-point view,
// or an all-static schema); for other DIST aggregates the regrouped weight
// over-counts entities that exhibit several fine tuples mapping to the
// same coarse tuple, which is why the paper applies roll-up reuse per time
// point (Fig. 11).
func Rollup(ag *Graph, attrs ...core.AttrID) (*Graph, error) {
	sub, err := NewSchema(ag.Schema.g, attrs...)
	if err != nil {
		return nil, err
	}
	// Positions of the subset attributes within the source schema.
	pos := make([]int, len(attrs))
	for i, a := range attrs {
		found := -1
		for j, b := range ag.Schema.attrs {
			if a == b {
				found = j
				break
			}
		}
		if found < 0 {
			return nil, fmt.Errorf("agg: attribute %q is not part of the source aggregation",
				ag.Schema.g.Attr(a).Name)
		}
		pos[i] = found
	}
	// Distinct fine tuples repeat heavily across entries (every edge key
	// carries two), so memoize the projection.
	cache := make(map[Tuple]Tuple, len(ag.Nodes))
	codes := make([]int64, len(ag.Schema.attrs))
	project := func(tu Tuple) Tuple {
		if out, ok := cache[tu]; ok {
			return out
		}
		rem := int64(tu)
		for j := range ag.Schema.attrs {
			codes[j] = rem % ag.Schema.radices[j]
			rem /= ag.Schema.radices[j]
		}
		var out int64
		for i := range pos {
			out += codes[pos[i]] * sub.strides[i]
		}
		cache[tu] = Tuple(out)
		return Tuple(out)
	}
	out := &Graph{
		Schema: sub,
		Kind:   ag.Kind,
		Nodes:  make(map[Tuple]int64, len(ag.Nodes)),
		Edges:  make(map[EdgeKey]int64, len(ag.Edges)),
	}
	for tu, w := range ag.Nodes {
		out.Nodes[project(tu)] += w
	}
	for k, w := range ag.Edges {
		out.Edges[EdgeKey{project(k.From), project(k.To)}] += w
	}
	return out, nil
}

// SameCoding reports whether s and o encode tuples identically: the same
// attribute ids in the same order with the same per-attribute radices.
// Two schemas with the same coding assign every attribute-value combination
// the same Tuple, even when they were built against different Graph
// snapshots of one evolving series — the case incremental catalog advances
// rely on to mix per-point aggregates across generations.
func (s *Schema) SameCoding(o *Schema) bool {
	if s == o {
		return true
	}
	if o == nil || len(s.attrs) != len(o.attrs) {
		return false
	}
	for i := range s.attrs {
		if s.attrs[i] != o.attrs[i] || s.radices[i] != o.radices[i] {
			return false
		}
	}
	return true
}

// Merge adds every weight of other into ag. Both must share the same tuple
// coding (SameCoding) and kind. It is the building block of the
// T-distributive composition of §4.3 (union ALL aggregates of an interval
// are the sums of the per-time-point ALL aggregates). Schemas need not be
// pointer-identical: an incrementally extended store merges aggregates
// produced against successive snapshots of the same evolving graph, whose
// schemas encode identically as long as no dictionary grew.
func (ag *Graph) Merge(other *Graph) {
	if !ag.Schema.SameCoding(other.Schema) || ag.Kind != other.Kind {
		panic("agg: Merge of incompatible aggregate graphs")
	}
	for tu, w := range other.Nodes {
		ag.Nodes[tu] += w
	}
	for k, w := range other.Edges {
		ag.Edges[k] += w
	}
}

// ApproxBytes estimates the resident size of the aggregate graph for
// cache accounting: a fixed header plus the hash-map entries (key, weight
// and bucket overhead). It is deliberately cheap — O(1) — and approximate;
// byte-budgeted caches only need relative sizes to be sane.
func (ag *Graph) ApproxBytes() int64 {
	const (
		header    = 64
		nodeEntry = 48 // Tuple (8) + int64 (8) + bucket overhead
		edgeEntry = 64 // EdgeKey (16) + int64 (8) + bucket overhead
	)
	return header + int64(len(ag.Nodes))*nodeEntry + int64(len(ag.Edges))*edgeEntry
}

// Clone returns a deep copy of ag.
func (ag *Graph) Clone() *Graph {
	out := &Graph{
		Schema: ag.Schema,
		Kind:   ag.Kind,
		Nodes:  make(map[Tuple]int64, len(ag.Nodes)),
		Edges:  make(map[EdgeKey]int64, len(ag.Edges)),
	}
	for tu, w := range ag.Nodes {
		out.Nodes[tu] = w
	}
	for k, w := range ag.Edges {
		out.Edges[k] = w
	}
	return out
}

// Equal reports whether two aggregate graphs have identical weights.
func (ag *Graph) Equal(other *Graph) bool {
	if len(ag.Nodes) != len(other.Nodes) || len(ag.Edges) != len(other.Edges) {
		return false
	}
	for tu, w := range ag.Nodes {
		if other.Nodes[tu] != w {
			return false
		}
	}
	for k, w := range ag.Edges {
		if other.Edges[k] != w {
			return false
		}
	}
	return true
}
