package agg

import (
	"context"
	"runtime"
	"sync"

	"repro/internal/metrics"
	"repro/internal/ops"
)

// KernelSelections counts which engine served each top-level Aggregate /
// AggregateParallel call: the flat-array dense kernel, the static-schema
// map kernel, or the general time-varying map kernel. The serving layer
// registers these under one metric family so the kernel mix of live
// traffic is observable; they are package-level because kernel selection
// happens deep inside the library where no registry is in scope.
var KernelSelections struct {
	Dense   metrics.Counter
	Static  metrics.Counter
	Varying metrics.Counter
}

// countKernel records the engine chosen for one aggregation call.
func countKernel(s *Schema) {
	switch {
	case s.denseEligible():
		KernelSelections.Dense.Inc()
	case s.allStatic:
		KernelSelections.Static.Inc()
	default:
		KernelSelections.Varying.Inc()
	}
}

// ctxChunk is the number of entity ids a shard worker processes between
// cancellation probes. Small enough that an expired deadline stops the
// scan within microseconds, large enough that the atomic load amortizes to
// nothing against per-entity work.
const ctxChunk = 8192

// AggregateParallelCtx is AggregateParallel with cooperative cancellation:
// shard workers check ctx between chunks of ctxChunk entity ids and abandon
// the scan once the deadline expires or the context is canceled, returning
// ctx.Err() instead of a result. A nil error guarantees the same graph
// AggregateParallel would produce.
func AggregateParallelCtx(ctx context.Context, v *ops.View, s *Schema, kind Kind, workers int) (*Graph, error) {
	if v.Graph() != s.g {
		panic("agg: view and schema built on different graphs")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := aggregateParallelInner(ctx, v, s, kind, workers)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// aggregateParallelInner is the shared engine behind AggregateParallel and
// AggregateParallelCtx. With a cancelable ctx the result may be partial —
// callers must discard it when ctx.Err() != nil.
func aggregateParallelInner(ctx context.Context, v *ops.View, s *Schema, kind Kind, workers int) *Graph {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 || v.NumNodes()+v.NumEdges() < parallelMinEntities {
		countKernel(s)
		return aggregateSerialCtx(ctx, v, s, kind)
	}
	countKernel(s)
	g := s.g
	parts := make([]*Graph, workers)
	var wg sync.WaitGroup
	nodeShard := (g.NumNodes() + workers - 1) / workers
	edgeShard := (g.NumEdges() + workers - 1) / workers
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			part := &Graph{Schema: s, Kind: kind}
			parts[w] = part
			nLo, nHi := w*nodeShard, (w+1)*nodeShard
			if nHi > g.NumNodes() {
				nHi = g.NumNodes()
			}
			eLo, eHi := w*edgeShard, (w+1)*edgeShard
			if eHi > g.NumEdges() {
				eHi = g.NumEdges()
			}
			aggregateRangeCtx(ctx, v, s, kind, part, nLo, nHi, eLo, eHi)
		}(w)
	}
	wg.Wait()
	if ctx.Err() != nil {
		return nil
	}
	var nNodes, nEdges int
	for _, part := range parts {
		nNodes += len(part.Nodes)
		nEdges += len(part.Edges)
	}
	out := &Graph{
		Schema: s,
		Kind:   kind,
		Nodes:  make(map[Tuple]int64, nNodes),
		Edges:  make(map[EdgeKey]int64, nEdges),
	}
	for _, part := range parts {
		out.Merge(part)
	}
	return out
}

// aggregateSerialCtx is the single-worker engine with the same chunked
// cancellation probes as the shard workers.
func aggregateSerialCtx(ctx context.Context, v *ops.View, s *Schema, kind Kind) *Graph {
	ag := &Graph{Schema: s, Kind: kind}
	aggregateRangeCtx(ctx, v, s, kind, ag, 0, s.g.NumNodes(), 0, s.g.NumEdges())
	if ctx.Err() != nil {
		return nil
	}
	return ag
}

// aggregateRangeCtx aggregates the entity id ranges into ag, probing ctx
// between chunks. On cancellation the partial accumulation is abandoned
// (ag may be incomplete; callers discard it).
func aggregateRangeCtx(ctx context.Context, v *ops.View, s *Schema, kind Kind, ag *Graph, nLo, nHi, eLo, eHi int) {
	done := ctx.Done()
	canceled := func() bool {
		if done == nil {
			return false
		}
		select {
		case <-done:
			return true
		default:
			return false
		}
	}
	if s.denseEligible() {
		sc := s.getScratch()
		kernel := denseVarying
		if s.allStatic {
			kernel = denseStatic
		}
		for lo := nLo; lo < nHi; lo += ctxChunk {
			if canceled() {
				s.putScratch(sc)
				return
			}
			kernel(v, s, kind, sc, lo, min(lo+ctxChunk, nHi), 0, 0)
		}
		for lo := eLo; lo < eHi; lo += ctxChunk {
			if canceled() {
				s.putScratch(sc)
				return
			}
			kernel(v, s, kind, sc, 0, 0, lo, min(lo+ctxChunk, eHi))
		}
		d := int64(s.domain)
		ag.Nodes = make(map[Tuple]int64, len(sc.nodeTouched))
		for _, c := range sc.nodeTouched {
			ag.Nodes[Tuple(c)] = sc.nodeW[c]
		}
		ag.Edges = make(map[EdgeKey]int64, len(sc.edgeTouched))
		for _, c := range sc.edgeTouched {
			code := int64(c)
			ag.Edges[EdgeKey{Tuple(code / d), Tuple(code % d)}] = sc.edgeW[c]
		}
		s.putScratch(sc)
		return
	}
	if ag.Nodes == nil {
		ag.Nodes = make(map[Tuple]int64)
		ag.Edges = make(map[EdgeKey]int64)
	}
	kernel := aggregateVaryingRange
	if s.allStatic {
		kernel = aggregateStaticRange
	}
	for lo := nLo; lo < nHi; lo += ctxChunk {
		if canceled() {
			return
		}
		kernel(v, s, kind, ag, lo, min(lo+ctxChunk, nHi), 0, 0)
	}
	for lo := eLo; lo < eHi; lo += ctxChunk {
		if canceled() {
			return
		}
		kernel(v, s, kind, ag, 0, 0, lo, min(lo+ctxChunk, eHi))
	}
}
