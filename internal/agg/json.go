package agg

import "encoding/json"

// jsonNode and jsonEdge are the wire form of an aggregate graph: decoded
// attribute values with weights, so downstream tools need no knowledge of
// tuple encoding.
type jsonNode struct {
	Values []string `json:"values"`
	Weight int64    `json:"weight"`
}

type jsonEdge struct {
	From   []string `json:"from"`
	To     []string `json:"to"`
	Weight int64    `json:"weight"`
}

type jsonGraph struct {
	Attributes []string   `json:"attributes"`
	Kind       string     `json:"kind"`
	Nodes      []jsonNode `json:"nodes"`
	Edges      []jsonEdge `json:"edges"`
}

// MarshalJSON renders the aggregate graph with decoded attribute values,
// nodes and edges sorted by label for deterministic output.
func (ag *Graph) MarshalJSON() ([]byte, error) {
	out := jsonGraph{Kind: ag.Kind.String()}
	for _, a := range ag.Schema.attrs {
		out.Attributes = append(out.Attributes, ag.Schema.g.Attr(a).Name)
	}
	for _, tu := range ag.SortedNodes() {
		out.Nodes = append(out.Nodes, jsonNode{Values: ag.Schema.Decode(tu), Weight: ag.Nodes[tu]})
	}
	for _, k := range ag.SortedEdges() {
		out.Edges = append(out.Edges, jsonEdge{
			From:   ag.Schema.Decode(k.From),
			To:     ag.Schema.Decode(k.To),
			Weight: ag.Edges[k],
		})
	}
	return json.Marshal(out)
}
