package agg

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/gtest"
	"repro/internal/ops"
	"repro/internal/timeline"
)

func TestKindAndMeasureStrings(t *testing.T) {
	if Distinct.String() != "DIST" || All.String() != "ALL" {
		t.Error("Kind strings wrong")
	}
	for m, want := range map[Measure]string{Sum: "SUM", Avg: "AVG", Min: "MIN", Max: "MAX"} {
		if m.String() != want {
			t.Errorf("%v.String() = %q", m, m.String())
		}
	}
}

func TestGraphStringRendering(t *testing.T) {
	g := core.PaperExample()
	s := MustSchema(g, g.MustAttr("gender"))
	ag := Aggregate(ops.At(g, 0), s, Distinct)
	out := ag.String()
	for _, want := range []string{"aggregate graph (DIST)", "node (f) w=3", "edge (m)→(f) w=2"} {
		if !strings.Contains(out, want) {
			t.Errorf("String missing %q:\n%s", want, out)
		}
	}
}

func TestSchemaAttrsAndTotals(t *testing.T) {
	g := core.PaperExample()
	s := MustSchema(g, g.MustAttr("gender"), g.MustAttr("publications"))
	attrs := s.Attrs()
	if len(attrs) != 2 || attrs[0] != g.MustAttr("gender") {
		t.Errorf("Attrs = %v", attrs)
	}
	ag := Aggregate(ops.At(g, 0), s, Distinct)
	if ag.TotalEdgeWeight() != 3 {
		t.Errorf("TotalEdgeWeight = %d, want 3", ag.TotalEdgeWeight())
	}
}

func TestQuickAggregateGeneralMatchesAggregate(t *testing.T) {
	// The ablation-only general path must agree with the dispatching
	// Aggregate on every schema and kind.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := gtest.RandomGraph(r, gtest.DefaultParams())
		if g.NumAttrs() == 0 {
			return true
		}
		attrs := make([]core.AttrID, g.NumAttrs())
		for i := range attrs {
			attrs[i] = core.AttrID(i)
		}
		s := MustSchema(g, attrs...)
		tl := g.Timeline()
		v := ops.Union(g, gtest.RandomInterval(r, tl), gtest.RandomInterval(r, tl))
		for _, kind := range []Kind{Distinct, All} {
			if !AggregateGeneral(v, s, kind).Equal(Aggregate(v, s, kind)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAggregateFilteredDirect(t *testing.T) {
	g := core.PaperExample()
	s := MustSchema(g, g.MustAttr("gender"))
	tl := g.Timeline()
	v := ops.Union(g, tl.Point(0), tl.Point(1))
	pubs := g.MustAttr("publications")

	// Keep appearances with publications == 1.
	onlyOnes := func(n core.NodeID, t timeline.Time) bool {
		return g.ValueString(pubs, n, t) == "1"
	}
	ag := AggregateFiltered(v, s, All, onlyOnes)
	f, _ := s.Encode("f")
	m, _ := s.Encode("m")
	// f appearances with pubs=1: u2@t0, u2@t1, u3@t0, u4@t1 → 4.
	if ag.NodeWeight(f) != 4 {
		t.Errorf("ALL w(f | pubs=1) = %d, want 4", ag.NodeWeight(f))
	}
	// m: u1@t1 only.
	if ag.NodeWeight(m) != 1 {
		t.Errorf("ALL w(m | pubs=1) = %d, want 1", ag.NodeWeight(m))
	}
	// Edge appearances need both endpoints to pass: u1→u2@t1 (1,1) ✓,
	// u1→u4@t1 ✓, u2→u4@t1 ✓; at t0 u1 (3 pubs) fails and u2→u4 has
	// u4 at 2 pubs.
	if got := ag.TotalEdgeWeight(); got != 3 {
		t.Errorf("filtered edge total = %d, want 3", got)
	}

	// DIST variant dedups: u2 exhibits f at both t0,t1 → counts once.
	dist := AggregateFiltered(v, s, Distinct, onlyOnes)
	if dist.NodeWeight(f) != 3 {
		t.Errorf("DIST w(f | pubs=1) = %d, want 3", dist.NodeWeight(f))
	}
	// Nil filter delegates to Aggregate.
	if !AggregateFiltered(v, s, Distinct, nil).Equal(Aggregate(v, s, Distinct)) {
		t.Error("nil filter should equal Aggregate")
	}
}

func TestAggregateFilteredPanicsOnForeignView(t *testing.T) {
	g1 := core.PaperExample()
	g2 := core.PaperExample()
	s := MustSchema(g1, g1.MustAttr("gender"))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	AggregateFiltered(ops.At(g2, 0), s, Distinct,
		func(core.NodeID, timeline.Time) bool { return true })
}
