package storage

import (
	"sync/atomic"
	"time"
)

// RecoveryInfo describes what one Engine boot recovered.
type RecoveryInfo struct {
	// SnapshotGeneration is the generation of the snapshot loaded at boot
	// (0 when the directory held none).
	SnapshotGeneration uint64
	// SnapshotPoints is the number of time points the snapshot carried.
	SnapshotPoints int
	// WALRecords is the number of ingest records replayed from WAL
	// segments after the snapshot.
	WALRecords int
	// WALSegments is the number of segments replayed.
	WALSegments int
	// TruncatedBytes is the size of the torn tail discarded from the last
	// segment (0 on a clean shutdown).
	TruncatedBytes int64
	// Elapsed is the wall-clock duration of recovery.
	Elapsed time.Duration
}

// Stats is a point-in-time snapshot of an Engine's counters, exported by
// graphtempod under the graphtempod_storage_* metric family.
type Stats struct {
	// Recovery describes the boot-time recovery (constant after Open).
	Recovery RecoveryInfo

	// Generation is the current snapshot generation (the active WAL
	// segment number).
	Generation uint64
	// WALRecords and WALBytes count records appended since Open.
	WALRecords int64
	WALBytes   int64
	// Fsyncs counts WAL fsync calls (policy-driven and rotation-driven).
	Fsyncs int64
	// CoalescedSyncs counts appends whose durability rode another append's
	// fsync (group commit under FsyncAlways) instead of issuing their own.
	CoalescedSyncs int64
	// Checkpoints counts completed WAL → snapshot compactions;
	// CheckpointErrors counts attempts that failed (the engine keeps
	// serving from the previous generation when one does).
	Checkpoints      int64
	CheckpointErrors int64
	// LastCheckpointMs is the duration of the most recent successful
	// checkpoint in milliseconds.
	LastCheckpointMs float64
}

// counters is the mutable half of Stats, updated atomically on hot paths.
type counters struct {
	walRecords       atomic.Int64
	walBytes         atomic.Int64
	fsyncs           atomic.Int64
	coalescedSyncs   atomic.Int64
	checkpoints      atomic.Int64
	checkpointErrors atomic.Int64
	lastCheckpointUs atomic.Int64
}
