package storage

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/stream"
)

func testBatch(i int) (string, stream.Snapshot) {
	return fmt.Sprintf("t%d", i), stream.Snapshot{
		Nodes: []stream.NodeRecord{
			{Label: "a", Static: map[string]string{"gender": "f"}, Varying: map[string]string{"pubs": fmt.Sprint(i)}},
			{Label: fmt.Sprintf("b%d", i), Static: map[string]string{"gender": "m"}, Varying: map[string]string{"pubs": "1"}},
		},
		Edges: []stream.EdgeRecord{{U: "a", V: fmt.Sprintf("b%d", i)}},
	}
}

func writeTestWAL(t *testing.T, path string, n int) {
	t.Helper()
	w, err := createWAL(path, 0)
	if err != nil {
		t.Fatalf("createWAL: %v", err)
	}
	for i := 0; i < n; i++ {
		label, snap := testBatch(i)
		if _, err := w.append(encodeIngest(label, snap)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := w.sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if err := w.close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

func replayLabels(t *testing.T, path string) (labels []string, goodLen int64, torn bool) {
	t.Helper()
	records, goodLen, torn, err := replayWAL(path, func(payload []byte) error {
		label, snap, err := decodeIngest(payload)
		if err != nil {
			return err
		}
		if len(snap.Nodes) != 2 || len(snap.Edges) != 1 {
			return fmt.Errorf("bad batch shape at %s", label)
		}
		labels = append(labels, label)
		return nil
	})
	if err != nil {
		t.Fatalf("replayWAL: %v", err)
	}
	if records != len(labels) {
		t.Fatalf("replayWAL reported %d records, callback saw %d", records, len(labels))
	}
	return labels, goodLen, torn
}

func TestWALAppendReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal-0.log")
	writeTestWAL(t, path, 5)
	labels, goodLen, torn := replayLabels(t, path)
	if torn {
		t.Fatal("clean segment reported torn")
	}
	if len(labels) != 5 || labels[0] != "t0" || labels[4] != "t4" {
		t.Fatalf("replayed %v", labels)
	}
	fi, _ := os.Stat(path)
	if goodLen != fi.Size() {
		t.Fatalf("goodLen %d ≠ file size %d", goodLen, fi.Size())
	}
}

// TestWALTornTail truncates the segment at every byte offset inside the
// last record: replay must recover exactly the complete records and report
// the same good length each time.
func TestWALTornTail(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.log")
	writeTestWAL(t, full, 3)
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	// Replay the intact file once to learn the record boundaries.
	var bounds []int64
	_, _, _, err = replayWAL(full, func(p []byte) error {
		if len(bounds) == 0 {
			bounds = append(bounds, walHeaderSize)
		}
		bounds = append(bounds, bounds[len(bounds)-1]+8+int64(len(p)))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	lastStart, end := bounds[len(bounds)-2], bounds[len(bounds)-1]
	for cut := lastStart + 1; cut < end; cut++ {
		torn := filepath.Join(dir, "torn.log")
		if err := os.WriteFile(torn, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		labels, goodLen, isTorn := replayLabels(t, torn)
		if !isTorn {
			t.Fatalf("cut at %d: not reported torn", cut)
		}
		if len(labels) != 2 || goodLen != lastStart {
			t.Fatalf("cut at %d: recovered %v, goodLen %d (want 2 records, %d)",
				cut, labels, goodLen, lastStart)
		}
	}
}

func TestWALReopenAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal-0.log")
	writeTestWAL(t, path, 2)
	// Tear the tail, then reopen at the good length and append a new record:
	// the torn bytes must be gone and the new record readable.
	data, _ := os.ReadFile(path)
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	_, goodLen, torn := replayLabels(t, path)
	if !torn {
		t.Fatal("expected torn tail")
	}
	w, err := openWALForAppend(path, goodLen)
	if err != nil {
		t.Fatalf("openWALForAppend: %v", err)
	}
	label, snap := testBatch(9)
	if _, err := w.append(encodeIngest(label, snap)); err != nil {
		t.Fatal(err)
	}
	if err := w.sync(); err != nil {
		t.Fatal(err)
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	labels, _, torn2 := replayLabels(t, path)
	if torn2 || len(labels) != 2 || labels[1] != "t9" {
		t.Fatalf("after reopen-append: labels %v, torn %v", labels, torn2)
	}
}

func TestWALHeaderErrors(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"short", []byte("GTWAL0"), ErrTruncated},
		{"magic", append([]byte("NOTAWAL!"), make([]byte, 10)...), ErrBadMagic},
		{"version", func() []byte {
			b := append([]byte(walMagic), 0xff, 0xff)
			return append(b, make([]byte, 8)...)
		}(), ErrVersion},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := filepath.Join(dir, tc.name)
			if err := os.WriteFile(p, tc.data, 0o644); err != nil {
				t.Fatal(err)
			}
			_, _, _, err := replayWAL(p, func([]byte) error { return nil })
			if !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
		})
	}
}

func TestIngestCodecRejectsTrailingBytes(t *testing.T) {
	label, snap := testBatch(0)
	payload := append(encodeIngest(label, snap), 0x00)
	if _, _, err := decodeIngest(payload); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing byte: got %v, want ErrCorrupt", err)
	}
}
