//go:build !unix

package storage

import (
	"errors"
	"os"
)

// mmapFile is unavailable on this platform; OpenMapped falls back to
// reading the file into one buffer and aliasing that instead.
func mmapFile(*os.File, int64) ([]byte, func([]byte) error, error) {
	return nil, nil, errors.New("storage: mmap unsupported on this platform")
}
