package storage

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/stream"
)

// newSeries returns an empty series with the engine's schema.
func newSeries(attrs []core.AttrSpec) *stream.Series { return stream.New(attrs...) }

// seriesFromSnapshot rebuilds the in-memory series of a stream checkpoint
// by replaying its embedded ingest records — the same encoding the WAL
// carries, in the same transaction order — so dictionary codes and append
// order come out exactly as the original process built them, and recovered
// query responses are byte-identical to pre-crash ones. Retroactive
// records route through AppendAt, reproducing the valid-time insert.
func seriesFromSnapshot(snap *Snapshot, attrs []core.AttrSpec) (*stream.Series, error) {
	if err := matchAttrs(snap.Graph.Attrs(), attrs); err != nil {
		return nil, err
	}
	if len(snap.points) != snap.Graph.Timeline().Len() {
		return nil, fmt.Errorf("%w: snapshot carries %d series records for %d time points (not a stream checkpoint?)",
			ErrCorrupt, len(snap.points), snap.Graph.Timeline().Len())
	}
	s := stream.New(attrs...)
	for _, p := range snap.points {
		if err := replayRecord(s, p.payload); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// replayRecord applies one encoded ingest record (either type) to a series.
func replayRecord(s *stream.Series, payload []byte) error {
	label, before, batch, err := decodeIngestAny(payload)
	if err != nil {
		return err
	}
	if _, err := s.AppendAt(label, batch, before); err != nil {
		return fmt.Errorf("%w: replay of %q: %v", ErrCorrupt, label, err)
	}
	return nil
}

// matchAttrs verifies the on-disk schema equals the configured one: a data
// directory cannot be reopened under a different attribute schema.
func matchAttrs(have, want []core.AttrSpec) error {
	if len(have) != len(want) {
		return fmt.Errorf("storage: data directory schema has %d attributes, configuration has %d",
			len(have), len(want))
	}
	for i := range have {
		if have[i] != want[i] {
			return fmt.Errorf("storage: data directory attribute %d is %q (kind %d), configuration says %q (kind %d)",
				i, have[i].Name, have[i].Kind, want[i].Name, want[i].Kind)
		}
	}
	return nil
}
