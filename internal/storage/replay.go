package storage

import (
	"fmt"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/stream"
)

// ReplayStats describes how a point-in-time reconstruction was performed.
type ReplayStats struct {
	// FromSnapshot is true when the reconstruction started from the
	// on-disk snapshot (covered-txn watermark SnapshotTxn) and replayed
	// only the delta; false means a full replay of the record log.
	FromSnapshot bool
	// SnapshotTxn is the covered-txn watermark of the snapshot used.
	SnapshotTxn int
	// Replayed is the number of records applied on top of the base.
	Replayed int
}

// ReplayTo reconstructs the graph as of transaction txn (1-based,
// inclusive): the state the engine served right after acknowledging its
// txn'th ingest record, whatever has been appended since.
//
// When the newest snapshot's covered-txn watermark lies at or below txn
// and the delta contains no retroactive record, the reconstruction is
// snapshot + partial replay of raw[snapTxn:txn]; otherwise (watermark
// ahead of txn, a retroactive delta record, or the snapshot file gone to
// a concurrent checkpoint's GC) it falls back to a full replay of the
// first txn records. Both paths produce byte-identical graphs — the
// equivalence the storage oracle tests pin down.
func (e *Engine) ReplayTo(txn int) (*core.Graph, ReplayStats, error) {
	e.mu.Lock()
	n := len(e.raw)
	if txn < 1 || txn > n {
		e.mu.Unlock()
		return nil, ReplayStats{}, fmt.Errorf("storage: txn %d out of range [1,%d]", txn, n)
	}
	raw := e.raw[:txn:txn] // record payloads are immutable and raw is append-only
	snapGen, snapTxn := e.snapGen, e.snapTxn
	e.mu.Unlock()

	if snapTxn > 0 && snapTxn <= txn {
		resumable := true
		for _, p := range raw[snapTxn:] {
			if len(p) > 0 && p[0] == recIngestAt {
				resumable = false
				break
			}
		}
		if resumable {
			if g, st, err := e.resumeFromSnapshot(snapGen, snapTxn, raw); err == nil {
				return g, st, nil
			} else {
				e.log.Warn("snapshot resume failed, replaying full log", "txn", txn, "err", err)
			}
		}
	}

	scratch := stream.New(e.attrs...)
	for _, p := range raw {
		if err := replayRecord(scratch, p); err != nil {
			return nil, ReplayStats{}, err
		}
	}
	g, err := scratch.Graph()
	if err != nil {
		return nil, ReplayStats{}, err
	}
	return g, ReplayStats{Replayed: txn}, nil
}

// resumeFromSnapshot loads the generation-gen snapshot and replays the
// delta records raw[snapTxn:] on top of it.
func (e *Engine) resumeFromSnapshot(gen uint64, snapTxn int, raw [][]byte) (*core.Graph, ReplayStats, error) {
	snap, err := LoadFile(filepath.Join(e.dir, snapName(gen)))
	if err != nil {
		return nil, ReplayStats{}, err
	}
	if got := snap.CoveredTxn(); got != snapTxn {
		return nil, ReplayStats{}, fmt.Errorf("%w: snapshot covers txn %d, engine watermark says %d", ErrCorrupt, got, snapTxn)
	}
	r := stream.NewResumer(snap.Graph)
	for _, p := range raw[snapTxn:] {
		label, before, batch, derr := decodeIngestAny(p)
		if derr != nil {
			return nil, ReplayStats{}, derr
		}
		if before != "" {
			return nil, ReplayStats{}, fmt.Errorf("%w: retroactive record in resume delta", ErrCorrupt)
		}
		r.Append(label, batch)
	}
	return r.Graph(), ReplayStats{
		FromSnapshot: true,
		SnapshotTxn:  snapTxn,
		Replayed:     len(raw) - snapTxn,
	}, nil
}
