package storage

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/materialize"
	"repro/internal/ops"
	"repro/internal/timeline"
)

// runHeavyGraph builds a graph with a timeline long enough for the
// density heuristic to elect compression (≥ 4 words) and contiguous
// entity lifetimes so it actually fires.
func runHeavyGraph(t *testing.T, seed int64) *core.Graph {
	t.Helper()
	const T = 320
	labels := make([]string, T)
	for i := range labels {
		labels[i] = fmt.Sprintf("w%03d", i)
	}
	tl := timeline.MustNew(labels...)
	b := core.NewBuilder(tl,
		core.AttrSpec{Name: "grp", Kind: core.Static},
		core.AttrSpec{Name: "act", Kind: core.TimeVarying})
	rng := rand.New(rand.NewSource(seed))
	const nNodes = 60
	lifeLo := make([]int, nNodes)
	lifeHi := make([]int, nNodes)
	for n := 0; n < nNodes; n++ {
		id := b.AddNode(fmt.Sprintf("n%d", n))
		lo := rng.Intn(T - 1)
		hi := lo + 1 + rng.Intn(T-lo)
		lifeLo[n], lifeHi[n] = lo, hi
		for tt := lo; tt < hi; tt++ {
			b.SetNodeTime(id, timeline.Time(tt))
			if rng.Intn(4) == 0 {
				b.SetVarying(1, id, timeline.Time(tt), fmt.Sprintf("a%d", rng.Intn(3)))
			}
		}
		if rng.Intn(10) != 0 {
			b.SetStatic(0, id, fmt.Sprintf("g%d", rng.Intn(4)))
		}
	}
	for k := 0; k < 3*nNodes; k++ {
		u, v := rng.Intn(nNodes), rng.Intn(nNodes)
		lo, hi := max(lifeLo[u], lifeLo[v]), min(lifeHi[u], lifeHi[v])
		if lo >= hi {
			continue
		}
		e := b.AddEdge(core.NodeID(u), core.NodeID(v))
		for tt := lo; tt < hi; tt++ {
			b.SetEdgeTime(e, timeline.Time(tt))
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestOpenMappedEquivalence: a mapped snapshot must expose exactly the
// graph (and stores) the decode path reconstructs, and adopt the persisted
// run-length choices instead of re-scanning.
func TestOpenMappedEquivalence(t *testing.T) {
	g := runHeavyGraph(t, 17)
	st := materialize.NewStore(g, agg.MustSchema(g, 0))
	path := filepath.Join(t.TempDir(), "g.gts")
	if err := SaveFile(path, g, st); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}

	m, err := OpenMapped(path)
	if err != nil {
		t.Fatalf("OpenMapped: %v", err)
	}
	defer m.Close()
	if m.Source != "mmap" && m.Source != "heap" {
		t.Fatalf("v2 OpenMapped used source %q", m.Source)
	}
	graphsEqual(t, g, m.Graph)
	if len(m.Stores) != 1 {
		t.Fatalf("mapped snapshot has %d stores, want 1", len(m.Stores))
	}

	// The persisted compression choices are adopted: stats are available
	// and match a fresh scan over the original graph.
	want := g.TauStats()
	if want.Compressed == 0 {
		t.Fatalf("fixture graph compressed nothing (stats %+v) — heuristic regressed?", want)
	}
	got := m.Graph.TauStats()
	if got.Compressed != want.Compressed || got.Runs != want.Runs {
		t.Fatalf("mapped tau stats %+v, want %+v", got, want)
	}

	// Lookups that need the lazy indexes work on mapped graphs.
	lbl := g.NodeLabel(core.NodeID(3))
	if id, ok := m.Graph.NodeByLabel(lbl); !ok || id != core.NodeID(3) {
		t.Fatalf("NodeByLabel(%q) = %v,%v on mapped graph", lbl, id, ok)
	}
}

// TestOpenMappedAgreesWithLoad compares whole aggregation results between
// the two read paths — the end-to-end identity the CI job also checks
// through the HTTP API.
func TestOpenMappedAgreesWithLoad(t *testing.T) {
	g := dataset.DBLPScaled(13, 0.01)
	path := filepath.Join(t.TempDir(), "g.gts")
	if err := SaveFile(path, g); err != nil {
		t.Fatal(err)
	}
	snap, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	m, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	graphsEqual(t, snap.Graph, m.Graph)
	sa := agg.MustSchema(snap.Graph, snap.Graph.MustAttr("gender"))
	sb := agg.MustSchema(m.Graph, m.Graph.MustAttr("gender"))
	for tt := 0; tt < snap.Graph.Timeline().Len(); tt++ {
		at := timeline.Time(tt)
		aga := agg.Aggregate(ops.At(snap.Graph, at), sa, agg.All)
		agb := agg.Aggregate(ops.At(m.Graph, at), sb, agg.All)
		if len(aga.Nodes) != len(agb.Nodes) || len(aga.Edges) != len(agb.Edges) {
			t.Fatalf("t%d: aggregate sizes diverge between decode and mmap", tt)
		}
		for tu, w := range aga.Nodes {
			gtu, ok := sb.Encode(sa.Decode(tu)...)
			if !ok || agb.Nodes[gtu] != w {
				t.Fatalf("t%d: tuple %v weight diverges", tt, sa.Decode(tu))
			}
		}
	}
}

// TestOpenMappedV1FallsBackToDecode: v1 files cannot be aliased; the
// mapped entry point must still serve them via the decode path.
func TestOpenMappedV1FallsBackToDecode(t *testing.T) {
	g := dataset.DBLPScaled(21, 0.004)
	var buf bytes.Buffer
	if err := writeSnapshotV1(&buf, g, nil, nil, 0); err != nil {
		t.Fatal(err)
	}
	m, err := OpenMapped(writeTemp(t, buf.Bytes()))
	if err != nil {
		t.Fatalf("OpenMapped(v1): %v", err)
	}
	defer m.Close()
	if m.Source != "decode" {
		t.Fatalf("v1 OpenMapped source %q, want decode", m.Source)
	}
	graphsEqual(t, g, m.Graph)
}

// TestOpenMappedNeverPanics drives the mapped reader through truncations
// at every boundary and byte corruptions across the framed region: every
// outcome must be a clean error or a successful open, never a panic.
// (Blob payload corruption is undetectable by design on the mapped path —
// the decode path's CRCs cover it — but must still not panic.)
func TestOpenMappedNeverPanics(t *testing.T) {
	g := runHeavyGraph(t, 5)
	var buf bytes.Buffer
	if err := Save(&buf, g); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	for cut := 0; cut < len(data); cut += 97 {
		m, err := OpenMapped(writeTemp(t, data[:cut]))
		if err == nil {
			m.Close()
			t.Fatalf("truncation to %d bytes loaded successfully", cut)
		}
	}
	for off := 0; off < len(data); off += 53 {
		mut := append([]byte(nil), data...)
		mut[off] ^= 0xff
		if m, err := OpenMapped(writeTemp(t, mut)); err == nil {
			m.Close()
		}
	}
}

// TestLoadV2CorruptionDetected: unlike the mapped path, the decode path
// checksums every blob, so any byte flip anywhere in the file must either
// fail or (for padding bytes) leave the content identical.
func TestLoadV2CorruptionDetected(t *testing.T) {
	g := runHeavyGraph(t, 7)
	var buf bytes.Buffer
	if err := Save(&buf, g); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for off := 0; off < len(data); off += 31 {
		mut := append([]byte(nil), data...)
		mut[off] ^= 0x40
		snap, err := Load(bytes.NewReader(mut))
		if err == nil {
			graphsEqual(t, g, snap.Graph) // padding flip: content must be intact
		}
	}
}
