package storage

import (
	"fmt"
	"io"

	"repro/internal/stream"
)

// This file is the storage half of WAL replication: it exports the ingest
// record codec and the length-prefixed framing so `internal/server` can
// stream a shard's history over HTTP (`/v1/wal/stream`) and a replica (or
// the router's mirror) can apply it, plus the engine-side tail API that
// serves those records without touching the segment files on every poll.
//
// The unit of replication is the ingest record: one encoded time point,
// exactly the payload the WAL frames on disk and checkpoints embed in
// snapshots. A shard's record log is therefore identified by a single
// monotone sequence number — the number of time points ever appended
// (series.Len()) — which survives restarts, unlike Engine.seq which counts
// records since Open.

// FormatVersion is the on-disk snapshot/WAL format version, exported for
// the serving tier's /v1/status report.
const FormatVersion = formatVersion

// EncodeIngestRecord serializes one ingest batch into the WAL record
// payload format (the replication wire format). The first byte is the
// record type tag; DecodeIngestRecord validates it.
func EncodeIngestRecord(label string, snap stream.Snapshot) []byte {
	return encodeIngest(label, snap)
}

// DecodeIngestRecord parses a WAL record payload back into the time-point
// label and ingest batch it carries. It rejects retroactive records; use
// DecodeAnyIngestRecord on streams that may carry them.
func DecodeIngestRecord(payload []byte) (string, stream.Snapshot, error) {
	return decodeIngest(payload)
}

// EncodeIngestAtRecord serializes a retroactive ingest batch: a time point
// inserted into valid time immediately before the existing point `before`.
func EncodeIngestAtRecord(label, before string, snap stream.Snapshot) []byte {
	return encodeIngestAt(label, before, snap)
}

// DecodeAnyIngestRecord parses either ingest record type. For a tail append
// `before` is ""; for a retroactive record it names the valid-time point the
// batch was inserted in front of.
func DecodeAnyIngestRecord(payload []byte) (label, before string, snap stream.Snapshot, err error) {
	return decodeIngestAny(payload)
}

// WriteFramedRecord frames one payload as [len u32 LE][crc32c u32 LE][payload]
// — the same framing WAL segments and snapshot sections use — and writes it
// to w. The replication stream is a plain sequence of such frames.
func WriteFramedRecord(w io.Writer, payload []byte) error {
	return writeRecord(w, payload)
}

// ReadFramedRecord reads and checksum-verifies one framed record from r.
// io.EOF is returned cleanly at a frame boundary; a partial frame surfaces
// as ErrTruncated or ErrChecksum.
func ReadFramedRecord(r io.Reader) ([]byte, error) {
	return readRecord(r)
}

// TailRecords returns the raw ingest record payloads with global sequence
// number >= from, i.e. the records for time points from..Len-1. The engine
// retains every record in memory (they are compact varint encodings, a
// small fraction of the decoded in-memory graph) precisely so replication
// polls never contend with segment files or checkpoints. The returned
// slices are shared and must not be modified.
func (e *Engine) TailRecords(from int) ([][]byte, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if from < 0 || from > len(e.raw) {
		return nil, fmt.Errorf("storage: tail from %d out of range [0,%d]", from, len(e.raw))
	}
	if from == len(e.raw) {
		return nil, nil
	}
	out := make([][]byte, len(e.raw)-from)
	copy(out, e.raw[from:])
	return out, nil
}

// RecordCount returns the total number of ingest records (time points) the
// engine holds — the exclusive upper bound for TailRecords.
func (e *Engine) RecordCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.raw)
}
