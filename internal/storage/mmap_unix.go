//go:build unix

package storage

import (
	"fmt"
	"os"
	"syscall"
)

// mmapFile maps size bytes of f read-only and shared. The returned release
// function unmaps.
func mmapFile(f *os.File, size int64) ([]byte, func([]byte) error, error) {
	if size <= 0 || size > int64(int(^uint(0)>>1)) {
		return nil, nil, fmt.Errorf("storage: unmappable file size %d", size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, syscall.Munmap, nil
}
