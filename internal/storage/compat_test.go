package storage

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/agg"
	"repro/internal/dataset"
	"repro/internal/materialize"
)

// TestV1SnapshotStillLoads writes the legacy framed layout with the
// retained v1 writer and loads it through the version-dispatching reader:
// files produced by older builds must keep working byte-for-byte.
func TestV1SnapshotStillLoads(t *testing.T) {
	g := dataset.DBLPScaled(9, 0.01)
	st := materialize.NewStore(g, agg.MustSchema(g, g.MustAttr("gender")))
	var buf bytes.Buffer
	if err := writeSnapshotV1(&buf, g, []*materialize.Store{st}, nil, 0); err != nil {
		t.Fatalf("v1 write: %v", err)
	}
	if v := binary.LittleEndian.Uint16(buf.Bytes()[8:10]); v != formatVersionV1 {
		t.Fatalf("v1 writer stamped version %d", v)
	}
	snap, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Load(v1): %v", err)
	}
	graphsEqual(t, g, snap.Graph)
	if len(snap.Stores) != 1 {
		t.Fatalf("v1 load dropped stores: got %d", len(snap.Stores))
	}
}

// TestUnknownVersionRejected covers the other side of the dispatch: a
// future version must fail with ErrVersion, not be misparsed.
func TestUnknownVersionRejected(t *testing.T) {
	g := dataset.DBLPScaled(9, 0.004)
	var buf bytes.Buffer
	if err := Save(&buf, g); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	binary.LittleEndian.PutUint16(data[8:10], 3)
	if _, err := Load(bytes.NewReader(data)); !errors.Is(err, ErrVersion) {
		t.Fatalf("version 3 load: %v, want ErrVersion", err)
	}
	if _, err := OpenMapped(writeTemp(t, data)); !errors.Is(err, ErrVersion) {
		t.Fatalf("version 3 OpenMapped: %v, want ErrVersion", err)
	}
}

func writeTemp(t *testing.T, data []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "snap.gts")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestEngineRecheckpointsV1ToV2 boots an engine from a directory whose
// snapshot is still in the v1 layout — as left behind by an older build —
// and verifies that recovery reads it transparently and the next
// checkpoint rewrites the generation in the current format.
func TestEngineRecheckpointsV1ToV2(t *testing.T) {
	dir := t.TempDir()
	e := openTestEngine(t, dir, Options{CheckpointRecords: -1})
	appendN(t, e, 0, 5)
	if err := e.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	gen := e.Stats().Generation
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	// Downgrade the snapshot on disk to v1, keeping its content.
	path := filepath.Join(dir, snapName(gen))
	snap, err := LoadFile(path)
	if err != nil {
		t.Fatalf("load checkpoint: %v", err)
	}
	var buf bytes.Buffer
	if err := writeSnapshotV1(&buf, snap.Graph, nil, snap.points, 0); err != nil {
		t.Fatalf("v1 rewrite: %v", err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	e2 := openTestEngine(t, dir, Options{CheckpointRecords: -1})
	defer e2.Close()
	if e2.Series().Len() != 5 {
		t.Fatalf("recovered %d points from v1 snapshot, want 5", e2.Series().Len())
	}
	appendN(t, e2, 5, 7)
	if err := e2.Checkpoint(); err != nil {
		t.Fatalf("re-checkpoint: %v", err)
	}
	newPath := filepath.Join(dir, snapName(e2.Stats().Generation))
	hdr, err := os.ReadFile(newPath)
	if err != nil {
		t.Fatal(err)
	}
	if v := binary.LittleEndian.Uint16(hdr[8:10]); v != formatVersion {
		t.Fatalf("re-checkpoint wrote version %d, want %d", v, formatVersion)
	}
	// And the upgraded generation still recovers.
	e3 := openTestEngine(t, dir, Options{})
	defer e3.Close()
	if e3.Series().Len() != 7 {
		t.Fatalf("recovered %d points after upgrade, want 7", e3.Series().Len())
	}
}
