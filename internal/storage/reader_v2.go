package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"repro/internal/bitset"
	"repro/internal/core"
)

// parsedV2 is a structurally validated view of one version-2 snapshot:
// decoded meta sections plus sub-slices of the input buffer for the blob
// regions. Blob slices alias the caller's buffer — for the mapped path
// that buffer is the file mapping itself and nothing is copied.
type parsedV2 struct {
	labels []string
	attrs  []core.AttrSpec
	dicts  [][]string // value by code, per attribute
	nodes  []string

	nodeRuns []idxRuns
	edgeRuns []idxRuns

	storeSpecs []storeSpec
	points     []seriesPoint
	coveredTxn int

	wordsPerTau int
	nEdges      int
	nodeTauB    []byte   // nNodes × wordsPerTau LE uint64 words
	edgeTauB    []byte   // nEdges × wordsPerTau LE uint64 words
	edgesB      []byte   // nEdges × (int32 u, int32 v) LE
	staticB     [][]byte // per static attr, in attr order: nNodes int32 codes
	varyingB    [][]byte // per varying attr, in attr order: nNodes×T int32 codes
}

// parseV2 walks a complete version-2 snapshot held in data (header
// included). Framed meta records are checksum-verified as always; blob
// regions are bounds- and alignment-checked against the directory, and
// additionally CRC-verified when verifyBlobs is set (the decode path —
// the mapped path skips the checksums to avoid paging the whole file in).
func parseV2(data []byte, verifyBlobs bool) (*parsedV2, error) {
	p := &parsedV2{}
	ld := &snapLoader{} // reused for its store-spec decoding
	off := 10
	seen := make(map[byte]bool)
	var dir []blobEntry
	var fileSize uint64
	for {
		payload, n, err := readRecordBytes(data, off)
		if err != nil {
			return nil, err
		}
		off = n
		if len(payload) == 0 {
			return nil, fmt.Errorf("%w: empty section record", ErrCorrupt)
		}
		id := payload[0]
		if id == secEnd {
			break
		}
		if seen[id] {
			return nil, fmt.Errorf("%w: duplicate section %d", ErrCorrupt, id)
		}
		seen[id] = true
		d := &dec{b: payload[1:]}
		switch id {
		case secTimeline:
			p.labels = d.strs()
			ld.labels = p.labels
		case secSchema:
			na := d.count(2)
			for i := 0; i < na && d.err == nil; i++ {
				name := d.str()
				kind := d.byteVal()
				if kind > byte(core.TimeVarying) {
					d.fail("bad attribute kind %d", kind)
				}
				p.attrs = append(p.attrs, core.AttrSpec{Name: name, Kind: core.AttrKind(kind)})
				p.dicts = append(p.dicts, d.strs())
			}
			ld.attrs = p.attrs
		case secNodes:
			p.nodes = d.strs()
		case secTauRuns:
			p.nodeRuns = readRunsList(d, len(p.nodes), len(p.labels))
			// Edge count is not known yet (it comes from the blob
			// directory); validated against it below.
			p.edgeRuns = readRunsList(d, 1<<31-1, len(p.labels))
		case secStores:
			ns := d.count(1)
			for i := 0; i < ns && d.err == nil; i++ {
				p.storeSpecs = append(p.storeSpecs, ld.readStore(d))
			}
		case secSeries:
			ns := d.count(1)
			for i := 0; i < ns && d.err == nil; i++ {
				m := d.count(1)
				if d.err == nil && m > d.remaining() {
					d.fail("series record length %d exceeds remaining %d", m, d.remaining())
				}
				if d.err == nil {
					p.points = append(p.points, seriesPoint{payload: append([]byte(nil), d.b[d.off:d.off+m]...)})
					d.off += m
				}
			}
		case secTxnMeta:
			p.coveredTxn = int(d.uvarint())
		case secBlobDir:
			cnt := int(d.u32())
			fileSize = d.u64()
			if d.err == nil && cnt*blobDirEntryLen != d.remaining() {
				d.fail("blob directory count %d does not match payload", cnt)
			}
			for i := 0; i < cnt && d.err == nil; i++ {
				dir = append(dir, blobEntry{
					kind: d.u32(), param: d.u32(),
					off: d.u64(), length: d.u64(), crc: d.u32(),
				})
			}
		default:
			return nil, fmt.Errorf("%w: unknown section %d", ErrCorrupt, id)
		}
		if d.err != nil {
			return nil, fmt.Errorf("section %d: %w", id, d.err)
		}
		if d.remaining() != 0 {
			return nil, fmt.Errorf("%w: section %d has %d trailing bytes", ErrCorrupt, id, d.remaining())
		}
	}
	for _, id := range []byte{secTimeline, secSchema, secNodes, secBlobDir} {
		if !seen[id] {
			return nil, fmt.Errorf("%w: missing section %d", ErrCorrupt, id)
		}
	}
	if fileSize != uint64(len(data)) {
		return nil, fmt.Errorf("%w: directory declares %d bytes, file has %d", ErrCorrupt, fileSize, len(data))
	}

	// Validate and slice the blob regions.
	blob := func(be blobEntry) ([]byte, error) {
		if be.off%8 != 0 || be.off < uint64(off) || be.off+be.length > uint64(len(data)) ||
			be.off+be.length < be.off {
			return nil, fmt.Errorf("%w: blob kind %d region [%d,+%d) out of bounds", ErrCorrupt, be.kind, be.off, be.length)
		}
		b := data[be.off : be.off+be.length]
		if verifyBlobs && crc32.Checksum(b, castagnoli) != be.crc {
			return nil, fmt.Errorf("%w: blob kind %d param %d", ErrChecksum, be.kind, be.param)
		}
		return b, nil
	}
	T := len(p.labels)
	nNodes := len(p.nodes)
	wpt := (T + 63) / 64
	p.wordsPerTau = wpt
	p.nEdges = -1
	var staticParams, varyingParams []uint32
	for _, be := range dir {
		b, err := blob(be)
		if err != nil {
			return nil, err
		}
		switch be.kind {
		case blobNodeTau:
			if p.nodeTauB != nil || int(be.param) != wpt || len(b) != nNodes*wpt*8 {
				return nil, fmt.Errorf("%w: node tau blob shape", ErrCorrupt)
			}
			p.nodeTauB = b
		case blobEdgeTau:
			if p.edgeTauB != nil || int(be.param) != wpt {
				return nil, fmt.Errorf("%w: edge tau blob shape", ErrCorrupt)
			}
			p.edgeTauB = b
		case blobEdges:
			if p.edgesB != nil || len(b)%8 != 0 {
				return nil, fmt.Errorf("%w: edges blob shape", ErrCorrupt)
			}
			p.edgesB = b
			p.nEdges = len(b) / 8
		case blobStatic:
			p.staticB = append(p.staticB, b)
			staticParams = append(staticParams, be.param)
			if len(b) != nNodes*4 {
				return nil, fmt.Errorf("%w: static blob for attr %d has %d bytes", ErrCorrupt, be.param, len(b))
			}
		case blobVarying:
			p.varyingB = append(p.varyingB, b)
			varyingParams = append(varyingParams, be.param)
			if len(b) != nNodes*T*4 {
				return nil, fmt.Errorf("%w: varying blob for attr %d has %d bytes", ErrCorrupt, be.param, len(b))
			}
		default:
			return nil, fmt.Errorf("%w: unknown blob kind %d", ErrCorrupt, be.kind)
		}
	}
	if p.nodeTauB == nil || p.edgeTauB == nil || p.edgesB == nil {
		return nil, fmt.Errorf("%w: missing mandatory blob", ErrCorrupt)
	}
	if wpt > 0 && len(p.edgeTauB) != p.nEdges*wpt*8 {
		return nil, fmt.Errorf("%w: edge tau blob does not cover %d edges", ErrCorrupt, p.nEdges)
	}
	// Attribute column blobs must appear once per attribute of the matching
	// kind, in attribute order — the order the assembly paths consume.
	si, vi := 0, 0
	for ai, a := range p.attrs {
		switch a.Kind {
		case core.Static:
			if si >= len(staticParams) || staticParams[si] != uint32(ai) {
				return nil, fmt.Errorf("%w: missing static blob for attr %d", ErrCorrupt, ai)
			}
			si++
		case core.TimeVarying:
			if vi >= len(varyingParams) || varyingParams[vi] != uint32(ai) {
				return nil, fmt.Errorf("%w: missing varying blob for attr %d", ErrCorrupt, ai)
			}
			vi++
		}
	}
	if si != len(staticParams) || vi != len(varyingParams) {
		return nil, fmt.Errorf("%w: stray attribute column blob", ErrCorrupt)
	}
	for _, ir := range p.edgeRuns {
		if ir.idx >= p.nEdges {
			return nil, fmt.Errorf("%w: compressed tau for edge %d beyond %d edges", ErrCorrupt, ir.idx, p.nEdges)
		}
	}
	return p, nil
}

// readRecordBytes reads one framed record in place, returning the payload
// (aliasing data) and the offset past the record.
func readRecordBytes(data []byte, off int) ([]byte, int, error) {
	if off+8 > len(data) {
		return nil, 0, fmt.Errorf("%w: partial record header", ErrTruncated)
	}
	n := binary.LittleEndian.Uint32(data[off : off+4])
	if n > maxRecordBytes {
		return nil, 0, fmt.Errorf("%w: record length %d exceeds limit", ErrCorrupt, n)
	}
	if off+8+int(n) > len(data) {
		return nil, 0, fmt.Errorf("%w: record payload short (want %d bytes)", ErrTruncated, n)
	}
	payload := data[off+8 : off+8+int(n)]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(data[off+4:off+8]) {
		return nil, 0, ErrChecksum
	}
	return payload, off + 8 + int(n), nil
}

// readRunsList decodes one (count, index, encoding)* list from secTauRuns.
// Indices must be strictly ascending and below limit; every decoded vector
// must span exactly T bits.
func readRunsList(d *dec, limit, T int) []idxRuns {
	n := d.count(2)
	out := make([]idxRuns, 0, n)
	prev := -1
	for i := 0; i < n && d.err == nil; i++ {
		idx := d.uvarint()
		if d.err != nil {
			break
		}
		if int(idx) <= prev || int(idx) >= limit {
			d.fail("run list index %d out of order or beyond %d", idx, limit)
			break
		}
		prev = int(idx)
		r, used, err := bitset.DecodeRuns(d.b[d.off:])
		if err != nil {
			d.fail("run encoding for entity %d: %v", idx, err)
			break
		}
		if r.Len() != T {
			d.fail("run vector for entity %d spans %d bits, want %d", idx, r.Len(), T)
			break
		}
		d.off += used
		out = append(out, idxRuns{idx: int(idx), r: r})
	}
	return out
}

// loadV2 is the portable decode path: the parsed columns are copied into
// the v1 loader's representation and assembled through the core builder,
// whose semantic validation (duplicate labels, edges outside endpoint
// lifetimes, in-domain codes) backstops any corruption the structural
// checks missed.
func loadV2(data []byte) (*Snapshot, error) {
	p, err := parseV2(data, true)
	if err != nil {
		return nil, err
	}
	ld := &snapLoader{
		labels:     p.labels,
		attrs:      p.attrs,
		dicts:      p.dicts,
		nodes:      p.nodes,
		storeSpecs: p.storeSpecs,
		points:     p.points,
		coveredTxn: p.coveredTxn,
		seen:       map[byte]bool{},
	}
	for _, id := range []byte{secTimeline, secSchema, secNodes, secNodeTau, secEdges, secEdgeTau, secStatic, secVarying} {
		ld.seen[id] = true
	}
	wpt := p.wordsPerTau
	nNodes := len(p.nodes)
	ld.nodeTaus = decodeTauWords(p.nodeTauB, nNodes, wpt)
	ld.edgeTaus = decodeTauWords(p.edgeTauB, p.nEdges, wpt)
	for i := 0; i < p.nEdges; i++ {
		u := binary.LittleEndian.Uint32(p.edgesB[i*8:])
		v := binary.LittleEndian.Uint32(p.edgesB[i*8+4:])
		if uint64(u) >= uint64(nNodes) || uint64(v) >= uint64(nNodes) {
			return nil, fmt.Errorf("%w: edge (%d,%d) references node beyond %d", ErrCorrupt, u, v, nNodes)
		}
		ld.edges = append(ld.edges, [2]uint64{uint64(u), uint64(v)})
	}
	si, vi := 0, 0
	for ai, a := range p.attrs {
		domain := len(p.dicts[ai])
		switch a.Kind {
		case core.Static:
			col, err := decodeCodeColumn(p.staticB[si], domain, ai)
			if err != nil {
				return nil, err
			}
			ld.static = append(ld.static, col)
			si++
		case core.TimeVarying:
			col, err := decodeCodeColumn(p.varyingB[vi], domain, ai)
			if err != nil {
				return nil, err
			}
			ld.varying = append(ld.varying, col)
			vi++
		}
	}
	// The persisted run-length choices are not adopted here: the builder
	// path re-derives them lazily, cross-checking writer and heuristic.
	return ld.finish()
}

func decodeTauWords(b []byte, n, w int) [][]uint64 {
	out := make([][]uint64, n)
	for i := range out {
		words := make([]uint64, w)
		base := i * w * 8
		for j := range words {
			words[j] = binary.LittleEndian.Uint64(b[base+j*8:])
		}
		out[i] = words
	}
	return out
}

// decodeCodeColumn converts an int32 code blob (-1 = missing) to the
// loader's code+1 representation, validating domain membership.
func decodeCodeColumn(b []byte, domain, attr int) ([]uint64, error) {
	col := make([]uint64, len(b)/4)
	for i := range col {
		c := int32(binary.LittleEndian.Uint32(b[i*4:]))
		if c < -1 || int(c) >= domain {
			return nil, fmt.Errorf("%w: attr %d code %d beyond dictionary of %d values", ErrCorrupt, attr, c, domain)
		}
		col[i] = uint64(c + 1)
	}
	return col, nil
}
