package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"repro/internal/stream"
)

// walHeaderSize is magic (8) + version (2) + generation (8).
const walHeaderSize = 18

// WAL record types (first payload byte). recIngest appends a time point at
// the valid-time tail; recIngestAt inserts one before an existing label
// (retroactive ingest). Both advance the transaction sequence by exactly
// one, so txn == records ever appended == time points.
const (
	recIngest   byte = 1
	recIngestAt byte = 2
)

// walWriter appends framed records to one WAL segment.
type walWriter struct {
	f   *os.File
	buf []byte // reused framing buffer: one contiguous write per record
}

// createWAL creates a fresh segment with a synced header, so a segment
// observed by recovery always has a parsable preamble.
func createWAL(path string, gen uint64) (*walWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	var hdr [walHeaderSize]byte
	copy(hdr[:8], walMagic)
	binary.LittleEndian.PutUint16(hdr[8:10], formatVersion)
	binary.LittleEndian.PutUint64(hdr[10:18], gen)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	return &walWriter{f: f}, nil
}

// openWALForAppend reopens an existing segment after replay truncated it
// to goodLen, positioning subsequent appends at the end of the last
// complete record.
func openWALForAppend(path string, goodLen int64) (*walWriter, error) {
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(goodLen); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(goodLen, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	return &walWriter{f: f}, nil
}

// append frames and writes one record; durability is the caller's fsync
// policy.
func (w *walWriter) append(payload []byte) (int, error) {
	w.buf = appendRecord(w.buf[:0], payload)
	n, err := w.f.Write(w.buf)
	return n, err
}

func (w *walWriter) sync() error  { return w.f.Sync() }
func (w *walWriter) close() error { return w.f.Close() }

// replayWAL streams the records of one segment through fn, validating the
// header and every checksum. A torn tail — a record cut short or failing
// its checksum at the end of the file — stops replay and reports the
// offset of the last complete record; the caller truncates there before
// appending. Header-level failures surface as typed errors.
func replayWAL(path string, fn func(payload []byte) error) (records int, goodLen int64, torn bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, false, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)
	var hdr [walHeaderSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return 0, 0, false, fmt.Errorf("%w: wal header of %s", ErrTruncated, path)
	}
	if string(hdr[:8]) != walMagic {
		return 0, 0, false, fmt.Errorf("%w: %s is not a wal segment", ErrBadMagic, path)
	}
	if v := binary.LittleEndian.Uint16(hdr[8:10]); v != formatVersion {
		return 0, 0, false, fmt.Errorf("%w: wal version %d, reader version %d", ErrVersion, v, formatVersion)
	}
	goodLen = walHeaderSize
	for {
		payload, rerr := readRecord(br)
		if rerr == io.EOF {
			return records, goodLen, false, nil
		}
		if rerr != nil {
			// Any framing or checksum failure is treated as a torn tail:
			// the write that produced it never completed (records are
			// appended with a single contiguous write and the segment is
			// synced before a successor segment is created).
			return records, goodLen, true, nil
		}
		if err := fn(payload); err != nil {
			return records, goodLen, false, err
		}
		records++
		goodLen += 8 + int64(len(payload))
	}
}

// encodeIngest serializes one ingest batch as a WAL record payload. The
// same bytes are embedded in checkpoint snapshots (secSeries), so stream
// recovery replays identical records whichever file they come from.
func encodeIngest(label string, snap stream.Snapshot) []byte {
	e := &enc{b: make([]byte, 0, 64+32*len(snap.Nodes)+8*len(snap.Edges))}
	e.byte(recIngest)
	e.str(label)
	encodeSnapshotBody(e, snap)
	return e.b
}

// encodeIngestAt serializes a retroactive ingest: the new point's label,
// the existing label it is inserted before, then the same batch body as a
// tail append.
func encodeIngestAt(label, before string, snap stream.Snapshot) []byte {
	e := &enc{b: make([]byte, 0, 64+32*len(snap.Nodes)+8*len(snap.Edges))}
	e.byte(recIngestAt)
	e.str(label)
	e.str(before)
	encodeSnapshotBody(e, snap)
	return e.b
}

func encodeSnapshotBody(e *enc, snap stream.Snapshot) {
	e.uvarint(uint64(len(snap.Nodes)))
	for _, n := range snap.Nodes {
		e.str(n.Label)
		writeAttrMap(e, n.Static)
		writeAttrMap(e, n.Varying)
	}
	e.uvarint(uint64(len(snap.Edges)))
	for _, ed := range snap.Edges {
		e.str(ed.U)
		e.str(ed.V)
	}
}

// decodeIngest parses a tail-append WAL record payload back into an
// ingest batch, rejecting every other record type.
func decodeIngest(payload []byte) (string, stream.Snapshot, error) {
	if len(payload) > 0 && payload[0] == recIngestAt {
		return "", stream.Snapshot{}, fmt.Errorf("%w: retroactive record where a tail append was expected", ErrCorrupt)
	}
	label, _, snap, err := decodeIngestAny(payload)
	if err != nil {
		return "", stream.Snapshot{}, err
	}
	return label, snap, nil
}

// decodeIngestAny parses either ingest record type. before is "" for a
// tail append and the insertion label for a retroactive record.
func decodeIngestAny(payload []byte) (string, string, stream.Snapshot, error) {
	d := &dec{b: payload}
	var snap stream.Snapshot
	t := d.byteVal()
	if d.err == nil && t != recIngest && t != recIngestAt {
		return "", "", snap, fmt.Errorf("%w: unknown wal record type %d", ErrCorrupt, t)
	}
	label := d.str()
	var before string
	if t == recIngestAt {
		before = d.str()
	}
	nn := d.count(1)
	for i := 0; i < nn && d.err == nil; i++ {
		snap.Nodes = append(snap.Nodes, stream.NodeRecord{
			Label:   d.str(),
			Static:  readAttrMap(d),
			Varying: readAttrMap(d),
		})
	}
	ne := d.count(1)
	for i := 0; i < ne && d.err == nil; i++ {
		snap.Edges = append(snap.Edges, stream.EdgeRecord{U: d.str(), V: d.str()})
	}
	if d.err != nil {
		return "", "", stream.Snapshot{}, fmt.Errorf("ingest record: %w", d.err)
	}
	if d.remaining() != 0 {
		return "", "", stream.Snapshot{}, fmt.Errorf("%w: ingest record has %d trailing bytes", ErrCorrupt, d.remaining())
	}
	return label, before, snap, nil
}

// writeAttrMap serializes an attribute map in sorted-insensitive pair
// order. Order does not matter to Series.Append, so insertion order is
// not preserved.
func writeAttrMap(e *enc, m map[string]string) {
	e.uvarint(uint64(len(m)))
	for k, v := range m {
		e.str(k)
		e.str(v)
	}
}

func readAttrMap(d *dec) map[string]string {
	n := d.count(2)
	if n == 0 {
		return nil
	}
	m := make(map[string]string, n)
	for i := 0; i < n && d.err == nil; i++ {
		k := d.str()
		m[k] = d.str()
	}
	return m
}
