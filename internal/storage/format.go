// Package storage is graphtempod's durable persistence engine: a
// versioned, CRC32C-checksummed binary format with two parts — a columnar
// snapshot of the dictionary-encoded temporal graph (plus optional
// materialized per-time-point aggregate vectors and, for stream-mode
// checkpoints, the raw ingest records), and an append-only write-ahead log
// of stream ingest batches.
//
// The daemon opens an Engine over a data directory: boot recovers the
// latest valid snapshot and replays the WAL segments that follow it
// (truncating a torn tail to the last complete record), ingestion appends
// to the WAL under a configurable fsync policy before acknowledging, and a
// background checkpointer compacts the WAL into a new snapshot generation
// with atomic rename and old-file garbage collection. See DESIGN.md §4.
//
// File layout of a data directory:
//
//	snapshot-<gen>.gts   columnar snapshot covering every record before
//	                     WAL segment <gen> (16-digit zero-padded hex)
//	wal-<gen>.log        ingest records appended after snapshot <gen>
//	*.tmp                in-progress snapshot writes (removed on open)
//
// Both file kinds share one record framing:
//
//	[length uint32 LE][crc32c uint32 LE][payload]
//
// where the checksum is the Castagnoli CRC of the payload. A snapshot is a
// header (magic "GTSNAP01", version uint16) followed by framed sections
// and a terminating end section; a WAL segment is a header (magic
// "GTWAL001", version, generation) followed by framed ingest records.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

const (
	snapMagic = "GTSNAP01"
	walMagic  = "GTWAL001"

	// Snapshot format versions. Version 1 frames every column inside
	// varint-encoded records; version 2 moves the fixed-width numeric
	// columns (existence words, edge endpoints, attribute codes) into an
	// 8-aligned little-endian blob area described by a directory section,
	// so a reader can serve them straight out of a file mapping. Writers
	// emit formatVersion; readers accept both (anything else is
	// ErrVersion).
	formatVersionV1 uint16 = 1
	formatVersion   uint16 = 2

	// maxRecordBytes bounds a single framed record, guarding the reader
	// against absurd allocations from corrupt length prefixes.
	maxRecordBytes = 1 << 30
)

// Typed errors. Readers never panic on malformed input: every failure maps
// to one of these (possibly wrapped with positional detail).
var (
	// ErrBadMagic marks a file that is not a snapshot/WAL at all.
	ErrBadMagic = errors.New("storage: bad magic")
	// ErrVersion marks a file written by an incompatible format version.
	ErrVersion = errors.New("storage: unsupported format version")
	// ErrTruncated marks a file that ends mid-header, mid-record, or
	// before the snapshot end marker.
	ErrTruncated = errors.New("storage: truncated file")
	// ErrChecksum marks a record whose payload does not match its CRC32C.
	ErrChecksum = errors.New("storage: checksum mismatch")
	// ErrCorrupt marks structurally invalid content inside a record that
	// passed its checksum (impossible lengths, dangling references).
	ErrCorrupt = errors.New("storage: corrupt content")
	// ErrWAL wraps a failure to append or sync the write-ahead log; the
	// in-memory state is ahead of disk when it is returned.
	ErrWAL = errors.New("storage: wal append failed")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// writeRecord frames payload as [len][crc][payload] into w.
func writeRecord(w io.Writer, payload []byte) error {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// appendRecord frames payload into buf (one contiguous slice, so a WAL
// append is a single write syscall and a torn tail is contiguous).
func appendRecord(buf, payload []byte) []byte {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// readRecord reads one framed record from r. io.EOF at a record boundary
// is returned as io.EOF; a partial header or short payload maps to
// ErrTruncated, a bad checksum to ErrChecksum.
func readRecord(r io.Reader) ([]byte, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: partial record header", ErrTruncated)
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n > maxRecordBytes {
		return nil, fmt.Errorf("%w: record length %d exceeds limit", ErrCorrupt, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("%w: record payload short (want %d bytes)", ErrTruncated, n)
	}
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(hdr[4:8]) {
		return nil, ErrChecksum
	}
	return payload, nil
}

// enc accumulates a record payload. All integers are unsigned varints
// unless noted; strings and slices are length-prefixed.
type enc struct{ b []byte }

func (e *enc) uvarint(v uint64) { e.b = binary.AppendUvarint(e.b, v) }
func (e *enc) varint(v int64)   { e.b = binary.AppendVarint(e.b, v) }
func (e *enc) byte(v byte)      { e.b = append(e.b, v) }
func (e *enc) u64(v uint64)     { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *enc) str(s string)     { e.uvarint(uint64(len(s))); e.b = append(e.b, s...) }
func (e *enc) strs(ss []string) {
	e.uvarint(uint64(len(ss)))
	for _, s := range ss {
		e.str(s)
	}
}
func (e *enc) words(w []uint64) {
	for _, v := range w {
		e.u64(v)
	}
}

// dec consumes a record payload with sticky error state: after the first
// failure every accessor returns a zero value, so decode paths read
// straight through and check err once.
type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s at offset %d", ErrCorrupt, fmt.Sprintf(format, args...), d.off)
	}
}

func (d *dec) remaining() int { return len(d.b) - d.off }

func (d *dec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("bad uvarint")
		return 0
	}
	d.off += n
	return v
}

func (d *dec) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail("bad varint")
		return 0
	}
	d.off += n
	return v
}

func (d *dec) byteVal() byte {
	if d.err != nil {
		return 0
	}
	if d.remaining() < 1 {
		d.fail("unexpected end")
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *dec) u32() uint32 {
	if d.err != nil {
		return 0
	}
	if d.remaining() < 4 {
		d.fail("unexpected end in uint32")
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *dec) u64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.remaining() < 8 {
		d.fail("unexpected end in uint64")
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *dec) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(d.remaining()) {
		d.fail("string length %d exceeds remaining %d", n, d.remaining())
		return ""
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

// count reads a collection length and validates it against the remaining
// payload assuming each element occupies at least minBytes, so corrupt
// lengths cannot trigger huge allocations.
func (d *dec) count(minBytes int) int {
	n := d.uvarint()
	if d.err != nil {
		return 0
	}
	if n > uint64(math.MaxInt32) || int64(n)*int64(minBytes) > int64(d.remaining()) {
		d.fail("collection length %d implausible for %d remaining bytes", n, d.remaining())
		return 0
	}
	return int(n)
}

func (d *dec) strsN(n int) []string {
	out := make([]string, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		out = append(out, d.str())
	}
	return out
}

func (d *dec) strs() []string { return d.strsN(d.count(1)) }
