package storage

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dataset"
)

// validSnapshotBytes returns a small but fully featured snapshot: graph
// with static and time-varying attributes plus embedded series records.
func validSnapshotBytes(t testing.TB) []byte {
	g := dataset.DBLPScaled(9, 0.004)
	var buf bytes.Buffer
	if err := Save(&buf, g); err != nil {
		t.Fatalf("Save: %v", err)
	}
	return buf.Bytes()
}

func isStorageError(err error) bool {
	return errorsIsAny(err, ErrBadMagic, ErrVersion, ErrTruncated, ErrChecksum, ErrCorrupt)
}

func TestLoadWrongMagic(t *testing.T) {
	data := validSnapshotBytes(t)
	bad := append([]byte("NOTASNAP"), data[8:]...)
	if _, err := Load(bytes.NewReader(bad)); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("got %v, want ErrBadMagic", err)
	}
	// A WAL file handed to the snapshot loader is also a magic mismatch.
	walish := append([]byte(walMagic), data[8:]...)
	if _, err := Load(bytes.NewReader(walish)); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("wal-as-snapshot: got %v, want ErrBadMagic", err)
	}
}

func TestLoadWrongVersion(t *testing.T) {
	data := append([]byte(nil), validSnapshotBytes(t)...)
	data[8], data[9] = 0xff, 0xff
	if _, err := Load(bytes.NewReader(data)); !errors.Is(err, ErrVersion) {
		t.Fatalf("got %v, want ErrVersion", err)
	}
}

// TestLoadTruncationSweep cuts a valid snapshot at a spread of lengths:
// every prefix must fail with a typed error and never panic.
func TestLoadTruncationSweep(t *testing.T) {
	data := validSnapshotBytes(t)
	step := len(data)/257 + 1
	for cut := 0; cut < len(data); cut += step {
		if _, err := Load(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("prefix of %d/%d bytes loaded successfully", cut, len(data))
		} else if !isStorageError(err) {
			t.Fatalf("prefix of %d bytes: untyped error %v", cut, err)
		}
	}
}

// TestLoadBitFlips flips single bits across a valid snapshot: loading must
// either fail with a typed error or (for flips the checksum cannot see,
// e.g. inside the header lengths) still never panic.
func TestLoadBitFlips(t *testing.T) {
	data := validSnapshotBytes(t)
	step := len(data)/503 + 1
	for off := 0; off < len(data); off += step {
		for bit := 0; bit < 8; bit += 3 {
			mut := append([]byte(nil), data...)
			mut[off] ^= 1 << bit
			snap, err := Load(bytes.NewReader(mut))
			if err == nil {
				// A flip in section padding can in principle go unnoticed
				// only if the checksum still matches — which it cannot.
				t.Fatalf("bit flip at %d.%d produced a loadable snapshot %p", off, bit, snap)
			}
			if !isStorageError(err) {
				t.Fatalf("bit flip at %d.%d: untyped error %v", off, bit, err)
			}
		}
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "nope.gts")); !os.IsNotExist(err) {
		t.Fatalf("got %v, want not-exist", err)
	}
}

func FuzzLoadSnapshot(f *testing.F) {
	f.Add(validSnapshotBytes(f))
	f.Add([]byte(snapMagic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := Load(bytes.NewReader(data)) // must never panic
		if err == nil && snap.Graph == nil {
			t.Fatal("nil graph without error")
		}
	})
}

func FuzzWALReplay(f *testing.F) {
	dir := f.TempDir()
	seed := filepath.Join(dir, "seed.log")
	w, err := createWAL(seed, 1)
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		label, snap := testBatch(i)
		if _, err := w.append(encodeIngest(label, snap)); err != nil {
			f.Fatal(err)
		}
	}
	w.close()
	data, err := os.ReadFile(seed)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(data)
	f.Add(data[:walHeaderSize])
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		p := filepath.Join(t.TempDir(), "f.log")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Skip()
		}
		// Must never panic; decode failures inside records surface through
		// the callback error, framing damage as a torn tail.
		_, _, _, _ = replayWAL(p, func(payload []byte) error {
			_, _, err := decodeIngest(payload)
			return err
		})
	})
}
