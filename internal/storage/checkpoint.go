package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/stream"
)

// checkpoint compacts the WAL into a new snapshot generation:
//
//  1. Under the append lock: sync the active segment, create segment
//     gen+1 (so only the newest segment can ever carry a torn tail),
//     swap it in, and capture the point set the snapshot must cover.
//  2. Outside the lock: materialize the captured points and write
//     snapshot-<gen+1>.gts atomically (.tmp + rename + directory sync).
//  3. Garbage-collect snapshots and segments the new generation made
//     redundant.
//
// A failure after step 1 leaves extra segments behind; recovery replays
// them, so nothing is lost — the next checkpoint retries the compaction.
func (e *Engine) checkpoint() error {
	start := time.Now()

	// No closed-check here: Close waits for an in-flight checkpoint before
	// closing the WAL handle, so a checkpoint triggered just before
	// shutdown still completes its compaction.
	e.mu.Lock()
	// The snapshot embeds the raw record log in transaction order (not the
	// series' valid order): replaying it reproduces retroactive inserts
	// exactly, and the covered-txn watermark below equals its length.
	raw := append([][]byte(nil), e.raw...)
	if len(raw) == 0 {
		e.mu.Unlock()
		return nil
	}
	if err := e.wal.sync(); err != nil {
		e.mu.Unlock()
		return err
	}
	e.ctr.fsyncs.Add(1)
	newGen := e.gen + 1
	nw, err := createWAL(filepath.Join(e.dir, walName(newGen)), newGen)
	if err != nil {
		e.mu.Unlock()
		return err
	}
	if err := syncDir(e.dir); err != nil {
		nw.close()
		os.Remove(filepath.Join(e.dir, walName(newGen)))
		e.mu.Unlock()
		return err
	}
	old := e.wal
	e.wal = nw
	e.gen = newGen
	e.segRecords = 0
	e.mu.Unlock()
	old.close()

	// Re-materialize from the captured records on a scratch series — the
	// same replay recovery performs — rather than reading e.series, which
	// may already hold records belonging to the next generation.
	scratch := stream.New(e.attrs...)
	points := make([]seriesPoint, len(raw))
	for i, payload := range raw {
		if err := replayRecord(scratch, payload); err != nil {
			return fmt.Errorf("storage: checkpoint replay: %v", err)
		}
		points[i] = seriesPoint{payload: payload}
	}
	g, err := scratch.Graph()
	if err != nil {
		return fmt.Errorf("storage: checkpoint materialize: %v", err)
	}
	if err := saveFile(filepath.Join(e.dir, snapName(newGen)), g, nil, points, len(points)); err != nil {
		return err
	}
	e.mu.Lock()
	e.snapGen, e.snapTxn = newGen, len(points)
	e.mu.Unlock()

	e.gcBefore(newGen, newGen)
	e.ctr.checkpoints.Add(1)
	e.ctr.lastCheckpointUs.Store(time.Since(start).Microseconds())
	e.log.Info("checkpoint complete",
		"dir", e.dir, "generation", newGen, "points", len(points),
		"elapsed", time.Since(start).Round(time.Millisecond).String())
	return nil
}
