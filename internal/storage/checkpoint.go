package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/stream"
)

// checkpoint compacts the WAL into a new snapshot generation:
//
//  1. Under the append lock: sync the active segment, create segment
//     gen+1 (so only the newest segment can ever carry a torn tail),
//     swap it in, and capture the point set the snapshot must cover.
//  2. Outside the lock: materialize the captured points and write
//     snapshot-<gen+1>.gts atomically (.tmp + rename + directory sync).
//  3. Garbage-collect snapshots and segments the new generation made
//     redundant.
//
// A failure after step 1 leaves extra segments behind; recovery replays
// them, so nothing is lost — the next checkpoint retries the compaction.
func (e *Engine) checkpoint() error {
	start := time.Now()

	// No closed-check here: Close waits for an in-flight checkpoint before
	// closing the WAL handle, so a checkpoint triggered just before
	// shutdown still completes its compaction.
	e.mu.Lock()
	labels, snaps := e.series.Points()
	if len(labels) == 0 {
		e.mu.Unlock()
		return nil
	}
	if err := e.wal.sync(); err != nil {
		e.mu.Unlock()
		return err
	}
	e.ctr.fsyncs.Add(1)
	newGen := e.gen + 1
	nw, err := createWAL(filepath.Join(e.dir, walName(newGen)), newGen)
	if err != nil {
		e.mu.Unlock()
		return err
	}
	if err := syncDir(e.dir); err != nil {
		nw.close()
		os.Remove(filepath.Join(e.dir, walName(newGen)))
		e.mu.Unlock()
		return err
	}
	old := e.wal
	e.wal = nw
	e.gen = newGen
	e.segRecords = 0
	e.mu.Unlock()
	old.close()

	// Re-materialize from the captured points on a scratch series — the
	// same replay recovery performs — rather than reading e.series, which
	// may already hold records belonging to the next generation.
	scratch := stream.New(e.attrs...)
	points := make([]seriesPoint, len(labels))
	for i, label := range labels {
		if err := scratch.Append(label, snaps[i]); err != nil {
			return fmt.Errorf("storage: checkpoint replay: %v", err)
		}
		points[i] = seriesPoint{payload: encodeIngest(label, snaps[i])}
	}
	g, err := scratch.Graph()
	if err != nil {
		return fmt.Errorf("storage: checkpoint materialize: %v", err)
	}
	if err := saveFile(filepath.Join(e.dir, snapName(newGen)), g, nil, points); err != nil {
		return err
	}

	e.gcBefore(newGen, newGen)
	e.ctr.checkpoints.Add(1)
	e.ctr.lastCheckpointUs.Store(time.Since(start).Microseconds())
	e.log.Info("checkpoint complete",
		"dir", e.dir, "generation", newGen, "points", len(points),
		"elapsed", time.Since(start).Round(time.Millisecond).String())
	return nil
}
