package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/dict"
	"repro/internal/materialize"
	"repro/internal/timeline"
)

// Snapshot section identifiers, in the order sections are written.
// Mandatory sections encode the columnar graph; secStores and secSeries
// are optional.
const (
	secTimeline byte = 1  // time point labels
	secSchema   byte = 2  // attribute specs + per-attribute dictionaries
	secNodes    byte = 3  // node label column
	secNodeTau  byte = 4  // node existence bitsets, flat uint64 words
	secEdges    byte = 5  // edge endpoint columns (node ids)
	secEdgeTau  byte = 6  // edge existence bitsets, flat uint64 words
	secStatic   byte = 7  // static attribute code columns
	secVarying  byte = 8  // time-varying attribute code columns
	secStores   byte = 9  // materialized per-point aggregate vectors
	secSeries   byte = 10 // raw stream ingest records (checkpoints only)
	secTxnMeta  byte = 13 // covered-txn watermark (bi-temporal checkpoints)
	secEnd      byte = 0xff
)

// seriesPoint is one raw ingest record carried inside a checkpoint
// snapshot so stream recovery reproduces the exact append sequence.
type seriesPoint struct {
	payload []byte // encoded as a WAL ingest record payload
}

// Save writes g, and optionally materialized stores over g, to w in the
// current (version 2, mmap-servable) binary snapshot format.
func Save(w io.Writer, g *core.Graph, stores ...*materialize.Store) error {
	return writeSnapshotV2(w, g, stores, nil, 0)
}

// SaveFile writes the snapshot atomically: a .tmp file in the target
// directory is synced and renamed over path, so readers only ever observe
// a complete snapshot.
func SaveFile(path string, g *core.Graph, stores ...*materialize.Store) error {
	return saveFile(path, g, stores, nil, 0)
}

func saveFile(path string, g *core.Graph, stores []*materialize.Store, points []seriesPoint, coveredTxn int) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	if err := writeSnapshotV2(bw, g, stores, points, coveredTxn); err == nil {
		err = bw.Flush()
	}
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so a just-renamed file survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// writeSnapshotV1 emits the legacy all-framed layout. It is kept (and
// exercised by the compatibility tests) so the reader's version-1 path is
// tested against a real writer, exactly as files produced by older builds.
func writeSnapshotV1(w io.Writer, g *core.Graph, stores []*materialize.Store, points []seriesPoint, coveredTxn int) error {
	for _, st := range stores {
		if st.Schema().Graph() != g {
			return fmt.Errorf("storage: store schema built on a different graph")
		}
	}
	var hdr [10]byte
	copy(hdr[:8], snapMagic)
	binary.LittleEndian.PutUint16(hdr[8:10], formatVersionV1)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	sec := func(id byte, fill func(*enc)) error {
		e := &enc{b: []byte{id}}
		fill(e)
		return writeRecord(w, e.b)
	}

	tl := g.Timeline()
	T := tl.Len()
	if err := sec(secTimeline, func(e *enc) {
		e.strs(tl.Labels())
	}); err != nil {
		return err
	}

	attrs := g.Attrs()
	if err := sec(secSchema, func(e *enc) {
		e.uvarint(uint64(len(attrs)))
		for i, a := range attrs {
			e.str(a.Name)
			e.byte(byte(a.Kind))
			e.strs(g.Dict(core.AttrID(i)).Values())
		}
	}); err != nil {
		return err
	}

	nNodes := g.NumNodes()
	if err := sec(secNodes, func(e *enc) {
		e.uvarint(uint64(nNodes))
		for n := 0; n < nNodes; n++ {
			e.str(g.NodeLabel(core.NodeID(n)))
		}
	}); err != nil {
		return err
	}

	wordsPerTau := (T + 63) / 64
	if err := sec(secNodeTau, func(e *enc) {
		writeTaus(e, wordsPerTau, nNodes, func(i int) *bitset.Set { return g.NodeTau(core.NodeID(i)) })
	}); err != nil {
		return err
	}

	nEdges := g.NumEdges()
	if err := sec(secEdges, func(e *enc) {
		e.uvarint(uint64(nEdges))
		for i := 0; i < nEdges; i++ {
			ep := g.Edge(core.EdgeID(i))
			e.uvarint(uint64(ep.U))
			e.uvarint(uint64(ep.V))
		}
	}); err != nil {
		return err
	}

	if err := sec(secEdgeTau, func(e *enc) {
		writeTaus(e, wordsPerTau, nEdges, func(i int) *bitset.Set { return g.EdgeTau(core.EdgeID(i)) })
	}); err != nil {
		return err
	}

	if err := sec(secStatic, func(e *enc) {
		for ai, a := range attrs {
			if a.Kind != core.Static {
				continue
			}
			for n := 0; n < nNodes; n++ {
				e.uvarint(codePlusOne(g.StaticValue(core.AttrID(ai), core.NodeID(n))))
			}
		}
	}); err != nil {
		return err
	}

	if err := sec(secVarying, func(e *enc) {
		for ai, a := range attrs {
			if a.Kind != core.TimeVarying {
				continue
			}
			for n := 0; n < nNodes; n++ {
				for t := 0; t < T; t++ {
					e.uvarint(codePlusOne(g.VaryingValue(core.AttrID(ai), core.NodeID(n), timeline.Time(t))))
				}
			}
		}
	}); err != nil {
		return err
	}

	if len(stores) > 0 {
		if err := sec(secStores, func(e *enc) {
			e.uvarint(uint64(len(stores)))
			for _, st := range stores {
				writeStore(e, g, st)
			}
		}); err != nil {
			return err
		}
	}

	if len(points) > 0 {
		if err := sec(secSeries, func(e *enc) {
			e.uvarint(uint64(len(points)))
			for _, p := range points {
				e.uvarint(uint64(len(p.payload)))
				e.b = append(e.b, p.payload...)
			}
		}); err != nil {
			return err
		}
	}

	if coveredTxn > 0 {
		if err := sec(secTxnMeta, func(e *enc) {
			e.uvarint(uint64(coveredTxn))
		}); err != nil {
			return err
		}
	}

	return sec(secEnd, func(*enc) {})
}

// writeTaus flattens n existence bitsets into w words each. ForEachWord
// only visits non-zero words, so the buffer is pre-zeroed per set.
func writeTaus(e *enc, w, n int, tau func(int) *bitset.Set) {
	e.uvarint(uint64(w))
	buf := make([]uint64, w)
	for i := 0; i < n; i++ {
		for j := range buf {
			buf[j] = 0
		}
		tau(i).ForEachWord(func(wi int, word uint64) { buf[wi] = word })
		e.words(buf)
	}
}

// codePlusOne shifts a dictionary code so None (-1) encodes as 0.
func codePlusOne(c dict.Code) uint64 { return uint64(int64(c) + 1) }

// writeStore serializes one materialized per-point store: its attribute
// ids, then for every time point the aggregate node and edge entries with
// decoded attribute values (so a reloaded store only depends on the value
// domain, not on internal code assignment).
func writeStore(e *enc, g *core.Graph, st *materialize.Store) {
	s := st.Schema()
	attrs := s.Attrs()
	e.uvarint(uint64(len(attrs)))
	for _, a := range attrs {
		e.uvarint(uint64(a))
	}
	T := g.Timeline().Len()
	for t := 0; t < T; t++ {
		ag := st.Point(timeline.Time(t))
		nodes := ag.SortedNodes()
		e.uvarint(uint64(len(nodes)))
		for _, tu := range nodes {
			for _, v := range s.Decode(tu) {
				e.str(v)
			}
			e.varint(ag.Nodes[tu])
		}
		edges := ag.SortedEdges()
		e.uvarint(uint64(len(edges)))
		for _, k := range edges {
			for _, v := range s.Decode(k.From) {
				e.str(v)
			}
			for _, v := range s.Decode(k.To) {
				e.str(v)
			}
			e.varint(ag.Edges[k])
		}
	}
}
