package storage

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/materialize"
	"repro/internal/timeline"
)

// Version-2 layout. The header and record framing are unchanged from v1;
// the fixed-width numeric columns move out of the framed records into a
// blob area at the end of the file:
//
//	header (magic + version 2)
//	framed: secTimeline, secSchema, secNodes         (varint meta, as v1)
//	framed: secTauRuns                               (optional)
//	framed: secStores, secSeries                     (optional, as v1)
//	framed: secBlobDir                               (fixed-width directory)
//	framed: secEnd
//	zero padding to 8-byte alignment
//	blob area: 8-aligned little-endian regions, one per directory entry
//
// Every blob holds host-order-free little-endian words: uint64 existence
// words at a fixed stride per entity, int32 edge endpoint pairs, or int32
// attribute codes (-1 = missing). A mapped reader can alias them in place
// on little-endian hosts; the decode path reads them portably. Each
// directory entry carries a CRC32C of its blob, verified by the decode
// path (the mapped path checks structure only — see OpenMapped).
const (
	secBlobDir byte = 11 // blob directory: count, file size, fixed-width entries
	secTauRuns byte = 12 // run-length encodings of run-dominated tau vectors
)

// Blob kinds. Static and varying column blobs repeat per attribute with
// the attribute id in the entry's param field; the tau kinds put the word
// stride there.
const (
	blobNodeTau uint32 = 1 // NumNodes × param uint64 words
	blobEdgeTau uint32 = 2 // NumEdges × param uint64 words
	blobEdges   uint32 = 3 // NumEdges × (int32 u, int32 v)
	blobStatic  uint32 = 4 // NumNodes int32 codes, param = attr id
	blobVarying uint32 = 5 // NumNodes×T int32 codes, param = attr id
)

// blobEntry is one fixed-width directory entry: 28 bytes on disk.
type blobEntry struct {
	kind   uint32
	param  uint32
	off    uint64
	length uint64
	crc    uint32
}

const blobDirEntryLen = 28

func align8(n int) int { return (n + 7) &^ 7 }

func writeSnapshotV2(w io.Writer, g *core.Graph, stores []*materialize.Store, points []seriesPoint, coveredTxn int) error {
	for _, st := range stores {
		if st.Schema().Graph() != g {
			return fmt.Errorf("storage: store schema built on a different graph")
		}
	}
	tl := g.Timeline()
	T := tl.Len()
	nNodes, nEdges := g.NumNodes(), g.NumEdges()
	attrs := g.Attrs()
	wordsPerTau := (T + 63) / 64

	// Meta sections, buffered so blob offsets are known before anything is
	// written. bytes.Buffer writes cannot fail.
	var meta bytes.Buffer
	sec := func(id byte, fill func(*enc)) {
		e := &enc{b: []byte{id}}
		fill(e)
		writeRecord(&meta, e.b)
	}
	sec(secTimeline, func(e *enc) { e.strs(tl.Labels()) })
	sec(secSchema, func(e *enc) {
		e.uvarint(uint64(len(attrs)))
		for i, a := range attrs {
			e.str(a.Name)
			e.byte(byte(a.Kind))
			e.strs(g.Dict(core.AttrID(i)).Values())
		}
	})
	sec(secNodes, func(e *enc) {
		e.uvarint(uint64(nNodes))
		for n := 0; n < nNodes; n++ {
			e.str(g.NodeLabel(core.NodeID(n)))
		}
	})
	nodeRuns := compressForSave(nNodes, func(i int) *bitset.Set { return g.NodeTau(core.NodeID(i)) })
	edgeRuns := compressForSave(nEdges, func(i int) *bitset.Set { return g.EdgeTau(core.EdgeID(i)) })
	if len(nodeRuns)+len(edgeRuns) > 0 {
		sec(secTauRuns, func(e *enc) {
			writeRunsList(e, nodeRuns)
			writeRunsList(e, edgeRuns)
		})
	}
	if len(stores) > 0 {
		sec(secStores, func(e *enc) {
			e.uvarint(uint64(len(stores)))
			for _, st := range stores {
				writeStore(e, g, st)
			}
		})
	}
	if len(points) > 0 {
		sec(secSeries, func(e *enc) {
			e.uvarint(uint64(len(points)))
			for _, p := range points {
				e.uvarint(uint64(len(p.payload)))
				e.b = append(e.b, p.payload...)
			}
		})
	}
	if coveredTxn > 0 {
		sec(secTxnMeta, func(e *enc) { e.uvarint(uint64(coveredTxn)) })
	}

	// Blobs, in a fixed order the reader re-derives from the meta sections.
	var entries []blobEntry
	var blobs [][]byte
	addBlob := func(kind, param uint32, b []byte) {
		entries = append(entries, blobEntry{
			kind: kind, param: param, length: uint64(len(b)),
			crc: crc32.Checksum(b, castagnoli),
		})
		blobs = append(blobs, b)
	}
	addBlob(blobNodeTau, uint32(wordsPerTau),
		tauBlob(wordsPerTau, nNodes, func(i int) *bitset.Set { return g.NodeTau(core.NodeID(i)) }))
	addBlob(blobEdgeTau, uint32(wordsPerTau),
		tauBlob(wordsPerTau, nEdges, func(i int) *bitset.Set { return g.EdgeTau(core.EdgeID(i)) }))
	eb := make([]byte, nEdges*8)
	for i := 0; i < nEdges; i++ {
		ep := g.Edge(core.EdgeID(i))
		binary.LittleEndian.PutUint32(eb[i*8:], uint32(ep.U))
		binary.LittleEndian.PutUint32(eb[i*8+4:], uint32(ep.V))
	}
	addBlob(blobEdges, 0, eb)
	for ai, a := range attrs {
		switch a.Kind {
		case core.Static:
			col := make([]byte, nNodes*4)
			for n := 0; n < nNodes; n++ {
				binary.LittleEndian.PutUint32(col[n*4:], uint32(g.StaticValue(core.AttrID(ai), core.NodeID(n))))
			}
			addBlob(blobStatic, uint32(ai), col)
		case core.TimeVarying:
			col := make([]byte, nNodes*T*4)
			for n := 0; n < nNodes; n++ {
				for t := 0; t < T; t++ {
					binary.LittleEndian.PutUint32(col[(n*T+t)*4:],
						uint32(g.VaryingValue(core.AttrID(ai), core.NodeID(n), timeline.Time(t))))
				}
			}
			addBlob(blobVarying, uint32(ai), col)
		}
	}

	// Lay the blob area out after the framed part: header + meta + blob
	// directory record + end record, rounded up to alignment.
	dirPayloadLen := 1 + 4 + 8 + len(entries)*blobDirEntryLen
	framedLen := 10 + meta.Len() + (8 + dirPayloadLen) + (8 + 1)
	blobStart := align8(framedLen)
	off := blobStart
	for i := range entries {
		entries[i].off = uint64(off)
		off = align8(off + len(blobs[i]))
	}
	fileSize := off

	var hdr [10]byte
	copy(hdr[:8], snapMagic)
	binary.LittleEndian.PutUint16(hdr[8:10], formatVersion)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := meta.WriteTo(w); err != nil {
		return err
	}
	dir := make([]byte, 0, dirPayloadLen)
	dir = append(dir, secBlobDir)
	dir = binary.LittleEndian.AppendUint32(dir, uint32(len(entries)))
	dir = binary.LittleEndian.AppendUint64(dir, uint64(fileSize))
	for _, be := range entries {
		dir = binary.LittleEndian.AppendUint32(dir, be.kind)
		dir = binary.LittleEndian.AppendUint32(dir, be.param)
		dir = binary.LittleEndian.AppendUint64(dir, be.off)
		dir = binary.LittleEndian.AppendUint64(dir, be.length)
		dir = binary.LittleEndian.AppendUint32(dir, be.crc)
	}
	if err := writeRecord(w, dir); err != nil {
		return err
	}
	if err := writeRecord(w, []byte{secEnd}); err != nil {
		return err
	}
	if err := writeZeros(w, blobStart-framedLen); err != nil {
		return err
	}
	pos := blobStart
	for _, b := range blobs {
		if _, err := w.Write(b); err != nil {
			return err
		}
		pos += len(b)
		if err := writeZeros(w, align8(pos)-pos); err != nil {
			return err
		}
		pos = align8(pos)
	}
	return nil
}

var zeros [8]byte

func writeZeros(w io.Writer, n int) error {
	if n == 0 {
		return nil
	}
	_, err := w.Write(zeros[:n])
	return err
}

// tauBlob flattens n existence bitsets into w little-endian words each.
func tauBlob(w, n int, tau func(int) *bitset.Set) []byte {
	b := make([]byte, n*w*8)
	for i := 0; i < n; i++ {
		base := i * w * 8
		tau(i).ForEachWord(func(wi int, word uint64) {
			binary.LittleEndian.PutUint64(b[base+wi*8:], word)
		})
	}
	return b
}

// idxRuns pairs an entity index with its run-length encoding.
type idxRuns struct {
	idx int
	r   *bitset.Runs
}

// compressForSave applies the density heuristic to every tau vector and
// returns the entities it elects to compress, in index order. The choice
// is persisted so a mapped reader serves compressed kernels immediately,
// without an O(V+E) selection scan at boot.
func compressForSave(n int, tau func(int) *bitset.Set) []idxRuns {
	var out []idxRuns
	for i := 0; i < n; i++ {
		if r := bitset.Compress(tau(i)); r != nil {
			out = append(out, idxRuns{idx: i, r: r})
		}
	}
	return out
}

func writeRunsList(e *enc, list []idxRuns) {
	e.uvarint(uint64(len(list)))
	for _, ir := range list {
		e.uvarint(uint64(ir.idx))
		e.b = ir.r.AppendBinary(e.b)
	}
}
