package storage

import (
	"fmt"
	"log/slog"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/stream"
)

// FsyncPolicy selects when WAL appends are flushed to stable storage.
type FsyncPolicy int

const (
	// FsyncAlways syncs after every append, before the ingest is
	// acknowledged: no acknowledged record is ever lost.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval syncs on a background timer (Options.FsyncInterval):
	// a crash loses at most one interval of acknowledged records.
	FsyncInterval
	// FsyncNever leaves flushing to the OS page cache: fastest, loses the
	// unflushed tail on a crash. Rotation and Close still sync.
	FsyncNever
)

// String renders the policy as its flag spelling.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	default:
		return "never"
	}
}

// ParseFsyncPolicy parses the -fsync flag spelling.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("storage: unknown fsync policy %q (want always, interval or never)", s)
}

// Options configures an Engine. The zero value selects the defaults noted
// on each field.
type Options struct {
	// Fsync is the WAL durability policy (default FsyncAlways).
	Fsync FsyncPolicy
	// FsyncInterval is the background sync period under FsyncInterval
	// (<= 0 selects 100ms).
	FsyncInterval time.Duration
	// CheckpointRecords is the WAL record count that triggers a
	// background checkpoint (0 selects 1024; negative disables automatic
	// checkpointing — Checkpoint can still be called explicitly).
	CheckpointRecords int
	// Logger receives recovery and checkpoint lifecycle logs; nil selects
	// slog.Default().
	Logger *slog.Logger
}

// Engine is the durable persistence layer behind a stream-mode daemon: it
// owns a stream.Series plus the data directory's snapshot and WAL files,
// and keeps them in sync — every Append lands in the series and the WAL
// under one lock, checkpoints compact the WAL into a fresh snapshot
// generation while serving continues, and Open recovers the whole state
// after a crash. All methods are safe for concurrent use.
type Engine struct {
	dir   string
	opts  Options
	log   *slog.Logger
	attrs []core.AttrSpec

	series *stream.Series

	mu         sync.Mutex // serializes appends, rotation, close
	wal        *walWriter
	gen        uint64
	seq        uint64   // records appended since Open (durability watermark domain)
	raw        [][]byte // every ingest record payload, in transaction order (replication tail)
	segRecords int      // records in the active segment
	closed     bool

	// Transaction-time watermarks of the newest usable snapshot: its file
	// generation and the number of leading raw records it covers. ReplayTo
	// reconstructs txn >= snapTxn as snapshot + partial replay of
	// raw[snapTxn:txn] instead of a full replay.
	snapGen uint64
	snapTxn int

	// Group commit (FsyncAlways): concurrent appends coalesce into one
	// fsync. A leader syncs the WAL for every record appended so far;
	// followers wait until the durable watermark covers their record.
	gcMu      sync.Mutex
	gcCond    *sync.Cond
	syncedSeq uint64 // highest seq known durable (under gcMu)
	syncing   bool   // a leader's fsync is in flight (under gcMu)

	cpRunning atomic.Bool
	stopc     chan struct{}
	wg        sync.WaitGroup

	recovery RecoveryInfo
	ctr      counters
}

// Open recovers (or initializes) the data directory dir for a series with
// the given attribute schema: it loads the latest valid snapshot, replays
// every WAL segment at or after the snapshot's generation (truncating a
// torn tail to the last complete record), garbage-collects files older
// than the recovered generation, and opens the active segment for append.
func Open(dir string, attrs []core.AttrSpec, opts Options) (*Engine, error) {
	if opts.FsyncInterval <= 0 {
		opts.FsyncInterval = 100 * time.Millisecond
	}
	if opts.CheckpointRecords == 0 {
		opts.CheckpointRecords = 1024
	}
	log := opts.Logger
	if log == nil {
		log = slog.Default()
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	e := &Engine{
		dir:   dir,
		opts:  opts,
		log:   log,
		attrs: append([]core.AttrSpec(nil), attrs...),
		stopc: make(chan struct{}),
	}
	e.gcCond = sync.NewCond(&e.gcMu)
	if err := e.recover(attrs); err != nil {
		return nil, err
	}
	if opts.Fsync == FsyncInterval {
		e.wg.Add(1)
		go e.syncLoop()
	}
	return e, nil
}

// Series returns the engine's recovered (and growing) series. Queries read
// it directly; all mutation must go through Append.
func (e *Engine) Series() *stream.Series { return e.series }

// Recovery returns what the boot recovered.
func (e *Engine) Recovery() RecoveryInfo { return e.recovery }

// Dir returns the data directory.
func (e *Engine) Dir() string { return e.dir }

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	gen := e.gen
	e.mu.Unlock()
	return Stats{
		Recovery:         e.recovery,
		Generation:       gen,
		WALRecords:       e.ctr.walRecords.Load(),
		WALBytes:         e.ctr.walBytes.Load(),
		Fsyncs:           e.ctr.fsyncs.Load(),
		CoalescedSyncs:   e.ctr.coalescedSyncs.Load(),
		Checkpoints:      e.ctr.checkpoints.Load(),
		CheckpointErrors: e.ctr.checkpointErrors.Load(),
		LastCheckpointMs: float64(e.ctr.lastCheckpointUs.Load()) / 1000,
	}
}

// testHookSyncDelay, when non-nil, runs after a group-commit leader claims
// the fsync slot and before it syncs — tests use it to widen the
// coalescing window deterministically.
var testHookSyncDelay func()

// Append durably ingests one time point: it validates and applies the
// batch to the in-memory series, appends the record to the WAL, and — under
// FsyncAlways — syncs before returning. Concurrent appends group-commit:
// the write lock is released before the fsync, one leader syncs the
// segment for every record written so far, and the other appends ride the
// same flush instead of issuing their own. Validation failures leave no
// state behind and are returned verbatim; a WAL write failure is wrapped
// in ErrWAL (the in-memory state is then ahead of disk, which the caller
// should surface as a server-side error).
func (e *Engine) Append(label string, snap stream.Snapshot) error {
	_, err := e.AppendAt(label, snap, "")
	return err
}

// AppendAt is Append with a valid-time position: when before names an
// existing time point, the new point is inserted immediately before it
// (retroactive ingest) while still occupying the tail of transaction
// time — the WAL stays strictly append-only and crash recovery replays
// the insert deterministically. An empty before is a tail append. The
// returned index is the point's valid-time position.
func (e *Engine) AppendAt(label string, snap stream.Snapshot, before string) (int, error) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return 0, fmt.Errorf("storage: engine closed")
	}
	at, err := e.series.AppendAt(label, snap, before)
	if err != nil {
		e.mu.Unlock()
		return 0, err
	}
	var payload []byte
	if before == "" {
		payload = encodeIngest(label, snap)
	} else {
		payload = encodeIngestAt(label, before, snap)
	}
	n, err := e.wal.append(payload)
	if err != nil {
		e.mu.Unlock()
		return 0, fmt.Errorf("%w: %v", ErrWAL, err)
	}
	e.raw = append(e.raw, payload)
	e.seq++
	seq := e.seq
	e.ctr.walRecords.Add(1)
	e.ctr.walBytes.Add(int64(n))
	e.segRecords++
	if e.opts.CheckpointRecords > 0 && e.segRecords >= e.opts.CheckpointRecords {
		e.triggerCheckpoint()
	}
	e.mu.Unlock()

	if e.opts.Fsync == FsyncAlways {
		if err := e.syncTo(seq); err != nil {
			return 0, fmt.Errorf("%w: %v", ErrWAL, err)
		}
	}
	return at, nil
}

// TxnSeq returns the transaction high-water mark: the number of ingest
// records ever appended (across restarts). Record n is transaction n+1;
// an AS OF TxnSeq() query sees every acknowledged write.
func (e *Engine) TxnSeq() int { return e.RecordCount() }

// syncTo blocks until record seq is durable. The first caller to find no
// flush in flight becomes the leader and fsyncs the WAL once for every
// record appended so far; callers whose record that flush (or a rotation's)
// already covered return without touching the disk and are counted as
// coalesced.
func (e *Engine) syncTo(seq uint64) error {
	e.gcMu.Lock()
	for {
		if e.syncedSeq >= seq {
			e.gcMu.Unlock()
			e.ctr.coalescedSyncs.Add(1)
			return nil
		}
		if !e.syncing {
			break
		}
		e.gcCond.Wait()
	}
	e.syncing = true
	e.gcMu.Unlock()

	if hook := testHookSyncDelay; hook != nil {
		hook()
	}

	e.mu.Lock()
	target := e.seq
	closed := e.closed
	var err error
	if !closed {
		// Records in rotated-out segments were synced at rotation, so one
		// sync of the active segment covers everything up to target. When
		// the engine closed in the meantime, durability is Close's final
		// sync's job (it runs under e.mu and reports its own error).
		err = e.wal.sync()
	}
	e.mu.Unlock()
	if err == nil && !closed {
		e.ctr.fsyncs.Add(1)
	}

	e.gcMu.Lock()
	e.syncing = false
	if err == nil && target > e.syncedSeq {
		e.syncedSeq = target
	}
	e.gcCond.Broadcast()
	e.gcMu.Unlock()
	return err
}

// triggerCheckpoint starts a background checkpoint unless one is already
// running. Called with e.mu held.
func (e *Engine) triggerCheckpoint() {
	if !e.cpRunning.CompareAndSwap(false, true) {
		return
	}
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		defer e.cpRunning.Store(false)
		if err := e.checkpoint(); err != nil {
			e.ctr.checkpointErrors.Add(1)
			e.log.Error("checkpoint failed", "dir", e.dir, "err", err)
		}
	}()
}

// Checkpoint synchronously compacts the WAL into a new snapshot
// generation. It is safe to call concurrently with appends and with the
// automatic background checkpointer.
func (e *Engine) Checkpoint() error {
	for !e.cpRunning.CompareAndSwap(false, true) {
		// An automatic checkpoint is in flight; brief spin-wait keeps the
		// rare explicit call simple (tests, admin tooling).
		time.Sleep(time.Millisecond)
	}
	defer e.cpRunning.Store(false)
	err := e.checkpoint()
	if err != nil {
		e.ctr.checkpointErrors.Add(1)
	}
	return err
}

// syncLoop is the FsyncInterval background flusher.
func (e *Engine) syncLoop() {
	defer e.wg.Done()
	t := time.NewTicker(e.opts.FsyncInterval)
	defer t.Stop()
	for {
		select {
		case <-e.stopc:
			return
		case <-t.C:
			e.mu.Lock()
			if !e.closed {
				if err := e.wal.sync(); err != nil {
					e.log.Error("interval fsync failed", "err", err)
				} else {
					e.ctr.fsyncs.Add(1)
				}
			}
			e.mu.Unlock()
		}
	}
}

// Close stops background work, syncs the WAL a final time and closes it.
// The engine cannot be used afterwards; reopen with Open.
func (e *Engine) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.mu.Unlock()
	close(e.stopc)
	e.wg.Wait()
	e.mu.Lock()
	defer e.mu.Unlock()
	var err error
	if serr := e.wal.sync(); serr != nil {
		err = serr
	} else {
		e.ctr.fsyncs.Add(1)
	}
	if cerr := e.wal.close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

func snapName(gen uint64) string { return fmt.Sprintf("snapshot-%016x.gts", gen) }
func walName(gen uint64) string  { return fmt.Sprintf("wal-%016x.log", gen) }

func parseGen(name, prefix, suffix string) (uint64, bool) {
	if len(name) != len(prefix)+16+len(suffix) ||
		name[:len(prefix)] != prefix || name[len(name)-len(suffix):] != suffix {
		return 0, false
	}
	var gen uint64
	if _, err := fmt.Sscanf(name[len(prefix):len(prefix)+16], "%016x", &gen); err != nil {
		return 0, false
	}
	return gen, true
}
