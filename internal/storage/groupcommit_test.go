package storage

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestGroupCommitCoalesces hammers FsyncAlways with concurrent appends and
// checks the group-commit invariants: every append is made durable by its
// own fsync or by one it coalesced onto (fsyncs + coalesced covers every
// append), at least some appends actually coalesced, and a reopen recovers
// every acknowledged record. A sync-delay hook widens the flush window so
// coalescing happens deterministically, and a small checkpoint threshold
// forces segment rotation to race the group commit.
func TestGroupCommitCoalesces(t *testing.T) {
	const (
		writers = 8
		perW    = 8
		total   = writers * perW
	)
	testHookSyncDelay = func() { time.Sleep(time.Millisecond) }
	t.Cleanup(func() { testHookSyncDelay = nil })

	dir := t.TempDir()
	e := openTestEngine(t, dir, Options{Fsync: FsyncAlways, CheckpointRecords: 10})

	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				label, snap := testBatch(int(next.Add(1) - 1))
				if err := e.Append(label, snap); err != nil {
					t.Errorf("append %s: %v", label, err)
					return
				}
			}
		}()
	}
	wg.Wait()

	st := e.Stats()
	if st.WALRecords != total {
		t.Fatalf("wal records = %d, want %d", st.WALRecords, total)
	}
	if st.Fsyncs+st.CoalescedSyncs < total {
		t.Errorf("fsyncs (%d) + coalesced (%d) < appends (%d): an append returned without durability",
			st.Fsyncs, st.CoalescedSyncs, total)
	}
	if st.CoalescedSyncs == 0 {
		t.Error("no appends coalesced under concurrent FsyncAlways load")
	}
	if st.Fsyncs >= total {
		t.Errorf("fsyncs = %d for %d appends: group commit saved nothing", st.Fsyncs, total)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	// Every acknowledged record survives the reopen.
	e2 := openTestEngine(t, dir, Options{})
	defer e2.Close()
	if got := e2.Series().Len(); got != total {
		t.Fatalf("recovered %d points, want %d", got, total)
	}
}

// TestGroupCommitSequential pins the uncontended path: a lone appender
// never waits on the group-commit machinery and still fsyncs every record.
func TestGroupCommitSequential(t *testing.T) {
	e := openTestEngine(t, t.TempDir(), Options{Fsync: FsyncAlways})
	defer e.Close()
	appendN(t, e, 0, 5)
	st := e.Stats()
	if st.Fsyncs < 5 {
		t.Errorf("sequential appends fsynced %d times, want >= 5", st.Fsyncs)
	}
	if st.CoalescedSyncs != 0 {
		t.Errorf("sequential appends coalesced %d times, want 0", st.CoalescedSyncs)
	}
}
