package storage

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/stream"
	"repro/internal/timeline"
)

// This file is the bi-temporal equivalence oracle: every AS OF
// reconstruction the engine performs (snapshot + partial WAL replay when
// the covered-txn watermark allows, full-log replay otherwise) must be
// byte-identical — under the canonical snapshot serialization — to the
// naive oracle that replays the first txn journal records into a fresh
// series. The oracle runs over synthetic DBLP at three scales, seeded
// random series, and retroactive-ingest histories.

// snapBytes canonicalizes a graph as its binary snapshot encoding.
func snapBytes(t *testing.T, g *core.Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Save(&buf, g); err != nil {
		t.Fatalf("Save: %v", err)
	}
	return buf.Bytes()
}

// oracleReplay is the naive reference: replay the first txn journal
// entries, in transaction order, into a fresh series.
func oracleReplay(t *testing.T, attrs []core.AttrSpec, journal []stream.JournalEntry, txn int) *core.Graph {
	t.Helper()
	s := stream.New(attrs...)
	for i, e := range journal[:txn] {
		var err error
		if e.Before != "" {
			_, err = s.AppendAt(e.Label, e.Snap, e.Before)
		} else {
			err = s.Append(e.Label, e.Snap)
		}
		if err != nil {
			t.Fatalf("oracle replay record %d: %v", i, err)
		}
	}
	g, err := s.Graph()
	if err != nil {
		t.Fatalf("oracle graph: %v", err)
	}
	return g
}

// assertReplayMatchesOracle sweeps the given transactions and compares the
// engine's reconstruction against the oracle byte for byte. It returns how
// many reconstructions took the snapshot-resume fast path.
func assertReplayMatchesOracle(t *testing.T, e *Engine, attrs []core.AttrSpec, txns []int) int {
	t.Helper()
	journal := e.Series().Journal()
	resumed := 0
	for _, txn := range txns {
		g, st, err := e.ReplayTo(txn)
		if err != nil {
			t.Fatalf("ReplayTo(%d): %v", txn, err)
		}
		if st.FromSnapshot {
			resumed++
		}
		want := snapBytes(t, oracleReplay(t, attrs, journal, txn))
		if got := snapBytes(t, g); !bytes.Equal(got, want) {
			t.Fatalf("ReplayTo(%d) diverges from full-replay oracle (%d vs %d bytes, from_snapshot=%v)",
				txn, len(got), len(want), st.FromSnapshot)
		}
	}
	return resumed
}

// graphBatches decomposes a generated graph into per-point ingest batches.
func graphBatches(g *core.Graph) (attrs []core.AttrSpec, labels []string, snaps []stream.Snapshot) {
	attrs = g.Attrs()
	tl := g.Timeline()
	for ti := 0; ti < tl.Len(); ti++ {
		var snap stream.Snapshot
		for n := 0; n < g.NumNodes(); n++ {
			id := core.NodeID(n)
			if !g.NodeTau(id).Contains(ti) {
				continue
			}
			rec := stream.NodeRecord{Label: g.NodeLabel(id)}
			for a, spec := range attrs {
				v := g.ValueString(core.AttrID(a), id, timeline.Time(ti))
				if v == "" {
					continue
				}
				if spec.Kind == core.Static {
					if rec.Static == nil {
						rec.Static = map[string]string{}
					}
					rec.Static[spec.Name] = v
				} else {
					if rec.Varying == nil {
						rec.Varying = map[string]string{}
					}
					rec.Varying[spec.Name] = v
				}
			}
			snap.Nodes = append(snap.Nodes, rec)
		}
		for eID := 0; eID < g.NumEdges(); eID++ {
			id := core.EdgeID(eID)
			if !g.EdgeTau(id).Contains(ti) {
				continue
			}
			ep := g.Edge(id)
			snap.Edges = append(snap.Edges, stream.EdgeRecord{
				U: g.NodeLabel(ep.U), V: g.NodeLabel(ep.V),
			})
		}
		labels = append(labels, tl.Label(timeline.Time(ti)))
		snaps = append(snaps, snap)
	}
	return attrs, labels, snaps
}

// TestReplayToOracleDBLP replays the synthetic DBLP stream at three scales
// and checks point-in-time reconstruction against the oracle at several
// transactions, with a mid-stream checkpoint so both the snapshot-resume
// and the full-replay paths are exercised.
func TestReplayToOracleDBLP(t *testing.T) {
	for _, scale := range []float64{0.01, 0.02, 0.04} {
		scale := scale
		t.Run(fmt.Sprintf("scale=%g", scale), func(t *testing.T) {
			attrs, labels, snaps := graphBatches(dataset.DBLPScaled(7, scale))
			dir := t.TempDir()
			e, err := Open(dir, attrs, Options{CheckpointRecords: -1})
			if err != nil {
				t.Fatal(err)
			}
			defer e.Close()
			for i, label := range labels {
				if err := e.Append(label, snaps[i]); err != nil {
					t.Fatalf("append %s: %v", label, err)
				}
				if i == len(labels)/2 {
					if err := e.Checkpoint(); err != nil {
						t.Fatalf("checkpoint: %v", err)
					}
				}
			}
			n := len(labels)
			resumed := assertReplayMatchesOracle(t, e, attrs, []int{1, n / 4, n / 2, 3 * n / 4, n})
			if resumed == 0 {
				t.Fatalf("no reconstruction took the snapshot-resume path despite a mid-stream checkpoint")
			}
		})
	}
}

// randomJournal drives n random batches into the engine, about a quarter
// of them retroactive at random positions; static values are a pure
// function of the node label so histories stay schema-consistent.
func randomJournal(t *testing.T, e *Engine, r *rand.Rand, n int) {
	t.Helper()
	var live []string
	for i := 0; i < n; i++ {
		label := fmt.Sprintf("p%d", i)
		var snap stream.Snapshot
		seen := map[string]bool{}
		for k := 0; k < 2+r.Intn(5); k++ {
			node := fmt.Sprintf("n%d", r.Intn(12))
			if seen[node] {
				continue
			}
			seen[node] = true
			gender := "f"
			if node[1]%2 == 0 {
				gender = "m"
			}
			snap.Nodes = append(snap.Nodes, stream.NodeRecord{
				Label:   node,
				Static:  map[string]string{"gender": gender},
				Varying: map[string]string{"pubs": fmt.Sprint(r.Intn(9))},
			})
		}
		for k := 0; k+1 < len(snap.Nodes); k++ {
			if r.Intn(2) == 0 {
				snap.Edges = append(snap.Edges, stream.EdgeRecord{
					U: snap.Nodes[k].Label, V: snap.Nodes[k+1].Label,
				})
			}
		}
		if len(live) > 0 && r.Intn(4) == 0 {
			before := live[r.Intn(len(live))]
			if _, err := e.AppendAt(label, snap, before); err != nil {
				t.Fatalf("AppendAt(%s before %s): %v", label, before, err)
			}
		} else if err := e.Append(label, snap); err != nil {
			t.Fatalf("Append(%s): %v", label, err)
		}
		live = append(live, label)
		if i%10 == 9 {
			if err := e.Checkpoint(); err != nil {
				t.Fatalf("checkpoint at %d: %v", i, err)
			}
		}
	}
}

// TestReplayToOracleRandomRetroactive sweeps EVERY transaction of a random
// history interleaving tail appends, retroactive inserts and checkpoints.
func TestReplayToOracleRandomRetroactive(t *testing.T) {
	for _, seed := range []int64{1, 2} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			e, err := Open(dir, testAttrs, Options{CheckpointRecords: -1})
			if err != nil {
				t.Fatal(err)
			}
			defer e.Close()
			const n = 30
			randomJournal(t, e, rand.New(rand.NewSource(seed)), n)
			txns := make([]int, n)
			for i := range txns {
				txns[i] = i + 1
			}
			assertReplayMatchesOracle(t, e, testAttrs, txns)
		})
	}
}

// TestReplayToSurvivesCrashRestart abandons the engine without Close (the
// kill -9 shape: FsyncAlways, so every acknowledged record is on disk) and
// checks that the reopened engine reconstructs every transaction — before
// and after the snapshot watermark — identically to the oracle.
func TestReplayToSurvivesCrashRestart(t *testing.T) {
	dir := t.TempDir()
	e := openTestEngine(t, dir, Options{Fsync: FsyncAlways, CheckpointRecords: -1})
	appendN(t, e, 0, 6)
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	appendN(t, e, 6, 10)
	// Retroactive tail: t10 lands before t3, after the checkpoint.
	label, snap := testBatch(10)
	if _, err := e.AppendAt(label, snap, "t3"); err != nil {
		t.Fatal(err)
	}
	// No Close — the reopened engine must rebuild the txn axis from disk.
	e2 := openTestEngine(t, dir, Options{Fsync: FsyncAlways, CheckpointRecords: -1})
	defer e2.Close()
	if got := e2.TxnSeq(); got != 11 {
		t.Fatalf("recovered TxnSeq %d, want 11", got)
	}
	txns := []int{1, 3, 6, 7, 10, 11}
	resumed := assertReplayMatchesOracle(t, e2, testAttrs, txns)
	// txn 7..10 sit on the snapshot (covers 6) with an append-only delta;
	// txn 11's delta carries the retroactive record and must fall back.
	if resumed == 0 {
		t.Fatalf("no post-checkpoint reconstruction used the snapshot")
	}
	g, st, err := e2.ReplayTo(11)
	if err != nil {
		t.Fatal(err)
	}
	if st.FromSnapshot {
		t.Fatalf("retroactive delta unexpectedly took the snapshot-resume path: %+v", st)
	}
	if g.Timeline().Len() != 11 {
		t.Fatalf("head reconstruction has %d points, want 11", g.Timeline().Len())
	}
}
