package storage

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"unsafe"

	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/dict"
	"repro/internal/timeline"
)

// Mapped is a snapshot served directly out of a file mapping: the graph's
// existence words, edge endpoints and attribute code columns alias the
// mapped bytes instead of being decoded and copied. Close unmaps the file;
// the graph (and anything derived from it) must not be used afterwards,
// so long-lived servers keep the Mapped open for the process lifetime.
type Mapped struct {
	*Snapshot

	// Source records which path produced the snapshot: "mmap" (zero-copy
	// file mapping), "heap" (zero-copy over a read-into-memory buffer, on
	// platforms without mmap) or "decode" (full v1 decode fallback).
	Source string

	data  []byte
	unmap func([]byte) error
}

// Close releases the mapping (or buffer). Safe to call more than once.
func (m *Mapped) Close() error {
	data, unmap := m.data, m.unmap
	m.data, m.unmap = nil, nil
	if data != nil && unmap != nil {
		return unmap(data)
	}
	return nil
}

// OpenMapped opens a snapshot file for zero-copy serving. Version-2 files
// are memory-mapped and their columns aliased in place, making boot time
// independent of graph size (O(sections + V+E pointers), no column decode);
// on platforms without mmap the file is read into one buffer and aliased
// the same way. Version-1 files fall back to the regular decode path.
//
// The mapped path validates structure — framed meta sections keep their
// checksums, blob regions are bounds- and shape-checked, existence words
// are checked against the timeline length — but does not checksum the blob
// bytes (that would page the whole file in, defeating the point); use Load
// when full verification matters more than boot latency. Little-endian
// hosts serve the mapping directly; the decode fallback keeps big-endian
// hosts correct.
func OpenMapped(path string) (*Mapped, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var hdr [10]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: snapshot header", ErrTruncated)
	}
	if string(hdr[:8]) != snapMagic {
		return nil, fmt.Errorf("%w: want %q", ErrBadMagic, snapMagic)
	}
	v := binary.LittleEndian.Uint16(hdr[8:10])
	if v != formatVersion || !hostLittleEndian() {
		// v1 files (and big-endian hosts) cannot be served in place.
		snap, err := LoadFile(path)
		if err != nil {
			return nil, err
		}
		return &Mapped{Snapshot: snap, Source: "decode"}, nil
	}
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	data, unmap, source, err := mapOrRead(f, fi.Size())
	if err != nil {
		return nil, err
	}
	m := &Mapped{Source: source, data: data, unmap: unmap}
	p, err := parseV2(data, false)
	if err == nil {
		m.Snapshot, err = snapshotFromParsed(p)
	}
	if err != nil {
		m.Close()
		return nil, err
	}
	return m, nil
}

// mapOrRead maps the file when the platform supports it and falls back to
// reading it into an anonymous buffer otherwise.
func mapOrRead(f *os.File, size int64) ([]byte, func([]byte) error, string, error) {
	if data, unmap, err := mmapFile(f, size); err == nil {
		return data, unmap, "mmap", nil
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, nil, "", err
	}
	data := make([]byte, size)
	if _, err := io.ReadFull(f, data); err != nil {
		return nil, nil, "", err
	}
	return data, nil, "heap", nil
}

// snapshotFromParsed assembles a graph over the parsed blob regions
// without copying the columns. Cheap semantic checks that the builder
// would otherwise provide are done here (distinct labels, tau words
// trimmed to the timeline); FromColumns adds the structural ones.
func snapshotFromParsed(p *parsedV2) (*Snapshot, error) {
	tl, err := timeline.New(p.labels...)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	T := tl.Len()
	wpt := p.wordsPerTau
	nNodes, nEdges := len(p.nodes), p.nEdges

	dicts := make([]*dict.Dict, len(p.attrs))
	for i, values := range p.dicts {
		seen := make(map[string]bool, len(values))
		for _, v := range values {
			if seen[v] {
				return nil, fmt.Errorf("%w: duplicate dictionary value %q", ErrCorrupt, v)
			}
			seen[v] = true
		}
		dicts[i] = dict.FromValues(values)
	}
	nodeSeen := make(map[string]bool, nNodes)
	for _, label := range p.nodes {
		if nodeSeen[label] {
			return nil, fmt.Errorf("%w: duplicate node label %q", ErrCorrupt, label)
		}
		nodeSeen[label] = true
	}

	nodeWords := aliasSlice[uint64](p.nodeTauB)
	edgeWords := aliasSlice[uint64](p.edgeTauB)
	nodeTau, err := tauSets(nodeWords, nNodes, wpt, T)
	if err != nil {
		return nil, err
	}
	edgeTau, err := tauSets(edgeWords, nEdges, wpt, T)
	if err != nil {
		return nil, err
	}

	cols := core.Columns{
		Timeline:   tl,
		Attrs:      p.attrs,
		Dicts:      dicts,
		NodeLabels: p.nodes,
		NodeTau:    nodeTau,
		Edges:      aliasSlice[core.Endpoints](p.edgesB),
		EdgeTau:    edgeTau,
		Static:     make([][]dict.Code, len(p.attrs)),
		Varying:    make([][]dict.Code, len(p.attrs)),
	}
	si, vi := 0, 0
	for ai, a := range p.attrs {
		var col []dict.Code
		switch a.Kind {
		case core.Static:
			col = aliasSlice[dict.Code](p.staticB[si])
			cols.Static[ai] = col
			si++
		case core.TimeVarying:
			col = aliasSlice[dict.Code](p.varyingB[vi])
			cols.Varying[ai] = col
			vi++
		}
		// One linear scan keeps out-of-domain codes from panicking inside
		// dictionary lookups later; it reads, never decodes.
		domain := dict.Code(len(p.dicts[ai]))
		for _, c := range col {
			if c < dict.None || c >= domain {
				return nil, fmt.Errorf("%w: attr %d code %d beyond dictionary of %d values", ErrCorrupt, ai, c, domain)
			}
		}
	}
	if len(p.nodeRuns)+len(p.edgeRuns) > 0 {
		cols.NodeTauVec = placeRuns(p.nodeRuns, nNodes)
		cols.EdgeTauVec = placeRuns(p.edgeRuns, nEdges)
	}
	g, err := core.FromColumns(cols)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}

	snap := &Snapshot{Graph: g, points: p.points, coveredTxn: p.coveredTxn}
	for _, sp := range p.storeSpecs {
		st, err := rebuildStore(g, sp)
		if err != nil {
			return nil, err
		}
		snap.Stores = append(snap.Stores, st)
	}
	return snap, nil
}

// tauSets wraps per-entity windows of a flat word column as bitsets,
// rejecting set bits at or beyond the timeline length (the writer trims
// them; anything else indicates corruption and would skew counts).
func tauSets(words []uint64, n, wpt, T int) ([]*bitset.Set, error) {
	var tailMask uint64
	if T%64 != 0 {
		tailMask = ^uint64(0) << (T % 64)
	}
	out := make([]*bitset.Set, n)
	for i := range out {
		w := words[i*wpt : (i+1)*wpt : (i+1)*wpt]
		if tailMask != 0 && wpt > 0 && w[wpt-1]&tailMask != 0 {
			return nil, fmt.Errorf("%w: existence bits beyond timeline of %d points", ErrCorrupt, T)
		}
		out[i] = bitset.FromWords(T, w)
	}
	return out, nil
}

// placeRuns expands an index-ordered run list to a per-entity vector slice
// (nil = dense), the form core.Columns adopts.
func placeRuns(list []idxRuns, n int) []bitset.Vector {
	vecs := make([]bitset.Vector, n)
	for _, ir := range list {
		vecs[ir.idx] = ir.r
	}
	return vecs
}

// aliasSlice reinterprets a little-endian blob as a typed slice without
// copying. parseV2 guarantees 8-aligned offsets and mapOrRead's buffers are
// at least word-aligned, so the element alignment requirement holds for
// every T used here (uint64, int32 pairs, int32 codes).
func aliasSlice[T any](b []byte) []T {
	var zero T
	sz := int(unsafe.Sizeof(zero))
	if len(b) < sz {
		return nil
	}
	if uintptr(unsafe.Pointer(&b[0]))%uintptr(unsafe.Alignof(zero)) != 0 {
		// Misaligned base (cannot happen for mmap; heap buffers are
		// 8-aligned in practice) — fall back to a copy.
		cp := make([]byte, len(b))
		copy(cp, b)
		b = cp
	}
	return unsafe.Slice((*T)(unsafe.Pointer(&b[0])), len(b)/sz)
}

// hostLittleEndian reports whether the in-place column layout matches the
// host byte order.
func hostLittleEndian() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}

// MappedGraph opens path with OpenMapped and returns only the graph, the
// zero-copy counterpart of LoadGraph. The returned closer owns the
// mapping.
func MappedGraph(path string) (*core.Graph, *Mapped, error) {
	m, err := OpenMapped(path)
	if err != nil {
		return nil, nil, err
	}
	return m.Graph, m, nil
}
