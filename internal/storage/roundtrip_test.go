package storage

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/gtest"
	"repro/internal/materialize"
	"repro/internal/timeline"
)

// graphsEqual compares two graphs structurally by decoded values, so the
// comparison is independent of internal dictionary code assignment.
func graphsEqual(t *testing.T, a, b *core.Graph) {
	t.Helper()
	la, lb := a.Timeline().Labels(), b.Timeline().Labels()
	if fmt.Sprint(la) != fmt.Sprint(lb) {
		t.Fatalf("timelines differ: %v vs %v", la, lb)
	}
	if fmt.Sprint(a.Attrs()) != fmt.Sprint(b.Attrs()) {
		t.Fatalf("schemas differ: %v vs %v", a.Attrs(), b.Attrs())
	}
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("sizes differ: %d/%d nodes, %d/%d edges",
			a.NumNodes(), b.NumNodes(), a.NumEdges(), b.NumEdges())
	}
	T := a.Timeline().Len()
	for n := 0; n < a.NumNodes(); n++ {
		id := core.NodeID(n)
		if a.NodeLabel(id) != b.NodeLabel(id) {
			t.Fatalf("node %d label %q vs %q", n, a.NodeLabel(id), b.NodeLabel(id))
		}
		if !a.NodeTau(id).Equal(b.NodeTau(id)) {
			t.Fatalf("node %d tau %v vs %v", n, a.NodeTau(id), b.NodeTau(id))
		}
		for ai := 0; ai < a.NumAttrs(); ai++ {
			for tt := 0; tt < T; tt++ {
				va := a.ValueString(core.AttrID(ai), id, timeline.Time(tt))
				vb := b.ValueString(core.AttrID(ai), id, timeline.Time(tt))
				if va != vb {
					t.Fatalf("node %d attr %d at t%d: %q vs %q", n, ai, tt, va, vb)
				}
			}
		}
	}
	for e := 0; e < a.NumEdges(); e++ {
		id := core.EdgeID(e)
		if a.Edge(id) != b.Edge(id) {
			t.Fatalf("edge %d endpoints %v vs %v", e, a.Edge(id), b.Edge(id))
		}
		if !a.EdgeTau(id).Equal(b.EdgeTau(id)) {
			t.Fatalf("edge %d tau %v vs %v", e, a.EdgeTau(id), b.EdgeTau(id))
		}
	}
}

func roundTrip(t *testing.T, g *core.Graph, stores ...*materialize.Store) *Snapshot {
	t.Helper()
	var buf bytes.Buffer
	if err := Save(&buf, g, stores...); err != nil {
		t.Fatalf("Save: %v", err)
	}
	snap, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	graphsEqual(t, g, snap.Graph)
	return snap
}

func TestRoundTripDBLPScales(t *testing.T) {
	scales := []float64{0.004, 0.01, 0.03}
	if testing.Short() {
		scales = scales[:2]
	}
	for _, scale := range scales {
		t.Run(fmt.Sprintf("scale=%g", scale), func(t *testing.T) {
			roundTrip(t, dataset.DBLPScaled(7, scale))
		})
	}
}

func TestRoundTripMovieLens(t *testing.T) {
	roundTrip(t, dataset.MovieLensScaled(11, 0.002))
}

func TestRoundTripRandomGraphs(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	p := gtest.DefaultParams()
	for i := 0; i < 50; i++ {
		roundTrip(t, gtest.RandomGraph(r, p))
	}
}

func TestRoundTripStores(t *testing.T) {
	g := dataset.DBLPScaled(3, 0.01)
	gender := g.MustAttr("gender")
	pubs := g.MustAttr("publications")
	st1 := materialize.NewStore(g, agg.MustSchema(g, gender))
	st2 := materialize.NewStore(g, agg.MustSchema(g, gender, pubs))
	snap := roundTrip(t, g, st1, st2)
	if len(snap.Stores) != 2 {
		t.Fatalf("got %d stores, want 2", len(snap.Stores))
	}
	for i, orig := range []*materialize.Store{st1, st2} {
		got := snap.Stores[i]
		so, sg := orig.Schema(), got.Schema()
		if fmt.Sprint(so.Attrs()) != fmt.Sprint(sg.Attrs()) {
			t.Fatalf("store %d attrs %v vs %v", i, so.Attrs(), sg.Attrs())
		}
		for tt := 0; tt < g.Timeline().Len(); tt++ {
			po, pg := orig.Point(timeline.Time(tt)), got.Point(timeline.Time(tt))
			if len(po.Nodes) != len(pg.Nodes) || len(po.Edges) != len(pg.Edges) {
				t.Fatalf("store %d point %d: %d/%d nodes, %d/%d edges",
					i, tt, len(po.Nodes), len(pg.Nodes), len(po.Edges), len(pg.Edges))
			}
			for tu, w := range po.Nodes {
				gtu, ok := sg.Encode(so.Decode(tu)...)
				if !ok || pg.Nodes[gtu] != w {
					t.Fatalf("store %d point %d tuple %v: weight %d missing or wrong", i, tt, so.Decode(tu), w)
				}
			}
			for k, w := range po.Edges {
				gfrom, ok1 := sg.Encode(so.Decode(k.From)...)
				gto, ok2 := sg.Encode(so.Decode(k.To)...)
				if !ok1 || !ok2 || pg.Edges[agg.EdgeKey{From: gfrom, To: gto}] != w {
					t.Fatalf("store %d point %d edge %v→%v: weight %d missing or wrong",
						i, tt, so.Decode(k.From), so.Decode(k.To), w)
				}
			}
		}
	}
}

func TestSaveFileAtomicAndLoadFile(t *testing.T) {
	g := dataset.DBLPScaled(5, 0.004)
	path := filepath.Join(t.TempDir(), "g.gts")
	if err := SaveFile(path, g); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	got, err := LoadGraph(path)
	if err != nil {
		t.Fatalf("LoadGraph: %v", err)
	}
	graphsEqual(t, g, got)
	// Overwrite in place with a different graph: readers must never see a
	// partial file, and the new content wins.
	g2 := dataset.DBLPScaled(6, 0.004)
	if err := SaveFile(path, g2); err != nil {
		t.Fatalf("SaveFile overwrite: %v", err)
	}
	got2, err := LoadGraph(path)
	if err != nil {
		t.Fatalf("LoadGraph after overwrite: %v", err)
	}
	graphsEqual(t, g2, got2)
}

func TestSaveRejectsForeignStore(t *testing.T) {
	g1 := dataset.DBLPScaled(1, 0.004)
	g2 := dataset.DBLPScaled(2, 0.004)
	st := materialize.NewStore(g1, agg.MustSchema(g1, g1.MustAttr("gender")))
	var buf bytes.Buffer
	if err := Save(&buf, g2, st); err == nil {
		t.Fatal("Save accepted a store built on a different graph")
	}
}
