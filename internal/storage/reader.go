package storage

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/bits"
	"os"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/materialize"
	"repro/internal/timeline"
)

// Snapshot is the decoded content of one snapshot file.
type Snapshot struct {
	// Graph is the reconstructed temporal attributed graph.
	Graph *core.Graph
	// Stores are the materialized per-point aggregate vectors saved with
	// the graph, rebuilt against Graph's schema; empty when none were
	// saved.
	Stores []*materialize.Store

	// points are the raw ingest records of a stream-mode checkpoint, used
	// by Engine recovery to reproduce the exact append sequence.
	points []seriesPoint
	// coveredTxn is the transaction-time watermark the snapshot covers; 0
	// for files written before the bi-temporal format extension.
	coveredTxn int
}

// CoveredTxn returns the highest transaction sequence number the snapshot
// covers. Files written before the watermark existed carry none; for them
// the embedded record count is the watermark, because every record is one
// transaction.
func (s *Snapshot) CoveredTxn() int {
	if s.coveredTxn > 0 {
		return s.coveredTxn
	}
	return len(s.points)
}

// Load reads a snapshot from r, accepting both format versions (v1 framed
// columns and v2 blob layout). It never panics on malformed input: every
// failure wraps one of ErrBadMagic, ErrVersion, ErrTruncated, ErrChecksum
// or ErrCorrupt.
func Load(r io.Reader) (*Snapshot, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var hdr [10]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: snapshot header", ErrTruncated)
	}
	if string(hdr[:8]) != snapMagic {
		return nil, fmt.Errorf("%w: want %q", ErrBadMagic, snapMagic)
	}
	switch v := binary.LittleEndian.Uint16(hdr[8:10]); v {
	case formatVersionV1:
		// fall through to the streaming v1 loader below
	case formatVersion:
		rest, err := io.ReadAll(br)
		if err != nil {
			return nil, err
		}
		return loadV2(append(hdr[:], rest...))
	default:
		return nil, fmt.Errorf("%w: file version %d, reader accepts %d and %d",
			ErrVersion, v, formatVersionV1, formatVersion)
	}

	ld := &snapLoader{}
	for {
		payload, err := readRecord(br)
		if err == io.EOF {
			return nil, fmt.Errorf("%w: no end section", ErrTruncated)
		}
		if err != nil {
			return nil, err
		}
		if len(payload) == 0 {
			return nil, fmt.Errorf("%w: empty section record", ErrCorrupt)
		}
		if payload[0] == secEnd {
			break
		}
		if err := ld.section(payload[0], &dec{b: payload[1:]}); err != nil {
			return nil, err
		}
	}
	return ld.finish()
}

// LoadFile reads a snapshot from path.
func LoadFile(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// LoadGraph is LoadFile returning only the graph — the common case for
// tools and benchmarks that exported a dataset with gtgen -format=binary.
func LoadGraph(path string) (*core.Graph, error) {
	snap, err := LoadFile(path)
	if err != nil {
		return nil, err
	}
	return snap.Graph, nil
}

// snapLoader accumulates decoded sections and assembles the graph once the
// end marker arrives. Sections must arrive in writer order; missing
// mandatory sections surface at finish.
type snapLoader struct {
	labels   []string
	attrs    []core.AttrSpec
	dicts    [][]string // value by code, per attribute
	nodes    []string
	nodeTaus [][]uint64
	edges    [][2]uint64
	edgeTaus [][]uint64
	static   [][]uint64 // code+1 per node, per static attr (attr order)
	varying  [][]uint64 // code+1 per node*T, per varying attr

	storeSpecs []storeSpec
	points     []seriesPoint
	coveredTxn int

	seen map[byte]bool
}

type storeSpec struct {
	attrs  []core.AttrID
	points []storePoint
}

type storePoint struct {
	nodes []storeEntry
	edges []storeEdge
}

type storeEntry struct {
	values []string
	weight int64
}

type storeEdge struct {
	from, to []string
	weight   int64
}

func (ld *snapLoader) section(id byte, d *dec) error {
	if ld.seen == nil {
		ld.seen = make(map[byte]bool)
	}
	if ld.seen[id] {
		return fmt.Errorf("%w: duplicate section %d", ErrCorrupt, id)
	}
	ld.seen[id] = true
	switch id {
	case secTimeline:
		ld.labels = d.strs()
	case secSchema:
		n := d.count(2)
		for i := 0; i < n && d.err == nil; i++ {
			name := d.str()
			kind := d.byteVal()
			if kind > byte(core.TimeVarying) {
				d.fail("bad attribute kind %d", kind)
			}
			ld.attrs = append(ld.attrs, core.AttrSpec{Name: name, Kind: core.AttrKind(kind)})
			ld.dicts = append(ld.dicts, d.strs())
		}
	case secNodes:
		ld.nodes = d.strs()
	case secNodeTau:
		ld.nodeTaus = d.taus(len(ld.nodes))
	case secEdges:
		n := d.count(2)
		nNodes := uint64(len(ld.nodes))
		for i := 0; i < n && d.err == nil; i++ {
			u, v := d.uvarint(), d.uvarint()
			if u >= nNodes || v >= nNodes {
				d.fail("edge (%d,%d) references node beyond %d", u, v, nNodes)
			}
			ld.edges = append(ld.edges, [2]uint64{u, v})
		}
	case secEdgeTau:
		ld.edgeTaus = d.taus(len(ld.edges))
	case secStatic:
		for ai := range ld.attrs {
			if ld.attrs[ai].Kind != core.Static {
				continue
			}
			col := ld.codeColumn(d, len(ld.nodes), len(ld.dicts[ai]))
			ld.static = append(ld.static, col)
		}
	case secVarying:
		for ai := range ld.attrs {
			if ld.attrs[ai].Kind != core.TimeVarying {
				continue
			}
			col := ld.codeColumn(d, len(ld.nodes)*len(ld.labels), len(ld.dicts[ai]))
			ld.varying = append(ld.varying, col)
		}
	case secStores:
		n := d.count(1)
		for i := 0; i < n && d.err == nil; i++ {
			ld.storeSpecs = append(ld.storeSpecs, ld.readStore(d))
		}
	case secSeries:
		n := d.count(1)
		for i := 0; i < n && d.err == nil; i++ {
			m := d.count(1)
			if d.err == nil && m > d.remaining() {
				d.fail("series record length %d exceeds remaining %d", m, d.remaining())
			}
			if d.err == nil {
				ld.points = append(ld.points, seriesPoint{payload: append([]byte(nil), d.b[d.off:d.off+m]...)})
				d.off += m
			}
		}
	case secTxnMeta:
		ld.coveredTxn = int(d.uvarint())
	default:
		return fmt.Errorf("%w: unknown section %d", ErrCorrupt, id)
	}
	if d.err != nil {
		return fmt.Errorf("section %d: %w", id, d.err)
	}
	if d.remaining() != 0 {
		return fmt.Errorf("%w: section %d has %d trailing bytes", ErrCorrupt, id, d.remaining())
	}
	return nil
}

// taus decodes n flat bitsets of w words each.
func (d *dec) taus(n int) [][]uint64 {
	w := d.count(0)
	if d.err != nil {
		return nil
	}
	if int64(n)*int64(w)*8 > int64(d.remaining()) {
		d.fail("tau block %d×%d words exceeds remaining %d bytes", n, w, d.remaining())
		return nil
	}
	out := make([][]uint64, n)
	for i := range out {
		words := make([]uint64, w)
		for j := range words {
			words[j] = d.u64()
		}
		out[i] = words
	}
	return out
}

// codeColumn decodes n code+1 values, each < domain+1.
func (ld *snapLoader) codeColumn(d *dec, n, domain int) []uint64 {
	if int64(n) > int64(d.remaining()) {
		d.fail("code column of %d cells exceeds remaining %d bytes", n, d.remaining())
		return nil
	}
	col := make([]uint64, n)
	for i := range col {
		v := d.uvarint()
		if d.err != nil {
			return nil
		}
		if v > uint64(domain) {
			d.fail("code %d beyond dictionary of %d values", v, domain)
			return nil
		}
		col[i] = v
	}
	return col
}

func (ld *snapLoader) readStore(d *dec) storeSpec {
	var sp storeSpec
	na := d.count(1)
	for i := 0; i < na && d.err == nil; i++ {
		a := d.uvarint()
		if a >= uint64(len(ld.attrs)) {
			d.fail("store attribute id %d beyond schema of %d", a, len(ld.attrs))
			return sp
		}
		sp.attrs = append(sp.attrs, core.AttrID(a))
	}
	T := len(ld.labels)
	for t := 0; t < T && d.err == nil; t++ {
		var pt storePoint
		nn := d.count(1)
		for i := 0; i < nn && d.err == nil; i++ {
			pt.nodes = append(pt.nodes, storeEntry{values: d.strsN(len(sp.attrs)), weight: d.varint()})
		}
		ne := d.count(1)
		for i := 0; i < ne && d.err == nil; i++ {
			pt.edges = append(pt.edges, storeEdge{
				from:   d.strsN(len(sp.attrs)),
				to:     d.strsN(len(sp.attrs)),
				weight: d.varint(),
			})
		}
		sp.points = append(sp.points, pt)
	}
	return sp
}

// finish validates cross-section invariants and assembles the graph
// through the core builder, whose own validation (edge existence within
// endpoint lifetimes, non-empty timestamps) is the last corruption gate.
func (ld *snapLoader) finish() (*Snapshot, error) {
	for _, id := range []byte{secTimeline, secSchema, secNodes, secNodeTau, secEdges, secEdgeTau, secStatic, secVarying} {
		if !ld.seen[id] {
			return nil, fmt.Errorf("%w: missing section %d", ErrCorrupt, id)
		}
	}
	tl, err := timeline.New(ld.labels...)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	T := tl.Len()
	b := core.NewBuilder(tl, ld.attrs...)
	// Seed each dictionary with the saved value order so codes (and
	// therefore the byte encoding of a re-save) survive the roundtrip;
	// the column loops below re-intern idempotently.
	for ai := range ld.attrs {
		if ai < len(ld.dicts) {
			b.InternValues(core.AttrID(ai), ld.dicts[ai]...)
		}
	}
	nodeSeen := make(map[string]bool, len(ld.nodes))
	for _, label := range ld.nodes {
		if nodeSeen[label] {
			return nil, fmt.Errorf("%w: duplicate node label %q", ErrCorrupt, label)
		}
		nodeSeen[label] = true
		b.AddNode(label)
	}
	for n, words := range ld.nodeTaus {
		if err := setBits(words, T, func(t int) { b.SetNodeTime(core.NodeID(n), timeline.Time(t)) }); err != nil {
			return nil, err
		}
	}
	edgeSeen := make(map[[2]uint64]bool, len(ld.edges))
	for _, ep := range ld.edges {
		if edgeSeen[ep] {
			return nil, fmt.Errorf("%w: duplicate edge (%d,%d)", ErrCorrupt, ep[0], ep[1])
		}
		edgeSeen[ep] = true
		b.AddEdge(core.NodeID(ep[0]), core.NodeID(ep[1]))
	}
	for e, words := range ld.edgeTaus {
		if err := setBits(words, T, func(t int) { b.SetEdgeTime(core.EdgeID(e), timeline.Time(t)) }); err != nil {
			return nil, err
		}
	}
	si, vi := 0, 0
	for ai, a := range ld.attrs {
		switch a.Kind {
		case core.Static:
			col := ld.static[si]
			si++
			for n, c := range col {
				if c != 0 {
					b.SetStatic(core.AttrID(ai), core.NodeID(n), ld.dicts[ai][c-1])
				}
			}
		case core.TimeVarying:
			col := ld.varying[vi]
			vi++
			for i, c := range col {
				if c != 0 {
					b.SetVarying(core.AttrID(ai), core.NodeID(i/T), timeline.Time(i%T), ld.dicts[ai][c-1])
				}
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}

	snap := &Snapshot{Graph: g, points: ld.points, coveredTxn: ld.coveredTxn}
	for _, sp := range ld.storeSpecs {
		st, err := rebuildStore(g, sp)
		if err != nil {
			return nil, err
		}
		snap.Stores = append(snap.Stores, st)
	}
	return snap, nil
}

// setBits replays the set bits of a flat word array through fn, rejecting
// bits at or beyond the timeline length.
func setBits(words []uint64, T int, fn func(t int)) error {
	for wi, w := range words {
		base := wi * 64
		for w != 0 {
			t := base + bits.TrailingZeros64(w)
			if t >= T {
				return fmt.Errorf("%w: existence bit %d beyond timeline of %d points", ErrCorrupt, t, T)
			}
			fn(t)
			w &= w - 1
		}
	}
	return nil
}

// rebuildStore re-encodes a decoded store spec against the reconstructed
// graph's dictionaries.
func rebuildStore(g *core.Graph, sp storeSpec) (*materialize.Store, error) {
	s, err := agg.NewSchema(g, sp.attrs...)
	if err != nil {
		return nil, fmt.Errorf("%w: store schema: %v", ErrCorrupt, err)
	}
	perPoint := make([]*agg.Graph, len(sp.points))
	for t, pt := range sp.points {
		ag := &agg.Graph{
			Schema: s,
			Kind:   agg.All,
			Nodes:  make(map[agg.Tuple]int64, len(pt.nodes)),
			Edges:  make(map[agg.EdgeKey]int64, len(pt.edges)),
		}
		for _, n := range pt.nodes {
			tu, ok := s.Encode(n.values...)
			if !ok {
				return nil, fmt.Errorf("%w: store tuple %v not in attribute domain", ErrCorrupt, n.values)
			}
			ag.Nodes[tu] = n.weight
		}
		for _, e := range pt.edges {
			from, ok1 := s.Encode(e.from...)
			to, ok2 := s.Encode(e.to...)
			if !ok1 || !ok2 {
				return nil, fmt.Errorf("%w: store edge tuple %v→%v not in attribute domain", ErrCorrupt, e.from, e.to)
			}
			ag.Edges[agg.EdgeKey{From: from, To: to}] = e.weight
		}
		perPoint[t] = ag
	}
	st, err := materialize.NewStoreFromPoints(s, perPoint)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return st, nil
}

// errorsIsAny reports whether err wraps any of the given targets; used by
// recovery to decide whether a snapshot file is unusable (fall back to an
// earlier generation) versus an IO failure that should abort.
func errorsIsAny(err error, targets ...error) bool {
	for _, t := range targets {
		if errors.Is(err, t) {
			return true
		}
	}
	return false
}
