package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
)

// recover loads the directory state into e: series, generation, active
// WAL writer, and the RecoveryInfo describing what happened.
//
// Recovery order:
//
//  1. Remove leftover .tmp files (incomplete snapshot writes).
//  2. Load the newest snapshot that passes validation; a corrupt snapshot
//     is logged and the next older one tried, because the WAL segments it
//     would have replaced are only garbage-collected after a successful
//     rename — an older snapshot plus its segments is always complete.
//  3. Replay every WAL segment with generation ≥ the loaded snapshot's,
//     in ascending order. Only the newest segment may carry a torn tail
//     (rotation syncs a segment before creating its successor); the tail
//     is truncated to the last complete record.
//  4. Garbage-collect snapshots and segments older than the recovered
//     generation, and open the newest segment for append (creating
//     segment <gen> if none exists).
func (e *Engine) recover(attrs []core.AttrSpec) error {
	start := time.Now()
	snaps, segs, err := e.scan()
	if err != nil {
		return err
	}

	// Newest loadable snapshot wins.
	var (
		loaded  *Snapshot
		snapGen uint64
	)
	for i := len(snaps) - 1; i >= 0; i-- {
		gen := snaps[i]
		s, lerr := LoadFile(filepath.Join(e.dir, snapName(gen)))
		if lerr == nil {
			loaded, snapGen = s, gen
			break
		}
		if !errorsIsAny(lerr, ErrBadMagic, ErrVersion, ErrTruncated, ErrChecksum, ErrCorrupt) {
			return lerr // IO error: do not silently fall back
		}
		e.log.Warn("snapshot unusable, trying previous generation",
			"file", snapName(gen), "err", lerr)
	}

	if loaded != nil {
		e.series, err = seriesFromSnapshot(loaded, attrs)
		if err != nil {
			return err
		}
		for _, p := range loaded.points {
			e.raw = append(e.raw, p.payload)
		}
		e.recovery.SnapshotGeneration = snapGen
		e.recovery.SnapshotPoints = e.series.Len()
		e.snapGen = snapGen
		e.snapTxn = loaded.CoveredTxn()
	} else {
		e.series = newSeries(attrs)
	}
	e.gen = snapGen

	// Replay segments at or after the snapshot generation.
	var replaySegs []uint64
	for _, gen := range segs {
		if gen >= snapGen {
			replaySegs = append(replaySegs, gen)
		}
	}
	for i, gen := range replaySegs {
		path := filepath.Join(e.dir, walName(gen))
		records, goodLen, torn, rerr := replayWAL(path, func(payload []byte) error {
			if aerr := replayRecord(e.series, payload); aerr != nil {
				return aerr
			}
			e.raw = append(e.raw, append([]byte(nil), payload...))
			return nil
		})
		if rerr != nil {
			return fmt.Errorf("replay %s: %w", walName(gen), rerr)
		}
		if torn {
			if i != len(replaySegs)-1 {
				return fmt.Errorf("%w: non-final wal segment %s has a torn tail", ErrCorrupt, walName(gen))
			}
			fi, serr := os.Stat(path)
			if serr == nil {
				e.recovery.TruncatedBytes = fi.Size() - goodLen
			}
			e.log.Warn("wal tail truncated to last complete record",
				"file", walName(gen), "records", records, "discarded_bytes", e.recovery.TruncatedBytes)
		}
		e.recovery.WALRecords += records
		e.recovery.WALSegments++
		if gen > e.gen {
			e.gen = gen
		}
		if i == len(replaySegs)-1 {
			e.wal, err = openWALForAppend(path, goodLen)
			if err != nil {
				return err
			}
			e.segRecords = records
		}
	}
	if e.wal == nil {
		e.wal, err = createWAL(filepath.Join(e.dir, walName(e.gen)), e.gen)
		if err != nil {
			return err
		}
		if err := syncDir(e.dir); err != nil {
			return err
		}
	}

	e.gcBefore(e.gen, snapGen)
	e.recovery.Elapsed = time.Since(start)
	if e.recovery.SnapshotPoints > 0 || e.recovery.WALRecords > 0 {
		e.log.Info("storage recovered",
			"dir", e.dir, "generation", e.gen,
			"snapshot_points", e.recovery.SnapshotPoints,
			"wal_records", e.recovery.WALRecords,
			"truncated_bytes", e.recovery.TruncatedBytes,
			"elapsed", e.recovery.Elapsed.Round(time.Millisecond).String())
	}
	return nil
}

// scan lists snapshot and segment generations (ascending) and removes
// leftover temporary files.
func (e *Engine) scan() (snaps, segs []uint64, err error) {
	entries, err := os.ReadDir(e.dir)
	if err != nil {
		return nil, nil, err
	}
	for _, ent := range entries {
		name := ent.Name()
		if strings.HasSuffix(name, ".tmp") {
			os.Remove(filepath.Join(e.dir, name))
			continue
		}
		if gen, ok := parseGen(name, "snapshot-", ".gts"); ok {
			snaps = append(snaps, gen)
		}
		if gen, ok := parseGen(name, "wal-", ".log"); ok {
			segs = append(segs, gen)
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	return snaps, segs, nil
}

// gcBefore removes snapshots older than keepSnap and segments older than
// keepSeg — files a completed checkpoint made redundant but whose removal
// was interrupted.
func (e *Engine) gcBefore(keepSeg, keepSnap uint64) {
	snaps, segs, err := e.scan()
	if err != nil {
		return
	}
	for _, gen := range snaps {
		if gen < keepSnap {
			os.Remove(filepath.Join(e.dir, snapName(gen)))
		}
	}
	for _, gen := range segs {
		if gen < keepSeg {
			os.Remove(filepath.Join(e.dir, walName(gen)))
		}
	}
}
