package storage

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/stream"
)

var testAttrs = []core.AttrSpec{
	{Name: "gender", Kind: core.Static},
	{Name: "pubs", Kind: core.TimeVarying},
}

func openTestEngine(t *testing.T, dir string, opts Options) *Engine {
	t.Helper()
	e, err := Open(dir, testAttrs, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return e
}

// seriesLabels returns the labels of every ingested point.
func seriesLabels(s *stream.Series) []string { labels, _ := s.Points(); return labels }

func appendN(t *testing.T, e *Engine, from, to int) {
	t.Helper()
	for i := from; i < to; i++ {
		label, snap := testBatch(i)
		if err := e.Append(label, snap); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
}

func TestEngineEmptyOpenClose(t *testing.T) {
	dir := t.TempDir()
	e := openTestEngine(t, dir, Options{})
	if e.Series().Len() != 0 {
		t.Fatalf("fresh engine has %d points", e.Series().Len())
	}
	if ri := e.Recovery(); ri.SnapshotPoints != 0 || ri.WALRecords != 0 {
		t.Fatalf("fresh engine recovered %+v", ri)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen of a cleanly closed empty dir.
	e2 := openTestEngine(t, dir, Options{})
	defer e2.Close()
	if e2.Series().Len() != 0 {
		t.Fatalf("reopened empty engine has %d points", e2.Series().Len())
	}
}

func TestEngineCleanRestart(t *testing.T) {
	dir := t.TempDir()
	e := openTestEngine(t, dir, Options{})
	appendN(t, e, 0, 7)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	e2 := openTestEngine(t, dir, Options{})
	defer e2.Close()
	if got := seriesLabels(e2.Series()); len(got) != 7 || got[0] != "t0" || got[6] != "t6" {
		t.Fatalf("recovered labels %v", got)
	}
	if ri := e2.Recovery(); ri.WALRecords != 7 || ri.TruncatedBytes != 0 {
		t.Fatalf("recovery %+v, want 7 clean WAL records", ri)
	}
	// The recovered series keeps accepting appends.
	appendN(t, e2, 7, 9)
	if e2.Series().Len() != 9 {
		t.Fatalf("len %d after post-recovery appends", e2.Series().Len())
	}
}

// TestEngineCrashRestart simulates kill -9: the first engine is abandoned
// without Close (FsyncAlways, so every acked record is on disk) and the
// directory reopened.
func TestEngineCrashRestart(t *testing.T) {
	dir := t.TempDir()
	e := openTestEngine(t, dir, Options{Fsync: FsyncAlways, CheckpointRecords: -1})
	appendN(t, e, 0, 5)
	// No Close: the OS file handle leaks until the test exits, exactly as a
	// killed process would leave it.
	e2 := openTestEngine(t, dir, Options{Fsync: FsyncAlways, CheckpointRecords: -1})
	defer e2.Close()
	if got := seriesLabels(e2.Series()); len(got) != 5 {
		t.Fatalf("recovered labels %v, want 5", got)
	}
	if ri := e2.Recovery(); ri.WALRecords != 5 {
		t.Fatalf("recovery %+v", ri)
	}
}

func TestEngineTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	e := openTestEngine(t, dir, Options{Fsync: FsyncAlways, CheckpointRecords: -1})
	appendN(t, e, 0, 4)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the last record.
	path := filepath.Join(dir, walName(0))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	e2 := openTestEngine(t, dir, Options{CheckpointRecords: -1})
	defer e2.Close()
	if got := seriesLabels(e2.Series()); len(got) != 3 {
		t.Fatalf("recovered %v, want 3 records", got)
	}
	ri := e2.Recovery()
	if ri.WALRecords != 3 || ri.TruncatedBytes == 0 {
		t.Fatalf("recovery %+v, want 3 records and a truncated tail", ri)
	}
	// The torn record's label was never acked durable; its slot is free.
	label, snap := testBatch(3)
	if err := e2.Append(label, snap); err != nil {
		t.Fatalf("re-append after truncation: %v", err)
	}
}

func TestEngineCheckpointAndGC(t *testing.T) {
	dir := t.TempDir()
	e := openTestEngine(t, dir, Options{CheckpointRecords: -1})
	appendN(t, e, 0, 6)
	if err := e.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	st := e.Stats()
	if st.Checkpoints != 1 || st.Generation != 1 {
		t.Fatalf("stats %+v", st)
	}
	// Old generation files are gone; new snapshot + segment exist.
	if _, err := os.Stat(filepath.Join(dir, walName(0))); !os.IsNotExist(err) {
		t.Fatalf("wal-0 not collected: %v", err)
	}
	for _, name := range []string{snapName(1), walName(1)} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("missing %s: %v", name, err)
		}
	}
	// Records appended after the checkpoint land in the new segment.
	appendN(t, e, 6, 8)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	e2 := openTestEngine(t, dir, Options{CheckpointRecords: -1})
	defer e2.Close()
	if got := seriesLabels(e2.Series()); len(got) != 8 {
		t.Fatalf("recovered %v, want 8", got)
	}
	ri := e2.Recovery()
	if ri.SnapshotGeneration != 1 || ri.SnapshotPoints != 6 || ri.WALRecords != 2 {
		t.Fatalf("recovery %+v, want snapshot gen 1 with 6 points + 2 WAL records", ri)
	}
}

func TestEngineAutoCheckpoint(t *testing.T) {
	dir := t.TempDir()
	e := openTestEngine(t, dir, Options{CheckpointRecords: 3})
	appendN(t, e, 0, 10)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if got := e.Stats().Checkpoints; got == 0 {
		t.Fatalf("no automatic checkpoint after 10 appends with threshold 3")
	}
	e2 := openTestEngine(t, dir, Options{})
	defer e2.Close()
	if e2.Series().Len() != 10 {
		t.Fatalf("recovered %d points, want 10", e2.Series().Len())
	}
}

// TestEngineCorruptSnapshotFallsBack damages the newest snapshot: recovery
// must fall back to replaying the surviving WAL segments.
func TestEngineCorruptSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	e := openTestEngine(t, dir, Options{CheckpointRecords: -1})
	appendN(t, e, 0, 4)
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	// Bit-flip the snapshot body: the checkpoint collected wal-0, so the
	// damaged snapshot was the only full copy. Recovery must fall back to
	// generation 0 — an empty but functional engine — rather than refuse
	// to boot or serve corrupt data.
	path := filepath.Join(dir, snapName(1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	e2 := openTestEngine(t, dir, Options{CheckpointRecords: -1})
	defer e2.Close()
	// Snapshot 1 is unusable and no older snapshot exists: the engine comes
	// up empty but functional, replaying only wal-1 (which has no records).
	if e2.Series().Len() != 0 {
		t.Fatalf("engine recovered %d points from a corrupt snapshot", e2.Series().Len())
	}
	if ri := e2.Recovery(); ri.SnapshotGeneration != 0 {
		t.Fatalf("recovery %+v, want fallback to generation 0", ri)
	}
	appendN(t, e2, 0, 2)
	if e2.Series().Len() != 2 {
		t.Fatal("fallback engine does not accept appends")
	}
}

func TestEngineValidationErrorsLeaveNoState(t *testing.T) {
	dir := t.TempDir()
	e := openTestEngine(t, dir, Options{})
	defer e.Close()
	appendN(t, e, 0, 1)
	label, snap := testBatch(0) // duplicate label
	if err := e.Append(label, snap); err == nil {
		t.Fatal("duplicate label accepted")
	}
	if err := e.Append("bad", stream.Snapshot{
		Edges: []stream.EdgeRecord{{U: "x", V: "y"}},
	}); err == nil {
		t.Fatal("dangling edge accepted")
	}
	if n := e.Stats().WALRecords; n != 1 {
		t.Fatalf("%d WAL records after 1 good + 2 bad appends", n)
	}
}

func TestEngineSchemaMismatch(t *testing.T) {
	dir := t.TempDir()
	e := openTestEngine(t, dir, Options{CheckpointRecords: -1})
	appendN(t, e, 0, 3)
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	other := []core.AttrSpec{{Name: "color", Kind: core.Static}}
	if _, err := Open(dir, other, Options{}); err == nil {
		t.Fatal("engine opened a data directory written under a different schema")
	}
}

func TestEngineClosedAppend(t *testing.T) {
	e := openTestEngine(t, t.TempDir(), Options{})
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	label, snap := testBatch(0)
	if err := e.Append(label, snap); err == nil {
		t.Fatal("append on closed engine succeeded")
	}
	if err := e.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestParseFsyncPolicy(t *testing.T) {
	for _, s := range []string{"always", "interval", "never"} {
		p, err := ParseFsyncPolicy(s)
		if err != nil || p.String() != s {
			t.Fatalf("%q: %v %v", s, p, err)
		}
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Fatal("bad policy accepted")
	}
}

// TestEngineConcurrent exercises appends, checkpoints, window queries and
// stats under the race detector.
func TestEngineConcurrent(t *testing.T) {
	dir := t.TempDir()
	e := openTestEngine(t, dir, Options{Fsync: FsyncInterval, FsyncInterval: 1e6, CheckpointRecords: 8})
	const n = 60
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			label, snap := testBatch(i)
			if err := e.Append(label, snap); err != nil {
				t.Errorf("Append %d: %v", i, err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			_ = e.Stats()
			if e.Series().Len() > 1 {
				if _, err := e.Series().Graph(); err != nil {
					t.Errorf("Graph: %v", err)
				}
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			if err := e.Checkpoint(); err != nil {
				t.Errorf("Checkpoint: %v", err)
			}
		}
	}()
	wg.Wait()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	e2 := openTestEngine(t, dir, Options{})
	defer e2.Close()
	if e2.Series().Len() != n {
		t.Fatalf("recovered %d points, want %d", e2.Series().Len(), n)
	}
	// Exactly the appended labels, in order.
	labels := seriesLabels(e2.Series())
	for i, l := range labels {
		if want := fmt.Sprintf("t%d", i); l != want {
			t.Fatalf("label %d is %q, want %q", i, l, want)
		}
	}
}

func TestErrorsAreTyped(t *testing.T) {
	if !errors.Is(fmt.Errorf("%w: detail", ErrWAL), ErrWAL) {
		t.Fatal("ErrWAL does not wrap")
	}
}
