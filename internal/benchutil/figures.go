package benchutil

import (
	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/materialize"
	"repro/internal/ops"
	"repro/internal/timeline"
)

// This file regenerates the performance figures of §5.1 (Figs. 5–11).
// Each function takes the dataset graph (DBLP or MovieLens, possibly
// scaled) and measures the same workloads the paper plots.

// schemaFor builds an aggregation schema for a named attribute combination.
func schemaFor(g *core.Graph, names ...string) *agg.Schema {
	s, err := agg.ByName(g, names...)
	if err != nil {
		panic(err)
	}
	return s
}

// Fig5 measures DIST aggregation time per attribute combination at every
// time point. combos lists the attribute-name combinations to plot (the
// paper uses G, P, G+P for DBLP and G, A, O, R, G+A, G+A+R, G+A+O+R for
// MovieLens).
func Fig5(id, title string, g *core.Graph, combos [][]string) *Experiment {
	e := &Experiment{ID: id, Title: title, XLabel: "time point"}
	schemas := make([]*agg.Schema, len(combos))
	for i, c := range combos {
		e.Series = append(e.Series, comboLabel(c))
		schemas[i] = schemaFor(g, c...)
	}
	tl := g.Timeline()
	for t := 0; t < tl.Len(); t++ {
		v := ops.At(g, timeline.Time(t))
		vals := make([]float64, len(schemas))
		for i, s := range schemas {
			vals[i] = timed(func() { agg.Aggregate(v, s, agg.Distinct) })
		}
		e.Add(tl.Label(timeline.Time(t)), vals...)
	}
	return e
}

func comboLabel(names []string) string {
	label := ""
	for i, n := range names {
		if i > 0 {
			label += "+"
		}
		label += string(n[0])
	}
	return label
}

// Fig6 measures union + aggregation while extending the interval
// [t0, t0+i]: operator time, then DIST and ALL aggregation time for a
// static and a time-varying attribute (Fig. 6a–d).
func Fig6(id, title string, g *core.Graph, staticAttr, varyingAttr string) *Experiment {
	e := &Experiment{
		ID: id, Title: title, XLabel: "interval end",
		Series: []string{"op", staticAttr[:1] + ":DIST", staticAttr[:1] + ":ALL",
			varyingAttr[:1] + ":DIST", varyingAttr[:1] + ":ALL"},
	}
	sStatic := schemaFor(g, staticAttr)
	sVarying := schemaFor(g, varyingAttr)
	tl := g.Timeline()
	for x := 1; x < tl.Len(); x++ {
		iv := tl.Range(0, timeline.Time(x))
		var v *ops.View
		opTime := timed(func() { v = ops.Union(g, iv, iv) })
		e.Add(tl.Label(timeline.Time(x)),
			opTime,
			timed(func() { agg.Aggregate(v, sStatic, agg.Distinct) }),
			timed(func() { agg.Aggregate(v, sStatic, agg.All) }),
			timed(func() { agg.Aggregate(v, sVarying, agg.Distinct) }),
			timed(func() { agg.Aggregate(v, sVarying, agg.All) }),
		)
	}
	return e
}

// Fig7 measures intersection + DIST aggregation while extending the
// interval [t0, t0+i] with intersection semantics (entities existing at
// every point). Like the paper, it stops at the longest interval with at
// least one common edge.
func Fig7(id, title string, g *core.Graph, staticAttr, varyingAttr string) *Experiment {
	e := &Experiment{
		ID: id, Title: title, XLabel: "interval end",
		Series: []string{"op", staticAttr[:1] + ":DIST", varyingAttr[:1] + ":DIST"},
	}
	sStatic := schemaFor(g, staticAttr)
	sVarying := schemaFor(g, varyingAttr)
	tl := g.Timeline()
	for x := 1; x < tl.Len(); x++ {
		iv := tl.Range(0, timeline.Time(x))
		var v *ops.View
		opTime := timed(func() { v = ops.StabilityView(g, ops.ForAll(iv), ops.ForAll(iv)) })
		if v.NumEdges() == 0 {
			break
		}
		e.Add(tl.Label(timeline.Time(x)),
			opTime,
			timed(func() { agg.Aggregate(v, sStatic, agg.Distinct) }),
			timed(func() { agg.Aggregate(v, sVarying, agg.Distinct) }),
		)
	}
	return e
}

// Fig8 measures the difference Told(∪) − Tnew with Tnew fixed at the last
// time point and Told = [x, last-1] expanding leftward, plus DIST and ALL
// aggregation on a static and a time-varying attribute.
func Fig8(id, title string, g *core.Graph, staticAttr, varyingAttr string) *Experiment {
	e := &Experiment{
		ID: id, Title: title, XLabel: "Told start",
		Series: []string{"op", staticAttr[:1] + ":DIST", staticAttr[:1] + ":ALL",
			varyingAttr[:1] + ":DIST", varyingAttr[:1] + ":ALL"},
	}
	sStatic := schemaFor(g, staticAttr)
	sVarying := schemaFor(g, varyingAttr)
	tl := g.Timeline()
	last := timeline.Time(tl.Len() - 1)
	tnew := ops.Exists(tl.Point(last))
	for x := tl.Len() - 2; x >= 0; x-- {
		told := ops.Exists(tl.Range(timeline.Time(x), last-1))
		var v *ops.View
		opTime := timed(func() { v = ops.DifferenceView(g, told, tnew) })
		e.Add(tl.Label(timeline.Time(x)),
			opTime,
			timed(func() { agg.Aggregate(v, sStatic, agg.Distinct) }),
			timed(func() { agg.Aggregate(v, sStatic, agg.All) }),
			timed(func() { agg.Aggregate(v, sVarying, agg.Distinct) }),
			timed(func() { agg.Aggregate(v, sVarying, agg.All) }),
		)
	}
	return e
}

// Fig9 measures the opposite difference Tnew − Told(∪): Tnew fixed at the
// last point, Told expanding leftward; the output shrinks instead of
// growing.
func Fig9(id, title string, g *core.Graph, staticAttr, varyingAttr string) *Experiment {
	e := &Experiment{
		ID: id, Title: title, XLabel: "Told start",
		Series: []string{"op", staticAttr[:1] + ":DIST", staticAttr[:1] + ":ALL",
			varyingAttr[:1] + ":DIST", varyingAttr[:1] + ":ALL"},
	}
	sStatic := schemaFor(g, staticAttr)
	sVarying := schemaFor(g, varyingAttr)
	tl := g.Timeline()
	last := timeline.Time(tl.Len() - 1)
	tnew := ops.Exists(tl.Point(last))
	for x := tl.Len() - 2; x >= 0; x-- {
		told := ops.Exists(tl.Range(timeline.Time(x), last-1))
		var v *ops.View
		opTime := timed(func() { v = ops.DifferenceView(g, tnew, told) })
		e.Add(tl.Label(timeline.Time(x)),
			opTime,
			timed(func() { agg.Aggregate(v, sStatic, agg.Distinct) }),
			timed(func() { agg.Aggregate(v, sStatic, agg.All) }),
			timed(func() { agg.Aggregate(v, sVarying, agg.Distinct) }),
			timed(func() { agg.Aggregate(v, sVarying, agg.All) }),
		)
	}
	return e
}

// Fig10 measures the speedup of composing union ALL aggregates from
// per-time-point materialized aggregates (T-distributive reuse) over
// computing them from scratch, for a static and a time-varying attribute,
// while extending the interval [t0, t0+x].
func Fig10(id, title string, g *core.Graph, staticAttr, varyingAttr string) *Experiment {
	e := &Experiment{
		ID: id, Title: title, XLabel: "interval end",
		Series: []string{
			staticAttr[:1] + ":scratch", staticAttr[:1] + ":mat", staticAttr[:1] + ":speedup",
			varyingAttr[:1] + ":scratch", varyingAttr[:1] + ":mat", varyingAttr[:1] + ":speedup"},
	}
	sStatic := schemaFor(g, staticAttr)
	sVarying := schemaFor(g, varyingAttr)
	stStatic := materialize.NewStore(g, sStatic)
	stVarying := materialize.NewStore(g, sVarying)
	tl := g.Timeline()
	for x := 1; x < tl.Len(); x++ {
		iv := tl.Range(0, timeline.Time(x))
		var scratchS, matS, scratchV, matV float64
		scratchS = timed(func() {
			agg.Aggregate(ops.Union(g, iv, iv), sStatic, agg.All)
		})
		matS = timed(func() { stStatic.UnionAll(iv) })
		scratchV = timed(func() {
			agg.Aggregate(ops.Union(g, iv, iv), sVarying, agg.All)
		})
		matV = timed(func() { stVarying.UnionAll(iv) })
		e.Add(tl.Label(timeline.Time(x)),
			scratchS, matS, ratio(scratchS, matS),
			scratchV, matV, ratio(scratchV, matV))
	}
	return e
}

func ratio(a, b float64) float64 {
	if b <= 0 {
		return 0
	}
	return a / b
}

// Fig11 measures the speedup of deriving aggregates on attribute subsets
// from a materialized superset aggregate (D-distributive roll-up) over
// computing them from scratch, per time point. super is the materialized
// attribute combination; subsets are the targets.
func Fig11(id, title string, g *core.Graph, super []string, subsets [][]string) *Experiment {
	e := &Experiment{ID: id, Title: title, XLabel: "time point"}
	for _, sub := range subsets {
		e.Series = append(e.Series, comboLabel(sub)+"⇐"+comboLabel(super))
	}
	superSchema := schemaFor(g, super...)
	subIDs := make([][]core.AttrID, len(subsets))
	subSchemas := make([]*agg.Schema, len(subsets))
	for i, sub := range subsets {
		subSchemas[i] = schemaFor(g, sub...)
		subIDs[i] = subSchemas[i].Attrs()
	}
	tl := g.Timeline()
	for t := 0; t < tl.Len(); t++ {
		v := ops.At(g, timeline.Time(t))
		fine := agg.Aggregate(v, superSchema, agg.Distinct) // materialized
		vals := make([]float64, len(subsets))
		for i := range subsets {
			scratch := timed(func() { agg.Aggregate(v, subSchemas[i], agg.Distinct) })
			rolled := timed(func() {
				if _, err := agg.Rollup(fine, subIDs[i]...); err != nil {
					panic(err)
				}
			})
			vals[i] = ratio(scratch, rolled)
		}
		e.Add(tl.Label(timeline.Time(t)), vals...)
	}
	return e
}

// Fig5DBLPCombos and Fig5MovieLensCombos are the attribute combinations
// the paper plots in Fig. 5.
var (
	Fig5DBLPCombos = [][]string{
		{"gender"}, {"publications"}, {"gender", "publications"},
	}
	Fig5MovieLensCombos = [][]string{
		{"gender"}, {"age"}, {"occupation"}, {"rating"},
		{"gender", "age"}, {"gender", "age", "rating"},
		{"gender", "age", "occupation", "rating"},
	}
)

// Fig11MovieLensSingle lists the paper's Fig. 11b derivations: gender from
// each pair containing it, rating likewise.
func Fig11MovieLensSingle(g *core.Graph) []*Experiment {
	var out []*Experiment
	out = append(out,
		Fig11("fig11b-G", "MovieLens: gender from attribute pairs", g,
			[]string{"gender", "age"}, [][]string{{"gender"}}),
		Fig11("fig11b-G2", "MovieLens: gender from (gender,rating)", g,
			[]string{"gender", "rating"}, [][]string{{"gender"}}),
		Fig11("fig11b-G3", "MovieLens: gender from (gender,occupation)", g,
			[]string{"gender", "occupation"}, [][]string{{"gender"}}),
		Fig11("fig11b-R1", "MovieLens: rating from (rating,gender)", g,
			[]string{"rating", "gender"}, [][]string{{"rating"}}),
		Fig11("fig11b-R2", "MovieLens: rating from (rating,age)", g,
			[]string{"rating", "age"}, [][]string{{"rating"}}),
		Fig11("fig11b-R3", "MovieLens: rating from (rating,occupation)", g,
			[]string{"rating", "occupation"}, [][]string{{"rating"}}),
	)
	return out
}

// Fig11MovieLensPairs derives all attribute pairs from the materialized
// 4-attribute aggregate (Fig. 11c).
func Fig11MovieLensPairs(g *core.Graph) *Experiment {
	all := []string{"gender", "age", "occupation", "rating"}
	var pairs [][]string
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			pairs = append(pairs, []string{all[i], all[j]})
		}
	}
	return Fig11("fig11c", "MovieLens: pairs from all four attributes", g, all, pairs)
}

// Fig11MovieLensTriples derives all attribute triples from the 4-attribute
// aggregate (Fig. 11d).
func Fig11MovieLensTriples(g *core.Graph) *Experiment {
	all := []string{"gender", "age", "occupation", "rating"}
	var triples [][]string
	for skip := 0; skip < len(all); skip++ {
		var tr []string
		for i, a := range all {
			if i != skip {
				tr = append(tr, a)
			}
		}
		triples = append(triples, tr)
	}
	return Fig11("fig11d", "MovieLens: triples from all four attributes", g, all, triples)
}
