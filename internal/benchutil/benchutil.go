// Package benchutil implements the experiment harness behind every table
// and figure of the paper's §5 evaluation. Each experiment function
// produces a printable result (a numeric Series table for the performance
// figures, a string Table for the dataset statistics and qualitative
// figures), and is shared by the gtbench command and the root-level
// testing.B benchmarks.
package benchutil

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// Printable is implemented by Experiment and Table: render as an aligned
// text block, as CSV, or as one JSON object.
type Printable interface {
	Print(w io.Writer)
	WriteCSV(w io.Writer) error
	WriteJSON(w io.Writer) error
	Name() string
}

// Experiment is a numeric result: one row per x-axis point, one column per
// series (typically seconds or speedup factors).
type Experiment struct {
	ID     string
	Title  string
	XLabel string
	Series []string
	Rows   []ExpRow
}

// ExpRow is one x-axis point of an Experiment.
type ExpRow struct {
	X      string
	Values []float64
}

// Name returns the experiment id.
func (e *Experiment) Name() string { return e.ID }

// Add appends a row.
func (e *Experiment) Add(x string, values ...float64) {
	if len(values) != len(e.Series) {
		panic(fmt.Sprintf("benchutil: row %q has %d values, want %d", x, len(values), len(e.Series)))
	}
	e.Rows = append(e.Rows, ExpRow{X: x, Values: values})
}

// Print renders the experiment as an aligned text table.
func (e *Experiment) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", e.ID, e.Title)
	widths := make([]int, len(e.Series)+1)
	widths[0] = len(e.XLabel)
	for _, r := range e.Rows {
		if len(r.X) > widths[0] {
			widths[0] = len(r.X)
		}
	}
	cells := make([][]string, len(e.Rows))
	for i, r := range e.Rows {
		cells[i] = make([]string, len(r.Values))
		for j, v := range r.Values {
			cells[i][j] = formatValue(v)
		}
	}
	for j, s := range e.Series {
		widths[j+1] = len(s)
		for i := range cells {
			if len(cells[i][j]) > widths[j+1] {
				widths[j+1] = len(cells[i][j])
			}
		}
	}
	fmt.Fprintf(w, "%-*s", widths[0], e.XLabel)
	for j, s := range e.Series {
		fmt.Fprintf(w, "  %*s", widths[j+1], s)
	}
	fmt.Fprintln(w)
	for i, r := range e.Rows {
		fmt.Fprintf(w, "%-*s", widths[0], r.X)
		for j := range r.Values {
			fmt.Fprintf(w, "  %*s", widths[j+1], cells[i][j])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

// formatValue renders values compactly. The unit (seconds or ×) is implied
// by the series name.
func formatValue(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v < 0.0001:
		return fmt.Sprintf("%.2g", v)
	case v < 1:
		return fmt.Sprintf("%.4f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// Table is a string-valued result (dataset statistics, qualitative
// figures, exploration outputs).
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
}

// Name returns the table id.
func (t *Table) Name() string { return t.ID }

// Add appends a row.
func (t *Table) Add(cells ...string) {
	if len(cells) != len(t.Header) {
		panic(fmt.Sprintf("benchutil: row has %d cells, want %d", len(cells), len(t.Header)))
	}
	t.Rows = append(t.Rows, cells)
}

// Print renders the table aligned.
func (t *Table) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for j, h := range t.Header {
		widths[j] = len(h)
	}
	for _, r := range t.Rows {
		for j, c := range r {
			if len(c) > widths[j] {
				widths[j] = len(c)
			}
		}
	}
	var line []string
	for j, h := range t.Header {
		line = append(line, fmt.Sprintf("%-*s", widths[j], h))
	}
	fmt.Fprintln(w, strings.Join(line, "  "))
	for _, r := range t.Rows {
		line = line[:0]
		for j, c := range r {
			line = append(line, fmt.Sprintf("%-*s", widths[j], c))
		}
		fmt.Fprintln(w, strings.Join(line, "  "))
	}
	fmt.Fprintln(w)
}

// WriteCSV renders the experiment as CSV (x label first, then one column
// per series) for external plotting.
func (e *Experiment) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(append([]string{e.XLabel}, e.Series...)); err != nil {
		return err
	}
	for _, r := range e.Rows {
		rec := make([]string, 1+len(r.Values))
		rec[0] = r.X
		for j, v := range r.Values {
			rec[1+j] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// RunMeta describes the environment a JSON run executed in. When set via
// SetRunMeta, every WriteJSON result line carries it, so archived outputs
// remain self-describing when lines are split apart or concatenated
// across machines and runs.
type RunMeta struct {
	GoVersion  string  `json:"go_version"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Timestamp  string  `json:"timestamp"` // RFC 3339, UTC
	Git        string  `json:"git,omitempty"`
	Seed       int64   `json:"seed"`
	Scale      float64 `json:"scale"`
}

var runMeta *RunMeta

// SetRunMeta attaches m to every subsequent WriteJSON line; nil detaches.
func SetRunMeta(m *RunMeta) { runMeta = m }

// WriteJSON renders the experiment as one JSON object (followed by a
// newline, so concatenated experiments form a JSON-lines stream).
func (e *Experiment) WriteJSON(w io.Writer) error {
	return writeJSONLine(w, struct {
		Kind string   `json:"kind"`
		Meta *RunMeta `json:"meta,omitempty"`
		*Experiment
	}{"experiment", runMeta, e})
}

// WriteJSON renders the table as one JSON object under the same framing as
// Experiment.WriteJSON.
func (t *Table) WriteJSON(w io.Writer) error {
	return writeJSONLine(w, struct {
		Kind string   `json:"kind"`
		Meta *RunMeta `json:"meta,omitempty"`
		*Table
	}{"table", runMeta, t})
}

func writeJSONLine(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	return enc.Encode(v)
}

// WriteCSV renders the table as CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// timed measures fn in seconds: the minimum over a few runs, repeating
// while the total stays under a small budget so very short operations get
// a stable reading without inflating the harness runtime.
func timed(fn func()) float64 {
	const (
		maxRuns   = 5
		budgetSec = 0.25
	)
	best := -1.0
	total := 0.0
	for run := 0; run < maxRuns; run++ {
		start := time.Now()
		fn()
		d := time.Since(start).Seconds()
		total += d
		if best < 0 || d < best {
			best = d
		}
		if total >= budgetSec {
			break
		}
	}
	return best
}
