package benchutil

import (
	"fmt"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/evolution"
	"repro/internal/explore"
	"repro/internal/timeline"
)

// This file regenerates the dataset-statistics tables (Tables 3–4) and the
// qualitative figures of §5.2 (Figs. 12–14).

// StatsTable renders per-time-point node/edge counts (Tables 3 and 4).
func StatsTable(id, title string, g *core.Graph) *Table {
	t := &Table{ID: id, Title: title, Header: []string{"#TP", "#Nodes", "#Edges"}}
	stats := core.ComputeStats(g)
	for i, label := range stats.Labels {
		t.Add(label, fmt.Sprintf("%d", stats.Nodes[i]), fmt.Sprintf("%d", stats.Edges[i]))
	}
	return t
}

// Fig12 aggregates the evolution graph on gender for high-activity
// authors (#publications > minPubs) between told and tnew, reporting the
// St/Gr/Shr distribution of nodes and of edges (Fig. 12a: 2010 vs the
// 2000s; Fig. 12b: 2020 vs the 2010s).
func Fig12(id, title string, g *core.Graph, told, tnew timeline.Interval, minPubs int) *Table {
	gender := g.MustAttr("gender")
	pubs := g.MustAttr("publications")
	s := agg.MustSchema(g, gender)
	highActivity := func(n core.NodeID, t timeline.Time) bool {
		v := g.VaryingValue(pubs, n, t)
		if v < 0 {
			return false
		}
		var count int
		fmt.Sscanf(g.Dict(pubs).Value(v), "%d", &count)
		return count > minPubs
	}
	ev := evolution.Aggregate(g, told, tnew, s, agg.Distinct, highActivity)

	t := &Table{ID: id, Title: title,
		Header: []string{"entity", "St", "Gr", "Shr", "stable%"}}
	for _, tu := range ev.SortedNodes() {
		w := ev.Nodes[tu]
		t.Add("nodes "+ev.Schema.Label(tu),
			fmt.Sprintf("%d", w.St), fmt.Sprintf("%d", w.Gr), fmt.Sprintf("%d", w.Shr),
			pct(w.St, w.Total()))
	}
	for _, k := range ev.SortedEdges() {
		w := ev.Edges[k]
		t.Add("edges "+ev.Schema.Label(k.From)+"→"+ev.Schema.Label(k.To),
			fmt.Sprintf("%d", w.St), fmt.Sprintf("%d", w.Gr), fmt.Sprintf("%d", w.Shr),
			pct(w.St, w.Total()))
	}
	return t
}

func pct(part, total int64) string {
	if total == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(part)/float64(total))
}

// ExplorationSpec configures one §5.2 exploration experiment (one subplot
// of Fig. 13 or Fig. 14): an event type explored for a specific aggregate
// edge tuple (female-female in the paper) at three thresholds derived from
// the §3.5 initialization.
type ExplorationSpec struct {
	Event     explore.Event
	Semantics explore.Semantics
	Extend    explore.Extend
	// KFactors scale w_th (the max result over consecutive pairs for
	// increasing traversals, min for decreasing ones) into the three
	// thresholds, e.g. {1.0, 0.5, small} for stability.
	KFactors [3]float64
}

// FigExploration runs one exploration experiment for the edge tuple
// (from → to) on the given static attribute and reports, per threshold,
// the pairs found and the evaluation counts of the pruned strategy versus
// the naive baseline.
func FigExploration(id, title string, g *core.Graph, attr string, from, to []string, spec ExplorationSpec) *Table {
	s := schemaFor(g, attr)
	result, err := explore.EdgeTuple(s, from, to)
	if err != nil {
		panic(err)
	}
	ex := &explore.Explorer{Graph: g, Schema: s, Kind: agg.Distinct, Result: result}

	minR, maxR := ex.InitK(spec.Event)
	wth := maxR
	if traversalIsDecreasingInit(spec) {
		wth = minR
	}
	if wth < 1 {
		wth = 1
	}

	t := &Table{ID: id, Title: title,
		Header: []string{"k", "pairs", "evals(pruned)", "evals(naive)", "examples"}}
	for _, f := range spec.KFactors {
		k := int64(float64(wth) * f)
		if k < 1 {
			k = 1
		}
		pairs := ex.Explore(spec.Event, spec.Semantics, spec.Extend, k)
		pruned := ex.Evaluations
		_ = ex.Naive(spec.Event, spec.Semantics, spec.Extend, k)
		naive := ex.Evaluations
		t.Add(fmt.Sprintf("%d", k), fmt.Sprintf("%d", len(pairs)),
			fmt.Sprintf("%d", pruned), fmt.Sprintf("%d", naive), examplePairs(pairs, 3))
	}
	return t
}

// traversalIsDecreasingInit reports whether the §3.5 initialization should
// start from the minimum (growing thresholds) rather than the maximum.
func traversalIsDecreasingInit(spec ExplorationSpec) bool {
	// The paper grows k for shrinkage (min-based) and shrinks it for
	// stability and growth (max-based) in §5.2.
	return spec.Event == evolution.Shrinkage
}

func examplePairs(pairs []explore.Pair, max int) string {
	if len(pairs) == 0 {
		return "-"
	}
	out := ""
	for i, p := range pairs {
		if i == max {
			out += " …"
			break
		}
		if i > 0 {
			out += "; "
		}
		out += p.String()
	}
	return out
}

// PaperExplorations returns the three §5.2 exploration cases in paper
// order: maximal stability (intersection), minimal growth (union), and
// minimal shrinkage (union).
func PaperExplorations() []ExplorationSpec {
	return []ExplorationSpec{
		{Event: evolution.Stability, Semantics: explore.IntersectionSemantics,
			Extend: explore.ExtendNew, KFactors: [3]float64{0.02, 0.5, 1.0}},
		{Event: evolution.Growth, Semantics: explore.UnionSemantics,
			Extend: explore.ExtendNew, KFactors: [3]float64{0.1, 0.5, 1.0}},
		{Event: evolution.Shrinkage, Semantics: explore.UnionSemantics,
			Extend: explore.ExtendOld, KFactors: [3]float64{1.0, 5.0, 20.0}},
	}
}
