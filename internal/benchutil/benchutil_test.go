package benchutil

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/dataset"
)

func TestExperimentPrint(t *testing.T) {
	e := &Experiment{ID: "x", Title: "demo", XLabel: "t", Series: []string{"a", "b"}}
	e.Add("t0", 0.5, 2)
	e.Add("t1", 0, 0.00005)
	var buf bytes.Buffer
	e.Print(&buf)
	out := buf.String()
	for _, want := range []string{"== x: demo ==", "t0", "0.5000", "2.00"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestExperimentAddPanicsOnArity(t *testing.T) {
	e := &Experiment{Series: []string{"a"}}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.Add("x", 1, 2)
}

func TestTablePrint(t *testing.T) {
	tb := &Table{ID: "t3", Title: "stats", Header: []string{"tp", "n"}}
	tb.Add("2000", "17")
	var buf bytes.Buffer
	tb.Print(&buf)
	if !strings.Contains(buf.String(), "2000  17") {
		t.Errorf("output:\n%s", buf.String())
	}
}

func TestWriteCSV(t *testing.T) {
	e := &Experiment{ID: "x", Title: "demo", XLabel: "t", Series: []string{"a", "b"}}
	e.Add("t0", 0.5, 2)
	var buf bytes.Buffer
	if err := e.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "t,a,b\nt0,0.5,2\n" {
		t.Errorf("CSV = %q", got)
	}
	tb := &Table{Header: []string{"x", "y"}}
	tb.Add("1", "2")
	buf.Reset()
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "x,y\n1,2\n" {
		t.Errorf("table CSV = %q", got)
	}
}

func TestStatsTableMatchesGraph(t *testing.T) {
	g := dataset.PaperExample()
	tb := StatsTable("t", "paper example", g)
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tb.Rows))
	}
	if tb.Rows[0][1] != "4" || tb.Rows[0][2] != "3" {
		t.Errorf("t0 row = %v, want 4 nodes / 3 edges", tb.Rows[0])
	}
}

func TestFigures5Through11OnScaledDBLP(t *testing.T) {
	g := dataset.DBLPScaled(1, 0.01)
	n := g.Timeline().Len()

	f5 := Fig5("5a", "dblp", g, Fig5DBLPCombos)
	if len(f5.Rows) != n || len(f5.Series) != 3 {
		t.Errorf("Fig5 shape: %d rows × %d series", len(f5.Rows), len(f5.Series))
	}
	if f5.Series[2] != "g+p" {
		t.Errorf("combo label = %q", f5.Series[2])
	}

	f6 := Fig6("6", "dblp", g, "gender", "publications")
	if len(f6.Rows) != n-1 {
		t.Errorf("Fig6 rows = %d, want %d", len(f6.Rows), n-1)
	}

	f7 := Fig7("7", "dblp", g, "gender", "publications")
	// The core edges span [2000,2017]: 17 non-empty extensions.
	if len(f7.Rows) != 17 {
		t.Errorf("Fig7 rows = %d, want 17 (intersection non-empty up to [2000,2017])", len(f7.Rows))
	}

	f8 := Fig8("8", "dblp", g, "gender", "publications")
	f9 := Fig9("9", "dblp", g, "gender", "publications")
	if len(f8.Rows) != n-1 || len(f9.Rows) != n-1 {
		t.Errorf("Fig8/9 rows = %d/%d, want %d", len(f8.Rows), len(f9.Rows), n-1)
	}

	f10 := Fig10("10", "dblp", g, "gender", "publications")
	if len(f10.Rows) != n-1 || len(f10.Series) != 6 {
		t.Errorf("Fig10 shape: %d rows × %d series", len(f10.Rows), len(f10.Series))
	}
	for _, r := range f10.Rows {
		if r.Values[2] <= 0 || r.Values[5] <= 0 {
			t.Errorf("Fig10 speedup not positive: %v", r)
		}
	}

	f11 := Fig11("11a", "dblp", g, []string{"gender", "publications"},
		[][]string{{"gender"}, {"publications"}})
	if len(f11.Rows) != n || len(f11.Series) != 2 {
		t.Errorf("Fig11 shape: %d rows × %d series", len(f11.Rows), len(f11.Series))
	}
}

func TestFig11MovieLensVariants(t *testing.T) {
	g := dataset.MovieLensScaled(1, 0.01)
	singles := Fig11MovieLensSingle(g)
	if len(singles) != 6 {
		t.Fatalf("Fig11b experiments = %d, want 6", len(singles))
	}
	pairs := Fig11MovieLensPairs(g)
	if len(pairs.Series) != 6 {
		t.Errorf("Fig11c series = %d, want 6 pairs", len(pairs.Series))
	}
	triples := Fig11MovieLensTriples(g)
	if len(triples.Series) != 4 {
		t.Errorf("Fig11d series = %d, want 4 triples", len(triples.Series))
	}
}

func TestFig12OnPaperExample(t *testing.T) {
	g := dataset.PaperExample()
	tl := g.Timeline()
	tb := Fig12("12", "paper", g, tl.Point(0), tl.Point(1), 0)
	if len(tb.Rows) == 0 {
		t.Fatal("Fig12 produced no rows")
	}
	// With minPubs=0 every appearance participates: the m node row shows
	// the stable u1 (St=1).
	foundM := false
	for _, r := range tb.Rows {
		if r[0] == "nodes m" {
			foundM = true
			if r[1] != "1" {
				t.Errorf("nodes m St = %s, want 1", r[1])
			}
		}
	}
	if !foundM {
		t.Error("no 'nodes m' row")
	}
}

func TestFigExplorationOnDBLP(t *testing.T) {
	g := dataset.DBLPScaled(1, 0.01)
	specs := PaperExplorations()
	if len(specs) != 3 {
		t.Fatal("want 3 exploration specs")
	}
	for i, spec := range specs {
		tb := FigExploration("14", "dblp f-f", g, "gender",
			[]string{"f"}, []string{"f"}, spec)
		if len(tb.Rows) != 3 {
			t.Errorf("spec %d: rows = %d, want 3 thresholds", i, len(tb.Rows))
		}
		// Pruned evaluations never exceed naive.
		for _, r := range tb.Rows {
			if r[2] > r[3] && len(r[2]) >= len(r[3]) {
				t.Errorf("spec %d: pruned evals %s > naive %s", i, r[2], r[3])
			}
		}
	}
}

func TestWriteJSONRunMeta(t *testing.T) {
	e := &Experiment{ID: "x", Title: "demo", XLabel: "t", Series: []string{"a"}}
	e.Add("t0", 1)
	tb := &Table{ID: "t3", Title: "stats", Header: []string{"tp"}}
	tb.Add("2000")

	var buf bytes.Buffer
	if err := e.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), `"meta"`) {
		t.Errorf("meta emitted without SetRunMeta:\n%s", buf.String())
	}

	SetRunMeta(&RunMeta{GoVersion: "go1.22", GOMAXPROCS: 8,
		Timestamp: "2026-08-06T00:00:00Z", Git: "abc123", Seed: 1, Scale: 0.5})
	defer SetRunMeta(nil)
	for _, p := range []Printable{e, tb} {
		buf.Reset()
		if err := p.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		var got struct {
			Kind string   `json:"kind"`
			Meta *RunMeta `json:"meta"`
		}
		if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
			t.Fatalf("bad JSON line %q: %v", buf.String(), err)
		}
		if got.Meta == nil || got.Meta.GoVersion != "go1.22" || got.Meta.GOMAXPROCS != 8 ||
			got.Meta.Git != "abc123" || got.Meta.Scale != 0.5 {
			t.Errorf("%s meta = %+v", got.Kind, got.Meta)
		}
	}
}
