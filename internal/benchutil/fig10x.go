package benchutil

import (
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/materialize"
	"repro/internal/timeline"
)

// This file holds the PR-2 extensions of the Fig. 10 materialization
// experiment: the composition-engine comparison (linear map-merge vs
// sparse-table vs prefix-sum) and the concurrent-client catalog sweep.

// Fig10Sparse compares the three interval-composition engines of
// materialize.Store on one attribute while extending the interval
// [t0, t0+x]: the linear per-point map merge (O(x) merges), the
// doubling/sparse table (O(log x) vector additions) and the prefix-sum
// engine (O(1) vector subtraction), plus the dense engines' speedups over
// linear.
func Fig10Sparse(id, title string, g *core.Graph, attr string) *Experiment {
	e := &Experiment{
		ID: id, Title: title, XLabel: "interval end",
		Series: []string{"linear", "sparse", "prefix", "sparse×", "prefix×"},
	}
	st := materialize.NewStore(g, schemaFor(g, attr))
	st.UnionAll(g.Timeline().All()) // build the dense tables outside the timings
	tl := g.Timeline()
	for x := 1; x < tl.Len(); x++ {
		iv := tl.Range(0, timeline.Time(x))
		lin := timed(func() { st.UnionAllLinear(iv) })
		sparse := timed(func() { st.UnionAllLog(iv) })
		prefix := timed(func() { st.UnionAll(iv) })
		e.Add(tl.Label(timeline.Time(x)),
			lin, sparse, prefix, ratio(lin, sparse), ratio(lin, prefix))
	}
	return e
}

// Fig10Concurrent sweeps concurrent clients over a shared
// materialize.Catalog: every worker issues union-ALL queries drawn from
// all contiguous intervals of the timeline (so requests collide on the
// cache and on in-flight computations), and the experiment reports
// aggregate throughput and its scaling versus one client.
func Fig10Concurrent(id, title string, g *core.Graph, attr string, clients []int) *Experiment {
	e := &Experiment{
		ID: id, Title: title, XLabel: "clients",
		Series: []string{"queries/s", "scaling"},
	}
	a := schemaFor(g, attr).Attrs()[0]
	tl := g.Timeline()
	var ivs []timeline.Interval
	for i := 0; i < tl.Len(); i++ {
		for j := i; j < tl.Len(); j++ {
			ivs = append(ivs, tl.Range(timeline.Time(i), timeline.Time(j)))
		}
	}
	const perClient = 400
	var base float64
	for _, n := range clients {
		// A fresh catalog per sweep point: every client mix pays the same
		// cold-start, so scaling reflects contention, not warm caches.
		cat := materialize.NewCatalog(g)
		if _, err := cat.Materialize(a); err != nil {
			panic(err)
		}
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < n; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for q := 0; q < perClient; q++ {
					if _, _, err := cat.UnionAll(ivs[(w*13+q)%len(ivs)], a); err != nil {
						panic(err)
					}
				}
			}(w)
		}
		wg.Wait()
		elapsed := time.Since(start).Seconds()
		qps := float64(n*perClient) / elapsed
		if base == 0 {
			base = qps
		}
		e.Add(strconv.Itoa(n), qps, ratio(qps, base))
	}
	return e
}
