// Package cube implements OLAP-style partial materialization over the
// attribute lattice of a temporal attributed graph.
//
// §4.3 of the paper observes that materializing every aggregate of every
// attribute combination is unrealistic, and that COUNT aggregation is
// D-distributive: the aggregate on A” ⊆ A' derives from the aggregate on
// A' by regrouping and summing. This package turns that observation into a
// working cube: the 2^n − 1 attribute combinations form a lattice; a
// subset of cuboids is materialized (explicitly, or greedily under a
// budget using the classic benefit heuristic of Harinarayan et al. adapted
// to aggregate-graph sizes); per-time-point queries are answered from the
// smallest materialized ancestor by roll-up, or from the base graph when
// no ancestor exists.
//
// Per-time-point DIST aggregates are stored because at a single time point
// roll-up is exact for DIST (each node exhibits exactly one tuple), which
// is also how the paper applies roll-up reuse in Fig. 11.
package cube

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/lru"
	"repro/internal/ops"
	"repro/internal/timeline"
)

// Source reports how a query was answered.
type Source int

const (
	// Hit: the exact cuboid is materialized.
	Hit Source = iota
	// Rollup: derived from a materialized ancestor cuboid.
	Rollup
	// Scratch: computed from the base graph.
	Scratch

	numSources
)

// String names the source.
func (s Source) String() string {
	switch s {
	case Hit:
		return "hit"
	case Rollup:
		return "rollup"
	default:
		return "scratch"
	}
}

// cuboid is one materialized attribute combination.
type cuboid struct {
	attrs    []core.AttrID
	schema   *agg.Schema
	perPoint []*agg.Graph
	size     int64 // total aggregate nodes + edges across time points
}

// qEntry is one cached query answer with its originating source.
type qEntry struct {
	g   *agg.Graph
	src Source
}

func qEntrySize(e qEntry) int64 { return e.g.ApproxBytes() }

// Cube manages partial materialization over one graph's attribute lattice.
// All methods are safe for concurrent use: the cuboid set is guarded by an
// RWMutex, counters are atomic, and computed query answers (roll-ups and
// scratch aggregations) are cached in a sharded LRU with singleflight
// deduplication. Cache keys carry a generation number that every
// materialization bumps, so answers derived under an older cuboid set are
// never served once a better source may exist.
type Cube struct {
	g    *core.Graph
	dims []core.AttrID // the cube's dimensions, in declaration order

	mu      sync.RWMutex
	cuboids map[string]*cuboid

	gen    atomic.Int64
	qcache *lru.Cache[qEntry]
	hits   [numSources]atomic.Int64
	cached atomic.Int64

	scratchSz int64 // cost stand-in for answering from the base graph
}

// New returns a cube over the given dimensions (all attributes of g when
// none are given).
func New(g *core.Graph, dims ...core.AttrID) (*Cube, error) {
	if len(dims) == 0 {
		for a := 0; a < g.NumAttrs(); a++ {
			dims = append(dims, core.AttrID(a))
		}
	}
	if len(dims) == 0 {
		return nil, fmt.Errorf("cube: graph has no attributes")
	}
	if len(dims) > 16 {
		return nil, fmt.Errorf("cube: %d dimensions exceed the supported 16", len(dims))
	}
	seen := map[core.AttrID]bool{}
	for _, d := range dims {
		if int(d) < 0 || int(d) >= g.NumAttrs() {
			return nil, fmt.Errorf("cube: attribute id %d out of range", d)
		}
		if seen[d] {
			return nil, fmt.Errorf("cube: duplicate dimension %q", g.Attr(d).Name)
		}
		seen[d] = true
	}
	// Cost stand-in for a scratch computation: all node appearances plus
	// edge appearances, the data volume Algorithm 2 scans.
	var sz int64
	for n := 0; n < g.NumNodes(); n++ {
		sz += int64(g.NodeTau(core.NodeID(n)).Count())
	}
	for e := 0; e < g.NumEdges(); e++ {
		sz += int64(g.EdgeTau(core.EdgeID(e)).Count())
	}
	return &Cube{
		g:         g,
		dims:      append([]core.AttrID(nil), dims...),
		cuboids:   make(map[string]*cuboid),
		qcache:    lru.New[qEntry](lru.Config{MaxBytes: 16 << 20}),
		scratchSz: sz,
	}, nil
}

// key canonicalizes an attribute set.
func key(attrs []core.AttrID) string {
	s := append([]core.AttrID(nil), attrs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	var b strings.Builder
	for _, a := range s {
		fmt.Fprintf(&b, "%d,", a)
	}
	return b.String()
}

// Materialize computes and stores the cuboid for the given attribute set.
// Adding a cuboid advances the query-cache generation: previously cached
// roll-up and scratch answers become unreachable, so later queries re-derive
// from the (possibly better) new materialization state.
func (c *Cube) Materialize(attrs ...core.AttrID) error {
	if err := c.checkDims(attrs); err != nil {
		return err
	}
	k := key(attrs)
	c.mu.RLock()
	_, ok := c.cuboids[k]
	c.mu.RUnlock()
	if ok {
		return nil
	}
	cb, err := c.buildCuboid(attrs)
	if err != nil {
		return err
	}
	c.mu.Lock()
	if _, ok := c.cuboids[k]; !ok { // concurrent Materialize may have won
		c.cuboids[k] = cb
		c.gen.Add(1)
	}
	c.mu.Unlock()
	return nil
}

// buildCuboid aggregates every base time point under the attribute set's
// schema, without touching the cube's shared state.
func (c *Cube) buildCuboid(attrs []core.AttrID) (*cuboid, error) {
	s, err := agg.NewSchema(c.g, attrs...)
	if err != nil {
		return nil, err
	}
	cb := &cuboid{attrs: append([]core.AttrID(nil), attrs...), schema: s}
	n := c.g.Timeline().Len()
	cb.perPoint = make([]*agg.Graph, n)
	for t := 0; t < n; t++ {
		ag := agg.Aggregate(ops.At(c.g, timeline.Time(t)), s, agg.Distinct)
		cb.perPoint[t] = ag
		cb.size += int64(len(ag.Nodes) + len(ag.Edges))
	}
	return cb, nil
}

func (c *Cube) checkDims(attrs []core.AttrID) error {
	if len(attrs) == 0 {
		return fmt.Errorf("cube: empty attribute set")
	}
	for _, a := range attrs {
		found := false
		for _, d := range c.dims {
			if a == d {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("cube: attribute %q is not a cube dimension", c.g.Attr(a).Name)
		}
	}
	return nil
}

// Materialized returns the attribute sets currently materialized, apex
// first, each in canonical (sorted) order.
func (c *Cube) Materialized() [][]core.AttrID {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out [][]core.AttrID
	for _, cb := range c.cuboids {
		s := append([]core.AttrID(nil), cb.attrs...)
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) > len(out[j])
		}
		return key(out[i]) < key(out[j])
	})
	return out
}

// lattice enumerates every non-empty subset of the cube's dimensions.
func (c *Cube) lattice() [][]core.AttrID {
	n := len(c.dims)
	var out [][]core.AttrID
	for mask := 1; mask < 1<<n; mask++ {
		var attrs []core.AttrID
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				attrs = append(attrs, c.dims[i])
			}
		}
		out = append(out, attrs)
	}
	return out
}

// MaterializeAll materializes every cuboid of the lattice.
func (c *Cube) MaterializeAll() error {
	for _, attrs := range c.lattice() {
		if err := c.Materialize(attrs...); err != nil {
			return err
		}
	}
	return nil
}

// MaterializeGreedy materializes up to budget cuboids chosen by the greedy
// benefit heuristic: at each step pick the cuboid whose materialization
// most reduces the total answering cost of the whole lattice, where the
// cost of answering a cuboid is the size of the smallest materialized
// ancestor (or the base-graph scan cost if none). The apex cuboid (all
// dimensions) is always chosen first — without it most of the lattice can
// only be answered from scratch.
func (c *Cube) MaterializeGreedy(budget int) error {
	if budget <= 0 {
		return fmt.Errorf("cube: budget must be positive")
	}
	// The greedy loop reads and grows the cuboid set throughout; hold the
	// write lock for its duration (materialization is a batch setup step,
	// concurrent Query throughput matters after it, not during).
	c.mu.Lock()
	defer c.mu.Unlock()
	defer c.gen.Add(1)
	all := c.lattice()

	// Estimate cuboid sizes cheaply by materializing lazily: the greedy
	// heuristic needs |cuboid| for candidates, which we obtain by actual
	// materialization into a staging map, keeping only the chosen ones.
	// With ≤ 16 dimensions the lattice is small relative to the data.
	staged := map[string]*cuboid{}
	sizeOf := func(attrs []core.AttrID) (int64, error) {
		k := key(attrs)
		if cb, ok := c.cuboids[k]; ok {
			return cb.size, nil
		}
		if cb, ok := staged[k]; ok {
			return cb.size, nil
		}
		s, err := agg.NewSchema(c.g, attrs...)
		if err != nil {
			return 0, err
		}
		cb := &cuboid{attrs: append([]core.AttrID(nil), attrs...), schema: s}
		n := c.g.Timeline().Len()
		cb.perPoint = make([]*agg.Graph, n)
		for t := 0; t < n; t++ {
			ag := agg.Aggregate(ops.At(c.g, timeline.Time(t)), s, agg.Distinct)
			cb.perPoint[t] = ag
			cb.size += int64(len(ag.Nodes) + len(ag.Edges))
		}
		staged[k] = cb
		return cb.size, nil
	}

	// Current answering cost of each lattice member.
	costs := make(map[string]int64, len(all))
	for _, attrs := range all {
		costs[key(attrs)] = c.answerCostLocked(attrs)
	}

	for picked := 0; picked < budget && picked < len(all); picked++ {
		var bestAttrs []core.AttrID
		var bestBenefit int64 = -1
		for _, cand := range all {
			ck := key(cand)
			if _, ok := c.cuboids[ck]; ok {
				continue
			}
			candSize, err := sizeOf(cand)
			if err != nil {
				return err
			}
			var benefit int64
			for _, member := range all {
				if !subset(member, cand) {
					continue
				}
				if cur := costs[key(member)]; cur > candSize {
					benefit += cur - candSize
				}
			}
			if benefit > bestBenefit {
				bestBenefit = benefit
				bestAttrs = cand
			}
		}
		if bestAttrs == nil || bestBenefit <= 0 {
			break
		}
		bk := key(bestAttrs)
		c.cuboids[bk] = staged[bk]
		delete(staged, bk)
		for _, member := range all {
			mk := key(member)
			if subset(member, bestAttrs) && costs[mk] > c.cuboids[bk].size {
				costs[mk] = c.cuboids[bk].size
			}
		}
	}
	return nil
}

// sameOrder reports whether two attribute lists are identical, in order.
func sameOrder(a, b []core.AttrID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// subset reports whether every attribute of sub is in super.
func subset(sub, super []core.AttrID) bool {
	for _, a := range sub {
		found := false
		for _, b := range super {
			if a == b {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// answerCost is the size of the cheapest materialized source for attrs.
func (c *Cube) answerCost(attrs []core.AttrID) int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.answerCostLocked(attrs)
}

// answerCostLocked is answerCost with c.mu already held.
func (c *Cube) answerCostLocked(attrs []core.AttrID) int64 {
	if cb, ok := c.cuboids[key(attrs)]; ok {
		return cb.size
	}
	best := c.scratchSz
	for _, cb := range c.cuboids {
		if subset(attrs, cb.attrs) && cb.size < best {
			best = cb.size
		}
	}
	return best
}

// Query returns the DIST aggregate of base time point t on the given
// attribute set, answering from the exact cuboid, by roll-up from the
// smallest materialized ancestor, or from the base graph. Computed answers
// (roll-ups, permutations and scratch aggregations) are cached; an
// order-exact cuboid hit is already a slice lookup and bypasses the cache.
// Concurrent identical queries share one computation.
func (c *Cube) Query(t timeline.Time, attrs ...core.AttrID) (*agg.Graph, Source, error) {
	if err := c.checkDims(attrs); err != nil {
		return nil, Scratch, err
	}
	c.mu.RLock()
	cb, exact := c.cuboids[key(attrs)]
	c.mu.RUnlock()
	if exact && sameOrder(attrs, cb.attrs) {
		c.hits[Hit].Add(1)
		return cb.perPoint[t], Hit, nil
	}
	e, cached, err := c.qcache.Do(c.queryKey(t, attrs), qEntrySize, func() (qEntry, error) {
		return c.computeQuery(t, attrs)
	})
	if err != nil {
		return nil, Scratch, err
	}
	if cached {
		c.cached.Add(1)
	} else {
		c.hits[e.src].Add(1)
	}
	return e.g, e.src, nil
}

// queryKey builds the order-sensitive cache key of one query, prefixed
// with the current materialization generation.
func (c *Cube) queryKey(t timeline.Time, attrs []core.AttrID) string {
	b := make([]byte, 0, 16+4*len(attrs))
	b = strconv.AppendInt(b, c.gen.Load(), 10)
	b = append(b, '|')
	b = strconv.AppendInt(b, int64(t), 10)
	b = append(b, '|')
	for _, a := range attrs {
		b = strconv.AppendInt(b, int64(a), 10)
		b = append(b, ',')
	}
	return string(b)
}

// computeQuery answers a cache miss from the current materialization state.
func (c *Cube) computeQuery(t timeline.Time, attrs []core.AttrID) (qEntry, error) {
	c.mu.RLock()
	exactCb, exact := c.cuboids[key(attrs)]
	var best *cuboid
	if !exact {
		for _, cb := range c.cuboids {
			if subset(attrs, cb.attrs) && (best == nil || cb.size < best.size) {
				best = cb
			}
		}
	}
	c.mu.RUnlock()
	if exact {
		// Same attribute set in a different order: re-project so tuples
		// are encoded in the requested order (Rollup permutes for free).
		ag, err := agg.Rollup(exactCb.perPoint[t], attrs...)
		if err != nil {
			return qEntry{}, err
		}
		return qEntry{ag, Hit}, nil
	}
	if best != nil {
		ag, err := agg.Rollup(best.perPoint[t], attrs...)
		if err != nil {
			return qEntry{}, err
		}
		return qEntry{ag, Rollup}, nil
	}
	s, err := agg.NewSchema(c.g, attrs...)
	if err != nil {
		return qEntry{}, err
	}
	return qEntry{agg.Aggregate(ops.At(c.g, t), s, agg.Distinct), Scratch}, nil
}

// Hits returns how many queries were answered (computed) per source. Cache
// hits of previously computed answers are reported by CachedAnswers, not
// here, so the per-source counts reflect actual derivation work.
func (c *Cube) Hits() map[Source]int {
	out := make(map[Source]int, numSources)
	for s := Source(0); s < numSources; s++ {
		if n := c.hits[s].Load(); n > 0 {
			out[s] = int(n)
		}
	}
	return out
}

// CachedAnswers returns how many queries were served from the query cache.
func (c *Cube) CachedAnswers() int64 { return c.cached.Load() }

// CacheStats exposes the query cache's internal counters.
func (c *Cube) CacheStats() lru.Stats { return c.qcache.Stats() }

// Size returns the total stored aggregate entries across materialized
// cuboids.
func (c *Cube) Size() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var sz int64
	for _, cb := range c.cuboids {
		sz += cb.size
	}
	return sz
}

// Describe renders the materialization state for logs and tools.
func (c *Cube) Describe() string {
	mats := c.Materialized()
	c.mu.RLock()
	count := len(c.cuboids)
	var total int64
	sizes := make([]int64, len(mats))
	for i, attrs := range mats {
		sizes[i] = c.cuboids[key(attrs)].size
	}
	for _, cb := range c.cuboids {
		total += cb.size
	}
	c.mu.RUnlock()
	var b strings.Builder
	fmt.Fprintf(&b, "cube over %d dimensions, %d/%d cuboids materialized, size %d\n",
		len(c.dims), count, (1<<len(c.dims))-1, total)
	for i, attrs := range mats {
		names := make([]string, len(attrs))
		for i, a := range attrs {
			names[i] = c.g.Attr(a).Name
		}
		fmt.Fprintf(&b, "  (%s) size %d\n", strings.Join(names, ","), sizes[i])
	}
	return b.String()
}
