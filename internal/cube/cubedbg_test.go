package cube

import (
	"math/rand"
	"testing"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/gtest"
	"repro/internal/ops"
	"repro/internal/timeline"
)

func TestDebugSeed(t *testing.T) {
	r := rand.New(rand.NewSource(-6938705204068704594))
	for iter := 0; iter < 50; iter++ {
		g := gtest.RandomGraph(r, gtest.DefaultParams())
		if g.NumAttrs() == 0 {
			continue
		}
		c, err := New(g)
		if err != nil {
			t.Fatal(err)
		}
		switch r.Intn(3) {
		case 0:
		case 1:
			if err := c.MaterializeGreedy(1 + r.Intn(3)); err != nil {
				t.Fatal(err)
			}
		default:
			if err := c.MaterializeAll(); err != nil {
				t.Fatal(err)
			}
		}
		for trial := 0; trial < 4; trial++ {
			n := 1 + r.Intn(g.NumAttrs())
			perm := r.Perm(g.NumAttrs())
			attrs := make([]core.AttrID, n)
			for i := 0; i < n; i++ {
				attrs[i] = core.AttrID(perm[i])
			}
			tp := timeline.Time(r.Intn(g.Timeline().Len()))
			got, src, err := c.Query(tp, attrs...)
			if err != nil {
				t.Fatal(err)
			}
			want := agg.Aggregate(ops.At(g, tp), agg.MustSchema(g, attrs...), agg.Distinct)
			if !got.Equal(want) {
				t.Fatalf("iter %d trial %d: src=%v attrs=%v tp=%d\ngot:\n%s\nwant:\n%s\nmaterialized=%v",
					iter, trial, src, attrs, tp, got, want, c.Materialized())
			}
		}
	}
}
