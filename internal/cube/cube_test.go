package cube

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/gtest"
	"repro/internal/ops"
	"repro/internal/timeline"
)

func TestNewValidation(t *testing.T) {
	g := core.PaperExample()
	if _, err := New(g, core.AttrID(99)); err == nil {
		t.Error("out-of-range dimension should fail")
	}
	if _, err := New(g, 0, 0); err == nil {
		t.Error("duplicate dimension should fail")
	}
	tl := timeline.MustNew("a")
	b := core.NewBuilder(tl)
	n := b.AddNode("x")
	b.SetNodeTime(n, 0)
	noAttrs := b.MustBuild()
	if _, err := New(noAttrs); err == nil {
		t.Error("graph without attributes should fail")
	}
}

func TestLatticeEnumeration(t *testing.T) {
	g := core.PaperExample() // 2 attributes → 3 cuboids
	c, err := New(g)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(c.lattice()); got != 3 {
		t.Fatalf("lattice size = %d, want 3", got)
	}
	if err := c.MaterializeAll(); err != nil {
		t.Fatal(err)
	}
	if got := len(c.Materialized()); got != 3 {
		t.Fatalf("materialized = %d, want 3", got)
	}
}

func TestQuerySources(t *testing.T) {
	g := core.PaperExample()
	gender := g.MustAttr("gender")
	pubs := g.MustAttr("publications")
	c, err := New(g)
	if err != nil {
		t.Fatal(err)
	}

	// Nothing materialized: scratch.
	ag, src, err := c.Query(0, gender)
	if err != nil || src != Scratch {
		t.Fatalf("source = %v, err %v, want scratch", src, err)
	}
	direct := agg.Aggregate(ops.At(g, 0), agg.MustSchema(g, gender), agg.Distinct)
	if !ag.Equal(direct) {
		t.Error("scratch answer wrong")
	}

	// Materialize apex: subsets answer by rollup.
	if err := c.Materialize(gender, pubs); err != nil {
		t.Fatal(err)
	}
	ag2, src, err := c.Query(0, gender)
	if err != nil || src != Rollup {
		t.Fatalf("source = %v, err %v, want rollup", src, err)
	}
	if !ag2.Equal(direct) {
		t.Error("rollup answer differs from direct aggregation")
	}

	// Exact cuboid: hit.
	if err := c.Materialize(gender); err != nil {
		t.Fatal(err)
	}
	_, src, err = c.Query(0, gender)
	if err != nil || src != Hit {
		t.Fatalf("source = %v, err %v, want hit", src, err)
	}

	hits := c.Hits()
	if hits[Scratch] != 1 || hits[Rollup] != 1 || hits[Hit] != 1 {
		t.Errorf("hits = %v", hits)
	}
}

func TestQueryRejectsNonDimension(t *testing.T) {
	g := core.PaperExample()
	c, err := New(g, g.MustAttr("gender"))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Query(0, g.MustAttr("publications")); err == nil {
		t.Error("querying a non-dimension should fail")
	}
	if _, _, err := c.Query(0); err == nil {
		t.Error("empty query should fail")
	}
}

func TestMaterializeGreedyReducesAnsweringCost(t *testing.T) {
	g := dataset.MovieLensScaled(1, 0.02)
	c, err := New(g)
	if err != nil {
		t.Fatal(err)
	}
	lattice := c.lattice()
	costBefore := int64(0)
	for _, attrs := range lattice {
		costBefore += c.answerCost(attrs)
	}
	if err := c.MaterializeGreedy(2); err != nil {
		t.Fatal(err)
	}
	mats := c.Materialized()
	if len(mats) == 0 || len(mats) > 2 {
		t.Fatalf("materialized = %d cuboids, want 1..2", len(mats))
	}
	costAfter := int64(0)
	for _, attrs := range lattice {
		costAfter += c.answerCost(attrs)
	}
	if costAfter >= costBefore {
		t.Errorf("greedy did not reduce lattice answering cost: %d → %d", costBefore, costAfter)
	}
	// Every query the greedy choice covers must be answerable without
	// scratch and still be correct.
	covered := mats[0]
	got, src, err := c.Query(0, covered[0])
	if err != nil {
		t.Fatal(err)
	}
	if src == Scratch {
		t.Errorf("query on a covered attribute still answers from scratch")
	}
	want := agg.Aggregate(ops.At(g, 0), agg.MustSchema(g, covered[0]), agg.Distinct)
	if !got.Equal(want) {
		t.Error("greedy-materialized answer is wrong")
	}
}

func TestMaterializeGreedyImprovesAnswering(t *testing.T) {
	g := dataset.MovieLensScaled(1, 0.02)
	c, err := New(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.MaterializeGreedy(3); err != nil {
		t.Fatal(err)
	}
	// After 3 cuboids, every single-attribute query must avoid scratch.
	for a := 0; a < g.NumAttrs(); a++ {
		_, src, err := c.Query(0, core.AttrID(a))
		if err != nil {
			t.Fatal(err)
		}
		if src == Scratch {
			t.Errorf("query on %q still answers from scratch", g.Attr(core.AttrID(a)).Name)
		}
	}
	if !strings.Contains(c.Describe(), "cuboids materialized") {
		t.Error("Describe output malformed")
	}
}

func TestGreedyBudgetValidation(t *testing.T) {
	g := core.PaperExample()
	c, _ := New(g)
	if err := c.MaterializeGreedy(0); err == nil {
		t.Error("non-positive budget should fail")
	}
}

func TestQuickCubeAnswersMatchScratch(t *testing.T) {
	// Whatever the materialization state, every query must equal the
	// from-scratch aggregate.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := gtest.RandomGraph(r, gtest.DefaultParams())
		if g.NumAttrs() == 0 {
			return true
		}
		c, err := New(g)
		if err != nil {
			return false
		}
		switch r.Intn(3) {
		case 0: // nothing
		case 1:
			if err := c.MaterializeGreedy(1 + r.Intn(3)); err != nil {
				return false
			}
		default:
			if err := c.MaterializeAll(); err != nil {
				return false
			}
		}
		for trial := 0; trial < 4; trial++ {
			n := 1 + r.Intn(g.NumAttrs())
			perm := r.Perm(g.NumAttrs())
			attrs := make([]core.AttrID, n)
			for i := 0; i < n; i++ {
				attrs[i] = core.AttrID(perm[i])
			}
			tp := timeline.Time(r.Intn(g.Timeline().Len()))
			got, _, err := c.Query(tp, attrs...)
			if err != nil {
				return false
			}
			want := agg.Aggregate(ops.At(g, tp), agg.MustSchema(g, attrs...), agg.Distinct)
			if !got.Equal(want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQueryCacheGenerations(t *testing.T) {
	g := core.PaperExample()
	gender := g.MustAttr("gender")
	pubs := g.MustAttr("publications")
	c, err := New(g)
	if err != nil {
		t.Fatal(err)
	}
	// First query computes from scratch; the repeat is a cache hit that
	// does not advance any source counter.
	if _, src, _ := c.Query(0, gender); src != Scratch {
		t.Fatalf("source = %v, want scratch", src)
	}
	if _, src, _ := c.Query(0, gender); src != Scratch {
		t.Fatalf("cached source = %v, want scratch", src)
	}
	if n := c.CachedAnswers(); n != 1 {
		t.Fatalf("cached answers = %d, want 1", n)
	}
	if hits := c.Hits(); hits[Scratch] != 1 {
		t.Fatalf("hits = %v, want one scratch compute", hits)
	}
	// Materializing bumps the generation: the stale scratch answer is
	// unreachable and the same query now derives by roll-up.
	if err := c.Materialize(gender, pubs); err != nil {
		t.Fatal(err)
	}
	if _, src, _ := c.Query(0, gender); src != Rollup {
		t.Fatalf("post-materialize source = %v, want rollup", src)
	}
}

func TestCubeConcurrentQueries(t *testing.T) {
	g := core.PaperExample()
	gender := g.MustAttr("gender")
	pubs := g.MustAttr("publications")
	c, err := New(g)
	if err != nil {
		t.Fatal(err)
	}
	attrSets := [][]core.AttrID{{gender}, {pubs}, {gender, pubs}, {pubs, gender}}
	n := g.Timeline().Len()
	want := make(map[string]*agg.Graph)
	for _, attrs := range attrSets {
		for tp := 0; tp < n; tp++ {
			k := key(attrs) + string(rune('0'+tp)) + g.Attr(attrs[0]).Name
			want[k] = agg.Aggregate(ops.At(g, timeline.Time(tp)), agg.MustSchema(g, attrs...), agg.Distinct)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if w == 0 {
				if err := c.Materialize(gender, pubs); err != nil {
					errs <- err
					return
				}
			}
			if w == 1 {
				if err := c.MaterializeGreedy(2); err != nil {
					errs <- err
					return
				}
			}
			for rep := 0; rep < 20; rep++ {
				attrs := attrSets[(w+rep)%len(attrSets)]
				tp := timeline.Time((w * rep) % n)
				got, _, err := c.Query(tp, attrs...)
				if err != nil {
					errs <- err
					return
				}
				k := key(attrs) + string(rune('0'+int(tp))) + g.Attr(attrs[0]).Name
				if !got.Equal(want[k]) {
					errs <- fmt.Errorf("worker %d: wrong answer for %v@%d", w, attrs, tp)
					return
				}
				c.Hits()
				c.Size()
			}
			_ = c.Describe()
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
