package stream

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/ops"
	"repro/internal/timeline"
)

// paperSnapshots feeds the running example of Fig. 1 point by point.
func paperSnapshots() (attrs []core.AttrSpec, labels []string, snaps []Snapshot) {
	attrs = []core.AttrSpec{
		{Name: "gender", Kind: core.Static},
		{Name: "publications", Kind: core.TimeVarying},
	}
	n := func(label, gender, pubs string) NodeRecord {
		return NodeRecord{
			Label:   label,
			Static:  map[string]string{"gender": gender},
			Varying: map[string]string{"publications": pubs},
		}
	}
	labels = []string{"t0", "t1", "t2"}
	snaps = []Snapshot{
		{
			Nodes: []NodeRecord{n("u1", "m", "3"), n("u2", "f", "1"), n("u3", "f", "1"), n("u4", "f", "2")},
			Edges: []EdgeRecord{{"u1", "u2"}, {"u1", "u3"}, {"u2", "u4"}},
		},
		{
			Nodes: []NodeRecord{n("u1", "m", "1"), n("u2", "f", "1"), n("u4", "f", "1")},
			Edges: []EdgeRecord{{"u1", "u2"}, {"u2", "u4"}, {"u1", "u4"}},
		},
		{
			Nodes: []NodeRecord{n("u2", "f", "1"), n("u4", "f", "1"), n("u5", "m", "3")},
			Edges: []EdgeRecord{{"u2", "u4"}, {"u4", "u5"}, {"u2", "u5"}},
		},
	}
	return attrs, labels, snaps
}

func buildSeries(t *testing.T) *Series {
	t.Helper()
	attrs, labels, snaps := paperSnapshots()
	s := New(attrs...)
	if err := s.RegisterAggregation("gp", "gender", "publications"); err != nil {
		t.Fatal(err)
	}
	for i, snap := range snaps {
		if err := s.Append(labels[i], snap); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestSeriesGraphMatchesFixture(t *testing.T) {
	s := buildSeries(t)
	g, err := s.Graph()
	if err != nil {
		t.Fatal(err)
	}
	want := core.PaperExample()
	if g.NumNodes() != want.NumNodes() || g.NumEdges() != want.NumEdges() {
		t.Fatalf("sizes %d/%d, want %d/%d", g.NumNodes(), g.NumEdges(), want.NumNodes(), want.NumEdges())
	}
	for n := 0; n < want.NumNodes(); n++ {
		label := want.NodeLabel(core.NodeID(n))
		gn, ok := g.NodeByLabel(label)
		if !ok || !g.NodeTau(gn).Equal(want.NodeTau(core.NodeID(n))) {
			t.Errorf("τu(%s) differs", label)
		}
	}
	// Cache: same pointer until the next append.
	g2, _ := s.Graph()
	if g != g2 {
		t.Error("Graph() should be cached")
	}
}

func TestWindowUnionAllMatchesMaterializedAggregation(t *testing.T) {
	s := buildSeries(t)
	nodes, edges, err := s.WindowUnionAll("gp", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 3e: ALL weight of (f,1) on the union of (t0, t1) is 4.
	if nodes["f,1"] != 4 {
		t.Errorf("window w(f,1) = %d, want 4", nodes["f,1"])
	}
	// Cross-check every weight against the full engine.
	g, _ := s.Graph()
	schema := agg.MustSchema(g, g.MustAttr("gender"), g.MustAttr("publications"))
	tl := g.Timeline()
	full := agg.Aggregate(ops.Union(g, tl.Range(0, 1), tl.Range(0, 1)), schema, agg.All)
	for tu, w := range full.Nodes {
		if nodes[schema.Label(tu)] != w {
			t.Errorf("node %s: window %d, engine %d", schema.Label(tu), nodes[schema.Label(tu)], w)
		}
	}
	for k, w := range full.Edges {
		key := "(" + schema.Label(k.From) + ")→(" + schema.Label(k.To) + ")"
		if edges[key] != w {
			t.Errorf("edge %s: window %d, engine %d", key, edges[key], w)
		}
	}
}

func TestRegisterBackfillsExistingPoints(t *testing.T) {
	attrs, labels, snaps := paperSnapshots()
	s := New(attrs...)
	for i, snap := range snaps {
		if err := s.Append(labels[i], snap); err != nil {
			t.Fatal(err)
		}
	}
	// Register after the fact: back-filled results must match.
	if err := s.RegisterAggregation("g", "gender"); err != nil {
		t.Fatal(err)
	}
	nodes, _, err := s.WindowUnionAll("g", 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Appearances: m = u1×2 + u5×1 = 3; f = u2×3 + u3×1 + u4×3 = 7.
	if nodes["m"] != 3 || nodes["f"] != 7 {
		t.Errorf("backfilled window = %v, want m:3 f:7", nodes)
	}
}

func TestSeriesValidation(t *testing.T) {
	attrs, labels, snaps := paperSnapshots()
	s := New(attrs...)
	if _, err := s.Graph(); err == nil {
		t.Error("Graph of empty series should fail")
	}
	if err := s.Append(labels[0], snaps[0]); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(labels[0], snaps[1]); err == nil {
		t.Error("duplicate label should fail")
	}
	if err := s.Append("tX", Snapshot{Edges: []EdgeRecord{{"a", "b"}}}); err == nil {
		t.Error("edge without nodes should fail")
	}
	if err := s.Append("tY", Snapshot{Nodes: []NodeRecord{{Label: ""}}}); err == nil {
		t.Error("empty node label should fail")
	}
	if err := s.Append("tZ", Snapshot{Nodes: []NodeRecord{{Label: "a"}, {Label: "a"}}}); err == nil {
		t.Error("duplicate node in snapshot should fail")
	}
	if err := s.RegisterAggregation("gp", "nope"); err == nil {
		t.Error("unknown attribute should fail")
	}
	if err := s.RegisterAggregation(""); err == nil {
		t.Error("no attributes should fail")
	}
	if _, _, err := s.WindowUnionAll("missing", 0, 0); err == nil {
		t.Error("unknown aggregation should fail")
	}
}

func TestStaticConflictDetected(t *testing.T) {
	s := New(core.AttrSpec{Name: "gender", Kind: core.Static})
	if err := s.Append("t0", Snapshot{Nodes: []NodeRecord{{Label: "a", Static: map[string]string{"gender": "m"}}}}); err != nil {
		t.Fatal(err)
	}
	// The conflicting batch is rejected at Append time (two-phase
	// validation), leaving the series untouched.
	if err := s.Append("t1", Snapshot{Nodes: []NodeRecord{{Label: "a", Static: map[string]string{"gender": "f"}}}}); err == nil {
		t.Error("static attribute conflict should fail Append")
	}
	if got := s.Len(); got != 1 {
		t.Errorf("rejected batch must not extend the series: Len()=%d", got)
	}
	g, err := s.Graph()
	if err != nil {
		t.Fatalf("Graph() after rejected batch: %v", err)
	}
	if g.Timeline().Len() != 1 {
		t.Errorf("graph has %d points, want 1", g.Timeline().Len())
	}
	// Repeating the original (consistent) value is fine.
	if err := s.Append("t1", Snapshot{Nodes: []NodeRecord{{Label: "a", Static: map[string]string{"gender": "m"}}}}); err != nil {
		t.Errorf("consistent static value should be accepted: %v", err)
	}
}

func TestQuickWindowEqualsEngine(t *testing.T) {
	// Random streams: WindowUnionAll must equal union-ALL aggregation on
	// the materialized graph for every window.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := New(
			core.AttrSpec{Name: "color", Kind: core.Static},
			core.AttrSpec{Name: "load", Kind: core.TimeVarying},
		)
		if err := s.RegisterAggregation("c", "color"); err != nil {
			return false
		}
		if err := s.RegisterAggregation("cl", "color", "load"); err != nil {
			return false
		}
		nPoints := 2 + r.Intn(4)
		nNodes := 2 + r.Intn(8)
		colors := make([]string, nNodes)
		for i := range colors {
			colors[i] = fmt.Sprintf("c%d", r.Intn(3))
		}
		for t := 0; t < nPoints; t++ {
			var snap Snapshot
			alive := map[int]bool{}
			for i := 0; i < nNodes; i++ {
				if r.Intn(3) == 0 {
					continue
				}
				alive[i] = true
				snap.Nodes = append(snap.Nodes, NodeRecord{
					Label:   fmt.Sprintf("n%d", i),
					Static:  map[string]string{"color": colors[i]},
					Varying: map[string]string{"load": fmt.Sprintf("%d", r.Intn(3))},
				})
			}
			for tries := 0; tries < 10; tries++ {
				u, v := r.Intn(nNodes), r.Intn(nNodes)
				if u != v && alive[u] && alive[v] {
					snap.Edges = append(snap.Edges, EdgeRecord{fmt.Sprintf("n%d", u), fmt.Sprintf("n%d", v)})
				}
			}
			// Deduplicate edges (the model has at most one (u,v) edge per
			// time point; duplicates would double-count).
			seen := map[EdgeRecord]bool{}
			var dedup []EdgeRecord
			for _, e := range snap.Edges {
				if !seen[e] {
					seen[e] = true
					dedup = append(dedup, e)
				}
			}
			snap.Edges = dedup
			if len(snap.Nodes) == 0 {
				snap.Nodes = append(snap.Nodes, NodeRecord{
					Label:   "n0",
					Static:  map[string]string{"color": colors[0]},
					Varying: map[string]string{"load": "0"},
				})
			}
			if err := s.Append(fmt.Sprintf("t%d", t), snap); err != nil {
				return false
			}
		}
		g, err := s.Graph()
		if err != nil {
			return false
		}
		from := r.Intn(nPoints)
		to := from + r.Intn(nPoints-from)
		for _, name := range []string{"c", "cl"} {
			nodes, edges, err := s.WindowUnionAll(name, from, to)
			if err != nil {
				return false
			}
			var attrs []core.AttrID
			if name == "c" {
				attrs = []core.AttrID{g.MustAttr("color")}
			} else {
				attrs = []core.AttrID{g.MustAttr("color"), g.MustAttr("load")}
			}
			schema := agg.MustSchema(g, attrs...)
			iv := g.Timeline().Range(timeline.Time(from), timeline.Time(to))
			full := agg.Aggregate(ops.Union(g, iv, iv), schema, agg.All)
			if int64(len(nodes)) != int64(len(full.Nodes)) {
				return false
			}
			for tu, w := range full.Nodes {
				if nodes[schema.Label(tu)] != w {
					return false
				}
			}
			for k, w := range full.Edges {
				key := "(" + schema.Label(k.From) + ")→(" + schema.Label(k.To) + ")"
				if edges[key] != w {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestSeriesConcurrentHammer exercises the Series lock under -race: one
// goroutine keeps appending fresh time points while others hammer the
// read paths (Len, Labels, WindowUnionAll, Graph) and a late
// RegisterAggregation back-fills mid-stream.
func TestSeriesConcurrentHammer(t *testing.T) {
	attrs, labels, snaps := paperSnapshots()
	s := New(attrs...)
	if err := s.RegisterAggregation("gp", "gender", "publications"); err != nil {
		t.Fatal(err)
	}
	for i, snap := range snaps {
		if err := s.Append(labels[i], snap); err != nil {
			t.Fatal(err)
		}
	}

	const extra = 40
	done := make(chan struct{})
	var wg sync.WaitGroup

	wg.Add(1)
	go func() { // writer: keeps the series growing
		defer wg.Done()
		defer close(done)
		for i := 0; i < extra; i++ {
			snap := snaps[i%len(snaps)]
			if err := s.Append(fmt.Sprintf("x%d", i), snap); err != nil {
				t.Errorf("append x%d: %v", i, err)
				return
			}
		}
	}()

	wg.Add(1)
	go func() { // late registration back-fills while appends run
		defer wg.Done()
		if err := s.RegisterAggregation("g", "gender"); err != nil {
			t.Errorf("register: %v", err)
		}
	}()

	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				n := s.Len()
				if got := len(s.Labels()); got < n {
					t.Errorf("Labels len %d < earlier Len %d", got, n)
					return
				}
				if n > 0 {
					nodes, _, err := s.WindowUnionAll("gp", 0, n-1)
					if err != nil || len(nodes) == 0 {
						t.Errorf("window [0,%d]: %v (nodes %d)", n-1, err, len(nodes))
						return
					}
				}
				if _, err := s.Graph(); err != nil {
					t.Errorf("graph: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()

	if got, want := s.Len(), len(labels)+extra; got != want {
		t.Fatalf("final Len = %d, want %d", got, want)
	}
	if _, _, err := s.WindowUnionAll("g", 0, s.Len()-1); err != nil {
		t.Fatalf("back-filled aggregation: %v", err)
	}
}
