package stream

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/timeline"
)

// graphGob canonicalizes a graph for equality checks through its stable
// textual dump: timeline labels, node labels with attribute histories, and
// edge endpoint pairs per time point.
func graphDump(t *testing.T, g *core.Graph) []byte {
	t.Helper()
	var b bytes.Buffer
	tl := g.Timeline()
	for ti := 0; ti < tl.Len(); ti++ {
		b.WriteString(tl.Label(timeline.Time(ti)))
		b.WriteByte('\n')
	}
	attrs := g.Attrs()
	for n := 0; n < g.NumNodes(); n++ {
		id := core.NodeID(n)
		b.WriteString(g.NodeLabel(id))
		for ti := 0; ti < tl.Len(); ti++ {
			if !g.NodeTau(id).Contains(ti) {
				continue
			}
			b.WriteByte(' ')
			b.WriteString(tl.Label(timeline.Time(ti)))
			for a := range attrs {
				b.WriteByte('=')
				b.WriteString(g.ValueString(core.AttrID(a), id, timeline.Time(ti)))
			}
		}
		b.WriteByte('\n')
	}
	for e := 0; e < g.NumEdges(); e++ {
		id := core.EdgeID(e)
		ep := g.Edge(id)
		b.WriteString(g.NodeLabel(ep.U))
		b.WriteString("->")
		b.WriteString(g.NodeLabel(ep.V))
		for ti := 0; ti < tl.Len(); ti++ {
			if g.EdgeTau(id).Contains(ti) {
				b.WriteByte(' ')
				b.WriteString(tl.Label(timeline.Time(ti)))
			}
		}
		b.WriteByte('\n')
	}
	return b.Bytes()
}

// TestAppendAtInsertsBeforeLabel checks that a retroactive append lands at
// the requested valid-time position while the journal keeps txn order.
func TestAppendAtInsertsBeforeLabel(t *testing.T) {
	attrs, labels, snaps := paperSnapshots()
	s := New(attrs...)
	for i, snap := range snaps {
		if err := s.Append(labels[i], snap); err != nil {
			t.Fatal(err)
		}
	}
	late := Snapshot{Nodes: []NodeRecord{{
		Label:   "u9",
		Static:  map[string]string{"gender": "m"},
		Varying: map[string]string{"publications": "5"},
	}}}
	pos, err := s.AppendAt("t0b", late, "t1")
	if err != nil {
		t.Fatalf("AppendAt: %v", err)
	}
	if pos != 1 {
		t.Fatalf("AppendAt position = %d, want 1", pos)
	}
	if got, want := s.Labels(), []string{"t0", "t0b", "t1", "t2"}; len(got) != len(want) {
		t.Fatalf("labels = %v, want %v", got, want)
	} else {
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("labels = %v, want %v", got, want)
			}
		}
	}
	if s.Txn() != 4 {
		t.Fatalf("Txn = %d, want 4", s.Txn())
	}
	j := s.Journal()
	if len(j) != 4 {
		t.Fatalf("journal has %d entries, want 4", len(j))
	}
	// Transaction order is ingest order: the retro record is LAST in the
	// journal even though its valid-time position is second.
	if j[3].Label != "t0b" || j[3].Before != "t1" {
		t.Fatalf("journal tail = %+v, want label t0b before t1", j[3])
	}
	for i := 0; i < 3; i++ {
		if j[i].Before != "" {
			t.Fatalf("journal[%d].Before = %q, want tail append", i, j[i].Before)
		}
	}
}

// TestAppendAtValidation covers the rejection paths: unknown anchor,
// duplicate label, and schema violations travel through the same
// validation as Append.
func TestAppendAtValidation(t *testing.T) {
	attrs, labels, snaps := paperSnapshots()
	s := New(attrs...)
	for i, snap := range snaps {
		if err := s.Append(labels[i], snap); err != nil {
			t.Fatal(err)
		}
	}
	ok := Snapshot{Nodes: []NodeRecord{{Label: "u9", Static: map[string]string{"gender": "m"}}}}
	if _, err := s.AppendAt("tX", ok, "nope"); err == nil {
		t.Error("AppendAt before unknown label succeeded")
	}
	if _, err := s.AppendAt("t1", ok, "t2"); err == nil {
		t.Error("AppendAt with duplicate point label succeeded")
	}
	// Static conflict with an existing node must be caught retroactively too.
	bad := Snapshot{Nodes: []NodeRecord{{Label: "u1", Static: map[string]string{"gender": "f"}}}}
	if _, err := s.AppendAt("tY", bad, "t1"); err == nil {
		t.Error("AppendAt with conflicting static value succeeded")
	}
	if s.Txn() != 3 || len(s.Labels()) != 3 {
		t.Fatalf("failed appends mutated the series: txn=%d labels=%v", s.Txn(), s.Labels())
	}
}

// TestReplayToPrefixesJournal checks ReplayTo(k) equals replaying the
// first k journal records into a fresh series, for every k, across a
// history with retroactive inserts.
func TestReplayToPrefixesJournal(t *testing.T) {
	attrs, labels, snaps := paperSnapshots()
	s := New(attrs...)
	if err := s.Append(labels[0], snaps[0]); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(labels[2], snaps[2]); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AppendAt(labels[1], snaps[1], labels[2]); err != nil {
		t.Fatal(err)
	}
	journal := s.Journal()
	for txn := 1; txn <= len(journal); txn++ {
		got, err := s.ReplayTo(txn)
		if err != nil {
			t.Fatalf("ReplayTo(%d): %v", txn, err)
		}
		ref := New(attrs...)
		for _, e := range journal[:txn] {
			if e.Before != "" {
				if _, err := ref.AppendAt(e.Label, e.Snap, e.Before); err != nil {
					t.Fatal(err)
				}
			} else if err := ref.Append(e.Label, e.Snap); err != nil {
				t.Fatal(err)
			}
		}
		want, err := ref.Graph()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(graphDump(t, got), graphDump(t, want)) {
			t.Fatalf("ReplayTo(%d) diverges from prefix replay:\n%s\nvs\n%s",
				txn, graphDump(t, got), graphDump(t, want))
		}
	}
	// Bounds: zero and beyond-head are rejected.
	if _, err := s.ReplayTo(0); err == nil {
		t.Error("ReplayTo(0) succeeded")
	}
	if _, err := s.ReplayTo(len(journal) + 1); err == nil {
		t.Error("ReplayTo beyond head succeeded")
	}
}

// TestReplayToHeadMatchesGraph checks that replaying to the head txn is
// the same graph the live accumulator serves.
func TestReplayToHeadMatchesGraph(t *testing.T) {
	s := buildSeries(t)
	head, err := s.ReplayTo(s.Txn())
	if err != nil {
		t.Fatal(err)
	}
	live, err := s.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(graphDump(t, head), graphDump(t, live)) {
		t.Fatal("ReplayTo(head) diverges from the live graph")
	}
}
