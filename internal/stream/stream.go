// Package stream supports evolving graphs that arrive one time point at a
// time — the interactive setting the paper's conclusion envisions.
//
// A Series ingests snapshots (the nodes and edges alive at the new time
// point, with attribute values) and maintains, for every registered
// aggregation, the per-time-point non-distinct (ALL) aggregate computed
// once at ingestion. Because union + ALL aggregation is T-distributive
// (§4.3), the aggregate of any time window is then the weight-wise sum of
// the stored per-point aggregates — no re-scan of history.
//
// A full core.Graph over everything ingested so far can be materialized at
// any time (and is cached between appends) for operators and explorations
// that need the complete model. The series feeds every append into a
// core.Accumulator, so materializing after an append costs O(batch + V + E)
// — a snapshot of shared columns — rather than a replay of the whole
// history. Validation is two-phase: a batch is checked completely (including
// static-attribute conflicts with earlier points) before any state changes,
// so a rejected batch leaves no trace and never reaches a write-ahead log.
package stream

import (
	"fmt"
	"slices"
	"sync"

	"repro/internal/core"
	"repro/internal/dict"
)

// NodeRecord describes one node alive at the appended time point.
type NodeRecord struct {
	Label string
	// Static holds static attribute values; values for a node seen before
	// must not contradict the earlier ones.
	Static map[string]string
	// Varying holds this time point's values of time-varying attributes.
	Varying map[string]string
}

// EdgeRecord describes one directed interaction at the appended time
// point. Both endpoints must appear in the snapshot's node list.
type EdgeRecord struct {
	U, V string
}

// Snapshot is the content of one time point.
type Snapshot struct {
	Nodes []NodeRecord
	Edges []EdgeRecord
}

// JournalEntry is one ingested batch in transaction order: the valid-time
// label it created, the batch content, and — for retroactive ingests — the
// pre-existing label it was inserted before ("" for a tail append). The
// journal is the series' transaction-time axis: replaying entries 0..n in
// order reconstructs the exact series state after transaction n.
type JournalEntry struct {
	Label  string
	Before string
	Snap   Snapshot
}

// aggSpec is one registered aggregation with its per-point results.
type aggSpec struct {
	attrs []string
	// nodes[t][tupleLabel] and edges[t][pairLabel] are the ALL aggregate
	// of time point t, keyed by decoded labels so they survive dictionary
	// growth across appends.
	nodes []map[string]int64
	edges []map[string]int64
}

// Series accumulates an evolving graph. It is safe for concurrent use:
// appends and registrations take the write lock, window queries and
// materialization the read lock, so a serving layer can ingest while
// answering queries.
type Series struct {
	mu     sync.RWMutex
	attrs  []core.AttrSpec
	labels []string
	snaps  []Snapshot

	// journal records every ingested batch in transaction (arrival) order,
	// which differs from valid order once a retroactive batch lands.
	journal []JournalEntry

	aggs map[string]*aggSpec

	acc    *core.Accumulator
	cached *core.Graph // latest snapshot; nil when stale
}

// New returns an empty series with the given attribute schema.
func New(attrs ...core.AttrSpec) *Series {
	return &Series{
		attrs: append([]core.AttrSpec(nil), attrs...),
		aggs:  map[string]*aggSpec{},
		acc:   core.NewAccumulator(attrs...),
	}
}

// Len returns the number of time points ingested.
func (s *Series) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.labels)
}

// Labels returns the ingested time point labels in order.
func (s *Series) Labels() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]string(nil), s.labels...)
}

// RegisterAggregation adds an aggregation (by attribute names) whose
// per-point ALL aggregates are maintained from the next Append on; already
// ingested points are back-filled.
func (s *Series) RegisterAggregation(name string, attrNames ...string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.aggs[name]; dup {
		return fmt.Errorf("stream: aggregation %q already registered", name)
	}
	if len(attrNames) == 0 {
		return fmt.Errorf("stream: aggregation needs at least one attribute")
	}
	for _, n := range attrNames {
		found := false
		for _, a := range s.attrs {
			if a.Name == n {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("stream: unknown attribute %q", n)
		}
	}
	spec := &aggSpec{attrs: append([]string(nil), attrNames...)}
	for i := range s.snaps {
		nodes, edges := aggregateSnapshot(s.snaps[i], spec.attrs)
		spec.nodes = append(spec.nodes, nodes)
		spec.edges = append(spec.edges, edges)
	}
	s.aggs[name] = spec
	return nil
}

// Append ingests the next time point. The label must be new; edges must
// reference snapshot nodes; nodes must carry values for every attribute of
// the schema (static values may be omitted after the node's first
// appearance, and must not contradict the value recorded at an earlier
// point). The whole batch is validated before any state changes: a
// returned error means the series is exactly as it was.
func (s *Series) Append(label string, snap Snapshot) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.validate(label, snap); err != nil {
		return err
	}
	s.apply(label, snap)
	return nil
}

// validate checks a batch against the schema and the accumulated state
// without mutating anything. Called with the write lock held.
func (s *Series) validate(label string, snap Snapshot) error {
	for _, l := range s.labels {
		if l == label {
			return fmt.Errorf("stream: duplicate time point label %q", label)
		}
	}
	present := make(map[string]bool, len(snap.Nodes))
	for _, n := range snap.Nodes {
		if n.Label == "" {
			return fmt.Errorf("stream: node with empty label at %s", label)
		}
		if present[n.Label] {
			return fmt.Errorf("stream: node %q appears twice at %s", n.Label, label)
		}
		present[n.Label] = true
		for ai, spec := range s.attrs {
			if spec.Kind != core.Static {
				continue
			}
			v, ok := n.Static[spec.Name]
			if !ok {
				continue
			}
			id, seen := s.acc.NodeID(n.Label)
			if !seen {
				continue
			}
			prev := s.acc.StaticValue(core.AttrID(ai), id)
			if prev != dict.None && prev != s.acc.StaticCode(core.AttrID(ai), v) {
				return fmt.Errorf("stream: node %s static attribute %s changed from %q to %q",
					n.Label, spec.Name, s.acc.ValueString(core.AttrID(ai), prev), v)
			}
		}
	}
	for _, e := range snap.Edges {
		if !present[e.U] || !present[e.V] {
			return fmt.Errorf("stream: edge (%s,%s) references a node not in the %s snapshot", e.U, e.V, label)
		}
	}
	return nil
}

// apply folds a validated batch into the series at the valid-time tail.
// Called with the write lock held; must not fail.
func (s *Series) apply(label string, snap Snapshot) {
	s.labels = append(s.labels, label)
	s.snaps = append(s.snaps, snap)
	s.journal = append(s.journal, JournalEntry{Label: label, Snap: snap})
	s.cached = nil
	for _, spec := range s.aggs {
		nodes, edges := aggregateSnapshot(snap, spec.attrs)
		spec.nodes = append(spec.nodes, nodes)
		spec.edges = append(spec.edges, edges)
	}
	applyAcc(s.acc, s.attrs, label, snap)
}

// applyAcc feeds one batch into an accumulator — the single definition of
// how a snapshot becomes graph columns, shared by tail appends and the
// valid-order replays that retroactive inserts and ReplayTo perform.
func applyAcc(acc *core.Accumulator, attrs []core.AttrSpec, label string, snap Snapshot) {
	acc.AddPoint(label)
	for _, n := range snap.Nodes {
		id := acc.EnsureNode(n.Label)
		acc.SetNodeTime(id)
		for ai, spec := range attrs {
			if spec.Kind == core.Static {
				if v, ok := n.Static[spec.Name]; ok {
					acc.SetStatic(core.AttrID(ai), id, v)
				}
			} else if v, ok := n.Varying[spec.Name]; ok && v != "" {
				acc.SetVarying(core.AttrID(ai), id, v)
			}
		}
	}
	for _, e := range snap.Edges {
		u, _ := acc.NodeID(e.U)
		v, _ := acc.NodeID(e.V)
		acc.SetEdgeTime(acc.EnsureEdge(u, v))
	}
}

// AppendAt ingests a time point retroactively: the new point is inserted
// into valid time immediately before the existing label `before`, while
// its transaction position is the tail of the journal (the system learned
// it now). An empty `before` is a plain tail append. The returned index is
// the new point's valid-time position — everything at or after it must be
// re-aggregated by the serving layers. Validation is all-or-nothing, as in
// Append.
func (s *Series) AppendAt(label string, snap Snapshot, before string) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if before == "" {
		if err := s.validate(label, snap); err != nil {
			return 0, err
		}
		s.apply(label, snap)
		return len(s.labels) - 1, nil
	}
	at := -1
	for i, l := range s.labels {
		if l == before {
			at = i
			break
		}
	}
	if at < 0 {
		return 0, fmt.Errorf("stream: retroactive ingest: no time point labeled %q", before)
	}
	if err := s.validate(label, snap); err != nil {
		return 0, err
	}
	s.applyAt(label, snap, before, at)
	return at, nil
}

// applyAt splices a validated batch into valid position at. The per-point
// aggregate columns insert in place; the accumulator's columns are keyed
// by first-appearance order over valid time, which a mid-timeline insert
// can shift wholesale, so it is rebuilt by replaying the new valid order.
// Called with the write lock held; must not fail.
func (s *Series) applyAt(label string, snap Snapshot, before string, at int) {
	s.labels = slices.Insert(s.labels, at, label)
	s.snaps = slices.Insert(s.snaps, at, snap)
	s.journal = append(s.journal, JournalEntry{Label: label, Before: before, Snap: snap})
	s.cached = nil
	for _, spec := range s.aggs {
		nodes, edges := aggregateSnapshot(snap, spec.attrs)
		spec.nodes = slices.Insert(spec.nodes, at, nodes)
		spec.edges = slices.Insert(spec.edges, at, edges)
	}
	s.acc = core.NewAccumulator(s.attrs...)
	for i, l := range s.labels {
		applyAcc(s.acc, s.attrs, l, s.snaps[i])
	}
}

// Txn returns the transaction high-water mark: the number of batches ever
// ingested. It equals Len() — every batch, tail or retroactive, creates
// exactly one time point — but is the semantically correct axis for AS OF.
func (s *Series) Txn() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.journal)
}

// Journal returns a copy of the transaction journal. Snapshots share
// record slices with the series; callers must treat them as read-only.
func (s *Series) Journal() []JournalEntry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]JournalEntry(nil), s.journal...)
}

// ReplayTo reconstructs the graph as of transaction txn (1-based,
// inclusive) by replaying the journal prefix into a scratch series. The
// result is byte-identical to what Graph() returned when the journal had
// exactly txn entries: replay is deterministic and follows the same code
// paths ingestion took.
func (s *Series) ReplayTo(txn int) (*core.Graph, error) {
	s.mu.RLock()
	n := len(s.journal)
	if txn < 1 || txn > n {
		s.mu.RUnlock()
		return nil, fmt.Errorf("stream: txn %d out of range [1,%d]", txn, n)
	}
	entries := append([]JournalEntry(nil), s.journal[:txn]...)
	attrs := append([]core.AttrSpec(nil), s.attrs...)
	s.mu.RUnlock()

	scratch := New(attrs...)
	for _, e := range entries {
		if e.Before == "" {
			scratch.apply(e.Label, e.Snap)
			continue
		}
		at := -1
		for i, l := range scratch.labels {
			if l == e.Before {
				at = i
				break
			}
		}
		if at < 0 {
			return nil, fmt.Errorf("stream: journal corrupt: retroactive entry %q references missing label %q", e.Label, e.Before)
		}
		scratch.applyAt(e.Label, e.Snap, e.Before, at)
	}
	return scratch.acc.Snapshot(), nil
}

// aggregateSnapshot computes the single-point ALL aggregate of a snapshot
// directly from its records (at one time point ALL and DIST coincide).
func aggregateSnapshot(snap Snapshot, attrs []string) (map[string]int64, map[string]int64) {
	nodes := make(map[string]int64)
	edges := make(map[string]int64)
	tuples := make(map[string]string, len(snap.Nodes))
	for _, n := range snap.Nodes {
		tuple, ok := tupleOf(n, attrs)
		if !ok {
			continue
		}
		tuples[n.Label] = tuple
		nodes[tuple]++
	}
	for _, e := range snap.Edges {
		tu, ok1 := tuples[e.U]
		tv, ok2 := tuples[e.V]
		if !ok1 || !ok2 {
			continue
		}
		edges["("+tu+")→("+tv+")"]++
	}
	return nodes, edges
}

func tupleOf(n NodeRecord, attrs []string) (string, bool) {
	tuple := ""
	for i, a := range attrs {
		v, ok := n.Static[a]
		if !ok {
			v, ok = n.Varying[a]
		}
		if !ok || v == "" {
			return "", false
		}
		if i > 0 {
			tuple += ","
		}
		tuple += v
	}
	return tuple, true
}

// Resumer replays tail batches on top of a previously snapshotted graph —
// the "snapshot + partial WAL replay" half of point-in-time
// reconstruction. It performs no validation: the batches come from a WAL
// that validated them at ingest. Retroactive batches cannot be resumed
// (they reshuffle the columns the snapshot froze); callers fall back to a
// full replay when the delta contains one.
type Resumer struct {
	acc   *core.Accumulator
	attrs []core.AttrSpec
}

// NewResumer returns a resumer whose state is exactly g's.
func NewResumer(g *core.Graph) *Resumer {
	return &Resumer{acc: core.ResumeAccumulator(g), attrs: g.Attrs()}
}

// Append applies one tail batch.
func (r *Resumer) Append(label string, snap Snapshot) {
	applyAcc(r.acc, r.attrs, label, snap)
}

// Graph snapshots the resumed state. Byte-identical to the graph a live
// series held after ingesting the same history, because the snapshot
// reader pins dictionary codes and entity IDs in their original order and
// Append assigns new ones exactly as live ingestion does.
func (r *Resumer) Graph() *core.Graph {
	return r.acc.Snapshot()
}

// WindowUnionAll returns the union-ALL aggregate of the time points
// [from, to] (inclusive indices) for a registered aggregation, composed
// from the per-point aggregates by T-distributive summation.
func (s *Series) WindowUnionAll(name string, from, to int) (map[string]int64, map[string]int64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	spec, ok := s.aggs[name]
	if !ok {
		return nil, nil, fmt.Errorf("stream: no aggregation named %q", name)
	}
	if from < 0 || to >= len(s.labels) || from > to {
		return nil, nil, fmt.Errorf("stream: window [%d,%d] out of range [0,%d]", from, to, len(s.labels)-1)
	}
	nodes := make(map[string]int64)
	edges := make(map[string]int64)
	for t := from; t <= to; t++ {
		for k, w := range spec.nodes[t] {
			nodes[k] += w
		}
		for k, w := range spec.edges[t] {
			edges[k] += w
		}
	}
	return nodes, edges, nil
}

// Points returns the ingested time points as parallel label and snapshot
// slices — the exact append sequence, used by persistence checkpoints to
// capture a replayable copy of the series. The snapshots share record
// slices with the series; callers must treat them as read-only.
func (s *Series) Points() ([]string, []Snapshot) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]string(nil), s.labels...), append([]Snapshot(nil), s.snaps...)
}

// Attrs returns the series' attribute schema.
func (s *Series) Attrs() []core.AttrSpec {
	return append([]core.AttrSpec(nil), s.attrs...)
}

// Graph materializes (and caches) the full temporal attributed graph over
// every ingested time point. With the accumulator maintained at every
// Append, this is an O(nodes + edges) snapshot of shared state, not a
// replay of history. Static attribute conflicts are rejected by Append, so
// the only error here is an empty series.
func (s *Series) Graph() (*core.Graph, error) {
	s.mu.RLock()
	if g := s.cached; g != nil {
		s.mu.RUnlock()
		return g, nil
	}
	s.mu.RUnlock()
	// Snapshot under the write lock; re-check in case another goroutine
	// snapshotted while we waited.
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cached != nil {
		return s.cached, nil
	}
	if len(s.labels) == 0 {
		return nil, fmt.Errorf("stream: no time points ingested")
	}
	s.cached = s.acc.Snapshot()
	return s.cached, nil
}
