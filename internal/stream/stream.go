// Package stream supports evolving graphs that arrive one time point at a
// time — the interactive setting the paper's conclusion envisions.
//
// A Series ingests snapshots (the nodes and edges alive at the new time
// point, with attribute values) and maintains, for every registered
// aggregation, the per-time-point non-distinct (ALL) aggregate computed
// once at ingestion. Because union + ALL aggregation is T-distributive
// (§4.3), the aggregate of any time window is then the weight-wise sum of
// the stored per-point aggregates — no re-scan of history.
//
// A full core.Graph over everything ingested so far can be materialized at
// any time (and is cached between appends) for operators and explorations
// that need the complete model.
package stream

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/timeline"
)

// NodeRecord describes one node alive at the appended time point.
type NodeRecord struct {
	Label string
	// Static holds static attribute values; values for a node seen before
	// must not contradict the earlier ones.
	Static map[string]string
	// Varying holds this time point's values of time-varying attributes.
	Varying map[string]string
}

// EdgeRecord describes one directed interaction at the appended time
// point. Both endpoints must appear in the snapshot's node list.
type EdgeRecord struct {
	U, V string
}

// Snapshot is the content of one time point.
type Snapshot struct {
	Nodes []NodeRecord
	Edges []EdgeRecord
}

// aggSpec is one registered aggregation with its per-point results.
type aggSpec struct {
	attrs []string
	// nodes[t][tupleLabel] and edges[t][pairLabel] are the ALL aggregate
	// of time point t, keyed by decoded labels so they survive dictionary
	// growth across appends.
	nodes []map[string]int64
	edges []map[string]int64
}

// Series accumulates an evolving graph. It is safe for concurrent use:
// appends and registrations take the write lock, window queries and
// materialization the read lock, so a serving layer can ingest while
// answering queries.
type Series struct {
	mu     sync.RWMutex
	attrs  []core.AttrSpec
	labels []string
	snaps  []Snapshot

	aggs map[string]*aggSpec

	cached *core.Graph // full graph; nil when stale
}

// New returns an empty series with the given attribute schema.
func New(attrs ...core.AttrSpec) *Series {
	return &Series{attrs: append([]core.AttrSpec(nil), attrs...), aggs: map[string]*aggSpec{}}
}

// Len returns the number of time points ingested.
func (s *Series) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.labels)
}

// Labels returns the ingested time point labels in order.
func (s *Series) Labels() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]string(nil), s.labels...)
}

// RegisterAggregation adds an aggregation (by attribute names) whose
// per-point ALL aggregates are maintained from the next Append on; already
// ingested points are back-filled.
func (s *Series) RegisterAggregation(name string, attrNames ...string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.aggs[name]; dup {
		return fmt.Errorf("stream: aggregation %q already registered", name)
	}
	if len(attrNames) == 0 {
		return fmt.Errorf("stream: aggregation needs at least one attribute")
	}
	for _, n := range attrNames {
		found := false
		for _, a := range s.attrs {
			if a.Name == n {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("stream: unknown attribute %q", n)
		}
	}
	spec := &aggSpec{attrs: append([]string(nil), attrNames...)}
	for i := range s.snaps {
		nodes, edges := aggregateSnapshot(s.snaps[i], spec.attrs)
		spec.nodes = append(spec.nodes, nodes)
		spec.edges = append(spec.edges, edges)
	}
	s.aggs[name] = spec
	return nil
}

// Append ingests the next time point. The label must be new; edges must
// reference snapshot nodes; nodes must carry values for every attribute of
// the schema (static values may be omitted after the node's first
// appearance).
func (s *Series) Append(label string, snap Snapshot) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, l := range s.labels {
		if l == label {
			return fmt.Errorf("stream: duplicate time point label %q", label)
		}
	}
	present := make(map[string]bool, len(snap.Nodes))
	for _, n := range snap.Nodes {
		if n.Label == "" {
			return fmt.Errorf("stream: node with empty label at %s", label)
		}
		if present[n.Label] {
			return fmt.Errorf("stream: node %q appears twice at %s", n.Label, label)
		}
		present[n.Label] = true
	}
	for _, e := range snap.Edges {
		if !present[e.U] || !present[e.V] {
			return fmt.Errorf("stream: edge (%s,%s) references a node not in the %s snapshot", e.U, e.V, label)
		}
	}
	s.labels = append(s.labels, label)
	s.snaps = append(s.snaps, snap)
	s.cached = nil
	for _, spec := range s.aggs {
		nodes, edges := aggregateSnapshot(snap, spec.attrs)
		spec.nodes = append(spec.nodes, nodes)
		spec.edges = append(spec.edges, edges)
	}
	return nil
}

// aggregateSnapshot computes the single-point ALL aggregate of a snapshot
// directly from its records (at one time point ALL and DIST coincide).
func aggregateSnapshot(snap Snapshot, attrs []string) (map[string]int64, map[string]int64) {
	nodes := make(map[string]int64)
	edges := make(map[string]int64)
	tuples := make(map[string]string, len(snap.Nodes))
	for _, n := range snap.Nodes {
		tuple, ok := tupleOf(n, attrs)
		if !ok {
			continue
		}
		tuples[n.Label] = tuple
		nodes[tuple]++
	}
	for _, e := range snap.Edges {
		tu, ok1 := tuples[e.U]
		tv, ok2 := tuples[e.V]
		if !ok1 || !ok2 {
			continue
		}
		edges["("+tu+")→("+tv+")"]++
	}
	return nodes, edges
}

func tupleOf(n NodeRecord, attrs []string) (string, bool) {
	tuple := ""
	for i, a := range attrs {
		v, ok := n.Static[a]
		if !ok {
			v, ok = n.Varying[a]
		}
		if !ok || v == "" {
			return "", false
		}
		if i > 0 {
			tuple += ","
		}
		tuple += v
	}
	return tuple, true
}

// WindowUnionAll returns the union-ALL aggregate of the time points
// [from, to] (inclusive indices) for a registered aggregation, composed
// from the per-point aggregates by T-distributive summation.
func (s *Series) WindowUnionAll(name string, from, to int) (map[string]int64, map[string]int64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	spec, ok := s.aggs[name]
	if !ok {
		return nil, nil, fmt.Errorf("stream: no aggregation named %q", name)
	}
	if from < 0 || to >= len(s.labels) || from > to {
		return nil, nil, fmt.Errorf("stream: window [%d,%d] out of range [0,%d]", from, to, len(s.labels)-1)
	}
	nodes := make(map[string]int64)
	edges := make(map[string]int64)
	for t := from; t <= to; t++ {
		for k, w := range spec.nodes[t] {
			nodes[k] += w
		}
		for k, w := range spec.edges[t] {
			edges[k] += w
		}
	}
	return nodes, edges, nil
}

// Points returns the ingested time points as parallel label and snapshot
// slices — the exact append sequence, used by persistence checkpoints to
// capture a replayable copy of the series. The snapshots share record
// slices with the series; callers must treat them as read-only.
func (s *Series) Points() ([]string, []Snapshot) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]string(nil), s.labels...), append([]Snapshot(nil), s.snaps...)
}

// Attrs returns the series' attribute schema.
func (s *Series) Attrs() []core.AttrSpec {
	return append([]core.AttrSpec(nil), s.attrs...)
}

// Graph materializes (and caches) the full temporal attributed graph over
// every ingested time point. Static attribute conflicts across snapshots
// surface as an error here; the first seen value is authoritative.
func (s *Series) Graph() (*core.Graph, error) {
	s.mu.RLock()
	if g := s.cached; g != nil {
		s.mu.RUnlock()
		return g, nil
	}
	s.mu.RUnlock()
	// Materialize under the write lock; re-check in case another
	// goroutine built the graph while we waited.
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cached != nil {
		return s.cached, nil
	}
	if len(s.labels) == 0 {
		return nil, fmt.Errorf("stream: no time points ingested")
	}
	tl, err := timeline.New(s.labels...)
	if err != nil {
		return nil, err
	}
	b := core.NewBuilder(tl, s.attrs...)
	staticSeen := map[string]map[string]string{} // node → attr → value
	for t, snap := range s.snaps {
		for _, n := range snap.Nodes {
			id := b.AddNode(n.Label)
			b.SetNodeTime(id, timeline.Time(t))
			for ai, spec := range s.attrs {
				if spec.Kind == core.Static {
					v, ok := n.Static[spec.Name]
					if !ok {
						continue
					}
					if prev, seen := staticSeen[n.Label][spec.Name]; seen {
						if prev != v {
							return nil, fmt.Errorf("stream: node %s static attribute %s changed from %q to %q",
								n.Label, spec.Name, prev, v)
						}
						continue
					}
					if staticSeen[n.Label] == nil {
						staticSeen[n.Label] = map[string]string{}
					}
					staticSeen[n.Label][spec.Name] = v
					b.SetStatic(core.AttrID(ai), id, v)
				} else if v, ok := n.Varying[spec.Name]; ok && v != "" {
					b.SetVarying(core.AttrID(ai), id, timeline.Time(t), v)
				}
			}
		}
		for _, e := range snap.Edges {
			u, _ := b.NodeID(e.U)
			v, _ := b.NodeID(e.V)
			id := b.AddEdge(u, v)
			b.SetEdgeTime(id, timeline.Time(t))
		}
	}
	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	s.cached = g
	return g, nil
}
