package tgql

import (
	"strings"
	"testing"

	"repro/internal/core"
)

// TestErrorPositions checks that parse and execution errors carry a
// 1-based line:column anchor and quote the offending token — the HTTP
// endpoint surfaces these verbatim, so clients can point at the spot.
func TestErrorPositions(t *testing.T) {
	g := core.PaperExample()
	cases := []struct {
		query string
		want  []string // substrings the error must contain
	}{
		{"AGG DIST gender POINT t0", []string{"tgql: 1:17:", `(near "POINT")`}},
		{"AGG DIST gender ON POINT t9", []string{"tgql: 1:26:", `unknown time point "t9"`, `(near "t9")`}},
		{"AGG DIST gender\nON POINT t9", []string{"tgql: 2:10:", `unknown time point "t9"`}},
		{"AGG DIST nope ON POINT t0", []string{"tgql: 1:10:", `unknown attribute "nope"`}},
		{"AGG DIST gender ON POINT t0 WHERE nope = 1", []string{"tgql: 1:35:", `unknown attribute "nope" in WHERE`}},
		{"AGG DIST gender ON POINT t0 WHERE gender < f", []string{"tgql: 1:44:", "needs a numeric value"}},
		{"AGG DIST gender ON POINT t0 MEASURE AVG(nope)", []string{"tgql: 1:41:", `unknown measured attribute "nope"`}},
		{"AGG DIST gender ON PROJECT t2..t0", []string{"tgql: 1:28:", "runs backwards"}},
		{"EVOLVE DIST gender FROM t0", []string{"(at end of input)"}},
		{"AGG DIST gender ON POINT t0 - t1", []string{"tgql: 1:29:", "unexpected '-'"}},
	}
	for _, c := range cases {
		_, err := Exec(g, c.query)
		if err == nil {
			t.Errorf("%q: no error", c.query)
			continue
		}
		for _, w := range c.want {
			if !strings.Contains(err.Error(), w) {
				t.Errorf("%q:\n  error %q\n  missing %q", c.query, err, w)
			}
		}
	}
}

// TestParseFilterErrorPositions checks the standalone predicate entry
// point anchors its errors the same way.
func TestParseFilterErrorPositions(t *testing.T) {
	g := core.PaperExample()
	if _, err := ParseFilter(g, "nope = 1"); err == nil ||
		!strings.Contains(err.Error(), "tgql: 1:1:") {
		t.Errorf("ParseFilter unknown attr = %v, want a 1:1 anchor", err)
	}
	if _, err := ParseFilter(g, "publications > four"); err == nil ||
		!strings.Contains(err.Error(), "tgql: 1:16:") {
		t.Errorf("ParseFilter non-numeric = %v, want a 1:16 anchor", err)
	}
}
