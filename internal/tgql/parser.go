package tgql

import (
	"fmt"
	"strings"
)

// AST node types. Intervals and attribute values stay as strings until
// execution, when they are resolved against a concrete graph.

type intervalExpr struct {
	From, To string // To == "" for a single point
	// FromPos/ToPos are the byte offsets of the labels in the query, so
	// resolution errors (unknown time point) can point at them.
	FromPos, ToPos int
}

type opExpr struct {
	Op string // POINT, PROJECT, UNION, INTERSECT, DIFF
	A  intervalExpr
	B  intervalExpr // for binary operators
}

type comparison struct {
	Attr  string
	Op    string // = != < <= > >=
	Value string
	// AttrPos/ValuePos locate the operands for execution-time errors.
	AttrPos, ValuePos int
}

// temporalClause carries the optional trailing bi-temporal clauses every
// query statement accepts: VALID DURING restricts evaluation to a
// valid-time window, AS OF evaluates against the transaction-time state
// right after ingest record AsOf was acknowledged.
type temporalClause struct {
	Valid    intervalExpr
	HasValid bool
	AsOf     int
	AsOfPos  int
}

type aggQuery struct {
	Kind     string // DIST | ALL
	Attrs    []string
	AttrsPos []int
	Op       opExpr
	Where    []comparison
	Measure  string // "" or SUM/AVG/MIN/MAX
	MAttr    string // measured attribute
	MAttrPos int
	temporalClause
}

type evolveQuery struct {
	Kind     string
	Attrs    []string
	AttrsPos []int
	From     intervalExpr
	To       intervalExpr
	Where    []comparison
	temporalClause
}

type exploreQuery struct {
	Event     string // STABILITY | GROWTH | SHRINKAGE
	Attrs     []string
	AttrsPos  []int
	EdgeFrom  []string // nil when not an edge target
	EdgeTo    []string
	NodeTuple []string // nil when not a node target
	Semantics string   // UNION | INTERSECTION (default UNION)
	Extend    string   // OLD | NEW (default NEW)
	K         int64    // -1 when TUNE is used
	Tune      int      // 0 when K is used
	temporalClause
}

type statsQuery struct{}

type topQuery struct {
	N        int
	Event    string
	Attrs    []string
	AttrsPos []int
	temporalClause
}

type timelineQuery struct {
	Attrs    []string
	AttrsPos []int
	Where    []comparison
	temporalClause
}

type coarsenQuery struct {
	Width int
}

// eventsQuery classifies every attribute group's change between
// consecutive width-w windows into growth/shrinkage/stability events.
type eventsQuery struct {
	Kind     string // DIST | ALL
	Attrs    []string
	AttrsPos []int
	Width    int   // tiling window width, 1 when absent
	Min      int64 // minimum change magnitude (Gr+Shr) per row
	Where    []comparison
	temporalClause
}

// pathsQuery asks for time-respecting reachability from a source set to a
// target set, earliest-arrival or shortest-duration.
type pathsQuery struct {
	Mode    string // EARLIEST | FASTEST
	From    []string
	FromPos []int
	To      []string
	ToPos   []int
	During  intervalExpr
	HasDur  bool
	temporalClause
}

// trendQuery computes per-group sliding-window appearance series with a
// least-squares direction.
type trendQuery struct {
	Kind     string // DIST | ALL
	Attrs    []string
	AttrsPos []int
	Width    int // sliding window width, 1 when absent
	Where    []comparison
	temporalClause
}

// explainQuery wraps a statement prefixed with EXPLAIN: compile it and
// render the physical plan instead of executing.
type explainQuery struct {
	stmt interface{}
}

// parser consumes the token stream. in is the original query text, kept
// for line:column rendering in errors.
type parser struct {
	toks []token
	pos  int
	in   string
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) take() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) errorf(t token, format string, args ...interface{}) error {
	if t.kind == tokEOF {
		line, col := lineCol(p.in, t.pos)
		return fmt.Errorf("tgql: %d:%d: %s (at end of input)", line, col, fmt.Sprintf(format, args...))
	}
	return posErrf(p.in, t.pos, t.text, format, args...)
}

// keyword consumes an identifier and reports whether it equals kw
// (case-insensitive).
func (p *parser) keyword(kw string) bool {
	t := p.peek()
	if t.kind == tokIdent && strings.EqualFold(t.text, kw) {
		p.take()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.keyword(kw) {
		return p.errorf(p.peek(), "expected %s, found %q", kw, p.peek().text)
	}
	return nil
}

// value consumes an identifier or quoted string.
func (p *parser) value() (string, error) {
	v, _, err := p.valuePos()
	return v, err
}

// valuePos is value plus the token's byte offset, recorded in the AST so
// execution-time resolution errors can point at the operand.
func (p *parser) valuePos() (string, int, error) {
	t := p.peek()
	if t.kind == tokIdent || t.kind == tokString {
		p.take()
		return t.text, t.pos, nil
	}
	return "", t.pos, p.errorf(t, "expected a value, found %q", t.text)
}

// valueList parses value (, value)*.
func (p *parser) valueList() ([]string, error) {
	out, _, err := p.valueListPos()
	return out, err
}

// valueListPos is valueList plus the byte offset of each value.
func (p *parser) valueListPos() ([]string, []int, error) {
	var out []string
	var poss []int
	for {
		v, pos, err := p.valuePos()
		if err != nil {
			return nil, nil, err
		}
		out = append(out, v)
		poss = append(poss, pos)
		if p.peek().kind != tokComma {
			return out, poss, nil
		}
		p.take()
	}
}

// interval parses label or label..label.
func (p *parser) interval() (intervalExpr, error) {
	from, fromPos, err := p.valuePos()
	if err != nil {
		return intervalExpr{}, err
	}
	if p.peek().kind == tokRange {
		p.take()
		to, toPos, err := p.valuePos()
		if err != nil {
			return intervalExpr{}, err
		}
		return intervalExpr{From: from, To: to, FromPos: fromPos, ToPos: toPos}, nil
	}
	return intervalExpr{From: from, FromPos: fromPos}, nil
}

// opExpr parses the temporal operator expression of AGG … ON.
func (p *parser) opExpr() (opExpr, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return opExpr{}, p.errorf(t, "expected an operator, found %q", t.text)
	}
	op := strings.ToUpper(t.text)
	switch op {
	case "POINT", "PROJECT":
		p.take()
		iv, err := p.interval()
		if err != nil {
			return opExpr{}, err
		}
		return opExpr{Op: op, A: iv}, nil
	case "UNION", "INTERSECT", "DIFF":
		p.take()
		if p.peek().kind != tokLParen {
			return opExpr{}, p.errorf(p.peek(), "expected ( after %s", op)
		}
		p.take()
		a, err := p.interval()
		if err != nil {
			return opExpr{}, err
		}
		if p.peek().kind != tokComma {
			return opExpr{}, p.errorf(p.peek(), "expected , in %s(...)", op)
		}
		p.take()
		b, err := p.interval()
		if err != nil {
			return opExpr{}, err
		}
		if p.peek().kind != tokRParen {
			return opExpr{}, p.errorf(p.peek(), "expected ) to close %s(...)", op)
		}
		p.take()
		return opExpr{Op: op, A: a, B: b}, nil
	default:
		return opExpr{}, p.errorf(t, "unknown operator %q (want POINT, PROJECT, UNION, INTERSECT or DIFF)", t.text)
	}
}

// where parses WHERE cmp (AND cmp)* if present.
func (p *parser) where() ([]comparison, error) {
	if !p.keyword("WHERE") {
		return nil, nil
	}
	var out []comparison
	for {
		attr, attrPos, err := p.valuePos()
		if err != nil {
			return nil, err
		}
		opTok := p.peek()
		if opTok.kind != tokOp {
			return nil, p.errorf(opTok, "expected a comparison operator, found %q", opTok.text)
		}
		p.take()
		val, valPos, err := p.valuePos()
		if err != nil {
			return nil, err
		}
		out = append(out, comparison{Attr: attr, Op: opTok.text, Value: val, AttrPos: attrPos, ValuePos: valPos})
		if !p.keyword("AND") {
			return out, nil
		}
	}
}

func (p *parser) kind() (string, error) {
	switch {
	case p.keyword("DIST"):
		return "DIST", nil
	case p.keyword("ALL"):
		return "ALL", nil
	default:
		return "", p.errorf(p.peek(), "expected DIST or ALL, found %q", p.peek().text)
	}
}

func (p *parser) atEOF() error {
	if t := p.peek(); t.kind != tokEOF {
		return p.errorf(t, "unexpected trailing input starting at %q", t.text)
	}
	return nil
}

// temporalOne parses one of the optional trailing bi-temporal clauses —
// VALID DURING <interval> or AS OF <txn> — reporting whether it consumed
// one. Each clause may appear at most once per statement.
func (p *parser) temporalOne(tc *temporalClause) (bool, error) {
	t := p.peek()
	switch {
	case p.keyword("VALID"):
		if err := p.expectKeyword("DURING"); err != nil {
			return false, err
		}
		if tc.HasValid {
			return false, p.errorf(t, "duplicate VALID DURING clause")
		}
		iv, err := p.interval()
		if err != nil {
			return false, err
		}
		tc.Valid, tc.HasValid = iv, true
		return true, nil
	case p.keyword("AS"):
		if err := p.expectKeyword("OF"); err != nil {
			return false, err
		}
		if tc.AsOf > 0 {
			return false, p.errorf(t, "duplicate AS OF clause")
		}
		v, pos, err := p.valuePos()
		if err != nil {
			return false, err
		}
		var txn int
		if _, err := fmt.Sscanf(v, "%d", &txn); err != nil || txn < 1 {
			return false, p.errorf(p.peek(), "AS OF wants a positive transaction number, got %q", v)
		}
		tc.AsOf, tc.AsOfPos = txn, pos
		return true, nil
	}
	return false, nil
}

// temporal parses [VALID DURING <interval>] [AS OF <txn>] in either order.
func (p *parser) temporal(tc *temporalClause) error {
	for {
		ok, err := p.temporalOne(tc)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
	}
}

// parse parses one statement, optionally prefixed with EXPLAIN.
func parse(in string) (interface{}, error) {
	toks, err := lexAll(in)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, in: in}
	if p.keyword("EXPLAIN") {
		stmt, err := p.statement()
		if err != nil {
			return nil, err
		}
		return explainQuery{stmt: stmt}, nil
	}
	return p.statement()
}

// statement parses one bare statement.
func (p *parser) statement() (interface{}, error) {
	switch {
	case p.keyword("STATS"):
		if err := p.atEOF(); err != nil {
			return nil, err
		}
		return statsQuery{}, nil
	case p.keyword("AGG"):
		return p.parseAgg()
	case p.keyword("EVOLVE"):
		return p.parseEvolve()
	case p.keyword("EXPLORE"):
		return p.parseExplore()
	case p.keyword("TOP"):
		return p.parseTop()
	case p.keyword("TIMELINE"):
		var q timelineQuery
		var err error
		if err = p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		if q.Attrs, q.AttrsPos, err = p.valueListPos(); err != nil {
			return nil, err
		}
		if q.Where, err = p.where(); err != nil {
			return nil, err
		}
		if err := p.temporal(&q.temporalClause); err != nil {
			return nil, err
		}
		if err := p.atEOF(); err != nil {
			return nil, err
		}
		return q, nil
	case p.keyword("COARSEN"):
		var q coarsenQuery
		v, err := p.value()
		if err != nil {
			return nil, err
		}
		if _, err := fmt.Sscanf(v, "%d", &q.Width); err != nil || q.Width < 1 {
			return nil, p.errorf(p.peek(), "COARSEN wants a positive width, got %q", v)
		}
		if err := p.atEOF(); err != nil {
			return nil, err
		}
		return q, nil
	case p.keyword("EVENTS"):
		return p.parseEvents()
	case p.keyword("PATHS"):
		return p.parsePaths()
	case p.keyword("TREND"):
		return p.parseTrend()
	default:
		return nil, p.errorf(p.peek(),
			"expected STATS, AGG, EVOLVE, EXPLORE, TOP, TIMELINE, COARSEN, EVENTS, PATHS or TREND, found %q", p.peek().text)
	}
}

// width parses the argument of a WIDTH clause.
func (p *parser) width() (int, error) {
	v, err := p.value()
	if err != nil {
		return 0, err
	}
	var w int
	if _, err := fmt.Sscanf(v, "%d", &w); err != nil || w < 1 {
		return 0, p.errorf(p.peek(), "WIDTH wants a positive integer, got %q", v)
	}
	return w, nil
}

// parseEvents parses
//
//	EVENTS DIST|ALL BY attrs [WIDTH n] [MIN n] [WHERE …] [temporal]
func (p *parser) parseEvents() (interface{}, error) {
	q := eventsQuery{Width: 1}
	var err error
	if q.Kind, err = p.kind(); err != nil {
		return nil, err
	}
	if err = p.expectKeyword("BY"); err != nil {
		return nil, err
	}
	if q.Attrs, q.AttrsPos, err = p.valueListPos(); err != nil {
		return nil, err
	}
	for {
		switch {
		case p.keyword("WIDTH"):
			if q.Width, err = p.width(); err != nil {
				return nil, err
			}
		case p.keyword("MIN"):
			v, err := p.value()
			if err != nil {
				return nil, err
			}
			if _, err := fmt.Sscanf(v, "%d", &q.Min); err != nil || q.Min < 0 {
				return nil, p.errorf(p.peek(), "MIN wants a non-negative integer, got %q", v)
			}
		case p.peek().kind == tokIdent && strings.EqualFold(p.peek().text, "WHERE"):
			if q.Where, err = p.where(); err != nil {
				return nil, err
			}
		default:
			if ok, err := p.temporalOne(&q.temporalClause); err != nil {
				return nil, err
			} else if ok {
				continue
			}
			if err := p.atEOF(); err != nil {
				return nil, err
			}
			return q, nil
		}
	}
}

// parsePaths parses
//
//	PATHS EARLIEST|FASTEST FROM v(,v)* TO v(,v)* [DURING interval] [temporal]
func (p *parser) parsePaths() (interface{}, error) {
	var q pathsQuery
	switch {
	case p.keyword("EARLIEST"):
		q.Mode = "EARLIEST"
	case p.keyword("FASTEST"):
		q.Mode = "FASTEST"
	default:
		return nil, p.errorf(p.peek(), "expected EARLIEST or FASTEST, found %q", p.peek().text)
	}
	var err error
	if err = p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	if q.From, q.FromPos, err = p.valueListPos(); err != nil {
		return nil, err
	}
	if err = p.expectKeyword("TO"); err != nil {
		return nil, err
	}
	if q.To, q.ToPos, err = p.valueListPos(); err != nil {
		return nil, err
	}
	if p.keyword("DURING") {
		if q.During, err = p.interval(); err != nil {
			return nil, err
		}
		q.HasDur = true
	}
	if err := p.temporal(&q.temporalClause); err != nil {
		return nil, err
	}
	if err := p.atEOF(); err != nil {
		return nil, err
	}
	return q, nil
}

// parseTrend parses
//
//	TREND DIST|ALL BY attrs [WIDTH n] [WHERE …] [temporal]
func (p *parser) parseTrend() (interface{}, error) {
	q := trendQuery{Width: 1}
	var err error
	if q.Kind, err = p.kind(); err != nil {
		return nil, err
	}
	if err = p.expectKeyword("BY"); err != nil {
		return nil, err
	}
	if q.Attrs, q.AttrsPos, err = p.valueListPos(); err != nil {
		return nil, err
	}
	for {
		switch {
		case p.keyword("WIDTH"):
			if q.Width, err = p.width(); err != nil {
				return nil, err
			}
		case p.peek().kind == tokIdent && strings.EqualFold(p.peek().text, "WHERE"):
			if q.Where, err = p.where(); err != nil {
				return nil, err
			}
		default:
			if ok, err := p.temporalOne(&q.temporalClause); err != nil {
				return nil, err
			} else if ok {
				continue
			}
			if err := p.atEOF(); err != nil {
				return nil, err
			}
			return q, nil
		}
	}
}

// parseTop parses TOP n event BY attrs — rank the aggregate edges
// (attribute groups) by peak event count over consecutive interval pairs.
func (p *parser) parseTop() (interface{}, error) {
	var q topQuery
	v, err := p.value()
	if err != nil {
		return nil, err
	}
	if _, err := fmt.Sscanf(v, "%d", &q.N); err != nil || q.N < 1 {
		return nil, p.errorf(p.peek(), "TOP wants a positive count, got %q", v)
	}
	switch {
	case p.keyword("STABILITY"):
		q.Event = "STABILITY"
	case p.keyword("GROWTH"):
		q.Event = "GROWTH"
	case p.keyword("SHRINKAGE"):
		q.Event = "SHRINKAGE"
	default:
		return nil, p.errorf(p.peek(), "expected STABILITY, GROWTH or SHRINKAGE, found %q", p.peek().text)
	}
	if err := p.expectKeyword("BY"); err != nil {
		return nil, err
	}
	if q.Attrs, q.AttrsPos, err = p.valueListPos(); err != nil {
		return nil, err
	}
	if err := p.temporal(&q.temporalClause); err != nil {
		return nil, err
	}
	if err := p.atEOF(); err != nil {
		return nil, err
	}
	return q, nil
}

func (p *parser) parseAgg() (interface{}, error) {
	var q aggQuery
	var err error
	if q.Kind, err = p.kind(); err != nil {
		return nil, err
	}
	if q.Attrs, q.AttrsPos, err = p.valueListPos(); err != nil {
		return nil, err
	}
	if err = p.expectKeyword("ON"); err != nil {
		return nil, err
	}
	if q.Op, err = p.opExpr(); err != nil {
		return nil, err
	}
	if q.Where, err = p.where(); err != nil {
		return nil, err
	}
	if p.keyword("MEASURE") {
		fn := p.peek()
		switch {
		case p.keyword("SUM"), p.keyword("AVG"), p.keyword("MIN"), p.keyword("MAX"):
			q.Measure = strings.ToUpper(fn.text)
		default:
			return nil, p.errorf(fn, "expected SUM, AVG, MIN or MAX, found %q", fn.text)
		}
		if p.peek().kind != tokLParen {
			return nil, p.errorf(p.peek(), "expected ( after MEASURE %s", q.Measure)
		}
		p.take()
		if q.MAttr, q.MAttrPos, err = p.valuePos(); err != nil {
			return nil, err
		}
		if p.peek().kind != tokRParen {
			return nil, p.errorf(p.peek(), "expected ) after measured attribute")
		}
		p.take()
	}
	if err := p.temporal(&q.temporalClause); err != nil {
		return nil, err
	}
	if err := p.atEOF(); err != nil {
		return nil, err
	}
	return q, nil
}

func (p *parser) parseEvolve() (interface{}, error) {
	var q evolveQuery
	var err error
	if q.Kind, err = p.kind(); err != nil {
		return nil, err
	}
	if q.Attrs, q.AttrsPos, err = p.valueListPos(); err != nil {
		return nil, err
	}
	if err = p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	if q.From, err = p.interval(); err != nil {
		return nil, err
	}
	if err = p.expectKeyword("TO"); err != nil {
		return nil, err
	}
	if q.To, err = p.interval(); err != nil {
		return nil, err
	}
	if q.Where, err = p.where(); err != nil {
		return nil, err
	}
	if err := p.temporal(&q.temporalClause); err != nil {
		return nil, err
	}
	if err := p.atEOF(); err != nil {
		return nil, err
	}
	return q, nil
}

func (p *parser) parseExplore() (interface{}, error) {
	q := exploreQuery{Semantics: "UNION", Extend: "NEW", K: -1}
	switch {
	case p.keyword("STABILITY"):
		q.Event = "STABILITY"
	case p.keyword("GROWTH"):
		q.Event = "GROWTH"
	case p.keyword("SHRINKAGE"):
		q.Event = "SHRINKAGE"
	default:
		return nil, p.errorf(p.peek(), "expected STABILITY, GROWTH or SHRINKAGE, found %q", p.peek().text)
	}
	if err := p.expectKeyword("BY"); err != nil {
		return nil, err
	}
	var err error
	if q.Attrs, q.AttrsPos, err = p.valueListPos(); err != nil {
		return nil, err
	}
	for {
		switch {
		case p.keyword("EDGE"):
			if q.EdgeFrom, err = p.valueList(); err != nil {
				return nil, err
			}
			if p.peek().kind != tokArrow {
				return nil, p.errorf(p.peek(), "expected -> in EDGE target")
			}
			p.take()
			if q.EdgeTo, err = p.valueList(); err != nil {
				return nil, err
			}
		case p.keyword("NODE"):
			if q.NodeTuple, err = p.valueList(); err != nil {
				return nil, err
			}
		case p.keyword("SEMANTICS"):
			switch {
			case p.keyword("UNION"):
				q.Semantics = "UNION"
			case p.keyword("INTERSECTION"):
				q.Semantics = "INTERSECTION"
			default:
				return nil, p.errorf(p.peek(), "expected UNION or INTERSECTION")
			}
		case p.keyword("EXTEND"):
			switch {
			case p.keyword("OLD"):
				q.Extend = "OLD"
			case p.keyword("NEW"):
				q.Extend = "NEW"
			default:
				return nil, p.errorf(p.peek(), "expected OLD or NEW")
			}
		case p.keyword("K"):
			v, err := p.value()
			if err != nil {
				return nil, err
			}
			if _, err := fmt.Sscanf(v, "%d", &q.K); err != nil || q.K < 1 {
				return nil, p.errorf(p.peek(), "K wants a positive integer, got %q", v)
			}
		case p.keyword("TUNE"):
			v, err := p.value()
			if err != nil {
				return nil, err
			}
			if _, err := fmt.Sscanf(v, "%d", &q.Tune); err != nil || q.Tune < 1 {
				return nil, p.errorf(p.peek(), "TUNE wants a positive integer, got %q", v)
			}
		default:
			if ok, err := p.temporalOne(&q.temporalClause); err != nil {
				return nil, err
			} else if ok {
				continue
			}
			if err := p.atEOF(); err != nil {
				return nil, err
			}
			return q, nil
		}
	}
}
