package tgql

import (
	"context"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/plan"
	"repro/internal/stream"
	"repro/internal/timeline"
)

// replaySeries feeds the paper example point by point so the test resolver
// has a transaction log to travel on.
func replaySeries(t *testing.T) *stream.Series {
	t.Helper()
	g := core.PaperExample()
	s := stream.New(g.Attrs()...)
	tl := g.Timeline()
	attrs := g.Attrs()
	for ti := 0; ti < tl.Len(); ti++ {
		var snap stream.Snapshot
		for n := 0; n < g.NumNodes(); n++ {
			id := core.NodeID(n)
			if !g.NodeTau(id).Contains(ti) {
				continue
			}
			rec := stream.NodeRecord{Label: g.NodeLabel(id)}
			for a, spec := range attrs {
				v := g.ValueString(core.AttrID(a), id, timeline.Time(ti))
				if v == "" {
					continue
				}
				if spec.Kind == core.Static {
					if rec.Static == nil {
						rec.Static = map[string]string{}
					}
					rec.Static[spec.Name] = v
				} else {
					if rec.Varying == nil {
						rec.Varying = map[string]string{}
					}
					rec.Varying[spec.Name] = v
				}
			}
			snap.Nodes = append(snap.Nodes, rec)
		}
		for e := 0; e < g.NumEdges(); e++ {
			id := core.EdgeID(e)
			if !g.EdgeTau(id).Contains(ti) {
				continue
			}
			ep := g.Edge(id)
			snap.Edges = append(snap.Edges, stream.EdgeRecord{U: g.NodeLabel(ep.U), V: g.NodeLabel(ep.V)})
		}
		if err := s.Append(tl.Label(timeline.Time(ti)), snap); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

// replayResolver serves plan.HistState via stream replay.
type replayResolver struct{ s *stream.Series }

func (r replayResolver) StateAt(txn int) (plan.HistState, error) {
	if txn == 0 {
		txn = r.s.Txn()
	}
	g, err := r.s.ReplayTo(txn)
	if err != nil {
		return plan.HistState{}, err
	}
	return plan.HistState{Graph: g}, nil
}

func (r replayResolver) WindowAt(txn, from, to int) (plan.HistState, error) {
	st, err := r.StateAt(txn)
	if err != nil {
		return plan.HistState{}, err
	}
	wg, err := core.Window(st.Graph, from, to)
	if err != nil {
		return plan.HistState{}, err
	}
	return plan.HistState{Graph: wg}, nil
}

// TestTemporalClausesParse routes the clauses through every statement
// family and checks they parse and execute (VALID DURING inline; AS OF via
// the resolver).
func TestTemporalClausesParse(t *testing.T) {
	s := replaySeries(t)
	live, err := s.Graph()
	if err != nil {
		t.Fatal(err)
	}
	env := plan.Env{Graph: live, Workers: 1, History: replayResolver{s}}
	queries := []string{
		"AGG DIST gender ON POINT t0 AS OF 1",
		"AGG DIST gender ON POINT t0 VALID DURING t0..t1 AS OF 2",
		"AGG ALL gender ON UNION(t0, t1) VALID DURING t0..t1",
		"AGG DIST gender ON POINT t0 AS OF 2 VALID DURING t0..t1",
		"EVOLVE DIST gender FROM t0 TO t1 AS OF 2",
		"TOP 2 GROWTH BY gender AS OF 2",
		"TIMELINE BY gender VALID DURING t0..t1 AS OF 3",
		"EXPLORE GROWTH BY gender K 1 AS OF 2",
	}
	for _, q := range queries {
		res, err := ExecEnv(context.Background(), env, q)
		if err != nil {
			t.Errorf("%q: %v", q, err)
			continue
		}
		if res == nil {
			t.Errorf("%q: nil result", q)
		}
	}
}

// TestAsOfMatchesReplayedState: AGG over the full interval AS OF txn 2
// must render exactly what the same query renders on a series truncated at
// two batches — time travel is indistinguishable from having stopped
// ingesting.
func TestAsOfMatchesReplayedState(t *testing.T) {
	s := replaySeries(t)
	live, err := s.Graph()
	if err != nil {
		t.Fatal(err)
	}
	env := plan.Env{Graph: live, Workers: 1, History: replayResolver{s}}
	res, err := ExecEnv(context.Background(), env, "AGG DIST gender ON UNION(t0, t1) AS OF 2")
	if err != nil {
		t.Fatal(err)
	}
	past, err := s.ReplayTo(2)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Exec(past, "AGG DIST gender ON UNION(t0, t1)")
	if err != nil {
		t.Fatal(err)
	}
	if res.String() != want.String() {
		t.Fatalf("AS OF 2 render:\n%s\nwant (truncated series):\n%s", res, want)
	}
	// The historical timeline has two points; t2 does not exist yet.
	if _, err := ExecEnv(context.Background(), env, "AGG DIST gender ON POINT t2 AS OF 2"); err == nil ||
		!strings.Contains(err.Error(), `unknown time point "t2"`) {
		t.Fatalf("POINT t2 AS OF 2 = %v, want unknown-point error", err)
	}
}

// TestTemporalClauseErrors pins the parse/resolution failure shapes with
// their positions.
func TestTemporalClauseErrors(t *testing.T) {
	g := core.PaperExample()
	cases := []struct {
		query string
		want  []string
	}{
		{"AGG DIST gender ON POINT t0 AS OF 0", []string{"positive transaction number"}},
		{"AGG DIST gender ON POINT t0 AS OF x", []string{"positive transaction number", `"x"`}},
		{"AGG DIST gender ON POINT t0 AS OF", []string{"(at end of input)"}},
		{"AGG DIST gender ON POINT t0 AS OF 1 AS OF 2", []string{"tgql: 1:37:", "duplicate AS OF"}},
		{"AGG DIST gender ON POINT t0 VALID DURING t0 VALID DURING t1", []string{"tgql: 1:45:", "duplicate VALID DURING"}},
		{"AGG DIST gender ON POINT t0 VALID", []string{"expected DURING"}},
		{"AGG DIST gender ON POINT t0 AS 3", []string{"expected OF"}},
		// No transaction log behind plain Exec: AS OF must be rejected at
		// the clause's position, VALID DURING with an unknown label at the
		// label's position.
		{"AGG DIST gender ON POINT t0 AS OF 1", []string{"tgql: 1:35:", "transaction log"}},
		{"AGG DIST gender ON POINT t0 VALID DURING t8..t9", []string{"tgql: 1:42:", `unknown time point "t8"`}},
	}
	for _, c := range cases {
		_, err := Exec(g, c.query)
		if err == nil {
			t.Errorf("%q: no error", c.query)
			continue
		}
		for _, w := range c.want {
			if !strings.Contains(err.Error(), w) {
				t.Errorf("%q:\n  error %q\n  missing %q", c.query, err, w)
			}
		}
	}
}

// TestValidDuringInlineWindow: with no resolver at all, VALID DURING still
// works by windowing the live graph — and restricts what labels resolve.
func TestValidDuringInlineWindow(t *testing.T) {
	g := core.PaperExample()
	res, err := Exec(g, "AGG DIST gender ON POINT t1 VALID DURING t1..t2")
	if err != nil {
		t.Fatal(err)
	}
	want, err := Exec(g, "AGG DIST gender ON POINT t1")
	if err != nil {
		t.Fatal(err)
	}
	if res.String() != want.String() {
		t.Fatalf("windowed POINT t1 render:\n%s\nwant:\n%s", res, want)
	}
	if _, err := Exec(g, "AGG DIST gender ON POINT t0 VALID DURING t1..t2"); err == nil ||
		!strings.Contains(err.Error(), `unknown time point "t0"`) {
		t.Fatalf("POINT t0 outside window = %v, want unknown-point error", err)
	}
}
