package tgql

import (
	"context"
	"testing"

	"repro/internal/core"
)

// ctxQueries covers every statement family that threads cancellation into
// its execution engine.
var ctxQueries = []string{
	"AGG DIST gender ON UNION(t0, t1)",
	"AGG ALL gender ON INTERSECT(t0, t2)",
	"AGG DIST gender ON POINT t0 WHERE gender = 'f'",
	"EVOLVE DIST gender FROM t0 TO t1",
	"EXPLORE STABILITY BY gender K 2",
	"EXPLORE SHRINKAGE BY gender EXTEND OLD TUNE 1",
	"TOP 2 GROWTH BY gender",
	"TIMELINE BY gender",
}

// TestExecCtxMatchesExec checks that a live context is transparent: ExecCtx
// renders exactly what Exec renders for every statement family.
func TestExecCtxMatchesExec(t *testing.T) {
	g := core.PaperExample()
	for _, q := range ctxQueries {
		want, err := Exec(g, q)
		if err != nil {
			t.Fatalf("Exec(%q): %v", q, err)
		}
		got, err := ExecCtx(context.Background(), g, q)
		if err != nil {
			t.Fatalf("ExecCtx(%q): %v", q, err)
		}
		if got.String() != want.String() {
			t.Errorf("ExecCtx(%q) =\n%s\nwant\n%s", q, got, want)
		}
	}
}

// TestExecCtxCanceled checks the cooperative exit: a canceled context makes
// every statement family return (nil, ctx.Err()) instead of a result.
func TestExecCtxCanceled(t *testing.T) {
	g := core.PaperExample()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, q := range ctxQueries {
		res, err := ExecCtx(ctx, g, q)
		if err != context.Canceled {
			t.Errorf("ExecCtx(%q) err = %v, want context.Canceled", q, err)
		}
		if res != nil {
			t.Errorf("ExecCtx(%q) returned a result on a canceled context", q)
		}
	}
	// Parse errors still win over cancellation checks that never ran.
	if _, err := ExecCtx(ctx, g, "FROBNICATE"); err == context.Canceled || err == nil {
		t.Errorf("parse error reported as %v", err)
	}
}
