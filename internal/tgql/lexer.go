// Package tgql implements a small temporal graph query language over the
// GraphTempo framework — the "interactive exploration framework" the
// paper's conclusion announces as future work, in the textual style of the
// temporal query languages its related-work section surveys (T-GQL,
// TGraph's algebra).
//
// One statement per query:
//
//	STATS
//	AGG DIST gender, publications ON UNION(t0, t1)
//	AGG ALL gender ON PROJECT 2000..2005 WHERE publications > 4
//	AGG DIST gender ON POINT t0 MEASURE AVG(publications)
//	EVOLVE DIST gender FROM 2000..2009 TO 2010 WHERE publications > 4
//	EXPLORE STABILITY BY gender EDGE 'f' -> 'f'
//	        SEMANTICS INTERSECTION EXTEND NEW K 62
//	EXPLORE GROWTH BY gender EDGE 'f' -> 'f' TUNE 3
//
// Keywords are case-insensitive; attribute values may be quoted ('f',
// "18-24") or bare identifiers; intervals are single time-point labels or
// label..label ranges.
package tgql

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokString // quoted value
	tokLParen
	tokRParen
	tokComma
	tokArrow // ->
	tokRange // ..
	tokOp    // = != < <= > >=
	tokInvalid
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

// lexer tokenizes one query string.
type lexer struct {
	in  string
	pos int
}

func (l *lexer) error(pos int, format string, args ...interface{}) error {
	return posErrf(l.in, pos, "", format, args...)
}

// lineCol converts a byte offset into a 1-based line:column pair, so
// errors in multi-line queries (the REPL and the HTTP endpoint both accept
// them) point at the offending spot.
func lineCol(in string, pos int) (line, col int) {
	if pos > len(in) {
		pos = len(in)
	}
	line, col = 1, 1
	for i := 0; i < pos; i++ {
		if in[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return line, col
}

// posErrf renders an error anchored at a byte offset of in as
// "tgql: line:col: message (near "token")"; an empty near omits the
// token clause (lexical errors already quote the offending character).
func posErrf(in string, pos int, near, format string, args ...interface{}) error {
	line, col := lineCol(in, pos)
	msg := fmt.Sprintf(format, args...)
	if near != "" {
		return fmt.Errorf("tgql: %d:%d: %s (near %q)", line, col, msg, near)
	}
	return fmt.Errorf("tgql: %d:%d: %s", line, col, msg)
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.in) && unicode.IsSpace(rune(l.in[l.pos])) {
		l.pos++
	}
	if l.pos >= len(l.in) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.in[l.pos]
	switch {
	case c == '(':
		l.pos++
		return token{tokLParen, "(", start}, nil
	case c == ')':
		l.pos++
		return token{tokRParen, ")", start}, nil
	case c == ',':
		l.pos++
		return token{tokComma, ",", start}, nil
	case c == '\'' || c == '"':
		quote := c
		l.pos++
		var b strings.Builder
		for l.pos < len(l.in) && l.in[l.pos] != quote {
			b.WriteByte(l.in[l.pos])
			l.pos++
		}
		if l.pos >= len(l.in) {
			return token{}, l.error(start, "unterminated string")
		}
		l.pos++
		return token{tokString, b.String(), start}, nil
	case c == '-':
		if l.pos+1 < len(l.in) && l.in[l.pos+1] == '>' {
			l.pos += 2
			return token{tokArrow, "->", start}, nil
		}
		return token{}, l.error(start, "unexpected '-' (write -> for edges, quote values containing '-')")
	case c == '.':
		if l.pos+1 < len(l.in) && l.in[l.pos+1] == '.' {
			l.pos += 2
			return token{tokRange, "..", start}, nil
		}
		return token{}, l.error(start, "unexpected '.'")
	case c == '=':
		l.pos++
		return token{tokOp, "=", start}, nil
	case c == '!':
		if l.pos+1 < len(l.in) && l.in[l.pos+1] == '=' {
			l.pos += 2
			return token{tokOp, "!=", start}, nil
		}
		return token{}, l.error(start, "unexpected '!'")
	case c == '<' || c == '>':
		op := string(c)
		l.pos++
		if l.pos < len(l.in) && l.in[l.pos] == '=' {
			op += "="
			l.pos++
		}
		return token{tokOp, op, start}, nil
	case isIdentByte(c):
		var b strings.Builder
		for l.pos < len(l.in) && isIdentByte(l.in[l.pos]) {
			// Stop before a ".." range operator; a single '.' is part of
			// the identifier only if not followed by another '.'.
			if l.in[l.pos] == '.' {
				if l.pos+1 < len(l.in) && l.in[l.pos+1] == '.' {
					break
				}
			}
			b.WriteByte(l.in[l.pos])
			l.pos++
		}
		return token{tokIdent, b.String(), start}, nil
	default:
		return token{}, l.error(start, "unexpected character %q", c)
	}
}

func isIdentByte(c byte) bool {
	return c == '_' || c == '#' || c == '.' ||
		(c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

// lexAll tokenizes the whole input.
func lexAll(in string) ([]token, error) {
	l := &lexer{in: in}
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}
