package tgql

import (
	"testing"

	"repro/internal/core"
)

// FuzzExec throws arbitrary statements at the parser and executor: every
// input must either produce a result or an error, never a panic.
func FuzzExec(f *testing.F) {
	f.Add("STATS")
	f.Add("AGG DIST gender, publications ON UNION(t0, t1)")
	f.Add("AGG ALL gender ON PROJECT t0..t2 WHERE publications > 2")
	f.Add("AGG DIST gender ON POINT t0 MEASURE AVG(publications)")
	f.Add("EVOLVE DIST gender FROM t0 TO t1 WHERE publications = 3")
	f.Add("EXPLORE STABILITY BY gender EDGE 'f' -> 'f' SEMANTICS INTERSECTION EXTEND NEW K 1")
	f.Add("EXPLORE GROWTH BY gender TUNE 2")
	f.Add("TOP 3 SHRINKAGE BY gender")
	f.Add("AGG DIST gender ON UNION(t0, '")
	f.Add("agg dist gender on point t0 where gender != 'f' and publications <= 2")
	// Failure shapes the HTTP /v1/tgql endpoint sees: multi-line bodies,
	// unknown points/attributes, bad thresholds, stray operators.
	f.Add("AGG DIST gender\nON POINT t9")
	f.Add("AGG DIST nope,\n  gender ON POINT t0")
	f.Add("EXPLORE STABILITY BY gender K 0")
	f.Add("EXPLORE STABILITY BY gender EDGE 'zz' -> 'f' K 1")
	f.Add("AGG DIST gender ON POINT t0 MEASURE AVG(nope)")
	f.Add("AGG DIST gender ON PROJECT t2..t0")
	f.Add("AGG DIST gender ON POINT t0 - t1")
	f.Add("TIMELINE BY gender WHERE publications >= bogus")
	f.Add("COARSEN 0")
	f.Add("\n\n  STATS  \n")
	// Bi-temporal clauses: well-formed, reordered, duplicated, truncated,
	// and unservable (plain Exec has no transaction log to travel on).
	f.Add("AGG DIST gender ON POINT t0 AS OF 2")
	f.Add("AGG DIST gender ON POINT t0 VALID DURING t0..t1")
	f.Add("AGG DIST gender ON POINT t0 VALID DURING t0..t1 AS OF 3")
	f.Add("EVOLVE DIST gender FROM t0 TO t1 AS OF 1 VALID DURING t0..t2")
	f.Add("EXPLORE GROWTH BY gender TUNE 2 AS OF 9999999")
	f.Add("TOP 3 SHRINKAGE BY gender VALID DURING t2..t0")
	f.Add("TIMELINE BY gender AS OF -1")
	f.Add("AGG DIST gender ON POINT t0 AS OF 1 AS OF 2")
	f.Add("AGG DIST gender ON POINT t0 VALID DURING")
	f.Add("AGG DIST gender ON POINT t0 AS OF")
	f.Add("AGG DIST gender ON POINT t0 AS OF t0")
	f.Add("AGG DIST gender ON POINT t0 VALID DURING t0 VALID DURING t1")
	// Evolution-analytics statements: well-formed, clause-reordered,
	// truncated, and with unresolvable operands.
	f.Add("EVENTS DIST BY gender WIDTH 1")
	f.Add("EVENTS ALL BY gender, publications WIDTH 2 MIN 1 WHERE publications > 1")
	f.Add("EVENTS DIST BY gender MIN 1 WIDTH 2 AS OF 2 VALID DURING t0..t1")
	f.Add("EVENTS DIST BY gender WIDTH")
	f.Add("EVENTS DIST BY gender WIDTH -1")
	f.Add("EVENTS DIST BY nope")
	f.Add("PATHS EARLIEST FROM u1 TO u2, u4")
	f.Add("PATHS FASTEST FROM u1, u3 TO u5 DURING t0..t2")
	f.Add("PATHS FASTEST FROM u1 TO u2 DURING t0..t1 VALID DURING t0..t1 AS OF 1")
	f.Add("PATHS SCENIC FROM u1 TO u2")
	f.Add("PATHS EARLIEST FROM u9 TO u2")
	f.Add("PATHS EARLIEST FROM u1 TO")
	f.Add("PATHS EARLIEST FROM u1 TO u2 DURING t9")
	f.Add("TREND ALL BY gender WIDTH 2")
	f.Add("TREND DIST BY gender WHERE publications >= 1 WIDTH 3")
	f.Add("TREND DIST BY gender WIDTH 99")
	f.Add("TREND SUM BY gender")
	f.Add("EXPLAIN EVENTS DIST BY gender WIDTH 1")
	f.Add("EXPLAIN PATHS FASTEST FROM u1 TO u2")
	f.Add("EXPLAIN TREND ALL BY gender")

	g := core.PaperExample()
	f.Fuzz(func(t *testing.T, query string) {
		res, err := Exec(g, query)
		if err == nil && res == nil {
			t.Fatal("nil result without error")
		}
		if err == nil {
			_ = res.String() // rendering must not panic either
		}
	})
}
