package tgql

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/agg"
	"repro/internal/analytics"
	"repro/internal/core"
)

func analyticsJSON(t *testing.T, v interface{}) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestEventsStatement runs EVENTS end to end — parse, plan, execute — and
// checks the result is byte-identical to the engine invoked directly.
func TestEventsStatement(t *testing.T) {
	g := core.PaperExample()
	res, err := Exec(g, "EVENTS DIST BY gender WIDTH 1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Events == nil {
		t.Fatal("no events result")
	}
	schema, err := agg.ByName(g, "gender")
	if err != nil {
		t.Fatal(err)
	}
	want := analytics.EventsSweep(g, analytics.EventsSpec{Schema: schema, Kind: agg.Distinct, Width: 1})
	if got, w := analyticsJSON(t, res.Events), analyticsJSON(t, want); got != w {
		t.Errorf("EVENTS statement diverges from engine:\n got %s\nwant %s", got, w)
	}
	if s := res.String(); !strings.Contains(s, "evolution events") || !strings.Contains(s, "class") {
		t.Errorf("EVENTS rendering missing table:\n%s", s)
	}

	// MIN filters rows by change magnitude; a huge MIN keeps none.
	res, err = Exec(g, "EVENTS DIST BY gender WIDTH 1 MIN 100")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Events.Rows) != 0 {
		t.Errorf("MIN 100 kept %d rows, want 0", len(res.Events.Rows))
	}
}

// TestPathsStatement covers both modes, with and without DURING.
func TestPathsStatement(t *testing.T) {
	g := core.PaperExample()
	res, err := Exec(g, "PATHS EARLIEST FROM u1 TO u2, u4")
	if err != nil {
		t.Fatal(err)
	}
	if res.Paths == nil || res.Paths.Mode != analytics.ModeEarliest {
		t.Fatalf("unexpected paths result: %+v", res.Paths)
	}
	u1, _ := g.NodeByLabel("u1")
	u2, _ := g.NodeByLabel("u2")
	u4, _ := g.NodeByLabel("u4")
	want := analytics.NewPathsEngine(g, analytics.PathsSpec{
		Mode: analytics.ModeEarliest,
		Src:  []core.NodeID{u1}, Dst: []core.NodeID{u2, u4},
		Window: g.Timeline().All(),
	}).Run()
	if got, w := analyticsJSON(t, res.Paths), analyticsJSON(t, want); got != w {
		t.Errorf("PATHS statement diverges from engine:\n got %s\nwant %s", got, w)
	}
	if s := res.String(); !strings.Contains(s, "earliest") || !strings.Contains(s, "duration") {
		t.Errorf("PATHS rendering missing table:\n%s", s)
	}

	res, err = Exec(g, "PATHS FASTEST FROM u1 TO u4 DURING t0..t1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Paths.Mode != analytics.ModeFastest || res.Paths.Window != "[t0,t1]" {
		t.Errorf("FASTEST DURING parsed wrong: %+v", res.Paths)
	}
}

// TestTrendStatement checks TREND end to end, incl. inline VALID DURING.
func TestTrendStatement(t *testing.T) {
	g := core.PaperExample()
	res, err := Exec(g, "TREND ALL BY gender WIDTH 2")
	if err != nil {
		t.Fatal(err)
	}
	if res.Trend == nil {
		t.Fatal("no trend result")
	}
	schema, err := agg.ByName(g, "gender")
	if err != nil {
		t.Fatal(err)
	}
	want := analytics.TrendScan(g, analytics.TrendSpec{Schema: schema, Kind: agg.All, Width: 2})
	if got, w := analyticsJSON(t, res.Trend), analyticsJSON(t, want); got != w {
		t.Errorf("TREND statement diverges from engine:\n got %s\nwant %s", got, w)
	}
	if s := res.String(); !strings.Contains(s, "sliding-window trend") || !strings.Contains(s, "direction") {
		t.Errorf("TREND rendering missing table:\n%s", s)
	}

	// Valid-time restriction windows the graph inline: one point left.
	res, err = Exec(g, "TREND DIST BY gender VALID DURING t0..t0")
	if err != nil {
		t.Fatal(err)
	}
	if res.Trend.Windows != 1 {
		t.Errorf("TREND over a one-point valid window has %d windows, want 1", res.Trend.Windows)
	}
}

// TestAnalyticsExplainStatement checks EXPLAIN renders the analytics
// operators with their engine choice.
func TestAnalyticsExplainStatement(t *testing.T) {
	g := core.PaperExample()
	cases := []struct {
		query string
		want  []string
	}{
		{"EXPLAIN EVENTS DIST BY gender WIDTH 1", []string{"EventsSweep", "engine=entity-sweep"}},
		{"EXPLAIN EVENTS DIST BY gender WIDTH 2", []string{"EventsScan", "engine=per-step-scan"}},
		{"EXPLAIN PATHS EARLIEST FROM u1 TO u2", []string{"PathsFrontier", "mode=earliest"}},
		{"EXPLAIN PATHS FASTEST FROM u1 TO u2 DURING t0..t1", []string{"PathsNaive", "engine=time-expanded"}},
		{"EXPLAIN TREND DIST BY gender", []string{"TrendScan", "windows=3"}},
	}
	for _, c := range cases {
		res, err := Exec(g, c.query)
		if err != nil {
			t.Fatalf("%q: %v", c.query, err)
		}
		if res.Events != nil || res.Paths != nil || res.Trend != nil {
			t.Errorf("%q executed the statement", c.query)
		}
		for _, w := range c.want {
			if !strings.Contains(res.Explain, w) {
				t.Errorf("%q: EXPLAIN misses %q:\n%s", c.query, w, res.Explain)
			}
		}
	}
}

// TestAnalyticsErrorPositions pins position-anchored errors for the new
// statements, parse-time and resolve-time.
func TestAnalyticsErrorPositions(t *testing.T) {
	g := core.PaperExample()
	cases := []struct {
		query string
		want  []string
	}{
		{"EVENTS SUM BY gender", []string{"tgql: 1:8:", "expected DIST or ALL"}},
		{"EVENTS DIST gender", []string{"tgql: 1:13:", "expected BY"}},
		{"EVENTS DIST BY nope", []string{"tgql: 1:16:", `unknown attribute "nope"`}},
		{"EVENTS DIST BY gender WIDTH zero", []string{"WIDTH wants a positive integer"}},
		{"EVENTS DIST BY gender MIN lots", []string{"MIN wants a non-negative integer"}},
		{"PATHS SCENIC FROM u1 TO u2", []string{"tgql: 1:7:", "expected EARLIEST or FASTEST"}},
		{"PATHS EARLIEST FROM u9 TO u2", []string{"tgql: 1:21:", `unknown node "u9"`}},
		{"PATHS EARLIEST FROM u1 TO u9", []string{"tgql: 1:27:", `unknown node "u9"`}},
		{"PATHS EARLIEST FROM u1 TO u2 DURING t9", []string{`unknown time point "t9"`}},
		{"TREND DIST BY nope", []string{"tgql: 1:15:", `unknown attribute "nope"`}},
		{"TREND DIST BY gender WIDTH 0", []string{"WIDTH wants a positive integer"}},
	}
	for _, c := range cases {
		_, err := Exec(g, c.query)
		if err == nil {
			t.Errorf("%q: no error", c.query)
			continue
		}
		for _, w := range c.want {
			if !strings.Contains(err.Error(), w) {
				t.Errorf("%q:\n  error %q\n  missing %q", c.query, err, w)
			}
		}
	}
}

// TestIsAnalytics classifies statements for the partial-shard guard.
func TestIsAnalytics(t *testing.T) {
	yes := []string{
		"EVENTS DIST BY gender",
		"events all by gender width 2 min 1",
		"PATHS FASTEST FROM u1 TO u2 DURING t0..t1",
		"TREND ALL BY gender",
		"EXPLAIN EVENTS DIST BY gender",
		"EXPLAIN PATHS EARLIEST FROM u1 TO u2",
	}
	for _, q := range yes {
		if !IsAnalytics(q) {
			t.Errorf("IsAnalytics(%q) = false, want true", q)
		}
	}
	no := []string{
		"AGG DIST gender ON POINT t0",
		"TIMELINE BY gender",
		"STATS",
		"EVENTS DIST", // parse error → false; the exec path owns the error
		"not a query",
	}
	for _, q := range no {
		if IsAnalytics(q) {
			t.Errorf("IsAnalytics(%q) = true, want false", q)
		}
	}
}
