package tgql

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/agg"
	"repro/internal/analytics"
	"repro/internal/benchutil"
	"repro/internal/core"
	"repro/internal/evolution"
	"repro/internal/explore"
	"repro/internal/plan"
)

// Result holds the output of one executed query; exactly one of the
// payload fields is set.
type Result struct {
	Agg       *agg.Graph
	Measure   *agg.MeasureGraph
	Evolution *evolution.Agg
	Pairs     []explore.Pair
	K         int64 // the threshold an EXPLORE ran with (chosen or tuned)
	Stats     *core.Stats
	Top       []explore.TupleScore
	TopSchema *agg.Schema
	Timeline  []evolution.TimelineStep
	// Coarse is the zoomed-out graph of a COARSEN statement; the REPL
	// reports its statistics.
	Coarse *core.Graph
	// Events/Paths/Trend carry the evolution-analytics statement results.
	Events *analytics.EventsResult
	Paths  *analytics.PathsResult
	Trend  *analytics.TrendResult
	// Explain is the physical-plan rendering of an EXPLAIN statement.
	Explain string

	// g is the graph the query ran against, for rendering context.
	g *core.Graph
}

// String renders the result for terminals and the REPL.
func (r *Result) String() string {
	switch {
	case r.Explain != "":
		return r.Explain
	case r.Agg != nil:
		return r.Agg.String()
	case r.Measure != nil:
		return r.Measure.String()
	case r.Evolution != nil:
		return r.Evolution.String()
	case r.Stats != nil:
		var b strings.Builder
		tb := &benchutil.Table{ID: "stats", Title: "nodes and edges per time point",
			Header: []string{"#TP", "#Nodes", "#Edges"}}
		for i, label := range r.Stats.Labels {
			tb.Add(label, fmt.Sprintf("%d", r.Stats.Nodes[i]), fmt.Sprintf("%d", r.Stats.Edges[i]))
		}
		tb.Print(&b)
		return b.String()
	case r.Top != nil:
		var b strings.Builder
		fmt.Fprintf(&b, "top %d attribute groups by peak event count\n", len(r.Top))
		for i, ts := range r.Top {
			fmt.Fprintf(&b, "  %d. %s peak %d at %s → %s\n",
				i+1, ts.Label(r.TopSchema), ts.Peak, ts.Old, ts.New)
		}
		return b.String()
	case r.Timeline != nil:
		var b strings.Builder
		tb := &benchutil.Table{ID: "timeline", Title: "evolution per consecutive pair",
			Header: []string{"step", "nodes St", "nodes Gr", "nodes Shr", "edges St", "edges Gr", "edges Shr"}}
		tl := r.g.Timeline()
		for _, st := range r.Timeline {
			tb.Add(tl.Label(st.Old)+"→"+tl.Label(st.New),
				fmt.Sprintf("%d", st.NodeSt), fmt.Sprintf("%d", st.NodeGr), fmt.Sprintf("%d", st.NodeShr),
				fmt.Sprintf("%d", st.EdgeSt), fmt.Sprintf("%d", st.EdgeGr), fmt.Sprintf("%d", st.EdgeShr))
		}
		tb.Print(&b)
		return b.String()
	case r.Coarse != nil:
		var b strings.Builder
		stats := core.ComputeStats(r.Coarse)
		tb := &benchutil.Table{ID: "coarsened", Title: "zoomed-out graph",
			Header: []string{"#TP", "#Nodes", "#Edges"}}
		for i, label := range stats.Labels {
			tb.Add(label, fmt.Sprintf("%d", stats.Nodes[i]), fmt.Sprintf("%d", stats.Edges[i]))
		}
		tb.Print(&b)
		return b.String()
	case r.Events != nil:
		var b strings.Builder
		tb := &benchutil.Table{ID: "events",
			Title:  fmt.Sprintf("evolution events, window width %d (%d steps)", r.Events.Width, r.Events.Steps),
			Header: []string{"step", "window", "group", "St", "Gr", "Shr", "class"}}
		for _, row := range r.Events.Rows {
			tb.Add(fmt.Sprintf("%d", row.Step), row.Old+"→"+row.New, row.Group,
				fmt.Sprintf("%d", row.St), fmt.Sprintf("%d", row.Gr), fmt.Sprintf("%d", row.Shr), row.Class)
		}
		tb.Print(&b)
		return b.String()
	case r.Paths != nil:
		var b strings.Builder
		tb := &benchutil.Table{ID: "paths",
			Title: fmt.Sprintf("%s time-respecting paths during %s (%d reached)",
				r.Paths.Mode, r.Paths.Window, r.Paths.Reached),
			Header: []string{"node", "depart", "arrive", "duration"}}
		for _, row := range r.Paths.Rows {
			tb.Add(row.Node, row.Depart, row.Arrive, fmt.Sprintf("%d", row.Duration))
		}
		tb.Print(&b)
		return b.String()
	case r.Trend != nil:
		var b strings.Builder
		tb := &benchutil.Table{ID: "trend",
			Title:  fmt.Sprintf("sliding-window trend, width %d (%d windows)", r.Trend.Width, r.Trend.Windows),
			Header: []string{"group", "series", "slope", "direction"}}
		for _, row := range r.Trend.Rows {
			parts := make([]string, len(row.Series))
			for i, v := range row.Series {
				parts[i] = fmt.Sprintf("%d", v)
			}
			tb.Add(row.Group, strings.Join(parts, " "), row.Slope, row.Direction)
		}
		tb.Print(&b)
		return b.String()
	default:
		var b strings.Builder
		fmt.Fprintf(&b, "k=%d: %d pair(s)\n", r.K, len(r.Pairs))
		for _, p := range r.Pairs {
			fmt.Fprintf(&b, "  %s\n", p)
		}
		return b.String()
	}
}

// ParseFilter compiles a standalone predicate expression (the WHERE
// grammar without the keyword, e.g. "publications > 4 AND gender = 'f'")
// into an appearance filter usable with AggregateFiltered and
// evolution.Aggregate.
func ParseFilter(g *core.Graph, expr string) (agg.Filter, error) {
	toks, err := lexAll(expr)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, in: expr}
	var cmps []comparison
	for {
		attr, attrPos, err := p.valuePos()
		if err != nil {
			return nil, err
		}
		opTok := p.peek()
		if opTok.kind != tokOp {
			return nil, p.errorf(opTok, "expected a comparison operator, found %q", opTok.text)
		}
		p.take()
		val, valPos, err := p.valuePos()
		if err != nil {
			return nil, err
		}
		cmps = append(cmps, comparison{Attr: attr, Op: opTok.text, Value: val, AttrPos: attrPos, ValuePos: valPos})
		if !p.keyword("AND") {
			break
		}
	}
	if err := p.atEOF(); err != nil {
		return nil, err
	}
	return plan.CompilePredicates(g, expr, toPredicates(cmps))
}

// Exec parses and executes one query against g.
func Exec(g *core.Graph, query string) (*Result, error) {
	return ExecCtx(context.Background(), g, query)
}

// ExecCtx is Exec with cooperative cancellation: the expensive statement
// engines (EXPLORE traversals, TOP rankings, aggregations) poll ctx between
// candidate evaluations and the run is abandoned once the deadline expires
// or the caller disconnects, returning ctx.Err() instead of a result. A nil
// error guarantees the same result Exec reports.
//
// Queries run serially (one aggregation worker); serving layers that want
// parallelism, catalog-backed reuse or plan caching pass those facilities
// through ExecEnv.
func ExecCtx(ctx context.Context, g *core.Graph, query string) (*Result, error) {
	return ExecEnv(ctx, plan.Env{Graph: g, Workers: 1}, query)
}

// ExecEnv parses one statement and executes it through the query planner:
// parse → logical plan → physical plan (plan.Compile's cost model selects
// the operators) → execute. The environment supplies the graph and the
// optional serving facilities — a materialization catalog (unlocks the
// catalog-backed union-ALL operator), a plan cache, a workers budget.
//
// STATS and COARSEN are REPL conveniences over core, not query-plan
// statements; they execute directly.
func ExecEnv(ctx context.Context, env plan.Env, query string) (*Result, error) {
	stmt, err := parse(query)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	env.Query = query
	switch q := stmt.(type) {
	case statsQuery:
		s := core.ComputeStats(env.Graph)
		return &Result{Stats: &s, g: env.Graph}, nil
	case coarsenQuery:
		spec, err := core.UniformGroups(env.Graph.Timeline(), q.Width)
		if err != nil {
			return nil, err
		}
		coarse, err := core.Coarsen(env.Graph, spec)
		if err != nil {
			return nil, err
		}
		return &Result{Coarse: coarse, g: env.Graph}, nil
	case explainQuery:
		node, err := toLogical(q.stmt)
		if err != nil {
			return nil, err
		}
		p, err := plan.Compile(env, node)
		if err != nil {
			return nil, err
		}
		return &Result{Explain: p.Explain(), g: env.Graph}, nil
	}
	node, err := toLogical(stmt)
	if err != nil {
		return nil, err
	}
	p, err := plan.Compile(env, node)
	if err != nil {
		return nil, err
	}
	pr, err := p.Execute(ctx)
	if err != nil {
		return nil, err
	}
	return &Result{
		Agg:       pr.Agg,
		Measure:   pr.Measure,
		Evolution: pr.Evolution,
		Pairs:     pr.Pairs,
		K:         pr.K,
		Top:       pr.Top,
		TopSchema: pr.TopSchema,
		Timeline:  pr.Timeline,
		Events:    pr.Events,
		Paths:     pr.Paths,
		Trend:     pr.Trend,
		g:         env.Graph,
	}, nil
}

// IsAnalytics reports whether the query parses to one of the evolution
// analytics statements (EVENTS, PATHS, TREND), bare or under EXPLAIN.
// Serving layers that cannot answer analytics (scatter partials hold one
// time-range shard, but the statements traverse the whole timeline) use it
// to reject up front. Unparseable queries report false — the parser's own
// error surfaces on the execution path.
func IsAnalytics(query string) bool {
	stmt, err := parse(query)
	if err != nil {
		return false
	}
	if ex, ok := stmt.(explainQuery); ok {
		stmt = ex.stmt
	}
	switch stmt.(type) {
	case eventsQuery, pathsQuery, trendQuery:
		return true
	}
	return false
}

// PlanEnv parses one statement and compiles it into a physical plan
// without executing it. A leading EXPLAIN keyword is accepted and
// ignored (the returned plan is what EXPLAIN would render).
func PlanEnv(env plan.Env, query string) (*plan.Plan, error) {
	stmt, err := parse(query)
	if err != nil {
		return nil, err
	}
	if ex, ok := stmt.(explainQuery); ok {
		stmt = ex.stmt
	}
	node, err := toLogical(stmt)
	if err != nil {
		return nil, err
	}
	env.Query = query
	return plan.Compile(env, node)
}

// PlanQuery compiles one statement against g with the same serial
// environment ExecCtx executes under.
func PlanQuery(g *core.Graph, query string) (*plan.Plan, error) {
	return PlanEnv(plan.Env{Graph: g, Workers: 1}, query)
}

// toLogical lowers a parsed statement into the planner's logical IR.
// STATS and COARSEN have no logical plan (they are not query statements).
func toLogical(stmt interface{}) (plan.Logical, error) {
	switch q := stmt.(type) {
	case aggQuery:
		return &plan.Aggregate{
			Op:             toTemporalOp(q.Op),
			Attrs:          q.Attrs,
			AttrsPos:       q.AttrsPos,
			Kind:           strings.ToLower(q.Kind),
			Where:          toPredicates(q.Where),
			Measure:        q.Measure,
			MeasureAttr:    q.MAttr,
			MeasureAttrPos: q.MAttrPos,
			Valid:          toValidRef(q.temporalClause),
			AsOf:           toTxnRef(q.temporalClause),
		}, nil
	case evolveQuery:
		return &plan.Evolve{
			Kind:     strings.ToLower(q.Kind),
			Attrs:    q.Attrs,
			AttrsPos: q.AttrsPos,
			From:     toIntervalRef(q.From),
			To:       toIntervalRef(q.To),
			Where:    toPredicates(q.Where),
			Valid:    toValidRef(q.temporalClause),
			AsOf:     toTxnRef(q.temporalClause),
		}, nil
	case exploreQuery:
		return &plan.Explore{
			Event:     strings.ToLower(q.Event),
			Attrs:     q.Attrs,
			AttrsPos:  q.AttrsPos,
			Semantics: strings.ToLower(q.Semantics),
			Extend:    strings.ToLower(q.Extend),
			NodeTuple: q.NodeTuple,
			EdgeFrom:  q.EdgeFrom,
			EdgeTo:    q.EdgeTo,
			K:         q.K,
			Tune:      q.Tune,
			Valid:     toValidRef(q.temporalClause),
			AsOf:      toTxnRef(q.temporalClause),
		}, nil
	case topQuery:
		return &plan.Top{
			N:        q.N,
			Event:    strings.ToLower(q.Event),
			Attrs:    q.Attrs,
			AttrsPos: q.AttrsPos,
			Valid:    toValidRef(q.temporalClause),
			AsOf:     toTxnRef(q.temporalClause),
		}, nil
	case timelineQuery:
		return &plan.Timeline{
			Attrs:    q.Attrs,
			AttrsPos: q.AttrsPos,
			Where:    toPredicates(q.Where),
			Valid:    toValidRef(q.temporalClause),
			AsOf:     toTxnRef(q.temporalClause),
		}, nil
	case eventsQuery:
		return &plan.Events{
			Kind:     strings.ToLower(q.Kind),
			Attrs:    q.Attrs,
			AttrsPos: q.AttrsPos,
			Width:    q.Width,
			Min:      q.Min,
			Where:    toPredicates(q.Where),
			Valid:    toValidRef(q.temporalClause),
			AsOf:     toTxnRef(q.temporalClause),
		}, nil
	case pathsQuery:
		node := &plan.Paths{
			Mode:    strings.ToLower(q.Mode),
			From:    q.From,
			FromPos: q.FromPos,
			To:      q.To,
			ToPos:   q.ToPos,
			Valid:   toValidRef(q.temporalClause),
			AsOf:    toTxnRef(q.temporalClause),
		}
		if q.HasDur {
			node.During = toIntervalRef(q.During)
		}
		return node, nil
	case trendQuery:
		return &plan.Trend{
			Kind:     strings.ToLower(q.Kind),
			Attrs:    q.Attrs,
			AttrsPos: q.AttrsPos,
			Width:    q.Width,
			Where:    toPredicates(q.Where),
			Valid:    toValidRef(q.temporalClause),
			AsOf:     toTxnRef(q.temporalClause),
		}, nil
	default:
		return nil, fmt.Errorf("tgql: statement %T has no query plan (EXPLAIN supports AGG, EVOLVE, EXPLORE, TOP, TIMELINE, EVENTS, PATHS and TREND)", stmt)
	}
}

// toTemporalOp lowers a parsed operator expression; TGQL's POINT and
// PROJECT both normalize to the planner's project operator.
func toTemporalOp(op opExpr) plan.TemporalOp {
	var name string
	switch op.Op {
	case "POINT", "PROJECT":
		name = plan.OpProject
	case "UNION":
		name = plan.OpUnion
	case "INTERSECT":
		name = plan.OpIntersection
	default: // DIFF
		name = plan.OpDifference
	}
	t := plan.TemporalOp{Op: name, A: toIntervalRef(op.A)}
	if name != plan.OpProject {
		t.B = toIntervalRef(op.B)
	}
	return t
}

func toIntervalRef(iv intervalExpr) plan.IntervalRef {
	return plan.IntervalRef{From: iv.From, To: iv.To, FromPos: iv.FromPos, ToPos: iv.ToPos}
}

// toValidRef lowers a statement's VALID DURING window (zero when absent).
func toValidRef(tc temporalClause) plan.IntervalRef {
	if !tc.HasValid {
		return plan.IntervalRef{}
	}
	return toIntervalRef(tc.Valid)
}

// toTxnRef lowers a statement's AS OF transaction (zero when absent).
func toTxnRef(tc temporalClause) plan.TxnRef {
	return plan.TxnRef{Txn: tc.AsOf, Pos: tc.AsOfPos}
}

func toPredicates(cmps []comparison) []plan.Predicate {
	if len(cmps) == 0 {
		return nil
	}
	out := make([]plan.Predicate, len(cmps))
	for i, c := range cmps {
		out[i] = plan.Predicate{Attr: c.Attr, Op: c.Op, Value: c.Value, AttrPos: c.AttrPos, ValuePos: c.ValuePos}
	}
	return out
}
