package tgql

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/agg"
	"repro/internal/benchutil"
	"repro/internal/core"
	"repro/internal/evolution"
	"repro/internal/explore"
	"repro/internal/ops"
	"repro/internal/timeline"
)

// Result holds the output of one executed query; exactly one of the
// payload fields is set.
type Result struct {
	Agg       *agg.Graph
	Measure   *agg.MeasureGraph
	Evolution *evolution.Agg
	Pairs     []explore.Pair
	K         int64 // the threshold an EXPLORE ran with (chosen or tuned)
	Stats     *core.Stats
	Top       []explore.TupleScore
	TopSchema *agg.Schema
	Timeline  []evolution.TimelineStep
	// Coarse is the zoomed-out graph of a COARSEN statement; the REPL
	// reports its statistics.
	Coarse *core.Graph

	// g is the graph the query ran against, for rendering context.
	g *core.Graph
}

// String renders the result for terminals and the REPL.
func (r *Result) String() string {
	switch {
	case r.Agg != nil:
		return r.Agg.String()
	case r.Measure != nil:
		return r.Measure.String()
	case r.Evolution != nil:
		return r.Evolution.String()
	case r.Stats != nil:
		var b strings.Builder
		tb := &benchutil.Table{ID: "stats", Title: "nodes and edges per time point",
			Header: []string{"#TP", "#Nodes", "#Edges"}}
		for i, label := range r.Stats.Labels {
			tb.Add(label, fmt.Sprintf("%d", r.Stats.Nodes[i]), fmt.Sprintf("%d", r.Stats.Edges[i]))
		}
		tb.Print(&b)
		return b.String()
	case r.Top != nil:
		var b strings.Builder
		fmt.Fprintf(&b, "top %d attribute groups by peak event count\n", len(r.Top))
		for i, ts := range r.Top {
			fmt.Fprintf(&b, "  %d. %s peak %d at %s → %s\n",
				i+1, ts.Label(r.TopSchema), ts.Peak, ts.Old, ts.New)
		}
		return b.String()
	case r.Timeline != nil:
		var b strings.Builder
		tb := &benchutil.Table{ID: "timeline", Title: "evolution per consecutive pair",
			Header: []string{"step", "nodes St", "nodes Gr", "nodes Shr", "edges St", "edges Gr", "edges Shr"}}
		tl := r.g.Timeline()
		for _, st := range r.Timeline {
			tb.Add(tl.Label(st.Old)+"→"+tl.Label(st.New),
				fmt.Sprintf("%d", st.NodeSt), fmt.Sprintf("%d", st.NodeGr), fmt.Sprintf("%d", st.NodeShr),
				fmt.Sprintf("%d", st.EdgeSt), fmt.Sprintf("%d", st.EdgeGr), fmt.Sprintf("%d", st.EdgeShr))
		}
		tb.Print(&b)
		return b.String()
	case r.Coarse != nil:
		var b strings.Builder
		stats := core.ComputeStats(r.Coarse)
		tb := &benchutil.Table{ID: "coarsened", Title: "zoomed-out graph",
			Header: []string{"#TP", "#Nodes", "#Edges"}}
		for i, label := range stats.Labels {
			tb.Add(label, fmt.Sprintf("%d", stats.Nodes[i]), fmt.Sprintf("%d", stats.Edges[i]))
		}
		tb.Print(&b)
		return b.String()
	default:
		var b strings.Builder
		fmt.Fprintf(&b, "k=%d: %d pair(s)\n", r.K, len(r.Pairs))
		for _, p := range r.Pairs {
			fmt.Fprintf(&b, "  %s\n", p)
		}
		return b.String()
	}
}

// ParseFilter compiles a standalone predicate expression (the WHERE
// grammar without the keyword, e.g. "publications > 4 AND gender = 'f'")
// into an appearance filter usable with AggregateFiltered and
// evolution.Aggregate.
func ParseFilter(g *core.Graph, expr string) (agg.Filter, error) {
	toks, err := lexAll(expr)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, in: expr}
	var cmps []comparison
	for {
		attr, attrPos, err := p.valuePos()
		if err != nil {
			return nil, err
		}
		opTok := p.peek()
		if opTok.kind != tokOp {
			return nil, p.errorf(opTok, "expected a comparison operator, found %q", opTok.text)
		}
		p.take()
		val, valPos, err := p.valuePos()
		if err != nil {
			return nil, err
		}
		cmps = append(cmps, comparison{Attr: attr, Op: opTok.text, Value: val, AttrPos: attrPos, ValuePos: valPos})
		if !p.keyword("AND") {
			break
		}
	}
	if err := p.atEOF(); err != nil {
		return nil, err
	}
	return compilePredicate(g, expr, cmps)
}

// Exec parses and executes one query against g.
func Exec(g *core.Graph, query string) (*Result, error) {
	return ExecCtx(context.Background(), g, query)
}

// ExecCtx is Exec with cooperative cancellation: the expensive statement
// engines (EXPLORE traversals, TOP rankings, aggregations) poll ctx between
// candidate evaluations and the run is abandoned once the deadline expires
// or the caller disconnects, returning ctx.Err() instead of a result. A nil
// error guarantees the same result Exec reports.
func ExecCtx(ctx context.Context, g *core.Graph, query string) (*Result, error) {
	stmt, err := parse(query)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var res *Result
	switch q := stmt.(type) {
	case statsQuery:
		s := core.ComputeStats(g)
		res = &Result{Stats: &s}
	case aggQuery:
		res, err = execAgg(ctx, g, query, q)
	case evolveQuery:
		res, err = execEvolve(ctx, g, query, q)
	case exploreQuery:
		res, err = execExplore(ctx, g, query, q)
	case topQuery:
		res, err = execTop(ctx, g, query, q)
	case timelineQuery:
		res, err = execTimeline(ctx, g, query, q)
	case coarsenQuery:
		spec, specErr := core.UniformGroups(g.Timeline(), q.Width)
		if specErr != nil {
			return nil, specErr
		}
		coarse, cErr := core.Coarsen(g, spec)
		if cErr != nil {
			return nil, cErr
		}
		res = &Result{Coarse: coarse}
	default:
		return nil, fmt.Errorf("tgql: unhandled statement %T", stmt)
	}
	if err != nil {
		return nil, err
	}
	res.g = g
	return res, nil
}

// schemaFor resolves attribute names into an aggregation schema, pointing
// unknown-attribute errors at the name's position in the query.
func schemaFor(g *core.Graph, in string, names []string, poss []int) (*agg.Schema, error) {
	for i, n := range names {
		if _, ok := g.AttrByName(n); !ok {
			return nil, posErrf(in, posAt(poss, i), n, "unknown attribute %q", n)
		}
	}
	return agg.ByName(g, names...)
}

// posAt guards against ASTs built without positions (zero value).
func posAt(poss []int, i int) int {
	if i < len(poss) {
		return poss[i]
	}
	return 0
}

func execTimeline(ctx context.Context, g *core.Graph, in string, q timelineQuery) (*Result, error) {
	schema, err := schemaFor(g, in, q.Attrs, q.AttrsPos)
	if err != nil {
		return nil, err
	}
	filter, err := compilePredicate(g, in, q.Where)
	if err != nil {
		return nil, err
	}
	steps := evolution.Timeline(g, schema, agg.Distinct, evolution.Filter(filter))
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return &Result{Timeline: steps}, nil
}

func resolveInterval(g *core.Graph, in string, iv intervalExpr) (timeline.Interval, error) {
	tl := g.Timeline()
	from, ok := tl.TimeOf(iv.From)
	if !ok {
		return timeline.Interval{}, posErrf(in, iv.FromPos, iv.From, "unknown time point %q", iv.From)
	}
	if iv.To == "" {
		return tl.Point(from), nil
	}
	to, ok := tl.TimeOf(iv.To)
	if !ok {
		return timeline.Interval{}, posErrf(in, iv.ToPos, iv.To, "unknown time point %q", iv.To)
	}
	if from > to {
		return timeline.Interval{}, posErrf(in, iv.FromPos, iv.From, "interval %s..%s runs backwards", iv.From, iv.To)
	}
	return tl.Range(from, to), nil
}

func resolveView(g *core.Graph, in string, op opExpr) (*ops.View, error) {
	a, err := resolveInterval(g, in, op.A)
	if err != nil {
		return nil, err
	}
	switch op.Op {
	case "POINT", "PROJECT":
		return ops.Project(g, a), nil
	}
	b, err := resolveInterval(g, in, op.B)
	if err != nil {
		return nil, err
	}
	switch op.Op {
	case "UNION":
		return ops.Union(g, a, b), nil
	case "INTERSECT":
		return ops.Intersection(g, a, b), nil
	default: // DIFF
		return ops.Difference(g, a, b), nil
	}
}

func resolveKind(kind string) agg.Kind {
	if kind == "ALL" {
		return agg.All
	}
	return agg.Distinct
}

// compilePredicate turns WHERE comparisons into an appearance filter.
// Equality and inequality compare strings; ordering operators compare
// numerically and reject appearances whose value does not parse.
func compilePredicate(g *core.Graph, in string, cmps []comparison) (agg.Filter, error) {
	if len(cmps) == 0 {
		return nil, nil
	}
	type compiled struct {
		attr    core.AttrID
		op      string
		str     string
		num     float64
		numeric bool
	}
	cs := make([]compiled, len(cmps))
	for i, c := range cmps {
		a, ok := g.AttrByName(c.Attr)
		if !ok {
			return nil, posErrf(in, c.AttrPos, c.Attr, "unknown attribute %q in WHERE", c.Attr)
		}
		cc := compiled{attr: a, op: c.Op, str: c.Value}
		if n, err := strconv.ParseFloat(c.Value, 64); err == nil {
			cc.num, cc.numeric = n, true
		}
		if (c.Op != "=" && c.Op != "!=") && !cc.numeric {
			return nil, posErrf(in, c.ValuePos, c.Value, "operator %s needs a numeric value, got %q", c.Op, c.Value)
		}
		cs[i] = cc
	}
	return func(n core.NodeID, t timeline.Time) bool {
		for _, c := range cs {
			v := g.ValueString(c.attr, n, t)
			if v == "" {
				return false
			}
			switch c.op {
			case "=":
				if v != c.str {
					return false
				}
			case "!=":
				if v == c.str {
					return false
				}
			default:
				x, err := strconv.ParseFloat(v, 64)
				if err != nil {
					return false
				}
				switch c.op {
				case "<":
					if !(x < c.num) {
						return false
					}
				case "<=":
					if !(x <= c.num) {
						return false
					}
				case ">":
					if !(x > c.num) {
						return false
					}
				case ">=":
					if !(x >= c.num) {
						return false
					}
				}
			}
		}
		return true
	}, nil
}

func execAgg(ctx context.Context, g *core.Graph, in string, q aggQuery) (*Result, error) {
	schema, err := schemaFor(g, in, q.Attrs, q.AttrsPos)
	if err != nil {
		return nil, err
	}
	view, err := resolveView(g, in, q.Op)
	if err != nil {
		return nil, err
	}
	filter, err := compilePredicate(g, in, q.Where)
	if err != nil {
		return nil, err
	}
	if q.Measure != "" {
		if filter != nil {
			return nil, fmt.Errorf("tgql: WHERE and MEASURE cannot be combined")
		}
		a, ok := g.AttrByName(q.MAttr)
		if !ok {
			return nil, posErrf(in, q.MAttrPos, q.MAttr, "unknown measured attribute %q", q.MAttr)
		}
		var fn agg.Measure
		switch q.Measure {
		case "SUM":
			fn = agg.Sum
		case "AVG":
			fn = agg.Avg
		case "MIN":
			fn = agg.Min
		default:
			fn = agg.Max
		}
		mg, err := agg.AggregateMeasure(view, schema, a, fn)
		if err != nil {
			return nil, err
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return &Result{Measure: mg}, nil
	}
	if filter == nil {
		// The unfiltered engine has chunked cancellation probes; one worker
		// keeps the serial execution (and result) of AggregateFiltered.
		ag, err := agg.AggregateParallelCtx(ctx, view, schema, resolveKind(q.Kind), 1)
		if err != nil {
			return nil, err
		}
		return &Result{Agg: ag}, nil
	}
	ag := agg.AggregateFiltered(view, schema, resolveKind(q.Kind), filter)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return &Result{Agg: ag}, nil
}

func execEvolve(ctx context.Context, g *core.Graph, in string, q evolveQuery) (*Result, error) {
	schema, err := schemaFor(g, in, q.Attrs, q.AttrsPos)
	if err != nil {
		return nil, err
	}
	old, err := resolveInterval(g, in, q.From)
	if err != nil {
		return nil, err
	}
	new, err := resolveInterval(g, in, q.To)
	if err != nil {
		return nil, err
	}
	filter, err := compilePredicate(g, in, q.Where)
	if err != nil {
		return nil, err
	}
	ev := evolution.Aggregate(g, old, new, schema, resolveKind(q.Kind), evolution.Filter(filter))
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return &Result{Evolution: ev}, nil
}

func execTop(ctx context.Context, g *core.Graph, in string, q topQuery) (*Result, error) {
	schema, err := schemaFor(g, in, q.Attrs, q.AttrsPos)
	if err != nil {
		return nil, err
	}
	ex := &explore.Explorer{Graph: g, Schema: schema, Kind: agg.Distinct, Result: explore.TotalEdges}
	var event explore.Event
	switch q.Event {
	case "STABILITY":
		event = evolution.Stability
	case "GROWTH":
		event = evolution.Growth
	default:
		event = evolution.Shrinkage
	}
	top, err := explore.TopEdgeTuplesCtx(ctx, ex, event, q.N)
	if err != nil {
		return nil, err
	}
	return &Result{Top: top, TopSchema: schema}, nil
}

func execExplore(ctx context.Context, g *core.Graph, in string, q exploreQuery) (*Result, error) {
	schema, err := schemaFor(g, in, q.Attrs, q.AttrsPos)
	if err != nil {
		return nil, err
	}
	ex := &explore.Explorer{Graph: g, Schema: schema, Kind: agg.Distinct, Result: explore.TotalEdges}
	switch {
	case q.EdgeFrom != nil:
		fn, err := explore.EdgeTuple(schema, q.EdgeFrom, q.EdgeTo)
		if err != nil {
			return nil, err
		}
		ex.Result = fn
	case q.NodeTuple != nil:
		fn, err := explore.NodeTuple(schema, q.NodeTuple...)
		if err != nil {
			return nil, err
		}
		ex.Result = fn
	}
	var event explore.Event
	switch q.Event {
	case "STABILITY":
		event = evolution.Stability
	case "GROWTH":
		event = evolution.Growth
	default:
		event = evolution.Shrinkage
	}
	sem := explore.UnionSemantics
	if q.Semantics == "INTERSECTION" {
		sem = explore.IntersectionSemantics
	}
	ext := explore.ExtendNew
	if q.Extend == "OLD" {
		ext = explore.ExtendOld
	}
	if q.Tune > 0 {
		k, pairs, err := ex.TuneKCtx(ctx, event, sem, ext, q.Tune)
		if err != nil {
			return nil, err
		}
		return &Result{Pairs: pairs, K: k}, nil
	}
	k := q.K
	if k < 1 {
		// §3.5 initialization: max of consecutive pairs for minimal
		// (union) searches, min for maximal (intersection) ones.
		min, max := ex.InitK(event)
		if sem == explore.UnionSemantics {
			k = max
		} else {
			k = min
		}
		if k < 1 {
			k = 1
		}
	}
	pairs, err := ex.ExploreCtx(ctx, event, sem, ext, k)
	if err != nil {
		return nil, err
	}
	return &Result{Pairs: pairs, K: k}, nil
}
