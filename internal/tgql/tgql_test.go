package tgql

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func exec(t *testing.T, q string) *Result {
	t.Helper()
	r, err := Exec(core.PaperExample(), q)
	if err != nil {
		t.Fatalf("Exec(%q): %v", q, err)
	}
	return r
}

func execErr(t *testing.T, q string) error {
	t.Helper()
	_, err := Exec(core.PaperExample(), q)
	if err == nil {
		t.Fatalf("Exec(%q) should fail", q)
	}
	return err
}

func TestStats(t *testing.T) {
	r := exec(t, "STATS")
	if r.Stats == nil || len(r.Stats.Labels) != 3 {
		t.Fatalf("stats result = %+v", r)
	}
	if !strings.Contains(r.String(), "t0") {
		t.Errorf("rendering:\n%s", r)
	}
}

// TestAggFig3d runs the paper's headline example through the language.
func TestAggFig3d(t *testing.T) {
	r := exec(t, "AGG DIST gender, publications ON UNION(t0, t1)")
	if r.Agg == nil {
		t.Fatal("no aggregate result")
	}
	f1, ok := r.Agg.Schema.Encode("f", "1")
	if !ok || r.Agg.NodeWeight(f1) != 3 {
		t.Fatalf("w(f,1) = %d, want 3", r.Agg.NodeWeight(f1))
	}
	rAll := exec(t, "agg all gender, publications on union(t0, t1)") // case-insensitive
	if rAll.Agg.NodeWeight(f1) != 4 {
		t.Fatalf("ALL w(f,1) = %d, want 4", rAll.Agg.NodeWeight(f1))
	}
}

func TestAggOperators(t *testing.T) {
	if r := exec(t, "AGG DIST gender ON POINT t0"); r.Agg.TotalNodeWeight() != 4 {
		t.Errorf("POINT t0 total = %d, want 4", r.Agg.TotalNodeWeight())
	}
	if r := exec(t, "AGG DIST gender ON PROJECT t0..t1"); r.Agg.TotalNodeWeight() != 3 {
		t.Errorf("PROJECT total = %d, want 3 (u1,u2,u4)", r.Agg.TotalNodeWeight())
	}
	if r := exec(t, "AGG DIST gender ON INTERSECT(t0, t1)"); r.Agg.TotalEdgeWeight() != 2 {
		t.Errorf("INTERSECT edges = %d, want 2", r.Agg.TotalEdgeWeight())
	}
	if r := exec(t, "AGG DIST gender ON DIFF(t0, t1)"); r.Agg.TotalEdgeWeight() != 1 {
		t.Errorf("DIFF edges = %d, want 1", r.Agg.TotalEdgeWeight())
	}
}

func TestAggWhere(t *testing.T) {
	// Appearances with publications > 2: u1@t0 (3) and u5@t2 (3).
	r := exec(t, "AGG ALL gender ON PROJECT t0..t2 WHERE publications > 2")
	// PROJECT t0..t2 keeps nodes existing throughout: u2, u4 — neither
	// passes the filter.
	if r.Agg.TotalNodeWeight() != 0 {
		t.Errorf("filtered total = %d, want 0", r.Agg.TotalNodeWeight())
	}
	r2 := exec(t, "AGG ALL gender ON UNION(t0, t2) WHERE publications > 2")
	m, _ := r2.Agg.Schema.Encode("m")
	if r2.Agg.NodeWeight(m) != 2 {
		t.Errorf("w(m | pubs>2) = %d, want 2 (u1@t0, u5@t2)", r2.Agg.NodeWeight(m))
	}
	// String equality.
	r3 := exec(t, "AGG DIST gender ON POINT t0 WHERE gender = 'f'")
	f, _ := r3.Agg.Schema.Encode("f")
	if r3.Agg.NodeWeight(f) != 3 || r3.Agg.TotalNodeWeight() != 3 {
		t.Errorf("w(f) = %d / total %d, want 3 / 3", r3.Agg.NodeWeight(f), r3.Agg.TotalNodeWeight())
	}
	// AND conjunction.
	r4 := exec(t, "AGG DIST gender ON POINT t0 WHERE gender = f AND publications >= 2")
	if r4.Agg.TotalNodeWeight() != 1 {
		t.Errorf("conjunction total = %d, want 1 (u4)", r4.Agg.TotalNodeWeight())
	}
}

func TestAggMeasure(t *testing.T) {
	r := exec(t, "AGG DIST gender ON POINT t0 MEASURE AVG(publications)")
	if r.Measure == nil {
		t.Fatal("no measure result")
	}
	m, _ := r.Measure.Schema.Encode("m")
	if v, ok := r.Measure.Value(m); !ok || v != 3 {
		t.Errorf("AVG(m) = %v, want 3", v)
	}
	if !strings.Contains(r.String(), "AVG(publications)") {
		t.Errorf("rendering:\n%s", r)
	}
}

// TestEvolveFig4b runs the Fig. 4b example through the language.
func TestEvolveFig4b(t *testing.T) {
	r := exec(t, "EVOLVE DIST gender, publications FROM t0 TO t1")
	if r.Evolution == nil {
		t.Fatal("no evolution result")
	}
	f1, _ := r.Evolution.Schema.Encode("f", "1")
	w := r.Evolution.NodeWeights(f1)
	if w.St != 1 || w.Gr != 1 || w.Shr != 1 {
		t.Fatalf("weights(f,1) = %+v, want 1/1/1", w)
	}
}

func TestEvolveWhere(t *testing.T) {
	r := exec(t, "EVOLVE DIST gender FROM t0 TO t1 WHERE publications = 3")
	m, _ := r.Evolution.Schema.Encode("m")
	if w := r.Evolution.NodeWeights(m); w.Shr != 1 || w.St != 0 {
		t.Errorf("weights(m | pubs=3) = %+v, want Shr=1", w)
	}
}

func TestExplore(t *testing.T) {
	r := exec(t, "EXPLORE STABILITY BY gender K 2")
	if len(r.Pairs) != 1 || r.Pairs[0].Result != 2 || r.K != 2 {
		t.Fatalf("pairs = %v (k=%d)", r.Pairs, r.K)
	}
	// Edge target + intersection semantics.
	r2 := exec(t, "EXPLORE STABILITY BY gender EDGE 'f' -> 'f' SEMANTICS INTERSECTION EXTEND NEW K 1")
	if len(r2.Pairs) == 0 {
		t.Fatal("no pairs for f-f stability")
	}
	// Auto-k from §3.5.
	r3 := exec(t, "EXPLORE GROWTH BY gender")
	if r3.K < 1 {
		t.Errorf("auto k = %d", r3.K)
	}
	// TUNE.
	r4 := exec(t, "EXPLORE SHRINKAGE BY gender EXTEND OLD TUNE 1")
	if r4.K < 1 || len(r4.Pairs) < 1 {
		t.Errorf("tuned: k=%d pairs=%d", r4.K, len(r4.Pairs))
	}
	// Node target.
	r5 := exec(t, "EXPLORE STABILITY BY gender NODE 'f' K 2")
	if len(r5.Pairs) != 2 {
		t.Errorf("node-target pairs = %d, want 2", len(r5.Pairs))
	}
	if !strings.Contains(r5.String(), "pair(s)") {
		t.Errorf("rendering:\n%s", r5)
	}
}

func TestParseAndExecErrors(t *testing.T) {
	cases := []string{
		"",
		"FROBNICATE",
		"AGG gender ON POINT t0",                               // missing kind
		"AGG DIST ON POINT t0",                                 // missing attrs... ON parses as attr; then missing ON
		"AGG DIST gender POINT t0",                             // missing ON
		"AGG DIST gender ON BOGUS t0",                          // unknown operator
		"AGG DIST gender ON UNION(t0 t1)",                      // missing comma
		"AGG DIST gender ON UNION(t0, t1",                      // missing paren
		"AGG DIST gender ON POINT t9",                          // unknown time point
		"AGG DIST nope ON POINT t0",                            // unknown attribute
		"AGG DIST gender ON POINT t0 WHERE nope = 1",           // unknown WHERE attribute
		"AGG DIST gender ON POINT t0 WHERE gender < f",         // non-numeric ordering
		"AGG DIST gender ON POINT t0 MEASURE AVG publications", // missing paren
		"AGG DIST gender ON POINT t0 MEASURE MEDIAN(x)",        // unknown fn
		"AGG DIST gender ON POINT t0 WHERE gender = f MEASURE AVG(publications)", // both
		"AGG DIST gender ON PROJECT t2..t0",                                      // backwards interval
		"AGG DIST gender ON POINT t0 trailing",                                   // trailing input
		"EVOLVE DIST gender FROM t0",                                             // missing TO
		"EXPLORE STABILITY BY gender EDGE 'f' 'f'",                               // missing arrow
		"EXPLORE STABILITY BY gender K 0",                                        // bad k
		"EXPLORE STABILITY BY gender TUNE x",                                     // bad tune
		"EXPLORE WOBBLE BY gender",                                               // unknown event
		"EXPLORE STABILITY BY gender SEMANTICS SIDEWAYS",                         // unknown semantics
		"EXPLORE STABILITY BY gender EDGE 'zz' -> 'f' K 1",                       // out-of-domain tuple
		"AGG DIST gender ON POINT 't0' WHERE gender ! f",                         // lone '!'
		"AGG DIST gender ON POINT t0 WHERE gender = 'f",                          // unterminated string
		"AGG DIST gender ON POINT t0 . t1",                                       // lone '.'
		"AGG DIST gender ON POINT t0 - t1",                                       // lone '-'
	}
	for _, q := range cases {
		execErr(t, q)
	}
}

func TestTopQuery(t *testing.T) {
	r := exec(t, "TOP 2 GROWTH BY gender")
	if len(r.Top) != 2 {
		t.Fatalf("top = %d entries, want 2", len(r.Top))
	}
	if got := r.Top[0].Label(r.TopSchema); got != "(f)→(m)" || r.Top[0].Peak != 2 {
		t.Errorf("top[0] = %s peak %d, want (f)→(m) peak 2", got, r.Top[0].Peak)
	}
	if !strings.Contains(r.String(), "1. (f)→(m) peak 2") {
		t.Errorf("rendering:\n%s", r)
	}
	execErr(t, "TOP 0 GROWTH BY gender")
	execErr(t, "TOP x GROWTH BY gender")
	execErr(t, "TOP 2 WOBBLE BY gender")
	execErr(t, "TOP 2 GROWTH gender")
	execErr(t, "TOP 2 GROWTH BY nope")
}

func TestParseFilter(t *testing.T) {
	g := core.PaperExample()
	filter, err := ParseFilter(g, "publications > 2 AND gender = 'm'")
	if err != nil {
		t.Fatal(err)
	}
	u1, _ := g.NodeByLabel("u1")
	u2, _ := g.NodeByLabel("u2")
	if !filter(u1, 0) { // u1@t0: m, 3 publications
		t.Error("u1@t0 should pass")
	}
	if filter(u1, 1) { // u1@t1: 1 publication
		t.Error("u1@t1 should fail")
	}
	if filter(u2, 0) { // u2 is f
		t.Error("u2 should fail")
	}
	for _, bad := range []string{"", "nope = 1", "gender < 'f'", "gender = 'f' trailing", "gender ="} {
		if _, err := ParseFilter(g, bad); err == nil {
			t.Errorf("ParseFilter(%q) should fail", bad)
		}
	}
}

func TestTimelineQuery(t *testing.T) {
	r := exec(t, "TIMELINE BY gender")
	if len(r.Timeline) != 2 {
		t.Fatalf("timeline = %d steps, want 2", len(r.Timeline))
	}
	if r.Timeline[0].NodeSt != 3 || r.Timeline[0].NodeShr != 1 {
		t.Errorf("step0 = %+v", r.Timeline[0])
	}
	if !strings.Contains(r.String(), "t0→t1") {
		t.Errorf("rendering:\n%s", r)
	}
	rf := exec(t, "TIMELINE BY gender WHERE publications = 1")
	if rf.Timeline[0].NodeSt >= r.Timeline[0].NodeSt+1 {
		t.Errorf("filtered timeline should not exceed unfiltered")
	}
	execErr(t, "TIMELINE gender")
	execErr(t, "TIMELINE BY nope")
}

func TestCoarsenQuery(t *testing.T) {
	r := exec(t, "COARSEN 2")
	if r.Coarse == nil || r.Coarse.Timeline().Len() != 2 {
		t.Fatalf("coarse result = %+v", r.Coarse)
	}
	if !strings.Contains(r.String(), "t0..t1") {
		t.Errorf("rendering:\n%s", r)
	}
	execErr(t, "COARSEN 0")
	execErr(t, "COARSEN x")
	execErr(t, "COARSEN 2 trailing")
}

func TestQuotedValuesAndRanges(t *testing.T) {
	r := exec(t, `AGG DIST gender ON UNION("t0", 't1'..'t2')`)
	if r.Agg.TotalNodeWeight() == 0 {
		t.Error("quoted labels should resolve")
	}
}
