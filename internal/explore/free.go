package explore

import (
	"repro/internal/timeline"
)

// The paper's Definition 3.6 asks for interval pairs without fixing a
// reference point, but its strategies anchor one side because the
// difference operator is non-monotonic when BOTH sides extend (§3.3).
// ExploreFree completes the problem definition: it enumerates every pair
// of contiguous, non-overlapping intervals (Told entirely before Tnew) and
// reports the Pareto-minimal (union semantics) or Pareto-maximal
// (intersection semantics) qualifying pairs:
//
//   - minimal: no qualifying pair (A', B') with A' ⊆ A and B' ⊆ B other
//     than (A, B) itself;
//   - maximal: no qualifying strict super-pair.
//
// The search is exhaustive — O(n⁴) evaluations over n base points — so it
// is intended for the moderate timelines of the paper's datasets (n = 21
// and n = 6) or together with an indexed explorer, whose bitmask
// evaluations make even the DBLP-scale sweep cheap.
func (ex *Explorer) ExploreFree(event Event, sem Semantics, k int64) []Pair {
	ex.Evaluations = 0
	tl := ex.Graph.Timeline()
	n := tl.Len()

	type cand struct {
		a1, a2, b1, b2 int // old = [a1,a2], new = [b1,b2]
		result         int64
	}
	var qualifying []cand
	for a1 := 0; a1 < n-1; a1++ {
		for a2 := a1; a2 < n-1; a2++ {
			old := tl.Range(timeline.Time(a1), timeline.Time(a2))
			oldSel := sel(old, sem)
			for b1 := a2 + 1; b1 < n; b1++ {
				for b2 := b1; b2 < n; b2++ {
					new := tl.Range(timeline.Time(b1), timeline.Time(b2))
					if r := ex.eval(event, oldSel, sel(new, sem)); r >= k {
						qualifying = append(qualifying, cand{a1, a2, b1, b2, r})
					}
				}
			}
		}
	}

	// subPair reports whether p's intervals are contained in q's.
	subPair := func(p, q cand) bool {
		return p.a1 >= q.a1 && p.a2 <= q.a2 && p.b1 >= q.b1 && p.b2 <= q.b2
	}
	var out []Pair
	for i, p := range qualifying {
		keep := true
		for j, q := range qualifying {
			if i == j {
				continue
			}
			if sem == UnionSemantics {
				// Minimal: drop p when a qualifying strict sub-pair exists.
				if subPair(q, p) && q != p {
					keep = false
					break
				}
			} else {
				// Maximal: drop p when a qualifying strict super-pair exists.
				if subPair(p, q) && q != p {
					keep = false
					break
				}
			}
		}
		if keep {
			out = append(out, Pair{
				Old:    tl.Range(timeline.Time(p.a1), timeline.Time(p.a2)),
				New:    tl.Range(timeline.Time(p.b1), timeline.Time(p.b2)),
				Result: p.result,
			})
		}
	}
	return out
}
