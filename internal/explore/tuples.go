package explore

import (
	"context"
	"sort"

	"repro/internal/agg"
	"repro/internal/evolution"
	"repro/internal/ops"
	"repro/internal/timeline"
)

// The paper's conclusion aims at detecting "intervals AND attribute groups
// of interest". This file ranks the attribute groups: for an event type,
// which aggregate edges (tuple pairs) show the strongest activity across
// any consecutive interval pair?

// TupleScore is the activity peak of one aggregate edge.
type TupleScore struct {
	From, To agg.Tuple
	// Peak is the maximum event count over consecutive interval pairs;
	// Old/New identify the pair where it occurs (earliest on ties).
	Peak     int64
	Old, New timeline.Interval
}

// Label renders the scored edge as "(f)→(f)".
func (ts TupleScore) Label(s *agg.Schema) string {
	return "(" + s.Label(ts.From) + ")→(" + s.Label(ts.To) + ")"
}

// TopEdgeTuples ranks aggregate edges by their peak event count over the
// consecutive interval pairs (T_i, T_{i+1}), returning the top n (fewer if
// the graph exhibits fewer tuple pairs). Ties break by label for
// determinism. The ranked tuples identify which attribute groups deserve a
// full exploration run.
func TopEdgeTuples(ex *Explorer, event Event, n int) []TupleScore {
	tl := ex.Graph.Timeline()
	best := make(map[agg.EdgeKey]TupleScore)
	for i := 0; i < tl.Len()-1; i++ {
		if ex.canceled() {
			break
		}
		old := tl.Point(timeline.Time(i))
		new := tl.Point(timeline.Time(i + 1))
		var v *ops.View
		switch event {
		case evolution.Stability:
			v = ops.Intersection(ex.Graph, old, new)
		case evolution.Growth:
			v = ops.Difference(ex.Graph, new, old)
		default:
			v = ops.Difference(ex.Graph, old, new)
		}
		ag := agg.Aggregate(v, ex.Schema, ex.Kind)
		for key, w := range ag.Edges {
			cur, ok := best[key]
			if !ok || w > cur.Peak {
				best[key] = TupleScore{From: key.From, To: key.To, Peak: w, Old: old, New: new}
			}
		}
	}
	out := make([]TupleScore, 0, len(best))
	for _, ts := range best {
		out = append(out, ts)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Peak != out[j].Peak {
			return out[i].Peak > out[j].Peak
		}
		return out[i].Label(ex.Schema) < out[j].Label(ex.Schema)
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// TopEdgeTuplesCtx is TopEdgeTuples with cooperative cancellation: the
// per-pair aggregation loop polls ctx and the ranking is abandoned once the
// deadline expires, returning ctx.Err(). A nil error guarantees the same
// scores TopEdgeTuples reports.
func TopEdgeTuplesCtx(ctx context.Context, ex *Explorer, event Event, n int) ([]TupleScore, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ex.ctx = ctx
	defer func() { ex.ctx = nil }()
	out := TopEdgeTuples(ex, event, n)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
