package explore

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/evolution"
	"repro/internal/gtest"
	"repro/internal/ops"
	"repro/internal/timeline"
)

// fixtureExplorer builds an explorer over the paper's running example,
// aggregating on gender (static) with Distinct and counting all aggregate
// edge weight.
func fixtureExplorer(t *testing.T) *Explorer {
	t.Helper()
	g := core.PaperExample()
	s, err := agg.ByName(g, "gender")
	if err != nil {
		t.Fatal(err)
	}
	return &Explorer{Graph: g, Schema: s, Kind: agg.Distinct, Result: TotalEdges}
}

func pairStrings(pairs []Pair) []string {
	out := make([]string, len(pairs))
	for i, p := range pairs {
		out[i] = p.String()
	}
	return out
}

func assertPairs(t *testing.T, got []Pair, want ...Pair) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d pairs %v, want %d %v", len(got), pairStrings(got), len(want), pairStrings(want))
	}
	for i := range want {
		if !got[i].Old.Equal(want[i].Old) || !got[i].New.Equal(want[i].New) || got[i].Result != want[i].Result {
			t.Errorf("pair %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestStabilityUnionMinimal(t *testing.T) {
	ex := fixtureExplorer(t)
	tl := ex.Graph.Timeline()
	// Stable edges t0→t1: u1→u2 and u2→u4 (2 edges); t1→t2: u2→u4 (1).
	got := ex.Explore(evolution.Stability, UnionSemantics, ExtendNew, 2)
	assertPairs(t, got, Pair{Old: tl.Point(0), New: tl.Point(1), Result: 2})

	// k=3 is unreachable even extending t1 to [t1,t2].
	if got := ex.Explore(evolution.Stability, UnionSemantics, ExtendNew, 3); len(got) != 0 {
		t.Errorf("k=3 should yield no pairs, got %v", pairStrings(got))
	}
}

func TestStabilityIntersectionMaximal(t *testing.T) {
	ex := fixtureExplorer(t)
	tl := ex.Graph.Timeline()
	// k=1: from (t0,t1), extending t1 to t1∩t2 still keeps u2→u4 → maximal
	// pair (t0, [t1,t2]); from (t1,t2) no extension possible.
	got := ex.Explore(evolution.Stability, IntersectionSemantics, ExtendNew, 1)
	assertPairs(t, got,
		Pair{Old: tl.Point(0), New: tl.Range(1, 2), Result: 1},
		Pair{Old: tl.Point(1), New: tl.Point(2), Result: 1},
	)
	// k=2: only the base pair (t0,t1) qualifies; its extension drops to 1.
	got2 := ex.Explore(evolution.Stability, IntersectionSemantics, ExtendNew, 2)
	assertPairs(t, got2, Pair{Old: tl.Point(0), New: tl.Point(1), Result: 2})
}

func TestGrowthUnionExtendNew(t *testing.T) {
	ex := fixtureExplorer(t)
	tl := ex.Graph.Timeline()
	// New edges at t1: u1→u4 (1); at t2: u4→u5, u2→u5 (2).
	got := ex.Explore(evolution.Growth, UnionSemantics, ExtendNew, 1)
	assertPairs(t, got,
		Pair{Old: tl.Point(0), New: tl.Point(1), Result: 1},
		Pair{Old: tl.Point(1), New: tl.Point(2), Result: 2},
	)
}

func TestGrowthUnionExtendOldChecksBaseOnly(t *testing.T) {
	ex := fixtureExplorer(t)
	tl := ex.Graph.Timeline()
	got := ex.Explore(evolution.Growth, UnionSemantics, ExtendOld, 2)
	assertPairs(t, got, Pair{Old: tl.Point(1), New: tl.Point(2), Result: 2})
	// Exactly n-1 evaluations: no extensions are ever tried.
	if ex.Evaluations != tl.Len()-1 {
		t.Errorf("Evaluations = %d, want %d", ex.Evaluations, tl.Len()-1)
	}
}

func TestShrinkageUnionExtendOld(t *testing.T) {
	ex := fixtureExplorer(t)
	tl := ex.Graph.Timeline()
	// Deleted edges t0→t1: u1→u3 (1); t1→t2: u1→u2, u1→u4 (2).
	got := ex.Explore(evolution.Shrinkage, UnionSemantics, ExtendOld, 1)
	assertPairs(t, got,
		Pair{Old: tl.Point(0), New: tl.Point(1), Result: 1},
		Pair{Old: tl.Point(1), New: tl.Point(2), Result: 2},
	)
	// k=3: only reachable by extending Told to [t0,t1] against t2
	// (u1→u2, u1→u3, u1→u4 all gone by t2).
	got3 := ex.Explore(evolution.Shrinkage, UnionSemantics, ExtendOld, 3)
	assertPairs(t, got3, Pair{Old: tl.Range(0, 1), New: tl.Point(2), Result: 3})
}

func TestGrowthIntersectionExtendOldLongest(t *testing.T) {
	ex := fixtureExplorer(t)
	tl := ex.Graph.Timeline()
	// Reference t1: old={t0} → 1 new edge. Reference t2: old=[t0,t1]
	// with ForAll semantics → u2→u4 exists throughout and is excluded,
	// u4→u5 and u2→u5 are new → 2.
	got := ex.Explore(evolution.Growth, IntersectionSemantics, ExtendOld, 1)
	assertPairs(t, got,
		Pair{Old: tl.Point(0), New: tl.Point(1), Result: 1},
		Pair{Old: tl.Range(0, 1), New: tl.Point(2), Result: 2},
	)
	got2 := ex.Explore(evolution.Growth, IntersectionSemantics, ExtendOld, 2)
	assertPairs(t, got2, Pair{Old: tl.Range(0, 1), New: tl.Point(2), Result: 2})
}

func TestInitK(t *testing.T) {
	ex := fixtureExplorer(t)
	// Stability results on consecutive pairs: 2 (t0,t1) and 1 (t1,t2).
	min, max := ex.InitK(evolution.Stability)
	if min != 1 || max != 2 {
		t.Errorf("InitK(stability) = %d,%d, want 1,2", min, max)
	}
	// Growth: 1 and 2.
	min, max = ex.InitK(evolution.Growth)
	if min != 1 || max != 2 {
		t.Errorf("InitK(growth) = %d,%d, want 1,2", min, max)
	}
}

func TestNodeAndEdgeTupleResults(t *testing.T) {
	g := core.PaperExample()
	s := agg.MustSchema(g, g.MustAttr("gender"))
	ff, err := EdgeTuple(s, []string{"f"}, []string{"f"})
	if err != nil {
		t.Fatal(err)
	}
	ex := &Explorer{Graph: g, Schema: s, Kind: agg.Distinct, Result: ff}
	tl := g.Timeline()
	// Stable f→f edges t0→t1: u2→u4 only.
	got := ex.Explore(evolution.Stability, UnionSemantics, ExtendNew, 1)
	if len(got) < 1 || got[0].Result != 1 {
		t.Errorf("f-f stability pairs = %v", pairStrings(got))
	}
	fNodes, err := NodeTuple(s, "f")
	if err != nil {
		t.Fatal(err)
	}
	exN := &Explorer{Graph: g, Schema: s, Kind: agg.Distinct, Result: fNodes}
	// Stable f nodes: u2 and u4 survive both t0→t1 and t1→t2.
	gotN := exN.Explore(evolution.Stability, UnionSemantics, ExtendNew, 2)
	assertPairs(t, gotN,
		Pair{Old: tl.Point(0), New: tl.Point(1), Result: 2},
		Pair{Old: tl.Point(1), New: tl.Point(2), Result: 2})

	if _, err := EdgeTuple(s, []string{"zz"}, []string{"f"}); err == nil {
		t.Error("EdgeTuple with out-of-domain value should fail")
	}
	if _, err := NodeTuple(s, "zz"); err == nil {
		t.Error("NodeTuple with out-of-domain value should fail")
	}
}

// staticExplorer builds an explorer over a random graph using its static
// attributes (the setting in which the paper's monotonicity lemmas hold).
func staticExplorer(r *rand.Rand) *Explorer {
	g := gtest.RandomGraph(r, gtest.DefaultParams())
	var static []core.AttrID
	for a := 0; a < g.NumAttrs(); a++ {
		if g.Attr(core.AttrID(a)).Kind == core.Static {
			static = append(static, core.AttrID(a))
		}
	}
	if len(static) == 0 {
		return nil
	}
	result := TotalEdges
	if r.Intn(2) == 0 {
		result = TotalNodes
	}
	return &Explorer{
		Graph:  g,
		Schema: agg.MustSchema(g, static...),
		Kind:   agg.Distinct,
		Result: result,
	}
}

func samePairs(a, b []Pair) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Old.Equal(b[i].Old) || !a[i].New.Equal(b[i].New) || a[i].Result != b[i].Result {
			return false
		}
	}
	return true
}

func TestQuickExploreMatchesNaiveAllTwelveCases(t *testing.T) {
	// Table 1: all 12 event × semantics × extension combinations must
	// agree with the exhaustive baseline on static-attribute aggregation.
	events := []Event{evolution.Stability, evolution.Growth, evolution.Shrinkage}
	sems := []Semantics{UnionSemantics, IntersectionSemantics}
	exts := []Extend{ExtendOld, ExtendNew}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ex := staticExplorer(r)
		if ex == nil {
			return true
		}
		_, max := ex.InitK(events[r.Intn(len(events))])
		k := int64(1)
		if max > 0 {
			k = 1 + r.Int63n(max+1)
		}
		for _, ev := range events {
			for _, sem := range sems {
				for _, ext := range exts {
					pruned := ex.Explore(ev, sem, ext, k)
					prunedEvals := ex.Evaluations
					naive := ex.Naive(ev, sem, ext, k)
					if !samePairs(pruned, naive) {
						t.Logf("case %v/%v/%v k=%d: pruned %v naive %v",
							ev, sem, ext, k, pairStrings(pruned), pairStrings(naive))
						return false
					}
					if prunedEvals > ex.Evaluations {
						t.Logf("case %v/%v/%v: pruned used more evaluations (%d > %d)",
							ev, sem, ext, prunedEvals, ex.Evaluations)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTheorem38SpanEquivalence(t *testing.T) {
	// Theorem 3.8's core fact: for stability under intersection semantics
	// the result depends only on the set of participating time points, so
	// anchoring at the left point and extending right yields the same
	// result as anchoring at the right point and extending left over the
	// same span.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ex := staticExplorer(r)
		if ex == nil {
			return true
		}
		tl := ex.Graph.Timeline()
		if tl.Len() < 2 {
			return true
		}
		a := r.Intn(tl.Len() - 1)
		b := a + 1 + r.Intn(tl.Len()-a-1)
		left := ex.eval(evolution.Stability,
			ops.Exists(tl.Point(timeline.Time(a))),
			ops.ForAll(tl.Range(timeline.Time(a+1), timeline.Time(b))))
		right := ex.eval(evolution.Stability,
			ops.ForAll(tl.Range(timeline.Time(a), timeline.Time(b-1))),
			ops.Exists(tl.Point(timeline.Time(b))))
		return left == right
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTheorem37UnionAnchorsDiffer(t *testing.T) {
	// Theorem 3.7: minimal stability pairs from extending Tnew are NOT in
	// general those from extending Told — verify the union-semantics
	// traversals at least run and both match naive (covered above), and
	// that a witness exists where the two pair sets differ.
	found := false
	for seed := int64(0); seed < 200 && !found; seed++ {
		r := rand.New(rand.NewSource(seed))
		ex := staticExplorer(r)
		if ex == nil {
			continue
		}
		_, max := ex.InitK(evolution.Stability)
		if max == 0 {
			continue
		}
		a := ex.Explore(evolution.Stability, UnionSemantics, ExtendNew, max)
		b := ex.Explore(evolution.Stability, UnionSemantics, ExtendOld, max)
		if !samePairs(a, b) {
			found = true
		}
	}
	if !found {
		t.Fatal("no witness found for Theorem 3.7 (extending new vs old should differ)")
	}
}

func TestPairString(t *testing.T) {
	tl := timeline.MustNew("2000", "2001", "2002")
	p := Pair{Old: tl.Range(0, 1), New: tl.Point(2), Result: 7}
	if got := p.String(); got != "[2000,2001] → 2002 (7 events)" {
		t.Errorf("String = %q", got)
	}
}

func TestSemanticsAndExtendStrings(t *testing.T) {
	if UnionSemantics.String() != "∪" || IntersectionSemantics.String() != "∩" {
		t.Error("Semantics strings wrong")
	}
	if ExtendOld.String() != "old" || ExtendNew.String() != "new" {
		t.Error("Extend strings wrong")
	}
}
