package explore

import (
	"fmt"

	"repro/internal/agg"
	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/evolution"
	"repro/internal/ops"
)

// EdgeIndex accelerates exploration when the result function counts one
// aggregate edge on an all-static schema with Distinct semantics — exactly
// the paper's §5.2 setting (distinct female-female edges).
//
// It precomputes, per base time point, the bitset of edge ids existing at
// that point, and the time-independent bitset of edge ids whose endpoint
// tuples match the target. result(G) for any exploration pair then reduces
// to popcounts of word-parallel AND/OR combinations, avoiding the per-pair
// view construction and hash-map aggregation of the general path:
//
//	stability(old, new) = |match ∧ S(old) ∧ S(new)|
//	growth(old, new)    = |match ∧ S(new) ∧ ¬S(old)|
//	shrinkage(old, new) = |match ∧ S(old) ∧ ¬S(new)|
//
// where S(sel) is the OR (Exists) or AND (ForAll) of the per-point masks.
// The speedup over the general evaluator is measured by
// BenchmarkAblationEdgeIndex.
type EdgeIndex struct {
	g        *core.Graph
	perPoint []*bitset.Set // edges existing at each base time point
	match    *bitset.Set   // edges whose endpoint tuples match the target
}

// NewEdgeIndex builds the index for the aggregate edge (from → to) under
// schema s. The schema must be all-static: with time-varying attributes an
// edge's tuple pair depends on the time point and a single match mask does
// not exist.
func NewEdgeIndex(s *agg.Schema, from, to []string) (*EdgeIndex, error) {
	if !s.AllStatic() {
		return nil, fmt.Errorf("explore: EdgeIndex requires an all-static schema")
	}
	fromTu, ok1 := s.Encode(from...)
	toTu, ok2 := s.Encode(to...)
	if !ok1 || !ok2 {
		return nil, fmt.Errorf("explore: edge tuple %v→%v not in attribute domain", from, to)
	}
	g := s.Graph()
	ix := &EdgeIndex{
		g:        g,
		perPoint: make([]*bitset.Set, g.Timeline().Len()),
		match:    bitset.New(g.NumEdges()),
	}
	for t := range ix.perPoint {
		ix.perPoint[t] = bitset.New(g.NumEdges())
	}
	for e := 0; e < g.NumEdges(); e++ {
		id := core.EdgeID(e)
		g.EdgeTau(id).ForEach(func(t int) {
			ix.perPoint[t].Add(e)
		})
		ep := g.Edge(id)
		fu, okU := s.StaticTuple(ep.U)
		tu, okV := s.StaticTuple(ep.V)
		if okU && okV && fu == fromTu && tu == toTu {
			ix.match.Add(e)
		}
	}
	return ix, nil
}

// selMask combines the per-point masks under the selector's semantics,
// iterating the interval's bitmask directly (Times() would allocate a
// []Time per evaluation).
func (ix *EdgeIndex) selMask(sel ops.Sel) *bitset.Set {
	out := bitset.New(ix.g.NumEdges())
	if sel.Interval.IsEmpty() {
		return out
	}
	first := true
	sel.Interval.Mask().ForEach(func(t int) {
		switch {
		case first:
			out.CopyFrom(ix.perPoint[t])
			first = false
		case sel.ForAll:
			out.AndWith(ix.perPoint[t])
		default:
			out.OrWith(ix.perPoint[t])
		}
	})
	return out
}

// Eval returns the distinct count of matching edges for the event between
// the two selectors — identical to the general evaluator with an
// EdgeTuple result function and Distinct counting.
func (ix *EdgeIndex) Eval(event Event, old, new ops.Sel) int64 {
	sOld := ix.selMask(old)
	sNew := ix.selMask(new)
	switch event {
	case evolution.Stability:
		sOld.AndWith(sNew)
		return int64(sOld.CountAnd(ix.match))
	case evolution.Growth:
		combined := sNew.AndNot(sOld)
		return int64(combined.CountAnd(ix.match))
	case evolution.Shrinkage:
		combined := sOld.AndNot(sNew)
		return int64(combined.CountAnd(ix.match))
	default:
		panic("explore: unknown event")
	}
}

// NewIndexedExplorer returns an Explorer whose evaluations go through an
// EdgeIndex instead of view construction + aggregation. It is
// behaviourally identical to
//
//	ex := &Explorer{Graph: g, Schema: s, Kind: agg.Distinct, Result: EdgeTuple(s, from, to)}
//
// but evaluates each candidate pair with a handful of bitset operations.
func NewIndexedExplorer(s *agg.Schema, from, to []string) (*Explorer, error) {
	ix, err := NewEdgeIndex(s, from, to)
	if err != nil {
		return nil, err
	}
	result, err := EdgeTuple(s, from, to)
	if err != nil {
		return nil, err
	}
	return &Explorer{
		Graph:  s.Graph(),
		Schema: s,
		Kind:   agg.Distinct,
		Result: result, // kept for introspection; eval uses the index
		index:  ix,
	}, nil
}
