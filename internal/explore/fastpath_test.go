package explore

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/evolution"
	"repro/internal/gtest"
)

// anyExplorer builds an explorer over a random graph with a random
// attribute subset (static, varying or mixed) and random kind. Engine
// equivalence must hold regardless of monotonicity: the fast path and the
// seed path follow the same control flow over the same result values.
func anyExplorer(r *rand.Rand) *Explorer {
	g := gtest.RandomGraph(r, gtest.DefaultParams())
	if g.NumAttrs() == 0 {
		return nil
	}
	attrs := make([]core.AttrID, g.NumAttrs())
	for a := range attrs {
		attrs[a] = core.AttrID(a)
	}
	r.Shuffle(len(attrs), func(i, j int) { attrs[i], attrs[j] = attrs[j], attrs[i] })
	attrs = attrs[:1+r.Intn(len(attrs))]
	kind := agg.Distinct
	if r.Intn(2) == 0 {
		kind = agg.All
	}
	result := TotalEdges
	if r.Intn(2) == 0 {
		result = TotalNodes
	}
	return &Explorer{
		Graph:  g,
		Schema: agg.MustSchema(g, attrs...),
		Kind:   kind,
		Result: result,
	}
}

// TestQuickFastPathMatchesSeed checks, across all 12 Table 1 cases on
// random graphs, that the incremental-view fast path — serial and with the
// bounded worker pool — returns bit-identical pairs, ordering and
// Evaluations counts to the seed selector-view engine (NoFastPath), for
// both Explore and Naive.
func TestQuickFastPathMatchesSeed(t *testing.T) {
	events := []Event{evolution.Stability, evolution.Growth, evolution.Shrinkage}
	sems := []Semantics{UnionSemantics, IntersectionSemantics}
	exts := []Extend{ExtendOld, ExtendNew}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ex := anyExplorer(r)
		if ex == nil {
			return true
		}
		_, max := ex.InitK(events[r.Intn(len(events))])
		k := int64(1)
		if max > 0 {
			k = 1 + r.Int63n(max+1)
		}
		for _, ev := range events {
			for _, sem := range sems {
				for _, ext := range exts {
					ex.NoFastPath = true
					seedPairs := ex.Explore(ev, sem, ext, k)
					seedEvals := ex.Evaluations
					seedNaive := ex.Naive(ev, sem, ext, k)
					seedNaiveEvals := ex.Evaluations

					for _, workers := range []int{0, 4} {
						ex.NoFastPath = false
						ex.Workers = workers
						fast := ex.Explore(ev, sem, ext, k)
						if !samePairs(fast, seedPairs) || ex.Evaluations != seedEvals {
							return false
						}
						fastNaive := ex.Naive(ev, sem, ext, k)
						if !samePairs(fastNaive, seedNaive) || ex.Evaluations != seedNaiveEvals {
							return false
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestFastPathParallelRace exercises the worker pool under the race
// detector on a fixture large enough for real contention: every Table 1
// traversal with Workers well above GOMAXPROCS-typical values.
func TestFastPathParallelRace(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	p := gtest.DefaultParams()
	p.MaxNodes *= 4
	p.MaxEdges *= 4
	p.MaxTimes += 4
	g := gtest.RandomGraph(r, p)
	var static []core.AttrID
	for a := 0; a < g.NumAttrs(); a++ {
		if g.Attr(core.AttrID(a)).Kind == core.Static {
			static = append(static, core.AttrID(a))
		}
	}
	if len(static) == 0 {
		t.Skip("fixture has no static attributes")
	}
	ex := &Explorer{
		Graph:   g,
		Schema:  agg.MustSchema(g, static...),
		Kind:    agg.Distinct,
		Result:  TotalEdges,
		Workers: 8,
	}
	serial := &Explorer{Graph: g, Schema: ex.Schema, Kind: ex.Kind, Result: ex.Result}
	for _, ev := range []Event{evolution.Stability, evolution.Growth, evolution.Shrinkage} {
		for _, sem := range []Semantics{UnionSemantics, IntersectionSemantics} {
			for _, ext := range []Extend{ExtendOld, ExtendNew} {
				got := ex.Explore(ev, sem, ext, 2)
				want := serial.Explore(ev, sem, ext, 2)
				if !samePairs(got, want) || ex.Evaluations != serial.Evaluations {
					t.Fatalf("%v %v %v: parallel explore diverged from serial", ev, sem, ext)
				}
			}
		}
	}
}

// TestFastPathReusesPointIndex checks the lazy index is cached across calls
// and rebuilt when the graph changes.
func TestFastPathReusesPointIndex(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	ex := staticExplorer(r)
	for ex == nil {
		ex = staticExplorer(r)
	}
	ex.Explore(evolution.Stability, UnionSemantics, ExtendNew, 1)
	first := ex.pointIdx
	if first == nil {
		t.Fatal("fast path did not build a point index")
	}
	ex.Explore(evolution.Growth, IntersectionSemantics, ExtendOld, 1)
	if ex.pointIdx != first {
		t.Fatal("point index rebuilt for the same graph")
	}
	g2 := gtest.RandomGraph(r, gtest.DefaultParams())
	ex.Graph = g2
	if ex.pointIndex().Graph() != g2 {
		t.Fatal("point index not rebuilt after graph swap")
	}
}
