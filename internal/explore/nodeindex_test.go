package explore

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/evolution"
	"repro/internal/gtest"
	"repro/internal/ops"
)

func TestNodeIndexValidation(t *testing.T) {
	g := core.PaperExample()
	if _, err := NewNodeIndex(agg.MustSchema(g, g.MustAttr("publications")), "1"); err == nil {
		t.Error("time-varying schema should fail")
	}
	if _, err := NewNodeIndex(agg.MustSchema(g, g.MustAttr("gender")), "zz"); err == nil {
		t.Error("out-of-domain tuple should fail")
	}
}

func TestNodeIndexEvalFixture(t *testing.T) {
	g := core.PaperExample()
	tl := g.Timeline()
	s := agg.MustSchema(g, g.MustAttr("gender"))
	ix, err := NewNodeIndex(s, "f")
	if err != nil {
		t.Fatal(err)
	}
	// Stable f nodes t0→t1: u2, u4.
	if got := ix.Eval(evolution.Stability, ops.Exists(tl.Point(0)), ops.Exists(tl.Point(1))); got != 2 {
		t.Errorf("stability = %d, want 2", got)
	}
	// Shrinkage t0→t1: u3 vanishes (f). u1 is an endpoint of the removed
	// edge (u1,u3) but is male, so the f count stays 1.
	if got := ix.Eval(evolution.Shrinkage, ops.Exists(tl.Point(0)), ops.Exists(tl.Point(1))); got != 1 {
		t.Errorf("shrinkage(f) = %d, want 1", got)
	}
	// The endpoint rule shows up for m: u1 still exists at t1 yet counts
	// in the difference because of the removed edge.
	ixM, _ := NewNodeIndex(s, "m")
	if got := ixM.Eval(evolution.Shrinkage, ops.Exists(tl.Point(0)), ops.Exists(tl.Point(1))); got != 1 {
		t.Errorf("shrinkage(m) = %d, want 1 (endpoint rule)", got)
	}
	// Growth t1→t2: u5 (m) appears; u4 (f) is an endpoint of the new edge
	// (u4,u5) and u2 of (u2,u5).
	if got := ix.Eval(evolution.Growth, ops.Exists(tl.Point(1)), ops.Exists(tl.Point(2))); got != 2 {
		t.Errorf("growth(f) = %d, want 2 (u2, u4 as endpoints)", got)
	}
	if got := ixM.Eval(evolution.Growth, ops.Exists(tl.Point(1)), ops.Exists(tl.Point(2))); got != 1 {
		t.Errorf("growth(m) = %d, want 1 (u5)", got)
	}
}

func TestQuickNodeIndexMatchesGeneral(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := gtest.RandomGraph(r, gtest.DefaultParams())
		var static []core.AttrID
		for a := 0; a < g.NumAttrs(); a++ {
			if g.Attr(core.AttrID(a)).Kind == core.Static {
				static = append(static, core.AttrID(a))
			}
		}
		if len(static) == 0 {
			return true
		}
		s := agg.MustSchema(g, static...)
		// Target the tuple of a random node.
		target := core.NodeID(r.Intn(g.NumNodes()))
		tu, ok := s.StaticTuple(target)
		if !ok {
			return true
		}
		values := s.Decode(tu)
		ix, err := NewNodeIndex(s, values...)
		if err != nil {
			return false
		}
		result, err := NodeTuple(s, values...)
		if err != nil {
			return false
		}
		general := &Explorer{Graph: g, Schema: s, Kind: agg.Distinct, Result: result}
		tl := g.Timeline()
		for trial := 0; trial < 6; trial++ {
			old := ops.Sel{Interval: gtest.RandomInterval(r, tl), ForAll: r.Intn(2) == 0}
			new := ops.Sel{Interval: gtest.RandomInterval(r, tl), ForAll: r.Intn(2) == 0}
			for _, ev := range []Event{evolution.Stability, evolution.Growth, evolution.Shrinkage} {
				if ix.Eval(ev, old, new) != general.eval(ev, old, new) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestNodeIndexedExplorerMatchesGeneral(t *testing.T) {
	g := core.PaperExample()
	s := agg.MustSchema(g, g.MustAttr("gender"))
	indexed, err := NewNodeIndexedExplorer(s, "f")
	if err != nil {
		t.Fatal(err)
	}
	result, _ := NodeTuple(s, "f")
	general := &Explorer{Graph: g, Schema: s, Kind: agg.Distinct, Result: result}
	for _, ev := range []Event{evolution.Stability, evolution.Growth, evolution.Shrinkage} {
		for _, sem := range []Semantics{UnionSemantics, IntersectionSemantics} {
			for _, ext := range []Extend{ExtendOld, ExtendNew} {
				a := indexed.Explore(ev, sem, ext, 2)
				b := general.Explore(ev, sem, ext, 2)
				if !samePairs(a, b) {
					t.Errorf("%v/%v/%v: indexed %v general %v",
						ev, sem, ext, pairStrings(a), pairStrings(b))
				}
			}
		}
	}
}
