// Package explore implements GraphTempo's evolution exploration (§3): given
// a threshold k, find the minimal (union semantics) or maximal
// (intersection semantics) interval pairs between which at least k events
// of stability, growth or shrinkage occur.
//
// A candidate pair always keeps one end fixed at a base time point (the
// reference point) and extends the other end through the union or
// intersection semi-lattice (§3.1). The twelve combinations of
// event × semantics × extension side are the rows of the paper's Table 1;
// each maps to one of four traversals:
//
//   - uExplore: monotonically increasing — grow the extension until the
//     result reaches k, emit that minimal pair, prune the reference point
//     (the paper's U-Explore).
//   - iExplore: monotonically decreasing — grow the extension while the
//     result stays ≥ k, emit the largest surviving pair (the paper's
//     I-Explore with its candidate-set bookkeeping collapsed).
//   - checkBase: monotonically decreasing in the extension — extension
//     cannot help, so only the base (consecutive-point) pairs are checked
//     (§3.3: growth with union semantics extending Told, and the
//     symmetric shrinkage case).
//   - checkLongest: monotonically increasing in the extension — the
//     longest possible extension alone decides (§3.3: growth with
//     intersection semantics extending Told, and the symmetric shrinkage
//     case).
//
// Monotonicity (Lemmas 3.3, 3.9, 3.10) — and hence the exactness of the
// pruned traversals versus exhaustive search — is guaranteed for static
// aggregation attributes; for intersection semantics on stability the
// Distinct kind is additionally required, because ALL counts appearances
// over the combined interval T1 ∪ T2, which keeps growing as the entity
// set shrinks. These are exactly the settings of the paper's §5.2
// experiments (gender aggregation, distinct edge counts).
package explore

import (
	"context"
	"fmt"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/evolution"
	"repro/internal/metrics"
	"repro/internal/ops"
	"repro/internal/timeline"
)

// TotalEvaluations counts candidate-pair evaluations across every Explorer
// in the process (memo hits excluded, matching the Evaluations field). The
// serving layer registers it so exploration cost is visible per scrape
// without touching the per-run counters.
var TotalEvaluations metrics.Counter

// Event aliases the evolution event classes: stability, growth, shrinkage.
type Event = evolution.Class

// Semantics selects how the extended interval is interpreted (§3.1).
type Semantics int

const (
	// UnionSemantics: the extended interval contains entities existing at
	// any of its points; minimal interval pairs are sought (Def. 3.4).
	UnionSemantics Semantics = iota
	// IntersectionSemantics: the extended interval contains entities
	// existing at all of its points; maximal interval pairs are sought
	// (Def. 3.5).
	IntersectionSemantics
)

// String returns "∪" or "∩".
func (s Semantics) String() string {
	if s == UnionSemantics {
		return "∪"
	}
	return "∩"
}

// Extend selects which side of the pair is extended; the other side is the
// fixed reference point.
type Extend int

const (
	// ExtendOld grows Told leftward (Tnew is the reference point).
	ExtendOld Extend = iota
	// ExtendNew grows Tnew rightward (Told is the reference point).
	ExtendNew
)

// String returns "old" or "new".
func (e Extend) String() string {
	if e == ExtendOld {
		return "old"
	}
	return "new"
}

// ResultFunc measures result(G): the number of events of interest in an
// aggregate graph (§3.2).
type ResultFunc func(*agg.Graph) int64

// TotalNodes counts all aggregate node weight.
func TotalNodes(g *agg.Graph) int64 { return g.TotalNodeWeight() }

// TotalEdges counts all aggregate edge weight.
func TotalEdges(g *agg.Graph) int64 { return g.TotalEdgeWeight() }

// NodeTuple returns a ResultFunc counting the weight of one aggregate node,
// e.g. female authors. The values are in schema attribute order.
func NodeTuple(s *agg.Schema, values ...string) (ResultFunc, error) {
	tu, ok := s.Encode(values...)
	if !ok {
		return nil, fmt.Errorf("explore: tuple %v not in attribute domain", values)
	}
	return func(g *agg.Graph) int64 { return g.NodeWeight(tu) }, nil
}

// EdgeTuple returns a ResultFunc counting the weight of one aggregate edge,
// e.g. female→female collaborations (the paper's §5.2 exploration target).
func EdgeTuple(s *agg.Schema, from, to []string) (ResultFunc, error) {
	f, ok1 := s.Encode(from...)
	t, ok2 := s.Encode(to...)
	if !ok1 || !ok2 {
		return nil, fmt.Errorf("explore: edge tuple %v→%v not in attribute domain", from, to)
	}
	return func(g *agg.Graph) int64 { return g.EdgeWeight(f, t) }, nil
}

// Pair is one reported interval pair with the measured result.
type Pair struct {
	Old, New timeline.Interval
	Result   int64
}

// String renders a pair like "[2001,2009] → 2010 (1200 events)".
func (p Pair) String() string {
	return fmt.Sprintf("%s → %s (%d events)", p.Old, p.New, p.Result)
}

// Explorer runs exploration over one base graph with a fixed aggregation
// schema, count kind and result function.
type Explorer struct {
	Graph  *core.Graph
	Schema *agg.Schema
	Kind   agg.Kind
	Result ResultFunc

	// Evaluations counts aggregate-graph evaluations performed by the
	// most recent Explore or Naive call; it is the cost metric of the
	// pruning ablation. The fast path evaluates exactly the candidates
	// the seed traversal would, so the count is engine-independent.
	Evaluations int

	// Workers bounds the fast path's parallel candidate evaluator: 0 or 1
	// evaluates serially, n > 1 uses up to n goroutines, and a negative
	// value selects GOMAXPROCS. Candidates at the same traversal depth are
	// independent, so parallel runs produce bit-identical pairs,
	// ordering and Evaluations counts.
	Workers int

	// NoFastPath forces the seed evaluation engine (selector views plus a
	// fresh aggregation per candidate) even when the incremental-view
	// fast path is applicable. Used by ablations and equivalence tests.
	NoFastPath bool

	// Memo, when non-nil, caches candidate evaluations across runs (the
	// §3.5 tuning loop re-evaluates mostly the same candidates at every
	// threshold). Memo hits are not charged to Evaluations, so leave it
	// nil when comparing evaluation counts across engines. TuneK installs
	// a temporary memo automatically when none is set.
	Memo *EvalMemo

	// index, when set (NewIndexedExplorer), evaluates candidate pairs
	// with precomputed per-time-point edge bitmasks instead of view
	// construction + aggregation; nodeIndex is its node-tuple analogue
	// (NewNodeIndexedExplorer).
	index     *EdgeIndex
	nodeIndex *NodeIndex

	// pointIdx caches the per-time-point existence index backing the fast
	// path's incremental views; built lazily on first use.
	pointIdx *ops.PointIndex

	// ctx is the cancellation context of the current ExploreCtx run (nil
	// outside one). Traversal loops poll it between candidate evaluations
	// so deadline-expired requests stop burning CPU; it is set before any
	// worker goroutine starts and cleared after they all join.
	ctx context.Context
}

// canceled reports whether the current run's context has expired.
func (ex *Explorer) canceled() bool {
	return ex.ctx != nil && ex.ctx.Err() != nil
}

// ExploreCtx is Explore with cooperative cancellation: the traversal polls
// ctx between candidate evaluations (both the seed engine and the fast
// path's depth waves) and abandons the run once the deadline expires,
// returning ctx.Err() instead of a pair set. A nil error guarantees the
// same pairs Explore would report.
func (ex *Explorer) ExploreCtx(ctx context.Context, event Event, sem Semantics, ext Extend, k int64) ([]Pair, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ex.ctx = ctx
	defer func() { ex.ctx = nil }()
	pairs := ex.Explore(event, sem, ext, k)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return pairs, nil
}

// eval computes result(G) for the aggregate graph of the event between the
// two selectors, consulting the memo (when set) first.
func (ex *Explorer) eval(event Event, old, new ops.Sel) int64 {
	if ex.Memo != nil {
		if r, ok := ex.Memo.lookup(event, old, new); ok {
			return r
		}
	}
	ex.Evaluations++
	TotalEvaluations.Inc()
	r := ex.evalCompute(event, old, new)
	if ex.Memo != nil {
		ex.Memo.store(event, old, new, r)
	}
	return r
}

// evalCompute is the uncached evaluation engine behind eval.
func (ex *Explorer) evalCompute(event Event, old, new ops.Sel) int64 {
	if ex.index != nil {
		return ex.index.Eval(event, old, new)
	}
	if ex.nodeIndex != nil {
		return ex.nodeIndex.Eval(event, old, new)
	}
	var v *ops.View
	switch event {
	case evolution.Stability:
		v = ops.StabilityView(ex.Graph, old, new)
	case evolution.Growth:
		v = ops.DifferenceView(ex.Graph, new, old)
	case evolution.Shrinkage:
		v = ops.DifferenceView(ex.Graph, old, new)
	default:
		panic("explore: unknown event")
	}
	return ex.Result(agg.Aggregate(v, ex.Schema, ex.Kind))
}

// sel wraps an interval with the side's semantics: a union-extended side
// uses Exists, an intersection-extended side uses ForAll. A single point is
// the same under both.
func sel(iv timeline.Interval, sem Semantics) ops.Sel {
	if sem == IntersectionSemantics {
		return ops.ForAll(iv)
	}
	return ops.Exists(iv)
}

// Explore finds the minimal (union semantics) or maximal (intersection
// semantics) interval pairs with at least k events, using the pruned
// traversal of Table 1 for the given event and extension side.
func (ex *Explorer) Explore(event Event, sem Semantics, ext Extend, k int64) []Pair {
	ex.Evaluations = 0
	if ex.fastEligible() {
		fr := ex.newFastRun(event, sem, ext)
		switch traversalFor(event, sem, ext) {
		case travU:
			return fr.uExplore(k)
		case travI:
			return fr.iExplore(k)
		case travBase:
			return fr.checkBase(k)
		default:
			return fr.checkLongest(k)
		}
	}
	switch traversalFor(event, sem, ext) {
	case travU:
		return ex.uExplore(event, sem, ext, k)
	case travI:
		return ex.iExplore(event, sem, ext, k)
	case travBase:
		return ex.checkBase(event, sem, ext, k)
	default:
		return ex.checkLongest(event, sem, ext, k)
	}
}

type traversal int

const (
	travU traversal = iota
	travI
	travBase
	travLongest
)

// TraversalName names the Table 1 traversal serving the given
// event × semantics × extension combination, for plan explanation:
// "U-Explore", "I-Explore", "check-base" or "check-longest".
func TraversalName(event Event, sem Semantics, ext Extend) string {
	switch traversalFor(event, sem, ext) {
	case travU:
		return "U-Explore"
	case travI:
		return "I-Explore"
	case travBase:
		return "check-base"
	default:
		return "check-longest"
	}
}

// UsePointIndex installs a prebuilt per-time-point existence index for the
// fast path, letting callers share one immutable index across explorers
// over the same graph (ops.PointIndex is safe for concurrent use). An index
// built on a different graph is ignored and rebuilt lazily as usual.
func (ex *Explorer) UsePointIndex(ix *ops.PointIndex) { ex.pointIdx = ix }

// traversalFor encodes Table 1.
func traversalFor(event Event, sem Semantics, ext Extend) traversal {
	switch event {
	case evolution.Stability:
		// Stability is symmetric: union semantics is monotonically
		// increasing (U-Explore), intersection decreasing (I-Explore),
		// whichever side is extended.
		if sem == UnionSemantics {
			return travU
		}
		return travI
	case evolution.Growth:
		// Growth studies Tnew − Told (Lemmas 3.9, 3.10).
		if sem == UnionSemantics {
			if ext == ExtendNew {
				return travU // Tnew(∪) − Told: increasing
			}
			return travBase // Tnew − Told(∪): decreasing
		}
		if ext == ExtendOld {
			return travLongest // Tnew − Told(∩): increasing
		}
		return travI // Tnew(∩) − Told: decreasing
	default: // Shrinkage studies Told − Tnew, mirroring growth.
		if sem == UnionSemantics {
			if ext == ExtendOld {
				return travU // Told(∪) − Tnew: increasing
			}
			return travBase // Told − Tnew(∪): decreasing
		}
		if ext == ExtendNew {
			return travLongest // Told − Tnew(∩): increasing
		}
		return travI // Told(∩) − Tnew: decreasing
	}
}

// pairAt builds the (old, new) intervals of the candidate anchored at base
// pair (T_i, T_{i+1}) with the extended side grown by steps extra points.
func (ex *Explorer) pairAt(i int, ext Extend, extra int) (timeline.Interval, timeline.Interval, bool) {
	tl := ex.Graph.Timeline()
	if ext == ExtendNew {
		to := i + 1 + extra
		if to >= tl.Len() {
			return timeline.Interval{}, timeline.Interval{}, false
		}
		return tl.Point(timeline.Time(i)), tl.Range(timeline.Time(i+1), timeline.Time(to)), true
	}
	from := i - extra
	if from < 0 {
		return timeline.Interval{}, timeline.Interval{}, false
	}
	return tl.Range(timeline.Time(from), timeline.Time(i)), tl.Point(timeline.Time(i + 1)), true
}

// uExplore implements U-Explore (§3.2): starting from each consecutive
// pair, extend until the (monotonically increasing) result reaches k and
// report that minimal pair.
func (ex *Explorer) uExplore(event Event, sem Semantics, ext Extend, k int64) []Pair {
	var out []Pair
	n := ex.Graph.Timeline().Len()
	for i := 0; i < n-1; i++ {
		for extra := 0; ; extra++ {
			if ex.canceled() {
				return nil
			}
			old, new, ok := ex.pairAt(i, ext, extra)
			if !ok {
				break
			}
			oldSel, newSel := sel(old, sem), sel(new, sem)
			if r := ex.eval(event, oldSel, newSel); r >= k {
				out = append(out, Pair{Old: old, New: new, Result: r})
				break // prune: minimal pair found for this reference point
			}
		}
	}
	return out
}

// iExplore implements I-Explore (§3.2): starting from each consecutive
// pair, keep extending while the (monotonically decreasing) result stays
// ≥ k; the last surviving extension is the maximal pair.
func (ex *Explorer) iExplore(event Event, sem Semantics, ext Extend, k int64) []Pair {
	var out []Pair
	n := ex.Graph.Timeline().Len()
	for i := 0; i < n-1; i++ {
		var best *Pair
		for extra := 0; ; extra++ {
			if ex.canceled() {
				return nil
			}
			old, new, ok := ex.pairAt(i, ext, extra)
			if !ok {
				break
			}
			r := ex.eval(event, sel(old, sem), sel(new, sem))
			if r < k {
				break // prune: all further extensions are ≤ this result
			}
			best = &Pair{Old: old, New: new, Result: r}
		}
		if best != nil {
			out = append(out, *best)
		}
	}
	return out
}

// checkBase handles the cases where extension is monotonically decreasing
// under union semantics: only the consecutive-point pairs can be minimal.
func (ex *Explorer) checkBase(event Event, sem Semantics, ext Extend, k int64) []Pair {
	var out []Pair
	n := ex.Graph.Timeline().Len()
	for i := 0; i < n-1; i++ {
		if ex.canceled() {
			return nil
		}
		old, new, _ := ex.pairAt(i, ext, 0)
		if r := ex.eval(event, sel(old, sem), sel(new, sem)); r >= k {
			out = append(out, Pair{Old: old, New: new, Result: r})
		}
	}
	return out
}

// checkLongest handles the cases where extension is monotonically
// increasing under intersection semantics: for each reference point the
// longest possible extension alone is the candidate maximal pair.
func (ex *Explorer) checkLongest(event Event, sem Semantics, ext Extend, k int64) []Pair {
	var out []Pair
	tl := ex.Graph.Timeline()
	n := tl.Len()
	for i := 0; i < n-1; i++ {
		if ex.canceled() {
			return nil
		}
		var old, new timeline.Interval
		if ext == ExtendOld {
			old, new = tl.Range(0, timeline.Time(i)), tl.Point(timeline.Time(i+1))
		} else {
			old, new = tl.Point(timeline.Time(i)), tl.Range(timeline.Time(i+1), timeline.Time(n-1))
		}
		if r := ex.eval(event, sel(old, sem), sel(new, sem)); r >= k {
			out = append(out, Pair{Old: old, New: new, Result: r})
		}
	}
	return out
}

// Naive exhaustively evaluates every extension of every reference point and
// selects minimal (union semantics) or maximal (intersection semantics)
// pairs directly from the definitions 3.4/3.5. It is the correctness
// baseline for the pruned traversals and the ablation comparator.
func (ex *Explorer) Naive(event Event, sem Semantics, ext Extend, k int64) []Pair {
	ex.Evaluations = 0
	if ex.fastEligible() {
		return ex.newFastRun(event, sem, ext).naive(sem, k)
	}
	var out []Pair
	n := ex.Graph.Timeline().Len()
	for i := 0; i < n-1; i++ {
		type cand struct {
			pair Pair
			hit  bool
		}
		var cands []cand
		for extra := 0; ; extra++ {
			old, new, ok := ex.pairAt(i, ext, extra)
			if !ok {
				break
			}
			r := ex.eval(event, sel(old, sem), sel(new, sem))
			cands = append(cands, cand{Pair{Old: old, New: new, Result: r}, r >= k})
		}
		if sem == UnionSemantics {
			// Minimal: the shortest qualifying extension.
			for _, c := range cands {
				if c.hit {
					out = append(out, c.pair)
					break
				}
			}
		} else {
			// Maximal: the longest qualifying extension.
			for j := len(cands) - 1; j >= 0; j-- {
				if cands[j].hit {
					out = append(out, cands[j].pair)
					break
				}
			}
		}
	}
	return out
}

// InitK computes the §3.5 initialization values for the threshold: the
// minimum and maximum result over all consecutive-point pairs of the
// event's aggregate graph. For a monotonically increasing traversal the
// paper starts from the minimum and increases it; for a decreasing one,
// from the maximum downwards.
func (ex *Explorer) InitK(event Event) (min, max int64) {
	tl := ex.Graph.Timeline()
	n := tl.Len()
	first := true
	for i := 0; i < n-1; i++ {
		old := ops.Exists(tl.Point(timeline.Time(i)))
		new := ops.Exists(tl.Point(timeline.Time(i + 1)))
		r := ex.eval(event, old, new)
		if first || r < min {
			min = r
		}
		if first || r > max {
			max = r
		}
		first = false
	}
	return min, max
}
