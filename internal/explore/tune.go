package explore

import "context"

// TuneKCtx is TuneK with cooperative cancellation: every exploration run
// in the tuning loop polls ctx between candidate evaluations and the loop
// is abandoned once the deadline expires, returning ctx.Err() instead of a
// threshold. A nil error guarantees the same (k, pairs) TuneK reports.
func (ex *Explorer) TuneKCtx(ctx context.Context, event Event, sem Semantics, ext Extend, minPairs int) (int64, []Pair, error) {
	if err := ctx.Err(); err != nil {
		return 0, nil, err
	}
	ex.ctx = ctx
	defer func() { ex.ctx = nil }()
	k, pairs := ex.TuneK(event, sem, ext, minPairs)
	if err := ctx.Err(); err != nil {
		return 0, nil, err
	}
	return k, pairs, nil
}

// TuneK automates §3.5's threshold tuning loop. The paper initializes k
// from the consecutive-pair weights (InitK) and then "gradually" raises a
// minimum-based threshold or lowers a maximum-based one until the result
// set is interesting. TuneK runs that loop to its endpoint: it returns the
// LARGEST k at which the exploration still reports at least minPairs
// interval pairs, together with those pairs.
//
// The number of reported pairs is non-increasing in k for every traversal
// (a pair that satisfies ≥ k events satisfies any smaller threshold), so
// the search is an exponential ramp-up followed by binary search. When
// even k = 1 yields fewer than minPairs pairs, it returns k = 0 and nil.
func (ex *Explorer) TuneK(event Event, sem Semantics, ext Extend, minPairs int) (int64, []Pair) {
	if minPairs < 1 {
		minPairs = 1
	}
	// The runs at different thresholds walk overlapping candidate chains;
	// memoize them for the duration of the loop unless the caller already
	// manages a memo.
	if ex.Memo == nil {
		ex.Memo = NewEvalMemo(0)
		defer func() { ex.Memo = nil }()
	}
	run := func(k int64) []Pair { return ex.Explore(event, sem, ext, k) }

	best := run(1)
	if len(best) < minPairs {
		return 0, nil
	}
	lo := int64(1) // invariant: run(lo) has ≥ minPairs
	hi := int64(2)
	for {
		pairs := run(hi)
		if len(pairs) < minPairs {
			break
		}
		best = pairs
		lo = hi
		if hi > (1 << 61) {
			break
		}
		hi *= 2
	}
	for lo+1 < hi {
		mid := lo + (hi-lo)/2
		pairs := run(mid)
		if len(pairs) >= minPairs {
			best = pairs
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, best
}
