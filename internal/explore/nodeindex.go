package explore

import (
	"fmt"

	"repro/internal/agg"
	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/evolution"
	"repro/internal/ops"
)

// NodeIndex is the node-counting counterpart of EdgeIndex: it accelerates
// exploration when the result function counts one aggregate NODE tuple on
// an all-static schema with Distinct semantics.
//
// Stability reduces to pure mask arithmetic. The difference events carry
// Definition 2.5's extra rule — a node that still exists in the subtracted
// interval is kept when it is an endpoint of a removed/added edge — so
// their evaluation combines the node masks with an endpoint sweep over the
// edge-difference mask (still far cheaper than view + hash aggregation).
type NodeIndex struct {
	g         *core.Graph
	nodeAt    []*bitset.Set // nodes existing at each base time point
	edgeAt    []*bitset.Set // edges existing at each base time point
	match     *bitset.Set   // nodes whose static tuple matches the target
	endpoints [][2]core.NodeID
}

// NewNodeIndex builds the index for the aggregate node tuple values under
// schema s. The schema must be all-static.
func NewNodeIndex(s *agg.Schema, values ...string) (*NodeIndex, error) {
	if !s.AllStatic() {
		return nil, fmt.Errorf("explore: NodeIndex requires an all-static schema")
	}
	target, ok := s.Encode(values...)
	if !ok {
		return nil, fmt.Errorf("explore: tuple %v not in attribute domain", values)
	}
	g := s.Graph()
	ix := &NodeIndex{
		g:         g,
		nodeAt:    make([]*bitset.Set, g.Timeline().Len()),
		edgeAt:    make([]*bitset.Set, g.Timeline().Len()),
		match:     bitset.New(g.NumNodes()),
		endpoints: make([][2]core.NodeID, g.NumEdges()),
	}
	for t := range ix.nodeAt {
		ix.nodeAt[t] = bitset.New(g.NumNodes())
		ix.edgeAt[t] = bitset.New(g.NumEdges())
	}
	for n := 0; n < g.NumNodes(); n++ {
		id := core.NodeID(n)
		g.NodeTau(id).ForEach(func(t int) { ix.nodeAt[t].Add(n) })
		if tu, ok := s.StaticTuple(id); ok && tu == target {
			ix.match.Add(n)
		}
	}
	for e := 0; e < g.NumEdges(); e++ {
		id := core.EdgeID(e)
		g.EdgeTau(id).ForEach(func(t int) { ix.edgeAt[t].Add(e) })
		ep := g.Edge(id)
		ix.endpoints[e] = [2]core.NodeID{ep.U, ep.V}
	}
	return ix, nil
}

// combine folds per-point masks under the selector semantics, iterating
// the interval's bitmask directly (Times() would allocate a []Time per
// evaluation).
func combine(perPoint []*bitset.Set, width int, sel ops.Sel) *bitset.Set {
	out := bitset.New(width)
	if sel.Interval.IsEmpty() {
		return out
	}
	first := true
	sel.Interval.Mask().ForEach(func(t int) {
		switch {
		case first:
			out.CopyFrom(perPoint[t])
			first = false
		case sel.ForAll:
			out.AndWith(perPoint[t])
		default:
			out.OrWith(perPoint[t])
		}
	})
	return out
}

// Eval returns the distinct count of matching nodes for the event between
// the two selectors, identical to the general evaluator with a NodeTuple
// result and Distinct counting.
func (ix *NodeIndex) Eval(event Event, old, new ops.Sel) int64 {
	nOld := combine(ix.nodeAt, ix.g.NumNodes(), old)
	nNew := combine(ix.nodeAt, ix.g.NumNodes(), new)
	switch event {
	case evolution.Stability:
		nOld.AndWith(nNew)
		return int64(nOld.CountAnd(ix.match))
	case evolution.Growth:
		return ix.evalDifference(new, old, nNew, nOld)
	case evolution.Shrinkage:
		return ix.evalDifference(old, new, nOld, nNew)
	default:
		panic("explore: unknown event")
	}
}

// evalDifference counts matching nodes of the difference pos − neg:
// nodes existing in pos that either do not exist in neg or are endpoints
// of a difference edge (Definition 2.5).
func (ix *NodeIndex) evalDifference(pos, neg ops.Sel, nPos, nNeg *bitset.Set) int64 {
	kept := nPos.AndNot(nNeg)
	ePos := combine(ix.edgeAt, ix.g.NumEdges(), pos)
	eNeg := combine(ix.edgeAt, ix.g.NumEdges(), neg)
	ePos.ForEach(func(e int) {
		if eNeg.Contains(e) {
			return
		}
		ep := ix.endpoints[e]
		if nPos.Contains(int(ep[0])) {
			kept.Add(int(ep[0]))
		}
		if nPos.Contains(int(ep[1])) {
			kept.Add(int(ep[1]))
		}
	})
	return int64(kept.CountAnd(ix.match))
}

// NewNodeIndexedExplorer returns an Explorer whose evaluations count the
// given aggregate node tuple through a NodeIndex.
func NewNodeIndexedExplorer(s *agg.Schema, values ...string) (*Explorer, error) {
	ix, err := NewNodeIndex(s, values...)
	if err != nil {
		return nil, err
	}
	result, err := NodeTuple(s, values...)
	if err != nil {
		return nil, err
	}
	return &Explorer{
		Graph:     s.Graph(),
		Schema:    s,
		Kind:      agg.Distinct,
		Result:    result, // kept for introspection; eval uses the index
		nodeIndex: ix,
	}, nil
}
