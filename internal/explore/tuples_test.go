package explore

import (
	"testing"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/evolution"
)

func TestTopEdgeTuplesGrowth(t *testing.T) {
	g := core.PaperExample()
	s := agg.MustSchema(g, g.MustAttr("gender"))
	ex := &Explorer{Graph: g, Schema: s, Kind: agg.Distinct, Result: TotalEdges}
	// Growth on consecutive pairs: t0→t1 adds u1→u4 (m→f, 1); t1→t2 adds
	// u4→u5 and u2→u5 (f→m, 2). Top tuple must be (f)→(m) with peak 2.
	top := TopEdgeTuples(ex, evolution.Growth, 2)
	if len(top) != 2 {
		t.Fatalf("top = %d entries, want 2", len(top))
	}
	if got := top[0].Label(s); got != "(f)→(m)" || top[0].Peak != 2 {
		t.Errorf("top[0] = %s peak %d, want (f)→(m) peak 2", got, top[0].Peak)
	}
	tl := g.Timeline()
	if !top[0].Old.Equal(tl.Point(1)) || !top[0].New.Equal(tl.Point(2)) {
		t.Errorf("top[0] interval pair = %v → %v, want t1 → t2", top[0].Old, top[0].New)
	}
	if got := top[1].Label(s); got != "(m)→(f)" || top[1].Peak != 1 {
		t.Errorf("top[1] = %s peak %d, want (m)→(f) peak 1", got, top[1].Peak)
	}
}

func TestTopEdgeTuplesStabilityAndLimit(t *testing.T) {
	g := core.PaperExample()
	s := agg.MustSchema(g, g.MustAttr("gender"))
	ex := &Explorer{Graph: g, Schema: s, Kind: agg.Distinct, Result: TotalEdges}
	// Stable edges t0→t1: u1→u2 (m→f) and u2→u4 (f→f); t1→t2: u2→u4.
	top := TopEdgeTuples(ex, evolution.Stability, 0) // 0 = no limit
	if len(top) != 2 {
		t.Fatalf("top = %d entries, want 2", len(top))
	}
	labels := map[string]int64{}
	for _, ts := range top {
		labels[ts.Label(s)] = ts.Peak
	}
	if labels["(m)→(f)"] != 1 || labels["(f)→(f)"] != 1 {
		t.Errorf("peaks = %v", labels)
	}
	// Limit.
	if got := TopEdgeTuples(ex, evolution.Stability, 1); len(got) != 1 {
		t.Errorf("limited top = %d entries, want 1", len(got))
	}
}

func TestTopEdgeTuplesConsistentWithExplorer(t *testing.T) {
	// The peak the ranking reports must be reproducible by a full
	// exploration at k = peak for that tuple.
	g := core.PaperExample()
	s := agg.MustSchema(g, g.MustAttr("gender"))
	ex := &Explorer{Graph: g, Schema: s, Kind: agg.Distinct, Result: TotalEdges}
	for _, ts := range TopEdgeTuples(ex, evolution.Shrinkage, 0) {
		fn, err := EdgeTuple(s, s.Decode(ts.From), s.Decode(ts.To))
		if err != nil {
			t.Fatal(err)
		}
		ex2 := &Explorer{Graph: g, Schema: s, Kind: agg.Distinct, Result: fn}
		pairs := ex2.Explore(evolution.Shrinkage, UnionSemantics, ExtendOld, ts.Peak)
		if len(pairs) == 0 {
			t.Errorf("tuple %s: no pairs at its own peak %d", ts.Label(s), ts.Peak)
		}
	}
}
