package explore

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/evolution"
)

// TestQuickTable1SubsetRelations verifies the "⊆ of" column of the
// paper's Table 1: the minimal pairs found by the monotonically
// decreasing union cases (which can only be consecutive-point pairs) are
// a subset of the pairs found by the corresponding increasing case.
//
//   - Growth:    pairs of Tnew − Told(∪)  ⊆  pairs of Tnew(∪) − Told
//   - Shrinkage: pairs of Told − Tnew(∪)  ⊆  pairs of Told(∪) − Tnew
func TestQuickTable1SubsetRelations(t *testing.T) {
	type rel struct {
		event    Event
		subExt   Extend // the decreasing case (consecutive pairs only)
		superExt Extend // the increasing case
	}
	rels := []rel{
		{evolution.Growth, ExtendOld, ExtendNew},
		{evolution.Shrinkage, ExtendNew, ExtendOld},
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ex := staticExplorer(r)
		if ex == nil {
			return true
		}
		for _, rel := range rels {
			_, max := ex.InitK(rel.event)
			if max == 0 {
				continue
			}
			k := 1 + r.Int63n(max)
			sub := ex.Explore(rel.event, UnionSemantics, rel.subExt, k)
			super := ex.Explore(rel.event, UnionSemantics, rel.superExt, k)
			for _, p := range sub {
				found := false
				for _, q := range super {
					// A consecutive pair (t_i, t_{i+1}) is covered when
					// the increasing case anchored at the same reference
					// point reports a pair — by minimality that pair is
					// the base pair itself when the base already
					// satisfies k.
					if q.Old.Equal(p.Old) && q.New.Equal(p.New) && q.Result == p.Result {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickTable1StabilityMaxEquivalence verifies Table 1's mutual-subset
// entry for maximal stability: extending old and extending new find pairs
// covering the same maximal point spans (Theorem 3.8's equivalence).
func TestQuickTable1StabilityMaxEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ex := staticExplorer(r)
		if ex == nil {
			return true
		}
		min, _ := ex.InitK(evolution.Stability)
		if min == 0 {
			min = 1
		}
		a := ex.Explore(evolution.Stability, IntersectionSemantics, ExtendNew, min)
		b := ex.Explore(evolution.Stability, IntersectionSemantics, ExtendOld, min)
		// Both directions must agree on the set of maximal covered spans
		// (min point, max point): a span maximal one way is reachable the
		// other way with the same result, though anchored differently.
		spans := func(pairs []Pair) map[[2]int]int64 {
			out := map[[2]int]int64{}
			for _, p := range pairs {
				lo := int(p.Old.Min())
				hi := int(p.New.Max())
				if cur, ok := out[[2]int{lo, hi}]; !ok || p.Result > cur {
					out[[2]int{lo, hi}] = p.Result
				}
			}
			return out
		}
		sa, sb := spans(a), spans(b)
		// Results on identical spans must agree (the associativity at the
		// heart of Theorem 3.8).
		for span, res := range sa {
			if other, ok := sb[span]; ok && other != res {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
