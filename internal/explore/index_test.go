package explore

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/evolution"
	"repro/internal/gtest"
	"repro/internal/ops"
)

func TestEdgeIndexRequiresStaticSchema(t *testing.T) {
	g := core.PaperExample()
	varying := agg.MustSchema(g, g.MustAttr("publications"))
	if _, err := NewEdgeIndex(varying, []string{"1"}, []string{"1"}); err == nil {
		t.Error("EdgeIndex on a time-varying schema should fail")
	}
	static := agg.MustSchema(g, g.MustAttr("gender"))
	if _, err := NewEdgeIndex(static, []string{"zz"}, []string{"f"}); err == nil {
		t.Error("EdgeIndex with out-of-domain tuple should fail")
	}
}

func TestEdgeIndexEvalMatchesGeneralPath(t *testing.T) {
	g := core.PaperExample()
	tl := g.Timeline()
	s := agg.MustSchema(g, g.MustAttr("gender"))
	ix, err := NewEdgeIndex(s, []string{"m"}, []string{"f"})
	if err != nil {
		t.Fatal(err)
	}
	result, err := EdgeTuple(s, []string{"m"}, []string{"f"})
	if err != nil {
		t.Fatal(err)
	}
	general := &Explorer{Graph: g, Schema: s, Kind: agg.Distinct, Result: result}

	events := []Event{evolution.Stability, evolution.Growth, evolution.Shrinkage}
	sels := []ops.Sel{
		ops.Exists(tl.Point(0)),
		ops.Exists(tl.Range(0, 1)),
		ops.ForAll(tl.Range(1, 2)),
		ops.ForAll(tl.All()),
	}
	for _, ev := range events {
		for _, old := range sels {
			for _, new := range sels {
				want := general.eval(ev, old, new)
				got := ix.Eval(ev, old, new)
				if got != want {
					t.Errorf("%v old=%v new=%v: index %d, general %d",
						ev, old.Interval, new.Interval, got, want)
				}
			}
		}
	}
}

func TestIndexedExplorerMatchesGeneral(t *testing.T) {
	g := core.PaperExample()
	s := agg.MustSchema(g, g.MustAttr("gender"))
	indexed, err := NewIndexedExplorer(s, []string{"m"}, []string{"f"})
	if err != nil {
		t.Fatal(err)
	}
	result, _ := EdgeTuple(s, []string{"m"}, []string{"f"})
	general := &Explorer{Graph: g, Schema: s, Kind: agg.Distinct, Result: result}

	for _, ev := range []Event{evolution.Stability, evolution.Growth, evolution.Shrinkage} {
		for _, sem := range []Semantics{UnionSemantics, IntersectionSemantics} {
			for _, ext := range []Extend{ExtendOld, ExtendNew} {
				for k := int64(1); k <= 3; k++ {
					a := indexed.Explore(ev, sem, ext, k)
					b := general.Explore(ev, sem, ext, k)
					if !samePairs(a, b) {
						t.Errorf("%v/%v/%v k=%d: indexed %v general %v",
							ev, sem, ext, k, pairStrings(a), pairStrings(b))
					}
				}
			}
		}
	}
}

func TestQuickEdgeIndexMatchesGeneral(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := gtest.RandomGraph(r, gtest.DefaultParams())
		var static []core.AttrID
		for a := 0; a < g.NumAttrs(); a++ {
			if g.Attr(core.AttrID(a)).Kind == core.Static {
				static = append(static, core.AttrID(a))
			}
		}
		if len(static) == 0 || g.NumEdges() == 0 {
			return true
		}
		s := agg.MustSchema(g, static...)
		// Target the tuple pair of a random real edge so the match mask
		// is non-trivial.
		ep := g.Edge(core.EdgeID(r.Intn(g.NumEdges())))
		fromTu, ok1 := s.StaticTuple(ep.U)
		toTu, ok2 := s.StaticTuple(ep.V)
		if !ok1 || !ok2 {
			return true
		}
		from := s.Decode(fromTu)
		to := s.Decode(toTu)

		ix, err := NewEdgeIndex(s, from, to)
		if err != nil {
			return false
		}
		result, err := EdgeTuple(s, from, to)
		if err != nil {
			return false
		}
		general := &Explorer{Graph: g, Schema: s, Kind: agg.Distinct, Result: result}
		tl := g.Timeline()
		for trial := 0; trial < 5; trial++ {
			old := ops.Sel{Interval: gtest.RandomInterval(r, tl), ForAll: r.Intn(2) == 0}
			new := ops.Sel{Interval: gtest.RandomInterval(r, tl), ForAll: r.Intn(2) == 0}
			for _, ev := range []Event{evolution.Stability, evolution.Growth, evolution.Shrinkage} {
				if ix.Eval(ev, old, new) != general.eval(ev, old, new) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
