package explore

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/evolution"
)

func TestTuneKOnFixture(t *testing.T) {
	ex := fixtureExplorer(t)
	// Stability results on consecutive pairs are 2 and 1; the largest k
	// with ≥1 minimal pair is 2 (achieved by (t0, t1)).
	k, pairs := ex.TuneK(evolution.Stability, UnionSemantics, ExtendNew, 1)
	if k != 2 {
		t.Errorf("TuneK = %d, want 2", k)
	}
	if len(pairs) != 1 || pairs[0].Result != 2 {
		t.Errorf("pairs = %v", pairStrings(pairs))
	}
	// Requiring 2 pairs forces k down to 1 (both consecutive pairs).
	k2, pairs2 := ex.TuneK(evolution.Stability, UnionSemantics, ExtendNew, 2)
	if k2 != 1 || len(pairs2) < 2 {
		t.Errorf("TuneK(minPairs=2) = %d with %d pairs", k2, len(pairs2))
	}
}

func TestTuneKUnsatisfiable(t *testing.T) {
	ex := fixtureExplorer(t)
	// There are at most 2 reference points; 5 pairs can never be found.
	k, pairs := ex.TuneK(evolution.Stability, UnionSemantics, ExtendNew, 5)
	if k != 0 || pairs != nil {
		t.Errorf("TuneK = %d, %v, want 0, nil", k, pairStrings(pairs))
	}
}

func TestQuickTuneKIsMaximal(t *testing.T) {
	// TuneK must return a k with ≥ minPairs pairs such that k+1 yields
	// fewer than minPairs.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ex := staticExplorer(r)
		if ex == nil {
			return true
		}
		events := []Event{evolution.Stability, evolution.Growth, evolution.Shrinkage}
		ev := events[r.Intn(len(events))]
		sem := Semantics(r.Intn(2))
		ext := Extend(r.Intn(2))
		minPairs := 1 + r.Intn(2)
		k, pairs := ex.TuneK(ev, sem, ext, minPairs)
		if k == 0 {
			return len(ex.Explore(ev, sem, ext, 1)) < minPairs
		}
		if len(pairs) < minPairs {
			return false
		}
		return len(ex.Explore(ev, sem, ext, k+1)) < minPairs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTuneKWithIndexedExplorer(t *testing.T) {
	g := core.PaperExample()
	s := agg.MustSchema(g, g.MustAttr("gender"))
	indexed, err := NewIndexedExplorer(s, []string{"m"}, []string{"f"})
	if err != nil {
		t.Fatal(err)
	}
	result, _ := EdgeTuple(s, []string{"m"}, []string{"f"})
	general := &Explorer{Graph: g, Schema: s, Kind: agg.Distinct, Result: result}
	kI, pI := indexed.TuneK(evolution.Shrinkage, UnionSemantics, ExtendOld, 1)
	kG, pG := general.TuneK(evolution.Shrinkage, UnionSemantics, ExtendOld, 1)
	if kI != kG || !samePairs(pI, pG) {
		t.Errorf("indexed TuneK (%d, %v) ≠ general (%d, %v)",
			kI, pairStrings(pI), kG, pairStrings(pG))
	}
}
