package explore

import (
	"repro/internal/evolution"
	"repro/internal/lru"
	"repro/internal/ops"
)

// EvalMemo is an opt-in cache of candidate-pair evaluation results, shared
// across exploration runs. The repeated-query structure it exploits is the
// threshold-tuning loop of §3.5: TuneK re-runs the same traversal at many
// thresholds, and every run walks largely the same candidate chains —
// result(G) for a candidate does not depend on k, only on which candidates
// get evaluated. A memo hit skips both view construction and aggregation.
//
// The memo key is the (event, selector, selector) triple; results are tied
// to the owning explorer's graph, schema, kind and result function, so a
// memo must not be shared between explorers measuring different things.
// Because it changes Evaluations (hits are not recharged), the memo is
// strictly opt-in: a nil Memo preserves the engine-independent counts the
// equivalence tests assert.
type EvalMemo struct {
	cache *lru.Cache[int64]
}

// NewEvalMemo returns a memo with the given byte budget (<= 0 selects the
// lru default). Entries are tiny — the budget mostly bounds key storage.
func NewEvalMemo(maxBytes int64) *EvalMemo {
	return &EvalMemo{cache: lru.New[int64](lru.Config{MaxBytes: maxBytes})}
}

// Purge empties the memo. Call it before reusing a memo after changing the
// explorer's schema, kind or result function.
func (m *EvalMemo) Purge() { m.cache.Purge() }

// Stats exposes the underlying cache counters.
func (m *EvalMemo) Stats() lru.Stats { return m.cache.Stats() }

// selKey renders one selector compactly, normalizing the semantics flag:
// over ≤ 1 time point Exists and ForAll select identically, so both map to
// the Exists form and a fixed point reached through either semi-lattice
// shares its entry.
func selKey(b []byte, s ops.Sel) []byte {
	if s.ForAll && s.Interval.Len() > 1 {
		b = append(b, 'A')
	} else {
		b = append(b, 'E')
	}
	return append(b, s.Interval.String()...)
}

// memoKey builds the cache key for one candidate evaluation.
func memoKey(event Event, old, new ops.Sel) string {
	b := make([]byte, 0, 48)
	switch event {
	case evolution.Stability:
		b = append(b, 's')
	case evolution.Growth:
		b = append(b, 'g')
	default:
		b = append(b, 'r')
	}
	b = selKey(b, old)
	b = append(b, '|')
	b = selKey(b, new)
	return string(b)
}

// lookup returns the memoized result for a candidate, if present.
func (m *EvalMemo) lookup(event Event, old, new ops.Sel) (int64, bool) {
	return m.cache.Get(memoKey(event, old, new))
}

// store records a computed result. The charged size approximates the key
// header plus the value; lru adds its own per-entry overhead.
func (m *EvalMemo) store(event Event, old, new ops.Sel, r int64) {
	m.cache.Put(memoKey(event, old, new), r, 8)
}
