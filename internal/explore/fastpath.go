package explore

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/agg"
	"repro/internal/evolution"
	"repro/internal/ops"
	"repro/internal/timeline"
)

// This file implements the exploration fast path: incremental interval
// views plus parallel candidate evaluation.
//
// The seed traversals rebuild every candidate pair from scratch — a
// selector-driven entity scan (StabilityView/DifferenceView is O(|V|+|E|)
// with a per-entity interval test) followed by a fresh aggregation. But the
// candidates of one reference point form a chain where each step extends
// the moving side by exactly one time point, so the entity selection of
// step extra+1 is a single word-level OrWith/AndWith away from step extra.
// The fast path keeps one ops.IncrementalView per side of each reference
// point and advances them with ExtendUnion/ExtendIntersect, combining the
// two sides through a reusable ops.PairView.
//
// To parallelize without changing observable behaviour, the traversal is
// run depth-synchronously: at depth d every still-active reference point
// evaluates its extra=d candidate (the tasks are independent — each touches
// only its own reference point's views), then the prune rules of §3.2/§3.3
// are applied serially in reference-point order. Which candidates exist at
// depth d depends only on depth<d outcomes, so the set of evaluated
// candidates — and with it Evaluations — is identical to the serial seed
// traversal, and emitting at most one pair per reference point in
// reference-point order reproduces the exact output ordering.
//
// Equivalence with the selector path (proved value-for-value by the
// property tests in ops/incremental_test.go): a union-extended side
// accumulates {x : τ(x) ∩ T ≠ ∅} = Exists(T); an intersection-extended
// side accumulates {x : T ⊆ τ(x)} = ForAll(T); a fixed single-point side is
// the same under both, matching sel().

// fastEligible reports whether Explore/Naive may use the fast path: the
// indexed evaluators bypass view construction entirely and keep their own
// engine, and NoFastPath pins the seed path for ablations.
func (ex *Explorer) fastEligible() bool {
	return ex.index == nil && ex.nodeIndex == nil && !ex.NoFastPath
}

// pointIndex lazily builds (and caches across calls) the per-time-point
// existence index of the explorer's graph.
func (ex *Explorer) pointIndex() *ops.PointIndex {
	if ex.pointIdx == nil || ex.pointIdx.Graph() != ex.Graph {
		ex.pointIdx = ops.NewPointIndex(ex.Graph)
	}
	return ex.pointIdx
}

// refState is the traversal state of one reference point i: the two sides
// of its current candidate (Told anchored at i, Tnew anchored at i+1; the
// side selected by Extend moves outward one point per depth), the extension
// reached so far and the evaluation target for the current depth. A
// refState is only ever touched by one worker per depth.
type refState struct {
	i      int
	oldIV  *ops.IncrementalView
	newIV  *ops.IncrementalView
	active bool

	extra  int // extension currently applied to the moving side
	target int // extension to reach before evaluating
	r      int64

	best  *Pair      // iExplore: last candidate that stayed ≥ k
	cands []fastCand // Naive: every evaluated candidate
}

type fastCand struct {
	extra int
	r     int64
}

// fastRun holds one traversal's shared context: the point index, one
// PairView per worker, and the per-reference-point states.
type fastRun struct {
	ex      *Explorer
	event   Event
	sem     Semantics
	ext     Extend
	workers int
	pvs     []*ops.PairView
	refs    []*refState
}

func (ex *Explorer) newFastRun(event Event, sem Semantics, ext Extend) *fastRun {
	ix := ex.pointIndex()
	workers := ex.Workers
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 0 {
		workers = 1
	}
	fr := &fastRun{ex: ex, event: event, sem: sem, ext: ext, workers: workers}
	fr.pvs = make([]*ops.PairView, workers)
	for w := range fr.pvs {
		fr.pvs[w] = ix.NewPairView()
	}
	n := ex.Graph.Timeline().Len()
	if n < 2 {
		return fr
	}
	fr.refs = make([]*refState, n-1)
	for i := range fr.refs {
		fr.refs[i] = &refState{
			i:      i,
			oldIV:  ix.NewIncrementalView(timeline.Time(i)),
			newIV:  ix.NewIncrementalView(timeline.Time(i + 1)),
			active: true,
		}
	}
	return fr
}

// maxExtra is the largest valid extension of reference point i within the
// timeline (mirrors the bounds checks of pairAt).
func (fr *fastRun) maxExtra(i int) int {
	if fr.ext == ExtendNew {
		return fr.ex.Graph.Timeline().Len() - 2 - i
	}
	return i
}

// process advances one reference point to its target extension and
// evaluates the resulting candidate into rs.r, reporting whether it had to
// compute (false on a memo hit). A hit leaves the incremental views where
// they are — the catch-up loop advances them lazily on the next computed
// candidate. Safe to call concurrently for distinct reference points as
// long as each worker owns its PairView: agg.Aggregate draws scratch from
// the schema's internal pool, the ResultFunc only reads the aggregate
// graph, and the memo cache is itself concurrency-safe.
func (fr *fastRun) process(rs *refState, pv *ops.PairView) bool {
	var oldSel, newSel ops.Sel
	if fr.ex.Memo != nil {
		oldIv, newIv, _ := fr.ex.pairAt(rs.i, fr.ext, rs.target)
		oldSel, newSel = sel(oldIv, fr.sem), sel(newIv, fr.sem)
		if r, ok := fr.ex.Memo.lookup(fr.event, oldSel, newSel); ok {
			rs.r = r
			return false
		}
	}
	for rs.extra < rs.target {
		rs.extra++
		var iv *ops.IncrementalView
		var t timeline.Time
		if fr.ext == ExtendNew {
			iv, t = rs.newIV, timeline.Time(rs.i+1+rs.extra)
		} else {
			iv, t = rs.oldIV, timeline.Time(rs.i-rs.extra)
		}
		if fr.sem == IntersectionSemantics {
			iv.ExtendIntersect(t)
		} else {
			iv.ExtendUnion(t)
		}
	}
	var v *ops.View
	switch fr.event {
	case evolution.Stability:
		v = pv.Stability(rs.oldIV, rs.newIV)
	case evolution.Growth:
		v = pv.Difference(rs.newIV, rs.oldIV)
	case evolution.Shrinkage:
		v = pv.Difference(rs.oldIV, rs.newIV)
	default:
		panic("explore: unknown event")
	}
	rs.r = fr.ex.Result(agg.Aggregate(v, fr.ex.Schema, fr.ex.Kind))
	if fr.ex.Memo != nil {
		fr.ex.Memo.store(fr.event, oldSel, newSel, rs.r)
	}
	return true
}

// run evaluates the given candidates, fanning out to the bounded worker
// pool when it pays off, and charges the computed ones (memo hits are
// free) to Evaluations. Tasks are handed out through an atomic cursor;
// each worker reuses its own PairView.
func (fr *fastRun) run(tasks []*refState) {
	w := fr.workers
	if w > len(tasks) {
		w = len(tasks)
	}
	if w <= 1 {
		pv := fr.pvs[0]
		for _, rs := range tasks {
			if fr.ex.canceled() {
				return
			}
			if fr.process(rs, pv) {
				fr.ex.Evaluations++
				TotalEvaluations.Inc()
			}
		}
		return
	}
	var next, computed int64
	var wg sync.WaitGroup
	for wi := 0; wi < w; wi++ {
		wg.Add(1)
		go func(pv *ops.PairView) {
			defer wg.Done()
			for {
				if fr.ex.canceled() {
					return
				}
				t := int(atomic.AddInt64(&next, 1)) - 1
				if t >= len(tasks) {
					return
				}
				if fr.process(tasks[t], pv) {
					atomic.AddInt64(&computed, 1)
				}
			}
		}(fr.pvs[wi])
	}
	wg.Wait()
	fr.ex.Evaluations += int(computed)
	TotalEvaluations.Add(computed)
}

// collect assembles the output in reference-point order — every traversal
// emits at most one pair per reference point, so this reproduces the seed
// traversals' append order exactly.
func (fr *fastRun) collect(results []*Pair) []Pair {
	var out []Pair
	for _, p := range results {
		if p != nil {
			out = append(out, *p)
		}
	}
	return out
}

// atDepth gathers the active reference points that have a valid candidate
// at extension depth, deactivating those that ran off the timeline, and
// sets their evaluation target.
func (fr *fastRun) atDepth(depth int) []*refState {
	var tasks []*refState
	for _, rs := range fr.refs {
		if !rs.active {
			continue
		}
		if depth > fr.maxExtra(rs.i) {
			rs.active = false
			continue
		}
		rs.target = depth
		tasks = append(tasks, rs)
	}
	return tasks
}

// pair materializes the candidate intervals of rs at its current target via
// the same constructor the seed path uses.
func (fr *fastRun) pair(rs *refState) *Pair {
	old, new, _ := fr.ex.pairAt(rs.i, fr.ext, rs.target)
	return &Pair{Old: old, New: new, Result: rs.r}
}

// uExplore is the fast-path U-Explore: depth-synchronous minimal-pair
// search, pruning a reference point as soon as its result reaches k.
func (fr *fastRun) uExplore(k int64) []Pair {
	results := make([]*Pair, len(fr.refs))
	for depth := 0; ; depth++ {
		tasks := fr.atDepth(depth)
		if len(tasks) == 0 {
			break
		}
		fr.run(tasks)
		if fr.ex.canceled() {
			return nil
		}
		for _, rs := range tasks {
			if rs.r >= k {
				results[rs.i] = fr.pair(rs)
				rs.active = false
			}
		}
	}
	return fr.collect(results)
}

// iExplore is the fast-path I-Explore: keep extending while the result
// stays ≥ k; the last surviving extension per reference point is maximal.
func (fr *fastRun) iExplore(k int64) []Pair {
	results := make([]*Pair, len(fr.refs))
	for depth := 0; ; depth++ {
		tasks := fr.atDepth(depth)
		if len(tasks) == 0 {
			break
		}
		fr.run(tasks)
		if fr.ex.canceled() {
			return nil
		}
		for _, rs := range tasks {
			if rs.r < k {
				rs.active = false
				continue
			}
			results[rs.i] = fr.pair(rs)
		}
	}
	return fr.collect(results)
}

// checkBase evaluates only the consecutive-point pairs (depth 0), all of
// them independent and evaluated in one parallel wave.
func (fr *fastRun) checkBase(k int64) []Pair {
	results := make([]*Pair, len(fr.refs))
	tasks := fr.atDepth(0)
	fr.run(tasks)
	if fr.ex.canceled() {
		return nil
	}
	for _, rs := range tasks {
		if rs.r >= k {
			results[rs.i] = fr.pair(rs)
		}
	}
	return fr.collect(results)
}

// checkLongest evaluates one fully-extended candidate per reference point;
// each task fast-forwards its moving side to the timeline boundary (a chain
// of word-level extends) before its single evaluation.
func (fr *fastRun) checkLongest(k int64) []Pair {
	results := make([]*Pair, len(fr.refs))
	var tasks []*refState
	for _, rs := range fr.refs {
		rs.target = fr.maxExtra(rs.i)
		tasks = append(tasks, rs)
	}
	fr.run(tasks)
	if fr.ex.canceled() {
		return nil
	}
	for _, rs := range tasks {
		if rs.r >= k {
			results[rs.i] = fr.pair(rs)
		}
	}
	return fr.collect(results)
}

// naive exhaustively evaluates every extension of every reference point,
// then selects minimal/maximal pairs from the recorded results — the same
// candidates, count and output as the seed Naive.
func (fr *fastRun) naive(sem Semantics, k int64) []Pair {
	results := make([]*Pair, len(fr.refs))
	for depth := 0; ; depth++ {
		tasks := fr.atDepth(depth)
		if len(tasks) == 0 {
			break
		}
		fr.run(tasks)
		for _, rs := range tasks {
			rs.cands = append(rs.cands, fastCand{extra: depth, r: rs.r})
		}
	}
	for _, rs := range fr.refs {
		var hit *fastCand
		if sem == UnionSemantics {
			for c := range rs.cands { // minimal: shortest qualifying extension
				if rs.cands[c].r >= k {
					hit = &rs.cands[c]
					break
				}
			}
		} else {
			for c := len(rs.cands) - 1; c >= 0; c-- { // maximal: longest
				if rs.cands[c].r >= k {
					hit = &rs.cands[c]
					break
				}
			}
		}
		if hit != nil {
			rs.target = hit.extra
			rs.r = hit.r
			results[rs.i] = fr.pair(rs)
		}
	}
	return fr.collect(results)
}
