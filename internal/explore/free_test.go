package explore

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/evolution"
	"repro/internal/ops"
	"repro/internal/timeline"
)

func TestExploreFreeStabilityFixture(t *testing.T) {
	ex := fixtureExplorer(t)
	tl := ex.Graph.Timeline()
	// k=2 stable edges: only pairs containing both t0 and t1 on opposite
	// sides qualify; the Pareto-minimal one is (t0, t1).
	got := ex.ExploreFree(evolution.Stability, UnionSemantics, 2)
	assertPairs(t, got, Pair{Old: tl.Point(0), New: tl.Point(1), Result: 2})

	// k=1 with intersection semantics: maximal pairs. The widest
	// qualifying pairs are (t0, [t1,t2]) and ([t0,t1], t2), each keeping
	// u2→u4 (ForAll semantics on both sides).
	max := ex.ExploreFree(evolution.Stability, IntersectionSemantics, 1)
	if len(max) != 2 {
		t.Fatalf("maximal pairs = %v", pairStrings(max))
	}
	for _, p := range max {
		if p.Old.Len()+p.New.Len() != 3 {
			t.Errorf("pair %v does not cover the whole timeline", p)
		}
	}
}

func TestExploreFreeShrinkageBothSidesExtended(t *testing.T) {
	// The anchored strategies cannot produce a pair with BOTH sides longer
	// than a point; the free search can. Shrinkage with k=3 on the fixture
	// needs old = [t0,t1] against t2 (u1→u2, u1→u3, u1→u4 all gone).
	ex := fixtureExplorer(t)
	tl := ex.Graph.Timeline()
	got := ex.ExploreFree(evolution.Shrinkage, UnionSemantics, 3)
	assertPairs(t, got, Pair{Old: tl.Range(0, 1), New: tl.Point(2), Result: 3})
}

func TestQuickExploreFreeSound(t *testing.T) {
	// Soundness of the Pareto filter: every reported pair qualifies, and
	// for union semantics no qualifying strict sub-pair exists (verified
	// by direct re-evaluation).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ex := staticExplorer(r)
		if ex == nil {
			return true
		}
		_, max := ex.InitK(evolution.Shrinkage)
		if max == 0 {
			return true
		}
		k := 1 + r.Int63n(max)
		pairs := ex.ExploreFree(evolution.Shrinkage, UnionSemantics, k)
		tl := ex.Graph.Timeline()
		for _, p := range pairs {
			if p.Result < k {
				return false
			}
			// Shrinking either side by one point must disqualify or be
			// impossible (single-point side) — a spot check of
			// minimality on the four one-step sub-pairs.
			check := func(old, new timeline.Interval) bool {
				return ex.eval(evolution.Shrinkage, ops.Exists(old), ops.Exists(new)) < k
			}
			if p.Old.Len() > 1 {
				if !check(tl.Range(p.Old.Min()+1, p.Old.Max()), p.New) ||
					!check(tl.Range(p.Old.Min(), p.Old.Max()-1), p.New) {
					return false
				}
			}
			if p.New.Len() > 1 {
				if !check(p.Old, tl.Range(p.New.Min()+1, p.New.Max())) ||
					!check(p.Old, tl.Range(p.New.Min(), p.New.Max()-1)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestExploreFreeWithIndex(t *testing.T) {
	// The free sweep composes with the edge index; results must agree
	// with the general evaluator.
	g := core.PaperExample()
	s := agg.MustSchema(g, g.MustAttr("gender"))
	indexed, err := NewIndexedExplorer(s, []string{"m"}, []string{"f"})
	if err != nil {
		t.Fatal(err)
	}
	result, _ := EdgeTuple(s, []string{"m"}, []string{"f"})
	general := &Explorer{Graph: g, Schema: s, Kind: agg.Distinct, Result: result}
	a := indexed.ExploreFree(evolution.Shrinkage, UnionSemantics, 1)
	b := general.ExploreFree(evolution.Shrinkage, UnionSemantics, 1)
	if !samePairs(a, b) {
		t.Errorf("indexed %v ≠ general %v", pairStrings(a), pairStrings(b))
	}
}
