package explore

import (
	"context"
	"testing"

	"repro/internal/evolution"
)

// TestExploreCtxMatchesExplore checks that a live context is transparent:
// ExploreCtx returns exactly what Explore returns, on both the fast path
// and the seed-based fallback.
func TestExploreCtxMatchesExplore(t *testing.T) {
	for _, noFast := range []bool{false, true} {
		ex := fixtureExplorer(t)
		ex.NoFastPath = noFast
		want := ex.Explore(evolution.Stability, UnionSemantics, ExtendNew, 2)
		got, err := ex.ExploreCtx(context.Background(), evolution.Stability, UnionSemantics, ExtendNew, 2)
		if err != nil {
			t.Fatalf("noFast=%v: %v", noFast, err)
		}
		assertPairs(t, got, want...)
	}
}

// TestExploreCtxCanceled checks the early exit: a canceled context yields
// (nil, ctx.Err()) without running the traversal, and the explorer remains
// usable afterwards.
func TestExploreCtxCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, noFast := range []bool{false, true} {
		ex := fixtureExplorer(t)
		ex.NoFastPath = noFast
		pairs, err := ex.ExploreCtx(ctx, evolution.Growth, UnionSemantics, ExtendNew, 1)
		if err != context.Canceled {
			t.Fatalf("noFast=%v: got (%v, %v), want context.Canceled", noFast, pairs, err)
		}
		if pairs != nil {
			t.Fatalf("noFast=%v: canceled run returned pairs %v", noFast, pairs)
		}
		// The explorer is not poisoned by the aborted run.
		got, err := ex.ExploreCtx(context.Background(), evolution.Growth, UnionSemantics, ExtendNew, 1)
		if err != nil {
			t.Fatalf("noFast=%v: follow-up run: %v", noFast, err)
		}
		if len(got) == 0 {
			t.Fatalf("noFast=%v: follow-up run returned no pairs", noFast)
		}
	}
}

// TestTuneKCtxMatchesTuneK checks that a live context is transparent to
// the tuning loop, and that a canceled one aborts it with ctx.Err().
func TestTuneKCtxMatchesTuneK(t *testing.T) {
	ex := fixtureExplorer(t)
	wantK, wantPairs := ex.TuneK(evolution.Shrinkage, UnionSemantics, ExtendOld, 1)

	gotK, gotPairs, err := ex.TuneKCtx(context.Background(), evolution.Shrinkage, UnionSemantics, ExtendOld, 1)
	if err != nil {
		t.Fatal(err)
	}
	if gotK != wantK {
		t.Fatalf("TuneKCtx k = %d, want %d", gotK, wantK)
	}
	assertPairs(t, gotPairs, wantPairs...)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	k, pairs, err := fixtureExplorer(t).TuneKCtx(ctx, evolution.Shrinkage, UnionSemantics, ExtendOld, 1)
	if err != context.Canceled || k != 0 || pairs != nil {
		t.Fatalf("canceled TuneKCtx = (%d, %v, %v), want (0, nil, context.Canceled)", k, pairs, err)
	}
}

// TestTopEdgeTuplesCtx checks the ranking's cancellation hook: a live
// context is transparent, a canceled one returns ctx.Err().
func TestTopEdgeTuplesCtx(t *testing.T) {
	ex := fixtureExplorer(t)
	want := TopEdgeTuples(ex, evolution.Growth, 2)
	got, err := TopEdgeTuplesCtx(context.Background(), ex, evolution.Growth, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d scores, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].From != want[i].From || got[i].To != want[i].To || got[i].Peak != want[i].Peak ||
			got[i].Old.String() != want[i].Old.String() || got[i].New.String() != want[i].New.String() {
			t.Fatalf("score %d = %+v, want %+v", i, got[i], want[i])
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if scores, err := TopEdgeTuplesCtx(ctx, ex, evolution.Growth, 2); err != context.Canceled || scores != nil {
		t.Fatalf("canceled TopEdgeTuplesCtx = (%v, %v), want (nil, context.Canceled)", scores, err)
	}
	// The explorer is not poisoned by the aborted run.
	if again, err := TopEdgeTuplesCtx(context.Background(), ex, evolution.Growth, 2); err != nil || len(again) != len(want) {
		t.Fatalf("follow-up run = (%d scores, %v)", len(again), err)
	}
}

// TestTotalEvaluationsCounter checks the serving-layer observability hook:
// every explorer evaluation also moves the package-level counter.
func TestTotalEvaluationsCounter(t *testing.T) {
	ex := fixtureExplorer(t)
	before := TotalEvaluations.Value()
	ex.Explore(evolution.Stability, UnionSemantics, ExtendNew, 2)
	delta := TotalEvaluations.Value() - before
	if delta != int64(ex.Evaluations) {
		t.Fatalf("TotalEvaluations moved by %d, explorer recorded %d", delta, ex.Evaluations)
	}
	if delta == 0 {
		t.Fatal("no evaluations recorded")
	}
}
