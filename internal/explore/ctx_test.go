package explore

import (
	"context"
	"testing"

	"repro/internal/evolution"
)

// TestExploreCtxMatchesExplore checks that a live context is transparent:
// ExploreCtx returns exactly what Explore returns, on both the fast path
// and the seed-based fallback.
func TestExploreCtxMatchesExplore(t *testing.T) {
	for _, noFast := range []bool{false, true} {
		ex := fixtureExplorer(t)
		ex.NoFastPath = noFast
		want := ex.Explore(evolution.Stability, UnionSemantics, ExtendNew, 2)
		got, err := ex.ExploreCtx(context.Background(), evolution.Stability, UnionSemantics, ExtendNew, 2)
		if err != nil {
			t.Fatalf("noFast=%v: %v", noFast, err)
		}
		assertPairs(t, got, want...)
	}
}

// TestExploreCtxCanceled checks the early exit: a canceled context yields
// (nil, ctx.Err()) without running the traversal, and the explorer remains
// usable afterwards.
func TestExploreCtxCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, noFast := range []bool{false, true} {
		ex := fixtureExplorer(t)
		ex.NoFastPath = noFast
		pairs, err := ex.ExploreCtx(ctx, evolution.Growth, UnionSemantics, ExtendNew, 1)
		if err != context.Canceled {
			t.Fatalf("noFast=%v: got (%v, %v), want context.Canceled", noFast, pairs, err)
		}
		if pairs != nil {
			t.Fatalf("noFast=%v: canceled run returned pairs %v", noFast, pairs)
		}
		// The explorer is not poisoned by the aborted run.
		got, err := ex.ExploreCtx(context.Background(), evolution.Growth, UnionSemantics, ExtendNew, 1)
		if err != nil {
			t.Fatalf("noFast=%v: follow-up run: %v", noFast, err)
		}
		if len(got) == 0 {
			t.Fatalf("noFast=%v: follow-up run returned no pairs", noFast)
		}
	}
}

// TestTotalEvaluationsCounter checks the serving-layer observability hook:
// every explorer evaluation also moves the package-level counter.
func TestTotalEvaluationsCounter(t *testing.T) {
	ex := fixtureExplorer(t)
	before := TotalEvaluations.Value()
	ex.Explore(evolution.Stability, UnionSemantics, ExtendNew, 2)
	delta := TotalEvaluations.Value() - before
	if delta != int64(ex.Evaluations) {
		t.Fatalf("TotalEvaluations moved by %d, explorer recorded %d", delta, ex.Evaluations)
	}
	if delta == 0 {
		t.Fatal("no evaluations recorded")
	}
}
