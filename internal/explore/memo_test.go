package explore

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/evolution"
)

// TestQuickMemoMatchesUnmemoized checks across random graphs and all 12
// Table 1 cases that a memoized explorer returns exactly the pairs of an
// unmemoized one (on both engines), and that re-running the same traversal
// against a warm memo performs zero new evaluations.
func TestQuickMemoMatchesUnmemoized(t *testing.T) {
	events := []Event{evolution.Stability, evolution.Growth, evolution.Shrinkage}
	sems := []Semantics{UnionSemantics, IntersectionSemantics}
	exts := []Extend{ExtendOld, ExtendNew}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ex := anyExplorer(r)
		if ex == nil {
			return true
		}
		_, max := ex.InitK(events[r.Intn(len(events))])
		k := int64(1)
		if max > 0 {
			k = 1 + r.Int63n(max+1)
		}
		for _, ev := range events {
			for _, sem := range sems {
				for _, ext := range exts {
					ex.Memo = nil
					want := ex.Explore(ev, sem, ext, k)
					wantEvals := ex.Evaluations

					for _, noFast := range []bool{false, true} {
						ex.NoFastPath = noFast
						ex.Memo = NewEvalMemo(0)
						got := ex.Explore(ev, sem, ext, k)
						if !samePairs(got, want) || ex.Evaluations != wantEvals {
							return false
						}
						// Warm re-run: every candidate hits the memo.
						again := ex.Explore(ev, sem, ext, k)
						if !samePairs(again, want) || ex.Evaluations != 0 {
							return false
						}
					}
					ex.NoFastPath = false
					ex.Memo = nil
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestMemoSharedAcrossEngines checks key compatibility: results stored by
// the seed engine are hits for the fast path and vice versa, including the
// ForAll/Exists normalization for single-point intervals.
func TestMemoSharedAcrossEngines(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	var ex *Explorer
	for ex == nil {
		ex = anyExplorer(r)
	}
	for _, sem := range []Semantics{UnionSemantics, IntersectionSemantics} {
		ex.Memo = NewEvalMemo(0)
		ex.NoFastPath = true
		want := ex.Explore(evolution.Stability, sem, ExtendNew, 2)
		ex.NoFastPath = false
		got := ex.Explore(evolution.Stability, sem, ExtendNew, 2)
		if !samePairs(got, want) {
			t.Fatalf("sem %v: fast path disagrees after seed warm-up", sem)
		}
		if ex.Evaluations != 0 {
			t.Errorf("sem %v: fast path recomputed %d candidates the seed engine memoized", sem, ex.Evaluations)
		}
		st := ex.Memo.Stats()
		if st.Hits == 0 || st.Misses == 0 {
			t.Errorf("sem %v: memo stats %+v", sem, st)
		}
	}
}

// TestTuneKMemoized checks that TuneK's automatic memo does not change its
// answer and does reduce the total number of evaluations.
func TestTuneKMemoized(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	var ex *Explorer
	for ex == nil {
		ex = anyExplorer(r)
	}
	// Reference: run the tuning loop with memoization disabled by pinning a
	// pre-purged memo... instead, emulate the unmemoized loop manually.
	type outcome struct {
		k     int64
		pairs []Pair
	}
	unmemoized := func() (outcome, int) {
		total := 0
		run := func(k int64) []Pair {
			p := ex.Explore(evolution.Growth, UnionSemantics, ExtendNew, k)
			total += ex.Evaluations
			return p
		}
		best := run(1)
		if len(best) < 1 {
			return outcome{}, total
		}
		lo, hi := int64(1), int64(2)
		for {
			pairs := run(hi)
			if len(pairs) < 1 {
				break
			}
			best, lo = pairs, hi
			if hi > (1 << 61) {
				break
			}
			hi *= 2
		}
		for lo+1 < hi {
			mid := lo + (hi-lo)/2
			if pairs := run(mid); len(pairs) >= 1 {
				best, lo = pairs, mid
			} else {
				hi = mid
			}
		}
		return outcome{lo, best}, total
	}
	want, rawEvals := unmemoized()

	ex.Memo = nil
	k, pairs := ex.TuneK(evolution.Growth, UnionSemantics, ExtendNew, 1)
	if ex.Memo != nil {
		t.Error("TuneK leaked its temporary memo")
	}
	if k != want.k || !samePairs(pairs, want.pairs) {
		t.Fatalf("TuneK = (%d, %v), want (%d, %v)", k, pairs, want.k, want.pairs)
	}
	// The memoized loop cannot evaluate more candidates than the raw loop,
	// and unless the loop ended after one run it should evaluate fewer.
	memo := NewEvalMemo(0)
	ex.Memo = memo
	ex.TuneK(evolution.Growth, UnionSemantics, ExtendNew, 1)
	st := memo.Stats()
	if want.k > 1 && st.Hits == 0 {
		t.Errorf("tuning loop produced no memo hits (raw evals %d, stats %+v)", rawEvals, st)
	}
	ex.Memo = nil
}
