package cluster

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/server"
	"repro/internal/stream"
)

// TestAsOfRoutesToMirror: transaction-time pins can never scatter (shards
// serve head-only partials), so every as_of request lands on the router's
// mirror — including queries a head request would have single-shard
// routed — and answers byte-identically to a single node that ingested
// the same series.
func TestAsOfRoutesToMirror(t *testing.T) {
	routerURL, refURL, rt := startCluster(t, 3)
	head := rt.mseries.Txn()
	if head != len(testPoints()) {
		t.Fatalf("mirror txn = %d, want %d", head, len(testPoints()))
	}

	// Single-shard-resolvable interval, pinned: must go to the mirror.
	req := server.AggregateRequest{
		Op: "project", Interval: server.IntervalSpec{From: "t0", To: "t1"},
		Attrs: []string{"gender"}, Kind: "dist", AsOf: head,
	}
	got, route := aggregate(t, routerURL, req)
	if route != "mirror" {
		t.Errorf("as_of aggregate route = %q, want mirror", route)
	}
	want, _ := aggregate(t, refURL, req)
	if !bytes.Equal(got, want) {
		t.Errorf("as_of head answer diverged:\n router %s\n single %s", got, want)
	}

	// An earlier pin travels: at txn 2 only t0..t1 existed, so the full
	// PROJECT over the historical head equals the reference's own AS OF 2.
	req2 := server.AggregateRequest{
		Op: "project", Interval: server.IntervalSpec{From: "t0", To: "t1"},
		Attrs: []string{"gender"}, Kind: "dist", AsOf: 2,
	}
	got2, route2 := aggregate(t, routerURL, req2)
	if route2 != "mirror" {
		t.Errorf("as_of 2 route = %q, want mirror", route2)
	}
	want2, _ := aggregate(t, refURL, req2)
	if !bytes.Equal(got2, want2) {
		t.Errorf("as_of 2 answer diverged:\n router %s\n single %s", got2, want2)
	}
	// And a point label beyond that txn's timeline is unknown.
	code, data, _ := postJSON(t, routerURL+"/v1/aggregate", server.AggregateRequest{
		Op: "project", Interval: server.IntervalSpec{From: "t4", To: "t4"},
		Attrs: []string{"gender"}, AsOf: 2,
	})
	if code != http.StatusBadRequest || !strings.Contains(string(data), "unknown time point") {
		t.Errorf("pinned query on a future label = %d: %s", code, data)
	}

	// TGQL as_of through the router hits the mirror as well.
	code, data, hdr := postJSON(t, routerURL+"/v1/tgql", server.TGQLRequest{
		Query: "AGG DIST gender ON UNION(t0, t1)", AsOf: 3,
	})
	if code != 200 {
		t.Fatalf("tgql as_of = %d: %s", code, data)
	}
	if hdr.Get("X-Gt-Route") != "mirror" {
		t.Errorf("tgql as_of route = %q, want mirror", hdr.Get("X-Gt-Route"))
	}
	var tr server.TGQLResponse
	if err := json.Unmarshal(data, &tr); err != nil {
		t.Fatal(err)
	}
	code, refData := func() (int, []byte) {
		c, d, _ := postJSON(t, refURL+"/v1/tgql", server.TGQLRequest{
			Query: "AGG DIST gender ON UNION(t0, t1)", AsOf: 3,
		})
		return c, d
	}()
	if code != 200 {
		t.Fatalf("reference tgql as_of = %d: %s", code, refData)
	}
	var refTr server.TGQLResponse
	if err := json.Unmarshal(refData, &refTr); err != nil {
		t.Fatal(err)
	}
	if tr.Text != refTr.Text || !bytes.Equal(tr.Graph, refTr.Graph) {
		t.Errorf("tgql as_of diverged:\n router %s\n single %s", tr.Text, refTr.Text)
	}
}

// TestPartialRejectsAsOf: the shard-side partial endpoint refuses pinned
// requests — scatter legs are head-only by contract.
func TestPartialRejectsAsOf(t *testing.T) {
	srv, err := server.New(server.Config{
		Series: stream.New(attrsFor()...), ShardName: "s0", Logger: quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	code, data, _ := postJSON(t, ts.URL+"/v1/partial/aggregate", server.AggregateRequest{
		Op: "project", Interval: server.IntervalSpec{From: "t0"}, Attrs: []string{"gender"}, AsOf: 1,
	})
	if code != http.StatusBadRequest || !strings.Contains(string(data), "mirror") {
		t.Fatalf("partial as_of = %d: %s", code, data)
	}
}

// TestMirrorTxnInStatus: the cluster status surfaces the mirror's
// transaction watermark and per-member txns.
func TestMirrorTxnInStatus(t *testing.T) {
	routerURL, _, rt := startCluster(t, 3)
	code, data, _ := func() (int, []byte, http.Header) {
		resp, err := http.Get(routerURL + "/v1/cluster/status")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b := new(bytes.Buffer)
		if _, err := b.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, b.Bytes(), resp.Header
	}()
	if code != 200 {
		t.Fatalf("cluster status = %d: %s", code, data)
	}
	var cs ClusterStatus
	if err := json.Unmarshal(data, &cs); err != nil {
		t.Fatal(err)
	}
	if cs.MirrorTxn != rt.mseries.Txn() {
		t.Errorf("cluster status mirror_txn = %d, want %d", cs.MirrorTxn, rt.mseries.Txn())
	}
}
