// Package cluster is GraphTempo's horizontal serving tier: a router that
// fronts N graphtempod processes, each owning a contiguous time-range
// shard of the temporal graph, with WAL-streamed read replicas.
//
// The interval algebra makes time-range sharding natural — a [ts,te]
// aggregate touches only the shards whose ranges it overlaps — and the
// paper's distributivity results make the cross-shard merge exact:
// project/union aggregates decompose into per-shard partials (ALL weights
// sum, DIST entity sets union; see internal/plan/scatter.go). Operators
// that do not decompose (intersection, difference, exploration, TGQL) are
// answered by the router's mirror: a full replica of every shard's
// stream, rebuilt through the same WAL replication path replicas use, and
// served by an embedded single-node server — so non-decomposable answers
// and error messages are byte-identical to a single-node deployment by
// construction.
//
// Topology contract: shards are listed in time order; every shard except
// the last is frozen (its time range no longer grows) and the last (tail)
// shard receives all new ingests. Writes go to shard primaries only;
// replicas follow their primary's WAL over HTTP and serve reads when
// caught up. Exactness of single-shard and scattered reads additionally
// assumes self-contained ingest batches: every appearance restates its
// static attribute values, so a shard never depends on an appearance that
// lives in an earlier shard's range (DESIGN.md §5).
package cluster

import (
	"fmt"
	"net/url"
	"strings"
)

// Member is one process of a shard: the primary (first in spec order) or
// a read replica.
type Member struct {
	URL  string // base URL, e.g. http://127.0.0.1:7101
	Role string // primary or replica
}

// Shard is one contiguous time-range shard: a name and its members,
// primary first.
type Shard struct {
	Name    string
	Members []Member
}

// Primary returns the shard's primary member.
func (s Shard) Primary() Member { return s.Members[0] }

// ShardMap is the cluster topology, shards in time order (the last shard
// is the tail that receives ingests).
type ShardMap struct {
	Shards []Shard
}

// ParseShardMap parses the -shards flag spelling:
//
//	name=primaryURL[|replicaURL...][;name=...]
//
// e.g. "a=http://127.0.0.1:7101|http://127.0.0.1:7102;b=http://127.0.0.1:7201".
// Shards must be listed in time order; the last one is the ingest tail.
func ParseShardMap(spec string) (*ShardMap, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("cluster: empty shard map")
	}
	m := &ShardMap{}
	seen := make(map[string]bool)
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, urls, ok := strings.Cut(part, "=")
		name = strings.TrimSpace(name)
		if !ok || name == "" {
			return nil, fmt.Errorf("cluster: shard %q: want name=url[|url...]", part)
		}
		if seen[name] {
			return nil, fmt.Errorf("cluster: duplicate shard name %q", name)
		}
		seen[name] = true
		sh := Shard{Name: name}
		for i, u := range strings.Split(urls, "|") {
			u = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(u), "/"))
			parsed, err := url.Parse(u)
			if err != nil || parsed.Scheme == "" || parsed.Host == "" {
				return nil, fmt.Errorf("cluster: shard %q: bad member URL %q", name, u)
			}
			role := "replica"
			if i == 0 {
				role = "primary"
			}
			sh.Members = append(sh.Members, Member{URL: u, Role: role})
		}
		if len(sh.Members) == 0 {
			return nil, fmt.Errorf("cluster: shard %q has no members", name)
		}
		m.Shards = append(m.Shards, sh)
	}
	if len(m.Shards) == 0 {
		return nil, fmt.Errorf("cluster: shard map has no shards")
	}
	return m, nil
}

// Tail returns the index of the tail (ingest) shard.
func (m *ShardMap) Tail() int { return len(m.Shards) - 1 }

// String renders the map in the flag spelling.
func (m *ShardMap) String() string {
	var b strings.Builder
	for i, sh := range m.Shards {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(sh.Name)
		b.WriteByte('=')
		for j, mem := range sh.Members {
			if j > 0 {
				b.WriteByte('|')
			}
			b.WriteString(mem.URL)
		}
	}
	return b.String()
}
