package cluster

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/server"
	"repro/internal/stream"
)

// The analytics family (EVENTS/PATHS/TREND) is never scattered: the
// router answers every analytics request from its full-timeline mirror,
// byte-identical to a single node holding the whole series, and a shard
// daemon (Partial) refuses analytics outright with the typed 400.

func TestAnalyticsMirrorByteIdentity(t *testing.T) {
	routerURL, refURL, _ := startCluster(t, 3)

	check := func(path string, req any) {
		t.Helper()
		code, refData, _ := postJSON(t, refURL+path, req)
		if code != 200 {
			t.Fatalf("single %s = %d: %s", path, code, refData)
		}
		code, gotData, hdr := postJSON(t, routerURL+path, req)
		if code != 200 {
			t.Fatalf("router %s = %d: %s", path, code, gotData)
		}
		if route := hdr.Get("X-Gt-Route"); route != "mirror" {
			t.Errorf("%s route = %q, want mirror", path, route)
		}
		if b, a := stripElapsed(t, refData), stripElapsed(t, gotData); !bytes.Equal(b, a) {
			t.Errorf("%s diverged:\n single %s\n router %s", path, b, a)
		}
	}

	check("/v1/events", server.EventsRequest{Attrs: []string{"gender"}, Width: 2})
	check("/v1/paths", server.PathsRequest{
		Mode: "fastest", From: []string{"u1"}, To: []string{"u5"},
	})
	check("/v1/trend", server.TrendRequest{Attrs: []string{"gender"}, Kind: "all", Width: 3})

	// The statement forms ride /v1/tgql — same mirror, same bytes. The
	// window splits across the shard cut at t3, which only the mirror's
	// full timeline can answer.
	for _, q := range []string{
		"EVENTS DIST BY gender WIDTH 2",
		"PATHS EARLIEST FROM u1 TO u5 DURING t1..t4",
		"TREND ALL BY gender WIDTH 3",
	} {
		req := server.TGQLRequest{Query: q}
		code, refData, _ := postJSON(t, refURL+"/v1/tgql", req)
		if code != 200 {
			t.Fatalf("single tgql %q = %d: %s", q, code, refData)
		}
		code, gotData, _ := postJSON(t, routerURL+"/v1/tgql", req)
		if code != 200 {
			t.Fatalf("router tgql %q = %d: %s", q, code, gotData)
		}
		if !bytes.Equal(refData, gotData) {
			t.Errorf("tgql %q diverged:\n single %s\n router %s", q, refData, gotData)
		}
	}

	// Compile errors keep their exact single-node envelopes too.
	bad := server.PathsRequest{From: []string{"u1"}, To: []string{"nobody"}}
	refCode, refErr, _ := postJSON(t, refURL+"/v1/paths", bad)
	gotCode, gotErr, _ := postJSON(t, routerURL+"/v1/paths", bad)
	if refCode != gotCode || !bytes.Equal(refErr, gotErr) {
		t.Errorf("error envelope diverged: single %d %s vs router %d %s", refCode, refErr, gotCode, gotErr)
	}
}

// TestShardDaemonRejectsAnalytics builds a shard the way graphtempod
// -shard does (Partial set) and checks analytics never produce a
// shard-local — and therefore wrong — answer.
func TestShardDaemonRejectsAnalytics(t *testing.T) {
	s, err := server.New(server.Config{
		Series: stream.New(attrsFor()...), Logger: quietLogger(),
		ShardName: "s0", Partial: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	for _, p := range testPoints()[:3] {
		if code, data, _ := postJSON(t, ts.URL+"/v1/ingest", p); code != 200 {
			t.Fatalf("ingest %s: %d: %s", p.Label, code, data)
		}
	}

	for _, c := range []struct {
		path string
		req  any
	}{
		{"/v1/events", server.EventsRequest{Attrs: []string{"gender"}}},
		{"/v1/paths", server.PathsRequest{From: []string{"u1"}, To: []string{"u2"}}},
		{"/v1/trend", server.TrendRequest{Attrs: []string{"gender"}}},
		{"/v1/tgql", server.TGQLRequest{Query: "EVENTS DIST BY gender"}},
		{"/v1/explain", server.TGQLRequest{Query: "TREND ALL BY gender WIDTH 2"}},
	} {
		code, data, _ := postJSON(t, ts.URL+c.path, c.req)
		if code != 400 {
			t.Fatalf("%s on shard daemon = %d, want 400: %s", c.path, code, data)
		}
		if !strings.Contains(string(data), `"code":"bad_request"`) ||
			!strings.Contains(string(data), "time-range shard") {
			t.Fatalf("%s: rejection is not the typed envelope: %s", c.path, data)
		}
	}

	// Shard-local statements keep working.
	code, data, _ := postJSON(t, ts.URL+"/v1/tgql",
		server.TGQLRequest{Query: "AGG DIST gender ON UNION(t0, t1)"})
	if code != 200 {
		t.Fatalf("non-analytics tgql on shard daemon = %d: %s", code, data)
	}
}
