package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/server"
)

// MemberHealth is the router's current view of one shard member, built
// from its GET /v1/status probe. Lag is the member's distance behind the
// shard's high-water mark (the max Points observed across the shard's
// members); the primary is normally at 0.
type MemberHealth struct {
	URL      string `json:"url"`
	Role     string `json:"role"`
	Alive    bool   `json:"alive"`
	Draining bool   `json:"draining,omitempty"`
	Points   int    `json:"points"`
	Visible  int    `json:"visible"`
	Txn      int    `json:"txn"`
	Lag      int    `json:"lag"`
	Err      string `json:"err,omitempty"`
}

// health polls every member's /v1/status and maintains the liveness and
// replication-lag view member selection routes by.
type health struct {
	m       *ShardMap
	client  *http.Client
	timeout time.Duration

	mu     sync.Mutex
	states map[string]MemberHealth
}

func newHealth(m *ShardMap, client *http.Client, timeout time.Duration) *health {
	return &health{m: m, client: client, timeout: timeout, states: make(map[string]MemberHealth)}
}

// probe refreshes every member in parallel, then recomputes per-shard lag
// against the shard high-water mark.
func (h *health) probe(ctx context.Context) {
	type res struct {
		url string
		st  MemberHealth
	}
	var wg sync.WaitGroup
	out := make(chan res, 16)
	for _, sh := range h.m.Shards {
		for _, mem := range sh.Members {
			wg.Add(1)
			go func(mem Member) {
				defer wg.Done()
				out <- res{mem.URL, h.probeMember(ctx, mem)}
			}(mem)
		}
	}
	go func() { wg.Wait(); close(out) }()
	fresh := make(map[string]MemberHealth)
	for r := range out {
		fresh[r.url] = r.st
	}
	// Lag is relative to the highest watermark any member of the shard
	// reports; a dead member keeps its last-known points for that purpose.
	for _, sh := range h.m.Shards {
		high := 0
		for _, mem := range sh.Members {
			if st := fresh[mem.URL]; st.Points > high {
				high = st.Points
			}
		}
		for _, mem := range sh.Members {
			st := fresh[mem.URL]
			st.Lag = high - st.Points
			fresh[mem.URL] = st
		}
	}
	h.mu.Lock()
	h.states = fresh
	h.mu.Unlock()
}

func (h *health) probeMember(ctx context.Context, mem Member) MemberHealth {
	st := MemberHealth{URL: mem.URL, Role: mem.Role}
	rctx, cancel := context.WithTimeout(ctx, h.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, mem.URL+"/v1/status", nil)
	if err != nil {
		st.Err = err.Error()
		return st
	}
	resp, err := h.client.Do(req)
	if err != nil {
		st.Err = err.Error()
		return st
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		st.Err = fmt.Sprintf("status %d: %s", resp.StatusCode, data)
		return st
	}
	var sr server.StatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		st.Err = err.Error()
		return st
	}
	st.Alive = true
	st.Draining = sr.Draining
	st.Points = sr.Points
	st.Visible = sr.Visible
	st.Txn = sr.Txn
	return st
}

// run probes on a fixed cadence until ctx is done.
func (h *health) run(ctx context.Context, interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			h.probe(ctx)
		}
	}
}

// member returns the current view of one member URL.
func (h *health) member(url string) MemberHealth {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.states[url]
}

// candidates orders a shard's members for a read: the primary first, then
// replicas, keeping only live, non-draining members within maxLag. When
// nothing qualifies the full member list is returned — the health view
// may be stale, and an actual request is the authoritative probe.
func (h *health) candidates(sh Shard, maxLag int) []Member {
	h.mu.Lock()
	defer h.mu.Unlock()
	var good []Member
	for _, mem := range sh.Members {
		st := h.states[mem.URL]
		if st.Alive && !st.Draining && st.Lag <= maxLag {
			good = append(good, mem)
		}
	}
	if len(good) == 0 {
		return sh.Members
	}
	return good
}
