package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/stream"
)

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// testPoints is a six-point series rich enough to tell exact answers from
// approximate ones: static gender, time-varying publications, nodes that
// come and go, and edges that repeat across the shard boundary. Every
// appearance restates its static attributes (self-contained batches, the
// cluster's ingest contract).
func testPoints() []server.IngestRequest {
	node := func(label, gender, pubs string) server.IngestNode {
		return server.IngestNode{Label: label,
			Static:  map[string]string{"gender": gender},
			Varying: map[string]string{"publications": pubs}}
	}
	e := func(u, v string) server.IngestEdge { return server.IngestEdge{U: u, V: v} }
	return []server.IngestRequest{
		{Label: "t0", Nodes: []server.IngestNode{node("u1", "m", "1"), node("u2", "f", "2")},
			Edges: []server.IngestEdge{e("u1", "u2")}},
		{Label: "t1", Nodes: []server.IngestNode{node("u1", "m", "2"), node("u2", "f", "2"), node("u3", "f", "1")},
			Edges: []server.IngestEdge{e("u1", "u2"), e("u2", "u3")}},
		{Label: "t2", Nodes: []server.IngestNode{node("u2", "f", "3"), node("u3", "f", "1"), node("u4", "m", "1")},
			Edges: []server.IngestEdge{e("u2", "u3"), e("u3", "u4")}},
		{Label: "t3", Nodes: []server.IngestNode{node("u1", "m", "3"), node("u2", "f", "3"), node("u3", "f", "2"), node("u4", "m", "2")},
			Edges: []server.IngestEdge{e("u1", "u2"), e("u3", "u4"), e("u1", "u4")}},
		{Label: "t4", Nodes: []server.IngestNode{node("u1", "m", "3"), node("u2", "f", "1"), node("u5", "f", "1")},
			Edges: []server.IngestEdge{e("u1", "u2"), e("u2", "u5")}},
		{Label: "t5", Nodes: []server.IngestNode{node("u2", "f", "1"), node("u4", "m", "3"), node("u5", "f", "2")},
			Edges: []server.IngestEdge{e("u2", "u5"), e("u4", "u5")}},
	}
}

func postJSON(t *testing.T, url string, v any) (int, []byte, http.Header) {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data, resp.Header
}

// newStreamServer builds a stream-mode server with the given points
// ingested, exposed through an httptest server.
func newStreamServer(t *testing.T, name, role string, pts []server.IngestRequest) *httptest.Server {
	t.Helper()
	s, err := server.New(server.Config{
		Series: stream.New(attrsFor()...), Logger: quietLogger(),
		ShardName: name, Role: role,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	for _, p := range pts {
		if code, data, _ := postJSON(t, ts.URL+"/v1/ingest", p); code != 200 {
			t.Fatalf("ingest %s into %s: %d: %s", p.Label, name, code, data)
		}
	}
	return ts
}

// attrsFor is the fixture schema: one static and one time-varying attribute.
func attrsFor() []core.AttrSpec {
	return []core.AttrSpec{
		{Name: "gender", Kind: core.Static},
		{Name: "publications", Kind: core.TimeVarying},
	}
}

// startCluster splits testPoints at the given cut indices into shards
// (cuts=[3] → shard a: t0..t2, shard b: t3..t5), builds a router over
// them plus a single-node reference with the full series, and returns
// both base URLs.
func startCluster(t *testing.T, cuts ...int) (routerURL, refURL string, rt *Router) {
	t.Helper()
	pts := testPoints()
	ref := newStreamServer(t, "", "", pts)
	bounds := append([]int{0}, cuts...)
	bounds = append(bounds, len(pts))
	var spec []string
	for i := 0; i+1 < len(bounds); i++ {
		name := fmt.Sprintf("s%d", i)
		ts := newStreamServer(t, name, "", pts[bounds[i]:bounds[i+1]])
		spec = append(spec, name+"="+ts.URL)
	}
	m, err := ParseShardMap(strings.Join(spec, ";"))
	if err != nil {
		t.Fatal(err)
	}
	rt, err = New(Config{Map: m, ProbeInterval: 25 * time.Millisecond, Logger: quietLogger()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	waitMirror(t, rt, len(pts))
	rts := httptest.NewServer(rt.Handler())
	t.Cleanup(rts.Close)
	return rts.URL, ref.URL, rt
}

// waitMirror blocks until the router's mirror has replicated n points
// (the tail shard replays in the background).
func waitMirror(t *testing.T, rt *Router, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for rt.mseries.Len() < n {
		if time.Now().After(deadline) {
			t.Fatalf("mirror stuck at %d/%d points", rt.mseries.Len(), n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// aggregate posts an aggregate request and returns the raw graph bytes
// plus the route header.
func aggregate(t *testing.T, base string, req server.AggregateRequest) ([]byte, string) {
	t.Helper()
	code, data, hdr := postJSON(t, base+"/v1/aggregate", req)
	if code != 200 {
		t.Fatalf("aggregate %+v = %d: %s", req, code, data)
	}
	var ar server.AggregateResponse
	if err := json.Unmarshal(data, &ar); err != nil {
		t.Fatal(err)
	}
	return ar.Graph, hdr.Get("X-Gt-Route")
}

func TestParseShardMap(t *testing.T) {
	m, err := ParseShardMap("a=http://h:1|http://h:2; b=http://h:3/")
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Shards) != 2 || m.Tail() != 1 {
		t.Fatalf("shards = %+v", m.Shards)
	}
	if p := m.Shards[0].Primary(); p.URL != "http://h:1" || p.Role != "primary" {
		t.Fatalf("primary = %+v", p)
	}
	if r := m.Shards[0].Members[1]; r.URL != "http://h:2" || r.Role != "replica" {
		t.Fatalf("replica = %+v", r)
	}
	if got := m.Shards[1].Primary().URL; got != "http://h:3" {
		t.Fatalf("trailing slash not trimmed: %q", got)
	}
	for _, bad := range []string{"", "a=", "a=notaurl", "a=http://h:1;a=http://h:2", "=http://h:1"} {
		if _, err := ParseShardMap(bad); err == nil {
			t.Errorf("ParseShardMap(%q) accepted", bad)
		}
	}
}

// TestScatterByteIdentity is the acceptance criterion for the exact
// merge: every aggregate answered through the router — scattered unions,
// single-shard projects, and mirror-served multi-shard projects — is
// byte-identical to the single-node answer, across shard counts, kinds
// and boundary-spanning intervals. Union requests must take the scatter
// path; single-shard projects scatter as one slice; multi-shard projects
// (intersection semantics) fall back to the mirror.
func TestScatterByteIdentity(t *testing.T) {
	iv := func(from, to string) server.IntervalSpec { return server.IntervalSpec{From: from, To: to} }
	cases := []server.AggregateRequest{
		{Op: "project", Interval: iv("t0", "t5"), Attrs: []string{"gender"}},
		{Op: "project", Interval: iv("t1", "t4"), Attrs: []string{"gender"}, Kind: "all"},
		{Op: "project", Interval: iv("t2", "t3"), Attrs: []string{"gender", "publications"}},
		{Op: "project", Interval: iv("t2", ""), Attrs: []string{"publications"}, Kind: "all"},
		{Op: "union", Interval: iv("t0", "t1"), Interval2: iv("t3", "t5"), Attrs: []string{"gender"}},
		{Op: "union", Interval: iv("t0", "t3"), Interval2: iv("t2", "t5"), Attrs: []string{"gender"}, Kind: "all"},
		{Op: "union", Interval: iv("t1", "t2"), Interval2: iv("t2", "t4"), Attrs: []string{"gender", "publications"}},
	}
	for _, cuts := range [][]int{{3}, {2, 4}} {
		routerURL, refURL, _ := startCluster(t, cuts...)
		for _, req := range cases {
			want, _ := aggregate(t, refURL, req)
			got, route := aggregate(t, routerURL, req)
			if req.Op == "union" && route != "scatter" {
				t.Errorf("cuts=%v union %s: route = %q, want scatter", cuts, req.Interval.From, route)
			}
			if !bytes.Equal(want, got) {
				t.Errorf("cuts=%v %+v diverged:\n single %s\n router %s", cuts, req, want, got)
			}
		}
		// Route sanity at this cut set: a single-point project lands in one
		// shard and scatters as one slice.
		_, route := aggregate(t, routerURL, server.AggregateRequest{
			Op: "project", Interval: iv("t2", ""), Attrs: []string{"gender"}})
		if route != "scatter" {
			t.Errorf("cuts=%v single-shard project route = %q, want scatter", cuts, route)
		}
		// A boundary-spanning project is intersection-semantics and must be
		// served by the mirror.
		_, route = aggregate(t, routerURL, server.AggregateRequest{
			Op: "project", Interval: iv("t0", "t5"), Attrs: []string{"gender"}})
		if route != "mirror" {
			t.Errorf("cuts=%v spanning project route = %q, want mirror", cuts, route)
		}
	}
}

// TestMirrorByteIdentity covers the non-decomposable paths: intersection
// and difference aggregates, exploration and TGQL answered by the mirror
// must equal the single-node responses byte for byte (modulo timing).
func TestMirrorByteIdentity(t *testing.T) {
	routerURL, refURL, _ := startCluster(t, 3)
	iv := func(from, to string) server.IntervalSpec { return server.IntervalSpec{From: from, To: to} }
	for _, req := range []server.AggregateRequest{
		{Op: "intersection", Interval: iv("t0", "t2"), Interval2: iv("t3", "t5"), Attrs: []string{"gender"}},
		{Op: "difference", Interval: iv("t0", "t2"), Interval2: iv("t3", "t5"), Attrs: []string{"gender"}, Kind: "all"},
	} {
		want, _ := aggregate(t, refURL, req)
		got, route := aggregate(t, routerURL, req)
		if route != "mirror" {
			t.Errorf("%s: route = %q, want mirror", req.Op, route)
		}
		if !bytes.Equal(want, got) {
			t.Errorf("%s diverged:\n single %s\n router %s", req.Op, want, got)
		}
	}

	exploreReq := server.ExploreRequest{
		Event: "growth", Semantics: "union", Extend: "old", K: 1, Attrs: []string{"gender"},
	}
	code, refData, _ := postJSON(t, refURL+"/v1/explore", exploreReq)
	if code != 200 {
		t.Fatalf("single explore = %d: %s", code, refData)
	}
	code, gotData, hdr := postJSON(t, routerURL+"/v1/explore", exploreReq)
	if code != 200 {
		t.Fatalf("router explore = %d: %s", code, gotData)
	}
	if hdr.Get("X-Gt-Route") != "mirror" {
		t.Errorf("explore route = %q", hdr.Get("X-Gt-Route"))
	}
	if b, a := stripElapsed(t, refData), stripElapsed(t, gotData); !bytes.Equal(b, a) {
		t.Errorf("explore diverged:\n single %s\n router %s", b, a)
	}

	tq := server.TGQLRequest{Query: "AGG DIST gender ON INTERSECT(t0..t2, t3..t5)"}
	code, refData, _ = postJSON(t, refURL+"/v1/tgql", tq)
	if code != 200 {
		t.Fatalf("single tgql = %d: %s", code, refData)
	}
	code, gotData, _ = postJSON(t, routerURL+"/v1/tgql", tq)
	if code != 200 {
		t.Fatalf("router tgql = %d: %s", code, gotData)
	}
	if !bytes.Equal(refData, gotData) {
		t.Errorf("tgql diverged:\n single %s\n router %s", refData, gotData)
	}

	// Canonical error fidelity: an unknown time point produces the exact
	// single-node error envelope through the router.
	bad := server.AggregateRequest{Op: "project", Interval: iv("nope", ""), Attrs: []string{"gender"}}
	refCode, refErr, _ := postJSON(t, refURL+"/v1/aggregate", bad)
	gotCode, gotErr, _ := postJSON(t, routerURL+"/v1/aggregate", bad)
	if refCode != gotCode || !bytes.Equal(refErr, gotErr) {
		t.Errorf("error envelope diverged: single %d %s vs router %d %s", refCode, refErr, gotCode, gotErr)
	}
}

// stripElapsed zeroes the elapsed_ms field of a JSON response.
func stripElapsed(t *testing.T, data []byte) []byte {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	delete(m, "elapsed_ms")
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestReplicaFailover builds a shard with a WAL-fed replica, kills the
// primary, and checks reads keep flowing with byte-identical answers;
// killing the replica too must surface 503 + Retry-After in the unified
// envelope, never a silently wrong answer.
func TestReplicaFailover(t *testing.T) {
	pts := testPoints()
	ref := newStreamServer(t, "", "", pts)

	// Shard a (t0..t2): primary plus a replica that replicates over the
	// real WAL stream. Shard b (t3..t5) is the tail.
	primA := newStreamServer(t, "a", "", pts[:3])
	replSeries := stream.New(attrsFor()...)
	replSrv, err := server.New(server.Config{
		Series: replSeries, Logger: quietLogger(), ShardName: "a", Role: server.RoleReplica,
	})
	if err != nil {
		t.Fatal(err)
	}
	replA := httptest.NewServer(replSrv.Handler())
	t.Cleanup(replA.Close)
	f := &Follower{
		Pick: func() (string, error) { return primA.URL, nil },
		Apply: func(label, before string, snap stream.Snapshot) error {
			if before != "" {
				_, err := replSeries.AppendAt(label, snap, before)
				return err
			}
			return replSeries.Append(label, snap)
		},
		Len: replSeries.Len,
		Log: quietLogger(),
	}
	for replSeries.Len() < 3 {
		if _, err := f.Poll(context.Background()); err != nil {
			t.Fatalf("replica catch-up: %v", err)
		}
	}
	primB := newStreamServer(t, "b", "", pts[3:])

	m, err := ParseShardMap("a=" + primA.URL + "|" + replA.URL + ";b=" + primB.URL)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := New(Config{Map: m, ProbeInterval: 20 * time.Millisecond, Logger: quietLogger()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	rts := httptest.NewServer(rt.Handler())
	t.Cleanup(rts.Close)

	req := server.AggregateRequest{
		Op: "union", Interval: server.IntervalSpec{From: "t0", To: "t2"},
		Interval2: server.IntervalSpec{From: "t3", To: "t5"}, Attrs: []string{"gender"},
	}
	want, _ := aggregate(t, ref.URL, req)
	got, route := aggregate(t, rts.URL, req)
	if route != "scatter" || !bytes.Equal(want, got) {
		t.Fatalf("pre-failover: route=%s\n single %s\n router %s", route, want, got)
	}

	// Kill shard a's primary: the scatter must fail over to the replica
	// (possibly before the health loop notices) and stay byte-identical.
	primA.Close()
	got, route = aggregate(t, rts.URL, req)
	if route != "scatter" {
		t.Errorf("post-failover route = %q", route)
	}
	if !bytes.Equal(want, got) {
		t.Errorf("post-failover diverged:\n single %s\n router %s", want, got)
	}

	// Kill the replica too: shard a has no live member, so the scattered
	// read must shed with 503 + Retry-After in the error envelope.
	replA.Close()
	deadline := time.Now().Add(2 * time.Second)
	for {
		code, data, hdr := postJSON(t, rts.URL+"/v1/aggregate", req)
		if code == http.StatusServiceUnavailable {
			if hdr.Get("Retry-After") == "" {
				t.Errorf("503 without Retry-After")
			}
			var eb struct {
				Error server.ErrorDetail `json:"error"`
			}
			if err := json.Unmarshal(data, &eb); err != nil || eb.Error.Code != "unavailable" {
				t.Errorf("503 envelope = %s", data)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("shard never became unavailable: %d %s", code, data)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// TestIngestThroughRouter routes a write to the tail primary, checks the
// global point-count rewrite, waits for mirror visibility, and verifies a
// query spanning the new point is byte-identical to a single node that
// ingested the same series.
func TestIngestThroughRouter(t *testing.T) {
	routerURL, refURL, rt := startCluster(t, 3)
	extra := server.IngestRequest{
		Label: "t6",
		Nodes: []server.IngestNode{{Label: "u1",
			Static: map[string]string{"gender": "m"}, Varying: map[string]string{"publications": "4"}}},
		Edges: []server.IngestEdge{{U: "u1", V: "u1"}},
	}
	code, data, _ := postJSON(t, routerURL+"/v1/ingest", extra)
	if code != 200 {
		t.Fatalf("routed ingest = %d: %s", code, data)
	}
	var ir server.IngestResponse
	if err := json.Unmarshal(data, &ir); err != nil {
		t.Fatal(err)
	}
	if ir.Points != 7 {
		t.Fatalf("routed ingest points = %d, want global 7", ir.Points)
	}
	// Mirror the write into the reference node and wait for replication.
	if code, data, _ := postJSON(t, refURL+"/v1/ingest", extra); code != 200 {
		t.Fatalf("reference ingest = %d: %s", code, data)
	}
	deadline := time.Now().Add(2 * time.Second)
	for rt.mseries.Len() < 7 {
		if time.Now().After(deadline) {
			t.Fatalf("mirror never reached 7 points (at %d)", rt.mseries.Len())
		}
		time.Sleep(10 * time.Millisecond)
	}
	req := server.AggregateRequest{
		Op: "project", Interval: server.IntervalSpec{From: "t4", To: "t6"}, Attrs: []string{"gender"},
	}
	want, _ := aggregate(t, refURL, req)
	got, route := aggregate(t, routerURL, req)
	if route != "scatter" {
		t.Errorf("route = %q", route)
	}
	if !bytes.Equal(want, got) {
		t.Errorf("post-ingest diverged:\n single %s\n router %s", want, got)
	}

	// A write must never land on a replica: the shard-side guard answers
	// 409 in the envelope.
	replSrv, err := server.New(server.Config{
		Series: stream.New(attrsFor()...), Logger: quietLogger(), ShardName: "x", Role: server.RoleReplica,
	})
	if err != nil {
		t.Fatal(err)
	}
	replTS := httptest.NewServer(replSrv.Handler())
	t.Cleanup(replTS.Close)
	code, data, _ = postJSON(t, replTS.URL+"/v1/ingest", extra)
	if code != http.StatusConflict {
		t.Fatalf("replica ingest = %d: %s", code, data)
	}
}

// TestClusterStatus sanity-checks the control-plane view: pinned starts,
// frozen flags, member health and the mirror watermark.
func TestClusterStatus(t *testing.T) {
	routerURL, _, _ := startCluster(t, 2, 4)
	resp, err := http.Get(routerURL + "/v1/cluster/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var cs ClusterStatus
	if err := json.NewDecoder(resp.Body).Decode(&cs); err != nil {
		t.Fatal(err)
	}
	if len(cs.Shards) != 3 {
		t.Fatalf("shards = %+v", cs.Shards)
	}
	wantStarts := []int{0, 2, 4}
	for i, sh := range cs.Shards {
		if sh.Start != wantStarts[i] {
			t.Errorf("shard %s start = %d, want %d", sh.Name, sh.Start, wantStarts[i])
		}
		if frozen := i != 2; sh.Frozen != frozen {
			t.Errorf("shard %s frozen = %v", sh.Name, sh.Frozen)
		}
		for _, mem := range sh.Members {
			if !mem.Alive || mem.Lag != 0 {
				t.Errorf("member %s: %+v", mem.URL, mem)
			}
		}
	}
	if cs.MirrorPoints != 6 || cs.GlobalPoints != 6 || cs.MirrorLag != 0 {
		t.Errorf("watermarks = %+v", cs)
	}

	var rs RouterStatus
	resp2, err := http.Get(routerURL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if err := json.NewDecoder(resp2.Body).Decode(&rs); err != nil {
		t.Fatal(err)
	}
	if rs.Role != "router" || rs.Points != 6 || rs.Shards != 3 {
		t.Errorf("router status = %+v", rs)
	}
}
