package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"time"

	"repro/internal/storage"
	"repro/internal/stream"
)

// Follower tails an upstream's WAL over GET /v1/wal/stream and applies
// each replicated ingest record in order. It is the one replication
// client in the system: replica daemons run it against their shard
// primary to stay hot, and the router runs one per shard to feed its
// mirror. State lives entirely in the callbacks — the follower itself is
// resumable from nothing but Len(), so a failed poll (including one that
// dies mid-stream after applying a prefix) is retried by simply polling
// again from the new applied count.
type Follower struct {
	// Pick returns the base URL to poll this round. Replicas pin it to
	// their primary; the router's mirror picks any live, caught-up member
	// of the shard so replication survives a primary failure.
	Pick func() (string, error)
	// Apply ingests one replicated time point; before carries the
	// valid-time insertion position of a retroactive record ("" for a tail
	// append). An error stops the current poll; the record is re-fetched on
	// the next one.
	Apply func(label, before string, snap stream.Snapshot) error
	// Len returns the applied record count — the next sequence to request.
	Len func() int
	// WaitMs is the long-poll window passed to the upstream when caught
	// up; 0 polls return immediately.
	WaitMs int
	// Client is the HTTP client; nil selects a default without a global
	// timeout (polls are bounded per-request from WaitMs).
	Client *http.Client
	// Log receives replication lifecycle warnings; nil selects slog.Default.
	Log *slog.Logger
}

func (f *Follower) client() *http.Client {
	if f.Client != nil {
		return f.Client
	}
	return http.DefaultClient
}

func (f *Follower) log() *slog.Logger {
	if f.Log != nil {
		return f.Log
	}
	return slog.Default()
}

// Poll runs one replication round: fetch records from the upstream
// starting at Len() and apply them in order. It returns the number of
// records applied (possibly a non-zero prefix when an error is also
// returned; that prefix is durable progress, not a partial failure).
func (f *Follower) Poll(ctx context.Context) (int, error) {
	base, err := f.Pick()
	if err != nil {
		return 0, err
	}
	from := f.Len()
	url := fmt.Sprintf("%s/v1/wal/stream?from=%d&wait_ms=%d", base, from, f.WaitMs)
	rctx, cancel := context.WithTimeout(ctx, time.Duration(f.WaitMs)*time.Millisecond+10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, err
	}
	resp, err := f.client().Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return 0, fmt.Errorf("wal stream %s: %s: %s", base, resp.Status, bytes.TrimSpace(data))
	}
	applied := 0
	for {
		payload, err := storage.ReadFramedRecord(resp.Body)
		if err == io.EOF {
			return applied, nil
		}
		if err != nil {
			// A frame torn by a connection drop is retried from the new
			// applied count, exactly like a torn WAL tail on disk.
			return applied, fmt.Errorf("wal stream %s: %w", base, err)
		}
		label, before, snap, err := storage.DecodeAnyIngestRecord(payload)
		if err != nil {
			return applied, fmt.Errorf("wal stream %s: %w", base, err)
		}
		if err := f.Apply(label, before, snap); err != nil {
			return applied, fmt.Errorf("apply replicated point %q: %w", label, err)
		}
		applied++
	}
}

// Run polls until ctx is done, long-polling when caught up and backing
// off exponentially (to 2s) on errors so a dead upstream is not hammered.
func (f *Follower) Run(ctx context.Context) {
	backoff := 50 * time.Millisecond
	for ctx.Err() == nil {
		n, err := f.Poll(ctx)
		switch {
		case err != nil:
			if ctx.Err() != nil {
				return
			}
			f.log().Warn("replication poll failed", "applied", n, "err", err)
			select {
			case <-ctx.Done():
				return
			case <-time.After(backoff):
			}
			if backoff *= 2; backoff > 2*time.Second {
				backoff = 2 * time.Second
			}
		case n == 0 && f.WaitMs == 0:
			// No long-poll window: pace the idle loop ourselves.
			select {
			case <-ctx.Done():
				return
			case <-time.After(20 * time.Millisecond):
			}
			backoff = 50 * time.Millisecond
		default:
			backoff = 50 * time.Millisecond
		}
	}
}
