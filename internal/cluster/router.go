package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/plan"
	"repro/internal/server"
	"repro/internal/stream"
)

// Config configures a Router.
type Config struct {
	// Map is the cluster topology, shards in time order.
	Map *ShardMap
	// MaxLag is the maximum replication lag (in time points) a replica may
	// have and still serve reads. 0 (the default) routes only to fully
	// caught-up members.
	MaxLag int
	// ShardTimeout bounds each shard RPC attempt; <= 0 selects 10s.
	ShardTimeout time.Duration
	// RequestTimeout bounds a whole routed request across its retries;
	// <= 0 selects 30s.
	RequestTimeout time.Duration
	// ProbeInterval is the health poll cadence; <= 0 selects 250ms.
	ProbeInterval time.Duration
	// CacheBytes sizes the mirror server's materialization cache.
	CacheBytes int64
	// Client is the HTTP client for shard RPCs, health probes and
	// replication; nil selects a default without a global timeout.
	Client *http.Client
	// Logger receives lifecycle and access logs; nil selects slog.Default.
	Logger *slog.Logger
}

// Router fronts the shard processes: it scatters decomposable aggregates
// into per-shard partials and merges them exactly, answers everything
// else from its mirror (a full WAL-replicated copy of every shard served
// by an embedded single-node server), forwards ingests to the tail
// shard's primary, and fails reads over to caught-up replicas.
type Router struct {
	cfg    Config
	log    *slog.Logger
	client *http.Client
	health *health
	mux    *http.ServeMux
	reg    *metrics.Registry

	// The mirror: the concatenation of every shard's stream in shard
	// (= time) order, advanced by the tail follower. applyMu serializes
	// appends; starts[i] is the global index of shard i's first point and
	// is fixed at startup for frozen shards.
	mseries *stream.Series
	msrv    *server.Server
	applyMu sync.Mutex
	starts  []int
	byName  map[string]int // shard name -> index

	// label -> global index cache over the mirror timeline.
	tlMu     sync.Mutex
	tlLabels []string
	tlIndex  map[string]int
	tlN      int

	cancel   context.CancelFunc
	wg       sync.WaitGroup
	draining bool
	drainMu  sync.Mutex

	routeMu     sync.Mutex
	routeCounts map[string]*metrics.Counter
	failovers   metrics.Counter
	unavailable metrics.Counter
}

// shardError is a routed request's terminal error: the HTTP status the
// shard tier produced (or 503 when no member answered) and the message to
// surface. 4xx statuses are authoritative client errors; everything else
// is retried across members first.
type shardError struct {
	status int
	msg    string
}

func (e *shardError) Error() string { return e.msg }

// New builds the router: it probes every shard for schema and watermarks,
// replays the frozen shards into the mirror, starts the tail follower and
// health loop, and mounts the routes. It fails fast when a shard is
// unreachable or the shards disagree on the attribute schema.
func New(cfg Config) (*Router, error) {
	if cfg.Map == nil || len(cfg.Map.Shards) == 0 {
		return nil, fmt.Errorf("cluster: no shard map")
	}
	if cfg.ShardTimeout <= 0 {
		cfg.ShardTimeout = 10 * time.Second
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 250 * time.Millisecond
	}
	log := cfg.Logger
	if log == nil {
		log = slog.Default()
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	rt := &Router{
		cfg:         cfg,
		log:         log,
		client:      client,
		health:      newHealth(cfg.Map, client, cfg.ShardTimeout),
		mux:         http.NewServeMux(),
		reg:         metrics.NewRegistry(),
		byName:      make(map[string]int),
		routeCounts: make(map[string]*metrics.Counter),
	}
	for i, sh := range cfg.Map.Shards {
		rt.byName[sh.Name] = i
	}

	ctx, cancel := context.WithCancel(context.Background())
	rt.cancel = cancel
	rt.health.probe(ctx)

	if err := rt.buildMirror(ctx); err != nil {
		cancel()
		return nil, err
	}

	rt.wg.Add(2)
	go func() { defer rt.wg.Done(); rt.health.run(ctx, cfg.ProbeInterval) }()
	tail := cfg.Map.Tail()
	follower := rt.shardFollower(tail)
	follower.WaitMs = 1000
	go func() { defer rt.wg.Done(); follower.Run(ctx) }()

	rt.registerMetrics()
	rt.routes()
	log.Info("router ready", "shards", len(cfg.Map.Shards), "points", rt.mseries.Len(),
		"frozen_points", rt.starts[tail])
	return rt, nil
}

// buildMirror pins the shard schema and boundaries and replays every
// frozen shard's stream into the mirror series, in shard order.
func (rt *Router) buildMirror(ctx context.Context) error {
	shards := rt.cfg.Map.Shards
	var attrs []core.AttrSpec
	var attrSig string
	points := make([]int, len(shards))
	for i, sh := range shards {
		st, err := rt.anyStatus(ctx, sh)
		if err != nil {
			return fmt.Errorf("cluster: shard %s: %w", sh.Name, err)
		}
		if st.Mode == "static" {
			return fmt.Errorf("cluster: shard %s runs in static mode and cannot stream its WAL", sh.Name)
		}
		var sig strings.Builder
		var as []core.AttrSpec
		for _, a := range st.Attrs {
			kind := core.Static
			if a.Kind == core.TimeVarying.String() {
				kind = core.TimeVarying
			}
			as = append(as, core.AttrSpec{Name: a.Name, Kind: kind})
			sig.WriteString(a.Name + "\x00" + a.Kind + "\x00")
		}
		if i == 0 {
			attrs, attrSig = as, sig.String()
		} else if sig.String() != attrSig {
			return fmt.Errorf("cluster: shard %s attribute schema %v disagrees with shard %s",
				sh.Name, st.Attrs, shards[0].Name)
		}
		points[i] = st.Points
	}
	rt.mseries = stream.New(attrs...)
	rt.starts = make([]int, len(shards))
	for i := range shards {
		rt.starts[i] = rt.mseries.Len()
		if i == rt.cfg.Map.Tail() {
			break // the tail is replayed by the background follower
		}
		pinned := points[i]
		f := rt.shardFollower(i)
		for rt.mseries.Len()-rt.starts[i] < pinned {
			n, err := f.Poll(ctx)
			if err != nil {
				return fmt.Errorf("cluster: replaying frozen shard %s: %w", shards[i].Name, err)
			}
			if n == 0 {
				return fmt.Errorf("cluster: frozen shard %s stalled at %d/%d points",
					shards[i].Name, rt.mseries.Len()-rt.starts[i], pinned)
			}
		}
		if got := rt.mseries.Len() - rt.starts[i]; got != pinned {
			return fmt.Errorf("cluster: frozen shard %s grew during replay (%d points, pinned %d); only the tail shard may ingest",
				shards[i].Name, got, pinned)
		}
	}
	srv, err := server.New(server.Config{
		Series:     rt.mseries,
		CacheBytes: rt.cfg.CacheBytes,
		Logger:     rt.log.With("component", "mirror"),
		ShardName:  "mirror",
		Role:       server.RoleReplica,
	})
	if err != nil {
		return err
	}
	rt.msrv = srv
	return nil
}

// shardFollower builds the replication client that feeds shard i's
// records into the mirror. Frozen shards replay once at startup; the tail
// shard's follower runs for the router's lifetime, surviving primary
// failure by picking any live member.
func (rt *Router) shardFollower(i int) *Follower {
	sh := rt.cfg.Map.Shards[i]
	return &Follower{
		Pick: func() (string, error) {
			cands := rt.health.candidates(sh, rt.cfg.MaxLag)
			return cands[0].URL, nil
		},
		Apply: func(label, before string, snap stream.Snapshot) error {
			rt.applyMu.Lock()
			defer rt.applyMu.Unlock()
			if before != "" {
				_, err := rt.mseries.AppendAt(label, snap, before)
				return err
			}
			return rt.mseries.Append(label, snap)
		},
		Len: func() int {
			rt.applyMu.Lock()
			defer rt.applyMu.Unlock()
			return rt.mseries.Len() - rt.starts[i]
		},
		Client: rt.client,
		Log:    rt.log.With("shard", sh.Name),
	}
}

// anyStatus fetches /v1/status from the first answering member of a shard.
func (rt *Router) anyStatus(ctx context.Context, sh Shard) (*server.StatusResponse, error) {
	var lastErr error
	for _, mem := range sh.Members {
		rctx, cancel := context.WithTimeout(ctx, rt.cfg.ShardTimeout)
		req, err := http.NewRequestWithContext(rctx, http.MethodGet, mem.URL+"/v1/status", nil)
		if err != nil {
			cancel()
			return nil, err
		}
		resp, err := rt.client.Do(req)
		if err != nil {
			cancel()
			lastErr = err
			continue
		}
		var st server.StatusResponse
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		cancel()
		if err != nil {
			lastErr = err
			continue
		}
		return &st, nil
	}
	return nil, fmt.Errorf("no member answered /v1/status: %w", lastErr)
}

// Handler returns the router's root handler.
func (rt *Router) Handler() http.Handler { return rt.mux }

// Registry returns the router's own metrics registry (the mirror server
// keeps its own; /metrics renders both).
func (rt *Router) Registry() *metrics.Registry { return rt.reg }

// BeginDrain flips /readyz to failing and drains the mirror.
func (rt *Router) BeginDrain() {
	rt.drainMu.Lock()
	rt.draining = true
	rt.drainMu.Unlock()
	rt.msrv.BeginDrain()
}

func (rt *Router) isDraining() bool {
	rt.drainMu.Lock()
	defer rt.drainMu.Unlock()
	return rt.draining
}

// Close stops the health and replication loops.
func (rt *Router) Close() {
	rt.cancel()
	rt.wg.Wait()
}

// ---- timeline -----------------------------------------------------------

// timeline returns the mirror's global label list and label->index map,
// refreshed when replication has appended points.
func (rt *Router) timeline() ([]string, map[string]int) {
	rt.tlMu.Lock()
	defer rt.tlMu.Unlock()
	if n := rt.mseries.Len(); n != rt.tlN {
		rt.tlLabels = rt.mseries.Labels()
		rt.tlIndex = make(map[string]int, n)
		for i, l := range rt.tlLabels {
			rt.tlIndex[l] = i
		}
		rt.tlN = n
	}
	return rt.tlLabels, rt.tlIndex
}

// globalHigh is the cluster's high-water point count: the frozen prefix
// plus the tail shard's highest member watermark (which may be ahead of
// the mirror by the replication lag).
func (rt *Router) globalHigh() int {
	tail := rt.cfg.Map.Tail()
	high := 0
	for _, mem := range rt.cfg.Map.Shards[tail].Members {
		if st := rt.health.member(mem.URL); st.Points > high {
			high = st.Points
		}
	}
	if applied := rt.mseries.Len() - rt.starts[tail]; applied > high {
		high = applied
	}
	return rt.starts[tail] + high
}

// mirrorLag is how many points the mirror is behind the cluster
// high-water mark; mirror-served reads are stale by at most this much.
func (rt *Router) mirrorLag() int {
	if lag := rt.globalHigh() - rt.mseries.Len(); lag > 0 {
		return lag
	}
	return 0
}

// ---- routes -------------------------------------------------------------

func (rt *Router) routes() {
	rt.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	rt.mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if rt.isDraining() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		// ?gen=N waits on the GLOBAL point count reaching N in the mirror,
		// so ingest clients can poll routed writes becoming readable.
		if q := r.URL.Query().Get("gen"); q != "" {
			want, err := strconv.Atoi(q)
			if err != nil {
				http.Error(w, "gen must be an integer", http.StatusBadRequest)
				return
			}
			if n := rt.mseries.Len(); n < want {
				http.Error(w, fmt.Sprintf("mirror at %d points, waiting for %d", n, want),
					http.StatusServiceUnavailable)
				return
			}
		}
		fmt.Fprintln(w, "ready")
	})
	rt.mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		rt.reg.WritePrometheus(w)
		rt.msrv.Registry().WritePrometheus(w)
	})
	rt.mux.HandleFunc("POST /v1/aggregate", rt.handleAggregate)
	rt.mux.HandleFunc("POST /v1/ingest", rt.handleIngest)
	rt.mux.HandleFunc("GET /v1/status", rt.handleStatus)
	rt.mux.HandleFunc("GET /v1/cluster/status", rt.handleClusterStatus)
	// Everything non-decomposable is the mirror's: it is a full replica
	// with the complete single-node engine behind it, so exploration,
	// TGQL, explain, partials, the global timeline and even a global WAL
	// stream (for chained followers) come for free and byte-identical.
	// The analytics family (EVENTS/PATHS/TREND) is never scattered: the
	// statements traverse the whole timeline, so shard-local partials
	// cannot compose an answer. The mirror holds every point and answers
	// byte-identically to a single node.
	for _, route := range []string{
		"POST /v1/explore", "POST /v1/tgql", "POST /v1/explain",
		"POST /v1/partial/aggregate", "GET /v1/labels", "GET /v1/wal/stream",
		"POST /v1/events", "POST /v1/paths", "POST /v1/trend",
	} {
		rt.mux.HandleFunc(route, func(w http.ResponseWriter, r *http.Request) {
			rt.toMirror(w, r, nil)
		})
	}
}

func (rt *Router) registerMetrics() {
	rt.reg.RegisterCounter("graphtempo_router_failovers_total",
		"Shard requests retried against another member after a failure.", &rt.failovers)
	rt.reg.RegisterCounter("graphtempo_router_unavailable_total",
		"Requests shed with 503 because a shard had no live member.", &rt.unavailable)
	rt.reg.GaugeFunc("graphtempo_router_mirror_lag_points",
		"Points the mirror is behind the cluster high-water mark.",
		func() float64 { return float64(rt.mirrorLag()) })
	rt.reg.GaugeFunc("graphtempo_router_points",
		"Global time points applied to the mirror.",
		func() float64 { return float64(rt.mseries.Len()) })
	for _, sh := range rt.cfg.Map.Shards {
		for _, mem := range sh.Members {
			mem := mem
			rt.reg.GaugeFunc("graphtempo_router_member_up",
				"1 when the member's last health probe succeeded.",
				func() float64 {
					if rt.health.member(mem.URL).Alive {
						return 1
					}
					return 0
				},
				metrics.Label{Key: "shard", Value: sh.Name},
				metrics.Label{Key: "url", Value: mem.URL})
		}
	}
}

// routeCounter counts answered requests by serving route
// (scatter / mirror / ingest).
func (rt *Router) routeCounter(route string) *metrics.Counter {
	rt.routeMu.Lock()
	defer rt.routeMu.Unlock()
	c, ok := rt.routeCounts[route]
	if !ok {
		c = rt.reg.Counter("graphtempo_router_requests_total",
			"Requests answered by serving route.",
			metrics.Label{Key: "route", Value: route})
		rt.routeCounts[route] = c
	}
	return c
}

// toMirror delegates a request to the embedded mirror server, replaying
// the already-consumed body when the routing decision had to read it.
func (rt *Router) toMirror(w http.ResponseWriter, r *http.Request, body []byte) {
	rt.routeCounter("mirror").Inc()
	w.Header().Set("X-Gt-Route", "mirror")
	w.Header().Set("X-Gt-Lag", strconv.Itoa(rt.mirrorLag()))
	if body != nil {
		r = r.Clone(r.Context())
		r.Body = io.NopCloser(bytes.NewReader(body))
		r.ContentLength = int64(len(body))
	}
	rt.msrv.Handler().ServeHTTP(w, r)
}

// readBody slurps the request body (the routing decision needs it, and a
// mirror fallback must be able to replay it).
func (rt *Router) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 64<<20))
	if err != nil {
		server.WriteError(w, http.StatusBadRequest, fmt.Errorf("reading request body: %w", err))
		return nil, false
	}
	return body, true
}

// ---- aggregate routing --------------------------------------------------

func (rt *Router) handleAggregate(w http.ResponseWriter, r *http.Request) {
	body, ok := rt.readBody(w, r)
	if !ok {
		return
	}
	var req server.AggregateRequest
	if err := json.Unmarshal(body, &req); err != nil {
		rt.toMirror(w, r, body) // the mirror produces the canonical 400
		return
	}
	if req.AsOf != 0 {
		// Time travel never scatters: the shards serve their heads only,
		// while the mirror holds the full global transaction journal and
		// reconstructs any AS OF position from it.
		rt.toMirror(w, r, body)
		return
	}
	slices, ok := rt.slicesFor(req)
	if !ok {
		// Non-decomposable (intersection/difference, explicit point sets)
		// or not resolvable against the pinned timeline: the mirror is the
		// exactness backstop for all of it, errors included.
		rt.toMirror(w, r, body)
		return
	}
	p, err := plan.CompileScatter(plan.ScatterQuery{
		Op: req.Op, Attrs: req.Attrs, Kind: req.Kind, Workers: req.Workers, Slices: slices,
	}, rt)
	if err != nil {
		rt.toMirror(w, r, body)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), rt.cfg.RequestTimeout)
	defer cancel()
	start := time.Now()
	res, err := p.Execute(ctx)
	if err != nil {
		rt.writeRoutedError(w, err)
		return
	}
	raw, err := json.Marshal(res.Merged)
	if err != nil {
		server.WriteError(w, http.StatusInternalServerError, err)
		return
	}
	rt.routeCounter("scatter").Inc()
	w.Header().Set("X-Gt-Route", "scatter")
	w.Header().Set("X-Gt-Shards", strconv.Itoa(len(slices)))
	writeJSON(w, server.AggregateResponse{
		Source:    fmt.Sprintf("scatter(%d)", len(slices)),
		ElapsedMs: float64(time.Since(start).Microseconds()) / 1000,
		Graph:     raw,
	})
}

// slicesFor decides whether an aggregate decomposes across the shards
// and, if so, clips its interval operand(s) to each shard's time range.
// Union aggregates decompose fully: presence-anywhere over a point set is
// exact under per-shard union merge (DIST entity sets union, ALL weights
// sum over the disjoint shard pieces). Project has intersection semantics
// — an entity must appear in EVERY point of the interval — which does not
// merge by union, so it scatters only when the whole interval lands in
// one shard (a single partial merges as the identity). ok=false means
// "send it to the mirror" — everything else, explicit point sets, and
// anything that does not resolve against the mirror timeline (so error
// messages stay canonical).
func (rt *Router) slicesFor(req server.AggregateRequest) ([]plan.ShardSlice, bool) {
	if req.Op != "project" && req.Op != "union" {
		return nil, false
	}
	if len(req.Interval.Points) > 0 || len(req.Interval2.Points) > 0 {
		return nil, false
	}
	if req.Interval.From == "" {
		return nil, false
	}
	labels, index := rt.timeline()
	resolve := func(sp server.IntervalSpec) (int, int, bool) {
		lo, ok := index[sp.From]
		if !ok {
			return 0, 0, false
		}
		hi := lo
		if sp.To != "" {
			if hi, ok = index[sp.To]; !ok {
				return 0, 0, false
			}
		}
		return lo, hi, hi >= lo
	}
	lo, hi, ok := resolve(req.Interval)
	if !ok {
		return nil, false
	}
	blo, bhi := -1, -1
	if req.Op == "union" {
		if req.Interval2.From == "" {
			return nil, false
		}
		if blo, bhi, ok = resolve(req.Interval2); !ok {
			return nil, false
		}
	} else if req.Interval2.From != "" || req.Interval2.To != "" {
		return nil, false
	}
	clip := func(qlo, qhi, s, e int) (int, int) {
		if qlo < 0 {
			return -1, -1
		}
		f, t := max(qlo, s), min(qhi, e-1)
		if f > t {
			return -1, -1
		}
		return f, t
	}
	n := len(labels)
	var slices []plan.ShardSlice
	for i, sh := range rt.cfg.Map.Shards {
		s, e := rt.starts[i], n
		if i+1 < len(rt.starts) {
			e = rt.starts[i+1]
		}
		aF, aT := clip(lo, hi, s, e)
		bF, bT := clip(blo, bhi, s, e)
		switch {
		case req.Op == "project":
			if aF >= 0 {
				slices = append(slices, plan.ShardSlice{Shard: sh.Name, Op: "project",
					AFrom: labels[aF], ATo: labels[aT]})
			}
		case aF >= 0 && bF >= 0:
			slices = append(slices, plan.ShardSlice{Shard: sh.Name, Op: "union",
				AFrom: labels[aF], ATo: labels[aT], BFrom: labels[bF], BTo: labels[bT]})
		case aF >= 0:
			// One operand piece: union(A,A) is presence-anywhere over the
			// piece (union point sets dedupe), keeping union semantics —
			// "project" would demand presence in every point instead.
			slices = append(slices, plan.ShardSlice{Shard: sh.Name, Op: "union",
				AFrom: labels[aF], ATo: labels[aT], BFrom: labels[aF], BTo: labels[aT]})
		case bF >= 0:
			slices = append(slices, plan.ShardSlice{Shard: sh.Name, Op: "union",
				AFrom: labels[bF], ATo: labels[bT], BFrom: labels[bF], BTo: labels[bT]})
		}
	}
	if req.Op == "project" && len(slices) > 1 {
		return nil, false // intersection semantics: multi-shard project is the mirror's
	}
	return slices, len(slices) > 0
}

// Partial implements plan.Scatterer: execute one shard slice as a
// POST /v1/partial/aggregate against the slice's shard, with member
// failover.
func (rt *Router) Partial(ctx context.Context, slice plan.ShardSlice, attrs []string, kind string, workers int) (*plan.PartialResult, error) {
	i, ok := rt.byName[slice.Shard]
	if !ok {
		return nil, fmt.Errorf("cluster: unknown shard %q", slice.Shard)
	}
	req := server.AggregateRequest{
		Op:       slice.Op,
		Interval: server.IntervalSpec{From: slice.AFrom, To: slice.ATo},
		Attrs:    attrs,
		Kind:     kind,
		Workers:  workers,
	}
	if slice.BFrom != "" {
		req.Interval2 = server.IntervalSpec{From: slice.BFrom, To: slice.BTo}
	}
	var resp server.PartialAggregateResponse
	if err := rt.doShard(ctx, i, "/v1/partial/aggregate", req, &resp); err != nil {
		return nil, err
	}
	if resp.Partial != nil {
		resp.Partial.Source = slice.Shard + ":" + resp.Partial.Source
	}
	return resp.Partial, nil
}

// doShard posts a JSON request to a shard, trying its members in
// candidate order (primary, then caught-up replicas, with a short
// backoff between attempts). 4xx answers are authoritative and returned
// immediately; transport errors, 5xx and 429 fail over to the next
// member. When every member fails the result is a 503-mapped shardError.
func (rt *Router) doShard(ctx context.Context, shard int, path string, in, out any) error {
	sh := rt.cfg.Map.Shards[shard]
	payload, err := json.Marshal(in)
	if err != nil {
		return err
	}
	var lastErr error
	for attempt, mem := range rt.health.candidates(sh, rt.cfg.MaxLag) {
		if attempt > 0 {
			rt.failovers.Inc()
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(time.Duration(attempt) * 50 * time.Millisecond):
			}
		}
		actx, cancel := context.WithTimeout(ctx, rt.cfg.ShardTimeout)
		status, data, err := rt.post(actx, mem.URL+path, payload)
		cancel()
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			lastErr = fmt.Errorf("%s: %w", mem.URL, err)
			continue
		}
		if status == http.StatusOK {
			return json.Unmarshal(data, out)
		}
		msg := envelopeMessage(data, status)
		if status >= 400 && status < 500 && status != http.StatusTooManyRequests {
			return &shardError{status: status, msg: msg}
		}
		lastErr = fmt.Errorf("%s: status %d: %s", mem.URL, status, msg)
	}
	return &shardError{
		status: http.StatusServiceUnavailable,
		msg:    fmt.Sprintf("shard %s has no live member: %v", sh.Name, lastErr),
	}
}

func (rt *Router) post(ctx context.Context, url string, body []byte) (int, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := rt.client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 256<<20))
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, data, nil
}

// envelopeMessage extracts the message from a shard's JSON error
// envelope, falling back to the raw body.
func envelopeMessage(data []byte, status int) string {
	var eb struct {
		Error server.ErrorDetail `json:"error"`
	}
	if err := json.Unmarshal(data, &eb); err == nil && eb.Error.Message != "" {
		return eb.Error.Message
	}
	return fmt.Sprintf("status %d: %s", status, bytes.TrimSpace(data))
}

// writeRoutedError maps a scatter execution error onto the wire: shard
// 4xx pass through, unavailability becomes 503 + Retry-After, deadlines
// become 504 — always in the unified error envelope.
func (rt *Router) writeRoutedError(w http.ResponseWriter, err error) {
	var se *shardError
	if errors.As(err, &se) {
		if se.status >= 500 || se.status == http.StatusTooManyRequests {
			rt.unavailable.Inc()
			w.Header().Set("Retry-After", "1")
			server.WriteError(w, http.StatusServiceUnavailable, errors.New(se.msg))
			return
		}
		server.WriteError(w, se.status, errors.New(se.msg))
		return
	}
	if errors.Is(err, context.DeadlineExceeded) {
		server.WriteError(w, http.StatusGatewayTimeout, err)
		return
	}
	server.WriteError(w, http.StatusInternalServerError, err)
}

// ---- ingest -------------------------------------------------------------

// handleIngest forwards the write to the tail shard's primary — never a
// replica — and rewrites the shard-local point counts in the response to
// global ones. A dead primary means the write is refused with 503; the
// cluster never silently promotes a writer.
func (rt *Router) handleIngest(w http.ResponseWriter, r *http.Request) {
	body, ok := rt.readBody(w, r)
	if !ok {
		return
	}
	tail := rt.cfg.Map.Tail()
	primary := rt.cfg.Map.Shards[tail].Primary()
	ctx, cancel := context.WithTimeout(r.Context(), rt.cfg.RequestTimeout)
	defer cancel()
	var status int
	var data []byte
	var err error
	for attempt := 0; attempt < 2; attempt++ {
		if attempt > 0 {
			rt.failovers.Inc()
			select {
			case <-ctx.Done():
			case <-time.After(50 * time.Millisecond):
			}
		}
		actx, acancel := context.WithTimeout(ctx, rt.cfg.ShardTimeout)
		status, data, err = rt.post(actx, primary.URL+"/v1/ingest", body)
		acancel()
		if err == nil {
			break
		}
	}
	if err != nil {
		rt.unavailable.Inc()
		w.Header().Set("Retry-After", "1")
		server.WriteError(w, http.StatusServiceUnavailable,
			fmt.Errorf("tail shard %s primary is unreachable: %w", rt.cfg.Map.Shards[tail].Name, err))
		return
	}
	if status != http.StatusOK {
		if status >= 500 {
			rt.unavailable.Inc()
			w.Header().Set("Retry-After", "1")
			server.WriteError(w, http.StatusServiceUnavailable, errors.New(envelopeMessage(data, status)))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		w.Write(data)
		return
	}
	var ir server.IngestResponse
	if err := json.Unmarshal(data, &ir); err != nil {
		server.WriteError(w, http.StatusInternalServerError, fmt.Errorf("bad shard ingest response: %w", err))
		return
	}
	ir.Points += rt.starts[tail]
	ir.Visible += rt.starts[tail]
	// The shard acked its local transaction sequence; the mirror's global
	// journal has the frozen prefix in front, so the global AS OF handle is
	// offset by the tail shard's start.
	ir.Txn += rt.starts[tail]
	rt.routeCounter("ingest").Inc()
	writeJSON(w, ir)
}

// ---- status -------------------------------------------------------------

// RouterStatus is the router's GET /v1/status body.
type RouterStatus struct {
	Build     string `json:"build"`
	Role      string `json:"role"` // always "router"
	Shards    int    `json:"shards"`
	Points    int    `json:"points"`     // applied to the mirror
	Txn       int    `json:"txn"`        // mirror transaction watermark (global AS OF bound)
	HighWater int    `json:"high_water"` // cluster-wide ingested points
	MirrorLag int    `json:"mirror_lag"`
	Draining  bool   `json:"draining"`
}

func (rt *Router) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, RouterStatus{
		Build:     server.BuildString(),
		Role:      "router",
		Shards:    len(rt.cfg.Map.Shards),
		Points:    rt.mseries.Len(),
		Txn:       rt.mseries.Txn(),
		HighWater: rt.globalHigh(),
		MirrorLag: rt.mirrorLag(),
		Draining:  rt.isDraining(),
	})
}

// ShardStatus is one shard's entry in GET /v1/cluster/status: its pinned
// global range start, high-water point count and the live member view.
type ShardStatus struct {
	Name    string         `json:"name"`
	Start   int            `json:"start"`
	Points  int            `json:"points"`
	Frozen  bool           `json:"frozen"`
	Members []MemberHealth `json:"members"`
}

// ClusterStatus is the GET /v1/cluster/status body: the full topology,
// member health and replication watermarks.
type ClusterStatus struct {
	Shards       []ShardStatus `json:"shards"`
	GlobalPoints int           `json:"global_points"`
	MirrorPoints int           `json:"mirror_points"`
	// MirrorTxn is the mirror's transaction watermark: the highest global
	// AS OF position the router can currently answer.
	MirrorTxn int `json:"mirror_txn"`
	MirrorLag int `json:"mirror_lag"`
}

func (rt *Router) handleClusterStatus(w http.ResponseWriter, r *http.Request) {
	tail := rt.cfg.Map.Tail()
	out := ClusterStatus{
		GlobalPoints: rt.globalHigh(),
		MirrorPoints: rt.mseries.Len(),
		MirrorTxn:    rt.mseries.Txn(),
		MirrorLag:    rt.mirrorLag(),
	}
	for i, sh := range rt.cfg.Map.Shards {
		ss := ShardStatus{Name: sh.Name, Start: rt.starts[i], Frozen: i != tail}
		for _, mem := range sh.Members {
			st := rt.health.member(mem.URL)
			st.URL, st.Role = mem.URL, mem.Role // filled even before the first probe lands
			if st.Points > ss.Points {
				ss.Points = st.Points
			}
			ss.Members = append(ss.Members, st)
		}
		out.Shards = append(out.Shards, ss)
	}
	writeJSON(w, out)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
