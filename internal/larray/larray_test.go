package larray

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/gtest"
	"repro/internal/ops"
)

func TestFromGraphMatchesTable2(t *testing.T) {
	ga := FromGraph(core.PaperExample())
	if got, _ := ga.V.Cell("u1", "t2"); got != "0" {
		t.Errorf("V[u1,t2] = %q, want 0", got)
	}
	if got, _ := ga.V.Cell("u2", "t1"); got != "1" {
		t.Errorf("V[u2,t1] = %q, want 1", got)
	}
	if got, _ := ga.S.Cell("u4", "gender"); got != "f" {
		t.Errorf("S[u4] = %q, want f", got)
	}
	if got, _ := ga.A["publications"].Cell("u1", "t2"); got != "-" {
		t.Errorf("A[u1,t2] = %q, want -", got)
	}
	if got, _ := ga.A["publications"].Cell("u4", "t0"); got != "2" {
		t.Errorf("A[u4,t0] = %q, want 2", got)
	}
	if got, _ := ga.E.Cell("u1|u3", "t0"); got != "1" {
		t.Errorf("E[u1|u3,t0] = %q, want 1", got)
	}
}

func TestArrayBasics(t *testing.T) {
	a := NewArray("x", "y")
	a.AddRow("r1", "1", "2")
	a.AddRow("r2", "3", "4")
	if a.NumRows() != 2 {
		t.Fatalf("NumRows = %d", a.NumRows())
	}
	if _, ok := a.Cell("r3", "x"); ok {
		t.Error("missing row should not be found")
	}
	if _, ok := a.Cell("r1", "z"); ok {
		t.Error("missing column should not be found")
	}
	r := a.Restrict("y")
	if got, _ := r.Cell("r2", "y"); got != "4" {
		t.Errorf("restricted cell = %q", got)
	}
	if len(r.ColLabels) != 1 {
		t.Errorf("restricted cols = %v", r.ColLabels)
	}
}

func TestArrayPanics(t *testing.T) {
	a := NewArray("x")
	a.AddRow("r", "1")
	for _, fn := range []func(){
		func() { a.AddRow("r", "2") },      // duplicate label
		func() { a.AddRow("s", "1", "2") }, // wrong arity
		func() { a.Restrict("nope") },      // unknown column
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestUnionAlgorithm1(t *testing.T) {
	g := core.PaperExample()
	tl := g.Timeline()
	ga := FromGraph(g)
	u := ga.Union(tl.Point(0), tl.Point(1))
	if u.V.NumRows() != 4 {
		t.Errorf("union nodes = %d, want 4", u.V.NumRows())
	}
	if u.E.NumRows() != 4 {
		t.Errorf("union edges = %d, want 4", u.E.NumRows())
	}
	if len(u.V.ColLabels) != 2 {
		t.Errorf("union cols = %v, want [t0 t1]", u.V.ColLabels)
	}
	if _, ok := u.V.Row("u5"); ok {
		t.Error("u5 should not be in union of (t0,t1)")
	}
}

func TestIntersectionArrays(t *testing.T) {
	g := core.PaperExample()
	tl := g.Timeline()
	i := FromGraph(g).Intersection(tl.Point(0), tl.Point(1))
	if i.V.NumRows() != 3 {
		t.Errorf("intersection nodes = %d, want 3 (u1,u2,u4)", i.V.NumRows())
	}
	if i.E.NumRows() != 2 {
		t.Errorf("intersection edges = %d, want 2", i.E.NumRows())
	}
}

func TestDifferenceArrays(t *testing.T) {
	g := core.PaperExample()
	tl := g.Timeline()
	d := FromGraph(g).Difference(tl.Point(0), tl.Point(1))
	if d.E.NumRows() != 1 {
		t.Errorf("difference edges = %d, want 1 (u1|u3)", d.E.NumRows())
	}
	if _, ok := d.E.Row("u1|u3"); !ok {
		t.Error("u1|u3 should be the deleted edge")
	}
	// u1 kept as endpoint, u3 as vanished node.
	if d.V.NumRows() != 2 {
		t.Errorf("difference nodes = %d, want 2", d.V.NumRows())
	}
	if len(d.V.ColLabels) != 1 || d.V.ColLabels[0] != "t0" {
		t.Errorf("difference restricted to %v, want [t0]", d.V.ColLabels)
	}
}

func TestAggregateFig3d(t *testing.T) {
	g := core.PaperExample()
	tl := g.Timeline()
	u := FromGraph(g).Union(tl.Point(0), tl.Point(1))
	dist := u.Aggregate([]string{"gender", "publications"}, true)
	if dist.Nodes["f,1"] != 3 {
		t.Errorf("DIST w(f,1) = %d, want 3", dist.Nodes["f,1"])
	}
	all := u.Aggregate([]string{"gender", "publications"}, false)
	if all.Nodes["f,1"] != 4 {
		t.Errorf("ALL w(f,1) = %d, want 4", all.Nodes["f,1"])
	}
	if dist.Edges[EdgeLabel("m,3", "f,1")] != 2 {
		t.Errorf("DIST w((m,3)→(f,1)) = %d, want 2", dist.Edges[EdgeLabel("m,3", "f,1")])
	}
}

func TestAggregateStaticPath(t *testing.T) {
	g := core.PaperExample()
	tl := g.Timeline()
	u := FromGraph(g).Union(tl.Point(0), tl.Point(1))
	dist := u.Aggregate([]string{"gender"}, true)
	if dist.Nodes["f"] != 3 || dist.Nodes["m"] != 1 {
		t.Errorf("DIST gender = %v", dist.Nodes)
	}
	all := u.Aggregate([]string{"gender"}, false)
	if all.Nodes["f"] != 5 || all.Nodes["m"] != 2 {
		t.Errorf("ALL gender = %v", all.Nodes)
	}
	if all.Edges[EdgeLabel("m", "f")] != 4 {
		t.Errorf("ALL w(m→f) = %d, want 4", all.Edges[EdgeLabel("m", "f")])
	}
}

// aggToLabels converts the optimized engine's aggregate graph into the
// string-keyed representation of the reference engine.
func aggToLabels(ag *agg.Graph) AggResult {
	res := AggResult{Nodes: make(map[string]int64), Edges: make(map[string]int64)}
	for tu, w := range ag.Nodes {
		res.Nodes[ag.Schema.Label(tu)] = w
	}
	for k, w := range ag.Edges {
		res.Edges[EdgeLabel(ag.Schema.Label(k.From), ag.Schema.Label(k.To))] = w
	}
	return res
}

func sameResult(a, b AggResult) bool {
	if len(a.Nodes) != len(b.Nodes) || len(a.Edges) != len(b.Edges) {
		return false
	}
	for k, v := range a.Nodes {
		if b.Nodes[k] != v {
			return false
		}
	}
	for k, v := range a.Edges {
		if b.Edges[k] != v {
			return false
		}
	}
	return true
}

// TestQuickReferenceEngineMatchesOptimized cross-validates the two
// engines: for random graphs, random interval pairs, every operator and
// both aggregation kinds, the literal Algorithm 1+2 pipeline and the
// bitset/dictionary engine must produce identical aggregate graphs.
func TestQuickReferenceEngineMatchesOptimized(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := gtest.RandomGraph(r, gtest.DefaultParams())
		if g.NumAttrs() == 0 {
			return true
		}
		// Random non-empty attribute subset, random order.
		perm := r.Perm(g.NumAttrs())
		n := 1 + r.Intn(g.NumAttrs())
		var ids []core.AttrID
		var names []string
		for _, p := range perm[:n] {
			ids = append(ids, core.AttrID(p))
			names = append(names, g.Attr(core.AttrID(p)).Name)
		}
		schema := agg.MustSchema(g, ids...)
		ga := FromGraph(g)
		tl := g.Timeline()
		t1 := gtest.RandomInterval(r, tl)
		t2 := gtest.RandomInterval(r, tl)

		type casePair struct {
			view *ops.View
			arr  *GraphArrays
		}
		cases := []casePair{
			{ops.Union(g, t1, t2), ga.Union(t1, t2)},
			{ops.Intersection(g, t1, t2), ga.Intersection(t1, t2)},
			{ops.Difference(g, t1, t2), ga.Difference(t1, t2)},
			{ops.Difference(g, t2, t1), ga.Difference(t2, t1)},
		}
		for _, c := range cases {
			for _, distinct := range []bool{true, false} {
				kind := agg.All
				if distinct {
					kind = agg.Distinct
				}
				fast := aggToLabels(agg.Aggregate(c.view, schema, kind))
				ref := c.arr.Aggregate(names, distinct)
				if !sameResult(fast, ref) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
