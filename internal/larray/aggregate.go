package larray

import (
	"fmt"
	"strings"
)

// This file is the literal implementation of Algorithm 2 (distinct
// aggregation) and its §4.2 variants: non-distinct aggregation (skip the
// deduplication steps) and the static-only optimization (skip unpivoting
// and deduplication entirely).
//
// Aggregate graphs are returned as weight maps keyed by human-readable
// tuple labels — "f,1" for nodes and "(f,1)→(m,3)" for edges — matching
// the paper's figure notation and convenient for cross-validation against
// the optimized engine.

// AggResult is the aggregate graph produced by the reference pipeline.
type AggResult struct {
	Nodes map[string]int64
	Edges map[string]int64
}

// EdgeLabel formats an aggregate edge key.
func EdgeLabel(from, to string) string { return "(" + from + ")→(" + to + ")" }

// aggRow is one row of the unpivoted-and-merged array A' of Algorithm 2:
// node id, time point, and the attribute tuple at that time.
type aggRow struct {
	id    string
	time  string
	tuple string
}

// buildAPrime performs Algorithm 2 lines 1–7: unpivot each time-varying
// attribute array, merge them on (id, time), and merge in the static
// columns. It returns the rows of A' and the (id, time) → tuple lookup
// used by the edge loop (lines 13–17). Rows exist only for (id, time)
// combinations where every requested attribute has a value and the node
// exists (V[id, time] = 1).
func (ga *GraphArrays) buildAPrime(attrs []string) ([]aggRow, map[string]string) {
	// Column positions of static attributes.
	staticCol := make(map[string]int)
	for i, c := range ga.S.ColLabels {
		staticCol[c] = i
	}
	var rows []aggRow
	lookup := make(map[string]string)
	var sb strings.Builder
	for r, id := range ga.V.RowLabels {
		srow := ga.S.Cells[r]
		for c, t := range ga.Times {
			if ga.V.Cells[r][c] != "1" {
				continue
			}
			sb.Reset()
			ok := true
			for i, attr := range attrs {
				var v string
				if col, isStatic := staticCol[attr]; isStatic {
					v = srow[col]
				} else {
					arr, exists := ga.A[attr]
					if !exists {
						panic(fmt.Sprintf("larray: unknown attribute %q", attr))
					}
					v, _ = arr.Cell(id, t)
				}
				if v == missing || v == "" {
					ok = false
					break
				}
				if i > 0 {
					sb.WriteByte(',')
				}
				sb.WriteString(v)
			}
			if !ok {
				continue
			}
			tuple := sb.String()
			rows = append(rows, aggRow{id: id, time: t, tuple: tuple})
			lookup[id+"@"+t] = tuple
		}
	}
	return rows, lookup
}

// Aggregate runs Algorithm 2 over the graph arrays: group nodes (and the
// edges between them) by the given attribute tuple, counting distinctly
// (DIST) or per appearance (ALL). It dispatches to the §4.2 static-only
// fast path when every attribute is static.
func (ga *GraphArrays) Aggregate(attrs []string, distinct bool) AggResult {
	if len(attrs) == 0 {
		panic("larray: at least one aggregation attribute required")
	}
	if ga.allStatic(attrs) {
		return ga.aggregateStatic(attrs, distinct)
	}
	res := AggResult{Nodes: make(map[string]int64), Edges: make(map[string]int64)}

	rows, lookup := ga.buildAPrime(attrs)

	// Line 5: deduplicate A' on key (v, a').
	if distinct {
		seen := make(map[string]bool, len(rows))
		kept := rows[:0]
		for _, row := range rows {
			key := row.id + "\x00" + row.tuple
			if seen[key] {
				continue
			}
			seen[key] = true
			kept = append(kept, row)
		}
		rows = kept
	}
	// Lines 8–12: group by a' and count.
	for _, row := range rows {
		res.Nodes[row.tuple]++
	}

	// Lines 13–17: build A'' from the edge array via lookups.
	type edgeRow struct {
		edge string
		pair string
	}
	var erows []edgeRow
	for r, label := range ga.E.RowLabels {
		for c, t := range ga.Times {
			if ga.E.Cells[r][c] != "1" {
				continue
			}
			u, v := splitEdgeLabel(label)
			a1, ok1 := lookup[u+"@"+t]
			a2, ok2 := lookup[v+"@"+t]
			if !ok1 || !ok2 {
				continue
			}
			erows = append(erows, edgeRow{edge: label, pair: EdgeLabel(a1, a2)})
		}
	}
	// Line 18: deduplicate A'' on ((u,v),(a',a'')).
	if distinct {
		seen := make(map[string]bool, len(erows))
		kept := erows[:0]
		for _, row := range erows {
			key := row.edge + "\x00" + row.pair
			if seen[key] {
				continue
			}
			seen[key] = true
			kept = append(kept, row)
		}
		erows = kept
	}
	// Lines 19–23: group by (a', a'') and count.
	for _, row := range erows {
		res.Edges[row.pair]++
	}
	return res
}

func (ga *GraphArrays) allStatic(attrs []string) bool {
	for _, a := range attrs {
		if _, varying := ga.A[a]; varying {
			return false
		}
	}
	return true
}

// aggregateStatic is the §4.2 optimization: no unpivoting and no
// deduplication are needed because each node has exactly one tuple. For
// non-distinct aggregation, entity weights are initialized to the count of
// 1-columns in V (or E) and summed per group.
func (ga *GraphArrays) aggregateStatic(attrs []string, distinct bool) AggResult {
	res := AggResult{Nodes: make(map[string]int64), Edges: make(map[string]int64)}
	staticCol := make(map[string]int)
	for i, c := range ga.S.ColLabels {
		staticCol[c] = i
	}
	tupleOf := func(id string) (string, bool) {
		srow, ok := ga.S.Row(id)
		if !ok {
			return "", false
		}
		parts := make([]string, len(attrs))
		for i, attr := range attrs {
			col, exists := staticCol[attr]
			if !exists {
				panic(fmt.Sprintf("larray: unknown static attribute %q", attr))
			}
			v := srow[col]
			if v == missing || v == "" {
				return "", false
			}
			parts[i] = v
		}
		return strings.Join(parts, ","), true
	}
	countOnes := func(row []string) int64 {
		var n int64
		for _, c := range row {
			if c == "1" {
				n++
			}
		}
		return n
	}
	for r, id := range ga.V.RowLabels {
		tuple, ok := tupleOf(id)
		if !ok {
			continue
		}
		if distinct {
			res.Nodes[tuple]++
		} else {
			res.Nodes[tuple] += countOnes(ga.V.Cells[r])
		}
	}
	for r, label := range ga.E.RowLabels {
		u, v := splitEdgeLabel(label)
		a1, ok1 := tupleOf(u)
		a2, ok2 := tupleOf(v)
		if !ok1 || !ok2 {
			continue
		}
		key := EdgeLabel(a1, a2)
		if distinct {
			res.Edges[key]++
		} else {
			res.Edges[key] += countOnes(ga.E.Cells[r])
		}
	}
	return res
}
