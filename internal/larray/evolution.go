package larray

import (
	"repro/internal/timeline"
)

// EvolutionWeights mirrors the evolution package's (St, Gr, Shr) triple in
// the reference engine's string-keyed form.
type EvolutionWeights struct {
	St, Gr, Shr int64
}

// EvolutionResult is the reference aggregated evolution graph.
type EvolutionResult struct {
	Nodes map[string]EvolutionWeights
	Edges map[string]EvolutionWeights
}

// AggregateEvolution is the reference implementation of evolution
// aggregation (§2.3): for every entity, collect the attribute tuples it
// exhibits during told and during tnew directly from the labeled arrays;
// a tuple seen in both intervals contributes stability, only in tnew
// growth, only in told shrinkage (distinct counting, the paper's Fig. 4b
// semantics). It exists to cross-validate the optimized evolution engine.
func (ga *GraphArrays) AggregateEvolution(told, tnew timeline.Interval, attrs []string) EvolutionResult {
	res := EvolutionResult{
		Nodes: make(map[string]EvolutionWeights),
		Edges: make(map[string]EvolutionWeights),
	}
	colsOld := ga.intervalCols(told)
	colsNew := ga.intervalCols(tnew)
	_, lookup := ga.buildAPrime(attrs)

	colSet := func(cols []string) map[string]bool {
		m := make(map[string]bool, len(cols))
		for _, c := range cols {
			m[c] = true
		}
		return m
	}
	inOld := colSet(colsOld)
	inNew := colSet(colsNew)

	// classify folds one entity's per-interval tuple sets into weights.
	classify := func(tuplesOld, tuplesNew map[string]bool, out map[string]EvolutionWeights) {
		for tuple := range tuplesOld {
			w := out[tuple]
			if tuplesNew[tuple] {
				w.St++
			} else {
				w.Shr++
			}
			out[tuple] = w
		}
		for tuple := range tuplesNew {
			if !tuplesOld[tuple] {
				w := out[tuple]
				w.Gr++
				out[tuple] = w
			}
		}
	}

	for r, id := range ga.V.RowLabels {
		tuplesOld := map[string]bool{}
		tuplesNew := map[string]bool{}
		for c, t := range ga.Times {
			if ga.V.Cells[r][c] != "1" {
				continue
			}
			tuple, ok := lookup[id+"@"+t]
			if !ok {
				continue
			}
			if inOld[t] {
				tuplesOld[tuple] = true
			}
			if inNew[t] {
				tuplesNew[tuple] = true
			}
		}
		classify(tuplesOld, tuplesNew, res.Nodes)
	}

	for r, label := range ga.E.RowLabels {
		u, v := splitEdgeLabel(label)
		pairsOld := map[string]bool{}
		pairsNew := map[string]bool{}
		for c, t := range ga.Times {
			if ga.E.Cells[r][c] != "1" {
				continue
			}
			a1, ok1 := lookup[u+"@"+t]
			a2, ok2 := lookup[v+"@"+t]
			if !ok1 || !ok2 {
				continue
			}
			pair := EdgeLabel(a1, a2)
			if inOld[t] {
				pairsOld[pair] = true
			}
			if inNew[t] {
				pairsNew[pair] = true
			}
		}
		classify(pairsOld, pairsNew, res.Edges)
	}
	return res
}
