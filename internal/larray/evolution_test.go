package larray

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/evolution"
	"repro/internal/gtest"
)

func TestAggregateEvolutionFig4b(t *testing.T) {
	g := core.PaperExample()
	tl := g.Timeline()
	ga := FromGraph(g)
	res := ga.AggregateEvolution(tl.Point(0), tl.Point(1), []string{"gender", "publications"})
	if w := res.Nodes["f,1"]; w != (EvolutionWeights{St: 1, Gr: 1, Shr: 1}) {
		t.Fatalf("reference weights(f,1) = %+v, want 1/1/1 (Fig. 4b)", w)
	}
	if w := res.Edges[EdgeLabel("m,3", "f,1")]; w != (EvolutionWeights{Shr: 2}) {
		t.Errorf("reference ((m,3)→(f,1)) = %+v, want Shr=2", w)
	}
}

// TestQuickEvolutionReferenceMatchesOptimized cross-validates the
// optimized evolution engine against the labeled-array reference on
// random graphs and interval pairs.
func TestQuickEvolutionReferenceMatchesOptimized(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := gtest.RandomGraph(r, gtest.DefaultParams())
		if g.NumAttrs() == 0 {
			return true
		}
		perm := r.Perm(g.NumAttrs())
		n := 1 + r.Intn(g.NumAttrs())
		var ids []core.AttrID
		var names []string
		for _, p := range perm[:n] {
			ids = append(ids, core.AttrID(p))
			names = append(names, g.Attr(core.AttrID(p)).Name)
		}
		schema := agg.MustSchema(g, ids...)
		tl := g.Timeline()
		told := gtest.RandomInterval(r, tl)
		tnew := gtest.RandomInterval(r, tl)

		fast := evolution.Aggregate(g, told, tnew, schema, agg.Distinct, nil)
		ref := FromGraph(g).AggregateEvolution(told, tnew, names)

		if len(fast.Nodes) != len(ref.Nodes) || len(fast.Edges) != len(ref.Edges) {
			return false
		}
		for tu, w := range fast.Nodes {
			rw := ref.Nodes[schema.Label(tu)]
			if rw.St != w.St || rw.Gr != w.Gr || rw.Shr != w.Shr {
				return false
			}
		}
		for k, w := range fast.Edges {
			rw := ref.Edges[EdgeLabel(schema.Label(k.From), schema.Label(k.To))]
			if rw.St != w.St || rw.Gr != w.Gr || rw.Shr != w.Shr {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
