// Package larray is a literal Go implementation of the paper's §4 storage
// and algorithms: temporal graphs as labeled arrays (Table 2), the
// temporal operators as row-copying array transformations (Algorithm 1),
// and aggregation as the unpivot / merge / deduplicate / group-by-count
// pipeline (Algorithm 2).
//
// The optimized engine (packages ops and agg) uses bitset views and
// dictionary-encoded tuples instead; this package exists as an independent
// reference implementation — structured the way the paper's Modin/pandas
// code is — against which the optimized engine is cross-validated, and as
// the copy-out baseline of the copy-vs-view ablation benchmark.
package larray

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/timeline"
)

// Array is a labeled 2-D array of strings: rows carry entity labels (node
// ids or "u|v" edge ids), columns carry time-point or attribute labels.
type Array struct {
	RowLabels []string
	ColLabels []string
	rowIndex  map[string]int
	colIndex  map[string]int
	Cells     [][]string // [row][col]
}

// NewArray returns an empty array with the given column labels.
func NewArray(cols ...string) *Array {
	a := &Array{
		ColLabels: append([]string(nil), cols...),
		rowIndex:  make(map[string]int),
		colIndex:  make(map[string]int, len(cols)),
	}
	for i, c := range cols {
		a.colIndex[c] = i
	}
	return a
}

// AddRow appends a labeled row. It panics if the value count does not match
// the column count or the label already exists.
func (a *Array) AddRow(label string, values ...string) {
	if len(values) != len(a.ColLabels) {
		panic(fmt.Sprintf("larray: row %q has %d values, want %d", label, len(values), len(a.ColLabels)))
	}
	if _, dup := a.rowIndex[label]; dup {
		panic(fmt.Sprintf("larray: duplicate row label %q", label))
	}
	a.rowIndex[label] = len(a.RowLabels)
	a.RowLabels = append(a.RowLabels, label)
	a.Cells = append(a.Cells, append([]string(nil), values...))
}

// NumRows returns the number of rows.
func (a *Array) NumRows() int { return len(a.RowLabels) }

// Row returns the cells of the row with the given label.
func (a *Array) Row(label string) ([]string, bool) {
	i, ok := a.rowIndex[label]
	if !ok {
		return nil, false
	}
	return a.Cells[i], true
}

// Cell returns the value at (rowLabel, colLabel).
func (a *Array) Cell(rowLabel, colLabel string) (string, bool) {
	r, ok := a.rowIndex[rowLabel]
	if !ok {
		return "", false
	}
	c, ok := a.colIndex[colLabel]
	if !ok {
		return "", false
	}
	return a.Cells[r][c], true
}

// Restrict returns a copy of the array keeping only the given columns, in
// the given order — the paper's "restrict the input tables to the columns
// corresponding to time t ∈ T1 ∪ T2" (Algorithm 1, line 2).
func (a *Array) Restrict(cols ...string) *Array {
	out := NewArray(cols...)
	idx := make([]int, len(cols))
	for i, c := range cols {
		j, ok := a.colIndex[c]
		if !ok {
			panic(fmt.Sprintf("larray: no column %q", c))
		}
		idx[i] = j
	}
	for r, label := range a.RowLabels {
		vals := make([]string, len(cols))
		for i, j := range idx {
			vals[i] = a.Cells[r][j]
		}
		out.AddRow(label, vals...)
	}
	return out
}

// The missing-value marker of Table 2.
const missing = "-"

// GraphArrays is the §4 representation: V and E hold 0/1 existence flags
// per time column, S holds one column per static attribute, and A holds
// one array per time-varying attribute with one column per time point.
type GraphArrays struct {
	Times  []string
	V, E   *Array
	S      *Array
	A      map[string]*Array
	AOrder []string // deterministic iteration order for A
}

// edgeLabel encodes an edge row label; node labels must not contain '|'.
func edgeLabel(u, v string) string { return u + "|" + v }

// splitEdgeLabel is the inverse of edgeLabel.
func splitEdgeLabel(label string) (string, string) {
	i := strings.IndexByte(label, '|')
	return label[:i], label[i+1:]
}

// FromGraph converts a core graph into its labeled-array representation.
func FromGraph(g *core.Graph) *GraphArrays {
	times := g.Timeline().Labels()
	ga := &GraphArrays{Times: times, A: make(map[string]*Array)}

	ga.V = NewArray(times...)
	for n := 0; n < g.NumNodes(); n++ {
		row := make([]string, len(times))
		for t := range times {
			if g.NodeTau(core.NodeID(n)).Contains(t) {
				row[t] = "1"
			} else {
				row[t] = "0"
			}
		}
		ga.V.AddRow(g.NodeLabel(core.NodeID(n)), row...)
	}

	ga.E = NewArray(times...)
	for e := 0; e < g.NumEdges(); e++ {
		ep := g.Edge(core.EdgeID(e))
		row := make([]string, len(times))
		for t := range times {
			if g.EdgeTau(core.EdgeID(e)).Contains(t) {
				row[t] = "1"
			} else {
				row[t] = "0"
			}
		}
		ga.E.AddRow(edgeLabel(g.NodeLabel(ep.U), g.NodeLabel(ep.V)), row...)
	}

	var staticNames []string
	for a := 0; a < g.NumAttrs(); a++ {
		if g.Attr(core.AttrID(a)).Kind == core.Static {
			staticNames = append(staticNames, g.Attr(core.AttrID(a)).Name)
		}
	}
	ga.S = NewArray(staticNames...)
	for n := 0; n < g.NumNodes(); n++ {
		row := make([]string, 0, len(staticNames))
		for a := 0; a < g.NumAttrs(); a++ {
			if g.Attr(core.AttrID(a)).Kind != core.Static {
				continue
			}
			v := g.Dict(core.AttrID(a)).Value(g.StaticValue(core.AttrID(a), core.NodeID(n)))
			if v == "" {
				v = missing
			}
			row = append(row, v)
		}
		ga.S.AddRow(g.NodeLabel(core.NodeID(n)), row...)
	}

	for a := 0; a < g.NumAttrs(); a++ {
		if g.Attr(core.AttrID(a)).Kind != core.TimeVarying {
			continue
		}
		name := g.Attr(core.AttrID(a)).Name
		arr := NewArray(times...)
		for n := 0; n < g.NumNodes(); n++ {
			row := make([]string, len(times))
			for t := range times {
				v := g.ValueString(core.AttrID(a), core.NodeID(n), timeline.Time(t))
				if v == "" {
					v = missing
				}
				row[t] = v
			}
			arr.AddRow(g.NodeLabel(core.NodeID(n)), row...)
		}
		ga.A[name] = arr
		ga.AOrder = append(ga.AOrder, name)
	}
	return ga
}

// intervalCols translates an interval into its time-column labels.
func (ga *GraphArrays) intervalCols(iv timeline.Interval) []string {
	var cols []string
	for _, t := range iv.Times() {
		cols = append(cols, iv.Timeline().Label(t))
	}
	return cols
}

// anyOne reports whether any cell of the row is "1".
func anyOne(row []string) bool {
	for _, c := range row {
		if c == "1" {
			return true
		}
	}
	return false
}

// copyEntities builds the output arrays from the rows selected by keep,
// mirroring Algorithm 1's insert loops (lines 3–14).
func (ga *GraphArrays) copyEntities(cols []string, keep func(row []string) bool) *GraphArrays {
	out := &GraphArrays{Times: cols, A: make(map[string]*Array), AOrder: ga.AOrder}
	out.V = NewArray(cols...)
	out.S = NewArray(ga.S.ColLabels...)
	for _, name := range ga.AOrder {
		out.A[name] = NewArray(cols...)
	}
	rv := ga.V.Restrict(cols...)
	restrictedA := make(map[string]*Array, len(ga.AOrder))
	for _, name := range ga.AOrder {
		restrictedA[name] = ga.A[name].Restrict(cols...)
	}
	for r, label := range rv.RowLabels {
		if !keep(rv.Cells[r]) {
			continue
		}
		out.V.AddRow(label, rv.Cells[r]...)
		srow, _ := ga.S.Row(label)
		out.S.AddRow(label, srow...)
		for _, name := range ga.AOrder {
			arow, _ := restrictedA[name].Row(label)
			out.A[name].AddRow(label, arow...)
		}
	}
	out.E = NewArray(cols...)
	re := ga.E.Restrict(cols...)
	for r, label := range re.RowLabels {
		if !keep(re.Cells[r]) {
			continue
		}
		out.E.AddRow(label, re.Cells[r]...)
	}
	return out
}

// Union implements Algorithm 1: keep every node/edge with a 1 in some
// column of T1 ∪ T2, restricted to those columns.
func (ga *GraphArrays) Union(t1, t2 timeline.Interval) *GraphArrays {
	cols := ga.intervalCols(t1.Union(t2))
	return ga.copyEntities(cols, anyOne)
}

// Intersection keeps entities with a 1 in some column of T1 and in some
// column of T2 (§4.1), restricted to T1 ∪ T2.
func (ga *GraphArrays) Intersection(t1, t2 timeline.Interval) *GraphArrays {
	cols1 := map[string]bool{}
	for _, c := range ga.intervalCols(t1) {
		cols1[c] = true
	}
	cols := ga.intervalCols(t1.Union(t2))
	cols2 := map[string]bool{}
	for _, c := range ga.intervalCols(t2) {
		cols2[c] = true
	}
	keep := func(row []string) bool {
		in1, in2 := false, false
		for i, c := range cols {
			if row[i] == "1" {
				if cols1[c] {
					in1 = true
				}
				if cols2[c] {
					in2 = true
				}
			}
		}
		return in1 && in2
	}
	return ga.copyEntities(cols, keep)
}

// Difference implements §4.1's difference T1 − T2: an edge row is kept when
// it has a 1 in T1 and none in T2; a node row when it has a 1 in T1 and
// either none in T2 or an endpoint role in a kept edge (Definition 2.5).
// The result is restricted to T1's columns.
func (ga *GraphArrays) Difference(t1, t2 timeline.Interval) *GraphArrays {
	cols1 := ga.intervalCols(t1)
	cols2 := ga.intervalCols(t2)
	v2 := ga.V.Restrict(cols2...)
	e2 := ga.E.Restrict(cols2...)
	gone := func(label string, arr *Array) bool {
		row, ok := arr.Row(label)
		return ok && !anyOne(row)
	}

	// First pass over edges to find surviving endpoints.
	endpoints := map[string]bool{}
	re1 := ga.E.Restrict(cols1...)
	keptEdges := map[string]bool{}
	for r, label := range re1.RowLabels {
		if anyOne(re1.Cells[r]) && gone(label, e2) {
			keptEdges[label] = true
			u, v := splitEdgeLabel(label)
			endpoints[u] = true
			endpoints[v] = true
		}
	}

	out := &GraphArrays{Times: cols1, A: make(map[string]*Array), AOrder: ga.AOrder}
	out.V = NewArray(cols1...)
	out.S = NewArray(ga.S.ColLabels...)
	for _, name := range ga.AOrder {
		out.A[name] = NewArray(cols1...)
	}
	rv := ga.V.Restrict(cols1...)
	restrictedA := make(map[string]*Array, len(ga.AOrder))
	for _, name := range ga.AOrder {
		restrictedA[name] = ga.A[name].Restrict(cols1...)
	}
	for r, label := range rv.RowLabels {
		if !anyOne(rv.Cells[r]) {
			continue
		}
		if !gone(label, v2) && !endpoints[label] {
			continue
		}
		out.V.AddRow(label, rv.Cells[r]...)
		srow, _ := ga.S.Row(label)
		out.S.AddRow(label, srow...)
		for _, name := range ga.AOrder {
			arow, _ := restrictedA[name].Row(label)
			out.A[name].AddRow(label, arow...)
		}
	}
	out.E = NewArray(cols1...)
	for r, label := range re1.RowLabels {
		if keptEdges[label] {
			out.E.AddRow(label, re1.Cells[r]...)
		}
	}
	return out
}
