package dot

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/evolution"
	"repro/internal/ops"
)

func TestWriteAggregate(t *testing.T) {
	g := core.PaperExample()
	tl := g.Timeline()
	s := agg.MustSchema(g, g.MustAttr("gender"), g.MustAttr("publications"))
	ag := agg.Aggregate(ops.Union(g, tl.Point(0), tl.Point(1)), s, agg.Distinct)

	var buf bytes.Buffer
	if err := WriteAggregate(&buf, ag); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"digraph aggregate {",
		`"f,1" [label="f,1\n3"]`,
		`"m,3" -> "f,1" [label="2"]`,
		"}",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
	if !strings.HasSuffix(out, "}\n") {
		t.Error("DOT output not terminated")
	}
}

func TestWriteEvolution(t *testing.T) {
	g := core.PaperExample()
	tl := g.Timeline()
	s := agg.MustSchema(g, g.MustAttr("gender"), g.MustAttr("publications"))
	ev := evolution.Aggregate(g, tl.Point(0), tl.Point(1), s, agg.Distinct, nil)

	var buf bytes.Buffer
	if err := WriteEvolution(&buf, ev); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"digraph evolution {",
		`St=1 Gr=1 Shr=1`, // node (f,1), Fig. 4b
		"color=forestgreen",
		"color=red3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}

func TestDominantColor(t *testing.T) {
	cases := []struct {
		w    evolution.Weights
		want string
	}{
		{evolution.Weights{St: 2, Gr: 1, Shr: 1}, colorStability},
		{evolution.Weights{St: 1, Gr: 1}, colorStability}, // stability wins ties
		{evolution.Weights{Gr: 3, Shr: 1}, colorGrowth},
		{evolution.Weights{Shr: 5}, colorShrinkage},
	}
	for _, c := range cases {
		if got := dominantColor(c.w); got != c.want {
			t.Errorf("dominantColor(%+v) = %s, want %s", c.w, got, c.want)
		}
	}
}

func TestQuoteEscapes(t *testing.T) {
	if got := quote(`a"b\c`); got != `"a\"b\\c"` {
		t.Errorf("quote = %s", got)
	}
}
