// Package dot renders aggregate graphs and aggregated evolution graphs in
// Graphviz DOT format, mirroring the paper's figures: aggregate nodes are
// labeled with their attribute tuple and weight (Fig. 3), and evolution
// graphs carry the St/Gr/Shr weight triples with one color per event type
// (Fig. 4b: black = stability, green = growth, red = shrinkage).
package dot

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/agg"
	"repro/internal/evolution"
)

// quote escapes a DOT identifier.
func quote(s string) string {
	return `"` + strings.NewReplacer(`\`, `\\`, `"`, `\"`).Replace(s) + `"`
}

// quoteLabel escapes each part and joins them with DOT line breaks.
func quoteLabel(parts ...string) string {
	esc := make([]string, len(parts))
	for i, p := range parts {
		esc[i] = strings.NewReplacer(`\`, `\\`, `"`, `\"`).Replace(p)
	}
	return `"` + strings.Join(esc, `\n`) + `"`
}

// WriteAggregate renders an aggregate graph (Fig. 3 style).
func WriteAggregate(w io.Writer, ag *agg.Graph) error {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph aggregate {\n")
	fmt.Fprintf(&b, "  graph [label=%s, rankdir=LR];\n", quote("aggregate ("+ag.Kind.String()+")"))
	fmt.Fprintf(&b, "  node [shape=circle];\n")
	for _, tu := range ag.SortedNodes() {
		label := ag.Schema.Label(tu)
		fmt.Fprintf(&b, "  %s [label=%s];\n",
			quote(label), quoteLabel(label, fmt.Sprintf("%d", ag.Nodes[tu])))
	}
	for _, k := range ag.SortedEdges() {
		fmt.Fprintf(&b, "  %s -> %s [label=%s];\n",
			quote(ag.Schema.Label(k.From)), quote(ag.Schema.Label(k.To)),
			quote(fmt.Sprintf("%d", ag.Edges[k])))
	}
	fmt.Fprintf(&b, "}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// evolution rendering colors, one per event type as in Fig. 4.
const (
	colorStability = "black"
	colorGrowth    = "forestgreen"
	colorShrinkage = "red3"
)

// weightLabel renders a weight triple like the paper's "St=1 Gr=1 Shr=1".
func weightLabel(w evolution.Weights) string {
	var parts []string
	if w.St > 0 {
		parts = append(parts, fmt.Sprintf("St=%d", w.St))
	}
	if w.Gr > 0 {
		parts = append(parts, fmt.Sprintf("Gr=%d", w.Gr))
	}
	if w.Shr > 0 {
		parts = append(parts, fmt.Sprintf("Shr=%d", w.Shr))
	}
	return strings.Join(parts, " ")
}

// dominantColor picks the color of an entity's strongest event type, with
// stability winning ties (a stable entity that also grew is drawn stable,
// as in Fig. 4a's labeling).
func dominantColor(w evolution.Weights) string {
	switch {
	case w.St >= w.Gr && w.St >= w.Shr && w.St > 0:
		return colorStability
	case w.Gr >= w.Shr && w.Gr > 0:
		return colorGrowth
	default:
		return colorShrinkage
	}
}

// WriteEvolution renders an aggregated evolution graph (Fig. 4b style):
// every aggregate node and edge carries its stability/growth/shrinkage
// weights, colored by the dominant event type.
func WriteEvolution(w io.Writer, ev *evolution.Agg) error {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph evolution {\n")
	fmt.Fprintf(&b, "  graph [label=%s, rankdir=LR];\n",
		quote(fmt.Sprintf("evolution %s → %s (%s)", ev.Old, ev.New, ev.Kind)))
	fmt.Fprintf(&b, "  node [shape=circle];\n")
	for _, tu := range ev.SortedNodes() {
		label := ev.Schema.Label(tu)
		weights := ev.Nodes[tu]
		fmt.Fprintf(&b, "  %s [label=%s, color=%s];\n",
			quote(label),
			quoteLabel(label, weightLabel(weights)),
			dominantColor(weights))
	}
	for _, k := range ev.SortedEdges() {
		weights := ev.Edges[k]
		fmt.Fprintf(&b, "  %s -> %s [label=%s, color=%s];\n",
			quote(ev.Schema.Label(k.From)), quote(ev.Schema.Label(k.To)),
			quote(weightLabel(weights)), dominantColor(weights))
	}
	fmt.Fprintf(&b, "}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
