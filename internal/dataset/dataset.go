// Package dataset provides the evaluation datasets of the paper's §5.
//
// The paper uses two real graphs: a DBLP co-authorship extract (21 years,
// 2000–2020, 21 data-management conferences) and a MovieLens co-rating
// graph (6 months, May–October 2000). Neither raw extract is
// redistributable (and the authors' gender labels are derived data), so
// this package generates seeded synthetic graphs that reproduce what the
// paper's experiments actually depend on:
//
//   - the exact per-time-point node and edge counts of Tables 3 and 4
//     (including MovieLens's August spike);
//   - the attribute schemas and domain cardinalities (§5.1): DBLP gender
//     (static, 2 values) + publications (time-varying, ~18 values);
//     MovieLens gender/age/occupation (static; 2/6/21 values) + average
//     rating (time-varying, ~41 values);
//   - the temporal persistence structure: ~10% year-over-year edge
//     carry-over for DBLP (→ ~60 stable female-female collaborations
//     around 2019, Fig. 14a), a long-lived collaboration core making
//     [2000,2017] the longest interval with a non-empty edge intersection
//     (Fig. 7), and near-total month-over-month churn for MovieLens
//     (Fig. 13c);
//   - a female author share (~17%) giving Fig. 12's ≈8:1 stable male:
//     female ratio and Fig. 14b's ≈700 new female collaborations in 2019.
//
// All generators are deterministic in the seed.
package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/timeline"
)

// DBLPYears, DBLPNodeCounts and DBLPEdgeCounts are Table 3 of the paper.
var (
	DBLPYears = []string{
		"2000", "2001", "2002", "2003", "2004", "2005", "2006", "2007",
		"2008", "2009", "2010", "2011", "2012", "2013", "2014", "2015",
		"2016", "2017", "2018", "2019", "2020",
	}
	DBLPNodeCounts = []int{
		1708, 2165, 1761, 2827, 3278, 4466, 4730, 5193, 5501, 5363, 6236,
		6535, 6769, 7457, 7035, 8581, 8966, 9660, 11037, 12377, 12996,
	}
	DBLPEdgeCounts = []int{
		2336, 2949, 2458, 4130, 4821, 7145, 7296, 7620, 8528, 8740, 10163,
		10090, 11871, 12989, 12072, 15844, 16873, 18470, 21197, 27455, 28546,
	}
)

// MovieLensMonths, MovieLensNodeCounts and MovieLensEdgeCounts are Table 4.
var (
	MovieLensMonths     = []string{"May", "Jun", "Jul", "Aug", "Sep", "Oct"}
	MovieLensNodeCounts = []int{486, 508, 778, 1309, 575, 498}
	MovieLensEdgeCounts = []int{100202, 85334, 201800, 610050, 77216, 48516}
)

// DBLP generates the synthetic DBLP collaboration graph at full Table 3
// scale. Schema: gender (static), publications (time-varying).
func DBLP(seed int64) *core.Graph { return DBLPScaled(seed, 1.0) }

// DBLPScaled generates the DBLP graph with node/edge counts scaled by the
// given factor (0 < scale ≤ 1); useful for fast tests. Scaled counts are
// floored so every year keeps at least a handful of nodes and edges.
func DBLPScaled(seed int64, scale float64) *core.Graph {
	p := params{
		labels:     DBLPYears,
		nodeCounts: scaleCounts(DBLPNodeCounts, scale, 8),
		edgeCounts: scaleCounts(DBLPEdgeCounts, scale, 8),
		attrs: []core.AttrSpec{
			{Name: "gender", Kind: core.Static},
			{Name: "publications", Kind: core.TimeVarying},
		},
		assignStatic: dblpStatic,
		carryNode:    0.75, // casual authors tend to stay a few years
		traitBoost:   0.05, // productive authors stay much longer
		carryEdge:    0.10, // ~10% of collaborations repeat next year
		femaleShare:  0.17,
		coreEdges:    1 + int(19*scale),
		coreLastIdx:  17, // the core collaborations span [2000,2017]
		varyingValue: publicationsValue,
	}
	return generate(rand.New(rand.NewSource(seed)), p)
}

// MovieLens generates the synthetic MovieLens co-rating graph at full
// Table 4 scale. Schema: gender, age, occupation (static), rating
// (time-varying average rating of the month).
func MovieLens(seed int64) *core.Graph { return MovieLensScaled(seed, 1.0) }

// MovieLensScaled generates the MovieLens graph with counts scaled by the
// given factor.
func MovieLensScaled(seed int64, scale float64) *core.Graph {
	p := params{
		labels:     MovieLensMonths,
		nodeCounts: scaleCounts(MovieLensNodeCounts, scale, 8),
		edgeCounts: scaleCounts(MovieLensEdgeCounts, scale, 8),
		attrs: []core.AttrSpec{
			{Name: "gender", Kind: core.Static},
			{Name: "age", Kind: core.Static},
			{Name: "occupation", Kind: core.Static},
			{Name: "rating", Kind: core.TimeVarying},
		},
		assignStatic: movieLensStatic,
		carryNode:    0.55,  // moderate user retention
		carryEdge:    0.015, // co-rating pairs churn almost completely
		femaleShare:  0.30,
		varyingValue: ratingValue,
	}
	return generate(rand.New(rand.NewSource(seed)), p)
}

func scaleCounts(counts []int, scale float64, floor int) []int {
	out := make([]int, len(counts))
	for i, c := range counts {
		s := int(math.Round(float64(c) * scale))
		if s < floor {
			s = floor
		}
		out[i] = s
	}
	return out
}

// params drives the shared evolving-graph generator.
type params struct {
	labels       []string
	nodeCounts   []int
	edgeCounts   []int
	attrs        []core.AttrSpec
	assignStatic func(r *rand.Rand, b *core.Builder, n core.NodeID, female bool)
	carryNode    float64 // probability an active node stays active next step
	traitBoost   float64 // extra retention per unit of productivity trait
	carryEdge    float64 // probability a previous edge repeats this step
	femaleShare  float64
	coreEdges    int // long-lived edges spanning steps [0, coreLastIdx]
	coreLastIdx  int
	// varyingValue computes the time-varying attribute value of a node at
	// a time point, given the node's persistent productivity trait and its
	// degree (incident edge count) there.
	varyingValue func(r *rand.Rand, trait, degree int) string
}

func dblpStatic(r *rand.Rand, b *core.Builder, n core.NodeID, female bool) {
	if female {
		b.SetStatic(0, n, "f")
	} else {
		b.SetStatic(0, n, "m")
	}
}

var ageGroups = []string{"<18", "18-24", "25-34", "35-44", "45-55", "56+"}

func movieLensStatic(r *rand.Rand, b *core.Builder, n core.NodeID, female bool) {
	if female {
		b.SetStatic(0, n, "F")
	} else {
		b.SetStatic(0, n, "M")
	}
	b.SetStatic(1, n, ageGroups[r.Intn(len(ageGroups))])
	b.SetStatic(2, n, fmt.Sprintf("occ%02d", r.Intn(21)))
}

// publicationsValue ties the yearly publication count to the author's
// persistent productivity trait plus this year's collaboration degree, so
// the Fig. 12 high-activity filter (#publications > 4) mostly selects the
// same durable authors in consecutive periods — which is what makes ~61%
// of high-activity authors stable across a decade boundary in the paper.
// Domain ≈ 1..18, as §5.1 reports.
func publicationsValue(r *rand.Rand, trait, degree int) string {
	v := trait + degree/4 + r.Intn(2)
	if v > 18 {
		v = 18
	}
	if v < 1 {
		v = 1
	}
	return fmt.Sprintf("%d", v)
}

// ratingValue draws a monthly average rating in 1.0..5.0, one decimal
// (domain ≈ 41 values).
func ratingValue(r *rand.Rand, trait, degree int) string {
	v := 3.5 + r.NormFloat64()*0.7
	if v < 1 {
		v = 1
	}
	if v > 5 {
		v = 5
	}
	return fmt.Sprintf("%.1f", v)
}

// generate builds an evolving graph with exact per-time-point node and
// edge counts. All choices are drawn from r, so output is deterministic in
// the seed.
func generate(r *rand.Rand, p params) *core.Graph {
	tl := timeline.MustNew(p.labels...)
	b := core.NewBuilder(tl, p.attrs...)
	varyingAttr := core.AttrID(len(p.attrs) - 1)

	nSteps := len(p.labels)
	var nextID int
	var traits []int // indexed by NodeID
	newNode := func() core.NodeID {
		n := b.AddNode(fmt.Sprintf("n%d", nextID))
		nextID++
		p.assignStatic(r, b, n, r.Float64() < p.femaleShare)
		// Productivity trait: most nodes are casual (1–3), a minority is
		// durably prolific (5–8).
		trait := 1 + r.Intn(3)
		if r.Float64() < 0.15 {
			trait = 5 + r.Intn(4)
		}
		traits = append(traits, trait)
		return n
	}

	// Core long-lived edges (the intersection backbone of Fig. 7): their
	// endpoints stay active over the whole core span.
	var coreNodes []core.NodeID
	var corePairs []core.Endpoints
	blocked := make(map[core.Endpoints]bool)
	if p.coreEdges > 0 {
		for len(coreNodes) < p.coreEdges+1 {
			coreNodes = append(coreNodes, newNode())
		}
		for i := 0; i < p.coreEdges; i++ {
			ep := core.Endpoints{U: coreNodes[i], V: coreNodes[i+1]}
			corePairs = append(corePairs, ep)
			// Core pairs must not reappear after the core window, so that
			// [0, coreLastIdx] really is the longest interval with a
			// non-empty edge intersection (Fig. 7).
			blocked[ep] = true
			blocked[core.Endpoints{U: ep.V, V: ep.U}] = true
		}
	}

	var prevActive []core.NodeID
	var prevEdges []core.Endpoints // insertion order: deterministic
	degree := make(map[core.NodeID]int)

	for step := 0; step < nSteps; step++ {
		target := p.nodeCounts[step]
		activeSet := make(map[core.NodeID]bool, target)
		if p.coreEdges > 0 && step <= p.coreLastIdx {
			for _, n := range coreNodes {
				activeSet[n] = true
			}
		}
		for _, n := range prevActive {
			if len(activeSet) >= target {
				break
			}
			keep := p.carryNode + p.traitBoost*float64(traits[n])
			if keep > 0.985 {
				keep = 0.985
			}
			if r.Float64() < keep {
				activeSet[n] = true
			}
		}
		for len(activeSet) < target {
			activeSet[newNode()] = true
		}
		active := make([]core.NodeID, 0, len(activeSet))
		for n := range activeSet {
			active = append(active, n)
		}
		sort.Slice(active, func(i, j int) bool { return active[i] < active[j] })
		for _, n := range active {
			b.SetNodeTime(n, timeline.Time(step))
		}

		eTarget := p.edgeCounts[step]
		if maxPairs := len(active) * (len(active) - 1); eTarget > maxPairs {
			eTarget = maxPairs
		}
		edgeSet := make(map[core.Endpoints]bool, eTarget)
		edges := make([]core.Endpoints, 0, eTarget)
		pastCore := p.coreEdges > 0 && step > p.coreLastIdx
		addEdge := func(ep core.Endpoints) {
			if ep.U == ep.V || edgeSet[ep] || !activeSet[ep.U] || !activeSet[ep.V] {
				return
			}
			if pastCore && blocked[ep] {
				return
			}
			edgeSet[ep] = true
			edges = append(edges, ep)
		}
		if p.coreEdges > 0 && step <= p.coreLastIdx {
			for _, ep := range corePairs {
				addEdge(ep)
			}
		}
		if step > 0 && p.carryEdge > 0 {
			for _, ep := range prevEdges {
				if len(edges) >= eTarget {
					break
				}
				if r.Float64() < p.carryEdge {
					addEdge(ep)
				}
			}
		}
		// Fresh random interactions, with mild hubs: picking the smaller
		// of two uniform indices biases toward earlier (longer-lived,
		// better-connected) nodes.
		pick := func() core.NodeID {
			i := r.Intn(len(active))
			if j := r.Intn(len(active)); j < i {
				i = j
			}
			return active[i]
		}
		for len(edges) < eTarget {
			addEdge(core.Endpoints{U: pick(), V: pick()})
		}

		clear(degree)
		for _, ep := range edges {
			e := b.AddEdge(ep.U, ep.V)
			b.SetEdgeTime(e, timeline.Time(step))
			degree[ep.U]++
			degree[ep.V]++
		}
		for _, n := range active {
			b.SetVarying(varyingAttr, n, timeline.Time(step), p.varyingValue(r, traits[n], degree[n]))
		}
		prevActive, prevEdges = active, edges
	}
	g, err := b.Build()
	if err != nil {
		panic(fmt.Sprintf("dataset: generator produced invalid graph: %v", err))
	}
	return g
}
