package dataset

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/timeline"
)

// ContactsParams sizes the school contact network of SchoolContacts.
type ContactsParams struct {
	Days             int     // time points ("day1", "day2", …)
	Grades           int     // static attribute "grade"
	ClassesPerGrade  int     // static attribute "class" (within grade)
	StudentsPerClass int     //
	ContactsPerDay   int     // face-to-face contact edges per day
	Homophily        float64 // probability a contact stays within the class
	MitigationDay    int     // from this day on, contact volume is halved
}

// DefaultContactsParams returns a small school suitable for examples.
func DefaultContactsParams() ContactsParams {
	return ContactsParams{
		Days:             10,
		Grades:           3,
		ClassesPerGrade:  2,
		StudentsPerClass: 20,
		ContactsPerDay:   600,
		Homophily:        0.7,
		MitigationDay:    6,
	}
}

// SchoolContacts generates the face-to-face proximity network of the
// paper's second motivating scenario (§1, after Gemmetto et al.):
// students with static "grade" and "class" attributes and a time-varying
// "contacts" intensity bucket. Contacts are homophilous (same-class pairs
// dominate), and from MitigationDay on the contact volume halves —
// aggregation plus shrinkage exploration can then quantify the effect of
// the mitigation measure, as the introduction suggests.
func SchoolContacts(seed int64, p ContactsParams) *core.Graph {
	r := rand.New(rand.NewSource(seed))
	labels := make([]string, p.Days)
	for i := range labels {
		labels[i] = fmt.Sprintf("day%d", i+1)
	}
	tl := timeline.MustNew(labels...)
	b := core.NewBuilder(tl,
		core.AttrSpec{Name: "grade", Kind: core.Static},
		core.AttrSpec{Name: "class", Kind: core.Static},
		core.AttrSpec{Name: "contacts", Kind: core.TimeVarying},
	)

	type classID struct{ grade, class int }
	classes := make(map[classID][]core.NodeID)
	var students []core.NodeID
	for gr := 1; gr <= p.Grades; gr++ {
		for cl := 1; cl <= p.ClassesPerGrade; cl++ {
			for s := 0; s < p.StudentsPerClass; s++ {
				n := b.AddNode(fmt.Sprintf("g%dc%ds%02d", gr, cl, s))
				b.SetStatic(0, n, fmt.Sprintf("%d", gr))
				b.SetStatic(1, n, fmt.Sprintf("%d%c", gr, 'A'+byte(cl-1)))
				classes[classID{gr, cl}] = append(classes[classID{gr, cl}], n)
				students = append(students, n)
				for d := 0; d < p.Days; d++ {
					b.SetNodeTime(n, timeline.Time(d))
				}
			}
		}
	}

	degree := make(map[core.NodeID]int)
	for d := 0; d < p.Days; d++ {
		volume := p.ContactsPerDay
		if d >= p.MitigationDay {
			volume /= 2
		}
		seen := make(map[core.Endpoints]bool, volume)
		clear(degree)
		for len(seen) < volume {
			u := students[r.Intn(len(students))]
			var v core.NodeID
			if r.Float64() < p.Homophily {
				// Same-class contact.
				gr := 1 + int(u)/(p.ClassesPerGrade*p.StudentsPerClass)
				cl := 1 + (int(u)/p.StudentsPerClass)%p.ClassesPerGrade
				mates := classes[classID{gr, cl}]
				v = mates[r.Intn(len(mates))]
			} else {
				v = students[r.Intn(len(students))]
			}
			if u == v {
				continue
			}
			ep := core.Endpoints{U: u, V: v}
			if seen[ep] {
				continue
			}
			seen[ep] = true
			e := b.AddEdge(u, v)
			b.SetEdgeTime(e, timeline.Time(d))
			degree[u]++
			degree[v]++
		}
		for _, n := range students {
			bucket := "low"
			switch {
			case degree[n] >= 12:
				bucket = "high"
			case degree[n] >= 5:
				bucket = "mid"
			}
			b.SetVarying(2, n, timeline.Time(d), bucket)
		}
	}
	g, err := b.Build()
	if err != nil {
		panic(fmt.Sprintf("dataset: contacts generator produced invalid graph: %v", err))
	}
	return g
}

// PaperExample re-exports the running example of the paper (Figs. 1–4,
// Table 2) for discoverability alongside the other datasets.
func PaperExample() *core.Graph { return core.PaperExample() }
