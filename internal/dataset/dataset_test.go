package dataset

import (
	"testing"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/ops"
	"repro/internal/timeline"
)

func TestDBLPScaledCounts(t *testing.T) {
	const scale = 0.02
	g := DBLPScaled(1, scale)
	stats := core.ComputeStats(g)
	wantNodes := scaleCounts(DBLPNodeCounts, scale, 8)
	wantEdges := scaleCounts(DBLPEdgeCounts, scale, 8)
	for i := range wantNodes {
		if stats.Nodes[i] != wantNodes[i] {
			t.Errorf("year %s: nodes = %d, want %d", DBLPYears[i], stats.Nodes[i], wantNodes[i])
		}
		maxPairs := wantNodes[i] * (wantNodes[i] - 1)
		want := wantEdges[i]
		if want > maxPairs {
			want = maxPairs
		}
		if stats.Edges[i] != want {
			t.Errorf("year %s: edges = %d, want %d", DBLPYears[i], stats.Edges[i], want)
		}
	}
}

func TestDBLPSchema(t *testing.T) {
	g := DBLPScaled(1, 0.01)
	gender := g.MustAttr("gender")
	pubs := g.MustAttr("publications")
	if g.Attr(gender).Kind != core.Static || g.Attr(pubs).Kind != core.TimeVarying {
		t.Fatal("DBLP attribute kinds wrong")
	}
	if got := g.Dict(gender).Len(); got != 2 {
		t.Errorf("gender domain = %d, want 2", got)
	}
	if got := g.Dict(pubs).Len(); got < 3 || got > 18 {
		t.Errorf("publications domain = %d, want within 3..18", got)
	}
}

func TestDBLPDeterministicInSeed(t *testing.T) {
	a := DBLPScaled(7, 0.01)
	b := DBLPScaled(7, 0.01)
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed gave different sizes")
	}
	// Edge sets must be identical, not just counts.
	for e := 0; e < a.NumEdges(); e++ {
		ea, eb := a.Edge(core.EdgeID(e)), b.Edge(core.EdgeID(e))
		if a.NodeLabel(ea.U) != b.NodeLabel(eb.U) || a.NodeLabel(ea.V) != b.NodeLabel(eb.V) {
			t.Fatal("same seed gave different edges")
		}
		if !a.EdgeTau(core.EdgeID(e)).Equal(b.EdgeTau(core.EdgeID(e))) {
			t.Fatal("same seed gave different edge timestamps")
		}
	}
	c := DBLPScaled(8, 0.01)
	if c.NumEdges() == a.NumEdges() && c.NumNodes() == a.NumNodes() {
		// Sizes can coincide; require some structural difference.
		same := true
		for e := 0; e < a.NumEdges() && same; e++ {
			ea, ec := a.Edge(core.EdgeID(e)), c.Edge(core.EdgeID(e))
			if a.NodeLabel(ea.U) != c.NodeLabel(ec.U) || a.NodeLabel(ea.V) != c.NodeLabel(ec.V) {
				same = false
			}
		}
		if same {
			t.Fatal("different seeds gave identical graphs")
		}
	}
}

// TestDBLPIntersectionBackbone verifies the Fig. 7 structure: the longest
// interval starting at 2000 with a non-empty iterated edge intersection is
// [2000,2017].
func TestDBLPIntersectionBackbone(t *testing.T) {
	g := DBLPScaled(1, 0.02)
	tl := g.Timeline()
	upTo2017 := ops.StabilityView(g,
		ops.ForAll(tl.Range(0, 17)), ops.ForAll(tl.Range(0, 17)))
	if upTo2017.NumEdges() == 0 {
		t.Error("intersection over [2000,2017] should keep the core edges")
	}
	upTo2018 := ops.StabilityView(g,
		ops.ForAll(tl.Range(0, 18)), ops.ForAll(tl.Range(0, 18)))
	if upTo2018.NumEdges() != 0 {
		t.Errorf("intersection over [2000,2018] should be empty, has %d edges", upTo2018.NumEdges())
	}
}

func TestMovieLensScaledCountsAndSchema(t *testing.T) {
	const scale = 0.02
	g := MovieLensScaled(1, scale)
	stats := core.ComputeStats(g)
	wantNodes := scaleCounts(MovieLensNodeCounts, scale, 8)
	wantEdges := scaleCounts(MovieLensEdgeCounts, scale, 8)
	for i := range wantNodes {
		if stats.Nodes[i] != wantNodes[i] {
			t.Errorf("%s: nodes = %d, want %d", MovieLensMonths[i], stats.Nodes[i], wantNodes[i])
		}
		maxPairs := wantNodes[i] * (wantNodes[i] - 1)
		want := wantEdges[i]
		if want > maxPairs {
			want = maxPairs
		}
		if stats.Edges[i] != want {
			t.Errorf("%s: edges = %d, want %d", MovieLensMonths[i], stats.Edges[i], want)
		}
	}
	if got := g.Dict(g.MustAttr("age")).Len(); got > 6 {
		t.Errorf("age domain = %d, want ≤ 6", got)
	}
	if got := g.Dict(g.MustAttr("occupation")).Len(); got > 21 {
		t.Errorf("occupation domain = %d, want ≤ 21", got)
	}
	if got := g.Dict(g.MustAttr("rating")).Len(); got > 41 {
		t.Errorf("rating domain = %d, want ≤ 41", got)
	}
}

func TestFullScaleTables3And4(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale dataset generation in -short mode")
	}
	g := DBLP(1)
	stats := core.ComputeStats(g)
	for i := range DBLPNodeCounts {
		if stats.Nodes[i] != DBLPNodeCounts[i] || stats.Edges[i] != DBLPEdgeCounts[i] {
			t.Errorf("DBLP %s: %d/%d, want %d/%d (Table 3)",
				DBLPYears[i], stats.Nodes[i], stats.Edges[i], DBLPNodeCounts[i], DBLPEdgeCounts[i])
		}
	}
	m := MovieLens(1)
	mstats := core.ComputeStats(m)
	for i := range MovieLensNodeCounts {
		if mstats.Nodes[i] != MovieLensNodeCounts[i] || mstats.Edges[i] != MovieLensEdgeCounts[i] {
			t.Errorf("MovieLens %s: %d/%d, want %d/%d (Table 4)",
				MovieLensMonths[i], mstats.Nodes[i], mstats.Edges[i],
				MovieLensNodeCounts[i], MovieLensEdgeCounts[i])
		}
	}
}

func TestSchoolContactsHomophilyAndMitigation(t *testing.T) {
	p := DefaultContactsParams()
	g := SchoolContacts(3, p)
	class := g.MustAttr("class")
	sameClass, total := 0, 0
	for e := 0; e < g.NumEdges(); e++ {
		ep := g.Edge(core.EdgeID(e))
		n := g.EdgeTau(core.EdgeID(e)).Count()
		total += n
		if g.Dict(class).Value(g.StaticValue(class, ep.U)) ==
			g.Dict(class).Value(g.StaticValue(class, ep.V)) {
			sameClass += n
		}
	}
	if frac := float64(sameClass) / float64(total); frac < 0.5 {
		t.Errorf("same-class contact fraction = %.2f, want ≥ 0.5 (homophily)", frac)
	}
	before := g.EdgesAt(timeline.Time(p.MitigationDay - 1))
	after := g.EdgesAt(timeline.Time(p.MitigationDay))
	if after*3 > before*2 {
		t.Errorf("mitigation should halve contacts: before=%d after=%d", before, after)
	}
	// Aggregation by grade works end to end.
	s := agg.MustSchema(g, g.MustAttr("grade"))
	ag := agg.Aggregate(ops.At(g, 0), s, agg.Distinct)
	if got := ag.TotalNodeWeight(); got != int64(p.Grades*p.ClassesPerGrade*p.StudentsPerClass) {
		t.Errorf("grade aggregation total = %d, want all students", got)
	}
}

func TestPaperExamplePassThrough(t *testing.T) {
	if PaperExample().NumNodes() != 5 {
		t.Fatal("PaperExample should be the 5-node running example")
	}
}
