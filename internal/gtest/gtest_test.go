package gtest

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/timeline"
)

func TestRandomGraphInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := RandomGraph(r, DefaultParams())
		// Builder validation already enforces the structural invariants;
		// additionally check that time-varying values exist at every
		// point of a node's lifetime (RandomGraph's documented contract).
		for a := 0; a < g.NumAttrs(); a++ {
			if g.Attr(core.AttrID(a)).Kind != core.TimeVarying {
				continue
			}
			for n := 0; n < g.NumNodes(); n++ {
				ok := true
				g.NodeTau(core.NodeID(n)).ForEach(func(tp int) {
					if g.ValueString(core.AttrID(a), core.NodeID(n), timeline.Time(tp)) == "" {
						ok = false
					}
				})
				if !ok {
					return false
				}
			}
		}
		return g.NumNodes() >= 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomIntervalsNonEmpty(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	g := RandomGraph(r, DefaultParams())
	for i := 0; i < 50; i++ {
		if RandomInterval(r, g.Timeline()).IsEmpty() {
			t.Fatal("RandomInterval returned empty interval")
		}
		rg := RandomRange(r, g.Timeline())
		if rg.IsEmpty() || !rg.IsContiguous() {
			t.Fatal("RandomRange must be non-empty and contiguous")
		}
	}
}

func TestRandomGraphDeterministic(t *testing.T) {
	a := RandomGraph(rand.New(rand.NewSource(42)), DefaultParams())
	b := RandomGraph(rand.New(rand.NewSource(42)), DefaultParams())
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed produced different graphs")
	}
}
