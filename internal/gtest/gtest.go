// Package gtest provides shared test support: reproducible random temporal
// attributed graphs and random intervals for property-based tests
// (testing/quick) across the ops, agg, evolution, explore, larray and
// materialize packages.
package gtest

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/timeline"
)

// Params bounds the size of a random graph.
type Params struct {
	MaxTimes   int // ≥ 2
	MaxNodes   int // ≥ 2
	MaxEdges   int
	MaxStatic  int // static attribute count
	MaxVarying int // time-varying attribute count
	MaxDomain  int // values per attribute domain, ≥ 1
}

// DefaultParams returns sizes suitable for quick.Check iterations.
func DefaultParams() Params {
	return Params{MaxTimes: 6, MaxNodes: 14, MaxEdges: 30, MaxStatic: 2, MaxVarying: 2, MaxDomain: 4}
}

// RandomGraph builds a reproducible random temporal attributed graph.
// Every node exists at ≥1 time point, every node has all static values and
// a time-varying value at every time point it exists, and every edge exists
// at ≥1 time point where both endpoints exist — i.e. the graph always
// satisfies core.Builder validation.
func RandomGraph(r *rand.Rand, p Params) *core.Graph {
	nTimes := 2 + r.Intn(p.MaxTimes-1)
	labels := make([]string, nTimes)
	for i := range labels {
		labels[i] = fmt.Sprintf("t%d", i)
	}
	tl := timeline.MustNew(labels...)

	nStatic := r.Intn(p.MaxStatic + 1)
	nVarying := r.Intn(p.MaxVarying + 1)
	var attrs []core.AttrSpec
	for i := 0; i < nStatic; i++ {
		attrs = append(attrs, core.AttrSpec{Name: fmt.Sprintf("s%d", i), Kind: core.Static})
	}
	for i := 0; i < nVarying; i++ {
		attrs = append(attrs, core.AttrSpec{Name: fmt.Sprintf("v%d", i), Kind: core.TimeVarying})
	}
	b := core.NewBuilder(tl, attrs...)

	nNodes := 2 + r.Intn(p.MaxNodes-1)
	nodes := make([]core.NodeID, nNodes)
	for i := range nodes {
		n := b.AddNode(fmt.Sprintf("n%d", i))
		nodes[i] = n
		// Random non-empty lifetime.
		alive := make([]bool, nTimes)
		alive[r.Intn(nTimes)] = true
		for t := range alive {
			if r.Intn(2) == 0 {
				alive[t] = true
			}
		}
		for t, a := range alive {
			if !a {
				continue
			}
			b.SetNodeTime(n, timeline.Time(t))
			for v := 0; v < nVarying; v++ {
				b.SetVarying(core.AttrID(nStatic+v), n, timeline.Time(t),
					fmt.Sprintf("x%d", r.Intn(p.MaxDomain)))
			}
		}
		for s := 0; s < nStatic; s++ {
			b.SetStatic(core.AttrID(s), n, fmt.Sprintf("x%d", r.Intn(p.MaxDomain)))
		}
	}

	g0, err := b.Build()
	if err != nil {
		panic(err)
	}
	// Second pass for edges so we can consult node lifetimes.
	b2 := core.NewBuilder(tl, attrs...)
	for i := range nodes {
		n := b2.AddNode(fmt.Sprintf("n%d", i))
		g0.NodeTau(nodes[i]).ForEach(func(t int) { b2.SetNodeTime(n, timeline.Time(t)) })
		for s := 0; s < nStatic; s++ {
			b2.SetStatic(core.AttrID(s), n, g0.Dict(core.AttrID(s)).Value(g0.StaticValue(core.AttrID(s), nodes[i])))
		}
		for v := 0; v < nVarying; v++ {
			a := core.AttrID(nStatic + v)
			g0.NodeTau(nodes[i]).ForEach(func(t int) {
				b2.SetVarying(a, n, timeline.Time(t), g0.ValueString(a, nodes[i], timeline.Time(t)))
			})
		}
	}
	nEdges := r.Intn(p.MaxEdges + 1)
	for i := 0; i < nEdges; i++ {
		u := core.NodeID(r.Intn(nNodes))
		v := core.NodeID(r.Intn(nNodes))
		if u == v {
			continue
		}
		both := g0.NodeTau(u).And(g0.NodeTau(v))
		if both.IsEmpty() {
			continue
		}
		e := b2.AddEdge(u, v)
		// Random non-empty subset of the common lifetime.
		ts := both.Indices()
		b2.SetEdgeTime(e, timeline.Time(ts[r.Intn(len(ts))]))
		for _, t := range ts {
			if r.Intn(2) == 0 {
				b2.SetEdgeTime(e, timeline.Time(t))
			}
		}
	}
	g, err := b2.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// RandomInterval returns a random non-empty set of time points on tl.
func RandomInterval(r *rand.Rand, tl *timeline.Timeline) timeline.Interval {
	iv := tl.Point(timeline.Time(r.Intn(tl.Len())))
	for t := 0; t < tl.Len(); t++ {
		if r.Intn(3) == 0 {
			iv = iv.Union(tl.Point(timeline.Time(t)))
		}
	}
	return iv
}

// RandomRange returns a random non-empty contiguous interval on tl.
func RandomRange(r *rand.Rand, tl *timeline.Timeline) timeline.Interval {
	from := r.Intn(tl.Len())
	to := from + r.Intn(tl.Len()-from)
	return tl.Range(timeline.Time(from), timeline.Time(to))
}
