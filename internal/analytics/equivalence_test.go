package analytics

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/materialize"
	"repro/internal/timeline"
)

// randomGraph builds a seeded random evolving graph: random timeline
// length, node/edge lifetimes, one static and one time-varying attribute.
func randomGraph(t testing.TB, seed int64) *core.Graph {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	T := 1 + r.Intn(8)
	labels := make([]string, T)
	for i := range labels {
		labels[i] = fmt.Sprintf("t%d", i)
	}
	tl, err := timeline.New(labels...)
	if err != nil {
		t.Fatalf("timeline: %v", err)
	}
	b := core.NewBuilder(tl,
		core.AttrSpec{Name: "color", Kind: core.Static},
		core.AttrSpec{Name: "level", Kind: core.TimeVarying},
	)
	nNodes := 2 + r.Intn(28)
	nodes := make([]core.NodeID, nNodes)
	active := make([][]bool, nNodes) // node × time activity, for edge placement
	for i := range nodes {
		id := b.AddNode(fmt.Sprintf("n%02d", i))
		nodes[i] = id
		active[i] = make([]bool, T)
		b.SetStatic(0, id, []string{"red", "green", "blue"}[r.Intn(3)])
		alive := false
		for ti := 0; ti < T; ti++ {
			if r.Float64() < 0.6 {
				active[i][ti] = true
				alive = true
			}
		}
		if !alive { // every node exists somewhere
			active[i][r.Intn(T)] = true
		}
		for ti := 0; ti < T; ti++ {
			if active[i][ti] {
				b.SetNodeTime(id, timeline.Time(ti))
				b.SetVarying(1, id, timeline.Time(ti), fmt.Sprintf("%d", r.Intn(4)))
			}
		}
	}
	for i := 0; i < 3*nNodes; i++ {
		ui, vi := r.Intn(nNodes), r.Intn(nNodes)
		if ui == vi {
			continue
		}
		var times []int
		for ti := 0; ti < T; ti++ {
			if active[ui][ti] && active[vi][ti] && r.Float64() < 0.5 {
				times = append(times, ti)
			}
		}
		if len(times) == 0 {
			continue
		}
		e := b.AddEdge(nodes[ui], nodes[vi])
		for _, ti := range times {
			b.SetEdgeTime(e, timeline.Time(ti))
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return g
}

// checkAll asserts every engine pair agrees to the byte on g for a sweep
// of specs derived from the rng.
func checkAll(t *testing.T, g *core.Graph, r *rand.Rand, attrs []string) {
	t.Helper()
	T := g.Timeline().Len()
	kinds := []agg.Kind{agg.Distinct, agg.All}
	cat := materialize.NewCatalog(g)

	// EVENTS: widths 1, 2 and a random one, both kinds, random MIN.
	for _, w := range []int{1, 2, 1 + r.Intn(T+1)} {
		for _, kind := range kinds {
			spec := EventsSpec{Schema: mustSchema(t, g, attrs...), Kind: kind, Width: w, Min: int64(r.Intn(3))}
			want := asJSON(t, NaiveEvents(g, spec))
			if got := asJSON(t, EventsScan(g, spec)); got != want {
				t.Errorf("events scan (w=%d kind=%v) diverges:\n got %s\nwant %s", w, kind, got, want)
			}
			if got := asJSON(t, EventsSweep(g, spec)); got != want {
				t.Errorf("events sweep (w=%d kind=%v) diverges:\n got %s\nwant %s", w, kind, got, want)
			}
		}
	}

	// TREND: widths 1..3, both kinds; the catalog engine on ALL only.
	for w := 1; w <= 3; w++ {
		for _, kind := range kinds {
			spec := TrendSpec{Schema: mustSchema(t, g, attrs...), Kind: kind, Width: w}
			want := asJSON(t, NaiveTrend(g, spec))
			if got := asJSON(t, TrendScan(g, spec)); got != want {
				t.Errorf("trend scan (w=%d kind=%v) diverges:\n got %s\nwant %s", w, kind, got, want)
			}
			if kind == agg.All {
				res, err := TrendCatalog(cat, g, spec)
				if err != nil {
					t.Fatalf("trend catalog: %v", err)
				}
				if got := asJSON(t, res); got != want {
					t.Errorf("trend catalog (w=%d) diverges:\n got %s\nwant %s", w, got, want)
				}
			}
		}
	}

	// PATHS: random source/target sets, random contiguous windows.
	var all []core.NodeID
	for n := 0; n < g.NumNodes(); n++ {
		all = append(all, core.NodeID(n))
	}
	pick := func(k int) []core.NodeID {
		out := make([]core.NodeID, 0, k)
		for i := 0; i < k; i++ {
			out = append(out, all[r.Intn(len(all))])
		}
		return out
	}
	for trial := 0; trial < 3; trial++ {
		lo := r.Intn(T)
		hi := lo + r.Intn(T-lo)
		win := g.Timeline().Range(timeline.Time(lo), timeline.Time(hi))
		for _, mode := range []string{ModeEarliest, ModeFastest} {
			spec := PathsSpec{Mode: mode, Src: pick(1 + r.Intn(3)), Dst: pick(1 + r.Intn(5)), Window: win}
			want := asJSON(t, NaivePaths(g, spec))
			if got := asJSON(t, NewPathsEngine(g, spec).Run()); got != want {
				t.Errorf("paths frontier (%s %s) diverges:\n got %s\nwant %s", mode, win, got, want)
			}
			if got := asJSON(t, PathsTimeExpanded(g, spec)); got != want {
				t.Errorf("paths time-expanded (%s %s) diverges:\n got %s\nwant %s", mode, win, got, want)
			}
		}
	}
}

// TestEquivalenceRandomGraphs proves all engines byte-identical to the
// naive oracles on 30 random evolving graphs.
func TestEquivalenceRandomGraphs(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			g := randomGraph(t, seed)
			r := rand.New(rand.NewSource(seed + 1000))
			checkAll(t, g, r, []string{"color", "level"})
			checkAll(t, g, rand.New(rand.NewSource(seed+2000)), []string{"color"})
		})
	}
}

// TestEquivalenceDBLP proves engine/oracle agreement on the synthetic DBLP
// graph at three scales (the two larger ones are skipped under -short).
func TestEquivalenceDBLP(t *testing.T) {
	scales := []float64{0.01, 0.03, 0.08}
	for i, scale := range scales {
		if testing.Short() && i > 0 {
			break
		}
		scale := scale
		t.Run(fmt.Sprintf("scale%g", scale), func(t *testing.T) {
			g := dataset.DBLPScaled(7, scale)
			r := rand.New(rand.NewSource(int64(i)))
			checkAll(t, g, r, []string{"gender"})
		})
	}
}

// TestAnalyticsConcurrencyHammer runs every engine concurrently on shared
// immutable state; run with -race this is the subsystem's data-race check.
func TestAnalyticsConcurrencyHammer(t *testing.T) {
	g := randomGraph(t, 99)
	schema := mustSchema(t, g, "color", "level")
	cat := materialize.NewCatalog(g)
	eSpec := EventsSpec{Schema: schema, Kind: agg.All, Width: 1}
	tSpec := TrendSpec{Schema: schema, Kind: agg.All, Width: 2}
	pSpec := PathsSpec{Mode: ModeFastest, Src: []core.NodeID{0}, Dst: []core.NodeID{1, 2},
		Window: g.Timeline().All()}
	engine := NewPathsEngine(g, pSpec)
	wantE, wantT, wantP := asJSON(t, EventsSweep(g, eSpec)), asJSON(t, TrendScan(g, tSpec)), asJSON(t, engine.Run())
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				if got := asJSON(t, EventsSweep(g, eSpec)); got != wantE {
					t.Errorf("concurrent events diverged")
				}
				if got := asJSON(t, TrendScan(g, tSpec)); got != wantT {
					t.Errorf("concurrent trend diverged")
				}
				if res, err := TrendCatalog(cat, g, tSpec); err != nil || asJSON(t, res) != wantT {
					t.Errorf("concurrent trend catalog diverged (err=%v)", err)
				}
				if got := asJSON(t, engine.Run()); got != wantP {
					t.Errorf("concurrent paths diverged")
				}
			}
		}()
	}
	wg.Wait()
}
