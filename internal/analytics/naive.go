package analytics

import (
	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/timeline"
)

// This file holds the brute-force reference oracles. They share nothing
// with the fast engines beyond the row types and the slope formula: no
// bitset iteration, no evolution package, no buckets, no catalogs — just
// per-point membership tests and monotone fixpoints. Tests byte-compare
// their JSON against every fast engine.

// NaiveEvents recomputes EVENTS by scanning every (node, time) cell of
// every window pair.
func NaiveEvents(g *core.Graph, spec EventsSpec) *EventsResult {
	tl := g.Timeline()
	w := spec.width()
	T := tl.Len()
	nw := numWindows(T, w)
	out := &EventsResult{Width: w, Steps: maxInt(nw-1, 0)}
	for s := 0; s < out.Steps; s++ {
		weights := make(map[agg.Tuple]*[3]int64) // St, Gr, Shr
		for n := 0; n < g.NumNodes(); n++ {
			id := core.NodeID(n)
			oldCnt := make(map[agg.Tuple]int64)
			newCnt := make(map[agg.Tuple]int64)
			for t := 0; t < T; t++ {
				win := t / w
				if win != s && win != s+1 {
					continue
				}
				if !g.NodeTau(id).Contains(t) {
					continue
				}
				if spec.Filter != nil && !spec.Filter(id, timeline.Time(t)) {
					continue
				}
				tu, ok := spec.Schema.TupleAt(id, timeline.Time(t))
				if !ok {
					continue
				}
				if win == s {
					oldCnt[tu]++
				} else {
					newCnt[tu]++
				}
			}
			for tu := range oldCnt {
				if _, seen := weights[tu]; !seen {
					weights[tu] = &[3]int64{}
				}
			}
			for tu := range newCnt {
				if _, seen := weights[tu]; !seen {
					weights[tu] = &[3]int64{}
				}
			}
			for tu, wt := range weights {
				c0, c1 := oldCnt[tu], newCnt[tu]
				switch {
				case c0 > 0 && c1 > 0:
					if spec.Kind == agg.Distinct {
						wt[0]++
					} else {
						wt[0] += c0 + c1
					}
				case c1 > 0:
					if spec.Kind == agg.Distinct {
						wt[1]++
					} else {
						wt[1] += c1
					}
				case c0 > 0:
					if spec.Kind == agg.Distinct {
						wt[2]++
					} else {
						wt[2] += c0
					}
				}
			}
		}
		oldLo, oldHi := tileBounds(s, w, T)
		newLo, newHi := tileBounds(s+1, w, T)
		for _, tu := range sortedTuples(spec.Schema, weights) {
			wt := weights[tu]
			if wt[1]+wt[2] < spec.Min {
				continue
			}
			out.Rows = append(out.Rows, EventRow{
				Step:  s,
				Old:   windowLabel(tl, oldLo, oldHi),
				New:   windowLabel(tl, newLo, newHi),
				Group: spec.Schema.Label(tu),
				St:    wt[0],
				Gr:    wt[1],
				Shr:   wt[2],
				Class: classOf(wt[1], wt[2]),
			})
		}
	}
	return out
}

// sortedTuples orders a weight map's keys by decoded label.
func sortedTuples(schema *agg.Schema, m map[agg.Tuple]*[3]int64) []agg.Tuple {
	out := make([]agg.Tuple, 0, len(m))
	for tu := range m {
		out = append(out, tu)
	}
	for i := 1; i < len(out); i++ { // insertion sort: oracle stays dependency-free
		for j := i; j > 0 && schema.Label(out[j]) < schema.Label(out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// NaivePaths recomputes PATHS as a monotone reachability fixpoint over the
// full (time × node) matrix, one matrix per departure point.
func NaivePaths(g *core.Graph, spec PathsSpec) *PathsResult {
	if spec.Window.IsEmpty() {
		return pathsRun(g, spec, nil)
	}
	hi := int(spec.Window.Max())
	sweep := func(t0 int, ea []int) {
		for i := range ea {
			ea[i] = -1
		}
		n := g.NumNodes()
		span := hi - t0 + 1
		reach := make([][]bool, span)
		for i := range reach {
			reach[i] = make([]bool, n)
		}
		// Seeds: a source is present from its first active point >= t0 on.
		for _, u := range spec.Src {
			for t := t0; t <= hi; t++ {
				if g.NodeTau(u).Contains(t) {
					for ti := t - t0; ti < span; ti++ {
						reach[ti][u] = true
					}
					break
				}
			}
		}
		// Fixpoint: waiting carries reachability forward; an active edge
		// carries it across within its point.
		for changed := true; changed; {
			changed = false
			for ti := 0; ti < span; ti++ {
				if ti > 0 {
					for v := 0; v < n; v++ {
						if reach[ti-1][v] && !reach[ti][v] {
							reach[ti][v] = true
							changed = true
						}
					}
				}
				for e := 0; e < g.NumEdges(); e++ {
					id := core.EdgeID(e)
					if !g.EdgeTau(id).Contains(t0 + ti) {
						continue
					}
					ep := g.Edge(id)
					if reach[ti][ep.U] && !reach[ti][ep.V] {
						reach[ti][ep.V] = true
						changed = true
					}
				}
			}
		}
		for v := 0; v < n; v++ {
			for ti := 0; ti < span; ti++ {
				if reach[ti][v] {
					ea[v] = t0 + ti
					break
				}
			}
		}
	}
	return pathsRun(g, spec, sweep)
}

// NaiveTrend recomputes TREND by rescanning every (node, time) cell of
// every window position.
func NaiveTrend(g *core.Graph, spec TrendSpec) *TrendResult {
	tl := g.Timeline()
	w := spec.width()
	T := tl.Len()
	nw := trendWindows(T, w)
	out := &TrendResult{Width: w, Windows: nw}
	if nw == 0 {
		return out
	}
	series := make(map[agg.Tuple][]int64)
	for j := 0; j < nw; j++ {
		for n := 0; n < g.NumNodes(); n++ {
			id := core.NodeID(n)
			seen := make(map[agg.Tuple]bool)
			for t := j; t <= j+w-1; t++ {
				if !g.NodeTau(id).Contains(t) {
					continue
				}
				if spec.Filter != nil && !spec.Filter(id, timeline.Time(t)) {
					continue
				}
				tu, ok := spec.Schema.TupleAt(id, timeline.Time(t))
				if !ok {
					continue
				}
				if spec.Kind == agg.Distinct {
					seen[tu] = true
					continue
				}
				s := series[tu]
				if s == nil {
					s = make([]int64, nw)
					series[tu] = s
				}
				s[j]++
			}
			for tu := range seen {
				s := series[tu]
				if s == nil {
					s = make([]int64, nw)
					series[tu] = s
				}
				s[j]++
			}
		}
	}
	out.Rows = trendRows(spec.Schema, series)
	return out
}
