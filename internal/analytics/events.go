package analytics

import (
	"sort"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/evolution"
	"repro/internal/timeline"
)

// EventsSpec parameterizes one EVENTS computation: the timeline is tiled
// into width-Width windows and every consecutive window pair is classified
// with the evolution-aggregate semantics (per-entity tuple appearances,
// Fig. 4b) under Schema/Kind/Filter. Rows whose change magnitude Gr+Shr
// falls below Min are dropped (Min 0 keeps pure-stability groups too).
type EventsSpec struct {
	Schema *agg.Schema
	Kind   agg.Kind
	Width  int
	Min    int64
	Filter evolution.Filter
}

// width returns the normalized window width (at least 1).
func (s EventsSpec) width() int {
	if s.Width < 1 {
		return 1
	}
	return s.Width
}

// EventRow is one (step, attribute group) event classification.
type EventRow struct {
	Step  int    `json:"step"`
	Old   string `json:"old"`
	New   string `json:"new"`
	Group string `json:"group"`
	St    int64  `json:"st"`
	Gr    int64  `json:"gr"`
	Shr   int64  `json:"shr"`
	Class string `json:"class"`
}

// EventsResult is a full EVENTS answer: rows ordered by step, then group
// label.
type EventsResult struct {
	Width int        `json:"width"`
	Steps int        `json:"steps"`
	Rows  []EventRow `json:"rows"`
}

// EventsScan answers an EVENTS query by running one evolution aggregate
// per consecutive window pair: O(steps · (|V|+|E|)). It is the preferred
// engine when there are few steps (the planner's crossover).
func EventsScan(g *core.Graph, spec EventsSpec) *EventsResult {
	tl := g.Timeline()
	w := spec.width()
	nw := numWindows(tl.Len(), w)
	out := &EventsResult{Width: w, Steps: maxInt(nw-1, 0)}
	for s := 0; s < out.Steps; s++ {
		oldLo, oldHi := tileBounds(s, w, tl.Len())
		newLo, newHi := tileBounds(s+1, w, tl.Len())
		old := tl.Range(timeline.Time(oldLo), timeline.Time(oldHi))
		new := tl.Range(timeline.Time(newLo), timeline.Time(newHi))
		ev := evolution.Aggregate(g, old, new, spec.Schema, spec.Kind, spec.Filter)
		for _, tu := range ev.SortedNodes() {
			wt := ev.Nodes[tu]
			if wt.Gr+wt.Shr < spec.Min {
				continue
			}
			out.Rows = append(out.Rows, EventRow{
				Step:  s,
				Old:   windowLabel(tl, oldLo, oldHi),
				New:   windowLabel(tl, newLo, newHi),
				Group: spec.Schema.Label(tu),
				St:    wt.St,
				Gr:    wt.Gr,
				Shr:   wt.Shr,
				Class: classOf(wt.Gr, wt.Shr),
			})
		}
	}
	return out
}

// stepKey identifies one (step, group) accumulation cell.
type stepKey struct {
	step int
	tu   agg.Tuple
}

// EventsSweep answers the same query in a single pass over the entities:
// each node's per-window tuple-appearance counts are collected from its
// timestamp set once, then folded into every step the node touches —
// O(|V|+|E| + appearances), independent of the step count. Byte-identical
// to EventsScan by construction (both follow evolution.Aggregate's
// per-entity classification).
func EventsSweep(g *core.Graph, spec EventsSpec) *EventsResult {
	tl := g.Timeline()
	w := spec.width()
	T := tl.Len()
	nw := numWindows(T, w)
	out := &EventsResult{Width: w, Steps: maxInt(nw-1, 0)}
	if out.Steps == 0 {
		return out
	}
	acc := make(map[stepKey]evolution.Weights)
	counts := make(map[agg.Tuple]map[int]int64)
	for n := 0; n < g.NumNodes(); n++ {
		id := core.NodeID(n)
		clear(counts)
		g.NodeTau(id).ForEach(func(t int) {
			if spec.Filter != nil && !spec.Filter(id, timeline.Time(t)) {
				return
			}
			tu, ok := spec.Schema.TupleAt(id, timeline.Time(t))
			if !ok {
				return
			}
			m := counts[tu]
			if m == nil {
				m = make(map[int]int64)
				counts[tu] = m
			}
			m[t/w]++
		})
		for tu, wins := range counts {
			// A count in window j participates in step j-1 (as the new
			// side) and step j (as the old side).
			steps := make(map[int]struct{}, 2*len(wins))
			for j := range wins {
				if j-1 >= 0 {
					steps[j-1] = struct{}{}
				}
				if j < out.Steps {
					steps[j] = struct{}{}
				}
			}
			for s := range steps {
				c0, c1 := wins[s], wins[s+1]
				k := stepKey{step: s, tu: tu}
				acc[k] = foldClass(acc[k], c0, c1, spec.Kind)
			}
		}
	}
	for k, wt := range acc {
		if wt.Gr+wt.Shr < spec.Min {
			continue
		}
		oldLo, oldHi := tileBounds(k.step, w, T)
		newLo, newHi := tileBounds(k.step+1, w, T)
		out.Rows = append(out.Rows, EventRow{
			Step:  k.step,
			Old:   windowLabel(tl, oldLo, oldHi),
			New:   windowLabel(tl, newLo, newHi),
			Group: spec.Schema.Label(k.tu),
			St:    wt.St,
			Gr:    wt.Gr,
			Shr:   wt.Shr,
			Class: classOf(wt.Gr, wt.Shr),
		})
	}
	sortEventRows(out.Rows)
	return out
}

// foldClass folds one entity's (old, new) appearance counts for a tuple
// into the running weights — the evolution.addClass semantics.
func foldClass(wt evolution.Weights, c0, c1 int64, kind agg.Kind) evolution.Weights {
	switch {
	case c0 > 0 && c1 > 0:
		if kind == agg.Distinct {
			wt.St++
		} else {
			wt.St += c0 + c1
		}
	case c1 > 0:
		if kind == agg.Distinct {
			wt.Gr++
		} else {
			wt.Gr += c1
		}
	case c0 > 0:
		if kind == agg.Distinct {
			wt.Shr++
		} else {
			wt.Shr += c0
		}
	}
	return wt
}

func sortEventRows(rows []EventRow) {
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Step != rows[j].Step {
			return rows[i].Step < rows[j].Step
		}
		return rows[i].Group < rows[j].Group
	})
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
