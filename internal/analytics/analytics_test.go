package analytics

import (
	"encoding/json"
	"testing"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/materialize"
)

// mustSchema builds a node-group schema over the named attributes.
func mustSchema(t testing.TB, g *core.Graph, names ...string) *agg.Schema {
	t.Helper()
	s, err := agg.ByName(g, names...)
	if err != nil {
		t.Fatalf("schema %v: %v", names, err)
	}
	return s
}

// asJSON renders a result for byte comparison.
func asJSON(t testing.TB, v interface{}) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return string(b)
}

func TestEventsPaperExample(t *testing.T) {
	g := core.PaperExample()
	spec := EventsSpec{Schema: mustSchema(t, g, "gender"), Kind: agg.Distinct, Width: 1}
	res := EventsScan(g, spec)
	if res.Steps != g.Timeline().Len()-1 {
		t.Fatalf("steps = %d, want %d", res.Steps, g.Timeline().Len()-1)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no event rows on the paper example")
	}
	for _, r := range res.Rows {
		if r.Class != classOf(r.Gr, r.Shr) {
			t.Errorf("row %+v: class mismatch", r)
		}
	}
	// The three implementations agree to the byte.
	if a, b := asJSON(t, res), asJSON(t, EventsSweep(g, spec)); a != b {
		t.Errorf("scan vs sweep:\n%s\n%s", a, b)
	}
	if a, b := asJSON(t, res), asJSON(t, NaiveEvents(g, spec)); a != b {
		t.Errorf("scan vs naive:\n%s\n%s", a, b)
	}
}

func TestEventsMinFilters(t *testing.T) {
	g := core.PaperExample()
	spec := EventsSpec{Schema: mustSchema(t, g, "gender"), Kind: agg.Distinct, Width: 1, Min: 1}
	for _, r := range EventsSweep(g, spec).Rows {
		if r.Gr+r.Shr < 1 {
			t.Errorf("row %+v below MIN", r)
		}
	}
}

func TestEventsWideWindowSingleStep(t *testing.T) {
	g := core.PaperExample()
	T := g.Timeline().Len()
	// Width covering the whole timeline: one window, zero steps.
	spec := EventsSpec{Schema: mustSchema(t, g, "gender"), Kind: agg.All, Width: T}
	for name, res := range map[string]*EventsResult{
		"scan": EventsScan(g, spec), "sweep": EventsSweep(g, spec), "naive": NaiveEvents(g, spec),
	} {
		if res.Steps != 0 || len(res.Rows) != 0 {
			t.Errorf("%s: steps=%d rows=%d, want 0/0", name, res.Steps, len(res.Rows))
		}
	}
}

func TestTrendPaperExample(t *testing.T) {
	g := core.PaperExample()
	spec := TrendSpec{Schema: mustSchema(t, g, "gender"), Kind: agg.All, Width: 2}
	scan := TrendScan(g, spec)
	if scan.Windows != g.Timeline().Len()-1 {
		t.Fatalf("windows = %d, want %d", scan.Windows, g.Timeline().Len()-1)
	}
	cat, err := TrendCatalog(materialize.NewCatalog(g), g, spec)
	if err != nil {
		t.Fatalf("catalog: %v", err)
	}
	if a, b := asJSON(t, scan), asJSON(t, cat); a != b {
		t.Errorf("scan vs catalog:\n%s\n%s", a, b)
	}
	if a, b := asJSON(t, scan), asJSON(t, NaiveTrend(g, spec)); a != b {
		t.Errorf("scan vs naive:\n%s\n%s", a, b)
	}
}

func TestTrendDistinct(t *testing.T) {
	g := core.PaperExample()
	for w := 1; w <= g.Timeline().Len()+1; w++ {
		spec := TrendSpec{Schema: mustSchema(t, g, "gender", "publications"), Kind: agg.Distinct, Width: w}
		if a, b := asJSON(t, TrendScan(g, spec)), asJSON(t, NaiveTrend(g, spec)); a != b {
			t.Errorf("width %d: scan vs naive:\n%s\n%s", w, a, b)
		}
	}
}

func TestSlopeOf(t *testing.T) {
	cases := []struct {
		series []int64
		dir    string
	}{
		{[]int64{1, 2, 3}, "up"},
		{[]int64{3, 2, 1}, "down"},
		{[]int64{2, 2, 2}, "flat"},
		{[]int64{1, 3, 1}, "flat"}, // symmetric: zero slope
		{[]int64{5}, "flat"},       // single window: no fit
		{nil, "flat"},
	}
	for _, c := range cases {
		if _, dir := slopeOf(c.series); dir != c.dir {
			t.Errorf("slopeOf(%v) direction = %s, want %s", c.series, dir, c.dir)
		}
	}
	if s, _ := slopeOf([]int64{0, 3}); s != "3" {
		t.Errorf("slope = %s, want 3", s)
	}
}

func TestPathsPaperExample(t *testing.T) {
	g := core.PaperExample()
	// Sources/targets: every node, whole timeline — self rows must exist
	// for any source that is also a target.
	var all []core.NodeID
	for n := 0; n < g.NumNodes(); n++ {
		all = append(all, core.NodeID(n))
	}
	for _, mode := range []string{ModeEarliest, ModeFastest} {
		spec := PathsSpec{Mode: mode, Src: all[:1], Dst: all, Window: g.Timeline().All()}
		fast := NewPathsEngine(g, spec).Run()
		if a, b := asJSON(t, fast), asJSON(t, PathsTimeExpanded(g, spec)); a != b {
			t.Errorf("%s: frontier vs time-expanded:\n%s\n%s", mode, a, b)
		}
		if a, b := asJSON(t, fast), asJSON(t, NaivePaths(g, spec)); a != b {
			t.Errorf("%s: frontier vs naive:\n%s\n%s", mode, a, b)
		}
		// The source reaches itself at its first active point.
		found := false
		for _, r := range fast.Rows {
			if r.Node == g.NodeLabel(all[0]) {
				found = true
				if r.Duration < 1 {
					t.Errorf("%s: self row duration %d < 1", mode, r.Duration)
				}
			}
		}
		if !found {
			t.Errorf("%s: no self row for source", mode)
		}
	}
}

func TestPathsEmptyWindow(t *testing.T) {
	g := core.PaperExample()
	spec := PathsSpec{Mode: ModeEarliest, Src: []core.NodeID{0}, Dst: []core.NodeID{1},
		Window: g.Timeline().Empty()}
	for name, res := range map[string]*PathsResult{
		"frontier": NewPathsEngine(g, spec).Run(),
		"expanded": PathsTimeExpanded(g, spec),
		"naive":    NaivePaths(g, spec),
	} {
		if res.Reached != 0 || len(res.Rows) != 0 {
			t.Errorf("%s: reached %d rows on an empty window", name, res.Reached)
		}
	}
}
