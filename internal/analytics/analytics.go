// Package analytics implements GraphTempo's evolution-analytics
// workloads: the EVENTS, PATHS and TREND statement families.
//
// Each family ships as a pair (or triple) of engines that must agree to the
// byte on every input:
//
//   - EVENTS classifies attribute groups into stability / growth /
//     shrinkage events between consecutive width-w windows of the timeline
//     (the TempoGRAPHer exploration, built on internal/evolution's
//     per-entity tuple-appearance semantics). EventsScan recomputes one
//     evolution aggregate per window pair; EventsSweep answers every step
//     in a single pass over the entities.
//   - PATHS answers time-respecting reachability between node sets within
//     a window: earliest-arrival and fastest (shortest-duration) paths.
//     The frontier engine buckets edge activity per time point through the
//     compressed bitset vectors and sweeps once in time order; the
//     time-expanded engine re-tests every edge at every point.
//   - TREND computes per-group weight series over a sliding width-w
//     window with an integer least-squares direction classification. The
//     catalog engine composes each window from the materialize catalog's
//     prefix sums in O(windows) vector operations; the scan engine builds
//     the series directly from the base graph.
//
// The Naive* functions in naive.go are deliberately dumb third
// implementations (per-point set scans, monotone fixpoints) used as
// equivalence oracles by tests, benchmarks and the analytics-e2e CI job.
// Engine selection between the fast forms is the planner's job
// (internal/plan); this package only computes.
package analytics

import (
	"strconv"

	"repro/internal/timeline"
)

// Event class labels, shared by EVENTS rows and the oracles.
const (
	ClassGrowth    = "growth"
	ClassShrinkage = "shrinkage"
	ClassStability = "stability"
)

// classOf labels a weight triple: whichever of growth/shrinkage dominates
// names the event; balance (including pure stability) is stability.
func classOf(gr, shr int64) string {
	switch {
	case gr > shr:
		return ClassGrowth
	case shr > gr:
		return ClassShrinkage
	default:
		return ClassStability
	}
}

// numWindows returns how many width-w tiles cover a T-point timeline.
func numWindows(T, w int) int {
	if T <= 0 {
		return 0
	}
	return (T + w - 1) / w
}

// tileBounds returns the inclusive time bounds of tile j under width w on a
// T-point timeline (the last tile may be short).
func tileBounds(j, w, T int) (lo, hi int) {
	lo = j * w
	hi = lo + w - 1
	if hi > T-1 {
		hi = T - 1
	}
	return lo, hi
}

// windowLabel renders the inclusive label range of a window.
func windowLabel(tl *timeline.Timeline, lo, hi int) string {
	if lo == hi {
		return tl.Label(timeline.Time(lo))
	}
	return tl.Label(timeline.Time(lo)) + ".." + tl.Label(timeline.Time(hi))
}

// slopeOf fits an integer least-squares line through (j, series[j]) and
// returns the rendered slope plus its direction. The numerator and
// denominator are exact integers, so the direction is exact and the
// rendered float is bit-identical across engines:
//
//	num = n·Σ(j·s_j) − Σj·Σs_j,  den = n·Σj² − (Σj)²,  slope = num/den
func slopeOf(series []int64) (slope string, direction string) {
	n := int64(len(series))
	if n < 2 {
		return "0", "flat"
	}
	var sumJ, sumJJ, sumS, sumJS int64
	for j, s := range series {
		jj := int64(j)
		sumJ += jj
		sumJJ += jj * jj
		sumS += s
		sumJS += jj * s
	}
	num := n*sumJS - sumJ*sumS
	den := n*sumJJ - sumJ*sumJ
	dir := "flat"
	if num > 0 {
		dir = "up"
	} else if num < 0 {
		dir = "down"
	}
	return strconv.FormatFloat(float64(num)/float64(den), 'g', -1, 64), dir
}
