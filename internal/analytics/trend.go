package analytics

import (
	"sort"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/materialize"
	"repro/internal/timeline"
)

// TrendSpec parameterizes one TREND computation: for every attribute group
// the weight series over the sliding window [j, j+Width-1] (stride 1) is
// built, then classified by the sign of its integer least-squares slope.
// With kind All a window's weight is the group's appearance count inside
// it; with kind Distinct it is the number of distinct entities exhibiting
// the group's tuple inside it.
type TrendSpec struct {
	Schema *agg.Schema
	Kind   agg.Kind
	Width  int
	Filter agg.Filter
}

// width returns the normalized window width (at least 1).
func (s TrendSpec) width() int {
	if s.Width < 1 {
		return 1
	}
	return s.Width
}

// TrendRow is one group's series and classification.
type TrendRow struct {
	Group     string  `json:"group"`
	Series    []int64 `json:"series"`
	Slope     string  `json:"slope"`
	Direction string  `json:"direction"`
}

// TrendResult is a full TREND answer: rows ordered by group label.
type TrendResult struct {
	Width   int        `json:"width"`
	Windows int        `json:"windows"`
	Rows    []TrendRow `json:"rows"`
}

// trendWindows returns the number of sliding-window positions.
func trendWindows(T, w int) int {
	if T < w {
		return 0
	}
	return T - w + 1
}

// TrendCatalog answers an ALL-kind unfiltered TREND through the
// materialization catalog: each window position is one prefix-sum
// composition (UnionAll), so the whole series costs O(windows) vector
// operations instead of a base-graph scan — the §4.3 T-distributive reuse
// applied to a sliding window.
func TrendCatalog(cat *materialize.Catalog, g *core.Graph, spec TrendSpec) (*TrendResult, error) {
	tl := g.Timeline()
	w := spec.width()
	nw := trendWindows(tl.Len(), w)
	out := &TrendResult{Width: w, Windows: nw}
	if nw == 0 {
		return out, nil
	}
	attrs := spec.Schema.Attrs()
	series := make(map[agg.Tuple][]int64)
	for j := 0; j < nw; j++ {
		iv := tl.Range(timeline.Time(j), timeline.Time(j+w-1))
		ag, _, err := cat.UnionAll(iv, attrs...)
		if err != nil {
			return nil, err
		}
		for tu, weight := range ag.Nodes {
			s := series[tu]
			if s == nil {
				s = make([]int64, nw)
				series[tu] = s
			}
			s[j] = weight
		}
	}
	out.Rows = trendRows(spec.Schema, series)
	return out, nil
}

// TrendScan answers a TREND directly from the base graph: one pass over
// the entities collects per-point (All) or per-window-coverage (Distinct)
// contributions, then sliding sums produce every series.
func TrendScan(g *core.Graph, spec TrendSpec) *TrendResult {
	tl := g.Timeline()
	w := spec.width()
	T := tl.Len()
	nw := trendWindows(T, w)
	out := &TrendResult{Width: w, Windows: nw}
	if nw == 0 {
		return out
	}
	series := make(map[agg.Tuple][]int64)
	if spec.Kind == agg.All {
		// Per-point appearance counts, then one sliding sum per group.
		points := make(map[agg.Tuple][]int64)
		for n := 0; n < g.NumNodes(); n++ {
			id := core.NodeID(n)
			g.NodeTau(id).ForEach(func(t int) {
				if spec.Filter != nil && !spec.Filter(id, timeline.Time(t)) {
					return
				}
				tu, ok := spec.Schema.TupleAt(id, timeline.Time(t))
				if !ok {
					return
				}
				p := points[tu]
				if p == nil {
					p = make([]int64, T)
					points[tu] = p
				}
				p[t]++
			})
		}
		for tu, p := range points {
			s := make([]int64, nw)
			var sum int64
			for t := 0; t < w; t++ {
				sum += p[t]
			}
			s[0] = sum
			for j := 1; j < nw; j++ {
				sum += p[j+w-1] - p[j-1]
				s[j] = sum
			}
			series[tu] = s
		}
	} else {
		// Distinct entities per window: each entity covers, per tuple, the
		// union of window-start intervals [t-w+1, t] over its appearance
		// times; merged intervals become +1/−1 marks on a difference array.
		diff := make(map[agg.Tuple][]int64)
		times := make(map[agg.Tuple][]int)
		for n := 0; n < g.NumNodes(); n++ {
			id := core.NodeID(n)
			clear(times)
			g.NodeTau(id).ForEach(func(t int) {
				if spec.Filter != nil && !spec.Filter(id, timeline.Time(t)) {
					return
				}
				tu, ok := spec.Schema.TupleAt(id, timeline.Time(t))
				if !ok {
					return
				}
				times[tu] = append(times[tu], t)
			})
			for tu, ts := range times {
				d := diff[tu]
				if d == nil {
					d = make([]int64, nw+1)
					diff[tu] = d
				}
				// ts is ascending (ForEach order); [t-w+1, t] intervals for
				// consecutive t1 < t2 overlap exactly when t2-t1 <= w.
				runLo := ts[0]
				prev := ts[0]
				flush := func(lo, hi int) {
					a, b := clampInt(lo-w+1, 0, nw-1), clampInt(hi, 0, nw-1)
					if lo-w+1 > nw-1 || hi < 0 {
						return
					}
					d[a]++
					d[b+1]--
				}
				for _, t := range ts[1:] {
					if t-prev > w {
						flush(runLo, prev)
						runLo = t
					}
					prev = t
				}
				flush(runLo, prev)
			}
		}
		for tu, d := range diff {
			s := make([]int64, nw)
			var sum int64
			zero := true
			for j := 0; j < nw; j++ {
				sum += d[j]
				s[j] = sum
				if sum != 0 {
					zero = false
				}
			}
			if !zero {
				series[tu] = s
			}
		}
	}
	out.Rows = trendRows(spec.Schema, series)
	return out
}

// trendRows renders and orders the series map.
func trendRows(schema *agg.Schema, series map[agg.Tuple][]int64) []TrendRow {
	rows := make([]TrendRow, 0, len(series))
	for tu, s := range series {
		slope, dir := slopeOf(s)
		rows = append(rows, TrendRow{
			Group:     schema.Label(tu),
			Series:    s,
			Slope:     slope,
			Direction: dir,
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Group < rows[j].Group })
	return rows
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
