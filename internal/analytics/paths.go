package analytics

import (
	"sort"

	"repro/internal/core"
	"repro/internal/timeline"
)

// Path modes.
const (
	ModeEarliest = "earliest"
	ModeFastest  = "fastest"
)

// PathsSpec parameterizes one PATHS computation. A time-respecting path
// follows directed edges with non-decreasing time points inside Window;
// within one time point a path may take any number of hops (the snapshot's
// reachability closure), and waiting at a node between points is free. A
// source starts contributing at the first window point where it exists.
//
//   - earliest: the earliest window point at which each target is reached,
//     departing at the window start.
//   - fastest: the minimum duration over all departure points t0 in the
//     window, where duration = arrive − depart + 1 points (ties prefer the
//     earlier arrival, then the earlier departure).
type PathsSpec struct {
	Mode   string // ModeEarliest or ModeFastest
	Src    []core.NodeID
	Dst    []core.NodeID
	Window timeline.Interval // contiguous; empty means no reachable targets
}

// PathRow reports one reached target.
type PathRow struct {
	Node     string `json:"node"`
	Depart   string `json:"depart"`
	Arrive   string `json:"arrive"`
	Duration int    `json:"duration"`
}

// PathsResult is a full PATHS answer: one row per reached target, ordered
// by target label.
type PathsResult struct {
	Mode    string    `json:"mode"`
	Window  string    `json:"window"`
	Reached int       `json:"reached"`
	Rows    []PathRow `json:"rows"`
}

// arrival is one target's best (depart, arrive) pair.
type arrival struct {
	depart, arrive int
}

// PathsEngine is the frontier engine: edge activity is bucketed per window
// point once (through the compressed timestamp vectors — one ForEachInRange
// per edge, run-skipping on bitset.Runs), then each evaluation is a single
// ascending-time sweep with a per-snapshot BFS closure. The bucket index is
// immutable after New, so one engine may run concurrently.
type PathsEngine struct {
	g       *core.Graph
	spec    PathsSpec
	lo, hi  int
	buckets [][]core.EdgeID // edge activity per window point, index t-lo
}

// NewPathsEngine builds the per-point edge buckets for spec's window.
func NewPathsEngine(g *core.Graph, spec PathsSpec) *PathsEngine {
	e := &PathsEngine{g: g, spec: spec}
	if spec.Window.IsEmpty() {
		return e
	}
	e.lo, e.hi = int(spec.Window.Min()), int(spec.Window.Max())
	e.buckets = make([][]core.EdgeID, e.hi-e.lo+1)
	for ei := 0; ei < g.NumEdges(); ei++ {
		id := core.EdgeID(ei)
		g.EdgeTauVec(id).ForEachInRange(e.lo, e.hi+1, func(t int) {
			e.buckets[t-e.lo] = append(e.buckets[t-e.lo], id)
		})
	}
	return e
}

// Run evaluates the spec.
func (e *PathsEngine) Run() *PathsResult {
	return pathsRun(e.g, e.spec, e.sweep)
}

// sweep computes earliest arrivals from the sources into ea (-1 unreached),
// departing no earlier than t0.
func (e *PathsEngine) sweep(t0 int, ea []int) {
	for i := range ea {
		ea[i] = -1
	}
	for _, u := range e.spec.Src {
		if s := e.g.NodeTauVec(u).Next(t0); s >= 0 && s <= e.hi && (ea[u] == -1 || s < ea[u]) {
			ea[u] = s
		}
	}
	var queue []core.NodeID
	adj := make(map[core.NodeID][]core.NodeID)
	for t := t0; t <= e.hi; t++ {
		bucket := e.buckets[t-e.lo]
		if len(bucket) == 0 {
			continue
		}
		clear(adj)
		queue = queue[:0]
		for _, id := range bucket {
			ep := e.g.Edge(id)
			adj[ep.U] = append(adj[ep.U], ep.V)
			// Seed the snapshot closure with heads already reached by t.
			if ea[ep.U] != -1 && ea[ep.U] <= t && (ea[ep.V] == -1 || ea[ep.V] > t) {
				ea[ep.V] = t
				queue = append(queue, ep.V)
			}
		}
		for len(queue) > 0 {
			u := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, v := range adj[u] {
				if ea[v] == -1 || ea[v] > t {
					ea[v] = t
					queue = append(queue, v)
				}
			}
		}
	}
}

// PathsTimeExpanded is the naive engine the planner falls back to on tiny
// windows: no bucket index, every edge is re-tested at every point with a
// per-snapshot fixpoint over the full edge list.
func PathsTimeExpanded(g *core.Graph, spec PathsSpec) *PathsResult {
	if spec.Window.IsEmpty() {
		return pathsRun(g, spec, nil)
	}
	hi := int(spec.Window.Max())
	sweep := func(t0 int, ea []int) {
		for i := range ea {
			ea[i] = -1
		}
		for _, u := range spec.Src {
			for t := t0; t <= hi; t++ {
				if g.NodeTau(u).Contains(t) {
					if ea[u] == -1 || t < ea[u] {
						ea[u] = t
					}
					break
				}
			}
		}
		for t := t0; t <= hi; t++ {
			for changed := true; changed; {
				changed = false
				for ei := 0; ei < g.NumEdges(); ei++ {
					id := core.EdgeID(ei)
					if !g.EdgeTau(id).Contains(t) {
						continue
					}
					ep := g.Edge(id)
					if ea[ep.U] != -1 && ea[ep.U] <= t && (ea[ep.V] == -1 || ea[ep.V] > t) {
						ea[ep.V] = t
						changed = true
					}
				}
			}
		}
	}
	return pathsRun(g, spec, sweep)
}

// pathsRun drives a sweep function through the mode's evaluation loop and
// renders the result rows. A nil sweep (empty window) reaches nothing.
func pathsRun(g *core.Graph, spec PathsSpec, sweep func(t0 int, ea []int)) *PathsResult {
	out := &PathsResult{Mode: spec.Mode, Window: spec.Window.String()}
	if sweep == nil || spec.Window.IsEmpty() {
		return out
	}
	lo, hi := int(spec.Window.Min()), int(spec.Window.Max())
	best := make(map[core.NodeID]arrival)
	ea := make([]int, g.NumNodes())
	starts := []int{lo}
	if spec.Mode == ModeFastest {
		starts = starts[:0]
		for t0 := lo; t0 <= hi; t0++ {
			starts = append(starts, t0)
		}
	}
	for _, t0 := range starts {
		sweep(t0, ea)
		for _, v := range spec.Dst {
			a := ea[v]
			if a == -1 {
				continue
			}
			cand := arrival{depart: t0, arrive: a}
			cur, ok := best[v]
			if !ok || better(cand, cur) {
				best[v] = cand
			}
		}
	}
	tl := g.Timeline()
	dst := append([]core.NodeID(nil), spec.Dst...)
	sort.Slice(dst, func(i, j int) bool { return g.NodeLabel(dst[i]) < g.NodeLabel(dst[j]) })
	seen := make(map[core.NodeID]bool, len(dst))
	for _, v := range dst {
		a, ok := best[v]
		if !ok || seen[v] {
			continue
		}
		seen[v] = true
		out.Rows = append(out.Rows, PathRow{
			Node:     g.NodeLabel(v),
			Depart:   tl.Label(timeline.Time(a.depart)),
			Arrive:   tl.Label(timeline.Time(a.arrive)),
			Duration: a.arrive - a.depart + 1,
		})
	}
	out.Reached = len(out.Rows)
	return out
}

// better orders candidate arrivals: shorter duration, then earlier
// arrival, then earlier departure.
func better(a, b arrival) bool {
	da, db := a.arrive-a.depart, b.arrive-b.depart
	if da != db {
		return da < db
	}
	if a.arrive != b.arrive {
		return a.arrive < b.arrive
	}
	return a.depart < b.depart
}
