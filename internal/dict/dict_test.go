package dict

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestPutAssignsDenseCodes(t *testing.T) {
	d := New()
	if got := d.Put("m"); got != 0 {
		t.Errorf("first Put = %d, want 0", got)
	}
	if got := d.Put("f"); got != 1 {
		t.Errorf("second Put = %d, want 1", got)
	}
	if got := d.Put("m"); got != 0 {
		t.Errorf("repeat Put = %d, want 0", got)
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d, want 2", d.Len())
	}
}

func TestCodeAndValue(t *testing.T) {
	d := New()
	d.Put("a")
	d.Put("b")
	if got := d.Code("b"); got != 1 {
		t.Errorf("Code(b) = %d, want 1", got)
	}
	if got := d.Code("zzz"); got != None {
		t.Errorf("Code(zzz) = %d, want None", got)
	}
	if got := d.Value(0); got != "a" {
		t.Errorf("Value(0) = %q, want a", got)
	}
	if got := d.Value(None); got != "" {
		t.Errorf("Value(None) = %q, want empty", got)
	}
}

func TestValueOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New().Value(3)
}

func TestValuesOrder(t *testing.T) {
	d := New()
	for _, v := range []string{"x", "y", "z"} {
		d.Put(v)
	}
	vs := d.Values()
	for i, want := range []string{"x", "y", "z"} {
		if vs[i] != want {
			t.Errorf("Values[%d] = %q, want %q", i, vs[i], want)
		}
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(n uint8) bool {
		d := New()
		for i := 0; i < int(n); i++ {
			v := fmt.Sprintf("v%d", i%17) // force duplicates
			c := d.Put(v)
			if d.Value(c) != v || d.Code(v) != c {
				return false
			}
		}
		return d.Len() <= 17
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
