// Package dict provides dictionary (string ↔ dense integer code) encoding
// for categorical attribute values.
//
// GraphTempo aggregates nodes by tuples of attribute values. Attribute
// domains are small (gender: 2 values, occupation: 21, publications per
// year: 7–18, …), so encoding each value as a dense int32 code lets the
// aggregation engine form group keys by mixed-radix arithmetic instead of
// string concatenation. The paper's §5.1 observes that aggregation cost is
// proportional to the number of distinct values in the aggregation domain;
// the dictionary makes that domain size explicit (Len).
package dict

import "fmt"

// Code is a dense identifier for a value within one dictionary.
// Missing values (a node that does not exist at a time point has no
// time-varying attribute value) are represented by None.
type Code int32

// None marks a missing value.
const None Code = -1

// Dict interns string values, assigning dense codes in first-seen order.
// The zero value is not usable; call New.
type Dict struct {
	codes  map[string]Code
	values []string
}

// New returns an empty dictionary.
func New() *Dict {
	return &Dict{codes: make(map[string]Code)}
}

// Put returns the code for v, interning it if not yet present.
func (d *Dict) Put(v string) Code {
	if c, ok := d.codes[v]; ok {
		return c
	}
	c := Code(len(d.values))
	d.codes[v] = c
	d.values = append(d.values, v)
	return c
}

// FromValues returns a dictionary whose codes are the positions of values,
// in order — the code assignment a snapshot reader must reproduce exactly
// so persisted tuple codes keep their meaning. values must be distinct.
func FromValues(values []string) *Dict {
	d := &Dict{codes: make(map[string]Code, len(values)), values: append([]string(nil), values...)}
	for i, v := range values {
		if _, dup := d.codes[v]; dup {
			panic(fmt.Sprintf("dict: duplicate value %q in FromValues", v))
		}
		d.codes[v] = Code(i)
	}
	return d
}

// Code returns the code for v, or None if v has never been interned.
func (d *Dict) Code(v string) Code {
	if c, ok := d.codes[v]; ok {
		return c
	}
	return None
}

// Value returns the string for code c. It returns the empty string for None
// and panics for any other out-of-range code.
func (d *Dict) Value(c Code) string {
	if c == None {
		return ""
	}
	if int(c) < 0 || int(c) >= len(d.values) {
		panic(fmt.Sprintf("dict: code %d out of range [0,%d)", c, len(d.values)))
	}
	return d.values[c]
}

// Len returns the number of interned values (the domain cardinality).
func (d *Dict) Len() int { return len(d.values) }

// Clone returns an independent copy of d with the same code assignment.
// Domains are small (§5.1), so cloning per ingest snapshot is cheaper than
// sharing a locked dictionary between a growing stream and its frozen
// read-only snapshots.
func (d *Dict) Clone() *Dict {
	c := &Dict{codes: make(map[string]Code, len(d.codes)), values: append([]string(nil), d.values...)}
	for v, code := range d.codes {
		c.codes[v] = code
	}
	return c
}

// Values returns all interned values in code order. The caller must not
// modify the returned slice.
func (d *Dict) Values() []string { return d.values }
