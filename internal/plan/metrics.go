package plan

import "repro/internal/metrics"

// Selections counts which physical operator the planner chose for each
// executed plan, one counter per operator. Cached plans count on every
// execution (selection is a property of the run, not the compile), so the
// counters reflect live traffic like agg.KernelSelections does. They are
// package-level because planning happens inside the library where no
// registry is in scope; the serving layer registers them under one metric
// family (graphtempod_planner_selections_total{op=...}).
var Selections struct {
	CatalogUnion metrics.Counter // union-ALL answered through the materialization catalog
	DenseAgg     metrics.Counter // view aggregation on the dense flat-array kernel
	MapAgg       metrics.Counter // view aggregation on a map kernel (static or varying)
	MeasureAgg   metrics.Counter // SUM/AVG/MIN/MAX measure aggregation
	FilteredAgg  metrics.Counter // predicate-filtered aggregation (serial map engine)
	FastExplore  metrics.Counter // exploration on the incremental-view fast path
	SeedExplore  metrics.Counter // exploration on the seed (selector-view) engine
	TuneExplore  metrics.Counter // §3.5 threshold tuning loop (memoized evaluation)
	Top          metrics.Counter // top-N attribute-group ranking
	Evolve       metrics.Counter // evolution aggregate
	Timeline     metrics.Counter // per-consecutive-pair evolution timeline
	PartialAgg   metrics.Counter // shard-local partial aggregate (scatter slice execution)
	ShardScatter metrics.Counter // shard slices fanned out by scattered aggregates
	GatherMerge  metrics.Counter // cross-shard gather-merge roots
	EventsScan   metrics.Counter // EVENTS on the per-step evolution-aggregate engine
	EventsSweep  metrics.Counter // EVENTS on the single-pass entity-sweep engine
	PathsFront   metrics.Counter // PATHS on the time-bucketed frontier engine
	PathsNaive   metrics.Counter // PATHS on the time-expanded fallback engine
	TrendCatalog metrics.Counter // TREND composed from the catalog's prefix sums
	TrendScan    metrics.Counter // TREND on the direct sliding-scan engine
}

// CacheHits / CacheMisses count plan-cache lookups in Compile. A hit skips
// resolution and operator selection entirely and returns the compiled plan.
var (
	CacheHits   metrics.Counter
	CacheMisses metrics.Counter
)

// Feedbacks counts runtime observations recorded into the planner's
// feedback store (feedback.go), one counter per observation kind. The
// serving layer registers them under graphtempod_planner_feedback_total.
var Feedbacks struct {
	Cardinality metrics.Counter // view entity / result cardinality records
	RunRatio    metrics.Counter // timestamp compression ratio records
}
