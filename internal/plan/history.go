package plan

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/materialize"
)

// HistState is one reconstructed bi-temporal evaluation state: the graph as
// of a transaction-time position (optionally restricted to a valid-time
// window), plus the serving facilities built over it. Catalog and Plans may
// be nil — compilation then falls back to direct operators and skips plan
// memoization.
type HistState struct {
	Graph   *core.Graph
	Catalog *materialize.Catalog
	Plans   *Cache
}

// HistoryResolver reconstructs historical states on demand. The server
// implements it over the storage engine's transaction log with an LRU of
// reconstructed graphs; tests implement it over stream.Series.ReplayTo.
//
// Txn 0 means the live head (the resolver pins it to the current watermark
// so the result is stable for the duration of one compile). From/to are
// valid-time indices into the txn-state's timeline, inclusive.
type HistoryResolver interface {
	StateAt(txn int) (HistState, error)
	WindowAt(txn, from, to int) (HistState, error)
}

// temporalOf extracts a logical node's bi-temporal clauses; zero values for
// node types that cannot carry them (Partial — shards always serve head).
func temporalOf(node Logical) (IntervalRef, TxnRef) {
	switch q := node.(type) {
	case *Aggregate:
		return q.Valid, q.AsOf
	case *Explore:
		return q.Valid, q.AsOf
	case *Top:
		return q.Valid, q.AsOf
	case *Evolve:
		return q.Valid, q.AsOf
	case *Timeline:
		return q.Valid, q.AsOf
	case *Events:
		return q.Valid, q.AsOf
	case *Paths:
		return q.Valid, q.AsOf
	case *Trend:
		return q.Valid, q.AsOf
	}
	return IntervalRef{}, TxnRef{}
}

// resolveHistory rewrites the compile environment for a node carrying AS OF
// or VALID DURING clauses: the graph (and catalog, plan cache, when a
// resolver can supply them) is swapped for the reconstructed historical
// state BEFORE any operand resolution or cache lookup, so every downstream
// compile step — and every entry point that funnels through Compile — sees
// time travel as just a different base graph. Interval operands then
// resolve against the historical timeline, which is exactly the semantics:
// a label that did not exist at that transaction is an unknown time point.
func resolveHistory(env Env, node Logical) (Env, error) {
	valid, asOf := temporalOf(node)
	if valid.IsZero() && asOf.IsZero() {
		return env, nil
	}
	if len(valid.Points) > 0 {
		return env, errf(env.Query, valid.FromPos, valid.Points[0],
			"VALID DURING requires a contiguous range, not a point set")
	}
	if asOf.IsZero() && env.History == nil {
		// Valid-time restriction alone needs no transaction log: window the
		// live graph inline. No catalog or plan cache covers the windowed
		// graph, so operators compile to direct recompute.
		iv, err := ResolveInterval(env.Graph, env.Query, valid)
		if err != nil {
			return env, err
		}
		wg, err := core.Window(env.Graph, int(iv.Min()), int(iv.Max()))
		if err != nil {
			return env, err
		}
		env.Graph, env.Catalog, env.Cache = wg, nil, nil
		return env, nil
	}
	if env.History == nil {
		return env, errf(env.Query, asOf.Pos, "",
			"AS OF requires a store with a transaction log (no history resolver in this environment)")
	}
	st, err := env.History.StateAt(asOf.Txn)
	if err != nil {
		return env, errf(env.Query, asOf.Pos, "", "AS OF %d: %v", asOf.Txn, err)
	}
	if !valid.IsZero() {
		// The window labels must exist at that transaction: resolve against
		// the historical timeline, not the head.
		iv, err := ResolveInterval(st.Graph, env.Query, valid)
		if err != nil {
			return env, err
		}
		st, err = env.History.WindowAt(asOf.Txn, int(iv.Min()), int(iv.Max()))
		if err != nil {
			return env, errf(env.Query, valid.FromPos, valid.From, "VALID DURING: %v", err)
		}
	}
	env.Graph, env.Catalog, env.Cache = st.Graph, st.Catalog, st.Plans
	return env, nil
}

// headOnly guards entry points that cannot serve time travel (scatter
// partials): it rejects nodes carrying bi-temporal clauses.
func headOnly(node Logical) error {
	valid, asOf := temporalOf(node)
	if !valid.IsZero() || !asOf.IsZero() {
		return fmt.Errorf("plan: %s: bi-temporal clauses cannot be served here", node.Key())
	}
	return nil
}
