package plan_test

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/evolution"
	"repro/internal/explore"
	"repro/internal/materialize"
	"repro/internal/ops"
	"repro/internal/plan"
	"repro/internal/timeline"
)

// The equivalence suite is the refactor's safety net: every statement
// family executed through the planner must be byte-identical to the direct
// engine calls the front ends used to hand-wire, on a synthetic DBLP graph
// large enough to exercise the real kernels.

func dblp(t *testing.T) *core.Graph {
	t.Helper()
	return dataset.DBLPScaled(1, 0.01)
}

func mustJSON(t *testing.T, v interface{}) string {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

func execute(t *testing.T, env plan.Env, node plan.Logical) *plan.Result {
	t.Helper()
	p, err := plan.Compile(env, node)
	if err != nil {
		t.Fatalf("compile %s: %v", node.Key(), err)
	}
	res, err := p.Execute(context.Background())
	if err != nil {
		t.Fatalf("execute %s: %v", node.Key(), err)
	}
	return res
}

// TestAggregateEquivalence routes every temporal operator × kind through
// the planner and compares against direct view aggregation.
func TestAggregateEquivalence(t *testing.T) {
	g := dblp(t)
	tl := g.Timeline()
	schema, err := agg.ByName(g, "gender", "publications")
	if err != nil {
		t.Fatal(err)
	}
	l := func(i int) string { return tl.Label(timeline.Time(i)) }
	a, b := tl.Range(0, 2), tl.Range(1, 3)
	refA := plan.IntervalRef{From: l(0), To: l(2)}
	refB := plan.IntervalRef{From: l(1), To: l(3)}

	for _, op := range []string{plan.OpProject, plan.OpUnion, plan.OpIntersection, plan.OpDifference} {
		for _, kind := range []struct {
			name string
			k    agg.Kind
		}{{"dist", agg.Distinct}, {"all", agg.All}} {
			node := &plan.Aggregate{
				Op:    plan.TemporalOp{Op: op, A: refA},
				Attrs: []string{"gender", "publications"},
				Kind:  kind.name,
			}
			var v *ops.View
			switch op {
			case plan.OpProject:
				v = ops.Project(g, a)
			case plan.OpUnion:
				node.Op.B = refB
				v = ops.Union(g, a, b)
			case plan.OpIntersection:
				node.Op.B = refB
				v = ops.Intersection(g, a, b)
			case plan.OpDifference:
				node.Op.B = refB
				v = ops.Difference(g, a, b)
			}
			res := execute(t, plan.Env{Graph: g, Workers: 1}, node)
			want, err := agg.AggregateParallelCtx(context.Background(), v, schema, kind.k, 1)
			if err != nil {
				t.Fatal(err)
			}
			if got, exp := mustJSON(t, res.Agg), mustJSON(t, want); got != exp {
				t.Errorf("%s %s: planner result differs from direct aggregation", op, kind.name)
			}
			if res.AggSource != materialize.Scratch {
				t.Errorf("%s %s: source = %v, want scratch (no catalog)", op, kind.name, res.AggSource)
			}
		}
	}
}

// TestCatalogEquivalence checks the catalog-backed union-ALL operator
// (T-distributive composition) against direct recompute, and that the
// planner reports the serving source.
func TestCatalogEquivalence(t *testing.T) {
	g := dblp(t)
	tl := g.Timeline()
	cat := materialize.NewCatalogWith(g, materialize.CatalogConfig{})
	l := func(i int) string { return tl.Label(timeline.Time(i)) }
	node := &plan.Aggregate{
		Op: plan.TemporalOp{Op: plan.OpUnion,
			A: plan.IntervalRef{From: l(0), To: l(1)},
			B: plan.IntervalRef{From: l(2), To: l(3)}},
		Attrs: []string{"gender"},
		Kind:  "all",
	}
	schema, err := agg.ByName(g, "gender")
	if err != nil {
		t.Fatal(err)
	}
	v := ops.Union(g, tl.Range(0, 1), tl.Range(2, 3))
	want, err := agg.AggregateParallelCtx(context.Background(), v, schema, agg.All, 1)
	if err != nil {
		t.Fatal(err)
	}

	first := execute(t, plan.Env{Graph: g, Catalog: cat, Workers: 1}, node)
	if mustJSON(t, first.Agg) != mustJSON(t, want) {
		t.Error("catalog-backed union-ALL differs from direct recompute")
	}
	if first.AggSource != materialize.Scratch {
		t.Errorf("first answer source = %v, want scratch", first.AggSource)
	}
	second := execute(t, plan.Env{Graph: g, Catalog: cat, Workers: 1}, node)
	if mustJSON(t, second.Agg) != mustJSON(t, want) {
		t.Error("cached union-ALL differs from direct recompute")
	}
	if second.AggSource != materialize.Cached {
		t.Errorf("second answer source = %v, want cached", second.AggSource)
	}
}

// TestExploreEquivalence checks pairs, threshold and evaluation counts
// against a directly-driven Explorer — on the fast path (many time
// points), with auto-initialized K, under intersection semantics, and on
// the seed engine (two-point graph, where the planner switches engines
// but the candidate set must not change).
func TestExploreEquivalence(t *testing.T) {
	g := dblp(t)
	schema, err := agg.ByName(g, "gender")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	cases := []struct {
		name  string
		node  *plan.Explore
		event explore.Event
		sem   explore.Semantics
		ext   explore.Extend
	}{
		{
			name:  "growth_union_k2",
			node:  &plan.Explore{Event: "growth", Attrs: []string{"gender"}, K: 2},
			event: evolution.Growth, sem: explore.UnionSemantics, ext: explore.ExtendNew,
		},
		{
			name: "stability_intersection_old",
			node: &plan.Explore{Event: "stability", Attrs: []string{"gender"},
				Semantics: "intersection", Extend: "old", K: 1},
			event: evolution.Stability, sem: explore.IntersectionSemantics, ext: explore.ExtendOld,
		},
		{
			name:  "shrinkage_auto_k",
			node:  &plan.Explore{Event: "shrinkage", Attrs: []string{"gender"}},
			event: evolution.Shrinkage, sem: explore.UnionSemantics, ext: explore.ExtendNew,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			res := execute(t, plan.Env{Graph: g}, c.node)

			ex := &explore.Explorer{Graph: g, Schema: schema, Kind: agg.Distinct, Result: explore.TotalEdges}
			k := c.node.K
			if k < 1 {
				min, max := ex.InitK(c.event)
				if c.sem == explore.UnionSemantics {
					k = max
				} else {
					k = min
				}
				if k < 1 {
					k = 1
				}
			}
			pairs, err := ex.ExploreCtx(ctx, c.event, c.sem, c.ext, k)
			if err != nil {
				t.Fatal(err)
			}
			if res.K != k {
				t.Errorf("K = %d, want %d", res.K, k)
			}
			if !reflect.DeepEqual(res.Pairs, pairs) {
				t.Errorf("pairs differ:\n got %v\nwant %v", res.Pairs, pairs)
			}
			if res.Evaluations != ex.Evaluations {
				t.Errorf("evaluations = %d, want %d", res.Evaluations, ex.Evaluations)
			}
		})
	}

	// Seed engine: the two-point coarsening flips the planner to the
	// selector-view engine; pairs and evaluation counts must be unchanged
	// relative to a default (fast-path-eligible) Explorer.
	spec, err := core.UniformGroups(g.Timeline(), (g.Timeline().Len()+1)/2*2)
	if err != nil {
		t.Fatal(err)
	}
	coarse, err := core.Coarsen(g, spec)
	if err != nil {
		t.Fatal(err)
	}
	if n := coarse.Timeline().Len(); n > 2 {
		t.Fatalf("coarse timeline has %d points, want <= 2", n)
	}
	cschema, err := agg.ByName(coarse, "gender")
	if err != nil {
		t.Fatal(err)
	}
	res := execute(t, plan.Env{Graph: coarse}, &plan.Explore{Event: "growth", Attrs: []string{"gender"}, K: 1})
	ex := &explore.Explorer{Graph: coarse, Schema: cschema, Kind: agg.Distinct, Result: explore.TotalEdges}
	pairs, err := ex.ExploreCtx(ctx, evolution.Growth, explore.UnionSemantics, explore.ExtendNew, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Pairs, pairs) || res.Evaluations != ex.Evaluations {
		t.Errorf("seed engine diverges: pairs %v vs %v, evaluations %d vs %d",
			res.Pairs, pairs, res.Evaluations, ex.Evaluations)
	}
}

// TestTopEquivalence checks TOP against explore.TopEdgeTuplesCtx.
func TestTopEquivalence(t *testing.T) {
	g := dblp(t)
	schema, err := agg.ByName(g, "gender")
	if err != nil {
		t.Fatal(err)
	}
	res := execute(t, plan.Env{Graph: g}, &plan.Top{N: 3, Event: "stability", Attrs: []string{"gender"}})
	ex := &explore.Explorer{Graph: g, Schema: schema, Kind: agg.Distinct, Result: explore.TotalEdges}
	want, err := explore.TopEdgeTuplesCtx(context.Background(), ex, evolution.Stability, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Top, want) {
		t.Errorf("top differs:\n got %v\nwant %v", res.Top, want)
	}
}

// TestEvolveAndTimelineEquivalence checks the evolution statements,
// including a predicate filter compiled through the shared resolver.
func TestEvolveAndTimelineEquivalence(t *testing.T) {
	g := dblp(t)
	tl := g.Timeline()
	schema, err := agg.ByName(g, "gender")
	if err != nil {
		t.Fatal(err)
	}
	l := func(i int) string { return tl.Label(timeline.Time(i)) }
	preds := []plan.Predicate{{Attr: "publications", Op: ">", Value: "2"}}
	filter, err := plan.CompilePredicates(g, "", preds)
	if err != nil {
		t.Fatal(err)
	}

	res := execute(t, plan.Env{Graph: g}, &plan.Evolve{
		Attrs: []string{"gender"},
		From:  plan.IntervalRef{From: l(0)},
		To:    plan.IntervalRef{From: l(1)},
		Where: preds,
	})
	want := evolution.Aggregate(g, tl.Point(0), tl.Point(1), schema, agg.Distinct, evolution.Filter(filter))
	if mustJSON(t, res.Evolution) != mustJSON(t, want) {
		t.Error("planner evolution aggregate differs from direct call")
	}

	tres := execute(t, plan.Env{Graph: g}, &plan.Timeline{Attrs: []string{"gender"}})
	twant := evolution.Timeline(g, schema, agg.Distinct, nil)
	if !reflect.DeepEqual(tres.Timeline, twant) {
		t.Error("planner timeline differs from direct call")
	}
}
