package plan_test

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/plan"
)

// localScatterer executes shard slices as Partial plans against a local
// graph — the in-process stand-in for the cluster router's HTTP transport.
// Slicing the paper example's timeline and executing each piece against
// the full graph is equivalent to executing it on a shard holding only
// that range: a Partial plan only reads the time points of its operands.
type localScatterer struct {
	g    *core.Graph
	fail string // shard name whose fetch fails, "" for none
}

func (s localScatterer) Partial(ctx context.Context, slice plan.ShardSlice, attrs []string, kind string, workers int) (*plan.PartialResult, error) {
	if s.fail != "" && slice.Shard == s.fail {
		return nil, fmt.Errorf("injected fetch failure")
	}
	node := &plan.Partial{
		Op:    plan.TemporalOp{Op: slice.Op, A: plan.IntervalRef{From: slice.AFrom, To: slice.ATo}},
		Attrs: attrs,
		Kind:  kind,
	}
	if slice.BFrom != "" {
		node.Op.B = plan.IntervalRef{From: slice.BFrom, To: slice.BTo}
	}
	p, err := plan.Compile(plan.Env{Graph: s.g, Workers: workers}, node)
	if err != nil {
		return nil, err
	}
	res, err := p.Execute(ctx)
	if err != nil {
		return nil, err
	}
	return res.Partial, nil
}

// spanningUnion slices union(t0..t1, t1..t2) across a two-shard split at
// t1: shard a holds {t0}, shard b holds {t1, t2}. The single-piece shard a
// gets union(t0, t0) — union point sets dedupe, preserving the
// presence-anywhere semantics a "project" slice would break.
func spanningUnion(attrs []string, kind string) plan.ScatterQuery {
	return plan.ScatterQuery{
		Op:    plan.OpUnion,
		Attrs: attrs,
		Kind:  kind,
		Slices: []plan.ShardSlice{
			{Shard: "a", Op: plan.OpUnion, AFrom: "t0", ATo: "t0", BFrom: "t0", BTo: "t0"},
			{Shard: "b", Op: plan.OpUnion, AFrom: "t1", ATo: "t1", BFrom: "t1", BTo: "t2"},
		},
	}
}

// TestScatterMatchesSingleNode: gathering per-piece union partials and
// merging them yields byte-identical JSON to the single-node aggregate,
// for both DIST (entity-set union) and ALL (weight sum) and for static,
// time-varying and mixed groupings — including an operand overlap across
// the shard boundary, where DIST must dedup entities seen on both sides.
func TestScatterMatchesSingleNode(t *testing.T) {
	g := core.PaperExample()
	cases := []struct {
		name  string
		attrs []string
		kind  string
	}{
		{"dist_static", []string{"gender"}, "dist"},
		{"all_static", []string{"gender"}, "all"},
		{"dist_varying", []string{"publications"}, "dist"},
		{"all_mixed", []string{"gender", "publications"}, "all"},
		{"dist_mixed", []string{"gender", "publications"}, "dist"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sp, err := plan.CompileScatter(spanningUnion(tc.attrs, tc.kind), localScatterer{g: g})
			if err != nil {
				t.Fatal(err)
			}
			res, err := sp.Execute(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if res.Merged == nil {
				t.Fatal("scatter plan returned no merged result")
			}
			got, err := json.Marshal(res.Merged)
			if err != nil {
				t.Fatal(err)
			}
			single, err := plan.Compile(plan.Env{Graph: g, Workers: 1}, &plan.Aggregate{
				Op: plan.TemporalOp{
					Op: plan.OpUnion,
					A:  plan.IntervalRef{From: "t0", To: "t1"},
					B:  plan.IntervalRef{From: "t1", To: "t2"},
				},
				Attrs: tc.attrs,
				Kind:  tc.kind,
			})
			if err != nil {
				t.Fatal(err)
			}
			sres, err := single.Execute(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			want, err := json.Marshal(sres.Agg)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != string(want) {
				t.Fatalf("scatter-merged aggregate differs from single-node:\n got %s\nwant %s", got, want)
			}
		})
	}
}

// TestScatterSingleSliceProject: a project whose interval lies entirely in
// one shard scatters as a single slice; merging the one partial is the
// identity, so the result is byte-identical to the local project.
func TestScatterSingleSliceProject(t *testing.T) {
	g := core.PaperExample()
	q := plan.ScatterQuery{
		Op:    plan.OpProject,
		Attrs: []string{"gender"},
		Kind:  "dist",
		Slices: []plan.ShardSlice{
			{Shard: "a", Op: plan.OpProject, AFrom: "t0", ATo: "t1"},
		},
	}
	sp, err := plan.CompileScatter(q, localScatterer{g: g})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sp.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(res.Merged)
	if err != nil {
		t.Fatal(err)
	}
	single, err := plan.Compile(plan.Env{Graph: g, Workers: 1}, &plan.Aggregate{
		Op:    plan.TemporalOp{Op: plan.OpProject, A: plan.IntervalRef{From: "t0", To: "t1"}},
		Attrs: []string{"gender"},
		Kind:  "dist",
	})
	if err != nil {
		t.Fatal(err)
	}
	sres, err := single.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(sres.Agg)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("single-slice project differs from local project:\n got %s\nwant %s", got, want)
	}
}

// TestMergePartialsAll: ALL weights add group-wise across partials, and
// groups only one side saw pass through; output is label-sorted.
func TestMergePartialsAll(t *testing.T) {
	a := &plan.PartialResult{
		Attributes: []string{"gender"},
		Kind:       "ALL",
		Nodes: []plan.PartialGroup{
			{Values: []string{"f"}, Weight: 3},
			{Values: []string{"m"}, Weight: 1},
		},
		Edges: []plan.PartialEdge{
			{From: []string{"f"}, To: []string{"m"}, Weight: 2},
		},
	}
	b := &plan.PartialResult{
		Attributes: []string{"gender"},
		Kind:       "ALL",
		Nodes: []plan.PartialGroup{
			{Values: []string{"f"}, Weight: 4},
			{Values: []string{"x"}, Weight: 7},
		},
		Edges: []plan.PartialEdge{
			{From: []string{"f"}, To: []string{"m"}, Weight: 5},
			{From: []string{"f"}, To: []string{"f"}, Weight: 1},
		},
	}
	m, err := plan.MergePartials([]*plan.PartialResult{a, b})
	if err != nil {
		t.Fatal(err)
	}
	wantNodes := []plan.PartialGroup{
		{Values: []string{"f"}, Weight: 7},
		{Values: []string{"m"}, Weight: 1},
		{Values: []string{"x"}, Weight: 7},
	}
	if len(m.Nodes) != len(wantNodes) {
		t.Fatalf("merged nodes = %v, want %v", m.Nodes, wantNodes)
	}
	for i, w := range wantNodes {
		got := m.Nodes[i]
		if got.Values[0] != w.Values[0] || got.Weight != w.Weight {
			t.Fatalf("merged node %d = %v, want %v", i, got, w)
		}
	}
	// Edges sorted by "from→to": f→f before f→m.
	if len(m.Edges) != 2 || m.Edges[0].Weight != 1 || m.Edges[1].Weight != 7 {
		t.Fatalf("merged edges = %v, want f→f:1, f→m:7", m.Edges)
	}
}

// TestMergePartialsDist: DIST weights are the size of the unioned entity
// set — an entity (or edge entity pair) appearing in several partials
// counts once.
func TestMergePartialsDist(t *testing.T) {
	a := &plan.PartialResult{
		Attributes: []string{"gender"},
		Kind:       "DIST",
		Nodes: []plan.PartialGroup{
			{Values: []string{"f"}, Weight: 2, Entities: []string{"u2", "u3"}},
		},
		Edges: []plan.PartialEdge{
			{From: []string{"f"}, To: []string{"f"}, Weight: 1, Entities: [][]string{{"u2", "u4"}}},
		},
	}
	b := &plan.PartialResult{
		Attributes: []string{"gender"},
		Kind:       "DIST",
		Nodes: []plan.PartialGroup{
			{Values: []string{"f"}, Weight: 2, Entities: []string{"u2", "u4"}},
		},
		Edges: []plan.PartialEdge{
			{From: []string{"f"}, To: []string{"f"}, Weight: 2, Entities: [][]string{{"u2", "u4"}, {"u3", "u4"}}},
		},
	}
	m, err := plan.MergePartials([]*plan.PartialResult{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Nodes) != 1 || m.Nodes[0].Weight != 3 {
		t.Fatalf("merged DIST node weight = %v, want one group of weight 3 (u2,u3,u4)", m.Nodes)
	}
	if len(m.Edges) != 1 || m.Edges[0].Weight != 2 {
		t.Fatalf("merged DIST edge weight = %v, want one group of weight 2", m.Edges)
	}
}

// TestMergePartialsErrors: the merge rejects empty input, missing shard
// partials, schema disagreement and malformed entity pairs.
func TestMergePartialsErrors(t *testing.T) {
	ok := &plan.PartialResult{Attributes: []string{"gender"}, Kind: "ALL"}
	cases := []struct {
		name  string
		parts []*plan.PartialResult
		want  string
	}{
		{"empty", nil, "no partials"},
		{"nil_partial", []*plan.PartialResult{ok, nil}, "missing shard partial"},
		{"kind_mismatch", []*plan.PartialResult{ok, {Attributes: []string{"gender"}, Kind: "DIST"}}, "disagree on schema"},
		{"attr_mismatch", []*plan.PartialResult{ok, {Attributes: []string{"publications"}, Kind: "ALL"}}, "disagree on schema"},
		{"bad_entity_pair", []*plan.PartialResult{{
			Attributes: []string{"gender"},
			Kind:       "DIST",
			Edges:      []plan.PartialEdge{{From: []string{"f"}, To: []string{"f"}, Weight: 1, Entities: [][]string{{"u2"}}}},
		}}, "malformed edge entity pair"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := plan.MergePartials(tc.parts)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("MergePartials error = %v, want containing %q", err, tc.want)
			}
		})
	}
}

// TestCompileScatterValidation: non-decomposable operators, empty slice
// lists, missing transports and multi-shard projects (intersection
// semantics) are compile errors, not wrong answers.
func TestCompileScatterValidation(t *testing.T) {
	g := core.PaperExample()
	sc := localScatterer{g: g}
	slice := plan.ShardSlice{Shard: "a", Op: plan.OpUnion, AFrom: "t0", ATo: "t0", BFrom: "t0", BTo: "t0"}
	cases := []struct {
		name string
		q    plan.ScatterQuery
		sc   plan.Scatterer
		want string
	}{
		{"intersection", plan.ScatterQuery{Op: plan.OpIntersection, Attrs: []string{"gender"}, Kind: "dist", Slices: []plan.ShardSlice{slice}}, sc, "do not decompose"},
		{"no_slices", plan.ScatterQuery{Op: plan.OpUnion, Attrs: []string{"gender"}, Kind: "dist"}, sc, "no shard slices"},
		{"nil_scatterer", plan.ScatterQuery{Op: plan.OpUnion, Attrs: []string{"gender"}, Kind: "dist", Slices: []plan.ShardSlice{slice}}, nil, "no scatterer"},
		{"multi_shard_project", plan.ScatterQuery{Op: plan.OpProject, Attrs: []string{"gender"}, Kind: "dist", Slices: []plan.ShardSlice{
			{Shard: "a", Op: plan.OpProject, AFrom: "t0", ATo: "t0"},
			{Shard: "b", Op: plan.OpProject, AFrom: "t1", ATo: "t2"},
		}}, sc, "intersection semantics"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := plan.CompileScatter(tc.q, tc.sc)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("CompileScatter error = %v, want containing %q", err, tc.want)
			}
		})
	}
}

// TestCompileScatterExplain: the scattered plan identifies itself as
// SCATTER[n] and renders a GatherMerge root over per-shard ShardScatter
// leaves naming shard, operator and clipped interval.
func TestCompileScatterExplain(t *testing.T) {
	g := core.PaperExample()
	sp, err := plan.CompileScatter(spanningUnion([]string{"gender"}, "dist"), localScatterer{g: g})
	if err != nil {
		t.Fatal(err)
	}
	if key := sp.Logical().Key(); !strings.HasPrefix(key, "SCATTER[2] ") {
		t.Fatalf("logical key = %q, want SCATTER[2] prefix", key)
	}
	text := sp.Explain()
	for _, want := range []string{
		"GatherMerge(shards=2, kind=DIST, merge=entity-union)",
		"ShardScatter(shard=a, op=union",
		"ShardScatter(shard=b, op=union",
		"interval=t1 ∪ t1..t2",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("Explain output missing %q:\n%s", want, text)
		}
	}
	// ALL merges by weight sum, and the describe line says so.
	ap, err := plan.CompileScatter(spanningUnion([]string{"gender"}, "all"), localScatterer{g: g})
	if err != nil {
		t.Fatal(err)
	}
	if text := ap.Explain(); !strings.Contains(text, "merge=weight-sum") {
		t.Fatalf("ALL scatter Explain missing merge=weight-sum:\n%s", text)
	}
}

// TestScatterShardFailure: a failing slice fails the whole gather with the
// shard named, rather than merging a partial answer.
func TestScatterShardFailure(t *testing.T) {
	g := core.PaperExample()
	sp, err := plan.CompileScatter(spanningUnion([]string{"gender"}, "dist"), localScatterer{g: g, fail: "b"})
	if err != nil {
		t.Fatal(err)
	}
	_, err = sp.Execute(context.Background())
	if err == nil || !strings.Contains(err.Error(), "shard b:") || !strings.Contains(err.Error(), "injected fetch failure") {
		t.Fatalf("Execute error = %v, want shard b fetch failure", err)
	}
}
