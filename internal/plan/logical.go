// Package plan is GraphTempo's query planning layer: a logical-plan IR for
// the statement families (aggregate, explore, top, evolve, timeline, and
// the evolution-analytics family events/paths/trend), a physical planner
// that selects concrete operators through an explicit cost model, and an
// executable PhysicalPlan with an Explain rendering.
//
// The paper's partial-materialization strategies (§4.3) are decisions about
// which physical operator answers a logical query: a union-ALL aggregate
// can be composed from per-time-point materialized aggregates
// (T-distributive reuse) instead of rescanning the base graph, a
// single-point aggregate on an attribute subset can be rolled up from a
// materialized superset (D-distributive reuse), and exploration can run on
// incremental interval views instead of per-candidate rescans. Before this
// package those choices were smeared across agg (kernel dispatch), explore
// (fast-path eligibility), materialize (composition engine) and the two
// front ends (tgql, server), each hand-wiring its own engine calls. Every
// entry point now compiles through Compile: one auditable decision point,
// observable through Explain and the Selections counters.
package plan

import (
	"strconv"
	"strings"
)

// Logical is a logical query node: what to compute, with every operand
// still symbolic (time-point labels, attribute names, predicate strings).
// Compile resolves it against a concrete graph into a physical plan.
//
// Key returns the node's canonical text: a normalized TGQL-style rendering
// that is identical for every query spelling of the same logical plan
// (case, whitespace, POINT vs PROJECT, defaulted clauses). It is the plan
// cache key.
type Logical interface {
	Key() string
	logicalNode() // marker; the five node types live in this package
}

// IntervalRef selects time points symbolically: either a contiguous range
// From..To (To empty means the single point From) or an explicit point set.
// FromPos/ToPos carry byte offsets into the originating query text when the
// front end has one (TGQL), so resolution errors can point at the label.
type IntervalRef struct {
	From, To string
	Points   []string
	FromPos  int
	ToPos    int
}

// IsZero reports whether the ref selects nothing (no operand given).
func (r IntervalRef) IsZero() bool {
	return r.From == "" && r.To == "" && len(r.Points) == 0
}

// TxnRef selects a transaction-time position: the state the store served
// right after acknowledging its Txn'th ingest record. Txn 0 (the zero
// value) means "no AS OF clause" — the live head. Pos carries the byte
// offset of the literal in the originating query text when known.
type TxnRef struct {
	Txn int
	Pos int
}

// IsZero reports whether the ref selects the live head (no AS OF given).
func (r TxnRef) IsZero() bool { return r.Txn == 0 }

// renderTemporal appends the canonical bi-temporal suffix — the VALID
// DURING window then the AS OF transaction — to a node's Key rendering.
// Both clauses participate in the cache key, so a plan compiled against a
// reconstructed historical state can never collide with (or shadow) the
// same query against the live head.
func renderTemporal(b *strings.Builder, valid IntervalRef, asOf TxnRef) {
	if !valid.IsZero() {
		b.WriteString(" VALID DURING ")
		valid.render(b)
	}
	if !asOf.IsZero() {
		b.WriteString(" AS OF ")
		b.WriteString(strconv.Itoa(asOf.Txn))
	}
}

func (r IntervalRef) render(b *strings.Builder) {
	switch {
	case len(r.Points) > 0:
		b.WriteByte('{')
		for i, p := range r.Points {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(p)
		}
		b.WriteByte('}')
	case r.To != "" && r.To != r.From:
		b.WriteString(r.From)
		b.WriteString("..")
		b.WriteString(r.To)
	default:
		b.WriteString(r.From)
	}
}

// Temporal operator names, canonical lowercase. TGQL's POINT and PROJECT
// both normalize to OpProject (they are the same operator; POINT is sugar).
const (
	OpProject      = "project"
	OpUnion        = "union"
	OpIntersection = "intersection"
	OpDifference   = "difference"
)

// TemporalOp applies one of the §2.1 temporal operators to one (project)
// or two (union/intersection/difference) interval operands.
type TemporalOp struct {
	Op string // project, union, intersection, difference
	A  IntervalRef
	B  IntervalRef // zero for project
}

// opKeyword renders the canonical TGQL keyword of an operator name.
func opKeyword(op string) string {
	switch op {
	case OpProject:
		return "PROJECT"
	case OpUnion:
		return "UNION"
	case OpIntersection:
		return "INTERSECT"
	case OpDifference:
		return "DIFF"
	default:
		return strings.ToUpper(op)
	}
}

func (t TemporalOp) render(b *strings.Builder) {
	b.WriteString(opKeyword(t.Op))
	if t.Op == OpProject {
		b.WriteByte(' ')
		t.A.render(b)
		return
	}
	b.WriteByte('(')
	t.A.render(b)
	b.WriteString(", ")
	t.B.render(b)
	b.WriteByte(')')
}

// Predicate is one WHERE comparison, still symbolic. AttrPos/ValuePos
// locate the operands in the originating query text when known.
type Predicate struct {
	Attr     string
	Op       string // = != < <= > >=
	Value    string
	AttrPos  int
	ValuePos int
}

func renderWhere(b *strings.Builder, preds []Predicate) {
	for i, p := range preds {
		if i == 0 {
			b.WriteString(" WHERE ")
		} else {
			b.WriteString(" AND ")
		}
		b.WriteString(p.Attr)
		b.WriteByte(' ')
		b.WriteString(p.Op)
		b.WriteString(" '")
		b.WriteString(p.Value)
		b.WriteByte('\'')
	}
}

func renderAttrs(b *strings.Builder, attrs []string) {
	for i, a := range attrs {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a)
	}
}

// kindKeyword renders a wire/TGQL kind string canonically; resolution and
// validation happen at compile time.
func kindKeyword(kind string) string {
	switch strings.ToLower(kind) {
	case "all":
		return "ALL"
	default:
		return "DIST"
	}
}

// Aggregate computes the aggregate graph of a temporal operator (§2.2):
// group nodes and edges by attribute tuple, count DIST entities or ALL
// appearances, optionally filtered by predicates or reduced by a measure.
type Aggregate struct {
	Op    TemporalOp
	Attrs []string
	// Kind is dist (default) or all; TGQL's DIST/ALL and the wire forms
	// dist/distinct/all are accepted.
	Kind  string
	Where []Predicate
	// Measure is "", SUM, AVG, MIN or MAX; MeasureAttr is the measured
	// attribute. A measure excludes Where (checked at compile).
	Measure     string
	MeasureAttr string

	// Valid restricts evaluation to a valid-time window; AsOf evaluates
	// against a reconstructed transaction-time state. Zero values mean the
	// full timeline of the live head.
	Valid IntervalRef
	AsOf  TxnRef

	// AttrsPos and MeasureAttrPos are query byte offsets when known.
	AttrsPos       []int
	MeasureAttrPos int
}

func (q *Aggregate) logicalNode() {}

// Key renders "AGG KIND attrs ON OP(...)[ WHERE ...][ MEASURE FN(attr)]".
func (q *Aggregate) Key() string {
	var b strings.Builder
	b.WriteString("AGG ")
	b.WriteString(kindKeyword(q.Kind))
	b.WriteByte(' ')
	renderAttrs(&b, q.Attrs)
	b.WriteString(" ON ")
	q.Op.render(&b)
	renderWhere(&b, q.Where)
	if q.Measure != "" {
		b.WriteString(" MEASURE ")
		b.WriteString(strings.ToUpper(q.Measure))
		b.WriteByte('(')
		b.WriteString(q.MeasureAttr)
		b.WriteByte(')')
	}
	renderTemporal(&b, q.Valid, q.AsOf)
	return b.String()
}

// Explore finds minimal/maximal interval pairs with at least K events
// (§3): event is stability, growth or shrinkage; semantics union (minimal)
// or intersection (maximal); extend picks the moving side.
type Explore struct {
	Event     string // stability, growth, shrinkage
	Attrs     []string
	Kind      string   // dist (default) or all
	Semantics string   // union (default) or intersection
	Extend    string   // new (default) or old
	Result    string   // edges (default) or nodes
	NodeTuple []string // non-empty: measure one aggregate node
	EdgeFrom  []string // non-empty with EdgeTo: measure one aggregate edge
	EdgeTo    []string
	// K < 1 selects the §3.5 initialization (max of consecutive-pair
	// results under union semantics, min under intersection); Tune > 0
	// runs the §3.5 tuning loop for at least Tune pairs instead.
	K    int64
	Tune int

	Valid IntervalRef
	AsOf  TxnRef

	AttrsPos []int
}

func (q *Explore) logicalNode() {}

// Key renders the canonical EXPLORE text with every clause explicit.
func (q *Explore) Key() string {
	var b strings.Builder
	b.WriteString("EXPLORE ")
	b.WriteString(strings.ToUpper(q.Event))
	b.WriteByte(' ')
	b.WriteString(kindKeyword(q.Kind))
	b.WriteString(" BY ")
	renderAttrs(&b, q.Attrs)
	switch {
	case len(q.EdgeFrom) > 0 || len(q.EdgeTo) > 0:
		b.WriteString(" EDGE ")
		renderAttrs(&b, q.EdgeFrom)
		b.WriteString(" -> ")
		renderAttrs(&b, q.EdgeTo)
	case len(q.NodeTuple) > 0:
		b.WriteString(" NODE ")
		renderAttrs(&b, q.NodeTuple)
	case strings.ToLower(q.Result) == "nodes":
		b.WriteString(" RESULT nodes")
	}
	b.WriteString(" SEMANTICS ")
	if strings.ToLower(q.Semantics) == "intersection" {
		b.WriteString("INTERSECTION")
	} else {
		b.WriteString("UNION")
	}
	b.WriteString(" EXTEND ")
	if strings.ToLower(q.Extend) == "old" {
		b.WriteString("OLD")
	} else {
		b.WriteString("NEW")
	}
	switch {
	case q.Tune > 0:
		b.WriteString(" TUNE ")
		b.WriteString(strconv.Itoa(q.Tune))
	case q.K >= 1:
		b.WriteString(" K ")
		b.WriteString(strconv.FormatInt(q.K, 10))
	default:
		b.WriteString(" K AUTO")
	}
	renderTemporal(&b, q.Valid, q.AsOf)
	return b.String()
}

// Top ranks the aggregate edges (attribute-pair groups) by their peak
// event count over consecutive interval pairs and returns the best N.
type Top struct {
	N     int
	Event string // stability, growth, shrinkage
	Attrs []string

	Valid IntervalRef
	AsOf  TxnRef

	AttrsPos []int
}

func (q *Top) logicalNode() {}

// Key renders "TOP n EVENT BY attrs".
func (q *Top) Key() string {
	var b strings.Builder
	b.WriteString("TOP ")
	b.WriteString(strconv.Itoa(q.N))
	b.WriteByte(' ')
	b.WriteString(strings.ToUpper(q.Event))
	b.WriteString(" BY ")
	renderAttrs(&b, q.Attrs)
	renderTemporal(&b, q.Valid, q.AsOf)
	return b.String()
}

// Evolve computes the evolution aggregate (stability/growth/shrinkage
// weights per attribute group) between two intervals.
type Evolve struct {
	Kind  string // dist (default) or all
	Attrs []string
	From  IntervalRef
	To    IntervalRef
	Where []Predicate

	Valid IntervalRef
	AsOf  TxnRef

	AttrsPos []int
}

func (q *Evolve) logicalNode() {}

// Key renders "EVOLVE KIND attrs FROM iv TO iv[ WHERE ...]".
func (q *Evolve) Key() string {
	var b strings.Builder
	b.WriteString("EVOLVE ")
	b.WriteString(kindKeyword(q.Kind))
	b.WriteByte(' ')
	renderAttrs(&b, q.Attrs)
	b.WriteString(" FROM ")
	q.From.render(&b)
	b.WriteString(" TO ")
	q.To.render(&b)
	renderWhere(&b, q.Where)
	renderTemporal(&b, q.Valid, q.AsOf)
	return b.String()
}

// Events classifies attribute groups into stability/growth/shrinkage
// events between consecutive width-Width windows of the timeline
// (internal/analytics EVENTS).
type Events struct {
	Kind  string // dist (default) or all
	Attrs []string
	// Width is the tiling window width; values < 1 normalize to 1.
	Width int
	// Min drops rows whose change magnitude Gr+Shr falls below it.
	Min   int64
	Where []Predicate

	Valid IntervalRef
	AsOf  TxnRef

	AttrsPos []int
}

func (q *Events) logicalNode() {}

// normWidth renders and compiles window widths uniformly: anything below 1
// means 1 (per-point windows).
func normWidth(w int) int {
	if w < 1 {
		return 1
	}
	return w
}

// Key renders "EVENTS KIND attrs WIDTH w[ MIN m][ WHERE ...]".
func (q *Events) Key() string {
	var b strings.Builder
	b.WriteString("EVENTS ")
	b.WriteString(kindKeyword(q.Kind))
	b.WriteByte(' ')
	renderAttrs(&b, q.Attrs)
	b.WriteString(" WIDTH ")
	b.WriteString(strconv.Itoa(normWidth(q.Width)))
	if q.Min > 0 {
		b.WriteString(" MIN ")
		b.WriteString(strconv.FormatInt(q.Min, 10))
	}
	renderWhere(&b, q.Where)
	renderTemporal(&b, q.Valid, q.AsOf)
	return b.String()
}

// Paths answers time-respecting path queries between two node sets within
// a window (internal/analytics PATHS).
type Paths struct {
	Mode string // earliest (default) or fastest
	From []string
	To   []string
	// During restricts the window; the zero ref means the whole timeline.
	During IntervalRef

	Valid IntervalRef
	AsOf  TxnRef

	FromPos []int
	ToPos   []int
}

func (q *Paths) logicalNode() {}

// modeKeyword renders a paths mode canonically.
func modeKeyword(mode string) string {
	if strings.ToLower(mode) == "fastest" {
		return "FASTEST"
	}
	return "EARLIEST"
}

// Key renders "PATHS MODE FROM labels TO labels[ DURING iv]".
func (q *Paths) Key() string {
	var b strings.Builder
	b.WriteString("PATHS ")
	b.WriteString(modeKeyword(q.Mode))
	b.WriteString(" FROM ")
	renderAttrs(&b, q.From)
	b.WriteString(" TO ")
	renderAttrs(&b, q.To)
	if !q.During.IsZero() {
		b.WriteString(" DURING ")
		q.During.render(&b)
	}
	renderTemporal(&b, q.Valid, q.AsOf)
	return b.String()
}

// Trend computes per-group weight series over a sliding width-Width window
// with slope/direction classification (internal/analytics TREND).
type Trend struct {
	Kind  string // dist (default) or all
	Attrs []string
	Width int
	Where []Predicate

	Valid IntervalRef
	AsOf  TxnRef

	AttrsPos []int
}

func (q *Trend) logicalNode() {}

// Key renders "TREND KIND attrs WIDTH w[ WHERE ...]".
func (q *Trend) Key() string {
	var b strings.Builder
	b.WriteString("TREND ")
	b.WriteString(kindKeyword(q.Kind))
	b.WriteByte(' ')
	renderAttrs(&b, q.Attrs)
	b.WriteString(" WIDTH ")
	b.WriteString(strconv.Itoa(normWidth(q.Width)))
	renderWhere(&b, q.Where)
	renderTemporal(&b, q.Valid, q.AsOf)
	return b.String()
}

// Timeline computes the evolution weights of every consecutive time-point
// pair (the REPL's evolution-over-time table).
type Timeline struct {
	Attrs []string
	Where []Predicate

	Valid IntervalRef
	AsOf  TxnRef

	AttrsPos []int
}

func (q *Timeline) logicalNode() {}

// Key renders "TIMELINE BY attrs[ WHERE ...]".
func (q *Timeline) Key() string {
	var b strings.Builder
	b.WriteString("TIMELINE BY ")
	renderAttrs(&b, q.Attrs)
	renderWhere(&b, q.Where)
	renderTemporal(&b, q.Valid, q.AsOf)
	return b.String()
}
