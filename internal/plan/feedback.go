package plan

import (
	"strconv"
	"sync"
)

// Feedback closes the planner's loop: executed plans record what they
// actually observed — the view's selected entity count, the aggregate's
// output cardinality, the graph's timestamp compression ratio — and
// Compile consults those observations the next time the same logical query
// is planned. The cost model alone sees only graph-wide totals (scanCost =
// |V|+|E|); observations are per-query and per-dataset, so they can demote
// a parallel plan whose merge dominates, prefer the map kernel for a
// sparsely occupied tuple domain, or bypass the catalog when compressed
// timestamp scans make direct recompute cheaper than composition.
//
// Observations are advisory: a stale or wrong one costs performance, never
// correctness (every operator computes the same result on every engine).
// They are keyed on the canonical logical text (Logical.Key, without the
// workers suffix the plan cache adds — the data shape of a query does not
// depend on the requested parallelism) and bounded FIFO like the plan
// cache. Safe for concurrent use.
type Feedback struct {
	mu    sync.Mutex
	obs   map[string]*Observation
	order []string
	max   int

	ratio      float64 // latest observed TauStats.Ratio
	hasRatio   bool
	ratioEpoch int
}

// Observation is what one executed plan reported about a logical query.
type Observation struct {
	// Entities is the entity count (nodes + edges) the plan's view selected.
	Entities int
	// Results is the output cardinality: distinct aggregate node tuples
	// plus edge tuple pairs. Against Entities it bounds the per-worker
	// merge cost of the parallel engine.
	Results int
	// Executions counts how many runs reported this key.
	Executions int64

	// epoch increments when an observation materially changes the decision
	// inputs (first record, or a ≥2x move in either cardinality). The plan
	// cache key includes it, so adapted selections take effect on the next
	// compile instead of being pinned behind a stale cached plan.
	epoch int
}

// feedbackMaxKeys bounds the observation map; FIFO eviction past it.
const feedbackMaxKeys = 1024

// NewFeedback returns an empty feedback store.
func NewFeedback() *Feedback {
	return &Feedback{obs: make(map[string]*Observation), max: feedbackMaxKeys}
}

// materially reports whether b is a ≥2x move from a in either direction —
// the hysteresis that keeps repeated executions of a stable query from
// bumping epochs (and re-compiling) forever.
func materially(a, b int) bool {
	if a == b {
		return false
	}
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	return lo*2 <= hi
}

// observe records one execution's cardinalities for a logical key.
func (f *Feedback) observe(key string, entities, results int) {
	if f == nil {
		return
	}
	Feedbacks.Cardinality.Inc()
	f.mu.Lock()
	defer f.mu.Unlock()
	o := f.obs[key]
	if o == nil {
		for len(f.order) >= f.max {
			delete(f.obs, f.order[0])
			f.order = f.order[1:]
		}
		o = &Observation{epoch: 1}
		f.obs[key] = o
		f.order = append(f.order, key)
	} else if materially(o.Entities, entities) || materially(o.Results, results) {
		o.epoch++
	}
	o.Entities, o.Results = entities, results
	o.Executions++
}

// observeRatio records the graph's timestamp compression ratio
// (TauStats.Ratio: compressed bytes over dense bytes, 1 = nothing
// compressed) as reported after an execution. The first record and any
// ≥25% relative move bump the ratio epoch.
func (f *Feedback) observeRatio(r float64) {
	if f == nil {
		return
	}
	Feedbacks.RunRatio.Inc()
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.hasRatio || r < f.ratio*0.75 || r > f.ratio*1.25 {
		f.ratioEpoch++
	}
	f.ratio, f.hasRatio = r, true
}

// Lookup returns the recorded observation for a logical key.
func (f *Feedback) Lookup(key string) (Observation, bool) {
	if f == nil {
		return Observation{}, false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if o := f.obs[key]; o != nil {
		return *o, true
	}
	return Observation{}, false
}

// RunRatio returns the last observed timestamp compression ratio.
func (f *Feedback) RunRatio() (float64, bool) {
	if f == nil {
		return 0, false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ratio, f.hasRatio
}

// Reset drops every observation: the serving snapshot was replaced
// wholesale, so cardinalities observed against the old graph no longer
// describe anything. (Append-only advances keep observations — entity
// counts only grow under the append-only contract, and the hysteresis
// absorbs the drift.)
func (f *Feedback) Reset() {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	clear(f.obs)
	f.order = f.order[:0]
	f.hasRatio, f.ratio, f.ratioEpoch = false, 0, 0
}

// epochFor is the feedback component of the plan cache key: it changes
// exactly when a new observation should invalidate the cached plan for
// this logical key.
func (f *Feedback) epochFor(key string) int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	e := f.ratioEpoch
	if o := f.obs[key]; o != nil {
		e += o.epoch
	}
	return e
}

// ---- selection adaptation --------------------------------------------

// Feedback-driven selection thresholds. All three only ever trade one
// correct engine for another, so the constants are coarse on purpose.
const (
	// mergeBoundFactor demotes a parallel aggregation to serial when the
	// observed output cardinality is within this factor of the selected
	// entity count: each worker materializes a private partial with ~all
	// result tuples, so the O(workers × results) merge eats the sharded
	// scan's win.
	mergeBoundFactor = 4

	// sparseDomainMinSlots / sparseDomainFactor prefer the map kernel when
	// the dense kernel's d² edge slot space dwarfs the observed entity
	// count: the flat arrays are allocated and cleared for a domain the
	// data barely touches. Small domains (gender² = 4 slots) never demote.
	sparseDomainMinSlots = 1 << 12
	sparseDomainFactor   = 16

	// catalogBypassMargin answers union-ALL directly when the catalog's
	// T-distributive composition (interval × domain slot merges) costs
	// more than this margin times the observed compressed scan. The margin
	// keeps the catalog's serving cache in play unless direct recompute
	// wins decisively.
	catalogBypassMargin = 4
)

// aggAdaptation is the outcome of consulting feedback for one aggregate
// compile: possibly demoted workers, a kernel preference, a catalog
// bypass, and the Explain notes naming what was applied.
type aggAdaptation struct {
	workers       int
	preferMap     bool
	bypassCatalog bool
	scanCost      int64
	notes         []string
}

// adaptAggregate consults the feedback store for one aggregate compile.
// parallelMin is the engine's serial/parallel crossover
// (agg.ParallelMinEntities), domain the schema's tuple space, composeCost
// the catalog's estimated composition cost (0 when no catalog applies).
func adaptAggregate(f *Feedback, key string, workers int, parallelMin int, domain, scan, composeCost int64) aggAdaptation {
	ad := aggAdaptation{workers: workers, scanCost: scan}
	if f == nil {
		return ad
	}
	if ratio, ok := f.RunRatio(); ok {
		// Observed run-compression makes the word-level timestamp scans
		// proportionally cheaper; reflect that in the direct-scan estimate.
		ad.scanCost = int64(float64(scan) * ratio)
		if ad.scanCost < 1 {
			ad.scanCost = 1
		}
		ad.notes = append(ad.notes, "tau-ratio="+strconv.FormatFloat(ratio, 'f', 2, 64))
		if composeCost > 0 && composeCost > catalogBypassMargin*ad.scanCost {
			ad.bypassCatalog = true
			ad.notes = append(ad.notes, "direct-scan(compressed)")
		}
	}
	obs, ok := f.Lookup(key)
	if !ok {
		return ad
	}
	if workers != 1 && obs.Entities >= parallelMin && obs.Results*mergeBoundFactor >= obs.Entities {
		ad.workers = 1
		ad.notes = append(ad.notes, "serial(merge-bound)")
	}
	if slots := domain * domain; slots >= sparseDomainMinSlots && slots > sparseDomainFactor*int64(obs.Entities) {
		ad.preferMap = true
		ad.notes = append(ad.notes, "map-kernel(sparse-domain)")
	}
	return ad
}

// note renders the applied adaptations for Explain ("" when none).
func (ad aggAdaptation) note() string {
	out := ""
	for i, n := range ad.notes {
		if i > 0 {
			out += "+"
		}
		out += n
	}
	return out
}
