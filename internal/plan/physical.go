package plan

import (
	"context"
	"strconv"
	"sync"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/evolution"
	"repro/internal/explore"
	"repro/internal/materialize"
	"repro/internal/ops"
	"repro/internal/timeline"
)

// physOp is one selected physical operator. Operators carry their resolved
// compile-time state (views, schemas, filters — all immutable) and create
// any mutable engine state fresh per run, so a compiled plan is safe to
// execute concurrently.
type physOp interface {
	// name is the operator's Explain node name.
	name() string
	// describe returns the operator's Explain attributes in render order.
	// It may consult live state (the catalog's Predict) so Explain shows
	// what an execution right now would do.
	describe() []kv
	// children returns nested Explain nodes (inputs, inner operators).
	children() []physOp
	// countSelection records the operator choice in the Selections counters.
	countSelection()
	// run executes the operator into out.
	run(ctx context.Context, out *Result) error
}

// kv is one rendered Explain attribute.
type kv struct{ k, v string }

func itoa64(n int64) string { return strconv.FormatInt(n, 10) }

// ---- view input node -------------------------------------------------

// viewOp is the materialized temporal-operator input of an aggregation
// operator. It never runs — the view is built at compile — and appears in
// Explain so plans show what the parent scans.
type viewOp struct {
	op   string // project, union, intersection, difference
	view *ops.View
}

func newViewOp(g *core.Graph, op string, a, b timeline.Interval) *viewOp {
	return &viewOp{op: op, view: buildView(g, op, a, b)}
}

func (o *viewOp) name() string {
	switch o.op {
	case OpProject:
		return "Project"
	case OpUnion:
		return "Union"
	case OpIntersection:
		return "Intersection"
	default:
		return "Difference"
	}
}

func (o *viewOp) describe() []kv {
	return []kv{
		{"times", intervalString(o.view.Times())},
		{"nodes", strconv.Itoa(o.view.NumNodes())},
		{"edges", strconv.Itoa(o.view.NumEdges())},
	}
}

func (o *viewOp) children() []physOp { return nil }
func (o *viewOp) countSelection()    {}
func (o *viewOp) run(ctx context.Context, out *Result) error {
	return nil // input node; the parent consumes o.view directly
}

// entities returns the selected entity count (the parallel-crossover input).
func (o *viewOp) entities() int { return o.view.NumNodes() + o.view.NumEdges() }

// ---- aggregate operators ---------------------------------------------

// catalogAggOp answers a union-ALL aggregate through the materialization
// catalog: serving cache, then T-distributive composition from per-point
// stores, then single-point D-distributive roll-up, then scratch.
type catalogAggOp struct {
	cat    *materialize.Catalog
	iv     timeline.Interval
	attrs  []core.AttrID
	schema *agg.Schema
	g      *core.Graph
}

func (o *catalogAggOp) name() string { return "CatalogUnionAll" }

func (o *catalogAggOp) describe() []kv {
	// The source is predicted live: a cached or newly materialized store
	// changes the answer between compiles of the same plan, and Explain
	// should describe the execution a caller would get now.
	src := o.cat.Predict(o.iv, o.attrs...)
	var cost int64
	switch src {
	case materialize.Cached:
		cost = 1
	case materialize.TDistributive:
		cost = int64(o.iv.Len()) * o.schema.Domain()
	case materialize.DDistributive:
		cost = o.schema.Domain()
	default:
		cost = scanCost(o.g)
	}
	return []kv{
		{"interval", intervalString(o.iv)},
		{"source-hint", src.String()},
		{"composition", "prefix-sum"},
		{"est_cost", itoa64(cost)},
	}
}

func (o *catalogAggOp) children() []physOp { return nil }
func (o *catalogAggOp) countSelection()    { Selections.CatalogUnion.Inc() }

func (o *catalogAggOp) run(ctx context.Context, out *Result) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	ag, src, err := o.cat.UnionAll(o.iv, o.attrs...)
	if err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	out.Agg, out.AggSource = ag, src
	return nil
}

// viewAggOp aggregates a view with the kernel the schema selects (dense
// flat arrays or map) and the chunked-parallel engine when the view is
// large enough to amortize worker spawn and merge.
type viewAggOp struct {
	view    *viewOp
	schema  *agg.Schema
	kind    agg.Kind
	workers int
	cost    int64

	// Feedback loop: run() reports the observed cardinalities (and the
	// graph's timestamp compression ratio, when already computed) under
	// fbKey; note names the adaptations this compile applied, for Explain.
	fb    *Feedback
	fbKey string
	note  string
}

func (o *viewAggOp) name() string { return "ViewAggregate" }

// mode reports serial vs parallel execution, mirroring the engine's
// crossover: one worker or a small view runs serially.
func (o *viewAggOp) mode() string {
	if o.workers == 1 || o.view.entities() < agg.ParallelMinEntities() {
		return "serial"
	}
	return "parallel"
}

func workersString(n int) string {
	if n <= 0 {
		return "auto"
	}
	return strconv.Itoa(n)
}

func (o *viewAggOp) describe() []kv {
	attrs := []kv{
		{"kind", kindString(o.kind)},
		{"kernel", o.schema.KernelName()},
		{"mode", o.mode()},
		{"workers", workersString(o.workers)},
		{"est_cost", itoa64(o.cost)},
	}
	// Only plans compiled with applicable feedback name it, keeping the
	// golden renderings of feedback-free environments stable.
	if o.note != "" {
		attrs = append(attrs, kv{"feedback", o.note})
	}
	return attrs
}

func (o *viewAggOp) children() []physOp { return []physOp{o.view} }

func (o *viewAggOp) countSelection() {
	if o.schema.KernelName() == "dense" {
		Selections.DenseAgg.Inc()
	} else {
		Selections.MapAgg.Inc()
	}
}

func (o *viewAggOp) run(ctx context.Context, out *Result) error {
	ag, err := agg.AggregateParallelCtx(ctx, o.view.view, o.schema, o.kind, o.workers)
	if err != nil {
		return err
	}
	if o.fb != nil {
		o.fb.observe(o.fbKey, o.view.entities(), len(ag.Nodes)+len(ag.Edges))
		// The compression-selection scan runs lazily inside the engines;
		// report its outcome only when it already happened, never force it.
		if st, ok := o.view.view.Graph().TauStatsIfBuilt(); ok {
			o.fb.observeRatio(st.Ratio())
		}
	}
	out.Agg, out.AggSource = ag, materialize.Scratch
	return nil
}

// filteredAggOp aggregates a view under an appearance filter. The filtered
// engine is the serial map engine: predicates are evaluated per appearance,
// which the flat-array kernels cannot express.
type filteredAggOp struct {
	view   *viewOp
	schema *agg.Schema
	kind   agg.Kind
	preds  int
	filter agg.Filter
	cost   int64
}

func (o *filteredAggOp) name() string { return "FilteredAggregate" }

func (o *filteredAggOp) describe() []kv {
	return []kv{
		{"kind", kindString(o.kind)},
		{"predicates", strconv.Itoa(o.preds)},
		{"engine", "filtered-map"},
		{"est_cost", itoa64(o.cost)},
	}
}

func (o *filteredAggOp) children() []physOp { return []physOp{o.view} }
func (o *filteredAggOp) countSelection()    { Selections.FilteredAgg.Inc() }

func (o *filteredAggOp) run(ctx context.Context, out *Result) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	ag := agg.AggregateFiltered(o.view.view, o.schema, o.kind, o.filter)
	if err := ctx.Err(); err != nil {
		return err
	}
	out.Agg, out.AggSource = ag, materialize.Scratch
	return nil
}

// measureAggOp computes a SUM/AVG/MIN/MAX measure over a numeric attribute
// per aggregate node.
type measureAggOp struct {
	view   *viewOp
	schema *agg.Schema
	attr   core.AttrID
	fn     agg.Measure
	fnName string
	attrNm string
	cost   int64
}

func (o *measureAggOp) name() string { return "MeasureAggregate" }

func (o *measureAggOp) describe() []kv {
	return []kv{
		{"fn", o.fnName},
		{"attr", o.attrNm},
		{"est_cost", itoa64(o.cost)},
	}
}

func (o *measureAggOp) children() []physOp { return []physOp{o.view} }
func (o *measureAggOp) countSelection()    { Selections.MeasureAgg.Inc() }

func (o *measureAggOp) run(ctx context.Context, out *Result) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	mg, err := agg.AggregateMeasure(o.view.view, o.schema, o.attr, o.fn)
	if err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	out.Measure = mg
	return nil
}

// kindString renders agg.Kind canonically.
func kindString(k agg.Kind) string {
	if k == agg.All {
		return "ALL"
	}
	return "DIST"
}

// eventString renders an event class with its full name (Class.String uses
// the paper's terse figure labels).
func eventString(e explore.Event) string {
	switch e {
	case evolution.Stability:
		return "STABILITY"
	case evolution.Growth:
		return "GROWTH"
	default:
		return "SHRINKAGE"
	}
}

// ---- exploration operators -------------------------------------------

// exploreOp runs one §3 exploration. The point index of the fast path is
// immutable and graph-wide, so it is built once per plan (lazily, to keep
// EXPLAIN free) and shared across concurrent executions; every other piece
// of engine state lives in a fresh Explorer per run.
type exploreOp struct {
	g       *core.Graph
	schema  *agg.Schema
	kind    agg.Kind
	event   explore.Event
	sem     explore.Semantics
	ext     explore.Extend
	k       int64 // < 1 selects the §3.5 initialization
	workers int
	seed    bool // seed engine instead of the incremental-view fast path
	result  explore.ResultFunc
	target  string
	cost    int64

	idxOnce sync.Once
	idx     *ops.PointIndex
}

func (o *exploreOp) name() string {
	if o.seed {
		return "SeedExplore"
	}
	return "FastExplore"
}

func (o *exploreOp) engine() string {
	if o.seed {
		return "selector-views"
	}
	return "incremental-views"
}

// exploreWorkersString renders the explore engine's workers semantics:
// 0/1 serial, negative GOMAXPROCS.
func exploreWorkersString(n int) string {
	switch {
	case n < 0:
		return "auto"
	case n <= 1:
		return "serial"
	default:
		return strconv.Itoa(n)
	}
}

func (o *exploreOp) kString() string {
	if o.k >= 1 {
		return itoa64(o.k)
	}
	if o.sem == explore.UnionSemantics {
		return "auto(max-init)"
	}
	return "auto(min-init)"
}

func (o *exploreOp) describe() []kv {
	return []kv{
		{"traversal", explore.TraversalName(o.event, o.sem, o.ext)},
		{"engine", o.engine()},
		{"event", eventString(o.event)},
		{"target", o.target},
		{"k", o.kString()},
		{"workers", exploreWorkersString(o.workers)},
		{"est_cost", itoa64(o.cost)},
	}
}

func (o *exploreOp) children() []physOp { return nil }

func (o *exploreOp) countSelection() {
	if o.seed {
		Selections.SeedExplore.Inc()
	} else {
		Selections.FastExplore.Inc()
	}
}

// explorer builds the per-run engine, sharing the plan's point index.
func (o *exploreOp) explorer() *explore.Explorer {
	ex := &explore.Explorer{
		Graph:      o.g,
		Schema:     o.schema,
		Kind:       o.kind,
		Result:     o.result,
		Workers:    o.workers,
		NoFastPath: o.seed,
	}
	if !o.seed {
		o.idxOnce.Do(func() { o.idx = ops.NewPointIndex(o.g) })
		ex.UsePointIndex(o.idx)
	}
	return ex
}

func (o *exploreOp) run(ctx context.Context, out *Result) error {
	ex := o.explorer()
	k := o.k
	if k < 1 {
		// §3.5 initialization: max of consecutive pairs for minimal
		// (union) searches, min for maximal (intersection) ones.
		min, max := ex.InitK(o.event)
		if o.sem == explore.UnionSemantics {
			k = max
		} else {
			k = min
		}
		if k < 1 {
			k = 1
		}
	}
	pairs, err := ex.ExploreCtx(ctx, o.event, o.sem, o.ext, k)
	if err != nil {
		return err
	}
	out.Pairs, out.K, out.Evaluations = pairs, k, ex.Evaluations
	return nil
}

// tuneOp wraps an exploration in the §3.5 threshold tuning loop, which
// memoizes candidate evaluations across its exponential ramp and binary
// search (the runs walk overlapping candidate chains).
type tuneOp struct {
	inner    *exploreOp
	minPairs int
}

func (o *tuneOp) name() string { return "TuneK" }

func (o *tuneOp) describe() []kv {
	return []kv{
		{"min_pairs", strconv.Itoa(o.minPairs)},
		{"evaluation", "memoized"},
	}
}

func (o *tuneOp) children() []physOp { return []physOp{o.inner} }
func (o *tuneOp) countSelection()    { Selections.TuneExplore.Inc() }

func (o *tuneOp) run(ctx context.Context, out *Result) error {
	ex := o.inner.explorer()
	k, pairs, err := ex.TuneKCtx(ctx, o.inner.event, o.inner.sem, o.inner.ext, o.minPairs)
	if err != nil {
		return err
	}
	out.Pairs, out.K, out.Evaluations = pairs, k, ex.Evaluations
	return nil
}

// topOp ranks aggregate edges (attribute-pair groups) by peak event count
// over consecutive interval pairs.
type topOp struct {
	g      *core.Graph
	schema *agg.Schema
	event  explore.Event
	n      int
	cost   int64
}

func (o *topOp) name() string { return "TopEdgeTuples" }

func (o *topOp) describe() []kv {
	return []kv{
		{"n", strconv.Itoa(o.n)},
		{"event", eventString(o.event)},
		{"pairs", "consecutive"},
		{"est_cost", itoa64(o.cost)},
	}
}

func (o *topOp) children() []physOp { return nil }
func (o *topOp) countSelection()    { Selections.Top.Inc() }

func (o *topOp) run(ctx context.Context, out *Result) error {
	ex := &explore.Explorer{Graph: o.g, Schema: o.schema, Kind: agg.Distinct, Result: explore.TotalEdges}
	top, err := explore.TopEdgeTuplesCtx(ctx, ex, o.event, o.n)
	if err != nil {
		return err
	}
	out.Top, out.TopSchema = top, o.schema
	return nil
}

// evolveOp computes the evolution aggregate between two intervals.
type evolveOp struct {
	g      *core.Graph
	schema *agg.Schema
	kind   agg.Kind
	old    timeline.Interval
	new    timeline.Interval
	filter agg.Filter
	preds  int
	cost   int64
}

func (o *evolveOp) name() string { return "EvolutionAggregate" }

func filterString(preds int) string {
	if preds == 0 {
		return "none"
	}
	return "predicates:" + strconv.Itoa(preds)
}

func (o *evolveOp) describe() []kv {
	return []kv{
		{"kind", kindString(o.kind)},
		{"old", intervalString(o.old)},
		{"new", intervalString(o.new)},
		{"filter", filterString(o.preds)},
		{"est_cost", itoa64(o.cost)},
	}
}

func (o *evolveOp) children() []physOp { return nil }
func (o *evolveOp) countSelection()    { Selections.Evolve.Inc() }

func (o *evolveOp) run(ctx context.Context, out *Result) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	ev := evolution.Aggregate(o.g, o.old, o.new, o.schema, o.kind, evolution.Filter(o.filter))
	if err := ctx.Err(); err != nil {
		return err
	}
	out.Evolution = ev
	return nil
}

// timelineOp computes evolution weights for every consecutive pair.
type timelineOp struct {
	g      *core.Graph
	schema *agg.Schema
	filter agg.Filter
	preds  int
	steps  int
	cost   int64
}

func (o *timelineOp) name() string { return "EvolutionTimeline" }

func (o *timelineOp) describe() []kv {
	return []kv{
		{"steps", strconv.Itoa(o.steps)},
		{"filter", filterString(o.preds)},
		{"est_cost", itoa64(o.cost)},
	}
}

func (o *timelineOp) children() []physOp { return nil }
func (o *timelineOp) countSelection()    { Selections.Timeline.Inc() }

func (o *timelineOp) run(ctx context.Context, out *Result) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	steps := evolution.Timeline(o.g, o.schema, agg.Distinct, evolution.Filter(o.filter))
	if err := ctx.Err(); err != nil {
		return err
	}
	out.Timeline = steps
	return nil
}
