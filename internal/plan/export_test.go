package plan

// Test seams for the feedback loop: external tests seed observations
// directly instead of constructing graphs large enough to cross the real
// engine thresholds (ParallelMinEntities is 16k entities).

// SeedObservationForTest records a cardinality observation as if a plan
// with this logical key had executed and reported it.
func SeedObservationForTest(f *Feedback, key string, entities, results int) {
	f.observe(key, entities, results)
}

// SeedRunRatioForTest records a timestamp compression ratio as if an
// executed plan had observed it from the graph's TauStats.
func SeedRunRatioForTest(f *Feedback, ratio float64) {
	f.observeRatio(ratio)
}
