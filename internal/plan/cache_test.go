package plan

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/materialize"
)

func aggNode(attr string) *Aggregate {
	return &Aggregate{
		Op:    TemporalOp{Op: OpUnion, A: IntervalRef{From: "t0"}, B: IntervalRef{From: "t1"}},
		Attrs: []string{attr},
		Kind:  "all",
	}
}

// TestCacheHit checks that recompiling the same canonical query returns
// the identical plan, and that differing workers settings key separately.
func TestCacheHit(t *testing.T) {
	g := core.PaperExample()
	cache := NewCache(0)
	env := Env{Graph: g, Workers: 1, Cache: cache}

	p1, err := Compile(env, aggNode("gender"))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Compile(env, aggNode("gender"))
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("identical query recompiled instead of served from cache")
	}
	if cache.Len() != 1 {
		t.Errorf("cache has %d plans, want 1", cache.Len())
	}

	// Negative workers survive clamping verbatim (engine-specific meaning),
	// so the key differs regardless of the host's GOMAXPROCS.
	env.Workers = -1
	p3, err := Compile(env, aggNode("gender"))
	if err != nil {
		t.Fatal(err)
	}
	if p3 == p1 {
		t.Error("workers setting must key separate plans")
	}
}

// TestCacheNormalization checks that the cache keys on the canonical
// logical text: differently-spelled equivalent queries share one plan.
// (The front ends normalize case and sugar before building the IR; here
// two IR nodes with equivalent kind spellings land on the same key.)
func TestCacheNormalization(t *testing.T) {
	g := core.PaperExample()
	cache := NewCache(0)
	env := Env{Graph: g, Workers: 1, Cache: cache}

	n1 := aggNode("gender")
	n1.Kind = "all"
	n2 := aggNode("gender")
	n2.Kind = "ALL"
	p1, err := Compile(env, n1)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Compile(env, n2)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Errorf("equivalent spellings compiled to distinct plans (keys %q vs %q)", n1.Key(), n2.Key())
	}
}

// TestCacheGenerationFlush checks that swapping the (graph, catalog) pair
// flushes every cached plan: plans bind resolved views to one graph.
func TestCacheGenerationFlush(t *testing.T) {
	g1 := core.PaperExample()
	g2 := core.PaperExample()
	cache := NewCache(0)

	p1, err := Compile(Env{Graph: g1, Workers: 1, Cache: cache}, aggNode("gender"))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Compile(Env{Graph: g2, Workers: 1, Cache: cache}, aggNode("gender"))
	if err != nil {
		t.Fatal(err)
	}
	if p1 == p2 {
		t.Error("plan served across a graph swap")
	}
	if cache.Len() != 1 {
		t.Errorf("cache has %d plans after flush, want 1", cache.Len())
	}

	// A catalog change is a generation change too.
	cat := materialize.NewCatalogWith(g2, materialize.CatalogConfig{})
	if _, err := Compile(Env{Graph: g2, Catalog: cat, Workers: 1, Cache: cache}, aggNode("gender")); err != nil {
		t.Fatal(err)
	}
	if cache.Len() != 1 {
		t.Errorf("cache has %d plans after catalog swap, want 1", cache.Len())
	}
}

// TestCacheBounded checks FIFO eviction at the entry bound.
func TestCacheBounded(t *testing.T) {
	g := core.PaperExample()
	cache := NewCache(2)
	env := Env{Graph: g, Workers: 1, Cache: cache}
	for _, attr := range []string{"gender", "publications"} {
		if _, err := Compile(env, aggNode(attr)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Compile(env, &Top{N: 1, Event: "growth", Attrs: []string{"gender"}}); err != nil {
		t.Fatal(err)
	}
	if cache.Len() != 2 {
		t.Errorf("cache has %d plans, want bound of 2", cache.Len())
	}
}

// TestCacheSkipsErrors checks that failed compiles are never cached: a
// correction of the query must not replay the failure, and a failing
// spelling re-resolves each time (error positions depend on query text).
func TestCacheSkipsErrors(t *testing.T) {
	g := core.PaperExample()
	cache := NewCache(0)
	env := Env{Graph: g, Workers: 1, Cache: cache}
	if _, err := Compile(env, aggNode("nope")); err == nil {
		t.Fatal("unknown attribute compiled")
	}
	if cache.Len() != 0 {
		t.Errorf("failed compile cached (%d entries)", cache.Len())
	}
}

// TestConcurrentExecute hammers one compiled plan from many goroutines;
// run under -race this checks that compiled state is execution-immutable
// (fresh engines per run, shared point index built once).
func TestConcurrentExecute(t *testing.T) {
	g := core.PaperExample()
	cache := NewCache(0)
	env := Env{Graph: g, Workers: 1, Cache: cache}

	nodes := []Logical{
		aggNode("gender"),
		&Explore{Event: "stability", Attrs: []string{"gender"}, K: 1},
		&Top{N: 2, Event: "growth", Attrs: []string{"gender"}},
		&Timeline{Attrs: []string{"gender"}},
	}
	for _, node := range nodes {
		p, err := Compile(env, node)
		if err != nil {
			t.Fatal(err)
		}
		base, err := p.Execute(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		results := make([]*Result, 8)
		for i := range results {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				r, err := p.Execute(context.Background())
				if err != nil {
					t.Error(err)
					return
				}
				results[i] = r
			}(i)
		}
		wg.Wait()
		for i, r := range results {
			if r == nil {
				continue // error already reported
			}
			if !reflect.DeepEqual(r, base) {
				t.Errorf("%s: concurrent execution %d diverged", node.Key(), i)
			}
		}
	}
}
