package plan

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/materialize"
)

func aggNode(attr string) *Aggregate {
	return &Aggregate{
		Op:    TemporalOp{Op: OpUnion, A: IntervalRef{From: "t0"}, B: IntervalRef{From: "t1"}},
		Attrs: []string{attr},
		Kind:  "all",
	}
}

// TestCacheHit checks that recompiling the same canonical query returns
// the identical plan, and that differing workers settings key separately.
func TestCacheHit(t *testing.T) {
	g := core.PaperExample()
	cache := NewCache(0)
	env := Env{Graph: g, Workers: 1, Cache: cache}

	p1, err := Compile(env, aggNode("gender"))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Compile(env, aggNode("gender"))
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("identical query recompiled instead of served from cache")
	}
	if cache.Len() != 1 {
		t.Errorf("cache has %d plans, want 1", cache.Len())
	}

	// Negative workers survive clamping verbatim (engine-specific meaning),
	// so the key differs regardless of the host's GOMAXPROCS.
	env.Workers = -1
	p3, err := Compile(env, aggNode("gender"))
	if err != nil {
		t.Fatal(err)
	}
	if p3 == p1 {
		t.Error("workers setting must key separate plans")
	}
}

// TestCacheNormalization checks that the cache keys on the canonical
// logical text: differently-spelled equivalent queries share one plan.
// (The front ends normalize case and sugar before building the IR; here
// two IR nodes with equivalent kind spellings land on the same key.)
func TestCacheNormalization(t *testing.T) {
	g := core.PaperExample()
	cache := NewCache(0)
	env := Env{Graph: g, Workers: 1, Cache: cache}

	n1 := aggNode("gender")
	n1.Kind = "all"
	n2 := aggNode("gender")
	n2.Kind = "ALL"
	p1, err := Compile(env, n1)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Compile(env, n2)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Errorf("equivalent spellings compiled to distinct plans (keys %q vs %q)", n1.Key(), n2.Key())
	}
}

// TestCacheGenerationFlush checks that swapping the (graph, catalog) pair
// flushes every cached plan: plans bind resolved views to one graph.
func TestCacheGenerationFlush(t *testing.T) {
	g1 := core.PaperExample()
	g2 := core.PaperExample()
	cache := NewCache(0)

	p1, err := Compile(Env{Graph: g1, Workers: 1, Cache: cache}, aggNode("gender"))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Compile(Env{Graph: g2, Workers: 1, Cache: cache}, aggNode("gender"))
	if err != nil {
		t.Fatal(err)
	}
	if p1 == p2 {
		t.Error("plan served across a graph swap")
	}
	if cache.Len() != 1 {
		t.Errorf("cache has %d plans after flush, want 1", cache.Len())
	}

	// A catalog change is a generation change too.
	cat := materialize.NewCatalogWith(g2, materialize.CatalogConfig{})
	if _, err := Compile(Env{Graph: g2, Catalog: cat, Workers: 1, Cache: cache}, aggNode("gender")); err != nil {
		t.Fatal(err)
	}
	if cache.Len() != 1 {
		t.Errorf("cache has %d plans after catalog swap, want 1", cache.Len())
	}
}

// TestCacheAdvanceSuffixInvalidation checks the append-only rebind path:
// Advance keeps bounded plans over the clean prefix, evicts bounded plans
// reaching the dirty suffix and every unbounded plan, and degrades
// retired-generation traffic to misses instead of flushes.
func TestCacheAdvanceSuffixInvalidation(t *testing.T) {
	g1 := core.PaperExample()
	g2 := core.PaperExample() // stands in for the extended snapshot
	cache := NewCache(0)
	env := Env{Graph: g1, Workers: 1, Cache: cache}

	prefix := aggNode("gender") // touches t0,t1 → maxTime 1
	suffix := &Aggregate{
		Op:    TemporalOp{Op: OpUnion, A: IntervalRef{From: "t0"}, B: IntervalRef{From: "t2"}},
		Attrs: []string{"gender"},
		Kind:  "all",
	} // touches t2 → maxTime 2
	unbounded := &Timeline{Attrs: []string{"gender"}}

	pPrefix, err := Compile(env, prefix)
	if err != nil {
		t.Fatal(err)
	}
	if !pPrefix.bounded || pPrefix.maxTime != 1 {
		t.Fatalf("prefix plan span = (bounded=%v, maxTime=%d), want (true, 1)", pPrefix.bounded, pPrefix.maxTime)
	}
	pSuffix, err := Compile(env, suffix)
	if err != nil {
		t.Fatal(err)
	}
	if !pSuffix.bounded || pSuffix.maxTime != 2 {
		t.Fatalf("suffix plan span = (bounded=%v, maxTime=%d), want (true, 2)", pSuffix.bounded, pSuffix.maxTime)
	}
	pUnbounded, err := Compile(env, unbounded)
	if err != nil {
		t.Fatal(err)
	}
	if pUnbounded.bounded {
		t.Fatal("timeline plan must be unbounded")
	}

	// Advance with first dirty point 2: the t0,t1 plan survives, the plan
	// reaching t2 and the whole-timeline plan go.
	kept, evicted := cache.Advance(g2, nil, 2)
	if kept != 1 || evicted != 2 {
		t.Fatalf("Advance kept %d evicted %d, want 1/2", kept, evicted)
	}
	env2 := Env{Graph: g2, Workers: 1, Cache: cache}
	got, err := Compile(env2, prefix)
	if err != nil {
		t.Fatal(err)
	}
	if got != pPrefix {
		t.Error("clean-prefix plan was not served across the advance")
	}
	if p2, err := Compile(env2, suffix); err != nil {
		t.Fatal(err)
	} else if p2 == pSuffix {
		t.Error("suffix-dirty plan served stale across the advance")
	}

	// Retired-generation traffic: a miss and a dropped store, never a flush.
	before := cache.Len()
	if p := cache.lookup(g1, nil, cacheKey(prefix, 1)); p != nil {
		t.Error("retired-generation lookup returned a plan")
	}
	cache.store(g1, nil, cacheKey(unbounded, 1), pUnbounded)
	if cache.Len() != before {
		t.Errorf("retired-generation traffic changed the cache: %d → %d entries", before, cache.Len())
	}
	if got, err := Compile(env2, prefix); err != nil || got != pPrefix {
		t.Errorf("current-generation hit lost after retired traffic (err=%v)", err)
	}
}

// TestCacheBounded checks FIFO eviction at the entry bound.
func TestCacheBounded(t *testing.T) {
	g := core.PaperExample()
	cache := NewCache(2)
	env := Env{Graph: g, Workers: 1, Cache: cache}
	for _, attr := range []string{"gender", "publications"} {
		if _, err := Compile(env, aggNode(attr)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Compile(env, &Top{N: 1, Event: "growth", Attrs: []string{"gender"}}); err != nil {
		t.Fatal(err)
	}
	if cache.Len() != 2 {
		t.Errorf("cache has %d plans, want bound of 2", cache.Len())
	}
}

// TestCacheSkipsErrors checks that failed compiles are never cached: a
// correction of the query must not replay the failure, and a failing
// spelling re-resolves each time (error positions depend on query text).
func TestCacheSkipsErrors(t *testing.T) {
	g := core.PaperExample()
	cache := NewCache(0)
	env := Env{Graph: g, Workers: 1, Cache: cache}
	if _, err := Compile(env, aggNode("nope")); err == nil {
		t.Fatal("unknown attribute compiled")
	}
	if cache.Len() != 0 {
		t.Errorf("failed compile cached (%d entries)", cache.Len())
	}
}

// TestConcurrentExecute hammers one compiled plan from many goroutines;
// run under -race this checks that compiled state is execution-immutable
// (fresh engines per run, shared point index built once).
func TestConcurrentExecute(t *testing.T) {
	g := core.PaperExample()
	cache := NewCache(0)
	env := Env{Graph: g, Workers: 1, Cache: cache}

	nodes := []Logical{
		aggNode("gender"),
		&Explore{Event: "stability", Attrs: []string{"gender"}, K: 1},
		&Top{N: 2, Event: "growth", Attrs: []string{"gender"}},
		&Timeline{Attrs: []string{"gender"}},
	}
	for _, node := range nodes {
		p, err := Compile(env, node)
		if err != nil {
			t.Fatal(err)
		}
		base, err := p.Execute(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		results := make([]*Result, 8)
		for i := range results {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				r, err := p.Execute(context.Background())
				if err != nil {
					t.Error(err)
					return
				}
				results[i] = r
			}(i)
		}
		wg.Wait()
		for i, r := range results {
			if r == nil {
				continue // error already reported
			}
			if !reflect.DeepEqual(r, base) {
				t.Errorf("%s: concurrent execution %d diverged", node.Key(), i)
			}
		}
	}
}
