package plan

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/agg"
	"repro/internal/analytics"
	"repro/internal/core"
	"repro/internal/evolution"
	"repro/internal/explore"
	"repro/internal/materialize"
	"repro/internal/timeline"
)

// Env is the compile environment: the concrete graph a logical plan is
// resolved against plus the optional serving facilities that unlock
// physical operators.
type Env struct {
	// Graph is the base graph. Required.
	Graph *core.Graph
	// Catalog, when set, enables the catalog-backed UnionAll operator for
	// union-ALL aggregates (T-distributive / D-distributive reuse, §4.3).
	// Nil compiles every aggregate to direct recompute.
	Catalog *materialize.Catalog
	// Workers is the requested parallelism, clamped to GOMAXPROCS at
	// compile (ClampWorkers). Zero and negative keep their engine-specific
	// meaning: aggregation treats <= 0 as GOMAXPROCS, exploration treats 0
	// as serial and negative as GOMAXPROCS.
	Workers int
	// Query is the originating query text, used only to position
	// resolution errors ("" renders plain messages for wire requests).
	Query string
	// Cache, when set, memoizes compiled plans on the canonical query text
	// (generation-keyed on Graph/Catalog identity).
	Cache *Cache
	// Feedback, when set, records observed cardinalities and run ratios
	// from executed plans and adapts Compile's selections (serial vs
	// parallel, dense vs map kernel, catalog vs direct scan) to them.
	Feedback *Feedback
	// History, when set, resolves AS OF / VALID DURING clauses into
	// reconstructed historical states (graph, catalog, plan cache). Nil
	// still serves VALID DURING by windowing Graph inline, but rejects
	// AS OF — there is no transaction log to travel on.
	History HistoryResolver
}

// Result holds the output of one executed plan; the fields mirror the
// statement families, with exactly one payload group set.
type Result struct {
	Agg *agg.Graph
	// AggSource reports how an aggregate was derived (scratch unless the
	// catalog-backed operator answered it).
	AggSource materialize.Source
	Measure   *agg.MeasureGraph
	Evolution *evolution.Agg
	Pairs     []explore.Pair
	// K is the threshold an exploration ran with (given, initialized or
	// tuned); Evaluations its candidate-evaluation count.
	K           int64
	Evaluations int
	Top         []explore.TupleScore
	TopSchema   *agg.Schema
	Timeline    []evolution.TimelineStep
	// Events, Paths and Trend are the evolution-analytics payloads
	// (internal/analytics statement families).
	Events *analytics.EventsResult
	Paths  *analytics.PathsResult
	Trend  *analytics.TrendResult
	// Partial is a shard-local partial aggregate (Partial plans); Merged is
	// the gathered cross-shard answer (CompileScatter plans). See scatter.go.
	Partial *PartialResult
	Merged  *MergedGraph
}

// Plan is an executable physical plan: the logical node it was compiled
// from and the selected operator tree. Compiled state (views, schemas,
// filters) is immutable, so one Plan may be executed concurrently; each
// Execute runs on fresh per-run engine state.
type Plan struct {
	logical Logical
	root    physOp

	// Time reach, for suffix-scoped cache invalidation (Cache.Advance):
	// a bounded plan reads base time points ≤ maxTime only; an unbounded
	// plan (EXPLORE/TOP/TIMELINE) traverses the whole timeline.
	maxTime int
	bounded bool
}

// Logical returns the logical node the plan was compiled from.
func (p *Plan) Logical() Logical { return p.logical }

// Execute runs the plan. The selection counters record the root operator
// on every execution; ctx cancels cooperatively inside the engines.
func (p *Plan) Execute(ctx context.Context) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	p.root.countSelection()
	out := &Result{}
	if err := p.root.run(ctx, out); err != nil {
		return nil, err
	}
	return out, nil
}

// cacheKey is the plan-cache key: the canonical logical text plus the
// effective workers setting (plans bind workers at compile).
func cacheKey(node Logical, workers int) string {
	return node.Key() + "|workers=" + strconv.Itoa(workers)
}

// Compile resolves a logical node against env into an executable physical
// plan, selecting operators through the cost model and consulting the plan
// cache when env.Cache is set. All user-facing resolution errors (unknown
// time points, attributes, enum values, malformed combinations) surface
// here; Execute can only fail on context cancellation or engine errors.
func Compile(env Env, node Logical) (*Plan, error) {
	if env.Graph == nil {
		return nil, fmt.Errorf("plan: no graph to compile against")
	}
	// Bi-temporal clauses swap the whole environment — graph, catalog AND
	// plan cache — before the cache lookup below, so a historical compile
	// can neither hit nor pollute the head's cache.
	env, err := resolveHistory(env, node)
	if err != nil {
		return nil, err
	}
	workers := ClampWorkers(env.Workers)
	var key string
	if env.Cache != nil {
		key = cacheKey(node, workers)
		if env.Feedback != nil {
			// New observations bump the epoch, so an adapted selection takes
			// effect on the next compile instead of hiding behind the cache.
			key += "|fb=" + strconv.Itoa(env.Feedback.epochFor(node.Key()))
		}
		if p := env.Cache.lookup(env.Graph, env.Catalog, key); p != nil {
			CacheHits.Inc()
			return p, nil
		}
		CacheMisses.Inc()
	}
	var (
		root    physOp
		maxTime int
		bounded bool
	)
	switch q := node.(type) {
	case *Aggregate:
		root, maxTime, err = compileAggregate(env, workers, q)
		bounded = true
	case *Partial:
		root, maxTime, err = compilePartial(env, workers, q)
		bounded = true
	case *Explore:
		root, err = compileExplore(env, workers, q)
	case *Top:
		root, err = compileTop(env, q)
	case *Evolve:
		root, maxTime, err = compileEvolve(env, q)
		bounded = true
	case *Timeline:
		root, err = compileTimeline(env, q)
	case *Events:
		root, err = compileEvents(env, q)
	case *Paths:
		root, maxTime, bounded, err = compilePaths(env, q)
	case *Trend:
		root, err = compileTrend(env, q)
	default:
		return nil, fmt.Errorf("plan: unhandled logical node %T", node)
	}
	if err != nil {
		return nil, err
	}
	p := &Plan{logical: node, root: root, maxTime: maxTime, bounded: bounded}
	if env.Cache != nil {
		env.Cache.store(env.Graph, env.Catalog, key, p)
	}
	return p, nil
}

// scanCost is the base-graph scan estimate every direct operator pays.
func scanCost(g *core.Graph) int64 {
	return int64(g.NumNodes() + g.NumEdges())
}

// maxTimeOf returns the highest time index any of the intervals touches
// (0 for all-empty), bounding how far into the timeline a compiled plan
// can read.
func maxTimeOf(ivs ...timeline.Interval) int {
	m := 0
	for _, iv := range ivs {
		if !iv.IsEmpty() && int(iv.Max()) > m {
			m = int(iv.Max())
		}
	}
	return m
}

func compileAggregate(env Env, workers int, q *Aggregate) (physOp, int, error) {
	g, in := env.Graph, env.Query
	schema, err := resolveSchema(g, in, q.Attrs, q.AttrsPos)
	if err != nil {
		return nil, 0, err
	}
	a, b, err := resolveOp(g, in, q.Op)
	if err != nil {
		return nil, 0, err
	}
	maxTime := maxTimeOf(a, b)
	kind, err := resolveKind(in, q.Kind)
	if err != nil {
		return nil, 0, err
	}
	filter, err := CompilePredicates(g, in, q.Where)
	if err != nil {
		return nil, 0, err
	}
	if q.Measure != "" {
		if filter != nil {
			return nil, 0, fmt.Errorf("tgql: WHERE and MEASURE cannot be combined")
		}
		attr, ok := g.AttrByName(q.MeasureAttr)
		if !ok {
			return nil, 0, errf(in, q.MeasureAttrPos, q.MeasureAttr, "unknown measured attribute %q", q.MeasureAttr)
		}
		var fn agg.Measure
		switch strings.ToUpper(q.Measure) {
		case "SUM":
			fn = agg.Sum
		case "AVG":
			fn = agg.Avg
		case "MIN":
			fn = agg.Min
		case "MAX":
			fn = agg.Max
		default:
			return nil, 0, errf(in, 0, "", "unknown measure %q (want SUM, AVG, MIN or MAX)", q.Measure)
		}
		return &measureAggOp{
			view:   newViewOp(g, q.Op.Op, a, b),
			schema: schema,
			attr:   attr,
			fn:     fn,
			fnName: strings.ToUpper(q.Measure),
			attrNm: q.MeasureAttr,
			cost:   scanCost(g),
		}, maxTime, nil
	}
	if filter != nil {
		return &filteredAggOp{
			view:   newViewOp(g, q.Op.Op, a, b),
			schema: schema,
			kind:   kind,
			preds:  len(q.Where),
			filter: filter,
			cost:   scanCost(g),
		}, maxTime, nil
	}
	// Union + ALL is T-distributive (§4.3): when a catalog serves this
	// graph, answer through it (cache → composed store → roll-up →
	// scratch) instead of recomputing from the base graph. DIST aggregates
	// are not T-distributive (distinct entities cannot be identified
	// across precomputed per-point graphs), so they always recompute.
	// Recorded feedback can override both the catalog choice (when
	// compressed timestamp scans make direct recompute decisively cheaper
	// than composition) and the view operator's engine selections.
	useCatalog := q.Op.Op == OpUnion && kind == agg.All && env.Catalog != nil
	var composeCost int64
	if useCatalog {
		composeCost = int64(a.Union(b).Len()) * schema.Domain()
	}
	ad := adaptAggregate(env.Feedback, q.Key(), workers,
		agg.ParallelMinEntities(), schema.Domain(), scanCost(g), composeCost)
	if useCatalog && !ad.bypassCatalog {
		return &catalogAggOp{
			cat:    env.Catalog,
			iv:     a.Union(b),
			attrs:  schema.Attrs(),
			schema: schema,
			g:      g,
		}, maxTime, nil
	}
	if ad.preferMap {
		// The schema is freshly resolved for this compile, so pinning its
		// kernel here affects exactly the plans built from it.
		schema.PreferMapKernel()
	}
	return &viewAggOp{
		view:    newViewOp(g, q.Op.Op, a, b),
		schema:  schema,
		kind:    kind,
		workers: ad.workers,
		cost:    ad.scanCost,
		fb:      env.Feedback,
		fbKey:   q.Key(),
		note:    ad.note(),
	}, maxTime, nil
}

func compileExplore(env Env, workers int, q *Explore) (physOp, error) {
	g, in := env.Graph, env.Query
	schema, err := resolveSchema(g, in, q.Attrs, q.AttrsPos)
	if err != nil {
		return nil, err
	}
	kind, err := resolveKind(in, q.Kind)
	if err != nil {
		return nil, err
	}
	event, err := resolveEvent(in, q.Event)
	if err != nil {
		return nil, err
	}
	sem, err := resolveSemantics(in, q.Semantics)
	if err != nil {
		return nil, err
	}
	ext, err := resolveExtend(in, q.Extend)
	if err != nil {
		return nil, err
	}
	result := explore.TotalEdges
	target := "total-edges"
	switch {
	case len(q.EdgeFrom) > 0 || len(q.EdgeTo) > 0:
		if result, err = explore.EdgeTuple(schema, q.EdgeFrom, q.EdgeTo); err != nil {
			return nil, err
		}
		target = "edge-tuple"
	case len(q.NodeTuple) > 0:
		if result, err = explore.NodeTuple(schema, q.NodeTuple...); err != nil {
			return nil, err
		}
		target = "node-tuple"
	default:
		switch strings.ToLower(q.Result) {
		case "", "edges":
		case "nodes":
			result = explore.TotalNodes
			target = "total-nodes"
		default:
			return nil, errf(in, 0, "", "unknown result %q (want edges or nodes)", q.Result)
		}
	}
	// Engine selection: the incremental-view fast path pays one point
	// index build (O(|V|+|E|)) to make each candidate a word-level view
	// extension; with at most two time points there is at most one
	// reference point and one candidate per traversal, so the index can
	// never amortize and the seed engine (selector views, zero setup) wins.
	// Both engines evaluate the identical candidate set (fastpath.go), so
	// pairs, ordering and Evaluations are unchanged by this choice.
	n := g.Timeline().Len()
	op := &exploreOp{
		g:       g,
		schema:  schema,
		kind:    kind,
		event:   event,
		sem:     sem,
		ext:     ext,
		k:       q.K,
		workers: workers,
		seed:    n <= 2,
		result:  result,
		target:  target,
		cost:    exploreCost(g, n, n <= 2),
	}
	if q.Tune > 0 {
		return &tuneOp{inner: op, minPairs: q.Tune}, nil
	}
	return op, nil
}

// exploreCost estimates candidate-evaluation work: the traversals anchor at
// n-1 reference points with at most n-1-i extensions each (≤ n(n-1)/2
// candidates). The seed engine pays a base-graph scan per candidate; the
// fast path pays one index build plus a cheap incremental extension per
// candidate (the /8 reflects word-level bitset work against per-entity
// scans; a coarse, deliberately simple model).
func exploreCost(g *core.Graph, n int, seed bool) int64 {
	cands := int64(n) * int64(n-1) / 2
	if cands < 1 {
		cands = 1
	}
	scan := scanCost(g)
	if seed {
		return cands * scan
	}
	perCand := scan/8 + 1
	return scan + cands*perCand
}

func compileTop(env Env, q *Top) (physOp, error) {
	g, in := env.Graph, env.Query
	if q.N < 1 {
		return nil, errf(in, 0, "", "top: n must be >= 1, got %d", q.N)
	}
	schema, err := resolveSchema(g, in, q.Attrs, q.AttrsPos)
	if err != nil {
		return nil, err
	}
	event, err := resolveEvent(in, q.Event)
	if err != nil {
		return nil, err
	}
	steps := g.Timeline().Len() - 1
	if steps < 0 {
		steps = 0
	}
	return &topOp{
		g:      g,
		schema: schema,
		event:  event,
		n:      q.N,
		cost:   int64(steps) * scanCost(g),
	}, nil
}

func compileEvolve(env Env, q *Evolve) (physOp, int, error) {
	g, in := env.Graph, env.Query
	schema, err := resolveSchema(g, in, q.Attrs, q.AttrsPos)
	if err != nil {
		return nil, 0, err
	}
	kind, err := resolveKind(in, q.Kind)
	if err != nil {
		return nil, 0, err
	}
	old, err := ResolveInterval(g, in, q.From)
	if err != nil {
		return nil, 0, err
	}
	new, err := ResolveInterval(g, in, q.To)
	if err != nil {
		return nil, 0, err
	}
	filter, err := CompilePredicates(g, in, q.Where)
	if err != nil {
		return nil, 0, err
	}
	return &evolveOp{
		g:      g,
		schema: schema,
		kind:   kind,
		old:    old,
		new:    new,
		filter: filter,
		preds:  len(q.Where),
		cost:   scanCost(g),
	}, maxTimeOf(old, new), nil
}

func compileTimeline(env Env, q *Timeline) (physOp, error) {
	g, in := env.Graph, env.Query
	schema, err := resolveSchema(g, in, q.Attrs, q.AttrsPos)
	if err != nil {
		return nil, err
	}
	filter, err := CompilePredicates(g, in, q.Where)
	if err != nil {
		return nil, err
	}
	steps := g.Timeline().Len() - 1
	if steps < 0 {
		steps = 0
	}
	return &timelineOp{
		g:      g,
		schema: schema,
		filter: filter,
		preds:  len(q.Where),
		steps:  steps,
		cost:   int64(steps) * scanCost(g),
	}, nil
}

// intervalString renders an interval for explanation.
func intervalString(iv timeline.Interval) string { return iv.String() }
