package plan

import (
	"fmt"
	"runtime"
	"strconv"
	"strings"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/evolution"
	"repro/internal/explore"
	"repro/internal/ops"
	"repro/internal/timeline"
)

// This file resolves the symbolic IR operands against a concrete graph:
// interval refs to timeline.Intervals, temporal ops to views, attribute
// names to schemas, predicates to appearance filters, and the string-typed
// enums (kind, event, semantics, extend, result) to engine values. Both
// front ends — TGQL and the HTTP API — compile through these, so temporal
// expressions parse identically everywhere.
//
// Error rendering follows the front end: when the compile environment
// carries the original query text (TGQL), errors are positioned
// "tgql: line:col: msg (near "tok")" using the IR's byte offsets; without
// query text (HTTP requests) they are plain messages matching the wire
// API's historical wording.

// errf renders a resolution error: positioned against the query text when
// available, plain otherwise.
func errf(in string, pos int, near, format string, args ...interface{}) error {
	msg := fmt.Sprintf(format, args...)
	if in == "" {
		return fmt.Errorf("%s", msg)
	}
	line, col := lineCol(in, pos)
	if near != "" {
		return fmt.Errorf("tgql: %d:%d: %s (near %q)", line, col, msg, near)
	}
	return fmt.Errorf("tgql: %d:%d: %s", line, col, msg)
}

// lineCol converts a byte offset in the query to 1-based line:column.
func lineCol(in string, pos int) (line, col int) {
	if pos > len(in) {
		pos = len(in)
	}
	line, col = 1, 1
	for i := 0; i < pos; i++ {
		if in[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return line, col
}

// ClampWorkers caps client-supplied parallelism at the host's GOMAXPROCS:
// the engines allocate per-worker state and spawn one goroutine per worker,
// so an unclamped value could exhaust memory with a single huge request.
// Zero and negative values keep their engine-specific meaning (GOMAXPROCS
// for aggregation, serial/GOMAXPROCS for exploration).
func ClampWorkers(n int) int {
	if max := runtime.GOMAXPROCS(0); n > max {
		return max
	}
	return n
}

// ResolveInterval resolves a symbolic interval ref on g's timeline. in is
// the originating query text for positioned errors ("" for wire requests).
func ResolveInterval(g *core.Graph, in string, r IntervalRef) (timeline.Interval, error) {
	tl := g.Timeline()
	if len(r.Points) > 0 {
		if r.From != "" || r.To != "" {
			return timeline.Interval{}, errf(in, r.FromPos, "", "interval: points and from/to are mutually exclusive")
		}
		ts := make([]timeline.Time, len(r.Points))
		for i, l := range r.Points {
			t, ok := tl.TimeOf(l)
			if !ok {
				return timeline.Interval{}, errf(in, r.FromPos, l, "interval: unknown time point %q", l)
			}
			ts[i] = t
		}
		return tl.Of(ts...), nil
	}
	if r.From == "" {
		return timeline.Interval{}, errf(in, r.FromPos, "", "interval: from or points required")
	}
	from, ok := tl.TimeOf(r.From)
	if !ok {
		return timeline.Interval{}, errf(in, r.FromPos, r.From, "unknown time point %q", r.From)
	}
	if r.To == "" {
		return tl.Point(from), nil
	}
	to, ok := tl.TimeOf(r.To)
	if !ok {
		return timeline.Interval{}, errf(in, r.ToPos, r.To, "unknown time point %q", r.To)
	}
	if from > to {
		if in == "" {
			return timeline.Interval{}, fmt.Errorf("interval: %q is before %q", r.To, r.From)
		}
		return timeline.Interval{}, errf(in, r.FromPos, r.From, "interval %s..%s runs backwards", r.From, r.To)
	}
	return tl.Range(from, to), nil
}

// resolveOp validates a temporal operator's shape and resolves its interval
// operands. The view itself is built later (buildView) so catalog-served
// plans never pay for it.
func resolveOp(g *core.Graph, in string, t TemporalOp) (a, b timeline.Interval, err error) {
	switch t.Op {
	case OpProject, OpUnion, OpIntersection, OpDifference:
	default:
		return a, b, errf(in, 0, "", "unknown op %q (want project, union, intersection or difference)", t.Op)
	}
	if a, err = ResolveInterval(g, in, t.A); err != nil {
		return a, b, err
	}
	if t.Op == OpProject {
		if !t.B.IsZero() {
			return a, b, errf(in, 0, "", "op %q takes a single interval", t.Op)
		}
		return a, b, nil
	}
	b, err = ResolveInterval(g, in, t.B)
	return a, b, err
}

// buildView materializes the view of a resolved temporal operator.
func buildView(g *core.Graph, op string, a, b timeline.Interval) *ops.View {
	switch op {
	case OpProject:
		return ops.Project(g, a)
	case OpUnion:
		return ops.Union(g, a, b)
	case OpIntersection:
		return ops.Intersection(g, a, b)
	default:
		return ops.Difference(g, a, b)
	}
}

// resolveSchema resolves attribute names into an aggregation schema,
// pointing unknown-attribute errors at the name's position when known.
func resolveSchema(g *core.Graph, in string, names []string, poss []int) (*agg.Schema, error) {
	if len(names) == 0 {
		return nil, errf(in, 0, "", "attrs required")
	}
	for i, n := range names {
		if _, ok := g.AttrByName(n); !ok {
			return nil, errf(in, posAt(poss, i), n, "unknown attribute %q", n)
		}
	}
	return agg.ByName(g, names...)
}

// posAt guards against IRs built without positions (zero value).
func posAt(poss []int, i int) int {
	if i < len(poss) {
		return poss[i]
	}
	return 0
}

// resolveKind maps the kind strings of both front ends (TGQL DIST/ALL,
// wire dist/distinct/all, empty default) to agg.Kind.
func resolveKind(in, kind string) (agg.Kind, error) {
	switch strings.ToLower(kind) {
	case "", "dist", "distinct":
		return agg.Distinct, nil
	case "all":
		return agg.All, nil
	default:
		return 0, errf(in, 0, "", "unknown kind %q (want dist or all)", kind)
	}
}

// resolveEvent maps an event name to the evolution class.
func resolveEvent(in, event string) (explore.Event, error) {
	switch strings.ToLower(event) {
	case "stability":
		return evolution.Stability, nil
	case "growth":
		return evolution.Growth, nil
	case "shrinkage":
		return evolution.Shrinkage, nil
	default:
		return 0, errf(in, 0, "", "unknown event %q (want stability, growth or shrinkage)", event)
	}
}

func resolveSemantics(in, s string) (explore.Semantics, error) {
	switch strings.ToLower(s) {
	case "", "union":
		return explore.UnionSemantics, nil
	case "intersection":
		return explore.IntersectionSemantics, nil
	default:
		return 0, errf(in, 0, "", "unknown semantics %q (want union or intersection)", s)
	}
}

func resolveExtend(in, e string) (explore.Extend, error) {
	switch strings.ToLower(e) {
	case "", "new":
		return explore.ExtendNew, nil
	case "old":
		return explore.ExtendOld, nil
	default:
		return 0, errf(in, 0, "", "unknown extend %q (want old or new)", e)
	}
}

// CompilePredicates turns WHERE comparisons into an appearance filter.
// Equality and inequality compare strings; ordering operators compare
// numerically and reject appearances whose value does not parse. A nil
// filter (no predicates) means unfiltered.
func CompilePredicates(g *core.Graph, in string, preds []Predicate) (agg.Filter, error) {
	if len(preds) == 0 {
		return nil, nil
	}
	type compiled struct {
		attr    core.AttrID
		op      string
		str     string
		num     float64
		numeric bool
	}
	cs := make([]compiled, len(preds))
	for i, c := range preds {
		a, ok := g.AttrByName(c.Attr)
		if !ok {
			return nil, errf(in, c.AttrPos, c.Attr, "unknown attribute %q in WHERE", c.Attr)
		}
		cc := compiled{attr: a, op: c.Op, str: c.Value}
		if n, err := strconv.ParseFloat(c.Value, 64); err == nil {
			cc.num, cc.numeric = n, true
		}
		if (c.Op != "=" && c.Op != "!=") && !cc.numeric {
			return nil, errf(in, c.ValuePos, c.Value, "operator %s needs a numeric value, got %q", c.Op, c.Value)
		}
		cs[i] = cc
	}
	return func(n core.NodeID, t timeline.Time) bool {
		for _, c := range cs {
			v := g.ValueString(c.attr, n, t)
			if v == "" {
				return false
			}
			switch c.op {
			case "=":
				if v != c.str {
					return false
				}
			case "!=":
				if v == c.str {
					return false
				}
			default:
				x, err := strconv.ParseFloat(v, 64)
				if err != nil {
					return false
				}
				switch c.op {
				case "<":
					if !(x < c.num) {
						return false
					}
				case "<=":
					if !(x <= c.num) {
						return false
					}
				case ">":
					if !(x > c.num) {
						return false
					}
				case ">=":
					if !(x >= c.num) {
						return false
					}
				}
			}
		}
		return true
	}, nil
}
