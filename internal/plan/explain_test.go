package plan_test

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/materialize"
	"repro/internal/plan"
	"repro/internal/tgql"
)

var update = flag.Bool("update", false, "rewrite the golden plan files")

// TestExplainGolden pins the full Explain rendering — canonical logical
// text, selected physical operators, and their attributes — for one query
// of every statement family on the fixed paper-example graph. The goldens
// are the contract that EXPLAIN names the chosen kernel, explore engine
// and materialization source; regenerate with `go test -run Golden -update`.
func TestExplainGolden(t *testing.T) {
	g := core.PaperExample()

	// A two-point zoom-out of the same graph: with at most one candidate
	// per traversal the planner picks the seed engine over the fast path.
	spec, err := core.UniformGroups(g.Timeline(), 2)
	if err != nil {
		t.Fatal(err)
	}
	coarse, err := core.Coarsen(g, spec)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name    string
		query   string
		graph   *core.Graph
		catalog bool
	}{
		{name: "agg_union_all_catalog", query: "AGG ALL gender ON UNION(t0, t1)", catalog: true},
		{name: "agg_union_all_direct", query: "AGG ALL gender ON UNION(t0, t1)"},
		{name: "agg_dist_project", query: "agg dist gender on point t0"},
		{name: "agg_filtered", query: "AGG DIST gender, publications ON PROJECT t0..t2 WHERE publications > 2"},
		{name: "agg_measure", query: "AGG DIST gender ON INTERSECT(t0, t1) MEASURE AVG(publications)"},
		{name: "explore_fast", query: "EXPLORE STABILITY BY gender K 2"},
		{name: "explore_seed", query: "EXPLORE STABILITY BY gender K 1", graph: coarse},
		{name: "explore_tuned", query: "EXPLORE GROWTH BY gender TUNE 1"},
		{name: "top", query: "TOP 3 SHRINKAGE BY gender"},
		{name: "evolve", query: "EXPLAIN EVOLVE DIST gender FROM t0 TO t1"},
		{name: "timeline", query: "TIMELINE BY gender WHERE gender = 'f'"},
		{name: "events_sweep", query: "EVENTS DIST BY gender WIDTH 1 MIN 1"},
		{name: "events_scan", query: "EVENTS ALL BY gender WIDTH 2"},
		{name: "paths_frontier", query: "PATHS EARLIEST FROM u1 TO u2, u4"},
		{name: "paths_naive", query: "PATHS FASTEST FROM u1 TO u4 DURING t0..t1"},
		{name: "trend_catalog", query: "TREND ALL BY gender WIDTH 2", catalog: true},
		{name: "trend_scan", query: "TREND DIST BY gender WHERE publications > 1"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			env := plan.Env{Graph: g, Workers: 1}
			if c.graph != nil {
				env.Graph = c.graph
			}
			if c.catalog {
				// A fresh catalog per compile keeps the source hint
				// deterministic (nothing materialized yet → scratch).
				env.Catalog = materialize.NewCatalogWith(env.Graph, materialize.CatalogConfig{})
			}
			p, err := tgql.PlanEnv(env, c.query)
			if err != nil {
				t.Fatal(err)
			}
			got := p.Explain()
			path := filepath.Join("testdata", c.name+".golden")
			if *update {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to regenerate)", err)
			}
			if got != string(want) {
				t.Errorf("plan mismatch for %q\n got:\n%s\nwant:\n%s", c.query, got, want)
			}
		})
	}
}

// TestExplainNamesDecisions spot-checks the acceptance contract without
// goldens: the rendering names the kernel, the engine, and the source.
func TestExplainNamesDecisions(t *testing.T) {
	g := core.PaperExample()
	cat := materialize.NewCatalogWith(g, materialize.CatalogConfig{})

	out, err := tgql.PlanEnv(plan.Env{Graph: g, Catalog: cat}, "AGG ALL gender ON UNION(t0, t1)")
	if err != nil {
		t.Fatal(err)
	}
	if s := out.Explain(); !strings.Contains(s, "CatalogUnionAll") || !strings.Contains(s, "source-hint=") {
		t.Errorf("catalog plan does not name the materialization source:\n%s", s)
	}

	out, err = tgql.PlanEnv(plan.Env{Graph: g}, "AGG DIST gender ON UNION(t0, t1)")
	if err != nil {
		t.Fatal(err)
	}
	if s := out.Explain(); !strings.Contains(s, "kernel=dense") {
		t.Errorf("aggregate plan does not name the kernel:\n%s", s)
	}

	out, err = tgql.PlanEnv(plan.Env{Graph: g}, "EXPLORE GROWTH BY gender K 2")
	if err != nil {
		t.Fatal(err)
	}
	if s := out.Explain(); !strings.Contains(s, "engine=incremental-views") {
		t.Errorf("explore plan does not name the engine:\n%s", s)
	}
}

// TestExplainStatement checks the TGQL EXPLAIN prefix end to end: the
// result carries the rendering and executes nothing.
func TestExplainStatement(t *testing.T) {
	g := core.PaperExample()
	res, err := tgql.Exec(g, "EXPLAIN AGG DIST gender ON UNION(t0, t1)")
	if err != nil {
		t.Fatal(err)
	}
	if res.Agg != nil {
		t.Fatalf("EXPLAIN executed the statement: %+v", res)
	}
	if !strings.HasPrefix(res.Explain, "plan: AGG DIST gender ON UNION(t0, t1)") {
		t.Errorf("unexpected EXPLAIN text:\n%s", res.Explain)
	}
	if res.String() != res.Explain {
		t.Errorf("Result.String() should render the plan, got:\n%s", res.String())
	}
	if _, err := tgql.Exec(g, "EXPLAIN STATS"); err == nil {
		t.Error("EXPLAIN STATS should fail (no query plan)")
	}
}
