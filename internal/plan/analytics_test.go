package plan

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/agg"
	"repro/internal/analytics"
	"repro/internal/core"
	"repro/internal/materialize"
)

func eventsNode(width int) *Events {
	return &Events{Kind: "dist", Attrs: []string{"gender"}, Width: width}
}

func trendNode(kind string, width int) *Trend {
	return &Trend{Kind: kind, Attrs: []string{"gender"}, Width: width}
}

func pathsNode(mode string, from, to []string) *Paths {
	return &Paths{Mode: mode, From: from, To: to}
}

func rootName(t *testing.T, env Env, node Logical) string {
	t.Helper()
	p, err := Compile(env, node)
	if err != nil {
		t.Fatal(err)
	}
	return p.root.name()
}

// TestAnalyticsEngineSelection pins the cost rules: which engine each
// analytics statement compiles to, as a function of window width, catalog
// availability, filters, and DURING length.
func TestAnalyticsEngineSelection(t *testing.T) {
	g := core.PaperExample() // 3 time points
	env := Env{Graph: g}
	cat := materialize.NewCatalogWith(g, materialize.CatalogConfig{})

	// EVENTS: width 1 → 2 steps → sweep; width 2 → 1 step → per-step scan.
	if got := rootName(t, env, eventsNode(1)); got != "EventsSweep" {
		t.Errorf("EVENTS width=1 compiled to %s, want EventsSweep", got)
	}
	if got := rootName(t, env, eventsNode(2)); got != "EventsScan" {
		t.Errorf("EVENTS width=2 compiled to %s, want EventsScan", got)
	}
	if got := rootName(t, env, eventsNode(3)); got != "EventsScan" {
		t.Errorf("EVENTS width=3 (0 steps) compiled to %s, want EventsScan", got)
	}

	// TREND: catalog only for unfiltered ALL.
	if got := rootName(t, Env{Graph: g, Catalog: cat}, trendNode("all", 2)); got != "TrendCatalog" {
		t.Errorf("TREND ALL with catalog compiled to %s, want TrendCatalog", got)
	}
	if got := rootName(t, Env{Graph: g, Catalog: cat}, trendNode("dist", 2)); got != "TrendScan" {
		t.Errorf("TREND DIST with catalog compiled to %s, want TrendScan", got)
	}
	filtered := trendNode("all", 2)
	filtered.Where = []Predicate{{Attr: "publications", Op: ">", Value: "1"}}
	if got := rootName(t, Env{Graph: g, Catalog: cat}, filtered); got != "TrendScan" {
		t.Errorf("TREND ALL filtered compiled to %s, want TrendScan", got)
	}
	if got := rootName(t, env, trendNode("all", 2)); got != "TrendScan" {
		t.Errorf("TREND ALL without catalog compiled to %s, want TrendScan", got)
	}

	// PATHS: full 3-point window → frontier; 2-point DURING → time-expanded.
	if got := rootName(t, env, pathsNode("earliest", []string{"u1"}, []string{"u4"})); got != "PathsFrontier" {
		t.Errorf("PATHS over full window compiled to %s, want PathsFrontier", got)
	}
	short := pathsNode("fastest", []string{"u1"}, []string{"u4"})
	short.During = IntervalRef{From: "t0", To: "t1"}
	if got := rootName(t, env, short); got != "PathsNaive" {
		t.Errorf("PATHS over 2-point window compiled to %s, want PathsNaive", got)
	}
}

// TestAnalyticsBounded pins cache-invalidation reach: PATHS with a DURING
// window is bounded at the window's max point; everything else traverses
// the whole timeline and must stay unbounded.
func TestAnalyticsBounded(t *testing.T) {
	g := core.PaperExample()
	env := Env{Graph: g}

	p, err := Compile(env, eventsNode(1))
	if err != nil {
		t.Fatal(err)
	}
	if p.bounded {
		t.Error("EVENTS plan must be unbounded (traverses the whole timeline)")
	}
	p, err = Compile(env, trendNode("dist", 1))
	if err != nil {
		t.Fatal(err)
	}
	if p.bounded {
		t.Error("TREND plan must be unbounded")
	}
	p, err = Compile(env, pathsNode("earliest", []string{"u1"}, []string{"u2"}))
	if err != nil {
		t.Fatal(err)
	}
	if p.bounded {
		t.Error("PATHS without DURING must be unbounded")
	}
	bounded := pathsNode("earliest", []string{"u1"}, []string{"u2"})
	bounded.During = IntervalRef{From: "t0", To: "t1"}
	p, err = Compile(env, bounded)
	if err != nil {
		t.Fatal(err)
	}
	if !p.bounded || p.maxTime != 1 {
		t.Errorf("PATHS DURING t0..t1: bounded=%v maxTime=%d, want true/1", p.bounded, p.maxTime)
	}
}

// TestAnalyticsCompileEquivalence routes each statement through
// Compile+Execute and requires byte-identical JSON against the direct
// engine invocation the planner is supposed to have chosen.
func TestAnalyticsCompileEquivalence(t *testing.T) {
	g := core.PaperExample()
	cat := materialize.NewCatalogWith(g, materialize.CatalogConfig{})
	schema, err := agg.ByName(g, "gender")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	toJSON := func(v interface{}) string {
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	p, err := Compile(Env{Graph: g}, eventsNode(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Execute(ctx)
	if err != nil {
		t.Fatal(err)
	}
	want := analytics.EventsSweep(g, analytics.EventsSpec{Schema: schema, Kind: agg.Distinct, Width: 1})
	if toJSON(res.Events) != toJSON(want) {
		t.Errorf("EVENTS through planner diverges from engine:\n got %s\nwant %s", toJSON(res.Events), toJSON(want))
	}

	p, err = Compile(Env{Graph: g, Catalog: cat}, trendNode("all", 2))
	if err != nil {
		t.Fatal(err)
	}
	res, err = p.Execute(ctx)
	if err != nil {
		t.Fatal(err)
	}
	wantTrend := analytics.TrendScan(g, analytics.TrendSpec{Schema: schema, Kind: agg.All, Width: 2})
	if toJSON(res.Trend) != toJSON(wantTrend) {
		t.Errorf("TREND through planner (catalog) diverges from scan engine:\n got %s\nwant %s", toJSON(res.Trend), toJSON(wantTrend))
	}

	node := pathsNode("fastest", []string{"u1"}, []string{"u2", "u4"})
	p, err = Compile(Env{Graph: g}, node)
	if err != nil {
		t.Fatal(err)
	}
	res, err = p.Execute(ctx)
	if err != nil {
		t.Fatal(err)
	}
	u1, _ := g.NodeByLabel("u1")
	u2, _ := g.NodeByLabel("u2")
	u4, _ := g.NodeByLabel("u4")
	spec := analytics.PathsSpec{
		Mode: analytics.ModeFastest,
		Src:  []core.NodeID{u1}, Dst: []core.NodeID{u2, u4},
		Window: g.Timeline().All(),
	}
	wantPaths := analytics.NewPathsEngine(g, spec).Run()
	if toJSON(res.Paths) != toJSON(wantPaths) {
		t.Errorf("PATHS through planner diverges from engine:\n got %s\nwant %s", toJSON(res.Paths), toJSON(wantPaths))
	}
}

// TestAnalyticsExplain checks that EXPLAIN names the chosen engine and the
// cost estimate for every analytics operator.
func TestAnalyticsExplain(t *testing.T) {
	g := core.PaperExample()
	cat := materialize.NewCatalogWith(g, materialize.CatalogConfig{})

	cases := []struct {
		node Logical
		env  Env
		want []string
	}{
		{eventsNode(1), Env{Graph: g}, []string{"EventsSweep", "engine=entity-sweep", "est_cost=", "steps=2"}},
		{eventsNode(2), Env{Graph: g}, []string{"EventsScan", "engine=per-step-scan"}},
		{trendNode("all", 2), Env{Graph: g, Catalog: cat}, []string{"TrendCatalog", "composition=prefix-sum", "windows=2"}},
		{trendNode("dist", 1), Env{Graph: g}, []string{"TrendScan", "windows=3"}},
		{pathsNode("earliest", []string{"u1"}, []string{"u4"}), Env{Graph: g}, []string{"PathsFrontier", "engine=time-bucket-frontier", "mode=earliest"}},
	}
	for _, c := range cases {
		p, err := Compile(c.env, c.node)
		if err != nil {
			t.Fatal(err)
		}
		s := p.Explain()
		for _, w := range c.want {
			if !strings.Contains(s, w) {
				t.Errorf("EXPLAIN of %s misses %q:\n%s", c.node.Key(), w, s)
			}
		}
	}
}

// TestAnalyticsSelectionsAndFeedback checks that executions bump the
// operator-selection counters and record cardinality feedback under the
// logical key.
func TestAnalyticsSelectionsAndFeedback(t *testing.T) {
	g := core.PaperExample()
	fb := NewFeedback()
	env := Env{Graph: g, Feedback: fb}
	ctx := context.Background()

	before := Selections.EventsSweep.Value()
	node := eventsNode(1)
	p, err := Compile(env, node)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Execute(ctx); err != nil {
		t.Fatal(err)
	}
	if got := Selections.EventsSweep.Value(); got != before+1 {
		t.Errorf("EventsSweep counter %d, want %d", got, before+1)
	}
	if o, ok := fb.Lookup(node.Key()); !ok || o.Executions != 1 {
		t.Errorf("no feedback observation recorded for %q (ok=%v, %+v)", node.Key(), ok, o)
	}

	before = Selections.PathsNaive.Value()
	short := pathsNode("earliest", []string{"u1"}, []string{"u2"})
	short.During = IntervalRef{From: "t0", To: "t1"}
	p, err = Compile(env, short)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Execute(ctx); err != nil {
		t.Fatal(err)
	}
	if got := Selections.PathsNaive.Value(); got != before+1 {
		t.Errorf("PathsNaive counter %d, want %d", got, before+1)
	}
}

// TestAnalyticsCached checks that analytics plans participate in the plan
// cache keyed on the canonical logical text.
func TestAnalyticsCached(t *testing.T) {
	g := core.PaperExample()
	cache := NewCache(0)
	env := Env{Graph: g, Cache: cache}

	p1, err := Compile(env, eventsNode(1))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Compile(env, eventsNode(1))
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("identical EVENTS query recompiled instead of served from cache")
	}
	if _, err := Compile(env, eventsNode(2)); err != nil {
		t.Fatal(err)
	}
	if cache.Len() != 2 {
		t.Errorf("cache has %d plans, want 2 (widths key separately)", cache.Len())
	}
}

// TestAnalyticsCompileErrors pins operand validation: every malformed
// statement fails at compile time with a descriptive error.
func TestAnalyticsCompileErrors(t *testing.T) {
	g := core.PaperExample()
	env := Env{Graph: g}

	cases := []struct {
		name string
		node Logical
		want string
	}{
		{"events bad attr", &Events{Kind: "dist", Attrs: []string{"nope"}}, "unknown attribute"},
		{"events bad kind", &Events{Kind: "sum", Attrs: []string{"gender"}}, "unknown kind"},
		{"events negative min", &Events{Kind: "dist", Attrs: []string{"gender"}, Min: -1}, "MIN must be >= 0"},
		{"trend bad attr", &Trend{Kind: "all", Attrs: []string{"nope"}}, "unknown attribute"},
		{"paths bad mode", &Paths{Mode: "scenic", From: []string{"u1"}, To: []string{"u2"}}, "unknown paths mode"},
		{"paths no sources", &Paths{Mode: "earliest", To: []string{"u2"}}, "FROM and TO"},
		{"paths unknown node", &Paths{Mode: "earliest", From: []string{"u9"}, To: []string{"u2"}}, `unknown node "u9"`},
		{"paths scattered during", &Paths{
			Mode: "earliest", From: []string{"u1"}, To: []string{"u2"},
			During: IntervalRef{Points: []string{"t0", "t2"}},
		}, "contiguous"},
	}
	for _, c := range cases {
		if _, err := Compile(env, c.node); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %v, want containing %q", c.name, err, c.want)
		}
	}
}
