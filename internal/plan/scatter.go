package plan

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/timeline"
)

// This file is the distributed half of the aggregate family: the operators
// a time-range sharded deployment uses to answer one logical aggregate
// across several shard processes with exactly the single-node result.
//
// Decomposition argument. The shards partition the timeline into disjoint
// contiguous ranges, so any interval operand splits into per-shard pieces
// that partition its time points. For union aggregates — presence at any
// point of the operand point set — the grouped COUNT then decomposes
// exactly:
//
//   - ALL counts one per appearance per time point. Appearances at
//     different time points are independent, so the interval's group
//     weights are the sums of the per-piece group weights
//     (T-distributivity, §4.3 of the paper, applied across shards).
//   - DIST counts one per (entity, tuple) pair over the whole interval.
//     That is not weight-additive (the same entity may appear on both
//     sides of a boundary), so each shard ships the *set* of entity
//     labels per group and the merge counts the union. Entity labels are
//     unique graph-wide, which makes the union exact.
//
// Project has intersection semantics — an entity qualifies only when it
// appears in EVERY point of the interval — so per-shard project partials
// do not merge by union; a project scatters only as a single slice whose
// interval lies entirely inside one shard (merging one partial is the
// identity, hence trivially exact). Intersection and difference do not
// decompose either (membership at one shard's time points changes another
// piece's contribution), so the serving tier answers them — and
// multi-shard projects — from a mirrored full series instead; see
// internal/cluster.

// ---- wire types -------------------------------------------------------

// PartialGroup is one aggregate-node group of a shard-local partial
// aggregate: decoded attribute values, the local weight, and — for DIST
// partials — the distinct entity labels behind the weight.
type PartialGroup struct {
	Values   []string `json:"values"`
	Weight   int64    `json:"weight"`
	Entities []string `json:"entities,omitempty"`
}

// PartialEdge is one aggregate-edge group of a partial aggregate. DIST
// partials carry the distinct (from,to) entity label pairs.
type PartialEdge struct {
	From     []string   `json:"from"`
	To       []string   `json:"to"`
	Weight   int64      `json:"weight"`
	Entities [][]string `json:"entities,omitempty"`
}

// PartialResult is the wire form of a shard-local partial aggregate, the
// unit a scatter-gather execution moves between processes. Groups are
// sorted by decoded label and entity sets lexically, so the encoding is
// deterministic.
type PartialResult struct {
	Attributes []string       `json:"attributes"`
	Kind       string         `json:"kind"` // DIST or ALL
	Nodes      []PartialGroup `json:"nodes"`
	Edges      []PartialEdge  `json:"edges"`
	// Source reports how the shard derived the weights (ALL partials reuse
	// the catalog path; DIST partials always walk the view).
	Source string `json:"source,omitempty"`
}

// ---- Partial logical node (shard side) --------------------------------

// Partial is the logical node a shard compiles for a scattered aggregate
// slice: the same operator/attrs/kind as Aggregate, but producing the
// mergeable PartialResult instead of the final graph. Only project and
// union decompose; Compile rejects other operators.
type Partial struct {
	Op    TemporalOp
	Attrs []string
	Kind  string
}

func (q *Partial) logicalNode() {}

// Key renders "PARTIAL KIND attrs ON OP(...)".
func (q *Partial) Key() string {
	var b strings.Builder
	b.WriteString("PARTIAL ")
	b.WriteString(kindKeyword(q.Kind))
	b.WriteByte(' ')
	renderAttrs(&b, q.Attrs)
	b.WriteString(" ON ")
	q.Op.render(&b)
	return b.String()
}

func compilePartial(env Env, workers int, q *Partial) (physOp, int, error) {
	if q.Op.Op != OpProject && q.Op.Op != OpUnion {
		return nil, 0, errf(env.Query, 0, "",
			"partial aggregate: operator %q does not decompose across time shards (want project or union)", q.Op.Op)
	}
	g, in := env.Graph, env.Query
	schema, err := resolveSchema(g, in, q.Attrs, nil)
	if err != nil {
		return nil, 0, err
	}
	a, b, err := resolveOp(g, in, q.Op)
	if err != nil {
		return nil, 0, err
	}
	kind, err := resolveKind(in, q.Kind)
	if err != nil {
		return nil, 0, err
	}
	maxTime := maxTimeOf(a, b)
	if kind == agg.All {
		// ALL partials are plain local aggregates (weights merge by sum),
		// so the full single-node operator selection — catalog composition,
		// dense kernels, parallelism, feedback — is reused as the inner
		// operator and only the result is re-encoded into label space.
		inner, _, err := compileAggregate(env, workers, &Aggregate{Op: q.Op, Attrs: q.Attrs, Kind: q.Kind})
		if err != nil {
			return nil, 0, err
		}
		return &partialAggOp{schema: schema, kind: kind, inner: inner}, maxTime, nil
	}
	return &partialAggOp{schema: schema, kind: kind, view: newViewOp(g, q.Op.Op, a, b)}, maxTime, nil
}

// partialAggOp computes a shard-local partial aggregate. ALL mode wraps
// the regular aggregate operator and decodes its weights; DIST mode walks
// the view collecting per-group distinct entity label sets.
type partialAggOp struct {
	schema *agg.Schema
	kind   agg.Kind
	inner  physOp  // ALL: the delegated local aggregate
	view   *viewOp // DIST: the entity-set walk input
}

func (o *partialAggOp) name() string { return "PartialAggregate" }

func (o *partialAggOp) describe() []kv {
	merge := "entity-sets"
	if o.kind == agg.All {
		merge = "weights"
	}
	return []kv{
		{"kind", kindString(o.kind)},
		{"carries", merge},
	}
}

func (o *partialAggOp) children() []physOp {
	if o.inner != nil {
		return []physOp{o.inner}
	}
	return []physOp{o.view}
}

func (o *partialAggOp) countSelection() { Selections.PartialAgg.Inc() }

// schemaAttrNames returns the schema's attribute names in order.
func schemaAttrNames(s *agg.Schema) []string {
	g := s.Graph()
	ids := s.Attrs()
	out := make([]string, len(ids))
	for i, a := range ids {
		out[i] = g.Attr(a).Name
	}
	return out
}

func (o *partialAggOp) run(ctx context.Context, out *Result) error {
	if o.kind == agg.All {
		return o.runAll(ctx, out)
	}
	return o.runDist(ctx, out)
}

func (o *partialAggOp) runAll(ctx context.Context, out *Result) error {
	var tmp Result
	if err := o.inner.run(ctx, &tmp); err != nil {
		return err
	}
	ag := tmp.Agg
	pr := &PartialResult{
		Attributes: schemaAttrNames(o.schema),
		Kind:       kindString(agg.All),
		Source:     tmp.AggSource.String(),
	}
	for _, tu := range ag.SortedNodes() {
		pr.Nodes = append(pr.Nodes, PartialGroup{Values: ag.Schema.Decode(tu), Weight: ag.Nodes[tu]})
	}
	for _, k := range ag.SortedEdges() {
		pr.Edges = append(pr.Edges, PartialEdge{
			From:   ag.Schema.Decode(k.From),
			To:     ag.Schema.Decode(k.To),
			Weight: ag.Edges[k],
		})
	}
	out.Partial, out.AggSource = pr, tmp.AggSource
	return nil
}

// labelPair identifies one distinct edge entity by its endpoint labels.
type labelPair struct{ u, v string }

func (o *partialAggOp) runDist(ctx context.Context, out *Result) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	s, g, v := o.schema, o.schema.Graph(), o.view.view
	nodeSets := make(map[agg.Tuple]map[string]struct{})
	addNode := func(tu agg.Tuple, label string) {
		set := nodeSets[tu]
		if set == nil {
			set = make(map[string]struct{})
			nodeSets[tu] = set
		}
		set[label] = struct{}{}
	}
	if s.AllStatic() {
		v.ForEachNode(func(n core.NodeID) {
			if tu, ok := s.StaticTuple(n); ok {
				addNode(tu, g.NodeLabel(n))
			}
		})
	} else {
		v.ForEachNode(func(n core.NodeID) {
			label := g.NodeLabel(n)
			v.NodeTimes(n).ForEach(func(t int) {
				if tu, ok := s.TupleAt(n, timeline.Time(t)); ok {
					addNode(tu, label)
				}
			})
		})
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	edgeSets := make(map[agg.EdgeKey]map[labelPair]struct{})
	addEdge := func(key agg.EdgeKey, p labelPair) {
		set := edgeSets[key]
		if set == nil {
			set = make(map[labelPair]struct{})
			edgeSets[key] = set
		}
		set[p] = struct{}{}
	}
	if s.AllStatic() {
		v.ForEachEdge(func(e core.EdgeID) {
			ep := g.Edge(e)
			fu, ok1 := s.StaticTuple(ep.U)
			tu, ok2 := s.StaticTuple(ep.V)
			if ok1 && ok2 {
				addEdge(agg.EdgeKey{From: fu, To: tu}, labelPair{g.NodeLabel(ep.U), g.NodeLabel(ep.V)})
			}
		})
	} else {
		v.ForEachEdge(func(e core.EdgeID) {
			ep := g.Edge(e)
			p := labelPair{g.NodeLabel(ep.U), g.NodeLabel(ep.V)}
			v.EdgeTimes(e).ForEach(func(t int) {
				fu, ok1 := s.TupleAt(ep.U, timeline.Time(t))
				tu, ok2 := s.TupleAt(ep.V, timeline.Time(t))
				if ok1 && ok2 {
					addEdge(agg.EdgeKey{From: fu, To: tu}, p)
				}
			})
		})
	}
	if err := ctx.Err(); err != nil {
		return err
	}

	pr := &PartialResult{Attributes: schemaAttrNames(s), Kind: kindString(agg.Distinct)}
	nodeKeys := make([]agg.Tuple, 0, len(nodeSets))
	for tu := range nodeSets {
		nodeKeys = append(nodeKeys, tu)
	}
	sort.Slice(nodeKeys, func(i, j int) bool { return s.Label(nodeKeys[i]) < s.Label(nodeKeys[j]) })
	for _, tu := range nodeKeys {
		set := nodeSets[tu]
		ents := make([]string, 0, len(set))
		for e := range set {
			ents = append(ents, e)
		}
		sort.Strings(ents)
		pr.Nodes = append(pr.Nodes, PartialGroup{Values: s.Decode(tu), Weight: int64(len(ents)), Entities: ents})
	}
	edgeKeys := make([]agg.EdgeKey, 0, len(edgeSets))
	for k := range edgeSets {
		edgeKeys = append(edgeKeys, k)
	}
	sort.Slice(edgeKeys, func(i, j int) bool {
		li := s.Label(edgeKeys[i].From) + "→" + s.Label(edgeKeys[i].To)
		lj := s.Label(edgeKeys[j].From) + "→" + s.Label(edgeKeys[j].To)
		return li < lj
	})
	for _, k := range edgeKeys {
		set := edgeSets[k]
		pairs := make([]labelPair, 0, len(set))
		for p := range set {
			pairs = append(pairs, p)
		}
		sort.Slice(pairs, func(i, j int) bool {
			if pairs[i].u != pairs[j].u {
				return pairs[i].u < pairs[j].u
			}
			return pairs[i].v < pairs[j].v
		})
		ents := make([][]string, len(pairs))
		for i, p := range pairs {
			ents[i] = []string{p.u, p.v}
		}
		pr.Edges = append(pr.Edges, PartialEdge{
			From:     s.Decode(k.From),
			To:       s.Decode(k.To),
			Weight:   int64(len(pairs)),
			Entities: ents,
		})
	}
	out.Partial = pr
	return nil
}

// ---- merge (router side) ----------------------------------------------

// MergedGraph is the exact merge of per-shard partial aggregates in
// decoded-label space. Its MarshalJSON renders the same shape as
// agg.Graph's — attributes/kind/nodes/edges with label-sorted groups — so
// a scatter-gathered answer is byte-identical to the single-node one.
type MergedGraph struct {
	Attributes []string
	Kind       string
	Nodes      []PartialGroup // Entities always nil
	Edges      []PartialEdge
}

type mergedNodeAcc struct {
	values []string
	weight int64
	ents   map[string]struct{}
}

type mergedEdgeAcc struct {
	from, to []string
	weight   int64
	ents     map[labelPair]struct{}
}

// MergePartials merges shard partials into the final aggregate graph:
// ALL weights add, DIST entity sets union and are then counted. The
// partials must agree on attributes and kind (they come from one scattered
// query) and their time pieces must be disjoint for ALL sums to be exact —
// the shard map guarantees that by construction.
func MergePartials(parts []*PartialResult) (*MergedGraph, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("plan: no partials to merge")
	}
	first := parts[0]
	dist := first.Kind != "ALL"
	nodes := make(map[string]*mergedNodeAcc)
	edges := make(map[labelPair]*mergedEdgeAcc)
	for _, p := range parts {
		if p == nil {
			return nil, fmt.Errorf("plan: missing shard partial")
		}
		if strings.Join(p.Attributes, "\x00") != strings.Join(first.Attributes, "\x00") || p.Kind != first.Kind {
			return nil, fmt.Errorf("plan: shard partials disagree on schema (%v/%s vs %v/%s)",
				p.Attributes, p.Kind, first.Attributes, first.Kind)
		}
		for _, gr := range p.Nodes {
			key := strings.Join(gr.Values, "\x00")
			acc := nodes[key]
			if acc == nil {
				acc = &mergedNodeAcc{values: gr.Values}
				if dist {
					acc.ents = make(map[string]struct{})
				}
				nodes[key] = acc
			}
			if dist {
				for _, e := range gr.Entities {
					acc.ents[e] = struct{}{}
				}
			} else {
				acc.weight += gr.Weight
			}
		}
		for _, gr := range p.Edges {
			key := labelPair{strings.Join(gr.From, "\x00"), strings.Join(gr.To, "\x00")}
			acc := edges[key]
			if acc == nil {
				acc = &mergedEdgeAcc{from: gr.From, to: gr.To}
				if dist {
					acc.ents = make(map[labelPair]struct{})
				}
				edges[key] = acc
			}
			if dist {
				for _, pair := range gr.Entities {
					if len(pair) != 2 {
						return nil, fmt.Errorf("plan: malformed edge entity pair %v", pair)
					}
					acc.ents[labelPair{pair[0], pair[1]}] = struct{}{}
				}
			} else {
				acc.weight += gr.Weight
			}
		}
	}
	m := &MergedGraph{Attributes: first.Attributes, Kind: first.Kind}
	nodeAccs := make([]*mergedNodeAcc, 0, len(nodes))
	for _, acc := range nodes {
		if dist {
			acc.weight = int64(len(acc.ents))
		}
		nodeAccs = append(nodeAccs, acc)
	}
	// Sort exactly like agg.Graph.SortedNodes/SortedEdges: by the decoded
	// label joined with commas.
	sort.Slice(nodeAccs, func(i, j int) bool {
		return strings.Join(nodeAccs[i].values, ",") < strings.Join(nodeAccs[j].values, ",")
	})
	for _, acc := range nodeAccs {
		m.Nodes = append(m.Nodes, PartialGroup{Values: acc.values, Weight: acc.weight})
	}
	edgeAccs := make([]*mergedEdgeAcc, 0, len(edges))
	for _, acc := range edges {
		if dist {
			acc.weight = int64(len(acc.ents))
		}
		edgeAccs = append(edgeAccs, acc)
	}
	sort.Slice(edgeAccs, func(i, j int) bool {
		li := strings.Join(edgeAccs[i].from, ",") + "→" + strings.Join(edgeAccs[i].to, ",")
		lj := strings.Join(edgeAccs[j].from, ",") + "→" + strings.Join(edgeAccs[j].to, ",")
		return li < lj
	})
	for _, acc := range edgeAccs {
		m.Edges = append(m.Edges, PartialEdge{From: acc.from, To: acc.to, Weight: acc.weight})
	}
	return m, nil
}

// MarshalJSON renders the merged graph exactly like agg.Graph.MarshalJSON
// renders the single-node result (field order, null for empty sections).
func (m *MergedGraph) MarshalJSON() ([]byte, error) {
	type jn struct {
		Values []string `json:"values"`
		Weight int64    `json:"weight"`
	}
	type je struct {
		From   []string `json:"from"`
		To     []string `json:"to"`
		Weight int64    `json:"weight"`
	}
	out := struct {
		Attributes []string `json:"attributes"`
		Kind       string   `json:"kind"`
		Nodes      []jn     `json:"nodes"`
		Edges      []je     `json:"edges"`
	}{Attributes: m.Attributes, Kind: m.Kind}
	for _, g := range m.Nodes {
		out.Nodes = append(out.Nodes, jn{Values: g.Values, Weight: g.Weight})
	}
	for _, g := range m.Edges {
		out.Edges = append(out.Edges, je{From: g.From, To: g.To, Weight: g.Weight})
	}
	return json.Marshal(out)
}

// ---- scatter / gather operators ---------------------------------------

// ShardSlice is one shard's piece of a scattered aggregate: the operator
// with its interval operand(s) clipped to the shard's time range, in
// time-point labels the shard resolves locally. BFrom/BTo are empty when
// the clipped query degenerates to a single operand (project).
type ShardSlice struct {
	Shard string
	Op    string // project or union
	AFrom string
	ATo   string
	BFrom string
	BTo   string
}

func (s ShardSlice) interval() string {
	out := s.AFrom
	if s.ATo != "" && s.ATo != s.AFrom {
		out += ".." + s.ATo
	}
	if s.BFrom != "" {
		b := s.BFrom
		if s.BTo != "" && s.BTo != s.BFrom {
			b += ".." + s.BTo
		}
		out += " ∪ " + b
	}
	return out
}

// Scatterer executes one shard slice on its shard and returns the partial.
// The cluster layer implements it over HTTP; plan stays transport-free.
type Scatterer interface {
	Partial(ctx context.Context, slice ShardSlice, attrs []string, kind string, workers int) (*PartialResult, error)
}

// ScatterQuery is a compiled routing decision: a decomposable aggregate
// and the shard slices that cover its interval(s).
type ScatterQuery struct {
	Op      string
	Attrs   []string
	Kind    string
	Workers int
	Slices  []ShardSlice
}

// Scatter is the logical node of a scattered aggregate, for Explain and
// plan identity on the router.
type Scatter struct {
	Agg    *Aggregate
	Shards int
}

func (q *Scatter) logicalNode() {}

// Key renders "SCATTER[n] <aggregate key>".
func (q *Scatter) Key() string {
	return "SCATTER[" + strconv.Itoa(q.Shards) + "] " + q.Agg.Key()
}

// CompileScatter builds the router-side physical plan for a scattered
// aggregate: one ShardScatter leaf per slice under a GatherMerge root.
// The caller (the cluster router) has already decided the slicing; this
// validates decomposability and wires the operator tree.
func CompileScatter(q ScatterQuery, sc Scatterer) (*Plan, error) {
	if q.Op != OpProject && q.Op != OpUnion {
		return nil, fmt.Errorf("plan: %s aggregates do not decompose across time shards", q.Op)
	}
	if len(q.Slices) == 0 {
		return nil, fmt.Errorf("plan: scattered aggregate has no shard slices")
	}
	if q.Op == OpProject && len(q.Slices) > 1 {
		return nil, fmt.Errorf("plan: project has intersection semantics and does not merge across %d shards", len(q.Slices))
	}
	if sc == nil {
		return nil, fmt.Errorf("plan: no scatterer")
	}
	kids := make([]physOp, len(q.Slices))
	for i, s := range q.Slices {
		kids[i] = &shardScatterOp{slice: s, q: q, sc: sc}
	}
	logical := &Scatter{
		Agg: &Aggregate{
			Op:    TemporalOp{Op: q.Op, A: IntervalRef{From: q.Slices[0].AFrom, To: q.Slices[len(q.Slices)-1].ATo}},
			Attrs: q.Attrs,
			Kind:  q.Kind,
		},
		Shards: len(q.Slices),
	}
	return &Plan{
		logical: logical,
		root:    &gatherMergeOp{q: q, kids: kids},
		bounded: false,
	}, nil
}

// shardScatterOp fetches one shard's partial through the Scatterer.
type shardScatterOp struct {
	slice ShardSlice
	q     ScatterQuery
	sc    Scatterer
}

func (o *shardScatterOp) name() string { return "ShardScatter" }

func (o *shardScatterOp) describe() []kv {
	return []kv{
		{"shard", o.slice.Shard},
		{"op", o.slice.Op},
		{"interval", o.slice.interval()},
	}
}

func (o *shardScatterOp) children() []physOp { return nil }
func (o *shardScatterOp) countSelection()    { Selections.ShardScatter.Inc() }

func (o *shardScatterOp) fetch(ctx context.Context) (*PartialResult, error) {
	return o.sc.Partial(ctx, o.slice, o.q.Attrs, o.q.Kind, o.q.Workers)
}

func (o *shardScatterOp) run(ctx context.Context, out *Result) error {
	p, err := o.fetch(ctx)
	if err != nil {
		return err
	}
	out.Partial = p
	return nil
}

// gatherMergeOp fans the slices out concurrently and merges the partials
// into the final answer.
type gatherMergeOp struct {
	q    ScatterQuery
	kids []physOp
}

func (o *gatherMergeOp) name() string { return "GatherMerge" }

func (o *gatherMergeOp) describe() []kv {
	merge := "entity-union"
	if kindKeyword(o.q.Kind) == "ALL" {
		merge = "weight-sum"
	}
	return []kv{
		{"shards", strconv.Itoa(len(o.kids))},
		{"kind", kindKeyword(o.q.Kind)},
		{"merge", merge},
	}
}

func (o *gatherMergeOp) children() []physOp { return o.kids }

func (o *gatherMergeOp) countSelection() {
	Selections.GatherMerge.Inc()
	for range o.kids {
		Selections.ShardScatter.Inc()
	}
}

func (o *gatherMergeOp) run(ctx context.Context, out *Result) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	parts := make([]*PartialResult, len(o.kids))
	errs := make([]error, len(o.kids))
	var wg sync.WaitGroup
	for i, k := range o.kids {
		op := k.(*shardScatterOp)
		wg.Add(1)
		go func(i int, op *shardScatterOp) {
			defer wg.Done()
			p, err := op.fetch(ctx)
			if err != nil {
				errs[i] = fmt.Errorf("shard %s: %w", op.slice.Shard, err)
				cancel() // a lost slice makes the merge impossible; stop the rest
				return
			}
			parts[i] = p
		}(i, op)
	}
	wg.Wait()
	// Prefer the root-cause failure: a lost slice cancels its siblings, so
	// their context.Canceled errors are a symptom, not the fault.
	var firstErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if firstErr == nil || errors.Is(firstErr, context.Canceled) && !errors.Is(err, context.Canceled) {
			firstErr = err
		}
	}
	if firstErr != nil {
		return firstErr
	}
	merged, err := MergePartials(parts)
	if err != nil {
		return err
	}
	out.Merged = merged
	return nil
}
