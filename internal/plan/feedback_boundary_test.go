package plan

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// TestMateriallyBoundary pins the cardinality hysteresis at its exact
// edge: a 2x move in either direction is material, one short of 2x is
// not, and equal values never are (including the 0→0 case, where the
// lo*2 <= hi comparison would otherwise be trivially true).
func TestMateriallyBoundary(t *testing.T) {
	cases := []struct {
		a, b int
		want bool
	}{
		{4, 8, true},  // exactly 2x growth is material
		{4, 7, false}, // one short of 2x is not
		{8, 4, true},  // exactly half is material (symmetric)
		{9, 5, false}, // just above half is not
		{0, 0, false}, // equal never bumps, even at zero
		{0, 1, true},  // from zero any growth is material
		{1, 0, true},  // collapse to zero likewise
		{100, 199, false},
		{100, 200, true},
	}
	for _, tc := range cases {
		if got := materially(tc.a, tc.b); got != tc.want {
			t.Errorf("materially(%d, %d) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

// TestObserveEpochBoundary drives observe through the hysteresis edges
// and checks the epoch (the plan-cache invalidation signal) moves exactly
// when a dimension crosses 2x — entities and results independently.
func TestObserveEpochBoundary(t *testing.T) {
	f := NewFeedback()
	const key = "k"
	step := func(entities, results, wantEpoch int) {
		t.Helper()
		f.observe(key, entities, results)
		if got := f.epochFor(key); got != wantEpoch {
			t.Fatalf("after observe(%d, %d): epoch = %d, want %d", entities, results, got, wantEpoch)
		}
	}
	step(100, 10, 1) // first observation opens epoch 1
	step(199, 10, 1) // sub-2x entity move: no bump
	step(398, 10, 2) // exactly 2x entities: bump
	step(398, 20, 3) // exactly 2x results: bump
	step(398, 39, 3) // sub-2x results: no bump
	step(199, 39, 4) // exactly half entities (shrink direction): bump
	step(199, 39, 4) // identical observation: never bumps
}

// TestObserveRatioBoundary pins the run-ratio hysteresis: the first
// record bumps, moves at exactly ±25% of the stored ratio do not (the
// comparison is strict), and anything beyond does. All values are exact
// binary fractions so the boundaries are not blurred by rounding.
func TestObserveRatioBoundary(t *testing.T) {
	f := NewFeedback()
	step := func(r float64, wantEpoch int) {
		t.Helper()
		f.observeRatio(r)
		f.mu.Lock()
		got := f.ratioEpoch
		f.mu.Unlock()
		if got != wantEpoch {
			t.Fatalf("after observeRatio(%v): ratioEpoch = %d, want %d", r, got, wantEpoch)
		}
	}
	step(1.0, 1)   // first record always bumps
	step(1.25, 1)  // exactly +25%: inside the band, no bump
	step(1.0, 1)   // 1.0 within [0.9375, 1.5625]: no bump
	step(0.75, 1)  // exactly -25%: no bump
	step(0.5, 2)   // 0.5 < 0.75·0.75 = 0.5625: bump
	step(0.625, 2) // exactly 0.5·1.25: no bump
	step(0.8, 3)   // 0.8 > 0.625·1.25 = 0.78125: bump
}

// TestCacheAdvanceConcurrentOldGeneration races Advance against sustained
// compile/lookup/store traffic on the outgoing generation. Run under
// -race this checks the retired-generation degradation is merely a miss:
// old-generation stores are dropped, old-generation lookups return nil,
// and the clean-prefix plan carried across the advance keeps being served
// to the new generation throughout.
func TestCacheAdvanceConcurrentOldGeneration(t *testing.T) {
	g1 := core.PaperExample()
	g2 := core.PaperExample() // stands in for the appended snapshot
	cache := NewCache(0)
	env1 := Env{Graph: g1, Workers: 1, Cache: cache}

	pPrefix, err := Compile(env1, aggNode("gender")) // maxTime 1: survives Advance(…, 2)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	attrs := []string{"gender", "publications"}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				node := aggNode(attrs[n%2])
				p, err := Compile(env1, node)
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := p.Execute(context.Background()); err != nil {
					t.Error(err)
					return
				}
				// Raw cache traffic on the (soon to be) retired generation.
				cache.lookup(g1, nil, cacheKey(node, 1))
				cache.store(g1, nil, cacheKey(node, 1), p)
			}
		}()
	}

	time.Sleep(2 * time.Millisecond) // let the old-generation traffic spin up
	cache.Advance(g2, nil, 2)

	env2 := Env{Graph: g2, Workers: 1, Cache: cache}
	for i := 0; i < 50; i++ {
		got, err := Compile(env2, aggNode("gender"))
		if err != nil {
			t.Fatal(err)
		}
		if got != pPrefix {
			t.Fatalf("iteration %d: clean-prefix plan lost under concurrent retired traffic", i)
		}
	}
	close(stop)
	wg.Wait()

	// With traffic stopped: the retired generation still misses, and the
	// current generation still hits.
	if p := cache.lookup(g1, nil, cacheKey(aggNode("gender"), 1)); p != nil {
		t.Error("retired-generation lookup returned a plan after the advance")
	}
	if got, err := Compile(env2, aggNode("gender")); err != nil || got != pPrefix {
		t.Errorf("current-generation hit lost after concurrent traffic (err=%v)", err)
	}
}
