package plan

import (
	"context"
	"strconv"
	"strings"
	"sync"

	"repro/internal/agg"
	"repro/internal/analytics"
	"repro/internal/core"
	"repro/internal/evolution"
	"repro/internal/materialize"
)

// This file compiles the evolution-analytics statement family (EVENTS,
// PATHS, TREND) into physical operators. Each statement has two engines;
// the cost rules here pick one:
//
//   - EVENTS: the per-step scan engine recomputes one evolution aggregate
//     per window pair (steps · scan); the entity-sweep engine answers every
//     step in a single entity pass (scan + steps). The evolution triple is
//     per-entity presence in BOTH windows, which per-point aggregate
//     vectors cannot express, so the catalog never applies — the choice is
//     sweep vs per-step scan, crossing over as soon as there is more than
//     one step.
//   - PATHS: the frontier engine pays a bucket-index build (one compressed
//     range scan per edge) to make each evaluation a single time sweep;
//     with a tiny window (≤ 2 points, mirroring explore's seed rule) the
//     index cannot amortize and the time-expanded engine wins.
//   - TREND: a union-ALL window weight is T-distributive, so unfiltered
//     ALL trends compose every window from the catalog's prefix sums in
//     O(windows) vector ops; DIST or filtered trends scan the base graph.

func compileEvents(env Env, q *Events) (physOp, error) {
	g, in := env.Graph, env.Query
	schema, err := resolveSchema(g, in, q.Attrs, q.AttrsPos)
	if err != nil {
		return nil, err
	}
	kind, err := resolveKind(in, q.Kind)
	if err != nil {
		return nil, err
	}
	if q.Min < 0 {
		return nil, errf(in, 0, "", "EVENTS MIN must be >= 0, got %d", q.Min)
	}
	filter, err := CompilePredicates(g, in, q.Where)
	if err != nil {
		return nil, err
	}
	w := normWidth(q.Width)
	T := g.Timeline().Len()
	steps := (T+w-1)/w - 1
	if steps < 0 {
		steps = 0
	}
	// One step is exactly one evolution aggregate — the sweep's per-entity
	// bookkeeping cannot beat it. From two steps on the sweep amortizes its
	// single pass across all steps.
	sweep := steps > 1
	cost := int64(steps) * scanCost(g)
	if sweep {
		cost = scanCost(g) + int64(steps)
	}
	return &eventsOp{
		g: g, schema: schema, kind: kind, filter: filter,
		preds: len(q.Where), width: w, min: q.Min, steps: steps,
		sweep: sweep, cost: cost,
		fb: env.Feedback, fbKey: q.Key(),
	}, nil
}

func compilePaths(env Env, q *Paths) (physOp, int, bool, error) {
	g, in := env.Graph, env.Query
	mode := strings.ToLower(q.Mode)
	switch mode {
	case "", analytics.ModeEarliest:
		mode = analytics.ModeEarliest
	case analytics.ModeFastest:
	default:
		return nil, 0, false, errf(in, 0, "", "unknown paths mode %q (want EARLIEST or FASTEST)", q.Mode)
	}
	if len(q.From) == 0 || len(q.To) == 0 {
		return nil, 0, false, errf(in, 0, "", "PATHS needs FROM and TO node sets")
	}
	resolveNodes := func(labels []string, poss []int) ([]core.NodeID, error) {
		out := make([]core.NodeID, 0, len(labels))
		for i, l := range labels {
			id, ok := g.NodeByLabel(l)
			if !ok {
				return nil, errf(in, posAt(poss, i), l, "unknown node %q", l)
			}
			out = append(out, id)
		}
		return out, nil
	}
	src, err := resolveNodes(q.From, q.FromPos)
	if err != nil {
		return nil, 0, false, err
	}
	dst, err := resolveNodes(q.To, q.ToPos)
	if err != nil {
		return nil, 0, false, err
	}
	window := g.Timeline().All()
	bounded := false
	if !q.During.IsZero() {
		window, err = ResolveInterval(g, in, q.During)
		if err != nil {
			return nil, 0, false, err
		}
		if !window.IsContiguous() {
			return nil, 0, false, errf(in, q.During.FromPos, q.During.From,
				"PATHS DURING requires a contiguous range")
		}
		bounded = true
	}
	winLen := window.Len()
	// Engine crossover mirrors explore's seed rule: with ≤ 2 window points
	// there is at most one cross-point hop, so the bucket index can never
	// amortize its build.
	naive := winLen <= 2
	sweeps := int64(1)
	if mode == analytics.ModeFastest {
		sweeps = int64(winLen)
	}
	var cost int64
	if naive {
		cost = sweeps * int64(winLen) * scanCost(g)
	} else {
		cost = scanCost(g) + sweeps*int64(g.NumNodes()+winLen)
	}
	maxTime := 0
	if bounded && !window.IsEmpty() {
		maxTime = int(window.Max())
	}
	return &pathsOp{
		g: g,
		spec: analytics.PathsSpec{
			Mode: mode, Src: src, Dst: dst, Window: window,
		},
		srcN: len(q.From), dstN: len(q.To),
		naive: naive, cost: cost,
		fb: env.Feedback, fbKey: q.Key(),
	}, maxTime, bounded, nil
}

func compileTrend(env Env, q *Trend) (physOp, error) {
	g, in := env.Graph, env.Query
	schema, err := resolveSchema(g, in, q.Attrs, q.AttrsPos)
	if err != nil {
		return nil, err
	}
	kind, err := resolveKind(in, q.Kind)
	if err != nil {
		return nil, err
	}
	filter, err := CompilePredicates(g, in, q.Where)
	if err != nil {
		return nil, err
	}
	w := normWidth(q.Width)
	windows := g.Timeline().Len() - w + 1
	if windows < 0 {
		windows = 0
	}
	// A window's ALL weight is the union-ALL aggregate of its points —
	// T-distributive, so the catalog answers each window as one prefix-sum
	// composition. DIST weights (distinct entities per window) and
	// filtered trends are not composable from per-point vectors.
	useCatalog := kind == agg.All && filter == nil && env.Catalog != nil
	if useCatalog {
		return &trendCatalogOp{
			cat: env.Catalog, g: g, schema: schema, width: w, windows: windows,
			cost: int64(windows) * schema.Domain(),
		}, nil
	}
	return &trendScanOp{
		g: g, schema: schema, kind: kind, filter: filter,
		preds: len(q.Where), width: w, windows: windows,
		cost: scanCost(g) + int64(windows),
		fb:   env.Feedback, fbKey: q.Key(),
	}, nil
}

// ---- events operator --------------------------------------------------

// eventsOp classifies attribute groups into evolution events per
// consecutive window pair, on either the entity-sweep or per-step engine.
type eventsOp struct {
	g      *core.Graph
	schema *agg.Schema
	kind   agg.Kind
	filter agg.Filter
	preds  int
	width  int
	min    int64
	steps  int
	sweep  bool
	cost   int64

	fb    *Feedback
	fbKey string
}

func (o *eventsOp) name() string {
	if o.sweep {
		return "EventsSweep"
	}
	return "EventsScan"
}

func (o *eventsOp) engine() string {
	if o.sweep {
		return "entity-sweep"
	}
	return "per-step-scan"
}

func (o *eventsOp) describe() []kv {
	attrs := []kv{
		{"kind", kindString(o.kind)},
		{"width", strconv.Itoa(o.width)},
		{"steps", strconv.Itoa(o.steps)},
		{"engine", o.engine()},
		{"filter", filterString(o.preds)},
	}
	if o.min > 0 {
		attrs = append(attrs, kv{"min", itoa64(o.min)})
	}
	return append(attrs, kv{"est_cost", itoa64(o.cost)})
}

func (o *eventsOp) children() []physOp { return nil }

func (o *eventsOp) countSelection() {
	if o.sweep {
		Selections.EventsSweep.Inc()
	} else {
		Selections.EventsScan.Inc()
	}
}

func (o *eventsOp) run(ctx context.Context, out *Result) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	spec := analytics.EventsSpec{
		Schema: o.schema, Kind: o.kind, Width: o.width, Min: o.min,
		Filter: evolution.Filter(o.filter),
	}
	var res *analytics.EventsResult
	if o.sweep {
		res = analytics.EventsSweep(o.g, spec)
	} else {
		res = analytics.EventsScan(o.g, spec)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if o.fb != nil {
		o.fb.observe(o.fbKey, o.g.NumNodes(), len(res.Rows))
	}
	out.Events = res
	return nil
}

// ---- paths operator ---------------------------------------------------

// pathsOp answers a time-respecting path query. The frontier engine's
// bucket index is immutable and window-wide, so it is built once per plan
// (lazily, keeping EXPLAIN free) and shared across concurrent executions.
type pathsOp struct {
	g          *core.Graph
	spec       analytics.PathsSpec
	srcN, dstN int
	naive      bool
	cost       int64

	fb    *Feedback
	fbKey string

	engOnce sync.Once
	eng     *analytics.PathsEngine
}

func (o *pathsOp) name() string {
	if o.naive {
		return "PathsNaive"
	}
	return "PathsFrontier"
}

func (o *pathsOp) engine() string {
	if o.naive {
		return "time-expanded"
	}
	return "time-bucket-frontier"
}

func (o *pathsOp) describe() []kv {
	return []kv{
		{"mode", o.spec.Mode},
		{"sources", strconv.Itoa(o.srcN)},
		{"targets", strconv.Itoa(o.dstN)},
		{"window", intervalString(o.spec.Window)},
		{"engine", o.engine()},
		{"est_cost", itoa64(o.cost)},
	}
}

func (o *pathsOp) children() []physOp { return nil }

func (o *pathsOp) countSelection() {
	if o.naive {
		Selections.PathsNaive.Inc()
	} else {
		Selections.PathsFront.Inc()
	}
}

func (o *pathsOp) run(ctx context.Context, out *Result) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	var res *analytics.PathsResult
	if o.naive {
		res = analytics.PathsTimeExpanded(o.g, o.spec)
	} else {
		o.engOnce.Do(func() { o.eng = analytics.NewPathsEngine(o.g, o.spec) })
		res = o.eng.Run()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if o.fb != nil {
		o.fb.observe(o.fbKey, o.dstN, res.Reached)
	}
	out.Paths = res
	return nil
}

// ---- trend operators --------------------------------------------------

// trendCatalogOp composes every sliding-window weight from the catalog's
// prefix sums.
type trendCatalogOp struct {
	cat     *materialize.Catalog
	g       *core.Graph
	schema  *agg.Schema
	width   int
	windows int
	cost    int64
}

func (o *trendCatalogOp) name() string { return "TrendCatalog" }

func (o *trendCatalogOp) describe() []kv {
	return []kv{
		{"kind", kindString(agg.All)},
		{"width", strconv.Itoa(o.width)},
		{"windows", strconv.Itoa(o.windows)},
		{"composition", "prefix-sum"},
		{"est_cost", itoa64(o.cost)},
	}
}

func (o *trendCatalogOp) children() []physOp { return nil }

func (o *trendCatalogOp) countSelection() { Selections.TrendCatalog.Inc() }

func (o *trendCatalogOp) run(ctx context.Context, out *Result) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	res, err := analytics.TrendCatalog(o.cat, o.g, analytics.TrendSpec{
		Schema: o.schema, Kind: agg.All, Width: o.width,
	})
	if err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	out.Trend = res
	return nil
}

// trendScanOp computes sliding-window series directly on the base graph.
type trendScanOp struct {
	g       *core.Graph
	schema  *agg.Schema
	kind    agg.Kind
	filter  agg.Filter
	preds   int
	width   int
	windows int
	cost    int64

	fb    *Feedback
	fbKey string
}

func (o *trendScanOp) name() string { return "TrendScan" }

func (o *trendScanOp) describe() []kv {
	return []kv{
		{"kind", kindString(o.kind)},
		{"width", strconv.Itoa(o.width)},
		{"windows", strconv.Itoa(o.windows)},
		{"filter", filterString(o.preds)},
		{"est_cost", itoa64(o.cost)},
	}
}

func (o *trendScanOp) children() []physOp { return nil }

func (o *trendScanOp) countSelection() { Selections.TrendScan.Inc() }

func (o *trendScanOp) run(ctx context.Context, out *Result) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	res := analytics.TrendScan(o.g, analytics.TrendSpec{
		Schema: o.schema, Kind: o.kind, Width: o.width, Filter: o.filter,
	})
	if err := ctx.Err(); err != nil {
		return err
	}
	if o.fb != nil {
		o.fb.observe(o.fbKey, int(o.schema.Domain()), len(res.Rows))
	}
	out.Trend = res
	return nil
}
