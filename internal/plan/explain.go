package plan

import "strings"

// Explain renders the plan as a tree: the canonical logical query on the
// first line, then the selected physical operators with their attributes
// (chosen kernel, engine, materialization source hint, cost estimates).
// The rendering is deterministic for a fixed graph and environment — the
// golden plan tests pin it — except for live hints (the catalog's
// source-hint), which describe what an execution right now would do.
func (p *Plan) Explain() string {
	var b strings.Builder
	b.WriteString("plan: ")
	b.WriteString(p.logical.Key())
	b.WriteByte('\n')
	renderOp(&b, p.root, "")
	return b.String()
}

// renderOp writes one operator node and its children. prefix is the
// indentation accumulated from enclosing levels.
func renderOp(b *strings.Builder, op physOp, prefix string) {
	b.WriteString(prefix)
	b.WriteString("└─ ")
	b.WriteString(op.name())
	attrs := op.describe()
	if len(attrs) > 0 {
		b.WriteByte('(')
		for i, a := range attrs {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(a.k)
			b.WriteByte('=')
			b.WriteString(a.v)
		}
		b.WriteByte(')')
	}
	b.WriteByte('\n')
	for _, c := range op.children() {
		renderOp(b, c, prefix+"   ")
	}
}
