package plan_test

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"testing"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/materialize"
	"repro/internal/plan"
	"repro/internal/timeline"
)

// wideGraph builds a small graph whose single static attribute has a wide
// value domain (80 values over 12 nodes), so the dense kernel's d² slot
// space dwarfs the data — the shape the sparse-domain demotion targets.
func wideGraph(t *testing.T) *core.Graph {
	t.Helper()
	tl := timeline.MustNew("t0", "t1", "t2", "t3")
	b := core.NewBuilder(tl, core.AttrSpec{Name: "team", Kind: core.Static})
	// Register the full value domain through a throwaway node's history of
	// static overwrites is not possible (static is single-valued), so give
	// the dictionary its width with real nodes first.
	const nNodes = 12
	for n := 0; n < nNodes; n++ {
		id := b.AddNode(fmt.Sprintf("n%d", n))
		for tt := 0; tt < 4; tt++ {
			b.SetNodeTime(id, timeline.Time(tt))
		}
		b.SetStatic(0, id, fmt.Sprintf("team%02d", n))
	}
	// Widen the dictionary beyond the node count: a few nodes re-assigned
	// through fresh values leave earlier values in the domain.
	for v := nNodes; v < 80; v++ {
		b.SetStatic(0, core.NodeID(v%nNodes), fmt.Sprintf("team%02d", v))
	}
	for n := 0; n < nNodes-1; n++ {
		e := b.AddEdge(core.NodeID(n), core.NodeID(n+1))
		for tt := 0; tt < 4; tt++ {
			b.SetEdgeTime(e, timeline.Time(tt))
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func aggNode() *plan.Aggregate {
	return &plan.Aggregate{
		Op: plan.TemporalOp{
			Op: plan.OpUnion,
			A:  plan.IntervalRef{From: "t0", To: "t1"},
			B:  plan.IntervalRef{From: "t2", To: "t3"},
		},
		Attrs: []string{"team"},
		Kind:  "dist",
	}
}

// TestFeedbackRecordsObservations: executing a view aggregation with a
// feedback store records the observed cardinalities and (once available)
// the timestamp compression ratio, retrievable under the logical key.
func TestFeedbackRecordsObservations(t *testing.T) {
	g := wideGraph(t)
	fb := plan.NewFeedback()
	node := aggNode()
	p, err := plan.Compile(plan.Env{Graph: g, Workers: 1, Feedback: fb}, node)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := fb.Lookup(node.Key()); ok {
		t.Fatal("observation recorded before any execution")
	}
	res, err := p.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	obs, ok := fb.Lookup(node.Key())
	if !ok {
		t.Fatal("execution recorded no observation")
	}
	wantResults := len(res.Agg.Nodes) + len(res.Agg.Edges)
	if obs.Results != wantResults || obs.Entities == 0 || obs.Executions != 1 {
		t.Fatalf("observation %+v, want results=%d, entities>0, executions=1", obs, wantResults)
	}
	if _, err := p.Execute(context.Background()); err != nil {
		t.Fatal(err)
	}
	if obs, _ = fb.Lookup(node.Key()); obs.Executions != 2 {
		t.Fatalf("second execution not counted: %+v", obs)
	}
}

// TestFeedbackPrefersMapKernel: once an observation shows the tuple domain
// is sparsely occupied, recompiling selects the map kernel (and says so in
// EXPLAIN); the demoted plan still produces the dense kernel's result.
func TestFeedbackPrefersMapKernel(t *testing.T) {
	g := wideGraph(t)
	fb := plan.NewFeedback()
	env := plan.Env{Graph: g, Workers: 1, Feedback: fb}
	node := aggNode()

	before, err := plan.Compile(env, node)
	if err != nil {
		t.Fatal(err)
	}
	if s := before.Explain(); !strings.Contains(s, "kernel=dense") || strings.Contains(s, "feedback=") {
		t.Fatalf("unobserved compile should select dense with no feedback attr:\n%s", s)
	}
	want, err := before.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	after, err := plan.Compile(env, node)
	if err != nil {
		t.Fatal(err)
	}
	s := after.Explain()
	if !strings.Contains(s, "kernel=static") || !strings.Contains(s, "feedback=") ||
		!strings.Contains(s, "map-kernel(sparse-domain)") {
		t.Fatalf("observed compile did not demote to the map kernel:\n%s", s)
	}
	got, err := after.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Agg.Nodes) != len(want.Agg.Nodes) || len(got.Agg.Edges) != len(want.Agg.Edges) {
		t.Fatal("map-kernel plan result differs from dense plan result")
	}
	for tu, w := range want.Agg.Nodes {
		if got.Agg.Nodes[tu] != w {
			t.Fatalf("tuple %d: map kernel weight %d, dense %d", tu, got.Agg.Nodes[tu], w)
		}
	}
	for k, w := range want.Agg.Edges {
		if got.Agg.Edges[k] != w {
			t.Fatalf("edge %v: map kernel weight %d, dense %d", k, got.Agg.Edges[k], w)
		}
	}
}

// TestFeedbackInvalidatesCachedPlan: a cached plan compiled before any
// observation must be recompiled once feedback arrives — the observation
// bumps the key's epoch, turning the next lookup into a miss.
func TestFeedbackInvalidatesCachedPlan(t *testing.T) {
	g := wideGraph(t)
	fb := plan.NewFeedback()
	cache := plan.NewCache(0)
	env := plan.Env{Graph: g, Workers: 1, Feedback: fb, Cache: cache}
	node := aggNode()

	first, err := plan.Compile(env, node)
	if err != nil {
		t.Fatal(err)
	}
	again, err := plan.Compile(env, node)
	if err != nil {
		t.Fatal(err)
	}
	if first != again {
		t.Fatal("identical unobserved compiles did not share the cached plan")
	}
	if _, err := first.Execute(context.Background()); err != nil {
		t.Fatal(err)
	}
	adapted, err := plan.Compile(env, node)
	if err != nil {
		t.Fatal(err)
	}
	if adapted == first {
		t.Fatal("observation did not invalidate the cached plan")
	}
	if s := adapted.Explain(); !strings.Contains(s, "feedback=") {
		t.Fatalf("recompiled plan carries no feedback attr:\n%s", s)
	}
	// The adapted plan is itself cached under the new epoch.
	stable, err := plan.Compile(env, node)
	if err != nil {
		t.Fatal(err)
	}
	if stable != adapted {
		t.Fatal("adapted plan not served from the cache on a stable observation")
	}
}

// TestFeedbackBypassesCatalog: with an observed run ratio showing heavily
// compressed timestamps, a union-ALL whose composition cost (interval ×
// domain) decisively exceeds the compressed scan skips the catalog
// operator in favour of the direct view aggregation.
func TestFeedbackBypassesCatalog(t *testing.T) {
	g := wideGraph(t)
	cat := materialize.NewCatalogWith(g, materialize.CatalogConfig{})
	fb := plan.NewFeedback()
	env := plan.Env{Graph: g, Catalog: cat, Workers: 1, Feedback: fb}
	node := aggNode()
	node.Kind = "all"

	before, err := plan.Compile(env, node)
	if err != nil {
		t.Fatal(err)
	}
	if s := before.Explain(); !strings.Contains(s, "CatalogUnionAll") {
		t.Fatalf("union-ALL without feedback should use the catalog:\n%s", s)
	}
	want, err := before.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// composeCost = |t0..t3| × domain(80+) = 320+; scan = V+E ≈ 23. A
	// ratio of 0.05 drops the adjusted scan to ~1, far past the ×4 margin.
	plan.SeedRunRatioForTest(fb, 0.05)
	after, err := plan.Compile(env, node)
	if err != nil {
		t.Fatal(err)
	}
	s := after.Explain()
	if strings.Contains(s, "CatalogUnionAll") || !strings.Contains(s, "direct-scan(compressed)") {
		t.Fatalf("compressed-scan feedback did not bypass the catalog:\n%s", s)
	}
	got, err := after.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for tu, w := range want.Agg.Nodes {
		if got.Agg.Nodes[tu] != w {
			t.Fatalf("tuple %d: direct %d, catalog %d", tu, got.Agg.Nodes[tu], w)
		}
	}
	if len(got.Agg.Nodes) != len(want.Agg.Nodes) || len(got.Agg.Edges) != len(want.Agg.Edges) {
		t.Fatal("direct plan result differs from catalog plan result")
	}
}

// TestFeedbackSerialDemotion exercises the merge-bound demotion through
// the exported seeding hook: an observed output cardinality within 4x of
// the entity count makes a parallel compile fall back to one worker.
func TestFeedbackSerialDemotion(t *testing.T) {
	g := wideGraph(t)
	fb := plan.NewFeedback()
	env := plan.Env{Graph: g, Workers: 4, Feedback: fb}
	node := aggNode()
	clamped := plan.ClampWorkers(4)
	if clamped < 2 {
		t.Skip("single-CPU host clamps every compile to serial")
	}

	// Entities past the engine crossover, results within the merge bound.
	n := agg.ParallelMinEntities()
	plan.SeedObservationForTest(fb, node.Key(), 2*n, n)
	p, err := plan.Compile(env, node)
	if err != nil {
		t.Fatal(err)
	}
	s := p.Explain()
	if !strings.Contains(s, "workers=1") || !strings.Contains(s, "serial(merge-bound)") {
		t.Fatalf("merge-bound observation did not demote to serial:\n%s", s)
	}

	// A selective query (few result tuples) keeps its parallel budget.
	fb2 := plan.NewFeedback()
	plan.SeedObservationForTest(fb2, node.Key(), 2*n, 8)
	env.Feedback = fb2
	p, err = plan.Compile(env, node)
	if err != nil {
		t.Fatal(err)
	}
	if s := p.Explain(); strings.Contains(s, "serial(merge-bound)") ||
		!strings.Contains(s, "workers="+strconv.Itoa(clamped)) {
		t.Fatalf("selective observation wrongly demoted:\n%s", s)
	}
}

// TestFeedbackReset: a reset drops observations and run ratio, returning
// compiles to their unobserved selections.
func TestFeedbackReset(t *testing.T) {
	fb := plan.NewFeedback()
	plan.SeedObservationForTest(fb, "k", 100, 100)
	plan.SeedRunRatioForTest(fb, 0.1)
	if _, ok := fb.Lookup("k"); !ok {
		t.Fatal("seeded observation missing")
	}
	fb.Reset()
	if _, ok := fb.Lookup("k"); ok {
		t.Fatal("observation survived Reset")
	}
	if _, ok := fb.RunRatio(); ok {
		t.Fatal("run ratio survived Reset")
	}
}
