package plan

import (
	"sync"

	"repro/internal/core"
	"repro/internal/materialize"
)

// Cache memoizes compiled plans keyed on the logical node's canonical text
// (Logical.Key, a normalized query rendering) plus the clamped workers
// setting. It is generation-keyed on the (graph, catalog) identity the
// plans were compiled against: compiled plans bind resolved views and
// schemas to one concrete graph, so when a serving snapshot is replaced
// wholesale the cache is flushed rather than ever serving a plan built on
// an unrelated graph.
//
// Append-only growth gets a cheaper path: Advance rebinds the cache to the
// extended (graph, catalog) generation and evicts only the plans that can
// observe the appended suffix — unbounded plans (whole-timeline traversals
// like EXPLORE, TOP and TIMELINE) and bounded plans whose resolved
// intervals reach at or past the first dirty time point. A bounded plan
// over the clean prefix keeps serving: it executes against the retired
// snapshot, whose points are frozen by the append-only contract, so its
// results are identical to a recompile. The pair it was compiled against
// is remembered as the retired generation, and in-flight lookups/stores
// from that generation degrade to misses/drops instead of flushing the
// advanced cache.
//
// Only successfully compiled plans are stored, so a hit can never replay a
// resolution error from a differently-positioned query spelling. Safe for
// concurrent use; eviction is FIFO at a bounded entry count (plans are
// small — views and schemas, no result data).
type Cache struct {
	mu    sync.Mutex
	g     *core.Graph
	cat   *materialize.Catalog
	prevG *core.Graph
	prevC *materialize.Catalog
	m     map[string]*Plan
	order []string
	max   int
}

// NewCache returns a plan cache bounded to maxEntries (<= 0 selects 256).
func NewCache(maxEntries int) *Cache {
	if maxEntries <= 0 {
		maxEntries = 256
	}
	return &Cache{m: make(map[string]*Plan), max: maxEntries}
}

// retired reports whether (g, cat) is the remembered just-retired
// generation (and not the current one). Called with c.mu held.
func (c *Cache) retired(g *core.Graph, cat *materialize.Catalog) bool {
	return g == c.prevG && cat == c.prevC && (g != c.g || cat != c.cat)
}

// syncGeneration flushes the cache when the (graph, catalog) pair changed.
// Called with c.mu held.
func (c *Cache) syncGeneration(g *core.Graph, cat *materialize.Catalog) {
	if c.g != g || c.cat != cat {
		c.g, c.cat = g, cat
		c.m = make(map[string]*Plan)
		c.order = c.order[:0]
	}
}

// Advance rebinds the cache to an append-only extension of the current
// generation without flushing it. firstDirty is the index of the first
// appended time point (the retired timeline's length, or 0 to distrust
// the whole history, e.g. when a static attribute was back-filled on an
// old node): every unbounded plan and every bounded plan touching time ≥
// firstDirty is evicted, the rest keep serving. It returns how many plans
// were kept and evicted.
func (c *Cache) Advance(g *core.Graph, cat *materialize.Catalog, firstDirty int) (kept, evicted int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.g == g && c.cat == cat {
		return len(c.m), 0
	}
	c.prevG, c.prevC = c.g, c.cat
	c.g, c.cat = g, cat
	order := make([]string, 0, len(c.order))
	for _, key := range c.order {
		p := c.m[key]
		if p == nil {
			continue
		}
		if !p.bounded || p.maxTime >= firstDirty {
			delete(c.m, key)
			evicted++
			continue
		}
		order = append(order, key)
	}
	c.order = order
	return len(c.m), evicted
}

// Reset rebinds the cache to a freshly rebuilt (graph, catalog) pair,
// flushing every plan — the full-rebuild counterpart of Advance.
func (c *Cache) Reset(g *core.Graph, cat *materialize.Catalog) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.prevG, c.prevC = c.g, c.cat
	c.syncGeneration(g, cat)
}

func (c *Cache) lookup(g *core.Graph, cat *materialize.Catalog, key string) *Plan {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.retired(g, cat) {
		return nil
	}
	c.syncGeneration(g, cat)
	return c.m[key]
}

func (c *Cache) store(g *core.Graph, cat *materialize.Catalog, key string, p *Plan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.retired(g, cat) {
		return
	}
	c.syncGeneration(g, cat)
	if _, ok := c.m[key]; !ok {
		for len(c.order) >= c.max {
			delete(c.m, c.order[0])
			c.order = c.order[1:]
		}
		c.order = append(c.order, key)
	}
	c.m[key] = p
}

// Len returns the number of cached plans.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
