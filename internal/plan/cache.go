package plan

import (
	"sync"

	"repro/internal/core"
	"repro/internal/materialize"
)

// Cache memoizes compiled plans keyed on the logical node's canonical text
// (Logical.Key, a normalized query rendering) plus the clamped workers
// setting. It is generation-keyed on the (graph, catalog) identity the
// plans were compiled against: compiled plans bind resolved views and
// schemas to one concrete graph, so when a stream-mode rebuild swaps the
// serving snapshot the whole cache is flushed rather than ever serving a
// plan built on a retired graph.
//
// Only successfully compiled plans are stored, so a hit can never replay a
// resolution error from a differently-positioned query spelling. Safe for
// concurrent use; eviction is FIFO at a bounded entry count (plans are
// small — views and schemas, no result data).
type Cache struct {
	mu    sync.Mutex
	g     *core.Graph
	cat   *materialize.Catalog
	m     map[string]*Plan
	order []string
	max   int
}

// NewCache returns a plan cache bounded to maxEntries (<= 0 selects 256).
func NewCache(maxEntries int) *Cache {
	if maxEntries <= 0 {
		maxEntries = 256
	}
	return &Cache{m: make(map[string]*Plan), max: maxEntries}
}

// syncGeneration flushes the cache when the (graph, catalog) pair changed.
// Called with c.mu held.
func (c *Cache) syncGeneration(g *core.Graph, cat *materialize.Catalog) {
	if c.g != g || c.cat != cat {
		c.g, c.cat = g, cat
		c.m = make(map[string]*Plan)
		c.order = c.order[:0]
	}
}

func (c *Cache) lookup(g *core.Graph, cat *materialize.Catalog, key string) *Plan {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.syncGeneration(g, cat)
	return c.m[key]
}

func (c *Cache) store(g *core.Graph, cat *materialize.Catalog, key string, p *Plan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.syncGeneration(g, cat)
	if _, ok := c.m[key]; !ok {
		for len(c.order) >= c.max {
			delete(c.m, c.order[0])
			c.order = c.order[1:]
		}
		c.order = append(c.order, key)
	}
	c.m[key] = p
}

// Len returns the number of cached plans.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
