package plan_test

import (
	"strings"
	"testing"

	"repro/internal/plan"
)

// TestAnalyticsAsOf pins bi-temporal behavior for the analytics family:
// AS OF the head transaction answers exactly like the live graph, AS OF an
// earlier transaction answers over the shorter historical timeline, and
// the clause is part of every canonical cache key.
func TestAnalyticsAsOf(t *testing.T) {
	s := paperSeries(t)
	r := &seriesResolver{s: s}
	live, err := s.Graph()
	if err != nil {
		t.Fatal(err)
	}
	env := plan.Env{Graph: live, Workers: 1, History: r}

	events := func(txn int) *plan.Events {
		return &plan.Events{
			Kind: "dist", Attrs: []string{"gender"}, Width: 1,
			AsOf: plan.TxnRef{Txn: txn},
		}
	}
	trend := func(txn int) *plan.Trend {
		return &plan.Trend{
			Kind: "all", Attrs: []string{"gender"}, Width: 1,
			AsOf: plan.TxnRef{Txn: txn},
		}
	}
	paths := func(txn int) *plan.Paths {
		return &plan.Paths{
			Mode: "earliest", From: []string{"u1"}, To: []string{"u2"},
			AsOf: plan.TxnRef{Txn: txn},
		}
	}

	// Head pin: AS OF the current txn is byte-identical to the live graph.
	head, liveRes := execute(t, env, events(s.Txn())), execute(t, env, events(0))
	if got, want := mustJSON(t, head.Events), mustJSON(t, liveRes.Events); got != want {
		t.Errorf("EVENTS AS OF head diverges from live: %s vs %s", got, want)
	}
	headT, liveT := execute(t, env, trend(s.Txn())), execute(t, env, trend(0))
	if got, want := mustJSON(t, headT.Trend), mustJSON(t, liveT.Trend); got != want {
		t.Errorf("TREND AS OF head diverges from live: %s vs %s", got, want)
	}
	headP, liveP := execute(t, env, paths(s.Txn())), execute(t, env, paths(0))
	if got, want := mustJSON(t, headP.Paths), mustJSON(t, liveP.Paths); got != want {
		t.Errorf("PATHS AS OF head diverges from live: %s vs %s", got, want)
	}

	// At txn 1 only the t0 batch exists: a one-point timeline has zero
	// steps, zero rows; the live head has two steps worth of rows.
	old := execute(t, env, events(1))
	if old.Events == nil || old.Events.Steps != 0 || len(old.Events.Rows) != 0 {
		t.Errorf("EVENTS AS OF 1 should see a single-point timeline, got %+v", old.Events)
	}
	if liveRes.Events.Steps != 2 {
		t.Errorf("live EVENTS has %d steps, want 2", liveRes.Events.Steps)
	}
	oldT := execute(t, env, trend(1))
	if oldT.Trend == nil || oldT.Trend.Windows != 1 {
		t.Errorf("TREND AS OF 1 should see one window, got %+v", oldT.Trend)
	}

	// The clause must key separately for all three statements.
	for _, pair := range [][2]string{
		{events(1).Key(), events(0).Key()},
		{trend(1).Key(), trend(0).Key()},
		{paths(1).Key(), paths(0).Key()},
	} {
		if pair[0] == pair[1] {
			t.Errorf("AS OF absent from cache key %q", pair[0])
		}
		if !strings.Contains(pair[0], "AS OF 1") {
			t.Errorf("key %q does not render AS OF", pair[0])
		}
	}
}

// TestAnalyticsValidDuring windows the analytics statements in valid time:
// a VALID DURING t0..t1 restriction must behave exactly like a graph that
// never had t2.
func TestAnalyticsValidDuring(t *testing.T) {
	s := paperSeries(t)
	r := &seriesResolver{s: s}
	live, err := s.Graph()
	if err != nil {
		t.Fatal(err)
	}
	env := plan.Env{Graph: live, Workers: 1, History: r}

	node := &plan.Events{
		Kind: "dist", Attrs: []string{"gender"}, Width: 1,
		Valid: plan.IntervalRef{From: "t0", To: "t1"},
		AsOf:  plan.TxnRef{Txn: s.Txn()},
	}
	res := execute(t, env, node)
	if res.Events == nil || res.Events.Steps != 1 {
		t.Fatalf("EVENTS VALID DURING t0..t1 should see one step, got %+v", res.Events)
	}

	// Valid-time restriction without AS OF windows the live graph inline.
	inline := &plan.Trend{
		Kind: "all", Attrs: []string{"gender"}, Width: 1,
		Valid: plan.IntervalRef{From: "t0", To: "t1"},
	}
	tres := execute(t, plan.Env{Graph: live, Workers: 1}, inline)
	if tres.Trend == nil || tres.Trend.Windows != 2 {
		t.Fatalf("TREND VALID DURING t0..t1 should see two width-1 windows, got %+v", tres.Trend)
	}
}
