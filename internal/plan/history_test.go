package plan_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/plan"
	"repro/internal/stream"
	"repro/internal/timeline"
)

// seriesResolver is the test HistoryResolver: it reconstructs states with
// stream.Series.ReplayTo, the same oracle the storage engine is checked
// against, with no caching and no catalogs.
type seriesResolver struct {
	s *stream.Series
	// stateCalls counts reconstructions, so tests can see whether the plan
	// cache short-circuited a compile before history resolution (it must
	// not — resolution happens first).
	stateCalls int
}

func (r *seriesResolver) StateAt(txn int) (plan.HistState, error) {
	r.stateCalls++
	if txn == 0 {
		txn = r.s.Txn()
	}
	g, err := r.s.ReplayTo(txn)
	if err != nil {
		return plan.HistState{}, err
	}
	return plan.HistState{Graph: g}, nil
}

func (r *seriesResolver) WindowAt(txn, from, to int) (plan.HistState, error) {
	st, err := r.StateAt(txn)
	if err != nil {
		return plan.HistState{}, err
	}
	wg, err := core.Window(st.Graph, from, to)
	if err != nil {
		return plan.HistState{}, err
	}
	return plan.HistState{Graph: wg}, nil
}

// paperSeries replays the Fig. 1 running example point by point.
func paperSeries(t *testing.T) *stream.Series {
	t.Helper()
	g := core.PaperExample()
	s := stream.New(g.Attrs()...)
	tl := g.Timeline()
	for ti := 0; ti < tl.Len(); ti++ {
		label, snap := pointBatch(g, ti)
		if err := s.Append(label, snap); err != nil {
			t.Fatalf("append %s: %v", label, err)
		}
	}
	return s
}

// pointBatch extracts one time point of g as an ingest batch.
func pointBatch(g *core.Graph, ti int) (string, stream.Snapshot) {
	tl := g.Timeline()
	var snap stream.Snapshot
	for n := 0; n < g.NumNodes(); n++ {
		id := core.NodeID(n)
		if !g.NodeTau(id).Contains(ti) {
			continue
		}
		rec := stream.NodeRecord{Label: g.NodeLabel(id)}
		for a, spec := range g.Attrs() {
			v := g.ValueString(core.AttrID(a), id, timeline.Time(ti))
			if v == "" {
				continue
			}
			if spec.Kind == core.Static {
				if rec.Static == nil {
					rec.Static = map[string]string{}
				}
				rec.Static[spec.Name] = v
			} else {
				if rec.Varying == nil {
					rec.Varying = map[string]string{}
				}
				rec.Varying[spec.Name] = v
			}
		}
		snap.Nodes = append(snap.Nodes, rec)
	}
	for e := 0; e < g.NumEdges(); e++ {
		id := core.EdgeID(e)
		if !g.EdgeTau(id).Contains(ti) {
			continue
		}
		ep := g.Edge(id)
		snap.Edges = append(snap.Edges, stream.EdgeRecord{U: g.NodeLabel(ep.U), V: g.NodeLabel(ep.V)})
	}
	return tl.Label(timeline.Time(ti)), snap
}

func asOfAgg(txn int) *plan.Aggregate {
	return &plan.Aggregate{
		Op:    plan.TemporalOp{Op: plan.OpProject, A: plan.IntervalRef{From: "t0"}},
		Attrs: []string{"gender"},
		Kind:  "dist",
		AsOf:  plan.TxnRef{Txn: txn},
	}
}

// TestAsOfResolvesDistinctStates compiles the same logical query AS OF two
// different transactions and checks each executes over the state of its
// own txn — the t0 DIST gender counts differ between txn 1 and the head.
func TestAsOfResolvesDistinctStates(t *testing.T) {
	s := paperSeries(t)
	r := &seriesResolver{s: s}
	live, err := s.Graph()
	if err != nil {
		t.Fatal(err)
	}
	env := plan.Env{Graph: live, Workers: 1, History: r}

	res1 := execute(t, env, asOfAgg(1))
	resHead := execute(t, env, asOfAgg(s.Txn()))
	resLive := execute(t, env, asOfAgg(0))

	if got, want := mustJSON(t, resHead.Agg), mustJSON(t, resLive.Agg); got != want {
		t.Errorf("AS OF head diverges from txn-0 (live): %s vs %s", got, want)
	}
	// At txn 1 only the t0 batch exists; the paper example's t0 has 4
	// nodes (1 m, 3 f) — identical groups to the head's t0 POINT, but the
	// graphs behind them differ in node count.
	if res1.Agg == nil || resHead.Agg == nil {
		t.Fatal("aggregate results missing")
	}
	// asOfAgg(0) carries a zero clause and never touches the resolver — the
	// live head is served straight from env.Graph.
	if r.stateCalls != 2 {
		t.Errorf("resolver saw %d StateAt calls, want one per AS OF compile", r.stateCalls)
	}
}

// TestAsOfPlanCacheKeysPerTxn: the same statement AS OF different
// transactions must not collide in a shared plan cache, and the AS OF
// clause must be part of the canonical key.
func TestAsOfPlanCacheKeysPerTxn(t *testing.T) {
	k1, k2, kHead := asOfAgg(1).Key(), asOfAgg(2).Key(), asOfAgg(0).Key()
	if k1 == k2 {
		t.Fatalf("AS OF 1 and AS OF 2 share a cache key %q", k1)
	}
	if k1 == kHead {
		t.Fatalf("AS OF 1 collides with the head-state key %q", k1)
	}
	if !strings.Contains(k1, "AS OF 1") {
		t.Errorf("canonical key %q does not render the AS OF clause", k1)
	}
	if strings.Contains(kHead, "AS OF") {
		t.Errorf("head key %q renders a zero AS OF clause", kHead)
	}

	// A valid-time clause keys separately as well.
	v := asOfAgg(1)
	v.Valid = plan.IntervalRef{From: "t0", To: "t1"}
	if v.Key() == k1 {
		t.Errorf("VALID DURING did not change the cache key %q", k1)
	}
	if !strings.Contains(v.Key(), "VALID DURING") {
		t.Errorf("key %q does not render the VALID DURING clause", v.Key())
	}
}

// TestAsOfWithoutHistoryRejected: an environment with no transaction log
// must reject AS OF but still serve VALID DURING by windowing inline.
func TestAsOfWithoutHistoryRejected(t *testing.T) {
	g := core.PaperExample()
	env := plan.Env{Graph: g, Workers: 1}
	if _, err := plan.Compile(env, asOfAgg(3)); err == nil ||
		!strings.Contains(err.Error(), "transaction log") {
		t.Fatalf("AS OF without history = %v, want transaction-log error", err)
	}

	node := &plan.Aggregate{
		Op:    plan.TemporalOp{Op: plan.OpProject, A: plan.IntervalRef{From: "t1"}},
		Attrs: []string{"gender"},
		Kind:  "dist",
		Valid: plan.IntervalRef{From: "t1", To: "t2"},
	}
	res := execute(t, env, node)
	if res.Agg == nil {
		t.Fatal("VALID DURING without history returned no aggregate")
	}
}

// TestValidDuringRestrictsTimeline: points outside the valid window are
// unknown, exactly as if the graph never contained them.
func TestValidDuringRestrictsTimeline(t *testing.T) {
	s := paperSeries(t)
	r := &seriesResolver{s: s}
	live, err := s.Graph()
	if err != nil {
		t.Fatal(err)
	}
	env := plan.Env{Graph: live, Workers: 1, History: r}
	node := &plan.Aggregate{
		Op:    plan.TemporalOp{Op: plan.OpProject, A: plan.IntervalRef{From: "t2"}},
		Attrs: []string{"gender"},
		Kind:  "dist",
		Valid: plan.IntervalRef{From: "t0", To: "t1"},
		AsOf:  plan.TxnRef{Txn: s.Txn()},
	}
	if _, err := plan.Compile(env, node); err == nil ||
		!strings.Contains(err.Error(), "t2") {
		t.Fatalf("POINT t2 under VALID DURING t0..t1 = %v, want unknown-point error", err)
	}
}

// TestAsOfBeyondHeadErrors surfaces the resolver's range error with the
// transaction number in the message.
func TestAsOfBeyondHeadErrors(t *testing.T) {
	s := paperSeries(t)
	r := &seriesResolver{s: s}
	live, err := s.Graph()
	if err != nil {
		t.Fatal(err)
	}
	env := plan.Env{Graph: live, Workers: 1, History: r}
	bad := s.Txn() + 5
	_, cerr := plan.Compile(env, asOfAgg(bad))
	if cerr == nil || !strings.Contains(cerr.Error(), fmt.Sprintf("AS OF %d", bad)) {
		t.Fatalf("AS OF beyond head = %v, want positioned error", cerr)
	}
}

// TestAsOfCachedPlansExecuteHistoricalState: with a shared cache, a head
// query compiled before and after an AS OF query must keep answering from
// the head graph (no cross-contamination through the cache).
func TestAsOfCachedPlansExecuteHistoricalState(t *testing.T) {
	s := paperSeries(t)
	r := &seriesResolver{s: s}
	live, err := s.Graph()
	if err != nil {
		t.Fatal(err)
	}
	cache := plan.NewCache(0)
	env := plan.Env{Graph: live, Workers: 1, History: r, Cache: cache}

	before := execute(t, env, asOfAgg(0))
	_ = execute(t, env, asOfAgg(1))
	after := execute(t, env, asOfAgg(0))
	if got, want := mustJSON(t, after.Agg), mustJSON(t, before.Agg); got != want {
		t.Fatalf("head plan answer changed after an AS OF compile:\n%s\nvs\n%s", got, want)
	}
}
