package bitset

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Vector is the read-only combinator contract shared by the dense Set and
// the run-length compressed Runs. Kernels that only scan a timestamp (agg
// accumulation, interval views, prefix-sum construction) accept a Vector so
// they can operate on whichever representation the density heuristic chose
// without materializing dense words. Mask arguments keep Set's zero-padded
// length-mismatch semantics; range arguments are half-open [lo, hi).
type Vector interface {
	Len() int
	Count() int
	IsEmpty() bool
	Contains(i int) bool
	Next(i int) int
	ForEach(fn func(i int))
	ForEachRun(fn func(lo, hi int))

	ContainsAll(t *Set) bool
	Intersects(t *Set) bool
	CountAnd(t *Set) int
	ForEachAnd(t *Set, fn func(i int))

	ContainsRange(lo, hi int) bool
	IntersectsRange(lo, hi int) bool
	CountRange(lo, hi int) int
	ForEachInRange(lo, hi int, fn func(i int))

	// Dense returns the dense form: the Set itself, or a materialized copy.
	Dense() *Set
	String() string
}

var (
	_ Vector = (*Set)(nil)
	_ Vector = (*Runs)(nil)
)

// Runs is a run-length compressed bitset: a sorted list of maximal runs of
// consecutive set bits. DBLP-like timestamps (an author active for 15
// consecutive snapshots, an edge alive for a whole interval) are dominated
// by a handful of runs, so scanning runs beats scanning one bit per time
// point exactly on the hot aggregation path. Runs is immutable after
// construction.
type Runs struct {
	n     int
	count int
	runs  []uint32 // flattened [start, end) pairs, strictly increasing, gaps ≥ 1
}

// RunsOf returns the run-length form of s unconditionally. Use Compress for
// the density-heuristic choice.
func RunsOf(s *Set) *Runs {
	r := &Runs{n: s.Len()}
	s.ForEachRun(func(lo, hi int) {
		r.runs = append(r.runs, uint32(lo), uint32(hi))
		r.count += hi - lo
	})
	return r
}

// Compress returns the run-length form of s when the density heuristic says
// it pays off, or nil when the dense form should be kept. A run costs 8
// bytes (two uint32) against 8 bytes per 64-bit dense word, so compression
// wins asymptotically when there are fewer runs than words; requiring a 2x
// margin leaves the dense form in place when the indirection would buy
// little (in particular every vector on a timeline of ≤ 2 words stays
// dense — one popcount already beats any run walk there).
func Compress(s *Set) *Runs {
	words := (s.Len() + wordBits - 1) / wordBits
	if words < 4 {
		return nil
	}
	if 2*s.NumRuns() > words {
		return nil
	}
	return RunsOf(s)
}

// NewRuns builds a Runs of length n from explicit [lo, hi) pairs, which
// must be sorted, non-overlapping, non-adjacent and within [0, n). It is a
// test constructor; production forms come from RunsOf/Compress/DecodeRuns.
func NewRuns(n int, pairs ...[2]int) *Runs {
	r := &Runs{n: n}
	prev := 0
	for i, p := range pairs {
		lo, hi := p[0], p[1]
		if lo >= hi || hi > n || (i > 0 && lo <= prev) || (i == 0 && lo < 0) {
			panic(fmt.Sprintf("bitset: invalid run [%d,%d) in NewRuns(%d)", lo, hi, n))
		}
		prev = hi
		r.runs = append(r.runs, uint32(lo), uint32(hi))
		r.count += hi - lo
	}
	return r
}

// Len reports the logical length of the vector.
func (r *Runs) Len() int { return r.n }

// Count returns the number of set bits.
func (r *Runs) Count() int { return r.count }

// IsEmpty reports whether no bit is set.
func (r *Runs) IsEmpty() bool { return r.count == 0 }

// NumRuns returns the number of runs.
func (r *Runs) NumRuns() int { return len(r.runs) / 2 }

// Run returns the i-th run as [lo, hi).
func (r *Runs) Run(i int) (lo, hi int) {
	return int(r.runs[2*i]), int(r.runs[2*i+1])
}

// SizeBytes returns the in-memory payload size of the run list, the number
// the density heuristic and TauStats compare against 8 bytes per dense
// word.
func (r *Runs) SizeBytes() int { return 4 * len(r.runs) }

// firstOverlapping returns the index of the first run with end > lo.
func (r *Runs) firstOverlapping(lo int) int {
	return sort.Search(r.NumRuns(), func(i int) bool { return int(r.runs[2*i+1]) > lo })
}

// Contains reports whether bit i is set. Indices at or beyond Len report
// false (zero-padding); negative indices panic.
func (r *Runs) Contains(i int) bool {
	if i < 0 {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, r.n))
	}
	k := r.firstOverlapping(i)
	return k < r.NumRuns() && int(r.runs[2*k]) <= i
}

// Next returns the index of the first set bit at or after i, or -1 if none.
func (r *Runs) Next(i int) int {
	if i < 0 {
		i = 0
	}
	k := r.firstOverlapping(i)
	if k == r.NumRuns() {
		return -1
	}
	if lo := int(r.runs[2*k]); lo > i {
		return lo
	}
	return i
}

// ForEach calls fn for every set bit in increasing index order.
func (r *Runs) ForEach(fn func(i int)) {
	for k := 0; k < len(r.runs); k += 2 {
		for i := int(r.runs[k]); i < int(r.runs[k+1]); i++ {
			fn(i)
		}
	}
}

// ForEachRun calls fn for every maximal run [lo, hi), in increasing order.
func (r *Runs) ForEachRun(fn func(lo, hi int)) {
	for k := 0; k < len(r.runs); k += 2 {
		fn(int(r.runs[k]), int(r.runs[k+1]))
	}
}

// ContainsAll reports whether every bit set in t is also set in r, under
// Set's zero-padded semantics: t must have no bit in any gap of r,
// including beyond r's last run.
func (r *Runs) ContainsAll(t *Set) bool {
	prev := 0
	for k := 0; k < len(r.runs); k += 2 {
		if t.IntersectsRange(prev, int(r.runs[k])) {
			return false
		}
		prev = int(r.runs[k+1])
	}
	return !t.IntersectsRange(prev, t.Len())
}

// Intersects reports whether r and t share at least one set bit.
func (r *Runs) Intersects(t *Set) bool {
	for k := 0; k < len(r.runs); k += 2 {
		if t.IntersectsRange(int(r.runs[k]), int(r.runs[k+1])) {
			return true
		}
	}
	return false
}

// CountAnd returns |r ∧ t| without materializing either intersection.
func (r *Runs) CountAnd(t *Set) int {
	c := 0
	for k := 0; k < len(r.runs); k += 2 {
		c += t.CountRange(int(r.runs[k]), int(r.runs[k+1]))
	}
	return c
}

// ForEachAnd calls fn for every index set in both r and t, in increasing
// order.
func (r *Runs) ForEachAnd(t *Set, fn func(i int)) {
	for k := 0; k < len(r.runs); k += 2 {
		t.ForEachInRange(int(r.runs[k]), int(r.runs[k+1]), fn)
	}
}

// ContainsRange reports whether every bit in [lo, hi) is set: some single
// run must cover the whole range.
func (r *Runs) ContainsRange(lo, hi int) bool {
	if lo >= hi {
		if lo < 0 {
			panic(fmt.Sprintf("bitset: negative range start %d", lo))
		}
		return true
	}
	k := r.firstOverlapping(lo)
	return k < r.NumRuns() && int(r.runs[2*k]) <= lo && int(r.runs[2*k+1]) >= hi
}

// IntersectsRange reports whether any bit in [lo, hi) is set.
func (r *Runs) IntersectsRange(lo, hi int) bool {
	if lo < 0 {
		panic(fmt.Sprintf("bitset: negative range start %d", lo))
	}
	if lo >= hi {
		return false
	}
	k := r.firstOverlapping(lo)
	return k < r.NumRuns() && int(r.runs[2*k]) < hi
}

// CountRange returns the number of set bits in [lo, hi) in O(log runs +
// overlapping runs) — the compressed-form replacement for a dense popcount
// scan.
func (r *Runs) CountRange(lo, hi int) int {
	if lo < 0 {
		panic(fmt.Sprintf("bitset: negative range start %d", lo))
	}
	c := 0
	for k := r.firstOverlapping(lo); k < r.NumRuns(); k++ {
		a, b := int(r.runs[2*k]), int(r.runs[2*k+1])
		if a >= hi {
			break
		}
		if a < lo {
			a = lo
		}
		if b > hi {
			b = hi
		}
		c += b - a
	}
	return c
}

// ForEachInRange calls fn for every set bit in [lo, hi), in increasing
// order.
func (r *Runs) ForEachInRange(lo, hi int, fn func(i int)) {
	if lo < 0 {
		panic(fmt.Sprintf("bitset: negative range start %d", lo))
	}
	for k := r.firstOverlapping(lo); k < r.NumRuns(); k++ {
		a, b := int(r.runs[2*k]), int(r.runs[2*k+1])
		if a >= hi {
			return
		}
		if a < lo {
			a = lo
		}
		if b > hi {
			b = hi
		}
		for i := a; i < b; i++ {
			fn(i)
		}
	}
}

// Dense materializes the dense form.
func (r *Runs) Dense() *Set {
	s := New(r.n)
	for k := 0; k < len(r.runs); k += 2 {
		for i := int(r.runs[k]); i < int(r.runs[k+1]); i++ {
			s.Add(i)
		}
	}
	return s
}

// String renders the vector as a binary vector, least index first,
// identical to Set.String on the same contents.
func (r *Runs) String() string {
	var b strings.Builder
	b.Grow(r.n)
	prev := 0
	for k := 0; k < len(r.runs); k += 2 {
		for i := prev; i < int(r.runs[k]); i++ {
			b.WriteByte('0')
		}
		for i := int(r.runs[k]); i < int(r.runs[k+1]); i++ {
			b.WriteByte('1')
		}
		prev = int(r.runs[k+1])
	}
	for i := prev; i < r.n; i++ {
		b.WriteByte('0')
	}
	return b.String()
}

// ErrCorrupt reports a malformed run encoding. DecodeRuns wraps it in
// every error it returns, so callers can errors.Is against it, matching
// the storage package's corruption conventions.
var ErrCorrupt = errors.New("bitset: corrupt run encoding")

// AppendBinary appends the canonical binary encoding of r to buf and
// returns the extended slice. The layout is:
//
//	uvarint n          logical length in bits
//	uvarint numRuns
//	numRuns × (uvarint gap, uvarint length-1)
//
// where gap is the distance from the previous run's end (zero is legal
// only for the first run) and lengths are at least one. The delta form
// keeps run-heavy vectors to ~2 bytes per run.
func (r *Runs) AppendBinary(buf []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(r.n))
	buf = binary.AppendUvarint(buf, uint64(r.NumRuns()))
	prev := 0
	for k := 0; k < len(r.runs); k += 2 {
		lo, hi := int(r.runs[k]), int(r.runs[k+1])
		buf = binary.AppendUvarint(buf, uint64(lo-prev))
		buf = binary.AppendUvarint(buf, uint64(hi-lo-1))
		prev = hi
	}
	return buf
}

// DecodeRuns decodes one AppendBinary encoding from the front of data,
// returning the vector and the number of bytes consumed. Corrupt input —
// truncation, non-canonical gaps, runs past the length, implausible run
// counts — returns an error wrapping ErrCorrupt and never panics.
func DecodeRuns(data []byte) (*Runs, int, error) {
	off := 0
	uv := func(what string) (uint64, error) {
		v, k := binary.Uvarint(data[off:])
		if k <= 0 {
			return 0, fmt.Errorf("%w: truncated %s at byte %d", ErrCorrupt, what, off)
		}
		off += k
		return v, nil
	}
	un, err := uv("length")
	if err != nil {
		return nil, 0, err
	}
	const maxBits = 1 << 40 // far above any timeline; rejects nonsense lengths
	if un > maxBits {
		return nil, 0, fmt.Errorf("%w: implausible length %d", ErrCorrupt, un)
	}
	n := int(un)
	numRuns, err := uv("run count")
	if err != nil {
		return nil, 0, err
	}
	// Runs are non-empty and separated by gaps ≥ 1, so at most (n+1)/2 fit.
	if numRuns > uint64(n+1)/2 {
		return nil, 0, fmt.Errorf("%w: %d runs cannot fit in %d bits", ErrCorrupt, numRuns, n)
	}
	r := &Runs{n: n, runs: make([]uint32, 0, 2*numRuns)}
	prev := 0
	for i := uint64(0); i < numRuns; i++ {
		gap, err := uv("gap")
		if err != nil {
			return nil, 0, err
		}
		length, err := uv("run length")
		if err != nil {
			return nil, 0, err
		}
		if i > 0 && gap == 0 {
			return nil, 0, fmt.Errorf("%w: adjacent runs not merged at run %d", ErrCorrupt, i)
		}
		lo := uint64(prev) + gap
		hi := lo + length + 1
		if hi > uint64(n) {
			return nil, 0, fmt.Errorf("%w: run %d ends at %d past length %d", ErrCorrupt, i, hi, n)
		}
		r.runs = append(r.runs, uint32(lo), uint32(hi))
		r.count += int(hi - lo)
		prev = int(hi)
	}
	return r, off, nil
}
