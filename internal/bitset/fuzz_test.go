package bitset_test

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/bitset"
)

// FuzzDecodeRuns is the codec round-trip fuzz target of satellite 1:
// arbitrary input must either decode into a vector whose re-encoding is
// canonical (byte-identical to AppendBinary of the decoded form) or fail
// with an error wrapping ErrCorrupt — it must never panic.
func FuzzDecodeRuns(f *testing.F) {
	f.Add([]byte{})
	f.Add(bitset.RunsOf(bitset.FromIndices(0)).AppendBinary(nil))
	f.Add(bitset.RunsOf(bitset.FromIndices(100, 1, 2, 3, 40, 41, 90)).AppendBinary(nil))
	full := bitset.New(200)
	full.SetAll()
	f.Add(bitset.RunsOf(full).AppendBinary(nil))
	f.Add([]byte{10, 200, 1})
	f.Add([]byte{20, 2, 1, 2, 0, 2})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, used, err := bitset.DecodeRuns(data)
		if err != nil {
			if !errors.Is(err, bitset.ErrCorrupt) {
				t.Fatalf("decode error %v does not wrap ErrCorrupt", err)
			}
			return
		}
		if used > len(data) {
			t.Fatalf("consumed %d of %d bytes", used, len(data))
		}
		// Canonical re-encode: decode(encode(decode(x))) is a fixpoint.
		enc := r.AppendBinary(nil)
		if !bytes.Equal(enc, data[:used]) {
			t.Fatalf("re-encode not canonical:\n got %x\nwant %x", enc, data[:used])
		}
		// The decoded vector must agree with its own dense form.
		d := r.Dense()
		if r.Count() != d.Count() || r.String() != d.String() {
			t.Fatalf("decoded vector inconsistent with dense form")
		}
	})
}
