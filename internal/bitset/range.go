package bitset

import (
	"fmt"
	"math/bits"
)

// FromWords returns a set of length n backed directly by words — no copy is
// made, so the caller must not mutate words afterwards. It is the aliasing
// constructor the mmap snapshot reader uses to serve timestamps straight
// from a file mapping. len(words) must be exactly ceil(n/64) and any bits
// at or beyond n must be zero (callers that cannot guarantee the latter
// should validate the last word themselves; all combinators assume it).
func FromWords(n int, words []uint64) *Set {
	if n < 0 || len(words) != (n+wordBits-1)/wordBits {
		panic(fmt.Sprintf("bitset: FromWords(%d) with %d words", n, len(words)))
	}
	return &Set{words: words, n: n}
}

// Word returns backing word wi. Bit b of word wi is set-bit wi*64+b.
func (s *Set) Word(wi int) uint64 { return s.words[wi] }

// NumWords returns the number of backing words.
func (s *Set) NumWords() int { return len(s.words) }

// clampHi clamps hi to the logical length and panics on a negative lo,
// mirroring Contains' treatment of out-of-range indices.
func (s *Set) clampHi(lo, hi int) int {
	if lo < 0 {
		panic(fmt.Sprintf("bitset: negative range start %d", lo))
	}
	if hi > s.n {
		return s.n
	}
	return hi
}

// CountRange returns the number of set bits in [lo, hi). Bits at or beyond
// Len count as zero.
func (s *Set) CountRange(lo, hi int) int {
	hi = s.clampHi(lo, hi)
	if lo >= hi {
		return 0
	}
	wlo, whi := lo/wordBits, (hi-1)/wordBits
	first := ^uint64(0) << uint(lo%wordBits)
	last := ^uint64(0) >> uint(wordBits-1-(hi-1)%wordBits)
	if wlo == whi {
		return bits.OnesCount64(s.words[wlo] & first & last)
	}
	c := bits.OnesCount64(s.words[wlo] & first)
	for wi := wlo + 1; wi < whi; wi++ {
		c += bits.OnesCount64(s.words[wi])
	}
	return c + bits.OnesCount64(s.words[whi]&last)
}

// ContainsRange reports whether every bit in [lo, hi) is set. An empty
// range is contained; a range extending past Len is not (zero-padding).
func (s *Set) ContainsRange(lo, hi int) bool {
	if lo >= hi {
		if lo < 0 {
			s.clampHi(lo, hi)
		}
		return true
	}
	if hi > s.n {
		return false
	}
	return s.CountRange(lo, hi) == hi-lo
}

// IntersectsRange reports whether any bit in [lo, hi) is set.
func (s *Set) IntersectsRange(lo, hi int) bool {
	hi = s.clampHi(lo, hi)
	if lo >= hi {
		return false
	}
	i := s.Next(lo)
	return i >= 0 && i < hi
}

// ForEachInRange calls fn for every set bit in [lo, hi), in increasing
// order.
func (s *Set) ForEachInRange(lo, hi int, fn func(i int)) {
	hi = s.clampHi(lo, hi)
	for i := s.Next(lo); i >= 0 && i < hi; i = s.Next(i + 1) {
		fn(i)
	}
}

// nextClear returns the index of the first clear bit at or after i, where
// every index at or beyond Len counts as clear.
func (s *Set) nextClear(i int) int {
	if i < 0 {
		i = 0
	}
	for i < s.n {
		w := ^s.words[i/wordBits] >> uint(i%wordBits)
		if w != 0 {
			j := i + bits.TrailingZeros64(w)
			if j > s.n {
				j = s.n
			}
			return j
		}
		i = (i/wordBits + 1) * wordBits
	}
	return s.n
}

// ForEachRun calls fn for every maximal run [lo, hi) of consecutive set
// bits, in increasing order. It is the bridge from the dense form to
// run-length consumers (compression, diff-array aggregation).
func (s *Set) ForEachRun(fn func(lo, hi int)) {
	for i := s.Next(0); i >= 0; {
		j := s.nextClear(i)
		fn(i, j)
		if j >= s.n {
			return
		}
		i = s.Next(j)
	}
}

// NumRuns returns the number of maximal runs of consecutive set bits.
func (s *Set) NumRuns() int {
	c := 0
	for wi, w := range s.words {
		// Count 0→1 transitions: a run starts at each bit set in w whose
		// predecessor (previous bit, or the last bit of the previous word)
		// is clear.
		prev := uint64(0)
		if wi > 0 {
			prev = s.words[wi-1] >> (wordBits - 1)
		}
		c += bits.OnesCount64(w &^ (w<<1 | prev))
	}
	return c
}

// Dense returns the set itself; it makes *Set satisfy Vector.
func (s *Set) Dense() *Set { return s }
