package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	s := New(100)
	if s.Len() != 100 {
		t.Fatalf("Len = %d, want 100", s.Len())
	}
	if !s.IsEmpty() {
		t.Fatal("new set should be empty")
	}
	if s.Count() != 0 {
		t.Fatalf("Count = %d, want 0", s.Count())
	}
}

func TestAddRemoveContains(t *testing.T) {
	s := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Contains(i) {
			t.Fatalf("bit %d set before Add", i)
		}
		s.Add(i)
		if !s.Contains(i) {
			t.Fatalf("bit %d not set after Add", i)
		}
	}
	if s.Count() != 8 {
		t.Fatalf("Count = %d, want 8", s.Count())
	}
	s.Remove(64)
	if s.Contains(64) {
		t.Fatal("bit 64 still set after Remove")
	}
	if s.Count() != 7 {
		t.Fatalf("Count = %d, want 7", s.Count())
	}
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range index")
		}
	}()
	New(10).Add(10)
}

func TestLengthMismatchPanicsInPlace(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched lengths")
		}
	}()
	// The mutating operations stay strict about length; only the read-only
	// combinators zero-pad (TestZeroPadSemantics).
	New(10).OrWith(New(11))
}

// TestZeroPadSemantics pins the append-only timeline contract: a set frozen
// at an earlier length behaves exactly like its zero-padded extension under
// every read-only combinator.
func TestZeroPadSemantics(t *testing.T) {
	short := FromIndices(3, 0, 2)  // timestamp frozen when the timeline had 3 points
	padded := FromIndices(8, 0, 2) // the same timestamp on the grown timeline
	long := FromIndices(8, 2, 5, 7)

	if short.Contains(5) || short.Contains(200) {
		t.Error("Contains beyond Len should report false")
	}
	if !short.Equal(padded) || !padded.Equal(short) {
		t.Error("Equal should ignore trailing zeros")
	}
	if short.Equal(long) {
		t.Error("Equal must still compare content")
	}
	for name, pair := range map[string][2]*Set{"short-long": {short, long}, "long-short": {long, short}} {
		a, b := pair[0], pair[1]
		if got, want := a.Intersects(b), true; got != want {
			t.Errorf("%s: Intersects = %v, want %v", name, got, want)
		}
		if got, want := a.CountAnd(b), 1; got != want {
			t.Errorf("%s: CountAnd = %d, want %d", name, got, want)
		}
		if got := a.And(b); got.Len() != 8 || !got.Equal(FromIndices(8, 2)) {
			t.Errorf("%s: And = %v", name, got.Indices())
		}
		var idx []int
		a.ForEachAnd(b, func(i int) { idx = append(idx, i) })
		if len(idx) != 1 || idx[0] != 2 {
			t.Errorf("%s: ForEachAnd = %v, want [2]", name, idx)
		}
	}
	if got := short.Or(long); got.Len() != 8 || !got.Equal(FromIndices(8, 0, 2, 5, 7)) {
		t.Errorf("short∨long = %v", got.Indices())
	}
	if got := long.Or(short); !got.Equal(FromIndices(8, 0, 2, 5, 7)) {
		t.Errorf("long∨short = %v", got.Indices())
	}
	if got := short.AndNot(long); !got.Equal(FromIndices(8, 0)) {
		t.Errorf("short∖long = %v", got.Indices())
	}
	if got := long.AndNot(short); !got.Equal(FromIndices(8, 5, 7)) {
		t.Errorf("long∖short = %v", got.Indices())
	}
	if !long.ContainsAll(FromIndices(2)) {
		t.Error("ContainsAll of an empty shorter set should hold")
	}
	if long.ContainsAll(short) {
		t.Error("ContainsAll must still compare content (bit 0 missing)")
	}
	if FromIndices(3, 0, 2).ContainsAll(FromIndices(8, 0, 7)) {
		t.Error("a bit beyond the receiver's length is not contained")
	}
	grown := short.CloneGrow(8)
	if grown.Len() != 8 || !grown.Equal(short) {
		t.Errorf("CloneGrow = len %d, bits %v", grown.Len(), grown.Indices())
	}
	grown.Add(7) // must not alias the original
	if short.Contains(7) {
		t.Error("CloneGrow aliases its source")
	}
}

func TestFromIndices(t *testing.T) {
	s := FromIndices(10, 1, 3, 7)
	want := []int{1, 3, 7}
	got := s.Indices()
	if len(got) != len(want) {
		t.Fatalf("Indices = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Indices = %v, want %v", got, want)
		}
	}
}

func TestSetOps(t *testing.T) {
	a := FromIndices(8, 0, 1, 2, 5)
	b := FromIndices(8, 1, 2, 3, 6)

	if got := a.And(b).Indices(); !equalInts(got, []int{1, 2}) {
		t.Errorf("And = %v, want [1 2]", got)
	}
	if got := a.Or(b).Indices(); !equalInts(got, []int{0, 1, 2, 3, 5, 6}) {
		t.Errorf("Or = %v, want [0 1 2 3 5 6]", got)
	}
	if got := a.AndNot(b).Indices(); !equalInts(got, []int{0, 5}) {
		t.Errorf("AndNot = %v, want [0 5]", got)
	}
	if !a.Intersects(b) {
		t.Error("Intersects = false, want true")
	}
	if a.ContainsAll(b) {
		t.Error("ContainsAll = true, want false")
	}
	if !a.Or(b).ContainsAll(a) {
		t.Error("union should contain a")
	}
	if got := a.CountAnd(b); got != 2 {
		t.Errorf("CountAnd = %d, want 2", got)
	}
}

func TestInPlaceOps(t *testing.T) {
	a := FromIndices(8, 0, 1, 5)
	b := FromIndices(8, 1, 5, 7)
	c := a.Clone()
	c.AndWith(b)
	if !c.Equal(a.And(b)) {
		t.Error("AndWith disagrees with And")
	}
	d := a.Clone()
	d.OrWith(b)
	if !d.Equal(a.Or(b)) {
		t.Error("OrWith disagrees with Or")
	}
}

func TestSetAllClear(t *testing.T) {
	s := New(70)
	s.SetAll()
	if s.Count() != 70 {
		t.Fatalf("Count after SetAll = %d, want 70", s.Count())
	}
	s.Clear()
	if !s.IsEmpty() {
		t.Fatal("set not empty after Clear")
	}
}

func TestNext(t *testing.T) {
	s := FromIndices(200, 3, 64, 199)
	cases := []struct{ from, want int }{
		{0, 3}, {3, 3}, {4, 64}, {64, 64}, {65, 199}, {199, 199}, {-5, 3},
	}
	for _, c := range cases {
		if got := s.Next(c.from); got != c.want {
			t.Errorf("Next(%d) = %d, want %d", c.from, got, c.want)
		}
	}
	if got := s.Next(200); got != -1 {
		t.Errorf("Next past end = %d, want -1", got)
	}
	if got := New(10).Next(0); got != -1 {
		t.Errorf("Next on empty = %d, want -1", got)
	}
}

func TestForEachMatchesIndices(t *testing.T) {
	s := FromIndices(150, 0, 9, 63, 64, 100, 149)
	var got []int
	s.ForEach(func(i int) { got = append(got, i) })
	if !equalInts(got, s.Indices()) {
		t.Fatalf("ForEach = %v, Indices = %v", got, s.Indices())
	}
}

func TestString(t *testing.T) {
	s := FromIndices(4, 0, 2)
	if s.String() != "1010" {
		t.Fatalf("String = %q, want 1010", s.String())
	}
}

// randomSet builds a reproducible random set for property tests.
func randomSet(r *rand.Rand, n int) *Set {
	s := New(n)
	for i := 0; i < n; i++ {
		if r.Intn(2) == 1 {
			s.Add(i)
		}
	}
	return s
}

func TestQuickDeMorgan(t *testing.T) {
	// |A ∪ B| = |A| + |B| - |A ∩ B|, and AndNot(A,B) = A ∩ complement(B).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(300)
		a, b := randomSet(r, n), randomSet(r, n)
		if a.Or(b).Count() != a.Count()+b.Count()-a.And(b).Count() {
			return false
		}
		if a.AndNot(b).Count() != a.Count()-a.And(b).Count() {
			return false
		}
		return a.CountAnd(b) == a.And(b).Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAlgebra(t *testing.T) {
	// Commutativity, associativity, idempotence of And/Or.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(300)
		a, b, c := randomSet(r, n), randomSet(r, n), randomSet(r, n)
		return a.And(b).Equal(b.And(a)) &&
			a.Or(b).Equal(b.Or(a)) &&
			a.And(b).And(c).Equal(a.And(b.And(c))) &&
			a.Or(b).Or(c).Equal(a.Or(b.Or(c))) &&
			a.And(a).Equal(a) && a.Or(a).Equal(a) &&
			a.And(a.Or(b)).Equal(a) && a.Or(a.And(b)).Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRoundTrip(t *testing.T) {
	// FromIndices(Indices(s)) == s.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(300)
		s := randomSet(r, n)
		return FromIndices(n, s.Indices()...).Equal(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestAppendIndicesMatchesIndices(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(300)
		s := New(n)
		for i := 0; i < n; i++ {
			if r.Intn(3) == 0 {
				s.Add(i)
			}
		}
		want := s.Indices()
		buf := make([]int, 0, 4)
		got := s.AppendIndices(buf[:0])
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		// Appending after existing content must preserve it.
		pre := s.AppendIndices([]int{-7})
		return len(pre) == len(want)+1 && pre[0] == -7
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestForEachAndMatchesAnd(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(300)
		a, b := New(n), New(n)
		for i := 0; i < n; i++ {
			if r.Intn(2) == 0 {
				a.Add(i)
			}
			if r.Intn(2) == 0 {
				b.Add(i)
			}
		}
		want := a.And(b).Indices()
		var got []int
		a.ForEachAnd(b, func(i int) { got = append(got, i) })
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestForEachWordCoversAllBits(t *testing.T) {
	s := New(130)
	for _, i := range []int{0, 63, 64, 100, 129} {
		s.Add(i)
	}
	rebuilt := New(130)
	s.ForEachWord(func(wi int, w uint64) {
		for b := 0; b < wordBits; b++ {
			if w&(1<<uint(b)) != 0 {
				rebuilt.Add(wi*wordBits + b)
			}
		}
	})
	if !rebuilt.Equal(s) {
		t.Fatalf("ForEachWord rebuild = %v, want %v", rebuilt, s)
	}
}

func TestInPlaceCombinators(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(300)
		mk := func() *Set {
			s := New(n)
			for i := 0; i < n; i++ {
				if r.Intn(2) == 0 {
					s.Add(i)
				}
			}
			return s
		}
		pos, neg, rescue := mk(), mk(), mk()

		cp := New(n)
		cp.CopyFrom(pos)
		if !cp.Equal(pos) {
			return false
		}

		anw := pos.Clone()
		anw.AndNotWith(neg)
		if !anw.Equal(pos.AndNot(neg)) {
			return false
		}

		sa := New(n)
		sa.SetAnd(pos, neg)
		if !sa.Equal(pos.And(neg)) {
			return false
		}

		// SetAndNotOr == pos ∧ (¬neg ∨ rescue) == (pos ∧ ¬neg) ∨ (pos ∧ rescue)
		dk := New(n)
		dk.SetAndNotOr(pos, neg, rescue)
		want := pos.AndNot(neg).Or(pos.And(rescue))
		return dk.Equal(want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkIndicesVsAppend measures the allocation the reusable-buffer
// iteration removes from hot loops.
func BenchmarkIndicesVsAppend(b *testing.B) {
	s := New(4096)
	for i := 0; i < 4096; i += 3 {
		s.Add(i)
	}
	b.Run("Indices", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = s.Indices()
		}
	})
	b.Run("AppendIndices", func(b *testing.B) {
		b.ReportAllocs()
		buf := make([]int, 0, s.Count())
		for i := 0; i < b.N; i++ {
			buf = s.AppendIndices(buf[:0])
		}
	})
}

// BenchmarkForEachAnd compares materializing the intersection against the
// word-level fused iteration.
func BenchmarkForEachAnd(b *testing.B) {
	a, c := New(4096), New(4096)
	for i := 0; i < 4096; i += 2 {
		a.Add(i)
	}
	for i := 0; i < 4096; i += 3 {
		c.Add(i)
	}
	sink := 0
	b.Run("And+ForEach", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			a.And(c).ForEach(func(i int) { sink += i })
		}
	})
	b.Run("ForEachAnd", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			a.ForEachAnd(c, func(i int) { sink += i })
		}
	})
}
