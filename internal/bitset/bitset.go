// Package bitset provides dense bitsets.
//
// GraphTempo represents the timestamp functions τu and τe of a temporal
// attributed graph as binary vectors over the time domain (one bit per time
// point), and represents node/edge selections produced by the temporal
// operators as binary vectors over the node/edge id space. Both uses share
// this implementation.
//
// Because the time domain grows under streaming ingest, the read-only
// combinators (Contains, Intersects, ContainsAll, CountAnd, ForEachAnd, And,
// Or, AndNot, Equal) treat a shorter set as zero-padded to the longer
// length: a timestamp frozen when the timeline had T points means "absent
// after T", which is exactly what the padding says. The mutating operations
// (Add, Remove, AndWith, OrWith, AndNotWith, CopyFrom, SetAnd, SetAndNotOr)
// stay strict about length, so selection buffers sized for one id space
// cannot silently absorb another.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a dense bitset with a fixed logical length. The zero value is an
// empty set of length 0; use New to create a set with capacity for n bits.
type Set struct {
	words []uint64
	n     int
}

// New returns a set able to hold n bits, all initially zero.
func New(n int) *Set {
	if n < 0 {
		panic("bitset: negative length")
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// FromIndices returns a set of length n with the given bits set.
// It panics if any index is out of range.
func FromIndices(n int, indices ...int) *Set {
	s := New(n)
	for _, i := range indices {
		s.Add(i)
	}
	return s
}

// Len reports the logical length (capacity in bits) of the set.
func (s *Set) Len() int { return s.n }

// Add sets bit i. It panics if i is out of range.
func (s *Set) Add(i int) {
	s.check(i)
	s.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Remove clears bit i. It panics if i is out of range.
func (s *Set) Remove(i int) {
	s.check(i)
	s.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// Contains reports whether bit i is set. Indices at or beyond Len report
// false (zero-padding); negative indices panic.
func (s *Set) Contains(i int) bool {
	if i < 0 {
		s.check(i)
	}
	if i >= s.n {
		return false
	}
	return s.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

func (s *Set) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, s.n))
	}
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// IsEmpty reports whether no bit is set.
func (s *Set) IsEmpty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns a copy of s.
func (s *Set) Clone() *Set {
	w := make([]uint64, len(s.words))
	copy(w, s.words)
	return &Set{words: w, n: s.n}
}

// CloneGrow returns a copy of s with logical length at least n; bits beyond
// s's original length start zero. It is the copy-on-write step of growing a
// frozen timestamp when the timeline gains points.
func (s *Set) CloneGrow(n int) *Set {
	if n < s.n {
		n = s.n
	}
	r := New(n)
	copy(r.words, s.words)
	return r
}

// Equal reports whether s and t contain the same bits. Lengths may differ:
// the shorter set is treated as zero-padded, so a timestamp frozen at an
// earlier timeline length equals its padded form.
func (s *Set) Equal(t *Set) bool {
	long, short := s.words, t.words
	if len(long) < len(short) {
		long, short = short, long
	}
	for i, w := range short {
		if w != long[i] {
			return false
		}
	}
	for _, w := range long[len(short):] {
		if w != 0 {
			return false
		}
	}
	return true
}

func (s *Set) sameLen(t *Set, op string) {
	if s.n != t.n {
		panic(fmt.Sprintf("bitset: %s of sets with different lengths %d and %d", op, s.n, t.n))
	}
}

// minWords returns the number of backing words shared by both sets.
func (s *Set) minWords(t *Set) int {
	if len(s.words) < len(t.words) {
		return len(s.words)
	}
	return len(t.words)
}

// Intersects reports whether s and t share at least one set bit. The
// shorter set is treated as zero-padded.
func (s *Set) Intersects(t *Set) bool {
	for i := 0; i < s.minWords(t); i++ {
		if s.words[i]&t.words[i] != 0 {
			return true
		}
	}
	return false
}

// ContainsAll reports whether every bit set in t is also set in s. The
// shorter set is treated as zero-padded (so any bit of t beyond s's length
// makes the answer false).
func (s *Set) ContainsAll(t *Set) bool {
	m := s.minWords(t)
	for i, w := range t.words[:m] {
		if w&^s.words[i] != 0 {
			return false
		}
	}
	for _, w := range t.words[m:] {
		if w != 0 {
			return false
		}
	}
	return true
}

// CountAnd returns the number of bits set in both s and t without
// materializing the intersection. The shorter set is treated as
// zero-padded.
func (s *Set) CountAnd(t *Set) int {
	c := 0
	for i := 0; i < s.minWords(t); i++ {
		c += bits.OnesCount64(s.words[i] & t.words[i])
	}
	return c
}

// maxLen returns the larger logical length of the two sets.
func (s *Set) maxLen(t *Set) int {
	if s.n > t.n {
		return s.n
	}
	return t.n
}

// And returns a new set with the bits set in both s and t. The result has
// the longer of the two lengths; the shorter set is treated as zero-padded.
func (s *Set) And(t *Set) *Set {
	r := New(s.maxLen(t))
	for i := 0; i < s.minWords(t); i++ {
		r.words[i] = s.words[i] & t.words[i]
	}
	return r
}

// Or returns a new set with the bits set in either s or t. The result has
// the longer of the two lengths; the shorter set is treated as zero-padded.
func (s *Set) Or(t *Set) *Set {
	r := New(s.maxLen(t))
	m := s.minWords(t)
	for i := 0; i < m; i++ {
		r.words[i] = s.words[i] | t.words[i]
	}
	long := s.words
	if len(t.words) > len(long) {
		long = t.words
	}
	copy(r.words[m:], long[m:])
	return r
}

// AndNot returns a new set with the bits set in s but not in t. The result
// has the longer of the two lengths; the shorter set is treated as
// zero-padded.
func (s *Set) AndNot(t *Set) *Set {
	r := New(s.maxLen(t))
	m := s.minWords(t)
	for i := 0; i < m; i++ {
		r.words[i] = s.words[i] &^ t.words[i]
	}
	copy(r.words[m:], s.words[m:])
	return r
}

// AndWith sets s to the intersection of s and t, in place.
// It panics if the sets have different lengths.
func (s *Set) AndWith(t *Set) {
	s.sameLen(t, "AndWith")
	for i := range s.words {
		s.words[i] &= t.words[i]
	}
}

// OrWith sets s to the union of s and t, in place.
// It panics if the sets have different lengths.
func (s *Set) OrWith(t *Set) {
	s.sameLen(t, "OrWith")
	for i := range s.words {
		s.words[i] |= t.words[i]
	}
}

// Clear resets all bits to zero.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// SetAll sets every bit in [0, Len).
func (s *Set) SetAll() {
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.trim()
}

// trim clears any bits above the logical length.
func (s *Set) trim() {
	if s.n%wordBits != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (1 << uint(s.n%wordBits)) - 1
	}
}

// Next returns the index of the first set bit at or after i, or -1 if none.
func (s *Set) Next(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= s.n {
		return -1
	}
	wi := i / wordBits
	w := s.words[wi] >> uint(i%wordBits)
	if w != 0 {
		return i + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(s.words); wi++ {
		if s.words[wi] != 0 {
			return wi*wordBits + bits.TrailingZeros64(s.words[wi])
		}
	}
	return -1
}

// Indices returns the indices of all set bits, in increasing order.
func (s *Set) Indices() []int {
	return s.AppendIndices(make([]int, 0, s.Count()))
}

// AppendIndices appends the indices of all set bits to buf, in increasing
// order, and returns the extended slice. Passing a reused buffer (buf[:0])
// makes repeated index extraction allocation-free once the buffer has grown
// to the high-water mark.
func (s *Set) AppendIndices(buf []int) []int {
	for wi, w := range s.words {
		base := wi * wordBits
		for w != 0 {
			buf = append(buf, base+bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
	return buf
}

// ForEachWord calls fn for every backing word of the set, in order. The
// index wi is the word's position: bit b of word wi is set-bit wi*64+b.
// It is the non-allocating building block for word-parallel consumers.
func (s *Set) ForEachWord(fn func(wi int, w uint64)) {
	for wi, w := range s.words {
		fn(wi, w)
	}
}

// ForEachAnd calls fn for every index set in both s and t, in increasing
// order, without materializing the intersection — the allocation-free
// equivalent of s.And(t).ForEach(fn). The shorter set is treated as
// zero-padded.
func (s *Set) ForEachAnd(t *Set, fn func(i int)) {
	for wi, w := range s.words[:s.minWords(t)] {
		w &= t.words[wi]
		base := wi * wordBits
		for w != 0 {
			fn(base + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// CopyFrom overwrites s with the contents of t, in place.
// It panics if the sets have different lengths.
func (s *Set) CopyFrom(t *Set) {
	s.sameLen(t, "CopyFrom")
	copy(s.words, t.words)
}

// AndNotWith clears every bit of s that is set in t, in place.
// It panics if the sets have different lengths.
func (s *Set) AndNotWith(t *Set) {
	s.sameLen(t, "AndNotWith")
	for i := range s.words {
		s.words[i] &^= t.words[i]
	}
}

// SetAnd overwrites s with a ∧ b in one pass. All three sets must have the
// same length.
func (s *Set) SetAnd(a, b *Set) {
	s.sameLen(a, "SetAnd")
	s.sameLen(b, "SetAnd")
	for i := range s.words {
		s.words[i] = a.words[i] & b.words[i]
	}
}

// SetAndNotOr overwrites s with pos ∧ (¬neg ∨ rescue) in one pass: the
// word-parallel form of Definition 2.5's node rule, where rescue holds the
// endpoints of kept difference edges. All four sets must have the same
// length.
func (s *Set) SetAndNotOr(pos, neg, rescue *Set) {
	s.sameLen(pos, "SetAndNotOr")
	s.sameLen(neg, "SetAndNotOr")
	s.sameLen(rescue, "SetAndNotOr")
	for i := range s.words {
		s.words[i] = pos.words[i] & (^neg.words[i] | rescue.words[i])
	}
}

// ForEach calls fn for every set bit in increasing index order.
func (s *Set) ForEach(fn func(i int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi*wordBits + b)
			w &^= 1 << uint(b)
		}
	}
}

// String renders the set as a binary vector, least index first, matching the
// labeled-array representation of the paper (e.g. "1101").
func (s *Set) String() string {
	var b strings.Builder
	b.Grow(s.n)
	for i := 0; i < s.n; i++ {
		if s.Contains(i) {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}
